// Tests for snapshot I/O.
#include "nbody/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::ParticleSystem;
using g6::nbody::read_snapshot;
using g6::nbody::write_snapshot;

ParticleSystem random_system(int n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  ParticleSystem ps;
  for (int i = 0; i < n; ++i)
    ps.add(rng.uniform(1e-11, 1e-9),
           {rng.uniform(-35, 35), rng.uniform(-35, 35), rng.uniform(-1, 1)},
           {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), rng.uniform(-0.01, 0.01)});
  return ps;
}

TEST(Snapshot, RoundTripExact) {
  const ParticleSystem ps = random_system(50, 17);
  std::stringstream ss;
  write_snapshot(ss, ps, 12.75);

  ParticleSystem back;
  const double t = read_snapshot(ss, back);
  EXPECT_DOUBLE_EQ(t, 12.75);
  ASSERT_EQ(back.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(back.mass(i), ps.mass(i)) << i;
    EXPECT_EQ(back.pos(i), ps.pos(i)) << i;
    EXPECT_EQ(back.vel(i), ps.vel(i)) << i;
    EXPECT_EQ(back.time(i), 12.75) << i;
  }
}

TEST(Snapshot, HeaderFormat) {
  ParticleSystem ps;
  ps.add(1.0, {1, 2, 3}, {4, 5, 6});
  std::stringstream ss;
  write_snapshot(ss, ps, 0.5);
  std::string magic;
  std::size_t n;
  double t;
  ss >> magic >> n >> t;
  EXPECT_EQ(magic, "g6snap");
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(t, 0.5);
}

TEST(Snapshot, RejectsBadMagic) {
  std::stringstream ss("notasnap 1 0.0\n0 1 0 0 0 0 0 0\n");
  ParticleSystem ps;
  EXPECT_THROW(read_snapshot(ss, ps), g6::util::Error);
}

TEST(Snapshot, RejectsTruncated) {
  ParticleSystem ps;
  ps.add(1.0, {1, 2, 3}, {4, 5, 6});
  ps.add(2.0, {7, 8, 9}, {0, 1, 2});
  std::stringstream ss;
  write_snapshot(ss, ps, 0.0);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // cut mid-record
  std::stringstream cut(text);
  ParticleSystem back;
  EXPECT_THROW(read_snapshot(cut, back), g6::util::Error);
}

TEST(Snapshot, FileRoundTrip) {
  const ParticleSystem ps = random_system(10, 3);
  const std::string path = "/tmp/g6_test_snapshot.txt";
  g6::nbody::write_snapshot_file(path, ps, 3.25);
  ParticleSystem back;
  const double t = g6::nbody::read_snapshot_file(path, back);
  EXPECT_DOUBLE_EQ(t, 3.25);
  EXPECT_EQ(back.size(), ps.size());
  EXPECT_EQ(back.pos(4), ps.pos(4));
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileThrows) {
  ParticleSystem ps;
  EXPECT_THROW(g6::nbody::read_snapshot_file("/nonexistent/g6.txt", ps),
               g6::util::Error);
}

}  // namespace

namespace {

TEST(BinarySnapshot, RoundTripExact) {
  const g6::nbody::ParticleSystem ps = random_system(80, 21);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 7.5);
  g6::nbody::ParticleSystem back;
  const double t = g6::nbody::read_snapshot_binary(ss, back);
  EXPECT_DOUBLE_EQ(t, 7.5);
  ASSERT_EQ(back.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(back.mass(i), ps.mass(i));
    EXPECT_EQ(back.pos(i), ps.pos(i));
    EXPECT_EQ(back.vel(i), ps.vel(i));
  }
}

TEST(BinarySnapshot, RejectsBadMagic) {
  std::stringstream ss("NOTSNAPXxxxxxxxxxxxxxxxx");
  g6::nbody::ParticleSystem ps;
  EXPECT_THROW(g6::nbody::read_snapshot_binary(ss, ps), g6::util::Error);
}

TEST(BinarySnapshot, RejectsTruncated) {
  g6::nbody::ParticleSystem ps = random_system(5, 22);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 0.0);
  std::string data = ss.str();
  data.resize(data.size() - 10);
  std::stringstream cut(data);
  g6::nbody::ParticleSystem back;
  EXPECT_THROW(g6::nbody::read_snapshot_binary(cut, back), g6::util::Error);
}

TEST(BinarySnapshot, FileRoundTrip) {
  const g6::nbody::ParticleSystem ps = random_system(12, 23);
  const std::string path = "/tmp/g6_test_snapshot.bin";
  g6::nbody::write_snapshot_binary_file(path, ps, 1.25);
  g6::nbody::ParticleSystem back;
  EXPECT_DOUBLE_EQ(g6::nbody::read_snapshot_binary_file(path, back), 1.25);
  EXPECT_EQ(back.pos(7), ps.pos(7));
  std::remove(path.c_str());
}

TEST(BinarySnapshot, SmallerThanTextForLargeN) {
  const g6::nbody::ParticleSystem ps = random_system(500, 24);
  std::stringstream text, binary;
  g6::nbody::write_snapshot(text, ps, 0.0);
  g6::nbody::write_snapshot_binary(binary, ps, 0.0);
  EXPECT_LT(binary.str().size(), text.str().size());
}

TEST(BinarySnapshot, CorruptionRoundTripDetected) {
  const g6::nbody::ParticleSystem ps = random_system(20, 25);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 2.5);
  std::string data = ss.str();
  data[data.size() / 2] ^= 0x01;  // flip one bit mid-record
  std::stringstream bad(data);
  g6::nbody::ParticleSystem back;
  EXPECT_THROW(g6::nbody::read_snapshot_binary(bad, back), g6::util::Error);
}

TEST(BinarySnapshot, RandomSingleBitFlipsAllCaught) {
  const g6::nbody::ParticleSystem ps = random_system(8, 26);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 1.0);
  const std::string clean = ss.str();
  g6::util::Rng rng(27);
  for (int trial = 0; trial < 32; ++trial) {
    std::string data = clean;
    // Flip a random bit anywhere after the magic — header, records, or
    // the CRC trailer itself must all fail verification.
    const std::size_t byte = 8 + rng.below(data.size() - 8);
    data[byte] ^= static_cast<char>(1u << rng.below(8));
    std::stringstream bad(data);
    g6::nbody::ParticleSystem back;
    EXPECT_THROW(g6::nbody::read_snapshot_binary(bad, back), g6::util::Error)
        << "bit flip in byte " << byte << " went undetected";
  }
}

TEST(BinarySnapshot, TruncatedTrailerDetected) {
  const g6::nbody::ParticleSystem ps = random_system(4, 28);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 0.5);
  std::string data = ss.str();
  data.resize(data.size() - 2);  // clip half the CRC trailer
  std::stringstream cut(data);
  g6::nbody::ParticleSystem back;
  EXPECT_THROW(g6::nbody::read_snapshot_binary(cut, back), g6::util::Error);
}

// The pre-CRC "G6SNAPB1" layout (no trailer) must stay readable.
TEST(BinarySnapshot, LegacyB1StillReadable) {
  const g6::nbody::ParticleSystem ps = random_system(6, 29);
  std::stringstream ss;
  ss.write("G6SNAPB1", 8);
  auto put = [&](const auto& v) {
    ss.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put(static_cast<std::uint64_t>(ps.size()));
  put(4.5);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    put(static_cast<std::uint64_t>(ps.id(i)));
    put(ps.mass(i));
    put(ps.pos(i));
    put(ps.vel(i));
  }
  g6::nbody::ParticleSystem back;
  EXPECT_DOUBLE_EQ(g6::nbody::read_snapshot_binary(ss, back), 4.5);
  ASSERT_EQ(back.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(back.mass(i), ps.mass(i));
    EXPECT_EQ(back.pos(i), ps.pos(i));
    EXPECT_EQ(back.vel(i), ps.vel(i));
  }
}

// --- parse diagnostics: errors name the offending line and field ----------

std::string parse_error_for(const std::string& text) {
  std::stringstream ss(text);
  ParticleSystem ps;
  try {
    read_snapshot(ss, ps);
  } catch (const g6::util::Error& err) {
    return err.what();
  }
  return {};
}

TEST(Snapshot, ParseErrorNamesHeaderLine) {
  const std::string msg = parse_error_for("g6snap two 0.0\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'n'"), std::string::npos) << msg;
}

TEST(Snapshot, ParseErrorNamesBadMagic) {
  const std::string msg = parse_error_for("nbody6 2 0.0\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
}

TEST(Snapshot, ParseErrorNamesParticleLineAndField) {
  // Line 3 (second particle) has a corrupted vy field.
  const std::string msg = parse_error_for(
      "g6snap 2 0.0\n"
      "0 1e-9 1 0 0 0 1 0\n"
      "1 1e-9 2 0 0 0 oops 0\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'vy'"), std::string::npos) << msg;
}

TEST(Snapshot, ParseErrorOnTruncatedBody) {
  const std::string msg = parse_error_for(
      "g6snap 3 0.0\n"
      "0 1e-9 1 0 0 0 1 0\n");
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find('3'), std::string::npos) << msg;
}

TEST(Snapshot, DuplicateParticleIdsRejected) {
  const std::string msg = parse_error_for(
      "g6snap 2 0.0\n"
      "7 1e-9 1 0 0 0 1 0\n"
      "7 1e-9 2 0 0 0 1 0\n");
  EXPECT_NE(msg.find("duplicate particle id 7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(Snapshot, ReadPreservesParticleIds) {
  const std::string text =
      "g6snap 2 1.5\n"
      "42 1e-9 1 0 0 0 1 0\n"
      "7 1e-9 2 0 0 0 0.7 0\n";
  std::stringstream ss(text);
  ParticleSystem ps;
  EXPECT_DOUBLE_EQ(read_snapshot(ss, ps), 1.5);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.id(0), 42u);
  EXPECT_EQ(ps.id(1), 7u);
}

TEST(BinarySnapshot, DuplicateParticleIdsRejected) {
  const g6::nbody::ParticleSystem ps = random_system(3, 31);
  std::stringstream ss;
  g6::nbody::write_snapshot_binary(ss, ps, 0.0);
  std::string data = ss.str();
  // Overwrite the second particle's id (first field of its record) with the
  // first particle's id. Layout: 8-byte magic, u64 n, f64 time, then
  // 8-double records of (id,mass,pos,vel) — ids at offsets 24 and 24+64.
  std::memcpy(&data[24 + 64], &data[24], sizeof(std::uint64_t));
  std::stringstream dup(data);
  g6::nbody::ParticleSystem back;
  try {
    g6::nbody::read_snapshot_binary(dup, back);
    FAIL() << "expected g6::util::Error";
  } catch (const g6::util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("duplicate particle id"),
              std::string::npos)
        << err.what();
  }
}

}  // namespace
