// Tests for the planetesimal mass function.
#include "disk/massfunc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using g6::disk::MassFunction;

TEST(MassFunction, CutoffsEnforced) {
  MassFunction mf(-2.5, 1e-11, 1e-9);
  g6::util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double m = mf.sample(rng);
    EXPECT_GE(m, 1e-11);
    EXPECT_LE(m, 1e-9);
  }
}

TEST(MassFunction, AccessorsReflectConstruction) {
  MassFunction mf(-2.5, 2e-11, 5e-10);
  EXPECT_EQ(mf.exponent(), -2.5);
  EXPECT_EQ(mf.lower_cutoff(), 2e-11);
  EXPECT_EQ(mf.upper_cutoff(), 5e-10);
}

TEST(MassFunction, InvalidCutoffsThrow) {
  EXPECT_THROW(MassFunction(-2.5, 0.0, 1e-9), g6::util::Error);
  EXPECT_THROW(MassFunction(-2.5, 1e-9, 1e-11), g6::util::Error);
}

class MassFunctionExponents : public ::testing::TestWithParam<double> {};

TEST_P(MassFunctionExponents, SampleMeanMatchesAnalytic) {
  const double alpha = GetParam();
  MassFunction mf(alpha, 1e-11, 1e-9);
  g6::util::Rng rng(99);
  double sum = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += mf.sample(rng);
  EXPECT_NEAR(sum / n / mf.mean(), 1.0, 0.02) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Exponents, MassFunctionExponents,
                         ::testing::Values(-2.5, -2.0, -1.5, -3.5, -1.0, 0.0));

TEST(MassFunction, MeanBetweenCutoffs) {
  MassFunction mf(-2.5, 1e-11, 1e-9);
  EXPECT_GT(mf.mean(), 1e-11);
  EXPECT_LT(mf.mean(), 1e-9);
  // A steep negative slope puts the mean near the lower cutoff.
  EXPECT_LT(mf.mean(), 1e-10);
}

TEST(MassFunction, SteeperSlopeSmallerMean) {
  MassFunction shallow(-1.5, 1e-11, 1e-9);
  MassFunction steep(-3.5, 1e-11, 1e-9);
  EXPECT_LT(steep.mean(), shallow.mean());
}

TEST(MassFunction, PaperScaleTotals) {
  // With the default cutoffs, 1.8 million bodies carry a few tens of Earth
  // masses — the MMSN solid content of 15-35 AU (paper §2).
  MassFunction mf(-2.5, 1e-11, 1e-9);
  const double total = mf.mean() * 1.8e6;          // M_sun
  const double earth_masses = total / 3.003e-6;
  EXPECT_GT(earth_masses, 5.0);
  EXPECT_LT(earth_masses, 60.0);
}

}  // namespace
