// Tests for the shared-timestep leapfrog baseline.
#include "nbody/leapfrog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"

namespace {

using g6::nbody::compute_energy;
using g6::nbody::DirectAccelBackend;
using g6::nbody::Force;
using g6::nbody::LeapfrogIntegrator;
using g6::nbody::ParticleSystem;

constexpr double kPi = std::numbers::pi;

TEST(DirectAccel, MatchesPairwise) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {});
  ps.add(2.0, {1, 0, 0}, {});
  DirectAccelBackend backend(0.0);
  std::vector<Force> f(2);
  backend.compute_all(ps, f);
  EXPECT_DOUBLE_EQ(f[0].acc.x, 2.0);
  EXPECT_DOUBLE_EQ(f[1].acc.x, -1.0);
  EXPECT_EQ(backend.interaction_count(), 2u);
}

TEST(Leapfrog, CircularOrbitClosesOnItself) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  DirectAccelBackend backend(0.0);
  LeapfrogIntegrator lf(ps, backend, 2.0 * kPi / 1000.0, /*solar_gm=*/1.0);
  lf.initialize();
  lf.evolve(2.0 * kPi);
  EXPECT_NEAR(ps.pos(0).x, 1.0, 1e-3);
  EXPECT_NEAR(norm(ps.pos(0)), 1.0, 1e-5);
  EXPECT_EQ(lf.steps(), 1000u);
}

TEST(Leapfrog, EnergyBoundedOverManyOrbits) {
  // Symplectic integrator: energy error oscillates but stays bounded.
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  DirectAccelBackend backend(0.0);
  LeapfrogIntegrator lf(ps, backend, 0.01);
  lf.initialize();
  const double e0 = compute_energy(ps, 0.0, 0.0).total();
  double worst = 0.0;
  for (int orbit = 0; orbit < 10; ++orbit) {
    lf.evolve(lf.current_time() + 2.0 * kPi);
    const double e = compute_energy(ps, 0.0, 0.0).total();
    worst = std::max(worst, std::abs((e - e0) / e0));
  }
  EXPECT_LT(worst, 2e-4);
}

TEST(Leapfrog, SecondOrderConvergence) {
  auto final_error = [](double dt) {
    ParticleSystem ps;
    ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
    DirectAccelBackend backend(0.0);
    LeapfrogIntegrator lf(ps, backend, dt, 1.0);
    lf.initialize();
    lf.evolve(2.0 * kPi);
    return norm(ps.pos(0) - g6::util::Vec3{1, 0, 0});
  };
  const double e1 = final_error(2.0 * kPi / 500.0);
  const double e2 = final_error(2.0 * kPi / 1000.0);
  EXPECT_GT(e1 / e2, 3.0);  // ~4 for 2nd order
  EXPECT_LT(e1 / e2, 5.0);
}

TEST(Leapfrog, InvalidDtThrows) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  DirectAccelBackend backend(0.0);
  EXPECT_THROW(LeapfrogIntegrator(ps, backend, 0.0), g6::util::Error);
}

TEST(Leapfrog, StepBeforeInitializeThrows) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  DirectAccelBackend backend(0.0);
  LeapfrogIntegrator lf(ps, backend, 0.1);
  EXPECT_THROW(lf.step(), g6::util::Error);
}

}  // namespace
