// Kill-and-resume tests for the RunManager: a run preempted at arbitrary
// segment boundaries and resumed in a fresh "process image" (new particle
// system, backend, integrator and thread pool objects) must finish
// bit-identical to a run that never stopped — on every backend, at 1 and 4
// threads, and with accretion enabled (the PR's acceptance criterion).
#include "run/run_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>

#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/accretion.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "run/checkpoint.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;

using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;
using g6::nbody::ParticleSystem;
using g6::run::RunConfig;
using g6::run::RunManager;
using g6::run::RunOutcome;
using g6::run::RunReport;

constexpr std::size_t kN = 24;
constexpr std::uint64_t kSeed = 20020101;
constexpr double kEta = 0.05;
constexpr double kTEnd = 1.0;

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("g6_runmgr_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

g6::hw::FormatSpec format_for(const ParticleSystem& ps) {
  double extent = 1.0;
  for (std::size_t i = 0; i < ps.size(); ++i)
    extent = std::max(extent, norm(ps.pos(i)));
  const double acc = std::max(1e-12, ps.total_mass() / (extent * extent));
  return g6::hw::FormatSpec::for_scales(2.0 * extent, acc);
}

std::unique_ptr<g6::nbody::ForceBackend> build_backend(
    const std::string& kind, const ParticleSystem& ps, double eps,
    g6::util::ThreadPool* pool) {
  if (kind == "cpu")
    return std::make_unique<g6::nbody::CpuDirectBackend>(eps, pool);
  if (kind == "grape") {
    g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 1 << 14);
    mc.fmt = format_for(ps);
    return std::make_unique<g6::hw::Grape6Backend>(mc, eps, pool);
  }
  if (kind == "cluster")
    return std::make_unique<g6::cluster::ClusterBackend>(
        4, g6::cluster::HostMode::kHardwareNet, format_for(ps), eps,
        g6::cluster::LinkSpec{}, pool);
  g6::util::raise("unknown test backend " + kind);
}

// One fresh "process image" of the run: new ICs, pool, backend and a
// not-yet-initialized integrator, exactly what a restarted process has.
struct Image {
  explicit Image(const std::string& backend_kind, std::size_t threads,
                 double eta = kEta, std::size_t n = kN)
      : pool(threads) {
    g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
    cfg.seed = kSeed;
    auto d = g6::disk::make_disk(cfg);
    ps = std::move(d.system);
    backend = build_backend(backend_kind, ps, /*eps=*/0.008, &pool);
    IntegratorConfig icfg;
    icfg.solar_gm = 1.0;
    icfg.eta = eta;
    icfg.eta_init = eta / 2.0;
    // Small enough that a run to kTEnd spans dozens of block steps — the
    // kill-and-resume loops need plenty of preemption points.
    icfg.dt_max = 0x1p-5;
    integ = std::make_unique<HermiteIntegrator>(ps, *backend, icfg, &pool);
  }

  g6::util::ThreadPool pool;
  ParticleSystem ps;
  std::unique_ptr<g6::nbody::ForceBackend> backend;
  std::unique_ptr<HermiteIntegrator> integ;
};

RunConfig base_config(const std::string& dir) {
  RunConfig cfg;
  cfg.checkpoint_dir = dir;
  cfg.t_end = kTEnd;
  cfg.checkpoint_every = 0.25;
  cfg.ic_seed = kSeed;
  return cfg;
}

void expect_bit_identical(const ParticleSystem& a, const ParticleSystem& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.id(i), b.id(i)) << i;
    EXPECT_EQ(a.mass(i), b.mass(i)) << i;
    EXPECT_EQ(a.pos(i), b.pos(i)) << i;
    EXPECT_EQ(a.vel(i), b.vel(i)) << i;
    EXPECT_EQ(a.acc(i), b.acc(i)) << i;
    EXPECT_EQ(a.jerk(i), b.jerk(i)) << i;
    EXPECT_EQ(a.time(i), b.time(i)) << i;
    EXPECT_EQ(a.dt(i), b.dt(i)) << i;
  }
}

void expect_stats_equal(const g6::nbody::IntegratorStats& a,
                        const g6::nbody::IntegratorStats& b) {
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.dt_shrinks, b.dt_shrinks);
  EXPECT_EQ(a.dt_grows, b.dt_grows);
}

// Drive one uninterrupted reference run and one repeatedly-preempted run
// (killed after a few block steps per invocation, each invocation a fresh
// Image) and require bit-identical final state and stats.
void kill_and_resume_case(const std::string& backend_kind, std::size_t threads) {
  const std::string ref_dir =
      test_dir(backend_kind + "_t" + std::to_string(threads) + "_ref");
  Image ref(backend_kind, threads);
  RunManager ref_mgr(*ref.integ, base_config(ref_dir));
  const RunReport ref_rep = ref_mgr.run();
  ASSERT_EQ(ref_rep.outcome, RunOutcome::kCompleted);
  ASSERT_EQ(ref_rep.final_time, kTEnd);

  const std::string dir =
      test_dir(backend_kind + "_t" + std::to_string(threads) + "_kill");
  bool completed = false;
  bool ever_resumed = false;
  for (int invocation = 0; invocation < 300 && !completed; ++invocation) {
    Image im(backend_kind, threads);
    RunConfig cfg = base_config(dir);
    cfg.step_budget = 3;  // die after at most 3 block steps
    cfg.resume = true;
    RunManager mgr(*im.integ, cfg);
    const RunReport rep = mgr.run();
    ever_resumed = ever_resumed || rep.resumed;
    if (rep.outcome == RunOutcome::kCompleted) {
      completed = true;
      EXPECT_EQ(rep.final_time, kTEnd);
      expect_bit_identical(ref.ps, im.ps);
      expect_stats_equal(ref.integ->stats(), im.integ->stats());
    }
  }
  ASSERT_TRUE(completed) << "preempted run never finished";
  EXPECT_TRUE(ever_resumed) << "the run was never actually preempted";
}

TEST(RunManager, KillAndResumeBitIdenticalCpu1Thread) {
  kill_and_resume_case("cpu", 1);
}

TEST(RunManager, KillAndResumeBitIdenticalCpu4Threads) {
  kill_and_resume_case("cpu", 4);
}

TEST(RunManager, KillAndResumeBitIdenticalGrape1Thread) {
  kill_and_resume_case("grape", 1);
}

TEST(RunManager, KillAndResumeBitIdenticalGrape4Threads) {
  kill_and_resume_case("grape", 4);
}

TEST(RunManager, KillAndResumeBitIdenticalCluster1Thread) {
  kill_and_resume_case("cluster", 1);
}

TEST(RunManager, KillAndResumeBitIdenticalCluster4Threads) {
  kill_and_resume_case("cluster", 4);
}

// A 1-thread and a 4-thread image must agree bit-for-bit on the same
// checkpoint stream: resume one backend's run at a different thread count.
TEST(RunManager, ResumeAtDifferentThreadCountIsBitIdentical) {
  const std::string ref_dir = test_dir("threads_ref");
  Image ref("cpu", 1);
  RunManager ref_mgr(*ref.integ, base_config(ref_dir));
  ASSERT_EQ(ref_mgr.run().outcome, RunOutcome::kCompleted);

  const std::string dir = test_dir("threads_switch");
  {
    Image first("cpu", 1);
    RunConfig cfg = base_config(dir);
    cfg.step_budget = 4;
    RunManager mgr(*first.integ, cfg);
    ASSERT_EQ(mgr.run().outcome, RunOutcome::kPreempted);
  }
  bool completed = false;
  for (int invocation = 0; invocation < 300 && !completed; ++invocation) {
    Image im("cpu", 4);  // resumed at a different thread count
    RunConfig cfg = base_config(dir);
    cfg.step_budget = 4;
    cfg.resume = true;
    RunManager mgr(*im.integ, cfg);
    if (mgr.run().outcome == RunOutcome::kCompleted) {
      completed = true;
      expect_bit_identical(ref.ps, im.ps);
    }
  }
  ASSERT_TRUE(completed);
}

TEST(RunManager, ResumeAfterCorruptLatestSegmentFallsBack) {
  const std::string ref_dir = test_dir("crc_ref");
  Image ref("cpu", 1);
  RunManager ref_mgr(*ref.integ, base_config(ref_dir));
  ASSERT_EQ(ref_mgr.run().outcome, RunOutcome::kCompleted);

  // Preempt once past two checkpoints, then corrupt the newest one.
  const std::string dir = test_dir("crc_kill");
  {
    Image im("cpu", 1);
    RunConfig cfg = base_config(dir);
    cfg.checkpoint_every = 0.125;
    cfg.step_budget = 30;
    RunManager mgr(*im.integ, cfg);
    ASSERT_EQ(mgr.run().outcome, RunOutcome::kPreempted);
  }
  auto man = g6::run::read_manifest(dir);
  ASSERT_GE(man.segments.size(), 2u) << "test needs at least two segments";
  const fs::path latest = fs::path(dir) / man.segments.back().file;
  fs::resize_file(latest, fs::file_size(latest) - 9);

  bool completed = false;
  bool saw_fallback = false;
  for (int invocation = 0; invocation < 300 && !completed; ++invocation) {
    Image im("cpu", 1);
    RunConfig cfg = base_config(dir);
    cfg.checkpoint_every = 0.125;
    cfg.resume = true;
    RunManager mgr(*im.integ, cfg);
    const RunReport rep = mgr.run();
    saw_fallback = saw_fallback || rep.crc_fallbacks > 0;
    if (rep.crc_fallbacks > 0) {
      EXPECT_GT(rep.wasted_recompute, 0.0);
    }
    if (rep.outcome == RunOutcome::kCompleted) {
      completed = true;
      expect_bit_identical(ref.ps, im.ps);
      expect_stats_equal(ref.integ->stats(), im.integ->stats());
    }
  }
  ASSERT_TRUE(completed);
  EXPECT_TRUE(saw_fallback) << "resume never exercised the CRC fallback";
}

TEST(RunManager, AllSegmentsCorruptRaises) {
  const std::string dir = test_dir("crc_fatal");
  {
    Image im("cpu", 1);
    RunConfig cfg = base_config(dir);
    cfg.checkpoint_every = 0.125;
    cfg.step_budget = 30;
    RunManager mgr(*im.integ, cfg);
    ASSERT_EQ(mgr.run().outcome, RunOutcome::kPreempted);
  }
  for (const auto& seg : g6::run::read_manifest(dir).segments)
    fs::resize_file(fs::path(dir) / seg.file, 24);

  Image im("cpu", 1);
  RunConfig cfg = base_config(dir);
  cfg.resume = true;
  RunManager mgr(*im.integ, cfg);
  EXPECT_THROW(mgr.run(), g6::util::Error);
}

TEST(RunManager, ChangedParametersRefuseResume) {
  const std::string dir = test_dir("hash_refuse");
  {
    Image im("cpu", 1);
    RunConfig cfg = base_config(dir);
    cfg.step_budget = 3;
    RunManager mgr(*im.integ, cfg);
    ASSERT_EQ(mgr.run().outcome, RunOutcome::kPreempted);
  }
  Image im("cpu", 1, /*eta=*/0.1);  // different accuracy parameter
  RunConfig cfg = base_config(dir);
  cfg.resume = true;
  RunManager mgr(*im.integ, cfg);
  try {
    mgr.run();
    FAIL() << "expected g6::util::Error";
  } catch (const g6::util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("refusing to resume"),
              std::string::npos)
        << err.what();
  }
}

TEST(RunManager, AttachedRngStreamIsCheckpointed) {
  const std::string dir = test_dir("rng");
  g6::util::RngState at_segment{};
  {
    Image im("cpu", 1);
    g6::util::Rng rng(77);
    for (int i = 0; i < 5; ++i) rng.normal();
    RunConfig cfg = base_config(dir);
    cfg.step_budget = 3;
    RunManager mgr(*im.integ, cfg);
    mgr.attach_rng(&rng);
    ASSERT_EQ(mgr.run().outcome, RunOutcome::kPreempted);
    at_segment = rng.save();  // stream position at the preemption checkpoint
  }
  Image im("cpu", 1);
  g6::util::Rng rng(1);  // fresh process: seed differs until restore
  RunConfig cfg = base_config(dir);
  cfg.step_budget = 3;
  cfg.resume = true;
  RunManager mgr(*im.integ, cfg);
  mgr.attach_rng(&rng);
  mgr.run();
  const g6::util::RngState got = rng.save();
  for (int w = 0; w < 4; ++w) EXPECT_EQ(got.s[w], at_segment.s[w]);
  EXPECT_EQ(got.have_spare, at_segment.have_spare);
}

// Accretion runs checkpoint at sweep boundaries through the CheckpointStore
// and resume via AccretionDriver::restore() — bit-identical continuation
// with merging enabled.
TEST(RunManager, AccretionKillAndResumeBitIdentical) {
  const auto make_driver = [](ParticleSystem ps) {
    g6::nbody::CollisionConfig ccfg;
    ccfg.radius_enhancement = 30.0;  // force a few mergers at tiny N
    IntegratorConfig icfg;
    icfg.solar_gm = 1.0;
    icfg.eta = kEta;
    icfg.eta_init = kEta / 2.0;
    icfg.dt_max = 4.0;
    return std::make_unique<g6::nbody::AccretionDriver>(
        std::move(ps), ccfg, icfg, 0.008, [](double eps) {
          return std::make_unique<g6::nbody::CpuDirectBackend>(eps);
        });
  };
  const auto make_ics = [] {
    g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(kN);
    cfg.seed = kSeed;
    return g6::disk::make_disk(cfg).system;
  };

  // Uninterrupted reference.
  auto ref = make_driver(make_ics());
  ref->evolve(kTEnd, 0.125);

  // Checkpointed run killed at t = 0.5, resumed in a fresh driver.
  const std::string dir = test_dir("accretion");
  const std::uint64_t hash = 0xaccde7ULL;
  g6::run::CheckpointStore store(dir, hash, 3);
  auto a = make_driver(make_ics());
  a->on_sweep = [&](const g6::nbody::AccretionDriver& d) {
    auto data = g6::run::capture(d.integrator(), hash);
    data.has_accretion = true;
    data.accretion_mergers = d.total_mergers();
    data.accretion_time = d.current_time();
    store.append(data);
  };
  a->evolve(kTEnd / 2.0, 0.125);
  a.reset();  // the "kill"

  g6::run::CheckpointStore resume_store(dir, hash, 3);
  ASSERT_TRUE(resume_store.open_existing());
  auto restored = resume_store.load_latest();
  ASSERT_TRUE(restored.has_value());
  ASSERT_TRUE(restored->data.has_accretion);
  EXPECT_EQ(restored->data.accretion_time, kTEnd / 2.0);

  auto b = make_driver(make_ics());
  b->restore(std::move(restored->data.system), restored->data.accretion_time,
             restored->data.accretion_mergers, restored->data.t_sys,
             std::move(restored->data.stats));
  b->evolve(kTEnd, 0.125);

  EXPECT_EQ(ref->total_mergers(), b->total_mergers());
  expect_bit_identical(ref->system(), b->system());
  expect_stats_equal(ref->integrator().stats(), b->integrator().stats());
}

}  // namespace
