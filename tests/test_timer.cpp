// Tests for Timer::lap() and the accumulating ScopedTimer.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/timer.hpp"

using g6::util::ScopedTimer;
using g6::util::Timer;

namespace {
void spin_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}
}  // namespace

TEST(Timer, SecondsIncreases) {
  Timer t;
  spin_ms(5);
  const double a = t.seconds();
  EXPECT_GT(a, 0.0);
  spin_ms(5);
  EXPECT_GT(t.seconds(), a);
}

TEST(Timer, LapSplitsWithoutTouchingTotal) {
  Timer t;
  spin_ms(5);
  const double lap1 = t.lap();
  spin_ms(5);
  const double lap2 = t.lap();
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
  // The laps partition the total elapsed time.
  const double total = t.seconds();
  EXPECT_GE(total, lap1 + lap2);
  // A lap taken immediately is (nearly) empty, while the total keeps growing.
  EXPECT_LT(t.lap(), lap1 + lap2);
  EXPECT_GE(t.seconds(), total);
}

TEST(Timer, ResetRestartsBothClocks) {
  Timer t;
  spin_ms(5);
  t.reset();
  EXPECT_LT(t.seconds(), 0.004);
  EXPECT_LT(t.lap(), 0.004);
}

TEST(ScopedTimer, AccumulatesIntoSink) {
  double sink = 0.0;
  {
    ScopedTimer st(sink);
    spin_ms(5);
    EXPECT_GT(st.seconds(), 0.0);
    EXPECT_EQ(sink, 0.0);  // sink only updated at scope exit
  }
  EXPECT_GT(sink, 0.0);
  const double after_first = sink;
  {
    ScopedTimer st(sink);
    spin_ms(5);
  }
  // Accumulates (does not overwrite).
  EXPECT_GT(sink, after_first);
}
