// Tests for the per-destination message aggregator: frame encode/decode,
// the pinned j-update record size the PerfModel byte terms depend on,
// capacity/boundary flush behavior, deterministic flush order, and the
// g6.net.* counter arithmetic.
#include "cluster/aggregator.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cluster/parallel_sim.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace {

using g6::cluster::FrameBuilder;
using g6::cluster::kDefaultAggregationCapacity;
using g6::cluster::kFrameHeaderBytes;
using g6::cluster::kJUpdateRecordBytes;
using g6::cluster::kRecordHeaderBytes;
using g6::cluster::MessageAggregator;
using g6::cluster::NetStats;
using g6::cluster::RecordKind;

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(FrameFormat, RoundTripsMixedRecords) {
  FrameBuilder fb;
  const auto a = bytes_of({1, 2, 3});
  const auto b = bytes_of({});
  const auto c = bytes_of({9, 8, 7, 6, 5});
  fb.add(RecordKind::kJUpdate, a);
  fb.add(RecordKind::kIBatch, b);
  fb.add(RecordKind::kPartial, c);
  EXPECT_EQ(fb.records(), 3u);
  const auto frame = fb.take();
  EXPECT_TRUE(fb.empty());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + 3 * kRecordHeaderBytes + a.size() +
                              b.size() + c.size());

  const auto recs = g6::cluster::parse_frame(frame);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].kind, RecordKind::kJUpdate);
  EXPECT_EQ(recs[1].kind, RecordKind::kIBatch);
  EXPECT_EQ(recs[2].kind, RecordKind::kPartial);
  EXPECT_EQ(g6::cluster::record_payload(frame, recs[0]), a);
  EXPECT_EQ(g6::cluster::record_payload(frame, recs[1]), b);
  EXPECT_EQ(g6::cluster::record_payload(frame, recs[2]), c);
}

TEST(FrameFormat, WrapUnwrapSingleRecord) {
  const auto payload = bytes_of({42, 43, 44});
  const auto frame = g6::cluster::wrap_record(RecordKind::kPartial, payload);
  EXPECT_EQ(g6::cluster::unwrap_record(frame, RecordKind::kPartial), payload);
  EXPECT_THROW(g6::cluster::unwrap_record(frame, RecordKind::kIBatch),
               g6::util::Error);
}

TEST(FrameFormat, RejectsMalformedFrames) {
  // Too short for a header.
  EXPECT_THROW(g6::cluster::parse_frame(bytes_of({1, 2, 3})), g6::util::Error);
  // Bad magic.
  auto frame = g6::cluster::wrap_record(RecordKind::kJUpdate, bytes_of({1}));
  auto bad = frame;
  bad[0] = static_cast<std::byte>(0xFF);
  EXPECT_THROW(g6::cluster::parse_frame(bad), g6::util::Error);
  // Unknown record kind.
  bad = frame;
  bad[kFrameHeaderBytes] = static_cast<std::byte>(77);
  EXPECT_THROW(g6::cluster::parse_frame(bad), g6::util::Error);
  // Record overruns the frame.
  bad = frame;
  bad.pop_back();
  EXPECT_THROW(g6::cluster::parse_frame(bad), g6::util::Error);
  // Trailing garbage after the last record.
  bad = frame;
  bad.push_back(std::byte{0});
  EXPECT_THROW(g6::cluster::parse_frame(bad), g6::util::Error);
  // An empty frame cannot be taken.
  FrameBuilder fb;
  EXPECT_THROW(fb.take(), g6::util::Error);
}

// The PerfModel's byte terms and the capacity-flush arithmetic both assume
// this serialized size; if pack_j() grows, this pin fails first.
TEST(FrameFormat, JUpdateRecordSizeIsPinned) {
  g6::cluster::JParticle p;
  p.id = 7;
  EXPECT_EQ(g6::cluster::pack_j(p).size(), kJUpdateRecordBytes);
}

using SentFrame = std::tuple<int, int, std::vector<std::byte>>;

MessageAggregator::Sink capture(std::vector<SentFrame>& out) {
  return [&out](int src, int dst, std::vector<std::byte> frame) {
    out.emplace_back(src, dst, std::move(frame));
  };
}

TEST(MessageAggregator, CapacityFlushKeepsFramesUnderCapacity) {
  // Capacity for exactly two 16-byte records per frame.
  const std::size_t cap = kFrameHeaderBytes + 2 * (kRecordHeaderBytes + 16);
  MessageAggregator agg(2, cap);
  std::vector<SentFrame> sent;
  const auto sink = capture(sent);
  const auto rec = std::vector<std::byte>(16);
  for (int i = 0; i < 5; ++i) agg.stage(0, 1, RecordKind::kJUpdate, rec, sink);
  // Two capacity flushes (at the 3rd and 5th stage), one record pending.
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_TRUE(agg.pending());
  EXPECT_EQ(agg.stats().capacity_flushes, 2u);
  for (const auto& [src, dst, frame] : sent) {
    EXPECT_LE(frame.size(), cap);
    EXPECT_EQ(g6::cluster::parse_frame(frame).size(), 2u);
  }
  agg.flush(sink);
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_FALSE(agg.pending());
  EXPECT_EQ(g6::cluster::parse_frame(std::get<2>(sent[2])).size(), 1u);
  EXPECT_EQ(agg.stats().records_sent, 5u);
  EXPECT_EQ(agg.stats().frames_sent, 3u);
}

TEST(MessageAggregator, BoundaryFlushOrderIsDestinationMajor) {
  MessageAggregator agg(3);
  std::vector<SentFrame> sent;
  const auto sink = capture(sent);
  const auto rec = bytes_of({1});
  // Stage in an order that is neither source- nor destination-sorted.
  agg.stage(2, 0, RecordKind::kJUpdate, rec, sink);
  agg.stage(0, 2, RecordKind::kJUpdate, rec, sink);
  agg.stage(1, 0, RecordKind::kJUpdate, rec, sink);
  agg.stage(0, 1, RecordKind::kJUpdate, rec, sink);
  agg.stage(2, 1, RecordKind::kJUpdate, rec, sink);
  EXPECT_TRUE(sent.empty());  // all below capacity
  agg.flush(sink);
  ASSERT_EQ(sent.size(), 5u);
  // Ascending (destination, source) — never arrival order.
  const std::vector<std::pair<int, int>> want = {
      {1, 0}, {2, 0}, {0, 1}, {2, 1}, {0, 2}};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::get<0>(sent[i]), want[i].first) << i;
    EXPECT_EQ(std::get<1>(sent[i]), want[i].second) << i;
  }
}

TEST(MessageAggregator, RejectsBadPairsAndTinyCapacity) {
  MessageAggregator agg(2);
  const auto rec = bytes_of({1});
  const auto sink = [](int, int, std::vector<std::byte>) {};
  EXPECT_THROW(agg.stage(0, 0, RecordKind::kJUpdate, rec, sink), g6::util::Error);
  EXPECT_THROW(agg.stage(0, 2, RecordKind::kJUpdate, rec, sink), g6::util::Error);
  EXPECT_THROW(MessageAggregator(2, kFrameHeaderBytes), g6::util::Error);
}

TEST(NetStatsCounters, SavingsArithmetic) {
  NetStats s;
  // Three frames carrying 30 records of 124 bytes each.
  for (int f = 0; f < 3; ++f)
    s.count_frame(kFrameHeaderBytes +
                      10 * (kRecordHeaderBytes + kJUpdateRecordBytes),
                  10);
  s.baseline_messages = 30;
  EXPECT_EQ(s.frames_sent, 3u);
  EXPECT_EQ(s.records_sent, 30u);
  EXPECT_EQ(s.record_bytes, 30u * kJUpdateRecordBytes);
  EXPECT_EQ(s.messages_saved(), 27u);
  EXPECT_DOUBLE_EQ(s.aggregation_factor(), 10.0);
  // 27 saved messages at 78 wire-overhead bytes, minus the framing added.
  const std::int64_t framing = 3 * static_cast<std::int64_t>(kFrameHeaderBytes) +
                               30 * static_cast<std::int64_t>(kRecordHeaderBytes);
  EXPECT_EQ(s.bytes_saved(), 27 * 78 - framing);
}

TEST(NetStatsCounters, PublishesG6NetMetrics) {
  NetStats s;
  s.count_frame(kFrameHeaderBytes + 2 * (kRecordHeaderBytes + 4), 2);
  s.baseline_messages = 2;
  s.capacity_flushes = 1;
  g6::obs::MetricsRegistry reg;
  g6::cluster::publish_net_metrics(s, reg);
  const std::string text = reg.snapshot().to_json();
  EXPECT_NE(text.find("g6.net.frames_sent"), std::string::npos);
  EXPECT_NE(text.find("g6.net.records_coalesced"), std::string::npos);
  EXPECT_NE(text.find("g6.net.aggregation_factor"), std::string::npos);
}

}  // namespace
