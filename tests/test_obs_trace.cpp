// Tests for the trace recorder: span recording, enable/disable, ring
// overflow, Chrome JSON export well-formedness, and (under G6_OBS_DISABLED)
// that the span macros compile to no-ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

using g6::obs::JsonValue;
using g6::obs::TraceRecorder;

namespace {

// The global recorder is shared across tests in this binary; each test
// resets it to a known state.
void reset_global() {
  TraceRecorder::global().enable(false);
  TraceRecorder::global().clear();
}

void traced_fn() {
  G6_TRACE_SPAN("traced_fn");
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
}

}  // namespace

#ifdef G6_OBS_DISABLED

// Build-flag verification: with G6_OBS_DISABLED the macros must expand to
// nothing — no span objects, no events, even with recording enabled.
TEST(ObsTraceDisabled, MacrosAreNoOps) {
  reset_global();
  TraceRecorder::global().enable();
  traced_fn();
  {
    G6_TRACE_SPAN("outer");
    G6_TRACE_SPAN_CAT("inner", "test");
  }
  EXPECT_TRUE(TraceRecorder::global().events().empty());
  reset_global();
}

#else  // !G6_OBS_DISABLED

TEST(ObsTrace, DisabledRecordsNothing) {
  reset_global();
  traced_fn();
  EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST(ObsTrace, SpansRecordNameCatAndDuration) {
  reset_global();
  TraceRecorder::global().enable();
  {
    G6_TRACE_SPAN_CAT("outer", "test");
    traced_fn();
  }
  TraceRecorder::global().enable(false);

  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opens first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_STREQ(events[1].name, "traced_fn");
  EXPECT_STREQ(events[1].cat, "g6");
  // Nesting: outer contains traced_fn.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  reset_global();
}

TEST(ObsTrace, ClearDropsEvents) {
  reset_global();
  TraceRecorder::global().enable();
  traced_fn();
  EXPECT_FALSE(TraceRecorder::global().events().empty());
  TraceRecorder::global().clear();
  EXPECT_TRUE(TraceRecorder::global().events().empty());
  reset_global();
}

TEST(ObsTrace, RingOverflowKeepsNewestAndCountsDropped) {
  TraceRecorder rec;
  rec.set_thread_capacity(8);
  rec.enable();
  for (int i = 0; i < 20; ++i) rec.record("ev", "test", 100 + i, 1);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  // The retained events are the newest 12..19, sorted.
  EXPECT_EQ(events.front().start_ns, 112u);
  EXPECT_EQ(events.back().start_ns, 119u);
}

TEST(ObsTrace, MultiThreadedSpansCarryDistinctTids) {
  TraceRecorder rec;
  rec.enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&rec] {
      const auto t0 = rec.now_ns();
      rec.record("worker", "test", t0, 10);
    });
  for (auto& th : threads) th.join();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(ObsTrace, ChromeJsonParsesBack) {
  TraceRecorder rec;
  rec.enable();
  rec.record("phase \"a\"", "g6", 1000, 2500);  // name needing escaping
  rec.record("phase_b", "hw", 4000, 1500);

  const JsonValue doc = JsonValue::parse(rec.to_chrome_json());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_DOUBLE_EQ(e.find("pid")->as_number(), 1.0);
    EXPECT_TRUE(e.find("tid")->is_number());
    EXPECT_TRUE(e.find("ts")->is_number());
    EXPECT_TRUE(e.find("dur")->is_number());
  }
  // Timestamps are microseconds: 1000 ns -> 1 us, 2500 ns -> 2.5 us.
  EXPECT_DOUBLE_EQ(events->at(0).find("ts")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(events->at(0).find("dur")->as_number(), 2.5);
  EXPECT_EQ(events->at(0).find("name")->as_string(), "phase \"a\"");
}

TEST(ObsTrace, WriteChromeTraceFile) {
  TraceRecorder rec;
  rec.enable();
  rec.record("ev", "g6", 0, 100);
  const std::string path = ::testing::TempDir() + "/g6_trace_test.json";
  ASSERT_TRUE(rec.write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.find("traceEvents")->size(), 1u);
}

#endif  // G6_OBS_DISABLED
