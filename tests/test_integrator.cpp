// Integration tests for the block-timestep Hermite integrator.
#include "nbody/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "disk/kepler.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"

namespace {

using g6::nbody::compute_energy;
using g6::nbody::CpuDirectBackend;
using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;
using g6::nbody::ParticleSystem;
using g6::util::Vec3;

constexpr double kPi = std::numbers::pi;

// A single massless-ish particle on a circular heliocentric orbit: pure
// Kepler motion under the external solar potential.
TEST(Integrator, CircularHeliocentricOrbit) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-5;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  integ.evolve(2.0 * kPi);  // one full orbit

  EXPECT_NEAR(ps.pos(0).x, 1.0, 2e-6);
  EXPECT_NEAR(ps.pos(0).y, 0.0, 2e-6);
  EXPECT_NEAR(norm(ps.pos(0)), 1.0, 1e-8);
  EXPECT_DOUBLE_EQ(ps.time(0), 2.0 * kPi);
}

TEST(Integrator, EccentricOrbitEnergyConserved) {
  g6::disk::OrbitalElements el;
  el.a = 1.0;
  el.e = 0.6;
  const auto sv = g6::disk::elements_to_state(el, 1.0);
  ParticleSystem ps;
  ps.add(1e-12, sv.pos, sv.vel);
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-4;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
  integ.evolve(3.0 * 2.0 * kPi);
  const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
  // 4th-order scheme at eta = 0.01 on an e = 0.6 orbit: ~1e-6 relative
  // drift over three orbits (verified to scale as dt^4 with eta).
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 5e-6);
  // The eccentric orbit must have forced timestep refinement at pericentre.
  EXPECT_GT(integ.stats().dt_shrinks, 0u);
  EXPECT_GT(integ.stats().dt_grows, 0u);
}

// An equal-mass binary orbiting via the *mutual* force path (the backend),
// with no external potential.
TEST(Integrator, MutualBinaryConservesEnergy) {
  ParticleSystem ps;
  // Circular binary: separation 1, masses 0.5 each -> v_rel = 1.
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-5;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();

  const double e0 = compute_energy(ps, 0.0, 0.0).total();
  integ.evolve(4.0 * kPi);  // two orbital periods (P = 2 pi here)
  const double e1 = compute_energy(ps, 0.0, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 5e-8);
  // Separation stays ~1.
  EXPECT_NEAR(norm(ps.pos(0) - ps.pos(1)), 1.0, 1e-6);
}

TEST(Integrator, SynchronizeBringsAllToCommonTime) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  ps.add(1e-12, {2, 0, 0}, {0, std::sqrt(0.5), 0});
  ps.add(1e-12, {4, 0, 0}, {0, 0.5, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  integ.evolve(1.0);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_DOUBLE_EQ(ps.time(i), 1.0);
  // And integration can continue cleanly past a sync point.
  integ.evolve(2.0);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_DOUBLE_EQ(ps.time(i), 2.0);
}

TEST(Integrator, StatsCountSteps) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.record_block_sizes = true;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  integ.evolve(1.0);
  const auto& st = integ.stats();
  EXPECT_GT(st.blocks, 0u);
  EXPECT_GE(st.steps, st.blocks);  // single particle: equal
  EXPECT_EQ(st.block_sizes.size(), st.blocks);
  EXPECT_DOUBLE_EQ(st.mean_block_size(), 1.0);
}

TEST(Integrator, OnBlockCallbackFires) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  std::size_t calls = 0;
  integ.on_block = [&](double, std::size_t n) {
    ++calls;
    EXPECT_EQ(n, 1u);
  };
  integ.evolve(0.5);
  EXPECT_GT(calls, 0u);
}

TEST(Integrator, BlockTimesArePowerOfTwoAligned) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  ps.add(1e-12, {1.5, 0, 0}, {0, std::sqrt(1.0 / 1.5), 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  for (int i = 0; i < 50; ++i) {
    const double t = integ.step();
    // Every block time is a multiple of dt_min.
    const double q = t / cfg.dt_min;
    EXPECT_EQ(q, std::floor(q));
  }
}

TEST(Integrator, ErrorsOnMisuse) {
  ParticleSystem ps;
  CpuDirectBackend backend(0.0);
  {
    HermiteIntegrator integ(ps, backend, {});
    EXPECT_THROW(integ.initialize(), g6::util::Error);  // empty system
  }
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  {
    HermiteIntegrator integ(ps, backend, {});
    EXPECT_THROW(integ.step(), g6::util::Error);  // not initialized
  }
  {
    IntegratorConfig bad;
    bad.dt_max = 0.3;  // not a power of two
    EXPECT_THROW(HermiteIntegrator(ps, backend, bad), g6::util::Error);
  }
  {
    IntegratorConfig bad;
    bad.eta = -1.0;
    EXPECT_THROW(HermiteIntegrator(ps, backend, bad), g6::util::Error);
  }
  {
    HermiteIntegrator integ(ps, backend, {});
    integ.initialize();
    integ.evolve(1.0);
    EXPECT_THROW(integ.evolve(0.5), g6::util::Error);  // backwards
  }
}

// The P(EC)^n option (Kokubo, Yoshinaga & Makino 1998): with constant steps
// the iterated corrector is (nearly) time-symmetric and the secular energy
// drift of the PEC scheme collapses by orders of magnitude.
TEST(Integrator, IteratedCorrectorKillsSecularDrift) {
  auto drift = [](int iterations) {
    g6::disk::OrbitalElements el;
    el.a = 1.0;
    el.e = 0.3;
    const auto sv = g6::disk::elements_to_state(el, 1.0);
    ParticleSystem ps;
    ps.add(1e-12, sv.pos, sv.vel);
    CpuDirectBackend backend(0.0);
    IntegratorConfig cfg;
    cfg.solar_gm = 1.0;
    cfg.dt_max = 0x1p-6;
    cfg.dt_min = 0x1p-6;  // constant steps
    cfg.eta = 1e9;        // timestep criterion effectively disabled
    cfg.eta_init = 1e9;
    cfg.corrector_iterations = iterations;
    HermiteIntegrator integ(ps, backend, cfg);
    integ.initialize();
    const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    integ.evolve(50.0 * 2.0 * kPi);
    const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    return std::abs((e1 - e0) / e0);
  };
  const double pec = drift(1);
  const double pec2 = drift(2);
  EXPECT_LT(pec2, 1e-3 * pec);  // measured: ~2.8e-7 -> ~6.8e-12
}

TEST(Integrator, InvalidCorrectorIterationsRejected) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.corrector_iterations = 0;
  EXPECT_THROW(HermiteIntegrator(ps, backend, cfg), g6::util::Error);
}

TEST(Integrator, ComputeStatesMatchesComputeAtPredictedState) {
  // compute() must equal compute_states() fed with the j-memory predictions.
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  ps.add(0.1, {2, 0, 0}, {0, 0.7, 0});
  CpuDirectBackend backend(0.0);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{0, 2};
  std::vector<g6::nbody::Force> a(2), b(2);
  backend.compute(0.0, ilist, a);
  std::vector<Vec3> pos{ps.pos(0), ps.pos(2)}, vel{ps.vel(0), ps.vel(2)};
  backend.compute_states(0.0, ilist, pos, vel, b);
  for (int k = 0; k < 2; ++k) {
    EXPECT_EQ(a[static_cast<std::size_t>(k)].acc, b[static_cast<std::size_t>(k)].acc);
    EXPECT_EQ(a[static_cast<std::size_t>(k)].jerk,
              b[static_cast<std::size_t>(k)].jerk);
  }
}

TEST(Integrator, TwoBodyAgainstKeplerPrediction) {
  // Planet of finite mass around the external Sun plus a test particle far
  // away: the planet's orbit should track the two-body solution (the test
  // particle's pull is negligible at 1e-12).
  g6::disk::OrbitalElements el;
  el.a = 20.0;
  el.e = 0.1;
  el.M = 0.0;
  const auto sv = g6::disk::elements_to_state(el, 1.0);
  ParticleSystem ps;
  ps.add(1e-5, sv.pos, sv.vel);
  ps.add(1e-12, {-30.0, 0, 0}, {0, -std::sqrt(1.0 / 30.0), 0});
  CpuDirectBackend backend(0.0);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-1;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();

  const double t_end = 32.0;
  integ.evolve(t_end);

  g6::disk::OrbitalElements expect = el;
  // Mean motion of a(=20) orbit about gm=1 (+ tiny planet mass, negligible).
  expect.M = el.M + std::sqrt(1.0 / (20.0 * 20.0 * 20.0)) * t_end;
  const auto sv_expect = g6::disk::elements_to_state(expect, 1.0);
  EXPECT_NEAR(norm(ps.pos(0) - sv_expect.pos), 0.0, 1e-4);
}

}  // namespace
