// Tests for the GRAPE-6 ForceBackend: agreement with the CPU reference and
// end-to-end integration behaviour on the hardware-precision path.
#include "grape6/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "disk/disk_model.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/rng.hpp"

namespace {

using g6::hw::Grape6Backend;
using g6::hw::MachineConfig;
using g6::nbody::CpuDirectBackend;
using g6::nbody::Force;
using g6::nbody::ParticleSystem;

ParticleSystem small_disk(std::size_t n) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  cfg.seed = 555;
  return g6::disk::make_disk(cfg).system;
}

TEST(Grape6Backend, AgreesWithCpuToFormatPrecision) {
  ParticleSystem ps = small_disk(200);
  const double eps = 0.008;

  CpuDirectBackend cpu(eps);
  Grape6Backend grape(MachineConfig::mini(2, 4, 64), eps);
  cpu.load(ps);
  grape.load(ps);

  std::vector<std::uint32_t> ilist;
  for (std::uint32_t i = 0; i < ps.size(); i += 7) ilist.push_back(i);
  std::vector<Force> ref(ilist.size()), out(ilist.size());
  cpu.compute(0.0, ilist, ref);
  grape.compute(0.0, ilist, out);

  for (std::size_t k = 0; k < ilist.size(); ++k) {
    const double scale = norm(ref[k].acc);
    EXPECT_NEAR(norm(out[k].acc - ref[k].acc), 0.0, 3e-6 * scale) << k;
    EXPECT_NEAR(out[k].pot, ref[k].pot, 3e-6 * std::abs(ref[k].pot)) << k;
  }
}

TEST(Grape6Backend, UpdatePropagatesToJMemory) {
  ParticleSystem ps = small_disk(50);
  Grape6Backend grape(MachineConfig::mini(2, 2, 64), 0.008);
  grape.load(ps);

  ps.mass(10) *= 100.0;
  const std::vector<std::uint32_t> upd{10};
  grape.update(upd, ps);
  EXPECT_NEAR(grape.machine().read_j(10).mass / ps.mass(10), 1.0, 1e-6);
}

TEST(Grape6Backend, CapacityCheckedOnLoad) {
  ParticleSystem ps = small_disk(100);
  Grape6Backend grape(MachineConfig::mini(1, 1, 16), 0.008);
  EXPECT_THROW(grape.load(ps), g6::util::Error);
}

TEST(Grape6Backend, CountsInteractions) {
  ParticleSystem ps = small_disk(30);
  Grape6Backend grape(MachineConfig::mini(2, 2, 64), 0.008);
  grape.load(ps);
  std::vector<std::uint32_t> ilist{0, 1, 2};
  std::vector<Force> out(3);
  grape.compute(0.0, ilist, out);
  EXPECT_EQ(grape.interaction_count(), 3u * 32u);  // 30 j + 2 protoplanets
}

TEST(Grape6Backend, ModeledTimeAccumulates) {
  ParticleSystem ps = small_disk(30);
  Grape6Backend grape(MachineConfig::mini(2, 2, 64), 0.008);
  grape.load(ps);
  std::vector<std::uint32_t> ilist{0, 1, 2};
  std::vector<Force> out(3);
  EXPECT_EQ(grape.modeled_hw_seconds(), 0.0);
  grape.compute(0.0, ilist, out);
  const double t1 = grape.modeled_hw_seconds();
  EXPECT_GT(t1, 0.0);
  grape.compute(0.0, ilist, out);
  EXPECT_GT(grape.modeled_hw_seconds(), t1);
}

// End-to-end: integrate a binary with the GRAPE backend. The reduced force
// precision (~1e-7 relative) bounds but does not destroy energy conservation.
TEST(Grape6Backend, BinaryIntegrationOnHardwarePath) {
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});

  g6::hw::MachineConfig cfg = MachineConfig::mini(2, 2, 16);
  cfg.fmt = g6::hw::FormatSpec::for_scales(2.0, 1.0);
  Grape6Backend grape(cfg, 0.0);
  g6::nbody::IntegratorConfig icfg;
  icfg.eta = 0.01;
  icfg.dt_max = 0x1p-5;
  g6::nbody::HermiteIntegrator integ(ps, grape, icfg);
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  integ.evolve(2.0 * std::numbers::pi);
  const double e1 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-5);
  EXPECT_NEAR(norm(ps.pos(0) - ps.pos(1)), 1.0, 1e-3);
}

TEST(Grape6Backend, DeterministicAcrossRuns) {
  ParticleSystem ps = small_disk(64);
  auto run = [&] {
    Grape6Backend grape(MachineConfig::mini(2, 4, 32), 0.008);
    grape.load(ps);
    std::vector<std::uint32_t> ilist{0, 5, 9};
    std::vector<Force> out(3);
    grape.compute(0.0, ilist, out);
    return out;
  };
  const auto a = run();
  const auto b = run();
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(a[static_cast<std::size_t>(k)].acc, b[static_cast<std::size_t>(k)].acc);
    EXPECT_EQ(a[static_cast<std::size_t>(k)].jerk,
              b[static_cast<std::size_t>(k)].jerk);
  }
}

}  // namespace
