// Tests for the 4th-order Hermite scheme kernels.
#include "nbody/hermite.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using g6::nbody::aarseth_dt;
using g6::nbody::hermite_correct;
using g6::nbody::hermite_derivatives;
using g6::nbody::hermite_predict;
using g6::nbody::HermiteDerivatives;
using g6::nbody::initial_dt;
using g6::nbody::Predicted;
using g6::util::Vec3;

TEST(HermitePredict, ZeroDtIsIdentity) {
  const Vec3 x{1, 2, 3}, v{4, 5, 6}, a{7, 8, 9}, j{1, 1, 1};
  const Predicted p = hermite_predict(x, v, a, j, 0.0);
  EXPECT_EQ(p.pos, x);
  EXPECT_EQ(p.vel, v);
}

TEST(HermitePredict, MatchesTaylorSeries) {
  const Vec3 x{1, 0, 0}, v{0, 1, 0}, a{0, 0, 2}, j{6, 0, 0};
  const double dt = 0.5;
  const Predicted p = hermite_predict(x, v, a, j, dt);
  EXPECT_DOUBLE_EQ(p.pos.x, 1.0 + 6.0 * dt * dt * dt / 6.0);
  EXPECT_DOUBLE_EQ(p.pos.y, dt);
  EXPECT_DOUBLE_EQ(p.pos.z, dt * dt);
  EXPECT_DOUBLE_EQ(p.vel.x, 6.0 * dt * dt / 2.0);
  EXPECT_DOUBLE_EQ(p.vel.y, 1.0);
  EXPECT_DOUBLE_EQ(p.vel.z, 2.0 * dt);
}

// If the true acceleration is a cubic polynomial of time, the Hermite
// corrector reconstructs position and velocity exactly (the scheme is
// 4th order: exact through a^(3) = const).
TEST(HermiteCorrect, ExactForCubicAcceleration) {
  // a(t) = a0 + j0 t + s0 t^2/2 + c0 t^3/6 per component.
  const Vec3 a0{1.0, -2.0, 0.5}, j0{0.3, 0.1, -0.2}, s0{0.05, -0.02, 0.01},
      c0{0.004, 0.002, -0.006};
  const Vec3 x0{0.1, 0.2, 0.3}, v0{-0.5, 0.4, 0.0};
  const double dt = 0.37;

  auto acc_at = [&](double t) {
    return a0 + j0 * t + s0 * (0.5 * t * t) + c0 * (t * t * t / 6.0);
  };
  auto jerk_at = [&](double t) { return j0 + s0 * t + c0 * (0.5 * t * t); };
  // Exact integrals.
  auto vel_at = [&](double t) {
    return v0 + a0 * t + j0 * (0.5 * t * t) + s0 * (t * t * t / 6.0) +
           c0 * (t * t * t * t / 24.0);
  };
  auto pos_at = [&](double t) {
    return x0 + v0 * t + a0 * (0.5 * t * t) + j0 * (t * t * t / 6.0) +
           s0 * (t * t * t * t / 24.0) + c0 * (t * t * t * t * t / 120.0);
  };

  const Predicted pred = hermite_predict(x0, v0, a0, j0, dt);
  const HermiteDerivatives d =
      hermite_derivatives(a0, j0, acc_at(dt), jerk_at(dt), dt);
  const Predicted corr = hermite_correct(pred, d, dt);

  EXPECT_NEAR(norm(corr.pos - pos_at(dt)), 0.0, 1e-14);
  EXPECT_NEAR(norm(corr.vel - vel_at(dt)), 0.0, 1e-14);
  // The recovered derivatives match the generating polynomial.
  EXPECT_NEAR(norm(d.snap - s0), 0.0, 1e-12);
  EXPECT_NEAR(norm(d.crackle - c0), 0.0, 1e-12);
}

// Convergence order sweep: the per-step error of the corrector on a known
// smooth trajectory (circular orbit) scales as dt^5 (local), i.e. 4th-order
// global accuracy.
class HermiteOrder : public ::testing::TestWithParam<double> {};

namespace orbit {
// Circular Kepler orbit about a unit point mass: everything analytic.
Vec3 pos(double t) { return {std::cos(t), std::sin(t), 0.0}; }
Vec3 vel(double t) { return {-std::sin(t), std::cos(t), 0.0}; }
Vec3 acc(double t) { return {-std::cos(t), -std::sin(t), 0.0}; }
Vec3 jerk(double t) { return {std::sin(t), -std::cos(t), 0.0}; }
}  // namespace orbit

TEST_P(HermiteOrder, LocalErrorScalesAsDt5) {
  const double dt = GetParam();
  const Predicted pred =
      hermite_predict(orbit::pos(0), orbit::vel(0), orbit::acc(0), orbit::jerk(0), dt);
  const HermiteDerivatives d = hermite_derivatives(
      orbit::acc(0), orbit::jerk(0), orbit::acc(dt), orbit::jerk(dt), dt);
  const Predicted corr = hermite_correct(pred, d, dt);
  const double err = norm(corr.pos - orbit::pos(dt));
  // |err| <= C dt^6 for this scheme variant on an analytic force sampled
  // exactly; allow dt^5 with a loose constant.
  EXPECT_LT(err, 0.05 * std::pow(dt, 5)) << "dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(Steps, HermiteOrder,
                         ::testing::Values(0.2, 0.1, 0.05, 0.025, 0.0125));

TEST(HermiteOrder, ErrorRatioConfirmsOrder) {
  auto local_err = [](double dt) {
    const Predicted pred = hermite_predict(orbit::pos(0), orbit::vel(0),
                                           orbit::acc(0), orbit::jerk(0), dt);
    const HermiteDerivatives d = hermite_derivatives(
        orbit::acc(0), orbit::jerk(0), orbit::acc(dt), orbit::jerk(dt), dt);
    return norm(hermite_correct(pred, d, dt).pos - orbit::pos(dt));
  };
  const double r = local_err(0.2) / local_err(0.1);
  // Halving dt should shrink the local error by ~2^5..2^6.
  EXPECT_GT(r, 20.0);
  EXPECT_LT(r, 90.0);
}

TEST(AarsethDt, ScalesWithEta) {
  const Vec3 a{1, 0, 0}, j{0.1, 0, 0};
  const HermiteDerivatives d{{0.01, 0, 0}, {0.001, 0, 0}};
  const double dt1 = aarseth_dt(a, j, d, 0.1, 0.01);
  const double dt2 = aarseth_dt(a, j, d, 0.1, 0.04);
  EXPECT_NEAR(dt2 / dt1, 2.0, 1e-12);  // sqrt(4)
}

TEST(AarsethDt, GrowsWhenDerivativesVanish) {
  const Vec3 a{1, 0, 0}, j{};
  const HermiteDerivatives d{{}, {}};
  EXPECT_GT(aarseth_dt(a, j, d, 0.25, 0.01), 0.25);
}

TEST(AarsethDt, SmallForStronglyVaryingForce) {
  const Vec3 a{1, 0, 0}, j{100, 0, 0};
  const HermiteDerivatives d{{1e4, 0, 0}, {1e6, 0, 0}};
  EXPECT_LT(aarseth_dt(a, j, d, 0.1, 0.01), 0.01);
}

TEST(InitialDt, CappedAtMax) {
  EXPECT_DOUBLE_EQ(initial_dt({1, 0, 0}, {}, 0.01, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(initial_dt({1, 0, 0}, {1000, 0, 0}, 0.01, 0.25), 1e-5);
}

}  // namespace
