// Tests for the ProgressTracker: ticket updates, fraction/ETA math, EWMA
// sim-rate behaviour, model-drift reporting, slot reuse on resumed names,
// and the /progress JSON payload.
#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

using g6::obs::JobProgress;
using g6::obs::JobState;
using g6::obs::JobTicket;
using g6::obs::JsonValue;
using g6::obs::ProgressTracker;

#ifndef G6_OBS_DISABLED

TEST(Progress, StateNames) {
  EXPECT_STREQ(g6::obs::job_state_name(JobState::kPending), "pending");
  EXPECT_STREQ(g6::obs::job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(g6::obs::job_state_name(JobState::kDone), "done");
  EXPECT_STREQ(g6::obs::job_state_name(JobState::kFailed), "failed");
  EXPECT_STREQ(g6::obs::job_state_name(JobState::kPreempted), "preempted");
}

TEST(Progress, InvalidTicketIsInert) {
  JobTicket t;
  EXPECT_FALSE(t.valid());
  t.update(1.0, 10, 0.5);  // must not crash
  t.set_model_seconds_per_block(1.0);
  t.set_capacity_fraction(0.5);
  t.finish(JobState::kDone);
}

TEST(Progress, UpdateComputesFractionThroughputAndEta) {
  ProgressTracker tracker;
  JobTicket t = tracker.add_job("job", 0.0, 10.0);
  EXPECT_TRUE(t.valid());

  // First observation seeds the EWMA directly: 2 sim-units over 1 s wall.
  t.update(2.0, 100, 1.0);
  auto jobs = tracker.snapshot();
  ASSERT_EQ(jobs.size(), 1u);
  const JobProgress& p = jobs[0];
  EXPECT_EQ(p.name, "job");
  EXPECT_EQ(p.state, JobState::kRunning);  // update() flips pending->running
  EXPECT_DOUBLE_EQ(p.fraction, 0.2);
  EXPECT_EQ(p.blocks, 100u);
  EXPECT_DOUBLE_EQ(p.blocks_per_second, 100.0);
  EXPECT_DOUBLE_EQ(p.sim_rate, 2.0);
  EXPECT_DOUBLE_EQ(p.eta_seconds, (10.0 - 2.0) / 2.0);
  EXPECT_LT(p.model_eta_seconds, 0.0);  // no model supplied
  EXPECT_DOUBLE_EQ(p.drift, 0.0);
  EXPECT_DOUBLE_EQ(p.capacity_fraction, 1.0);
}

TEST(Progress, EwmaTracksSteadyRate) {
  ProgressTracker tracker;
  JobTicket t = tracker.add_job("steady", 0.0, 100.0);
  // A steady 2 sim-units/s pace must keep the EWMA pinned at 2.
  for (int k = 1; k <= 20; ++k)
    t.update(2.0 * k, static_cast<std::uint64_t>(10 * k), 1.0 * k);
  const JobProgress p = tracker.snapshot()[0];
  EXPECT_NEAR(p.sim_rate, 2.0, 1e-12);
  EXPECT_NEAR(p.eta_seconds, (100.0 - 40.0) / 2.0, 1e-9);
}

TEST(Progress, ModelDriftAndModelEta) {
  ProgressTracker tracker;
  JobTicket t = tracker.add_job("model", 0.0, 10.0);
  t.update(5.0, 100, 2.0);              // measured: 0.02 s/block
  t.set_model_seconds_per_block(0.01);  // model says 0.01 s/block
  const JobProgress p = tracker.snapshot()[0];
  EXPECT_DOUBLE_EQ(p.model_seconds_per_block, 0.01);
  EXPECT_DOUBLE_EQ(p.drift, 2.0);  // twice as slow as the model
  // 5 sim-units remain at 0.05 sim-units/block -> 100 blocks * 0.01 s.
  EXPECT_NEAR(p.model_eta_seconds, 1.0, 1e-9);
}

TEST(Progress, FinishStatesAndDoneEta) {
  ProgressTracker tracker;
  JobTicket a = tracker.add_job("a", 0.0, 1.0);
  JobTicket b = tracker.add_job("b", 0.0, 1.0);
  a.update(1.0, 4, 0.5);
  a.finish(JobState::kDone);
  b.finish(JobState::kFailed);
  const auto jobs = tracker.snapshot();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].state, JobState::kDone);
  EXPECT_DOUBLE_EQ(jobs[0].eta_seconds, 0.0);
  EXPECT_EQ(jobs[1].state, JobState::kFailed);
}

TEST(Progress, NameReuseContinuesSameSlot) {
  ProgressTracker tracker;
  JobTicket first = tracker.add_job("resumable", 0.0, 10.0);
  first.update(3.0, 30, 1.0);
  // A resumed run re-registers under the same name from its restart time.
  JobTicket second = tracker.add_job("resumable", 3.0, 10.0);
  second.update(4.0, 40, 2.0);
  const auto jobs = tracker.snapshot();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].t_start, 3.0);
  EXPECT_DOUBLE_EQ(jobs[0].t_sys, 4.0);
  EXPECT_EQ(jobs[0].blocks, 40u);
}

TEST(Progress, CapacityFractionPassesThrough) {
  ProgressTracker tracker;
  JobTicket t = tracker.add_job("degraded", 0.0, 1.0);
  t.set_capacity_fraction(0.75);
  EXPECT_DOUBLE_EQ(tracker.snapshot()[0].capacity_fraction, 0.75);
}

TEST(Progress, ToJsonParsesWithCounts) {
  ProgressTracker tracker;
  JobTicket a = tracker.add_job("alpha", 0.0, 2.0);
  JobTicket b = tracker.add_job("beta", 0.0, 2.0);
  a.update(1.0, 10, 0.1);
  b.update(2.0, 20, 0.2);
  b.finish(JobState::kDone);

  const JsonValue doc = JsonValue::parse(tracker.to_json());
  const JsonValue* jobs = doc.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ(jobs->at(0).find("name")->as_string(), "alpha");
  EXPECT_EQ(jobs->at(0).find("state")->as_string(), "running");
  EXPECT_EQ(jobs->at(1).find("state")->as_string(), "done");
  EXPECT_DOUBLE_EQ(jobs->at(1).find("fraction")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.find("done")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.find("running")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.find("failed")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.find("total")->as_number(), 2.0);
}

#else  // G6_OBS_DISABLED

// Stripped build: the tracker API must stay callable and return nothing.
TEST(ProgressDisabled, EverythingIsNoop) {
  ProgressTracker& tracker = ProgressTracker::global();
  JobTicket t = tracker.add_job("job", 0.0, 1.0);
  EXPECT_FALSE(t.valid());
  t.update(0.5, 1, 0.1);
  t.finish(JobState::kDone);
  EXPECT_TRUE(tracker.snapshot().empty());
  EXPECT_EQ(tracker.to_json(), "{}");
}

#endif  // G6_OBS_DISABLED
