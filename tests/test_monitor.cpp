// Tests for the monitoring stack: Prometheus exposition (names, values, and
// a tiny grammar parser over the full output), MonitorServer routing with
// and without sockets, and an end-to-end monitored run polled over a real
// client socket asserting monotone t_sys — satellite (c) of the live
// monitoring layer.
#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor_server.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"
#include "util/timer.hpp"

#ifndef G6_OBS_DISABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#endif

using g6::obs::HttpResponse;
using g6::obs::JsonValue;
using g6::obs::MetricsRegistry;
using g6::obs::Monitor;
using g6::obs::MonitorConfig;
using g6::obs::MonitorServer;

namespace {

// --- Tiny Prometheus text-exposition grammar parser (format 0.0.4) --------
// Returns std::nullopt when every line is valid, else a description of the
// first violation. Deliberately small: names, optional labels, one value.

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1))
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_sample_value(const std::string& s) {
  if (s == "NaN" || s == "+Inf" || s == "-Inf") return true;
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::optional<std::string> check_prometheus_grammar(const std::string& text) {
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    auto fail = [&](const std::string& why) {
      return "line " + std::to_string(lineno) + ": " + why + ": " + line;
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" and "# HELP <name> <text>" are comments
      // with structure; anything else after '#' is free-form.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream is(line.substr(7));
        std::string name, type;
        is >> name >> type;
        if (!valid_metric_name(name)) return fail("bad TYPE metric name");
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "untyped")
          return fail("bad TYPE kind");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("no value separator");
    if (!valid_metric_name(line.substr(0, name_end)))
      return fail("bad sample metric name");
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) return fail("unterminated label set");
      // label pairs: name="value" separated by commas
      std::string labels = line.substr(name_end + 1, close - name_end - 1);
      std::istringstream ls(labels);
      std::string pair;
      while (std::getline(ls, pair, ',')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) return fail("label without '='");
        if (!valid_metric_name(pair.substr(0, eq))) return fail("bad label name");
        const std::string v = pair.substr(eq + 1);
        if (v.size() < 2 || v.front() != '"' || v.back() != '"')
          return fail("label value not quoted");
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ')
      return fail("no space before value");
    if (!valid_sample_value(line.substr(value_start + 1)))
      return fail("unparsable sample value");
  }
  return std::nullopt;
}

}  // namespace

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(g6::obs::prometheus_name("g6.run.t_sys"), "g6_run_t_sys");
  EXPECT_EQ(g6::obs::prometheus_name("plain_name"), "plain_name");
  EXPECT_EQ(g6::obs::prometheus_name("9starts.bad"), "_starts_bad");
  EXPECT_EQ(g6::obs::prometheus_name(""), "_");
  EXPECT_TRUE(valid_metric_name(g6::obs::prometheus_name("x:y.z-w 1")));
}

TEST(Exposition, ValueFormatting) {
  EXPECT_EQ(g6::obs::prometheus_value(std::nan("")), "NaN");
  EXPECT_EQ(g6::obs::prometheus_value(HUGE_VAL), "+Inf");
  EXPECT_EQ(g6::obs::prometheus_value(-HUGE_VAL), "-Inf");
  EXPECT_EQ(g6::obs::prometheus_value(3.0), "3");
  EXPECT_TRUE(valid_sample_value(g6::obs::prometheus_value(0.1)));
}

TEST(Exposition, FullSnapshotPassesGrammar) {
  MetricsRegistry reg;
  reg.counter("g6.test.blocks").add(42);
  reg.gauge("g6.test.t_sys").set(1.5);
  auto h = reg.histogram("g6.test.block_size");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));

  const std::string text = g6::obs::to_prometheus(reg.snapshot());
  const auto err = check_prometheus_grammar(text);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_NE(text.find("# TYPE g6_test_blocks counter"), std::string::npos);
  EXPECT_NE(text.find("g6_test_blocks 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g6_test_block_size summary"), std::string::npos);
  EXPECT_NE(text.find("g6_test_block_size{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("g6_test_block_size_count 100"), std::string::npos);
}

#ifndef G6_OBS_DISABLED

namespace {

/// Minimal HTTP/1.0 GET over a real client socket; returns (status, body,
/// content_type) — the e2e path CI's monitor-smoke exercises with curl.
struct HttpResult {
  int status = 0;
  std::string content_type;
  std::string body;
};

HttpResult http_get(int port, const std::string& path) {
  HttpResult res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return res;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::sscanf(raw.c_str(), "HTTP/1.0 %d", &res.status);
  const std::size_t ct = raw.find("Content-Type: ");
  if (ct != std::string::npos)
    res.content_type = raw.substr(ct + 14, raw.find('\r', ct) - ct - 14);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) res.body = raw.substr(split + 4);
  return res;
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "g6_monitor_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

TEST(MonitorServer, HandleDispatchesWithoutSockets) {
  MonitorServer server;
  server.route("/ping", [] {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  EXPECT_EQ(server.handle("/ping").status, 200);
  EXPECT_EQ(server.handle("/ping").body, "pong\n");
  EXPECT_EQ(server.handle("/ping?verbose=1").status, 200);  // query stripped
  EXPECT_EQ(server.handle("/missing").status, 404);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(MonitorServer, ServesOverRealSocket) {
  MonitorServer server;
  server.route("/hello", [] {
    return HttpResponse{200, "application/json", "{\"ok\":true}"};
  });
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const HttpResult ok = http_get(server.port(), "/hello");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.content_type, "application/json");
  EXPECT_EQ(ok.body, "{\"ok\":true}");

  const HttpResult missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
}

// Satellite (c): end-to-end monitored run. A real Hermite integration runs
// with the monitor attached; /metrics and /progress are polled over a real
// client socket between evolve segments; t_sys must be monotone and the
// exposition must pass the grammar parser above.
TEST(Monitor, EndToEndMonitoredRunMonotoneTsys) {
  MetricsRegistry reg;
  Monitor monitor(reg);
  MonitorConfig mcfg;
  mcfg.port = 0;
  mcfg.sample_interval = 0.01;
  mcfg.flight_dir = scratch_dir("e2e");
  mcfg.crash_handlers = false;  // keep process-wide handlers out of the tests
  ASSERT_TRUE(monitor.start(mcfg));
  ASSERT_GT(monitor.port(), 0);

  auto t_gauge = reg.gauge("g6.run.t_sys");
  auto blocks_ctr = reg.counter("g6.run.blocks");
  auto ticket =
      g6::obs::ProgressTracker::global().add_job("monitor_e2e", 0.0, 1.0);
  ticket.set_state(g6::obs::JobState::kRunning);

  // Two light particles orbiting the solar potential — enough blocksteps to
  // watch, cheap enough for CI.
  g6::nbody::ParticleSystem ps;
  ps.add(1e-10, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0});
  ps.add(1e-10, {-1.2, 0.0, 0.0}, {0.0, -0.9, 0.0});
  g6::nbody::CpuDirectBackend backend(1e-4);
  g6::nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.dt_max = 0x1p-5;
  g6::nbody::HermiteIntegrator integ(ps, backend, cfg);
  g6::util::Timer wall;
  integ.on_block = [&](double t, std::size_t) {
    t_gauge.set(t);
    blocks_ctr.add(1);
    ticket.update(t, integ.stats().blocks, wall.seconds());
  };
  integ.initialize();

  double prev_t = -1.0;
  for (const double target : {0.25, 0.5, 0.75, 1.0}) {
    integ.evolve(target);
    const HttpResult res = http_get(monitor.port(), "/progress");
    ASSERT_EQ(res.status, 200);
    const JsonValue doc = JsonValue::parse(res.body);
    const JsonValue* jobs = doc.find("jobs");
    ASSERT_NE(jobs, nullptr);
    double t_sys = -1.0;
    for (std::size_t i = 0; i < jobs->size(); ++i)
      if (jobs->at(i).find("name")->as_string() == "monitor_e2e")
        t_sys = jobs->at(i).find("t_sys")->as_number();
    ASSERT_GE(t_sys, 0.0) << "job missing from /progress";
    EXPECT_GE(t_sys, prev_t);  // monotone across polls
    EXPECT_LE(t_sys, target + 1e-9);
    prev_t = t_sys;
  }
  EXPECT_GT(prev_t, 0.0);

  // /metrics over the socket: correct content type, passes the grammar
  // parser, carries the run's gauge.
  const HttpResult metrics = http_get(monitor.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  const auto err = check_prometheus_grammar(metrics.body);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_NE(metrics.body.find("g6_run_t_sys"), std::string::npos);

  // /metrics.json and /series parse as JSON.
  const HttpResult mj = http_get(monitor.port(), "/metrics.json");
  ASSERT_EQ(mj.status, 200);
  EXPECT_NE(JsonValue::parse(mj.body).find("metrics"), nullptr);
  const HttpResult series = http_get(monitor.port(), "/series");
  ASSERT_EQ(series.status, 200);
  EXPECT_NE(JsonValue::parse(series.body).find("frames"), nullptr);

  ticket.finish(g6::obs::JobState::kDone);
  monitor.stop();
  EXPECT_FALSE(monitor.running());
}

TEST(MonitorServer, PrefixAndPostDispatchWithoutSockets) {
  MonitorServer server;
  server.route("/jobs", [] {
    return HttpResponse{200, "application/json", "{\"jobs\":[]}"};
  });
  server.route_prefix("/jobs/", [](const std::string& path) {
    return HttpResponse{200, "text/plain", "prefix:" + path};
  });
  server.route_post("/jobs", [](const std::string& body) {
    return HttpResponse{200, "application/json", "posted:" + body};
  });
  // Exact routes win over prefixes; the prefix handler sees the full path.
  EXPECT_EQ(server.handle("/jobs").body, "{\"jobs\":[]}");
  EXPECT_EQ(server.handle("/jobs/j-7").body, "prefix:/jobs/j-7");
  EXPECT_EQ(server.handle("/jobs/j-7/result?x=1").body,
            "prefix:/jobs/j-7/result");
  EXPECT_EQ(server.handle_post("/jobs", "{\"n\":8}").body,
            "posted:{\"n\":8}");
  EXPECT_EQ(server.handle_post("/metrics", "x").status, 404);
}

TEST(MonitorServer, PostOverRealSocketAndMethodMismatch) {
  MonitorServer server;
  server.route("/get-only", [] {
    return HttpResponse{200, "text/plain", "got\n"};
  });
  server.route_post("/submit", [](const std::string& body) {
    return HttpResponse{200, "text/plain", "len=" + std::to_string(body.size())};
  });
  ASSERT_TRUE(server.start(0));

  auto raw_request = [&](const std::string& text) {
    HttpResult res;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return res;
    }
    (void)!::write(fd, text.data(), text.size());
    std::string raw;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::sscanf(raw.c_str(), "HTTP/1.0 %d", &res.status);
    const std::size_t split = raw.find("\r\n\r\n");
    if (split != std::string::npos) res.body = raw.substr(split + 4);
    return res;
  };

  const HttpResult posted = raw_request(
      "POST /submit HTTP/1.0\r\nContent-Length: 7\r\n\r\n{\"n\":8}");
  EXPECT_EQ(posted.status, 200);
  EXPECT_EQ(posted.body, "len=7");

  // POST to a GET-only route (and vice versa) is a 405, not a 404.
  EXPECT_EQ(raw_request("POST /get-only HTTP/1.0\r\nContent-Length: 1\r\n\r\nx")
                .status,
            405);
  EXPECT_EQ(raw_request("GET /submit HTTP/1.0\r\n\r\n").status, 405);
  server.stop();
}

// Satellite fix: a client that connects and stalls (or drips bytes) must be
// answered 408 at the absolute deadline and must NOT wedge the accept loop —
// a concurrent well-behaved client is served while the slow one stalls.
TEST(MonitorServer, StalledClientGets408AndDoesNotWedgeAcceptLoop) {
  MonitorServer server;
  server.route("/ping", [] {
    return HttpResponse{200, "text/plain", "pong\n"};
  });
  server.set_request_timeout(0.4);
  ASSERT_TRUE(server.start(0));

  // Stalled client: connects, sends half a request line, then nothing.
  const int slow_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(slow_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char half[] = "GET /pi";
  (void)!::write(slow_fd, half, sizeof half - 1);

  // While it stalls, a normal client must be served promptly.
  g6::util::Timer t;
  const HttpResult ok = http_get(server.port(), "/ping");
  EXPECT_EQ(ok.status, 200);
  EXPECT_LT(t.seconds(), 5.0) << "well-behaved client waited on the stalled one";

  // The stalled connection is answered 408 once the deadline passes.
  std::string raw;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(slow_fd, buf, sizeof buf);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(slow_fd);
  int status = 0;
  std::sscanf(raw.c_str(), "HTTP/1.0 %d", &status);
  EXPECT_EQ(status, 408);
  server.stop();
}

TEST(Monitor, StopFlushesSeriesFiles) {
  const std::string dir = scratch_dir("flush");
  MetricsRegistry reg;
  reg.counter("g6.test.flush").add(1);
  Monitor monitor(reg);
  MonitorConfig mcfg;
  mcfg.port = 0;
  mcfg.serve = false;  // sampler + flight only
  mcfg.sample_interval = 0.005;
  mcfg.series_path = dir + "/series.jsonl";
  mcfg.series_binary_path = dir + "/series.bin";
  mcfg.flight_dir = dir;
  mcfg.crash_handlers = false;
  ASSERT_TRUE(monitor.start(mcfg));
  monitor.sampler().sample_now();  // guarantee at least one frame
  monitor.stop();
  EXPECT_TRUE(std::filesystem::exists(dir + "/series.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/series.bin"));
}

#else  // G6_OBS_DISABLED

// Stripped build: the monitor facade and server must compile to no-ops so
// `--monitor` call sites build unchanged with zero runtime cost.
TEST(MonitorDisabled, FacadeIsNoop) {
  Monitor monitor;
  MonitorConfig cfg;
  cfg.port = 0;
  EXPECT_FALSE(monitor.start(cfg));
  EXPECT_FALSE(monitor.running());
  EXPECT_EQ(monitor.port(), 0);
  monitor.stop();
}

TEST(MonitorDisabled, ServerRejectsEverything) {
  MonitorServer server;
  server.route("/x", [] { return HttpResponse{200, "text/plain", "y"}; });
  EXPECT_FALSE(server.start(0));
  EXPECT_EQ(server.handle("/x").status, 404);
}

#endif  // G6_OBS_DISABLED
