// Tests for the GRAPE-6 architectural constants and counter plumbing.
#include "grape6/g6_types.hpp"

#include <gtest/gtest.h>

#include "grape6/fabric.hpp"

namespace {

using g6::hw::FabricTraffic;
using g6::hw::HwCounters;

TEST(Constants, GordonBellConvention) {
  // Paper §5.2: 38 ops for the force, +19 for the time derivative, 57 total.
  EXPECT_EQ(g6::hw::kOpsPerForce, 38);
  EXPECT_EQ(g6::hw::kOpsPerJerk, 19);
  EXPECT_EQ(g6::hw::kOpsPerInteraction, 57);
}

TEST(Constants, ChipArithmetic) {
  // "With the present pipeline clock frequency of 90 MHz, the peak speed of
  // a chip is 30.7 Gflops" — 6 pipelines x 90 MHz x 57 ops = 30.78e9.
  EXPECT_EQ(g6::hw::kPipesPerChip, 6);
  EXPECT_DOUBLE_EQ(g6::hw::kClockHz, 90.0e6);
  EXPECT_NEAR(g6::hw::kChipPeakFlops, 30.78e9, 1e7);
  EXPECT_DOUBLE_EQ(g6::hw::kChipInteractionsPerSec, 540.0e6);
}

TEST(Constants, SystemTopology) {
  // 32 chips/board x 4 boards/host x 4 hosts/cluster x 4 clusters = 2048.
  EXPECT_EQ(g6::hw::kChipsPerBoard * g6::hw::kBoardsPerHost *
                g6::hw::kHostsPerCluster * g6::hw::kClusters,
            2048);
}

TEST(Constants, LinkSpeeds) {
  // Paper: "Data transfer rate through a link is 90 MB/s" (LVDS); PCI
  // 32-bit/33-MHz ~ 133 MB/s; GbE 125 MB/s peak.
  EXPECT_DOUBLE_EQ(g6::hw::kLvdsBytesPerSec, 90.0e6);
  EXPECT_DOUBLE_EQ(g6::hw::kPciBytesPerSec, 133.0e6);
  EXPECT_DOUBLE_EQ(g6::hw::kGbeBytesPerSec, 125.0e6);
}

TEST(Constants, WireFormatsCoverTheFields) {
  // i-particle: position (24B) + velocity (24B) + id/eps; result: acc +
  // jerk + pot; j-particle adds mass, t0 and two more derivatives.
  EXPECT_GE(g6::hw::kIParticleBytes, 48u);
  EXPECT_GE(g6::hw::kResultBytes, 56u);
  EXPECT_GE(g6::hw::kJParticleBytes, 100u);
}

TEST(HwCountersOps, Accumulate) {
  HwCounters a, b;
  a.interactions = 10;
  a.pipe_cycles = 100;
  a.passes = 2;
  b.interactions = 5;
  b.predict_ops = 7;
  b.i_particles_sent = 3;
  a += b;
  EXPECT_EQ(a.interactions, 15u);
  EXPECT_EQ(a.predict_ops, 7u);
  EXPECT_EQ(a.pipe_cycles, 100u);
  EXPECT_EQ(a.i_particles_sent, 3u);
  EXPECT_EQ(a.passes, 2u);
}

TEST(FabricTrafficOps, Accumulate) {
  FabricTraffic a, b;
  a.pci_bytes = 100;
  a.modeled_seconds = 0.5;
  b.pci_bytes = 20;
  b.cascade_bytes = 7;
  b.board_bytes = 9;
  b.modeled_seconds = 0.25;
  a += b;
  EXPECT_EQ(a.pci_bytes, 120u);
  EXPECT_EQ(a.cascade_bytes, 7u);
  EXPECT_EQ(a.board_bytes, 9u);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, 0.75);
}

TEST(ForceAccumulatorOps, DefaultFormatRanges) {
  // Accumulator grids must cover the disk problem's dynamic range: the
  // strongest softened protoplanet pull (~0.15) with headroom, down to the
  // weakest planetesimal contribution (~1e-13) above quantisation.
  const g6::hw::FormatSpec fmt;
  EXPECT_GT(0x1p63 * fmt.acc_lsb, 1.0);      // range
  EXPECT_LT(fmt.acc_lsb, 1e-15);             // resolution
  EXPECT_GT(0x1p63 * fmt.pot_lsb, 100.0);
  EXPECT_LT(fmt.pos_lsb * 0x1p63, 1e16);
}

}  // namespace
