// Tests for the multi-host organisations of paper §4.3: functional equality
// across modes and the communication-pattern differences the paper argues.
#include "cluster/parallel_sim.hpp"

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace {

using g6::cluster::ForceAccumulator;
using g6::cluster::FormatSpec;
using g6::cluster::HostMode;
using g6::cluster::IParticle;
using g6::cluster::JParticle;
using g6::cluster::ParallelHostSystem;
using g6::util::FixedVec3;
using g6::util::Vec3;

std::vector<JParticle> cloud(int n, const FormatSpec& fmt, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  std::vector<JParticle> js(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& p = js[static_cast<std::size_t>(j)];
    p.id = static_cast<std::uint32_t>(j);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = FixedVec3::quantize(
        {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-0.5, 0.5)},
        fmt.pos_lsb);
    p.v0 = {rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), 0.0};
  }
  return js;
}

std::vector<IParticle> batch_from(const std::vector<JParticle>& js,
                                  const FormatSpec& fmt, int stride) {
  std::vector<IParticle> batch;
  for (std::size_t j = 0; j < js.size(); j += static_cast<std::size_t>(stride))
    batch.push_back(
        g6::hw::make_i_particle(js[j].id, js[j].x0.to_vec3(), js[j].v0, fmt));
  return batch;
}

TEST(ParallelSim, AllModesBitIdentical) {
  const FormatSpec fmt;
  const auto js = cloud(96, fmt, 21);
  const auto batch = batch_from(js, fmt, 5);
  const double eps = 0.008;

  ParallelHostSystem naive(4, HostMode::kNaive, fmt, eps);
  ParallelHostSystem hwnet(4, HostMode::kHardwareNet, fmt, eps);
  ParallelHostSystem matrix(4, HostMode::kMatrix2D, fmt, eps);
  naive.load(js);
  hwnet.load(js);
  matrix.load(js);

  std::vector<ForceAccumulator> fa, fb, fc;
  naive.compute(0.0, batch, fa);
  hwnet.compute(0.0, batch, fb);
  matrix.compute(0.0, batch, fc);

  ASSERT_EQ(fa.size(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(fa[k], fb[k]) << k;
    EXPECT_EQ(fa[k], fc[k]) << k;
  }
}

TEST(ParallelSim, SingleHostMatchesManyHosts) {
  const FormatSpec fmt;
  const auto js = cloud(60, fmt, 22);
  const auto batch = batch_from(js, fmt, 7);

  ParallelHostSystem one(1, HostMode::kHardwareNet, fmt, 0.008);
  ParallelHostSystem many(6, HostMode::kHardwareNet, fmt, 0.008);
  one.load(js);
  many.load(js);
  std::vector<ForceAccumulator> fa, fb;
  one.compute(0.0, batch, fa);
  many.compute(0.0, batch, fb);
  for (std::size_t k = 0; k < batch.size(); ++k) EXPECT_EQ(fa[k], fb[k]) << k;
}

TEST(ParallelSim, HardwareNetUsesNoEthernetForForces) {
  const FormatSpec fmt;
  const auto js = cloud(64, fmt, 23);
  const auto batch = batch_from(js, fmt, 4);
  ParallelHostSystem sys(4, HostMode::kHardwareNet, fmt, 0.008);
  sys.load(js);
  std::vector<ForceAccumulator> out;
  sys.compute(0.0, batch, out);
  EXPECT_EQ(sys.ethernet_bytes(), 0u);  // the paper's headline property
  EXPECT_GT(sys.hardware_bytes().lvds, 0u);
}

TEST(ParallelSim, NaiveUpdateFloodsEthernet) {
  const FormatSpec fmt;
  auto js = cloud(64, fmt, 24);
  ParallelHostSystem naive(4, HostMode::kNaive, fmt, 0.008);
  ParallelHostSystem hwnet(4, HostMode::kHardwareNet, fmt, 0.008);
  naive.load(js);
  hwnet.load(js);

  // Correct 16 particles; the naive config must broadcast each to 3 peers.
  std::vector<JParticle> corrected(js.begin(), js.begin() + 16);
  naive.update(corrected);
  hwnet.update(corrected);

  EXPECT_GT(naive.ethernet_bytes(), 0u);
  EXPECT_EQ(hwnet.ethernet_bytes(), 0u);
  // Naive traffic ~ 16 particles x 3 peers x record size.
  EXPECT_GE(naive.ethernet_bytes(), 16u * 3u * 50u);
}

TEST(ParallelSim, MatrixRoutesOverEthernet) {
  const FormatSpec fmt;
  const auto js = cloud(64, fmt, 25);
  const auto batch = batch_from(js, fmt, 4);
  ParallelHostSystem matrix(9, HostMode::kMatrix2D, fmt, 0.008);
  matrix.load(js);
  std::vector<ForceAccumulator> out;
  matrix.compute(0.0, batch, out);
  EXPECT_GT(matrix.ethernet_bytes(), 0u);
  EXPECT_EQ(matrix.real_hosts(), 3);
}

TEST(ParallelSim, UpdateReachesTheRightHost) {
  const FormatSpec fmt;
  auto js = cloud(32, fmt, 26);
  for (HostMode mode :
       {HostMode::kNaive, HostMode::kHardwareNet, HostMode::kMatrix2D}) {
    ParallelHostSystem sys(4, mode, fmt, 0.008);
    sys.load(js);
    auto p = js[5];
    p.mass = 0.123;
    sys.update(std::vector<JParticle>{p});
    // Recompute a force against particle 5's new mass: compare to a fresh
    // system loaded with the modified cloud.
    auto js2 = js;
    js2[5].mass = 0.123;
    ParallelHostSystem fresh(4, mode, fmt, 0.008);
    fresh.load(js2);
    const auto batch = batch_from(js, fmt, 9);
    std::vector<ForceAccumulator> a, b;
    sys.compute(0.0, batch, a);
    fresh.compute(0.0, batch, b);
    for (std::size_t k = 0; k < batch.size(); ++k) EXPECT_EQ(a[k], b[k]) << k;
  }
}

TEST(ParallelSim, MatrixRowZeroDropRoutesUpdateToPromotedRoot) {
  // 3x3 grid with row-0 host 1 dropped: column 1's root becomes host 4,
  // which directly holds the dead host's re-replicated j-images. A j-update
  // whose holder IS that promoted root must stop there (regression: the
  // routing path overshot to deeper column hosts and update() threw
  // "matrix j-update routing failed").
  const FormatSpec fmt;
  const auto js = cloud(54, fmt, 27);
  ParallelHostSystem sys(9, HostMode::kMatrix2D, fmt, 0.008);
  g6::fault::FaultInjector injector;
  sys.set_fault_injector(&injector);
  sys.load(js);
  sys.drop_host(1);
  sys.update(js);

  ParallelHostSystem fresh(9, HostMode::kMatrix2D, fmt, 0.008);
  fresh.load(js);
  const auto batch = batch_from(js, fmt, 3);
  std::vector<ForceAccumulator> a, b;
  sys.compute(0.0, batch, a);
  fresh.compute(0.0, batch, b);
  for (std::size_t k = 0; k < batch.size(); ++k) EXPECT_EQ(a[k], b[k]) << k;
}

TEST(ParallelSim, InjectorAttachedAfterLoadRebuildsShadow) {
  // Attaching the injector after load() must rebuild the driver shadow from
  // the hosts' j-stores, or a later host drop silently loses its j-images.
  const FormatSpec fmt;
  const auto js = cloud(48, fmt, 28);
  for (HostMode mode : {HostMode::kHardwareNet, HostMode::kMatrix2D}) {
    ParallelHostSystem sys(4, mode, fmt, 0.008);
    sys.load(js);  // no injector yet
    g6::fault::FaultInjector injector;
    sys.set_fault_injector(&injector);  // late attach
    sys.drop_host(1);

    ParallelHostSystem fresh(4, mode, fmt, 0.008);
    fresh.load(js);
    const auto batch = batch_from(js, fmt, 5);
    std::vector<ForceAccumulator> a, b;
    sys.compute(0.0, batch, a);
    fresh.compute(0.0, batch, b);
    for (std::size_t k = 0; k < batch.size(); ++k)
      EXPECT_EQ(a[k], b[k]) << g6::cluster::host_mode_name(mode) << " k=" << k;
  }
}

TEST(ParallelSim, MatrixNeedsSquareHostCount) {
  const FormatSpec fmt;
  EXPECT_THROW(ParallelHostSystem(6, HostMode::kMatrix2D, fmt, 0.0),
               g6::util::Error);
  EXPECT_NO_THROW(ParallelHostSystem(16, HostMode::kMatrix2D, fmt, 0.0));
}

TEST(ParallelSim, OwnerMapping) {
  const FormatSpec fmt;
  ParallelHostSystem sys(4, HostMode::kHardwareNet, fmt, 0.0);
  EXPECT_EQ(sys.owner_of(0), 0);
  EXPECT_EQ(sys.owner_of(5), 1);
  EXPECT_EQ(sys.real_hosts(), 4);
  ParallelHostSystem matrix(16, HostMode::kMatrix2D, fmt, 0.0);
  EXPECT_EQ(matrix.real_hosts(), 4);
  EXPECT_EQ(matrix.owner_of(6), 2);
}

TEST(ParallelSim, ModeNames) {
  EXPECT_NE(std::string(g6::cluster::host_mode_name(HostMode::kNaive)).find("naive"),
            std::string::npos);
  EXPECT_NE(std::string(g6::cluster::host_mode_name(HostMode::kMatrix2D)).find("2-D"),
            std::string::npos);
}

}  // namespace
