// Tests for the 6th-order Hermite extension (Nitadori & Makino 2008).
#include "nbody/hermite6.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "disk/kepler.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"

namespace {

using g6::nbody::compute_force6;
using g6::nbody::Force6;
using g6::nbody::Hermite6Integrator;
using g6::nbody::ParticleSystem;
using g6::nbody::SolarPotential;
using g6::util::Vec3;

constexpr double kPi = std::numbers::pi;

TEST(Force6, AccAndJerkMatchFourthOrderKernel) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {0.1, 0, 0});
  ps.add(2.0, {1.5, 0.5, -0.2}, {-0.2, 0.3, 0.1});
  ps.add(0.5, {-1, 2, 0.4}, {0, -0.1, 0.2});

  std::vector<Force6> f6;
  compute_force6(ps, 0.01, SolarPotential{}, f6);

  for (std::size_t i = 0; i < ps.size(); ++i) {
    g6::nbody::Force ref{};
    for (std::size_t j = 0; j < ps.size(); ++j) {
      if (j == i) continue;
      g6::nbody::pairwise_force(ps.pos(i), ps.vel(i), ps.pos(j), ps.vel(j),
                                ps.mass(j), 0.0001, ref);
    }
    EXPECT_NEAR(norm(f6[i].acc - ref.acc), 0.0, 1e-14) << i;
    EXPECT_NEAR(norm(f6[i].jerk - ref.jerk), 0.0, 1e-14) << i;
    EXPECT_NEAR(f6[i].pot, ref.pot, 1e-14) << i;
  }
}

TEST(Force6, SnapMatchesNumericalSecondDerivative) {
  // Advance a three-body system ballistically under its true dynamics with
  // a tiny leapfrog and differentiate the measured acceleration twice.
  ParticleSystem ps;
  ps.add(1.0, {2.0, 1.0, 0}, {0.05, 0.1, 0});
  ps.add(2.0, {1.5, -1.5, -0.2}, {-0.2, 0.3, 0.1});
  ps.add(0.5, {-1, 2, 0.4}, {0, -0.1, 0.2});
  const double eps = 0.05;
  const SolarPotential solar{0.5};

  std::vector<Force6> f0;
  compute_force6(ps, eps, solar, f0);

  // Acceleration along the exact trajectory at +/- h via an accurate
  // integration (many tiny 6th-order steps would be circular; use the
  // independent 4th-order integrator instead).
  auto acc_at = [&](double h) {
    ParticleSystem copy = ps;
    if (h > 0) {
      g6::nbody::CpuDirectBackend backend(eps);
      g6::nbody::IntegratorConfig cfg;
      cfg.solar_gm = solar.gm;
      cfg.eta = 1e9;
      cfg.eta_init = 1e9;
      cfg.dt_max = 0x1p-12;
      cfg.dt_min = 0x1p-12;
      g6::nbody::HermiteIntegrator integ(copy, backend, cfg);
      integ.initialize();
      integ.evolve(h);
    }
    std::vector<Force6> f;
    compute_force6(copy, eps, solar, f);
    return f;
  };

  const double h = 0x1p-8;
  const auto fp = acc_at(2.0 * h);
  const auto fm = acc_at(0.0);
  const auto fc = acc_at(h);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Vec3 num_snap =
        (fp[i].acc - 2.0 * fc[i].acc + fm[i].acc) / (h * h);
    const double scale = std::max(norm(fc[i].snap), 1e-3);
    EXPECT_NEAR(norm(num_snap - fc[i].snap), 0.0, 2e-2 * scale) << i;
  }
}

TEST(Hermite6, CircularOrbitExactishOverOneOrbit) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  Hermite6Integrator integ(ps, 2.0 * kPi / 64.0, 0.0, 1.0);
  integ.initialize();
  integ.evolve(2.0 * kPi);
  EXPECT_NEAR(norm(ps.pos(0) - Vec3(1, 0, 0)), 0.0, 5e-9);
}

TEST(Hermite6, SixthOrderConvergence) {
  auto final_error = [](double dt) {
    g6::disk::OrbitalElements el;
    el.a = 1.0;
    el.e = 0.4;
    const auto sv = g6::disk::elements_to_state(el, 1.0);
    ParticleSystem ps;
    ps.add(1e-12, sv.pos, sv.vel);
    Hermite6Integrator integ(ps, dt, 0.0, 1.0, /*iterations=*/2);
    integ.initialize();
    integ.evolve(2.0 * kPi);  // one orbit
    const auto back = g6::disk::elements_to_state(el, 1.0);  // closed orbit
    return norm(ps.pos(0) - back.pos);
  };
  const double e1 = final_error(2.0 * kPi / 128.0);
  const double e2 = final_error(2.0 * kPi / 256.0);
  // 6th order: halving dt shrinks the error by ~64.
  EXPECT_GT(e1 / e2, 30.0);
  EXPECT_LT(e1 / e2, 140.0);
}

TEST(Hermite6, BeatsFourthOrderAtSameStep) {
  auto run6 = [](double dt) {
    ParticleSystem ps;
    g6::disk::OrbitalElements el;
    el.a = 1.0;
    el.e = 0.3;
    const auto sv = g6::disk::elements_to_state(el, 1.0);
    ps.add(1e-12, sv.pos, sv.vel);
    Hermite6Integrator integ(ps, dt, 0.0, 1.0);
    integ.initialize();
    const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    integ.evolve(10.0 * 2.0 * kPi);
    const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    return std::abs((e1 - e0) / e0);
  };
  auto run4 = [](double dt) {
    ParticleSystem ps;
    g6::disk::OrbitalElements el;
    el.a = 1.0;
    el.e = 0.3;
    const auto sv = g6::disk::elements_to_state(el, 1.0);
    ps.add(1e-12, sv.pos, sv.vel);
    g6::nbody::CpuDirectBackend backend(0.0);
    g6::nbody::IntegratorConfig cfg;
    cfg.solar_gm = 1.0;
    cfg.dt_max = dt;
    cfg.dt_min = dt;
    cfg.eta = 1e9;
    cfg.eta_init = 1e9;
    g6::nbody::HermiteIntegrator integ(ps, backend, cfg);
    integ.initialize();
    const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    integ.evolve(10.0 * 2.0 * kPi);
    const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    return std::abs((e1 - e0) / e0);
  };
  const double dt = 0x1p-6;
  EXPECT_LT(run6(dt), 0.1 * run4(dt));
}

TEST(Hermite6, BinaryEnergyConserved) {
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  Hermite6Integrator integ(ps, 2.0 * kPi / 256.0, 0.0);
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  integ.evolve(4.0 * kPi);
  const double e1 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-12);
}

TEST(Hermite6, Validation) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  EXPECT_THROW(Hermite6Integrator(ps, 0.0, 0.0), g6::util::Error);
  EXPECT_THROW(Hermite6Integrator(ps, 0.1, -1.0), g6::util::Error);
  EXPECT_THROW(Hermite6Integrator(ps, 0.1, 0.0, 0.0, 0), g6::util::Error);
  Hermite6Integrator integ(ps, 0.1, 0.0, 1.0);
  EXPECT_THROW(integ.step(), g6::util::Error);  // not initialized
}

TEST(Hermite6, CountsForceEvaluations) {
  ParticleSystem ps;
  ps.add(1e-12, {1, 0, 0}, {0, 1, 0});
  Hermite6Integrator integ(ps, 0.1, 0.0, 1.0, 2);
  integ.initialize();
  EXPECT_EQ(integ.force_evaluations(), 1u);
  integ.step();
  // 2 corrector passes + the final evaluation.
  EXPECT_EQ(integ.force_evaluations(), 4u);
  EXPECT_EQ(integ.steps(), 1u);
}

}  // namespace
