// Tests for the simulated host-to-host transport.
#include "cluster/transport.hpp"

#include <gtest/gtest.h>

#include "fault/fault.hpp"

namespace {

using g6::cluster::LinkSpec;
using g6::cluster::Message;
using g6::cluster::RecvStatus;
using g6::cluster::SendStatus;
using g6::cluster::Transport;

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Transport, SendRecvRoundTrip) {
  Transport t(4, {});
  ASSERT_EQ(t.send(0, 2, 7, bytes({1, 2, 3})), SendStatus::kOk);
  const Message m = t.recv(2, 0, 7);
  EXPECT_EQ(m.src, 0);
  EXPECT_EQ(m.tag, 7);
  EXPECT_EQ(m.payload, bytes({1, 2, 3}));
}

TEST(Transport, FifoOrderPerLink) {
  Transport t(2, {});
  ASSERT_EQ(t.send(0, 1, 5, bytes({1})), SendStatus::kOk);
  ASSERT_EQ(t.send(0, 1, 5, bytes({2})), SendStatus::kOk);
  EXPECT_EQ(t.recv(1, 0, 5).payload, bytes({1}));
  EXPECT_EQ(t.recv(1, 0, 5).payload, bytes({2}));
}

TEST(Transport, RecvWithoutMessageThrows) {
  Transport t(2, {});
  EXPECT_THROW(t.recv(1, 0, 0), g6::util::Error);
}

TEST(Transport, TryRecvReportsEmpty) {
  Transport t(2, {});
  Message m;
  EXPECT_EQ(t.try_recv(1, 0, 0, m), RecvStatus::kEmpty);
}

TEST(Transport, TagMismatchThrows) {
  Transport t(2, {});
  ASSERT_EQ(t.send(0, 1, 5, bytes({1})), SendStatus::kOk);
  EXPECT_THROW(t.recv(1, 0, 6), g6::util::Error);
  // The mismatching message stays queued: the right tag still receives it.
  Message m;
  EXPECT_EQ(t.try_recv(1, 0, 6, m), RecvStatus::kTagMismatch);
  EXPECT_EQ(t.try_recv(1, 0, 5, m), RecvStatus::kOk);
}

TEST(Transport, RanksValidated) {
  Transport t(2, {});
  EXPECT_THROW((void)t.send(0, 5, 0, bytes({1})), g6::util::Error);
  EXPECT_THROW((void)t.send(-1, 1, 0, bytes({1})), g6::util::Error);
  EXPECT_THROW(t.stats(9), g6::util::Error);
}

TEST(Transport, StatsCountBytesAndTime) {
  LinkSpec link{100.0, 0.5};  // 100 B/s, 0.5 s latency: easy arithmetic
  Transport t(2, link);
  ASSERT_EQ(t.send(0, 1, 0, bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})),
            SendStatus::kOk);
  EXPECT_EQ(t.stats(0).bytes_sent, 10u);
  EXPECT_EQ(t.stats(0).messages_sent, 1u);
  EXPECT_EQ(t.stats(1).bytes_received, 10u);
  EXPECT_NEAR(t.stats(0).modeled_seconds, 0.5 + 0.1, 1e-12);
}

TEST(Transport, DroppedMessageChargesSenderOnly) {
  Transport t(2, {});
  g6::fault::FaultPlan plan;
  plan.add({g6::fault::FaultKind::kLinkDrop, /*at=*/0, -1, -1, 0, 0});
  g6::fault::FaultInjector inj;
  inj.arm(plan);
  t.set_fault_injector(&inj);

  // First send is dropped in flight: the sender pays wire time but the
  // receiver never sees the bytes.
  ASSERT_EQ(t.send(0, 1, 3, bytes({1, 2, 3, 4})), SendStatus::kOk);
  EXPECT_GT(t.stats(0).bytes_sent, 0u);
  EXPECT_EQ(t.stats(1).bytes_received, 0u);
  Message m;
  EXPECT_EQ(t.try_recv(1, 0, 3, m), RecvStatus::kEmpty);

  // The resend is delivered and counted (payload + 4-byte CRC trailer).
  ASSERT_EQ(t.send(0, 1, 3, bytes({1, 2, 3, 4})), SendStatus::kOk);
  EXPECT_EQ(t.try_recv(1, 0, 3, m), RecvStatus::kOk);
  EXPECT_EQ(t.stats(1).bytes_received, 8u);
}

TEST(Transport, PendingCountsAllSources) {
  Transport t(3, {});
  ASSERT_EQ(t.send(0, 2, 0, bytes({1})), SendStatus::kOk);
  ASSERT_EQ(t.send(1, 2, 0, bytes({2})), SendStatus::kOk);
  EXPECT_EQ(t.pending(2), 2u);
  t.recv(2, 0, 0);
  EXPECT_EQ(t.pending(2), 1u);
}

TEST(Transport, LinkFailureInjection) {
  Transport t(2, {});
  t.fail_link(0, 1);
  EXPECT_TRUE(t.link_failed(0, 1));
  EXPECT_EQ(t.send(0, 1, 0, bytes({1})), SendStatus::kLinkDown);
  // Reverse direction unaffected.
  EXPECT_EQ(t.send(1, 0, 0, bytes({1})), SendStatus::kOk);
  t.restore_link(0, 1);
  EXPECT_EQ(t.send(0, 1, 0, bytes({1})), SendStatus::kOk);
}

TEST(Transport, TransientLinkFailureWindow) {
  Transport t(2, {});
  t.fail_link(0, 1, /*window=*/2);
  // The link rejects exactly `window` send attempts, then self-restores —
  // a resend loop rides through the outage.
  EXPECT_EQ(t.send(0, 1, 0, bytes({1})), SendStatus::kLinkDown);
  EXPECT_EQ(t.send(0, 1, 0, bytes({1})), SendStatus::kLinkDown);
  EXPECT_EQ(t.send(0, 1, 0, bytes({1})), SendStatus::kOk);
  EXPECT_FALSE(t.link_failed(0, 1));
}

TEST(Transport, ChargeModelsCollectiveCost) {
  LinkSpec link{1000.0, 0.0};
  Transport t(2, link);
  const double sec = t.charge(0, 500);
  EXPECT_NEAR(sec, 0.5, 1e-12);
  EXPECT_NEAR(t.stats(0).modeled_seconds, 0.5, 1e-12);
}

TEST(TransportPod, PackUnpackRoundTrip) {
  std::vector<std::byte> buf;
  g6::cluster::append_pod(buf, 42);
  g6::cluster::append_pod(buf, 2.5);
  std::size_t off = 0;
  EXPECT_EQ(g6::cluster::read_pod<int>(buf, off), 42);
  EXPECT_EQ(g6::cluster::read_pod<double>(buf, off), 2.5);
  EXPECT_EQ(off, buf.size());
  EXPECT_THROW(g6::cluster::read_pod<int>(buf, off), g6::util::Error);
}

}  // namespace
