// Tests for the processor-chip model: j-memory, predictor sweep, compute and
// the cycle model.
#include "grape6/chip.hpp"

#include <gtest/gtest.h>

#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

namespace {

using g6::hw::Chip;
using g6::hw::FormatSpec;
using g6::hw::ForceAccumulator;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::kIPerChipPass;
using g6::hw::kPipelineLatency;
using g6::hw::kVmp;
using g6::util::FixedVec3;
using g6::util::Vec3;

JParticle make_j(std::uint32_t id, double m, const Vec3& x, const FormatSpec& fmt) {
  JParticle p;
  p.id = id;
  p.mass = m;
  p.x0 = FixedVec3::quantize(x, fmt.pos_lsb);
  return p;
}

TEST(Chip, StoreAndReadBack) {
  const FormatSpec fmt;
  Chip chip(fmt, 4);
  EXPECT_EQ(chip.j_count(), 0u);
  const auto a0 = chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  const auto a1 = chip.store_j(make_j(1, 2.0, {2, 0, 0}, fmt));
  EXPECT_EQ(a0, 0u);
  EXPECT_EQ(a1, 1u);
  EXPECT_EQ(chip.j_count(), 2u);
  EXPECT_EQ(chip.read_j(1).mass, 2.0);
}

TEST(Chip, CapacityEnforced) {
  const FormatSpec fmt;
  Chip chip(fmt, 2);
  chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  chip.store_j(make_j(1, 1.0, {2, 0, 0}, fmt));
  EXPECT_THROW(chip.store_j(make_j(2, 1.0, {3, 0, 0}, fmt)), g6::util::Error);
}

TEST(Chip, WriteJOverwrites) {
  const FormatSpec fmt;
  Chip chip(fmt, 4);
  chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  chip.write_j(0, make_j(0, 5.0, {2, 0, 0}, fmt));
  EXPECT_EQ(chip.read_j(0).mass, 5.0);
  EXPECT_THROW(chip.write_j(3, make_j(0, 1.0, {1, 0, 0}, fmt)), g6::util::Error);
}

TEST(Chip, ComputeRequiresPrediction) {
  const FormatSpec fmt;
  Chip chip(fmt, 4);
  chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  std::vector<IParticle> batch{g6::hw::make_i_particle(9, {0, 0, 0}, {}, fmt)};
  std::vector<ForceAccumulator> acc(1, ForceAccumulator(fmt));
  EXPECT_THROW(chip.compute(batch, 0.0, acc), g6::util::Error);
  chip.predict_all(0.0);
  EXPECT_NO_THROW(chip.compute(batch, 0.0, acc));
  EXPECT_NEAR(acc[0].acc.to_vec3().x, 1.0, 1e-6);
}

TEST(Chip, MatchesCpuKernel) {
  const FormatSpec fmt;
  g6::util::Rng rng(4);
  Chip chip(fmt, 64);
  std::vector<Vec3> xs;
  std::vector<double> ms;
  for (int j = 0; j < 40; ++j) {
    const Vec3 x{rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-0.5, 0.5)};
    const double m = rng.uniform(1e-10, 1e-9);
    chip.store_j(make_j(static_cast<std::uint32_t>(j), m, x, fmt));
    xs.push_back(x);
    ms.push_back(m);
  }
  chip.predict_all(0.0);

  const Vec3 xi{1.0, 2.0, 0.0};
  const double eps2 = 0.008 * 0.008;
  std::vector<IParticle> batch{g6::hw::make_i_particle(1000, xi, {}, fmt)};
  std::vector<ForceAccumulator> acc(1, ForceAccumulator(fmt));
  chip.compute(batch, eps2, acc);

  g6::nbody::Force ref{};
  for (int j = 0; j < 40; ++j)
    g6::nbody::pairwise_force(xi, {}, xs[static_cast<std::size_t>(j)], {},
                              ms[static_cast<std::size_t>(j)], eps2, ref);
  EXPECT_NEAR(norm(acc[0].acc.to_vec3() - ref.acc), 0.0, 1e-6 * norm(ref.acc));
  EXPECT_NEAR(acc[0].pot.to_double(), ref.pot, 1e-6 * std::abs(ref.pot));
}

TEST(Chip, CycleModel) {
  const FormatSpec fmt;
  Chip chip(fmt, 1024);
  for (int j = 0; j < 100; ++j) chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));

  // One pass serves up to 48 i-particles in vmp * nj + latency cycles.
  const std::uint64_t one_pass = kVmp * 100 + kPipelineLatency;
  EXPECT_EQ(chip.compute_cycles(1), one_pass);
  EXPECT_EQ(chip.compute_cycles(kIPerChipPass), one_pass);
  EXPECT_EQ(chip.compute_cycles(kIPerChipPass + 1), 2 * one_pass);
  EXPECT_EQ(chip.compute_cycles(0), 0u);
  EXPECT_EQ(chip.predict_cycles(), 100u);
}

TEST(Chip, PredictionCachedUntilWrite) {
  const FormatSpec fmt;
  Chip chip(fmt, 8);
  chip.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  chip.predict_all(0.5);
  // Re-predicting at the same time is a no-op; a j write invalidates.
  chip.predict_all(0.5);
  chip.write_j(0, make_j(0, 2.0, {1, 0, 0}, fmt));
  std::vector<IParticle> batch{g6::hw::make_i_particle(9, {0, 0, 0}, {}, fmt)};
  std::vector<ForceAccumulator> acc(1, ForceAccumulator(fmt));
  EXPECT_THROW(chip.compute(batch, 0.0, acc), g6::util::Error);
  chip.predict_all(0.5);
  chip.compute(batch, 0.0, acc);
  EXPECT_NEAR(acc[0].acc.to_vec3().x, 2.0, 1e-5);
}

}  // namespace
