// Tests for the analytic performance model — the machinery that regenerates
// the paper's 29.5 / 63.4 Tflops numbers.
#include "cluster/perf_model.hpp"

#include <gtest/gtest.h>

namespace {

using g6::cluster::BlockCount;
using g6::cluster::HostMode;
using g6::cluster::PerfModel;
using g6::cluster::PerfParams;
using g6::cluster::StepBreakdown;

PerfModel full_model() { return PerfModel(PerfParams{}); }

TEST(PerfModel, PeakMatchesPaper) {
  EXPECT_NEAR(full_model().peak_flops() / 1e12, 63.0, 0.5);
}

TEST(PerfModel, BreakdownTermsPositive) {
  const StepBreakdown t = full_model().blockstep(1799998, 2000);
  EXPECT_GT(t.predict, 0.0);
  EXPECT_GT(t.pipeline, 0.0);
  EXPECT_GT(t.i_comm, 0.0);
  EXPECT_GT(t.result_comm, 0.0);
  EXPECT_GT(t.j_update, 0.0);
  EXPECT_GT(t.host, 0.0);
  EXPECT_GT(t.sync, 0.0);
  EXPECT_GT(t.total(), t.pipeline);
}

TEST(PerfModel, EfficiencyGrowsWithBlockSize) {
  const PerfModel m = full_model();
  const std::size_t N = 1799998;
  auto eff = [&](std::size_t n_act) {
    const double ops = PerfModel::step_operations(N, n_act);
    return ops / m.blockstep_seconds(N, n_act) / m.peak_flops();
  };
  EXPECT_LT(eff(10), eff(100));
  EXPECT_LT(eff(100), eff(1000));
  EXPECT_LT(eff(1000), eff(10000));
}

TEST(PerfModel, PaperOperatingPointNearHalfPeak) {
  // At the paper's N with kilo-particle blocks, sustained speed sits in the
  // 40-60% band (the paper achieved 46.5%).
  const PerfModel m = full_model();
  const std::size_t N = 1799998;
  std::vector<BlockCount> blocks{{2000, 1000}};
  const auto est = m.run(N, blocks);
  EXPECT_GT(est.efficiency, 0.30);
  EXPECT_LT(est.efficiency, 0.70);
  EXPECT_GT(est.sustained_flops, 20e12);
  EXPECT_LT(est.sustained_flops, 45e12);
}

TEST(PerfModel, SmallNIsInefficient) {
  const PerfModel m = full_model();
  std::vector<BlockCount> blocks{{100, 100}};
  const auto est = m.run(10000, blocks);
  EXPECT_LT(est.efficiency, 0.05);
}

TEST(PerfModel, NaiveCommunicationDoesNotScale) {
  // Figure 3's flaw: with more hosts the naive config's exchange time per
  // step stays ~constant while the hardware-network config's shrinks.
  const std::size_t N = 1799998, n_act = 2000;

  auto with_hosts = [&](int hosts, HostMode mode) {
    PerfParams p;
    p.machine.clusters = 1;
    p.machine.hosts_per_cluster = hosts;
    return PerfModel(p).blockstep(N, n_act, mode);
  };

  const double naive4 = with_hosts(4, HostMode::kNaive).j_update;
  const double naive16 = with_hosts(16, HostMode::kNaive).j_update;
  EXPECT_GT(naive16, 0.8 * naive4);  // all-to-all exchange does not shrink

  const double hw4 = with_hosts(4, HostMode::kHardwareNet).j_update;
  const double hw16 = with_hosts(16, HostMode::kHardwareNet).j_update;
  EXPECT_LT(hw16, 0.5 * hw4);  // per-host share shrinks with p
}

TEST(PerfModel, HardwareNetBeatsNaiveAtScale) {
  const PerfModel m = full_model();
  const std::size_t N = 1799998, n_act = 2000;
  const double t_hw = m.blockstep_seconds(N, n_act, HostMode::kHardwareNet);
  const double t_naive = m.blockstep_seconds(N, n_act, HostMode::kNaive);
  EXPECT_LT(t_hw, t_naive);
}

TEST(PerfModel, MatrixModeSlowerThanHardwareNetButScalable) {
  const PerfModel m = full_model();
  const std::size_t N = 1799998, n_act = 2000;
  const double t_hw = m.blockstep_seconds(N, n_act, HostMode::kHardwareNet);
  const double t_2d = m.blockstep_seconds(N, n_act, HostMode::kMatrix2D);
  EXPECT_GT(t_2d, t_hw);       // GbE store-and-forward costs more than LVDS
  EXPECT_LT(t_2d, 3.0 * t_hw); // but "theoretical peak of GbE barely okay"
}

TEST(PerfModel, RunAggregatesDistribution) {
  const PerfModel m = full_model();
  std::vector<BlockCount> blocks{{1000, 10}, {2000, 5}, {0, 3}, {500, 0}};
  const auto est = m.run(1799998, blocks);
  // Zero-size and zero-count entries are ignored.
  const double ops = PerfModel::step_operations(1799998, 1000) * 10 +
                     PerfModel::step_operations(1799998, 2000) * 5;
  EXPECT_DOUBLE_EQ(est.operations, ops);
  EXPECT_GT(est.seconds, 0.0);
  EXPECT_NEAR(est.sustained_flops, ops / est.seconds, 1e-3);
}

TEST(PerfModel, StepOperationsConvention) {
  // 57 ops per interaction (38 force + 19 jerk), N * n_act interactions.
  EXPECT_DOUBLE_EQ(PerfModel::step_operations(1000, 10), 57.0 * 1000 * 10);
}

TEST(PerfModel, OverlapReducesTotal) {
  PerfParams p;
  p.overlap_comm = true;
  const PerfModel overlapped(p);
  const PerfModel summed(PerfParams{});
  const std::size_t N = 1799998, n_act = 2000;
  EXPECT_LT(overlapped.blockstep_seconds(N, n_act),
            summed.blockstep_seconds(N, n_act));
}

TEST(PerfModel, ValidatesInput) {
  const PerfModel m = full_model();
  EXPECT_THROW(m.blockstep(100, 0), g6::util::Error);
  EXPECT_THROW(m.blockstep(100, 200), g6::util::Error);
}

}  // namespace

namespace {

TEST(PerfModel, MatrixModeNeedsSquareHostCount) {
  g6::cluster::PerfParams p;
  p.machine.clusters = 1;
  p.machine.hosts_per_cluster = 2;  // 2 hosts: not a perfect square
  const g6::cluster::PerfModel m(p);
  EXPECT_THROW(m.blockstep(100000, 1000, g6::cluster::HostMode::kMatrix2D),
               g6::util::Error);
  EXPECT_NO_THROW(m.blockstep(100000, 1000, g6::cluster::HostMode::kNaive));
}

TEST(PerfModel, BlockstepTimeMonotoneInN) {
  const g6::cluster::PerfModel m{g6::cluster::PerfParams{}};
  const double t1 = m.blockstep_seconds(100000, 1000);
  const double t2 = m.blockstep_seconds(1000000, 1000);
  EXPECT_GT(t2, t1);  // more j-work per i-particle
}

TEST(PerfModel, PredictTermScalesWithPerChipLoad) {
  const g6::cluster::PerfModel m{g6::cluster::PerfParams{}};
  const auto small = m.blockstep(100000, 1000);
  const auto large = m.blockstep(1600000, 1000);
  EXPECT_GT(large.predict, small.predict);
}

// --- CommEstimate vs the emulated wire --------------------------------------
//
// The message/byte terms are counting loops that mirror ParallelHostSystem's
// protocol, so against an actual run (contiguous ids, fault-free) they must
// match the transport counters *exactly* — far inside the 20% acceptance
// band of the bench validation.

struct MeasuredComm {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

MeasuredComm total_traffic(const g6::cluster::ParallelHostSystem& sys) {
  MeasuredComm m;
  for (int r = 0; r < sys.hosts(); ++r) {
    m.messages += sys.transport().stats(r).messages_sent;
    m.bytes += sys.transport().stats(r).bytes_sent;
  }
  return m;
}

MeasuredComm measure_update(HostMode mode, int hosts, std::size_t n,
                            bool aggregated) {
  g6::cluster::ParallelHostSystem sys(hosts, mode, g6::hw::FormatSpec{}, 0.01);
  sys.set_aggregation(aggregated);
  std::vector<g6::hw::JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i)
    js[i].id = static_cast<std::uint32_t>(i);
  sys.update(js);
  return total_traffic(sys);
}

MeasuredComm measure_compute(int hosts, std::size_t n_act, bool aggregated,
                             bool overlap) {
  g6::cluster::ParallelHostSystem sys(hosts, HostMode::kMatrix2D,
                                      g6::hw::FormatSpec{}, 0.01);
  sys.set_aggregation(aggregated);
  sys.set_overlap(overlap);
  std::vector<g6::hw::IParticle> batch(n_act);
  for (std::size_t i = 0; i < n_act; ++i)
    batch[i].id = static_cast<std::uint32_t>(i);
  std::vector<g6::hw::ForceAccumulator> out;
  sys.compute(0.01, batch, out);
  return total_traffic(sys);
}

TEST(CommEstimate, UpdateTrafficMatchesMeasuredExactly) {
  const PerfModel m = full_model();
  for (const bool aggregated : {false, true}) {
    for (const HostMode mode : {HostMode::kNaive, HostMode::kMatrix2D}) {
      const MeasuredComm measured = measure_update(mode, 16, 384, aggregated);
      const auto est = m.update_comm(16, mode, 384, aggregated);
      EXPECT_EQ(est.messages, measured.messages)
          << "mode " << static_cast<int>(mode) << " agg " << aggregated;
      EXPECT_EQ(est.bytes, measured.bytes)
          << "mode " << static_cast<int>(mode) << " agg " << aggregated;
      EXPECT_GT(est.seconds, 0.0);
    }
    // Hardware-net updates never touch the Ethernet.
    EXPECT_EQ(m.update_comm(16, HostMode::kHardwareNet, 384, aggregated).messages,
              0u);
  }
}

TEST(CommEstimate, ComputeTrafficMatchesMeasuredExactly) {
  const PerfModel m = full_model();
  for (const bool aggregated : {false, true}) {
    for (const bool overlap : {false, true}) {
      const MeasuredComm measured = measure_compute(16, 32, aggregated, overlap);
      const auto est = m.compute_comm(16, HostMode::kMatrix2D, 32, aggregated,
                                      overlap);
      EXPECT_EQ(est.messages, measured.messages)
          << "agg " << aggregated << " overlap " << overlap;
      EXPECT_EQ(est.bytes, measured.bytes)
          << "agg " << aggregated << " overlap " << overlap;
    }
  }
  EXPECT_EQ(m.compute_comm(16, HostMode::kNaive, 32, true, false).messages, 0u);
  EXPECT_EQ(m.compute_comm(16, HostMode::kHardwareNet, 32, true, false).messages,
            0u);
}

// The headline claim of this layer, in model form: at the paper-scale 16
// hosts, aggregation cuts j-update messages per step by at least 10x.
TEST(CommEstimate, AggregationCutsMessagesTenfoldAtSixteenHosts) {
  const PerfModel m = full_model();
  for (const HostMode mode : {HostMode::kNaive, HostMode::kMatrix2D}) {
    const auto plain = m.update_comm(16, mode, 384, /*aggregated=*/false);
    const auto agg = m.update_comm(16, mode, 384, /*aggregated=*/true);
    ASSERT_GT(agg.messages, 0u);
    EXPECT_GE(static_cast<double>(plain.messages) /
                  static_cast<double>(agg.messages),
              10.0)
        << "mode " << static_cast<int>(mode);
    EXPECT_LT(agg.seconds, plain.seconds) << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
