// Tests for the simulation-as-a-service layer: job parsing and cache keys,
// scheduler admission control (bounded queue, per-tenant quotas,
// priorities), fault isolation, the line protocol (via handle_line and over
// a real socket with the Client), and the /jobs HTTP family
// (docs/SERVING.md).
#include "serve/job_server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "util/check.hpp"

namespace {

using g6::obs::JsonValue;
using g6::serve::Client;
using g6::serve::JobRequest;
using g6::serve::JobServer;
using g6::serve::JobServerConfig;
using g6::serve::RejectReason;
using g6::serve::ResultCache;
using g6::serve::Scheduler;
using g6::serve::SchedulerConfig;
using g6::serve::ServeJobState;
using g6::serve::SubmitOutcome;
using g6::serve::SubmitReply;
using g6::serve::TenantQuota;

}  // namespace

// --- Job model -------------------------------------------------------------

TEST(ServeJob, KeyCoversPhysicsNotScheduling) {
  const JobRequest base;
  const std::uint64_t key = g6::serve::job_key(base);
  EXPECT_EQ(key, g6::serve::job_key(base));  // deterministic

  // Every physics field moves the key...
  auto with = [&](auto&& mutate) {
    JobRequest r = base;
    mutate(r);
    return g6::serve::job_key(r);
  };
  EXPECT_NE(key, with([](JobRequest& r) { r.n = 57; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.seed = 2; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.model = "plummer"; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.backend = "grape"; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.eta = 0.01; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.dt_max = 2.0; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.t_end = 2.0; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.mpp = 2e-5; }));
  EXPECT_NE(key, with([](JobRequest& r) { r.eps = 0.016; }));

  // ...while scheduling/testing knobs do not: the same physics from another
  // tenant, at another priority, or with fault injection is the same result.
  EXPECT_EQ(key, with([](JobRequest& r) { r.tenant = "other"; }));
  EXPECT_EQ(key, with([](JobRequest& r) { r.priority = 9; }));
  EXPECT_EQ(key, with([](JobRequest& r) { r.no_cache = true; }));
  EXPECT_EQ(key, with([](JobRequest& r) { r.fault_after_blocks = 3; }));

  // hosts only matters for the cluster backend's decomposition.
  JobRequest cl = base;
  cl.backend = "cluster";
  JobRequest cl8 = cl;
  cl8.hosts = 8;
  EXPECT_NE(g6::serve::job_key(cl), g6::serve::job_key(cl8));
}

TEST(ServeJob, KeyHexIsSixteenLowercaseDigits) {
  const std::string hex = g6::serve::key_hex(0xdeadbeef12345678ULL);
  EXPECT_EQ(hex, "deadbeef12345678");
  EXPECT_EQ(g6::serve::key_hex(0x5ULL).size(), 16u);
  EXPECT_EQ(g6::serve::key_hex(0x5ULL), "0000000000000005");
}

TEST(ServeJob, JsonRoundTripPreservesKey) {
  JobRequest req;
  req.tenant = "alice \"quoted\"";
  req.model = "plummer";
  req.n = 123;
  req.seed = 99;
  req.t_end = 0.75;
  req.priority = 3;
  req.fault_after_blocks = 2;
  req.no_cache = true;
  const JobRequest back =
      g6::serve::parse_job(JsonValue::parse(g6::serve::job_json(req)));
  EXPECT_EQ(back.tenant, req.tenant);
  EXPECT_EQ(back.n, req.n);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.fault_after_blocks, req.fault_after_blocks);
  EXPECT_TRUE(back.no_cache);
  EXPECT_EQ(g6::serve::job_key(back), g6::serve::job_key(req));
}

TEST(ServeJob, ParseRejectsBadSpecs) {
  auto parse = [](const std::string& json) {
    return g6::serve::parse_job(JsonValue::parse(json));
  };
  EXPECT_THROW(parse("{\"n\":-4}"), g6::util::Error);
  EXPECT_THROW(parse("{\"n\":0}"), g6::util::Error);
  EXPECT_THROW(parse("{\"t_end\":0}"), g6::util::Error);
  EXPECT_THROW(parse("{\"model\":\"sphere-of-doom\"}"), g6::util::Error);
  EXPECT_THROW(parse("{\"backend\":\"tpu\"}"), g6::util::Error);
  EXPECT_THROW(parse("{\"frobnicate\":1}"), g6::util::Error);  // unknown field
  EXPECT_THROW(parse("{\"n\":\"many\"}"), g6::util::Error);    // wrong type
}

// --- Scheduler admission ---------------------------------------------------

// workers=0 keeps accepted jobs queued forever: admission decisions become
// deterministic (nothing drains between submits).
TEST(SchedulerAdmission, BoundedQueueRejectsWithReason) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 0;
  cfg.max_queue = 2;
  cfg.default_quota.max_concurrent = 10;
  Scheduler sched(cfg, cache);
  sched.start();

  JobRequest req;
  req.n = 16;
  EXPECT_TRUE(sched.submit(req).accepted);
  req.seed = 2;
  EXPECT_TRUE(sched.submit(req).accepted);
  req.seed = 3;
  const SubmitOutcome full = sched.submit(req);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);
  EXPECT_EQ(sched.stats().queued, 2u);
  EXPECT_EQ(sched.stats().rejected, 1u);
  sched.stop();
}

TEST(SchedulerAdmission, PerJobParticleCap) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 0;
  cfg.max_job_particles = 128;
  Scheduler sched(cfg, cache);
  sched.start();
  JobRequest req;
  req.n = 256;
  const SubmitOutcome out = sched.submit(req);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, RejectReason::kJobTooLarge);
  sched.stop();
}

TEST(SchedulerAdmission, TenantQuotasConcurrentAndParticles) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 0;
  cfg.max_queue = 100;
  cfg.tenant_quotas["cramped"] = TenantQuota{1, 1 << 20, 0};
  cfg.tenant_quotas["thin"] = TenantQuota{10, 100, 0};
  Scheduler sched(cfg, cache);
  sched.start();

  JobRequest req;
  req.tenant = "cramped";
  req.n = 16;
  EXPECT_TRUE(sched.submit(req).accepted);
  req.seed = 2;
  const SubmitOutcome conc = sched.submit(req);
  EXPECT_FALSE(conc.accepted);
  EXPECT_EQ(conc.reason, RejectReason::kTenantConcurrent);

  req.tenant = "thin";
  req.n = 64;
  EXPECT_TRUE(sched.submit(req).accepted);
  req.seed = 3;
  const SubmitOutcome parts = sched.submit(req);
  EXPECT_FALSE(parts.accepted);
  EXPECT_EQ(parts.reason, RejectReason::kTenantParticles);

  // Other tenants are unaffected by a saturated one — isolation.
  req.tenant = "free";
  EXPECT_TRUE(sched.submit(req).accepted);
  sched.stop();
}

TEST(SchedulerAdmission, StopFailsQueuedJobsAndRejectsNewOnes) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 0;
  Scheduler sched(cfg, cache);
  sched.start();
  JobRequest req;
  req.n = 16;
  const SubmitOutcome out = sched.submit(req);
  ASSERT_TRUE(out.accepted);
  sched.stop();

  const auto rec = sched.record(out.id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, ServeJobState::kFailed);
  EXPECT_NE(rec->error.find("shutdown"), std::string::npos);

  const SubmitOutcome late = sched.submit(req);
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reason, RejectReason::kShuttingDown);
}

TEST(SchedulerAdmission, HigherPriorityStartsFirst) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;  // one lane: queued order IS start order
  cfg.tenant_quotas["vip"] = TenantQuota{4, 1 << 20, 10};
  Scheduler sched(cfg, cache);
  sched.start();

  // Occupy the lane long enough to queue the contenders behind it.
  JobRequest blocker;
  blocker.n = 2048;
  blocker.t_end = 1.0;
  blocker.seed = 11;
  const SubmitOutcome b = sched.submit(blocker);
  ASSERT_TRUE(b.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  JobRequest low;
  low.n = 16;
  low.seed = 21;
  low.t_end = 0.0625;
  const SubmitOutcome lo = sched.submit(low);   // default priority 0
  JobRequest high = low;
  high.tenant = "vip";                          // +10 base priority
  high.seed = 22;
  const SubmitOutcome hi = sched.submit(high);  // submitted AFTER low
  ASSERT_TRUE(lo.accepted);
  ASSERT_TRUE(hi.accepted);

  ASSERT_TRUE(sched.wait(lo.id, 300.0).has_value());
  ASSERT_TRUE(sched.wait(hi.id, 300.0).has_value());
  const auto lo_rec = sched.record(lo.id);
  const auto hi_rec = sched.record(hi.id);
  ASSERT_TRUE(lo_rec.has_value());
  ASSERT_TRUE(hi_rec.has_value());
  EXPECT_LT(hi_rec->start_seconds, lo_rec->start_seconds)
      << "the vip-tenant job queued later must start first";
  sched.stop();
}

// --- Fault isolation -------------------------------------------------------

TEST(SchedulerFaults, InjectedFaultFailsJobNotServer) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;
  Scheduler sched(cfg, cache);
  sched.start();
  // Scheduler stats are backed by process-global metrics counters; measure
  // deltas so this test is immune to whatever ran before it.
  const std::uint64_t failed0 = sched.stats().failed;
  const std::uint64_t completed0 = sched.stats().completed;

  JobRequest dying;
  dying.n = 32;
  dying.seed = 666;
  dying.t_end = 0.125;
  dying.fault_after_blocks = 1;
  const SubmitOutcome d = sched.submit(dying);
  ASSERT_TRUE(d.accepted);
  EXPECT_FALSE(d.cached) << "fault-injected jobs must always run for real";
  const auto drec = sched.wait(d.id, 120.0);
  ASSERT_TRUE(drec.has_value());
  EXPECT_EQ(drec->state, ServeJobState::kFailed);
  EXPECT_NE(drec->error.find("injected fault"), std::string::npos);
  EXPECT_FALSE(cache.contains(d.key)) << "failed jobs must not be cached";

  // The lane survived: an ordinary job completes on the same scheduler,
  // and the dead job's quota was released.
  JobRequest ok;
  ok.n = 32;
  ok.seed = 667;
  ok.t_end = 0.0625;
  const SubmitOutcome o = sched.submit(ok);
  ASSERT_TRUE(o.accepted);
  const auto orec = sched.wait(o.id, 120.0);
  ASSERT_TRUE(orec.has_value());
  EXPECT_EQ(orec->state, ServeJobState::kDone);
  EXPECT_EQ(sched.stats().failed - failed0, 1u);
  EXPECT_EQ(sched.stats().completed - completed0, 1u);
  sched.stop();
}

TEST(SchedulerFaults, FaultInjectionBypassesCacheReadToo) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;
  Scheduler sched(cfg, cache);
  sched.start();

  JobRequest clean;
  clean.n = 32;
  clean.seed = 777;
  clean.t_end = 0.0625;
  const SubmitOutcome c = sched.submit(clean);
  ASSERT_TRUE(c.accepted);
  ASSERT_TRUE(sched.wait(c.id, 120.0).has_value());
  ASSERT_TRUE(cache.contains(c.key));

  // Identical physics plus the fault knob: same key, but the cached clean
  // result must NOT short-circuit the failure we were asked to exercise.
  JobRequest faulted = clean;
  faulted.fault_after_blocks = 1;
  const SubmitOutcome f = sched.submit(faulted);
  ASSERT_TRUE(f.accepted);
  EXPECT_FALSE(f.cached);
  EXPECT_EQ(f.key, c.key);
  const auto frec = sched.wait(f.id, 120.0);
  ASSERT_TRUE(frec.has_value());
  EXPECT_EQ(frec->state, ServeJobState::kFailed);
  sched.stop();
}

// --- Line protocol (handle_line: no sockets) -------------------------------

TEST(ServeProtocol, PingStatsAndErrors) {
  JobServer server;  // not started: handle_line still works
  const JsonValue pong = JsonValue::parse(server.handle_line("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.find("ok")->as_bool());

  const JsonValue stats = JsonValue::parse(server.handle_line("{\"op\":\"stats\"}"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_NE(stats.find("cache"), nullptr);

  const JsonValue bad = JsonValue::parse(server.handle_line("not json at all"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  const JsonValue unk =
      JsonValue::parse(server.handle_line("{\"op\":\"frobnicate\"}"));
  EXPECT_FALSE(unk.find("ok")->as_bool());
  const JsonValue noid =
      JsonValue::parse(server.handle_line("{\"op\":\"status\",\"id\":\"j-9\"}"));
  EXPECT_FALSE(noid.find("ok")->as_bool());
}

TEST(ServeProtocol, SubmitBadJobCountsBadRequest) {
  JobServer server;
  const JsonValue r = JsonValue::parse(
      server.handle_line("{\"op\":\"submit\",\"job\":{\"n\":-1}}"));
  EXPECT_FALSE(r.find("ok")->as_bool());
  ASSERT_NE(r.find("reason"), nullptr);
  EXPECT_EQ(r.find("reason")->as_string(), "bad_request");
}

TEST(ServeProtocol, ShutdownOpSetsFlag) {
  JobServer server;
  EXPECT_FALSE(server.wants_shutdown());
  const JsonValue r =
      JsonValue::parse(server.handle_line("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(r.find("ok")->as_bool());
  EXPECT_TRUE(server.wants_shutdown());
}

// --- Full stack over a real socket -----------------------------------------

TEST(ServeSocket, SubmitWaitResultRoundTrip) {
  JobServerConfig cfg;
  cfg.scheduler.workers = 1;
  JobServer server(cfg);
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.connect(server.port()));

  JobRequest req;
  req.n = 48;
  req.seed = 31337;
  req.t_end = 0.125;
  const SubmitReply cold = client.submit(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.key.size(), 16u);

  const JsonValue done = client.wait(cold.id, 120.0);
  EXPECT_EQ(done.find("state")->as_string(), "done");
  const std::string bytes = client.result_bytes(cold.id);  // verifies crc32
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "G6SNAPB2");

  // Duplicate over a SECOND connection: same cache, bit-identical bytes.
  Client other;
  ASSERT_TRUE(other.connect(server.port()));
  const SubmitReply dup = other.submit(req);
  ASSERT_TRUE(dup.ok);
  EXPECT_TRUE(dup.cached);
  EXPECT_EQ(dup.key, cold.key);
  EXPECT_EQ(other.result_bytes(dup.id), bytes);

  client.close();
  other.close();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeSocket, ConnectionCapRefusesExtraClients) {
  JobServerConfig cfg;
  cfg.max_connections = 1;
  JobServer server(cfg);
  ASSERT_TRUE(server.start());

  Client first;
  ASSERT_TRUE(first.connect(server.port()));
  const JsonValue pong = first.call("{\"op\":\"ping\"}");
  EXPECT_TRUE(pong.find("ok")->as_bool());

  // The TCP connect succeeds but the server answers one error line and
  // closes instead of serving.
  Client second;
  ASSERT_TRUE(second.connect(server.port()));
  const JsonValue refused = second.call("{\"op\":\"ping\"}", 10.0);
  EXPECT_FALSE(refused.find("ok")->as_bool());
  ASSERT_NE(refused.find("error"), nullptr);
  EXPECT_NE(refused.find("error")->as_string().find("too many connections"),
            std::string::npos);

  first.close();
  second.close();
  server.stop();
}

TEST(ServeSocket, WaitTimesOutOnSlowJob) {
  JobServerConfig cfg;
  cfg.scheduler.workers = 0;  // nothing ever runs
  JobServer server(cfg);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(server.port()));
  const SubmitReply r = client.submit(JobRequest{});
  ASSERT_TRUE(r.ok);
  EXPECT_THROW(client.wait(r.id, 0.2), g6::util::Error);
  client.close();
  server.stop();
}

// --- /jobs HTTP family (no sockets: dispatch through MonitorServer) --------

#ifndef G6_OBS_DISABLED

TEST(ServeHttp, JobsEndpointsServeRecordsAndResults) {
  JobServerConfig cfg;
  cfg.scheduler.workers = 1;
  JobServer server(cfg);
  ASSERT_TRUE(server.start());
  g6::obs::MonitorServer http;
  server.attach_http(http);

  // POST /jobs submits; a malformed body is 400, an accepted one 200.
  const g6::obs::HttpResponse bad = http.handle_post("/jobs", "{\"n\":0}");
  EXPECT_EQ(bad.status, 400);
  const g6::obs::HttpResponse posted =
      http.handle_post("/jobs", "{\"n\":32,\"seed\":71,\"t_end\":0.0625}");
  ASSERT_EQ(posted.status, 200) << posted.body;
  const std::string id = JsonValue::parse(posted.body).find("id")->as_string();
  ASSERT_TRUE(server.scheduler().wait(id, 120.0).has_value());

  // GET /jobs lists stats + records; GET /jobs/<id> one record; .../result
  // streams the snapshot bytes.
  const g6::obs::HttpResponse list = http.handle("/jobs");
  ASSERT_EQ(list.status, 200);
  const JsonValue doc = JsonValue::parse(list.body);
  EXPECT_NE(doc.find("jobs"), nullptr);
  EXPECT_NE(doc.find("cache_hits"), nullptr);

  const g6::obs::HttpResponse one = http.handle("/jobs/" + id);
  ASSERT_EQ(one.status, 200);
  EXPECT_EQ(JsonValue::parse(one.body).find("id")->as_string(), id);

  const g6::obs::HttpResponse result = http.handle("/jobs/" + id + "/result");
  ASSERT_EQ(result.status, 200);
  EXPECT_EQ(result.content_type, "application/octet-stream");
  EXPECT_EQ(result.body.substr(0, 8), "G6SNAPB2");

  EXPECT_EQ(http.handle("/jobs/nope").status, 404);
  EXPECT_EQ(http.handle("/jobs/nope/result").status, 404);
  server.stop();
}

#else  // G6_OBS_DISABLED

// Stripped build: the protocol server (plain POSIX sockets, not part of the
// monitor stack) still serves jobs; attach_http degrades to a no-op.
TEST(ServeDisabled, ProtocolStillServesJobs) {
  JobServerConfig cfg;
  cfg.scheduler.workers = 1;
  JobServer server(cfg);
  g6::obs::MonitorServer http;
  server.attach_http(http);  // must be callable and harmless
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(server.port()));
  JobRequest req;
  req.n = 32;
  req.seed = 5;
  req.t_end = 0.0625;
  const SubmitReply r = client.submit(req);
  ASSERT_TRUE(r.ok);
  const JsonValue done = client.wait(r.id, 120.0);
  EXPECT_EQ(done.find("state")->as_string(), "done");
  client.close();
  server.stop();
}

#endif  // G6_OBS_DISABLED
