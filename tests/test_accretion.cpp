// Tests for the collisional-accretion layer.
#include "nbody/accretion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"

namespace {

using g6::nbody::AccretionDriver;
using g6::nbody::apply_mergers;
using g6::nbody::CollisionConfig;
using g6::nbody::find_overlaps;
using g6::nbody::Overlap;
using g6::nbody::ParticleSystem;
using g6::nbody::physical_radius;
using g6::util::Vec3;

TEST(PhysicalRadius, DensityFormula) {
  CollisionConfig cfg;
  cfg.density = 3.0 / (4.0 * std::numbers::pi);  // makes R = m^(1/3)
  cfg.radius_enhancement = 1.0;
  EXPECT_NEAR(physical_radius(8.0, cfg), 2.0, 1e-12);
  cfg.radius_enhancement = 5.0;
  EXPECT_NEAR(physical_radius(8.0, cfg), 10.0, 1e-12);
}

TEST(PhysicalRadius, RealisticPlanetesimalScale) {
  // A 2e20 kg (~1e-10 M_sun) icy body has a ~300 km radius ~ 2e-6 AU.
  CollisionConfig cfg;  // default density 2 g/cm^3 in code units
  const double r = physical_radius(1e-10, cfg);
  EXPECT_GT(r, 1e-6);
  EXPECT_LT(r, 4e-6);
}

TEST(PhysicalRadius, Validation) {
  CollisionConfig cfg;
  EXPECT_THROW(physical_radius(0.0, cfg), g6::util::Error);
  cfg.density = 0.0;
  EXPECT_THROW(physical_radius(1.0, cfg), g6::util::Error);
}

CollisionConfig unit_radius_config() {
  CollisionConfig cfg;
  cfg.density = 3.0 / (4.0 * std::numbers::pi);  // R = m^(1/3)
  return cfg;
}

TEST(FindOverlaps, DetectsTouchingPair) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {});      // R = 1
  ps.add(1.0, {1.5, 0, 0}, {});    // R = 1, separation 1.5 < 2
  ps.add(1.0, {10, 0, 0}, {});     // far away
  const auto hits = find_overlaps(ps, unit_radius_config());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].i, 0u);
  EXPECT_EQ(hits[0].j, 1u);
  EXPECT_NEAR(hits[0].separation, 1.5, 1e-12);
}

TEST(FindOverlaps, EmptyWhenSeparated) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {});
  ps.add(1.0, {3, 0, 0}, {});
  EXPECT_TRUE(find_overlaps(ps, unit_radius_config()).empty());
}

TEST(ApplyMergers, ConservesMassAndMomentum) {
  ParticleSystem ps;
  ps.add(2.0, {0, 0, 0}, {1, 0, 0});
  ps.add(1.0, {1, 0, 0}, {-1, 1, 0});
  ps.add(5.0, {10, 0, 0}, {0, 0, 1});
  ps.time(0) = ps.time(1) = ps.time(2) = 3.5;

  const auto rep = apply_mergers(ps, {{0, 1, 1.0}});
  EXPECT_EQ(rep.mergers, 1u);
  ASSERT_EQ(rep.system.size(), 2u);
  // Merged body: mass 3, COM position 1/3, momentum (1,1,0)/3.
  EXPECT_NEAR(rep.system.mass(0), 3.0, 1e-12);
  EXPECT_NEAR(rep.system.pos(0).x, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(norm(rep.system.vel(0) - Vec3(1.0 / 3.0, 1.0 / 3.0, 0)), 0.0, 1e-12);
  EXPECT_EQ(rep.system.time(0), 3.5);
  // Untouched body survives.
  EXPECT_EQ(rep.system.mass(1), 5.0);
  // Global conservation.
  EXPECT_NEAR(rep.system.total_mass(), ps.total_mass(), 1e-12);
  EXPECT_NEAR(norm(g6::nbody::center_of_mass_velocity(rep.system) -
                   g6::nbody::center_of_mass_velocity(ps)),
              0.0, 1e-12);
}

TEST(ApplyMergers, ChainCollapsesToOneBody) {
  ParticleSystem ps;
  for (int k = 0; k < 4; ++k) ps.add(1.0, {double(k), 0, 0}, {});
  // 0-1, 1-2, 2-3 overlapping: one group.
  const auto rep = apply_mergers(ps, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  EXPECT_EQ(rep.mergers, 3u);
  ASSERT_EQ(rep.system.size(), 1u);
  EXPECT_NEAR(rep.system.mass(0), 4.0, 1e-12);
  EXPECT_NEAR(rep.system.pos(0).x, 1.5, 1e-12);
}

TEST(ApplyMergers, NoOverlapsIsIdentity) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {1, 2, 3});
  const auto rep = apply_mergers(ps, {});
  EXPECT_EQ(rep.mergers, 0u);
  ASSERT_EQ(rep.system.size(), 1u);
  EXPECT_EQ(rep.system.vel(0), Vec3(1, 2, 3));
}

TEST(AccretionDriver, HeadOnCollisionMerges) {
  // Two bodies on a head-on Keplerian collision course around the Sun.
  ParticleSystem ps;
  ps.add(1e-8, {1.0, 0, 0}, {0, 1.0, 0});
  ps.add(1e-8, {1.02, 0, 0}, {0, -1.0, 0});  // counter-orbiting: meets #0

  CollisionConfig ccfg;
  ccfg.density = 3.0 / (4.0 * std::numbers::pi);
  ccfg.radius_enhancement = 3000.0;  // R ~ 0.006: they collide when they meet

  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = 0.01;
  icfg.dt_max = 0x1p-6;
  AccretionDriver driver(
      ps, ccfg, icfg, /*eps=*/1e-4,
      [](double eps) { return std::make_unique<g6::nbody::CpuDirectBackend>(eps); });
  driver.evolve(2.0, /*check_interval=*/0x1p-4);

  EXPECT_EQ(driver.total_mergers(), 1u);
  EXPECT_EQ(driver.system().size(), 1u);
  EXPECT_NEAR(driver.system().mass(0), 2e-8, 1e-20);
  EXPECT_NEAR(driver.largest_mass(), 2e-8, 1e-20);
}

TEST(AccretionDriver, QuietSystemNeverMerges) {
  ParticleSystem ps;
  ps.add(1e-10, {1.0, 0, 0}, {0, 1.0, 0});
  ps.add(1e-10, {2.0, 0, 0}, {0, std::sqrt(0.5), 0});
  CollisionConfig ccfg;  // realistic tiny radii
  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  AccretionDriver driver(
      ps, ccfg, icfg, 1e-4,
      [](double eps) { return std::make_unique<g6::nbody::CpuDirectBackend>(eps); });
  driver.evolve(4.0, 1.0);
  EXPECT_EQ(driver.total_mergers(), 0u);
  EXPECT_EQ(driver.system().size(), 2u);
  EXPECT_NEAR(driver.current_time(), 4.0, 1e-12);
}

TEST(AccretionDriver, Validation) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {0, 1, 0});
  CollisionConfig ccfg;
  g6::nbody::IntegratorConfig icfg;
  EXPECT_THROW(AccretionDriver(ps, ccfg, icfg, 0.0, nullptr), g6::util::Error);
  AccretionDriver driver(ps, ccfg, icfg, 0.0, [](double eps) {
    return std::make_unique<g6::nbody::CpuDirectBackend>(eps);
  });
  EXPECT_THROW(driver.evolve(1.0, 0.0), g6::util::Error);
}

}  // namespace
