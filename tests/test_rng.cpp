// Tests for the deterministic RNG and its samplers (statistical checks use
// generous tolerances so they are stable across platforms).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace {

using g6::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(Rng, BelowBoundsAndCoverage) {
  Rng rng(6);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.below(10);
    ASSERT_LT(k, 10u);
    ++seen[static_cast<std::size_t>(k)];
  }
  for (int c : seen) EXPECT_GT(c, 700);  // each bucket ~1000
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.below(0), g6::util::Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, RayleighMoments) {
  // Rayleigh(sigma): mean = sigma*sqrt(pi/2), E[x^2] = 2 sigma^2.
  Rng rng(10);
  const double sigma = 0.004;
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.rayleigh(sigma);
    EXPECT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, sigma * std::sqrt(std::numbers::pi / 2.0), 1e-4);
  EXPECT_NEAR(sum2 / n, 2.0 * sigma * sigma, 1e-6);
}

TEST(Rng, PowerLawBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double m = rng.power_law(-2.5, 1e-11, 1e-9);
    EXPECT_GE(m, 1e-11);
    EXPECT_LE(m, 1e-9);
  }
}

TEST(Rng, PowerLawMeanMatchesAnalytic) {
  // <m> = [int m^(a+1)] / [int m^a] over [lo, hi].
  Rng rng(12);
  const double a = -2.5, lo = 1e-11, hi = 1e-9;
  auto moment = [&](double p) {
    const double q = a + p + 1.0;
    return (std::pow(hi, q) - std::pow(lo, q)) / q;
  };
  const double expected = moment(1.0) / moment(0.0);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.power_law(a, lo, hi);
  EXPECT_NEAR(sum / n / expected, 1.0, 0.02);
}

TEST(Rng, PowerLawLogCase) {
  // alpha = -1 falls back to the logarithmic sampler.
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.power_law(-1.0, 1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, PowerLawBadBoundsThrow) {
  Rng rng(14);
  EXPECT_THROW(rng.power_law(-2.5, 0.0, 1.0), g6::util::Error);
  EXPECT_THROW(rng.power_law(-2.5, 2.0, 1.0), g6::util::Error);
}

TEST(Rng, AngleRange) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 2.0 * std::numbers::pi);
  }
}

// Property sweep: sampler statistics hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, PowerLawSlopeRecovered) {
  // Fit the log-log slope of the CDF between the cutoffs; for p(m) ~ m^-2.5
  // the counts above m scale as m^-1.5.
  Rng rng(GetParam());
  const int n = 100000;
  std::vector<double> samples(n);
  for (auto& s : samples) s = rng.power_law(-2.5, 1e-11, 1e-9);
  const double m1 = 3e-11, m2 = 3e-10;
  double c1 = 0, c2 = 0;
  for (double s : samples) {
    if (s > m1) ++c1;
    if (s > m2) ++c2;
  }
  // N(>m) ∝ m^-1.5 - hi^-1.5; compare against the analytic ratio.
  auto tail = [](double m) {
    return std::pow(m, -1.5) - std::pow(1e-9, -1.5);
  };
  const double expected = tail(m2) / tail(m1);
  EXPECT_NEAR(c2 / c1, expected, 0.05 * expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 17u, 12345u, 999983u));

}  // namespace
