// Tests for the processor board: chip balancing, reduction-tree exactness
// and the board cycle model.
#include "grape6/board.hpp"

#include <gtest/gtest.h>

#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

namespace {

using g6::hw::FormatSpec;
using g6::hw::ForceAccumulator;
using g6::hw::IParticle;
using g6::hw::JAddress;
using g6::hw::JParticle;
using g6::hw::ProcessorBoard;
using g6::util::FixedVec3;
using g6::util::Vec3;

JParticle make_j(std::uint32_t id, double m, const Vec3& x, const FormatSpec& fmt) {
  JParticle p;
  p.id = id;
  p.mass = m;
  p.x0 = FixedVec3::quantize(x, fmt.pos_lsb);
  return p;
}

std::vector<JParticle> random_cloud(int n, const FormatSpec& fmt, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  std::vector<JParticle> js;
  for (int j = 0; j < n; ++j)
    js.push_back(make_j(static_cast<std::uint32_t>(j), rng.uniform(1e-10, 1e-9),
                        {rng.uniform(-20, 20), rng.uniform(-20, 20),
                         rng.uniform(-0.5, 0.5)},
                        fmt));
  return js;
}

TEST(Board, BalancesChips) {
  const FormatSpec fmt;
  ProcessorBoard board(fmt, 4, 64);
  std::vector<JAddress> addrs;
  for (int j = 0; j < 10; ++j)
    addrs.push_back(board.store_j(make_j(0, 1.0, {1, 0, 0}, fmt)));
  // 10 particles over 4 chips via least-loaded placement: loads 3,3,2,2.
  std::vector<int> load(4, 0);
  for (const JAddress& a : addrs) ++load[a.chip];
  for (int l : load) {
    EXPECT_GE(l, 2);
    EXPECT_LE(l, 3);
  }
  EXPECT_EQ(board.j_count(), 10u);
  EXPECT_EQ(board.capacity(), 4u * 64u);
}

// The paper's reduction-tree property: the total force is bit-identical no
// matter how j-particles are spread over chips.
class BoardDistribution : public ::testing::TestWithParam<int> {};  // #chips

TEST_P(BoardDistribution, ResultIndependentOfChipCount) {
  const FormatSpec fmt;
  const auto cloud = random_cloud(64, fmt, 5);
  const double eps2 = 0.008 * 0.008;
  std::vector<IParticle> batch;
  for (int k = 0; k < 5; ++k)
    batch.push_back(g6::hw::make_i_particle(
        1000 + static_cast<std::uint32_t>(k), {0.5 * k, -0.2 * k, 0.1}, {}, fmt));

  // Reference: a single-chip "board".
  ProcessorBoard ref_board(fmt, 1, 256);
  for (const auto& j : cloud) ref_board.store_j(j);
  ref_board.predict_all(0.0);
  std::vector<ForceAccumulator> ref(batch.size(), ForceAccumulator(fmt));
  ref_board.compute(batch, eps2, ref);

  ProcessorBoard board(fmt, GetParam(), 256);
  for (const auto& j : cloud) board.store_j(j);
  board.predict_all(0.0);
  std::vector<ForceAccumulator> out(batch.size(), ForceAccumulator(fmt));
  board.compute(batch, eps2, out);

  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(out[k], ref[k]) << "i=" << k << " chips=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, BoardDistribution,
                         ::testing::Values(2, 3, 7, 32));

TEST(Board, MatchesCpuReference) {
  const FormatSpec fmt;
  const auto cloud = random_cloud(128, fmt, 9);
  ProcessorBoard board(fmt, 8, 64);
  for (const auto& j : cloud) board.store_j(j);
  board.predict_all(0.0);

  const Vec3 xi{3.0, -1.0, 0.2};
  std::vector<IParticle> batch{g6::hw::make_i_particle(9999, xi, {}, fmt)};
  std::vector<ForceAccumulator> out(1, ForceAccumulator(fmt));
  const double eps2 = 1e-4;
  board.compute(batch, eps2, out);

  g6::nbody::Force expect{};
  for (const auto& j : cloud)
    g6::nbody::pairwise_force(xi, {}, j.x0.to_vec3(), j.v0, j.mass, eps2, expect);
  EXPECT_NEAR(norm(out[0].acc.to_vec3() - expect.acc), 0.0, 1e-6 * norm(expect.acc));
}

TEST(Board, WriteJByAddress) {
  const FormatSpec fmt;
  ProcessorBoard board(fmt, 2, 8);
  const JAddress a = board.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  board.write_j(a, make_j(0, 9.0, {1, 0, 0}, fmt));
  EXPECT_EQ(board.read_j(a).mass, 9.0);
  EXPECT_THROW(board.write_j({9, 0}, make_j(0, 1.0, {1, 0, 0}, fmt)),
               g6::util::Error);
}

TEST(Board, CycleModelUsesWorstChipPlusReduction) {
  const FormatSpec fmt;
  ProcessorBoard board(fmt, 2, 64);
  // 3 particles -> chips hold 2 and 1.
  for (int j = 0; j < 3; ++j) board.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  const std::uint64_t worst_chip = g6::hw::kVmp * 2 + g6::hw::kPipelineLatency;
  const std::uint64_t reduction = 1u * 1u * 4u;  // 1 pass, 1 stage, 4 cycles
  EXPECT_EQ(board.compute_cycles(1), worst_chip + reduction);
  EXPECT_EQ(board.predict_cycles(), 2u);
}

TEST(Board, CountersAccumulate) {
  const FormatSpec fmt;
  ProcessorBoard board(fmt, 2, 64);
  for (int j = 0; j < 10; ++j) board.store_j(make_j(0, 1.0, {1, 0, 0}, fmt));
  board.predict_all(0.0);
  std::vector<IParticle> batch{g6::hw::make_i_particle(50, {0, 0, 0}, {}, fmt)};
  std::vector<ForceAccumulator> out(1, ForceAccumulator(fmt));
  board.compute(batch, 0.0, out);
  EXPECT_EQ(board.counters().interactions, 10u);
  EXPECT_EQ(board.counters().predict_ops, 10u);
  EXPECT_EQ(board.counters().passes, 1u);
  EXPECT_GT(board.counters().pipe_cycles, 0u);
}

}  // namespace
