// Tests for the transport collectives (broadcast / all-gather / reduce).
#include "cluster/collectives.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using g6::cluster::ring_all_gather;
using g6::cluster::Transport;
using g6::cluster::tree_broadcast;
using g6::cluster::tree_reduce;
using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b;
  for (char c : s) b.push_back(static_cast<std::byte>(c));
  return b;
}

std::string string_of(const std::vector<std::byte>& b) {
  std::string s;
  for (std::byte x : b) s.push_back(static_cast<char>(x));
  return s;
}

class BroadcastSizes : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastSizes, EveryRankReceivesPayload) {
  const int p = GetParam();
  Transport t(p, {});
  const auto payload = bytes_of("i-particles");
  const auto received = tree_broadcast(t, 0, payload, 1);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(string_of(received[static_cast<std::size_t>(r)]), "i-particles") << r;
  // Exactly p-1 copies cross the wire.
  std::uint64_t total = 0;
  for (int r = 0; r < p; ++r) total += t.stats(r).bytes_sent;
  EXPECT_EQ(total, payload.size() * static_cast<std::uint64_t>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastSizes, ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(Broadcast, NonZeroRoot) {
  Transport t(5, {});
  const auto received = tree_broadcast(t, 3, bytes_of("x"), 1);
  for (int r = 0; r < 5; ++r)
    EXPECT_EQ(string_of(received[static_cast<std::size_t>(r)]), "x");
  EXPECT_THROW(tree_broadcast(t, 9, bytes_of("x"), 1), g6::util::Error);
}

class AllGatherSizes : public ::testing::TestWithParam<int> {};

TEST_P(AllGatherSizes, ConcatenatesInRankOrder) {
  const int p = GetParam();
  Transport t(p, {});
  std::vector<std::vector<std::byte>> inputs;
  std::string expect;
  for (int r = 0; r < p; ++r) {
    const std::string s = "r" + std::to_string(r) + ";";
    inputs.push_back(bytes_of(s));
    expect += s;
  }
  const auto out = ring_all_gather(t, inputs, 2);
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(string_of(out[static_cast<std::size_t>(r)]), expect) << r;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllGatherSizes, ::testing::Values(1, 2, 3, 4, 8));

TEST(AllGather, InputCountValidated) {
  Transport t(3, {});
  EXPECT_THROW(ring_all_gather(t, {bytes_of("a")}, 2), g6::util::Error);
}

TEST(TreeReduce, MatchesSerialMergeBitwise) {
  const FormatSpec fmt;
  g6::util::Rng rng(9);
  for (int p : {1, 2, 3, 5, 8}) {
    Transport t(p, {});
    const std::size_t len = 4;
    std::vector<std::vector<ForceAccumulator>> batches(
        static_cast<std::size_t>(p),
        std::vector<ForceAccumulator>(len, ForceAccumulator(fmt)));
    std::vector<ForceAccumulator> expect(len, ForceAccumulator(fmt));
    for (auto& batch : batches) {
      for (std::size_t k = 0; k < len; ++k) {
        const g6::util::Vec3 c{rng.uniform(-1e-6, 1e-6), rng.uniform(-1e-6, 1e-6),
                               rng.uniform(-1e-6, 1e-6)};
        batch[k].acc.accumulate(c);
        expect[k].acc.accumulate(c);
      }
    }
    const auto result = tree_reduce(t, 0, batches, fmt, 3);
    ASSERT_EQ(result.size(), len);
    for (std::size_t k = 0; k < len; ++k)
      EXPECT_EQ(result[k].acc, expect[k].acc) << "p=" << p << " k=" << k;
  }
}

TEST(TreeReduce, NonZeroRootAndValidation) {
  const FormatSpec fmt;
  Transport t(4, {});
  std::vector<std::vector<ForceAccumulator>> batches(
      4, std::vector<ForceAccumulator>(2, ForceAccumulator(fmt)));
  batches[2][0].acc.accumulate({1e-6, 0, 0});
  const auto result = tree_reduce(t, 2, batches, fmt, 3);
  EXPECT_NEAR(result[0].acc.to_vec3().x, 1e-6, 1e-12);

  std::vector<std::vector<ForceAccumulator>> ragged(
      4, std::vector<ForceAccumulator>(2, ForceAccumulator(fmt)));
  ragged[1].resize(3, ForceAccumulator(fmt));
  EXPECT_THROW(tree_reduce(t, 0, ragged, fmt, 3), g6::util::Error);
}

TEST(Collectives, FailedLinkSurfacesError) {
  Transport t(4, {});
  t.fail_link(0, 1);
  EXPECT_THROW(tree_broadcast(t, 0, bytes_of("x"), 1), g6::util::Error);
}

}  // namespace
