// Tests for the FlightRecorder: disarmed no-op behaviour, bounded step/event
// rings, atomic dump files and their JSON shape, repeated dumps rewriting
// the same path, autosave on sampler frames, and clear().
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

using g6::obs::FlightConfig;
using g6::obs::FlightRecorder;
using g6::obs::JsonValue;

#ifndef G6_OBS_DISABLED

namespace {

/// Fresh scratch directory per test; flight dumps are named by enable()
/// time, so tests sharing one directory within a second would collide.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "g6_flight_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return JsonValue::parse(ss.str());
}

}  // namespace

TEST(FlightRecorder, DisarmedIsInert) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.record_step(1.0, 8, 0.001);
  rec.note("fault", "never retained");
  rec.record_frame_json("{}");
  EXPECT_EQ(rec.steps_recorded(), 0u);
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.dump("why"), "");  // no file side effects when disarmed
}

TEST(FlightRecorder, DumpContainsStepsEventsFrames) {
  const std::string dir = scratch_dir("dump");
  FlightRecorder rec;
  FlightConfig cfg;
  cfg.dir = dir;
  rec.enable(cfg);
  EXPECT_TRUE(rec.enabled());

  rec.record_step(0.25, 16, 0.002);
  rec.record_step(0.50, 8, 0.001);
  rec.note("fault", "chip-bitflip at=3");
  rec.note("recovery", "remapped 5 particles");
  rec.record_frame_json("{\"seq\":0,\"wall\":0.1,\"dt\":0,\"m\":[]}");

  const std::string path = rec.dump("test-dump");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).parent_path().string(), dir);

  const JsonValue doc = load_json(path);
  EXPECT_EQ(doc.find("reason")->as_string(), "test-dump");
  EXPECT_DOUBLE_EQ(doc.find("steps_total")->as_number(), 2.0);
  ASSERT_EQ(doc.find("steps")->size(), 2u);
  const JsonValue& step = doc.find("steps")->at(0);
  EXPECT_DOUBLE_EQ(step.find("t")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(step.find("n_act")->as_number(), 16.0);
  EXPECT_DOUBLE_EQ(step.find("seconds")->as_number(), 0.002);
  ASSERT_EQ(doc.find("events")->size(), 2u);
  EXPECT_EQ(doc.find("events")->at(0).find("category")->as_string(), "fault");
  ASSERT_EQ(doc.find("frames")->size(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("frames")->at(0).find("seq")->as_number(), 0.0);
}

TEST(FlightRecorder, RingsKeepOnlyLastK) {
  const std::string dir = scratch_dir("rings");
  FlightRecorder rec;
  FlightConfig cfg;
  cfg.dir = dir;
  cfg.max_steps = 4;
  cfg.max_events = 2;
  rec.enable(cfg);

  for (int i = 0; i < 10; ++i) {
    rec.record_step(0.1 * i, static_cast<std::size_t>(i), 0.001);
    rec.note("fault", "event " + std::to_string(i));
  }
  // Lifetime totals keep counting even though the rings are bounded.
  EXPECT_EQ(rec.steps_recorded(), 10u);
  EXPECT_EQ(rec.events_recorded(), 10u);

  const JsonValue doc = load_json(rec.dump("ring-check"));
  EXPECT_DOUBLE_EQ(doc.find("steps_total")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(doc.find("events_total")->as_number(), 10.0);
  ASSERT_EQ(doc.find("steps")->size(), 4u);
  // Last K retained: steps 6..9.
  EXPECT_DOUBLE_EQ(doc.find("steps")->at(0).find("n_act")->as_number(), 6.0);
  EXPECT_DOUBLE_EQ(doc.find("steps")->at(3).find("n_act")->as_number(), 9.0);
  EXPECT_EQ(doc.find("events")->at(1).find("message")->as_string(), "event 9");
}

TEST(FlightRecorder, RepeatedDumpsRewriteSamePath) {
  const std::string dir = scratch_dir("rewrite");
  FlightRecorder rec;
  FlightConfig cfg;
  cfg.dir = dir;
  rec.enable(cfg);
  rec.record_step(1.0, 1, 0.001);
  const std::string first = rec.dump("first");
  rec.record_step(2.0, 2, 0.001);
  const std::string second = rec.dump("second");
  EXPECT_EQ(first, second);  // stable path, atomically rewritten in place
  const JsonValue doc = load_json(second);
  EXPECT_EQ(doc.find("reason")->as_string(), "second");
  EXPECT_EQ(doc.find("steps")->size(), 2u);
  // Exactly one flight file in the directory — no tmp leftovers.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(FlightRecorder, FrameAutosaveWritesDump) {
  const std::string dir = scratch_dir("autosave");
  FlightRecorder rec;
  FlightConfig cfg;
  cfg.dir = dir;
  cfg.autosave_min_interval = 0.0;  // every frame autosaves
  rec.enable(cfg);
  rec.record_step(1.0, 4, 0.001);
  rec.record_frame_json("{\"seq\":0,\"wall\":0.5,\"dt\":0,\"m\":[]}");

  // The autosave must have produced a dump without an explicit dump() call.
  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("flight_", 0) == 0) {
      const JsonValue doc = load_json(e.path().string());
      EXPECT_EQ(doc.find("reason")->as_string(), "autosave");
      EXPECT_EQ(doc.find("frames")->size(), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, ClearDropsHistory) {
  const std::string dir = scratch_dir("clear");
  FlightRecorder rec;
  FlightConfig cfg;
  cfg.dir = dir;
  rec.enable(cfg);
  rec.record_step(1.0, 1, 0.001);
  rec.note("fault", "x");
  rec.clear();
  EXPECT_EQ(rec.steps_recorded(), 0u);
  EXPECT_EQ(rec.events_recorded(), 0u);
  const JsonValue doc = load_json(rec.dump("after-clear"));
  EXPECT_EQ(doc.find("steps")->size(), 0u);
  EXPECT_EQ(doc.find("events")->size(), 0u);
  EXPECT_DOUBLE_EQ(doc.find("steps_total")->as_number(), 0.0);
}

#else  // G6_OBS_DISABLED

TEST(FlightRecorderDisabled, EverythingIsNoop) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.enable(FlightConfig{});
  EXPECT_FALSE(rec.enabled());
  rec.record_step(1.0, 1, 0.001);
  rec.note("fault", "x");
  EXPECT_EQ(rec.steps_recorded(), 0u);
  EXPECT_EQ(rec.dump("why"), "");
  FlightRecorder::install_crash_handlers();  // must link and do nothing
}

#endif  // G6_OBS_DISABLED
