// Tests for the ASCII scatter plotter.
#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace {

using g6::util::AsciiPlot;

TEST(AsciiPlot, EmptyCanvasRenders) {
  AsciiPlot p(0, 1, 0, 1, 10, 4);
  const std::string out = p.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, PointAppears) {
  AsciiPlot p(0, 1, 0, 1, 10, 10);
  p.point(0.5, 0.5);
  const std::string out = p.render();
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(AsciiPlot, OutOfRangePointsIgnored) {
  AsciiPlot p(0, 1, 0, 1, 8, 8);
  p.point(2.0, 0.5);
  p.point(-1.0, 0.5);
  p.point(0.5, 5.0);
  const std::string out = p.render();
  EXPECT_EQ(out.find('.'), std::string::npos);
}

TEST(AsciiPlot, MarkerOverridesDensity) {
  AsciiPlot p(0, 1, 0, 1, 4, 4);
  for (int i = 0; i < 100; ++i) p.point(0.5, 0.5);
  p.marker(0.5, 0.5, 'X');
  const std::string out = p.render();
  EXPECT_NE(out.find('X'), std::string::npos);
}

TEST(AsciiPlot, DenseCellsUseDarkerGlyphs) {
  AsciiPlot p(0, 1, 0, 1, 2, 1);
  p.point(0.25, 0.5);  // single point left cell
  for (int i = 0; i < 500; ++i) p.point(0.75, 0.5);
  const std::string out = p.render();
  EXPECT_NE(out.find('@'), std::string::npos);  // dense cell
  EXPECT_NE(out.find('.'), std::string::npos);  // sparse cell
}

TEST(AsciiPlot, InvalidRangeThrows) {
  EXPECT_THROW(AsciiPlot(1, 1, 0, 1), g6::util::Error);
  EXPECT_THROW(AsciiPlot(0, 1, 2, 1), g6::util::Error);
}

TEST(AsciiPlot, TopRowIsLargeY) {
  AsciiPlot p(0, 1, 0, 1, 3, 3);
  p.marker(0.5, 0.99, 'T');
  p.marker(0.5, 0.01, 'B');
  const std::string out = p.render();
  EXPECT_LT(out.find('T'), out.find('B'));
}

}  // namespace
