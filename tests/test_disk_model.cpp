// Tests for the planetesimal ring generator (the paper's initial conditions).
#include "disk/disk_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "disk/hill.hpp"
#include "disk/kepler.hpp"
#include "util/check.hpp"

namespace {

using g6::disk::DiskConfig;
using g6::disk::DiskRealization;
using g6::disk::make_disk;
using g6::disk::uranus_neptune_config;

DiskConfig small_config(std::size_t n = 2000) {
  DiskConfig cfg = uranus_neptune_config(n);
  return cfg;
}

TEST(DiskModel, ParticleCounts) {
  const DiskRealization d = make_disk(small_config(1000));
  EXPECT_EQ(d.system.size(), 1002u);  // planetesimals + 2 protoplanets
  EXPECT_EQ(d.protoplanet_indices.size(), 2u);
  EXPECT_EQ(d.protoplanet_indices[0], 1000u);
  EXPECT_EQ(d.protoplanet_indices[1], 1001u);
}

TEST(DiskModel, RadiiInsideRing) {
  const DiskRealization d = make_disk(small_config());
  for (std::size_t i = 0; i < 2000; ++i) {
    const double r = norm(d.system.pos(i));
    // e and i are small, so instantaneous radius stays near [15, 35].
    EXPECT_GT(r, 14.0) << i;
    EXPECT_LT(r, 36.5) << i;
  }
}

TEST(DiskModel, ProtoplanetsOnPaperOrbits) {
  const DiskRealization d = make_disk(small_config());
  const auto& ps = d.system;
  const std::size_t p0 = d.protoplanet_indices[0];
  const std::size_t p1 = d.protoplanet_indices[1];
  EXPECT_DOUBLE_EQ(ps.mass(p0), 1.0e-5);
  EXPECT_DOUBLE_EQ(ps.mass(p1), 1.0e-5);
  EXPECT_NEAR(norm(ps.pos(p0)), 20.0, 1e-9);
  EXPECT_NEAR(norm(ps.pos(p1)), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(ps.pos(p0).z, 0.0);  // non-inclined circular orbits
  EXPECT_NEAR(norm(ps.vel(p0)), std::sqrt(1.0 / 20.0), 1e-9);
}

TEST(DiskModel, TotalRingMassNormalised) {
  DiskConfig cfg = small_config();
  cfg.total_ring_mass = 8.7e-5;
  const DiskRealization d = make_disk(cfg);
  double ring = 0.0;
  for (std::size_t i = 0; i < cfg.n_planetesimals; ++i) ring += d.system.mass(i);
  EXPECT_NEAR(ring, 8.7e-5, 1e-12);
  EXPECT_NEAR(d.ring_mass, 8.7e-5, 1e-12);
}

TEST(DiskModel, UnnormalisedMassFollowsMassFunction) {
  DiskConfig cfg = small_config(5000);
  cfg.total_ring_mass = 0.0;  // keep raw samples
  const DiskRealization d = make_disk(cfg);
  g6::disk::MassFunction mf(cfg.mass_exponent, cfg.m_lower, cfg.m_upper);
  EXPECT_NEAR(d.ring_mass / (5000.0 * mf.mean()), 1.0, 0.15);
}

TEST(DiskModel, DeterministicForSeed) {
  const DiskRealization a = make_disk(small_config());
  const DiskRealization b = make_disk(small_config());
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.pos(i), b.system.pos(i));
    EXPECT_EQ(a.system.vel(i), b.system.vel(i));
    EXPECT_EQ(a.system.mass(i), b.system.mass(i));
  }
}

TEST(DiskModel, DifferentSeedsDiffer) {
  DiskConfig cfg1 = small_config();
  DiskConfig cfg2 = small_config();
  cfg2.seed = cfg1.seed + 1;
  const DiskRealization a = make_disk(cfg1);
  const DiskRealization b = make_disk(cfg2);
  EXPECT_NE(a.system.pos(0), b.system.pos(0));
}

TEST(DiskModel, SurfaceDensitySlope) {
  // Sigma ∝ r^-1.5: the cumulative number inside r grows like r^0.5.
  DiskConfig cfg = small_config(40000);
  const DiskRealization d = make_disk(cfg);
  double inner = 0, mid = 0;
  for (std::size_t i = 0; i < cfg.n_planetesimals; ++i) {
    const g6::disk::StateVector sv{d.system.pos(i), d.system.vel(i)};
    const double a = g6::disk::state_to_elements(sv, 1.0).a;
    if (a < 23.0) ++inner;
    if (a < 29.0) ++mid;
  }
  auto cdf = [&](double r) {
    return (std::sqrt(r) - std::sqrt(15.0)) / (std::sqrt(35.0) - std::sqrt(15.0));
  };
  EXPECT_NEAR(inner / 40000.0, cdf(23.0), 0.01);
  EXPECT_NEAR(mid / 40000.0, cdf(29.0), 0.01);
}

TEST(DiskModel, EccentricityDispersionMatchesRayleigh) {
  DiskConfig cfg = small_config(20000);
  cfg.e_sigma = 0.002;
  cfg.i_sigma = 0.001;
  const DiskRealization d = make_disk(cfg);
  double se2 = 0.0, si2 = 0.0;
  for (std::size_t i = 0; i < cfg.n_planetesimals; ++i) {
    const g6::disk::StateVector sv{d.system.pos(i), d.system.vel(i)};
    const auto el = g6::disk::state_to_elements(sv, 1.0);
    se2 += el.e * el.e;
    si2 += el.inc * el.inc;
  }
  // Rayleigh: E[x^2] = 2 sigma^2.
  EXPECT_NEAR(std::sqrt(se2 / 20000.0), 0.002 * std::sqrt(2.0), 2e-4);
  EXPECT_NEAR(std::sqrt(si2 / 20000.0), 0.001 * std::sqrt(2.0), 1e-4);
}

TEST(DiskModel, SofteningWellBelowHillRadius) {
  // Paper: softening (0.008 AU) is two orders of magnitude below the
  // protoplanet Hill radius.
  const double rh = g6::disk::hill_radius(20.0, 1.0e-5, 1.0);
  EXPECT_NEAR(rh, 0.2986, 1e-3);
  EXPECT_LT(0.008, rh / 30.0);
}

TEST(DiskModel, InvalidConfigsThrow) {
  DiskConfig cfg = small_config();
  cfg.n_planetesimals = 0;
  EXPECT_THROW(make_disk(cfg), g6::util::Error);
  cfg = small_config();
  cfg.r_inner = 40.0;  // > r_outer
  EXPECT_THROW(make_disk(cfg), g6::util::Error);
  cfg = small_config();
  cfg.protoplanets[0].mass = -1.0;
  EXPECT_THROW(make_disk(cfg), g6::util::Error);
}

TEST(DiskModel, SampleRadiusWithinBounds) {
  DiskConfig cfg = small_config();
  g6::util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double r = g6::disk::sample_radius(cfg, rng);
    EXPECT_GE(r, cfg.r_inner);
    EXPECT_LE(r, cfg.r_outer);
  }
}

TEST(Hill, Helpers) {
  EXPECT_NEAR(g6::disk::reduced_hill(3.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(g6::disk::hill_radius(10.0, 3.0e-6, 1.0), 0.1, 1e-9);
  EXPECT_NEAR(g6::disk::keplerian_speed(4.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(g6::disk::escape_speed(2.0, 1.0), 2.0, 1e-12);
}

}  // namespace
