// Tests for the routed cluster fabric (hosts + network boards + processor
// boards with explicit per-link accounting).
#include "grape6/fabric.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using g6::hw::ClusterFabric;
using g6::hw::FabricTraffic;
using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;
using g6::hw::Grape6Machine;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::MachineConfig;
using g6::util::FixedVec3;

std::vector<JParticle> cloud(int n, const FormatSpec& fmt, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  std::vector<JParticle> js(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& p = js[static_cast<std::size_t>(j)];
    p.id = static_cast<std::uint32_t>(j);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = FixedVec3::quantize(
        {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-0.5, 0.5)},
        fmt.pos_lsb);
    p.v0 = {rng.uniform(-0.1, 0.1), 0, 0};
  }
  return js;
}

std::vector<IParticle> batch_from(const std::vector<JParticle>& js,
                                  const FormatSpec& fmt, int stride) {
  std::vector<IParticle> batch;
  for (std::size_t j = 0; j < js.size(); j += static_cast<std::size_t>(stride))
    batch.push_back(g6::hw::make_i_particle(js[j].id, js[j].x0.to_vec3(),
                                            js[j].v0, fmt));
  return batch;
}

TEST(Fabric, TopologyAndCapacity) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 4, 4, 2, 32);
  EXPECT_EQ(fabric.hosts(), 4);
  EXPECT_EQ(fabric.board_count(), 16u);
  EXPECT_EQ(fabric.capacity(), 16u * 2u * 32u);
}

TEST(Fabric, MatchesMonolithicMachineBitwise) {
  // Same chips, same j-order, same reduction algebra: the routed cluster and
  // the functional machine produce identical bits.
  const FormatSpec fmt;
  const auto js = cloud(96, fmt, 31);
  const auto batch = batch_from(js, fmt, 7);
  const double eps2 = 1e-4;

  ClusterFabric fabric(fmt, 4, 2, 4, 64);  // 8 boards of 4 chips
  fabric.load(js);
  fabric.predict_all(0.0);
  std::vector<ForceAccumulator> a;
  fabric.compute(0, batch, eps2, a);

  MachineConfig cfg = MachineConfig::mini(8, 4, 64);
  cfg.fmt = fmt;
  Grape6Machine machine(cfg);
  machine.load(js);
  machine.predict_all(0.0);
  std::vector<ForceAccumulator> b;
  machine.compute(batch, eps2, b);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]) << k;
}

TEST(Fabric, SameResultFromAnyRequestingHost) {
  const FormatSpec fmt;
  const auto js = cloud(64, fmt, 32);
  const auto batch = batch_from(js, fmt, 5);
  ClusterFabric fabric(fmt, 4, 2, 2, 64);
  fabric.load(js);
  fabric.predict_all(0.0);
  std::vector<ForceAccumulator> ref;
  fabric.compute(0, batch, 1e-4, ref);
  for (int h = 1; h < 4; ++h) {
    std::vector<ForceAccumulator> out;
    fabric.compute(h, batch, 1e-4, out);
    for (std::size_t k = 0; k < out.size(); ++k) EXPECT_EQ(out[k], ref[k]) << h;
  }
}

TEST(Fabric, TrafficLedger) {
  const FormatSpec fmt;
  const auto js = cloud(32, fmt, 33);
  ClusterFabric fabric(fmt, 4, 2, 2, 64);
  fabric.load(js);
  fabric.predict_all(0.0);
  const auto batch = batch_from(js, fmt, 4);  // 8 i-particles

  std::vector<ForceAccumulator> out;
  const FabricTraffic t = fabric.compute(1, batch, 1e-4, out);

  const std::size_t ib = batch.size() * g6::hw::kIParticleBytes;
  const std::size_t rb = batch.size() * g6::hw::kResultBytes;
  // PCI: batch down + results up.
  EXPECT_EQ(t.pci_bytes, ib + rb);
  // Cascade: batch to 3 peer NBs, 3 partial returns.
  EXPECT_EQ(t.cascade_bytes, 3u * ib + 3u * rb);
  // Board links: batch into each of 8 boards, results out of each.
  EXPECT_EQ(t.board_bytes, 8u * ib + 8u * rb);
  EXPECT_GT(t.modeled_seconds, 0.0);
  // Lifetime ledger includes the loads plus this compute.
  EXPECT_GE(fabric.traffic().pci_bytes, t.pci_bytes);
}

TEST(Fabric, WriteRoutingChargesCascadeOnlyForRemoteBoards) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 4, 1, 2, 64);  // 4 boards, 1 per host
  const auto js = cloud(8, fmt, 34);
  fabric.load(js);
  const auto before = fabric.traffic();

  // Particle 0: owner host 0, board 0 (host 0): no cascade hop.
  fabric.write_j(0, js[0]);
  const auto mid = fabric.traffic();
  EXPECT_EQ(mid.cascade_bytes, before.cascade_bytes);

  // Particle 1: owner host 1, board 1 (host 1): also local. Particle 2:
  // owner host 2, board 2: local too (round-robin aligns). Use particle 4:
  // owner host 0, board 0 -> local again. Misalign: particle 5 owner host 1,
  // board 1 -> local. With 1 board/host the round-robin aligns perfectly, so
  // force a remote write: particle 6's image is board 2 (host 2) but owned
  // by host 2 as well. Instead check a 2-host fabric with 3 boards/host.
  ClusterFabric fabric2(fmt, 2, 3, 2, 64);  // boards 0-2 host 0, 3-5 host 1
  const auto js2 = cloud(8, fmt, 35);
  fabric2.load(js2);
  const auto t0 = fabric2.traffic();
  // Particle 3: owner host 1 (3 % 2), image board 3 (3 % 6) -> host 1: local.
  fabric2.write_j(3, js2[3]);
  EXPECT_EQ(fabric2.traffic().cascade_bytes, t0.cascade_bytes);
  // Particle 4: owner host 0, image board 4 -> host 1: one cascade hop.
  fabric2.write_j(4, js2[4]);
  EXPECT_EQ(fabric2.traffic().cascade_bytes,
            t0.cascade_bytes + g6::hw::kJParticleBytes);
}

TEST(Fabric, Validation) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 2, 1, 1, 4);
  EXPECT_THROW(ClusterFabric(fmt, 0, 1), g6::util::Error);
  const auto js = cloud(16, fmt, 36);
  EXPECT_THROW(fabric.load(js), g6::util::Error);  // capacity 8 < 16
  std::vector<ForceAccumulator> out;
  const auto batch = batch_from(cloud(4, fmt, 37), fmt, 1);
  EXPECT_THROW(fabric.compute(5, batch, 0.0, out), g6::util::Error);
  EXPECT_THROW(fabric.read_j(99), g6::util::Error);
}

}  // namespace

namespace {

TEST(FabricPartition, TwoIndependentUnits) {
  // Paper §4.3: the cluster can run "as two units" — each half an
  // independent machine with its own j-space.
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 4, 2, 2, 64);
  fabric.set_partition(2);
  EXPECT_EQ(fabric.group_count(), 2);
  EXPECT_EQ(fabric.group_of_host(0), 0);
  EXPECT_EQ(fabric.group_of_host(1), 0);
  EXPECT_EQ(fabric.group_of_host(2), 1);
  EXPECT_EQ(fabric.group_of_host(3), 1);

  const auto js_a = cloud(24, fmt, 41);
  auto js_b = cloud(24, fmt, 42);
  for (auto& p : js_b) p.mass *= 100.0;  // very different masses
  fabric.load_group(0, js_a);
  fabric.load_group(1, js_b);
  fabric.predict_all(0.0);

  const auto batch = batch_from(js_a, fmt, 5);
  std::vector<ForceAccumulator> from_a, from_b;
  fabric.compute(0, batch, 1e-4, from_a);  // host 0: group 0 -> sees js_a
  fabric.compute(2, batch, 1e-4, from_b);  // host 2: group 1 -> sees js_b

  // Same i-batch, different j-spaces: results must differ (isolation), and
  // group 0's result must match a dedicated half-size fabric.
  bool different = false;
  for (std::size_t k = 0; k < from_a.size(); ++k)
    if (!(from_a[k] == from_b[k])) different = true;
  EXPECT_TRUE(different);

  ClusterFabric half(fmt, 2, 2, 2, 64);
  half.load(js_a);
  half.predict_all(0.0);
  std::vector<ForceAccumulator> ref;
  half.compute(0, batch, 1e-4, ref);
  for (std::size_t k = 0; k < ref.size(); ++k) EXPECT_EQ(from_a[k], ref[k]) << k;
}

TEST(FabricPartition, FourSeparateUnits) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 4, 1, 2, 64);
  fabric.set_partition(4);
  const auto js = cloud(8, fmt, 43);
  fabric.load_group(3, js);
  fabric.predict_all(0.0);
  const auto batch = batch_from(js, fmt, 3);
  std::vector<ForceAccumulator> out;
  const auto before = fabric.traffic().cascade_bytes;
  fabric.compute(3, batch, 1e-4, out);
  // A single-host group has no cascade traffic at all.
  EXPECT_EQ(fabric.traffic().cascade_bytes, before);
  // And a host from another (empty) group sees zero force.
  std::vector<ForceAccumulator> empty_out;
  fabric.compute(0, batch, 1e-4, empty_out);
  for (const auto& f : empty_out)
    EXPECT_EQ(f.acc.to_vec3(), g6::util::Vec3(0, 0, 0));
}

TEST(FabricPartition, Validation) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 4, 1, 1, 16);
  EXPECT_THROW(fabric.set_partition(3), g6::util::Error);  // 3 does not divide 4
  EXPECT_THROW(fabric.set_partition(0), g6::util::Error);
  fabric.set_partition(2);
  const auto js = cloud(4, fmt, 44);
  EXPECT_THROW(fabric.load_group(5, js), g6::util::Error);
}

TEST(FabricPartition, RepartitionClearsJSpace) {
  const FormatSpec fmt;
  ClusterFabric fabric(fmt, 2, 1, 1, 16);
  fabric.load(cloud(6, fmt, 45));
  EXPECT_EQ(fabric.j_count(), 6u);
  fabric.set_partition(2);
  EXPECT_EQ(fabric.j_count(), 0u);
}

}  // namespace
