// Tests for the leveled logger: line format, level filtering, stream
// redirection, and the regression check that concurrent loggers never
// interleave mid-line.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

using g6::util::LogLevel;

namespace {

// Capture everything logged by \p body into a string via a tmpfile.
std::string capture_log(const std::function<void()>& body) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  g6::util::set_log_stream(f);
  body();
  g6::util::set_log_stream(nullptr);
  std::fseek(f, 0, SEEK_SET);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return text;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(Log, LineFormat) {
  const std::string text = capture_log([] {
    g6::util::log_emit(LogLevel::kWarn, "hello world");
  });
  // [g6 +<seconds>s WARN] hello world
  const std::regex re(R"(^\[g6 \+\d+\.\d{6}s WARN\] hello world$)");
  const auto lines = split_lines(text);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(std::regex_match(lines[0], re)) << lines[0];
}

TEST(Log, TimestampsAreMonotonic) {
  const std::string text = capture_log([] {
    for (int i = 0; i < 5; ++i) g6::util::log_emit(LogLevel::kError, "tick");
  });
  const std::regex re(R"(^\[g6 \+(\d+\.\d{6})s ERROR\] tick$)");
  double prev = -1.0;
  for (const auto& line : split_lines(text)) {
    std::smatch m;
    ASSERT_TRUE(std::regex_match(line, m, re)) << line;
    const double t = std::stod(m[1].str());
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = g6::util::log_level();
  const std::string text = capture_log([] {
    g6::util::set_log_level(LogLevel::kWarn);
    G6_LOG_DEBUG("dropped debug");
    G6_LOG_INFO("dropped info");
    G6_LOG_WARN("kept warn");
    G6_LOG_ERROR("kept error");
  });
  g6::util::set_log_level(saved);
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("kept warn"), std::string::npos);
  EXPECT_NE(text.find("kept error"), std::string::npos);
}

// The satellite regression test: many threads logging concurrently must
// produce only complete, well-formed lines — no mid-line interleaving.
TEST(Log, ConcurrentLoggingNeverInterleavesMidLine) {
  constexpr int kThreads = 8;
  constexpr int kLines = 400;
  // A long payload makes torn writes overwhelmingly likely if emission were
  // not atomic per line.
  const std::string filler(120, 'x');

  const std::string text = capture_log([&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &filler] {
        for (int i = 0; i < kLines; ++i) {
          g6::util::log_emit(LogLevel::kWarn,
                             "T" + std::to_string(t) + " L" + std::to_string(i) +
                                 " " + filler + " end");
        }
      });
    }
    for (auto& th : threads) th.join();
  });

  const std::regex re(
      R"(^\[g6 \+\d+\.\d{6}s WARN\] T(\d+) L(\d+) x{120} end$)");
  const auto lines = split_lines(text);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kLines);
  std::map<int, int> per_thread;
  for (const auto& line : lines) {
    std::smatch m;
    ASSERT_TRUE(std::regex_match(line, m, re)) << "torn line: " << line;
    ++per_thread[std::stoi(m[1].str())];
  }
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, n] : per_thread) EXPECT_EQ(n, kLines) << "thread " << tid;
}
