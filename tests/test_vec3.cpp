// Unit tests for the Vec3 primitive.
#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using g6::util::Vec3;

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, ComponentIndexing) {
  Vec3 v{1.0, 2.0, 3.0};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 7.0;
  EXPECT_EQ(v.y, 7.0);
}

TEST(Vec3, AdditionSubtraction) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 2.0};
  EXPECT_EQ(a + b, Vec3(-3.0, 2.5, 5.0));
  EXPECT_EQ(a - b, Vec3(5.0, 1.5, 1.0));
  EXPECT_EQ(-(a - a), Vec3(0.0, 0.0, 0.0));
}

TEST(Vec3, ScalarOps) {
  const Vec3 a{1.0, -2.0, 4.0};
  EXPECT_EQ(2.0 * a, Vec3(2.0, -4.0, 8.0));
  EXPECT_EQ(a * 2.0, Vec3(2.0, -4.0, 8.0));
  EXPECT_EQ(a / 2.0, Vec3(0.5, -1.0, 2.0));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 a{1.0, 1.0, 1.0};
  a += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(a, Vec3(2.0, 3.0, 4.0));
  a -= Vec3{2.0, 3.0, 4.0};
  EXPECT_EQ(a, Vec3(0.0, 0.0, 0.0));
  a = {1.0, 2.0, 3.0};
  a *= 3.0;
  EXPECT_EQ(a, Vec3(3.0, 6.0, 9.0));
  a /= 3.0;
  EXPECT_EQ(a, Vec3(1.0, 2.0, 3.0));
}

TEST(Vec3, DotProduct) {
  EXPECT_EQ(dot(Vec3(1, 2, 3), Vec3(4, -5, 6)), 4.0 - 10.0 + 18.0);
  EXPECT_EQ(dot(Vec3(1, 0, 0), Vec3(0, 1, 0)), 0.0);
}

TEST(Vec3, CrossProduct) {
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_EQ(cross(Vec3(0, 1, 0), Vec3(0, 0, 1)), Vec3(1, 0, 0));
  // a x a = 0
  const Vec3 a{2.0, -3.0, 5.0};
  EXPECT_EQ(cross(a, a), Vec3(0, 0, 0));
  // Anti-commutativity.
  const Vec3 b{1.0, 4.0, -2.0};
  EXPECT_EQ(cross(a, b), -cross(b, a));
}

TEST(Vec3, Norms) {
  const Vec3 v{3.0, 4.0, 12.0};
  EXPECT_EQ(norm2(v), 169.0);
  EXPECT_DOUBLE_EQ(norm(v), 13.0);
}

TEST(Vec3, Normalized) {
  const Vec3 v{0.0, 3.0, 4.0};
  const Vec3 u = normalized(v);
  EXPECT_DOUBLE_EQ(norm(u), 1.0);
  EXPECT_DOUBLE_EQ(u.y, 0.6);
  EXPECT_DOUBLE_EQ(u.z, 0.8);
}

TEST(Vec3, MinMax) {
  const Vec3 a{1.0, 5.0, -2.0};
  const Vec3 b{3.0, 2.0, -7.0};
  EXPECT_EQ(g6::util::min(a, b), Vec3(1.0, 2.0, -7.0));
  EXPECT_EQ(g6::util::max(a, b), Vec3(3.0, 5.0, -2.0));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.0, 2.5, -3.0};
  EXPECT_EQ(os.str(), "(1, 2.5, -3)");
}

TEST(Vec3, Triple_ProductIdentity) {
  // a . (b x c) is invariant under cyclic permutation.
  const Vec3 a{1.2, -0.7, 2.2};
  const Vec3 b{0.3, 1.9, -1.1};
  const Vec3 c{-2.0, 0.4, 0.9};
  EXPECT_NEAR(dot(a, cross(b, c)), dot(b, cross(c, a)), 1e-12);
  EXPECT_NEAR(dot(a, cross(b, c)), dot(c, cross(a, b)), 1e-12);
}

}  // namespace
