// Tests for the disk-analysis module.
#include "analysis/disk_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "disk/disk_model.hpp"

namespace {

using g6::analysis::dispersions;
using g6::analysis::gap_contrast;
using g6::analysis::surface_density;
using g6::nbody::ParticleSystem;

g6::disk::DiskRealization test_disk(std::size_t n = 5000) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  cfg.seed = 777;
  return g6::disk::make_disk(cfg);
}

TEST(SurfaceDensity, FollowsPowerLaw) {
  const auto d = test_disk(40000);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  const auto sigma = surface_density(d.system, 16.0, 34.0, 9, exclude);
  // Sigma(r) ∝ r^-1.5: compare widely separated bins.
  const double r1 = sigma.center(1), r2 = sigma.center(7);
  const double expect = std::pow(r2 / r1, -1.5);
  EXPECT_NEAR(sigma.count(7) / sigma.count(1), expect, 0.25 * expect);
}

TEST(SurfaceDensity, ExcludesListedParticles) {
  ParticleSystem ps;
  ps.add(1.0, {20, 0, 0}, {});
  ps.add(5.0, {20, 0, 0}, {});
  const auto all = surface_density(ps, 15, 25, 2);
  const auto some = surface_density(ps, 15, 25, 2, {1});
  EXPECT_NEAR(all.count(1) / some.count(1), 6.0, 1e-9);
}

TEST(Elements, BoundFlagAndValues) {
  ParticleSystem ps;
  ps.add(1e-10, {20, 0, 0}, {0, std::sqrt(1.0 / 20.0), 0});  // circular
  ps.add(1e-10, {20, 0, 0}, {0, 1.0, 0});                    // unbound
  const auto elems = g6::analysis::all_elements(ps, 1.0);
  ASSERT_TRUE(elems[0].bound);
  EXPECT_NEAR(elems[0].el.a, 20.0, 1e-9);
  EXPECT_NEAR(elems[0].el.e, 0.0, 1e-9);
  EXPECT_FALSE(elems[1].bound);
}

TEST(Dispersions, RecoverInputRayleighSigma) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(20000);
  cfg.e_sigma = 0.004;
  cfg.i_sigma = 0.002;
  cfg.seed = 11;
  const auto d = g6::disk::make_disk(cfg);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  const auto rep = dispersions(d.system, 1.0, exclude);
  EXPECT_EQ(rep.n_unbound, 0u);
  EXPECT_EQ(rep.n_bound, 20000u);
  // Rayleigh: rms = sigma * sqrt(2).
  EXPECT_NEAR(rep.rms_e, 0.004 * std::sqrt(2.0), 4e-4);
  EXPECT_NEAR(rep.rms_i, 0.002 * std::sqrt(2.0), 2e-4);
}

TEST(RmsProfile, FlatForUniformDispersion) {
  const auto d = test_disk(20000);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  const auto prof =
      g6::analysis::rms_e_profile(d.system, 1.0, 16.0, 34.0, 6, exclude);
  for (double v : prof) EXPECT_NEAR(v, 0.002 * std::sqrt(2.0), 6e-4);
}

TEST(GapContrast, UnityForSmoothDisk) {
  const auto d = test_disk(30000);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  const double c = gap_contrast(d.system, 1.0, 25.0, 1.0, exclude);
  EXPECT_NEAR(c, 1.0, 0.1);
}

TEST(GapContrast, DetectsCarvedGap) {
  // Build a disk, then remove everything within 1 AU of a = 25.
  auto d = test_disk(20000);
  const auto elems = g6::analysis::all_elements(d.system, 1.0);
  ParticleSystem carved;
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    if (elems[i].bound && std::abs(elems[i].el.a - 25.0) < 1.0) continue;
    carved.add(d.system.mass(i), d.system.pos(i), d.system.vel(i));
  }
  const double c = gap_contrast(carved, 1.0, 25.0, 1.0);
  EXPECT_LT(c, 0.1);
}

TEST(GapContrast, ValidatesWidth) {
  const auto d = test_disk(100);
  EXPECT_THROW(gap_contrast(d.system, 1.0, 25.0, 0.0), g6::util::Error);
}

TEST(Analysis, ExclusionIndexOutOfRangeThrows) {
  ParticleSystem ps;
  ps.add(1.0, {20, 0, 0}, {});
  EXPECT_THROW(surface_density(ps, 15, 25, 2, {5}), g6::util::Error);
}

}  // namespace

namespace {

TEST(PopulationCensus, ClassifiesConstructedOrbits) {
  g6::nbody::ParticleSystem ps;
  auto add_orbit = [&](double a, double e) {
    g6::disk::OrbitalElements el;
    el.a = a;
    el.e = e;
    const auto sv = g6::disk::elements_to_state(el, 1.0);
    ps.add(1e-10, sv.pos, sv.vel);
  };
  add_orbit(25.0, 0.01);   // cold: [24.75, 25.25] crosses nothing
  add_orbit(21.0, 0.10);   // crossing: q = 18.9 < 20 < Q = 23.1
  add_orbit(25.0, 0.50);   // scattered: e > 0.3
  ps.add(1e-10, {10, 0, 0}, {0, 1.0, 0});  // unbound (v > v_esc at r=10)

  const auto census = g6::analysis::population_census(ps, 1.0, {20.0, 30.0});
  EXPECT_EQ(census.n_cold, 1u);
  EXPECT_EQ(census.n_crossing, 1u);
  EXPECT_EQ(census.n_scattered, 1u);
  EXPECT_EQ(census.n_unbound, 1u);
  EXPECT_EQ(census.total(), 4u);
}

TEST(PopulationCensus, ColdDiskStartsMostlyCold) {
  const auto d = test_disk(5000);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  const auto census =
      g6::analysis::population_census(d.system, 1.0, {20.0, 30.0}, exclude);
  EXPECT_EQ(census.total(), 5000u);
  EXPECT_EQ(census.n_unbound, 0u);
  EXPECT_EQ(census.n_scattered, 0u);  // e_sigma = 0.002 << 0.3
  // With e ~ 0.002 only a thin band around each protoplanet crosses it.
  EXPECT_LT(census.n_crossing, 500u);
  EXPECT_GT(census.n_cold, 4500u);
}

TEST(PopulationCensus, ExclusionRespected) {
  g6::nbody::ParticleSystem ps;
  ps.add(1e-10, {25, 0, 0}, {0, 0.2, 0});
  ps.add(1e-5, {20, 0, 0}, {0, std::sqrt(1.0 / 20.0), 0});  // the protoplanet
  const auto census = g6::analysis::population_census(ps, 1.0, {20.0}, {1});
  EXPECT_EQ(census.total(), 1u);
}

}  // namespace
