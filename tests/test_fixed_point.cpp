// Tests for the GRAPE fixed-point formats: quantisation, exactness of
// accumulation, order independence, saturation and mantissa rounding.
#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace {

using g6::util::Fixed64;
using g6::util::FixedVec3;
using g6::util::round_to_mantissa;
using g6::util::Vec3;

TEST(Fixed64, QuantizeRoundTrip) {
  const double lsb = 0x1p-30;
  for (double v : {0.0, 1.0, -1.0, 0.3333333, -2.718281828, 123456.789}) {
    const Fixed64 f = Fixed64::quantize(v, lsb);
    EXPECT_NEAR(f.to_double(), v, lsb / 2.0 + 1e-18);
  }
}

TEST(Fixed64, QuantizeRoundsToNearest) {
  const double lsb = 1.0;
  EXPECT_EQ(Fixed64::quantize(0.4, lsb).raw(), 0);
  EXPECT_EQ(Fixed64::quantize(0.6, lsb).raw(), 1);
  EXPECT_EQ(Fixed64::quantize(-0.6, lsb).raw(), -1);
}

TEST(Fixed64, AdditionIsExact) {
  const double lsb = 0x1p-20;
  Fixed64 a = Fixed64::quantize(1.25, lsb);
  const Fixed64 b = Fixed64::quantize(2.5, lsb);
  a += b;
  EXPECT_DOUBLE_EQ(a.to_double(), 3.75);
}

TEST(Fixed64, SubtractionIsExact) {
  const double lsb = 0x1p-20;
  Fixed64 a = Fixed64::quantize(1.0, lsb);
  a -= Fixed64::quantize(0.25, lsb);
  EXPECT_DOUBLE_EQ(a.to_double(), 0.75);
}

TEST(Fixed64, MixedScalesRejected) {
  Fixed64 a = Fixed64::quantize(1.0, 0x1p-10);
  const Fixed64 b = Fixed64::quantize(1.0, 0x1p-20);
  EXPECT_THROW(a += b, g6::util::Error);
}

TEST(Fixed64, SaturatesAtRangeEnds) {
  const double lsb = 1.0;
  EXPECT_EQ(Fixed64::quantize(1e30, lsb).raw(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Fixed64::quantize(-1e30, lsb).raw(), std::numeric_limits<std::int64_t>::min());
}

TEST(Fixed64, NonPositiveLsbRejected) {
  EXPECT_THROW(Fixed64::quantize(1.0, 0.0), g6::util::Error);
  EXPECT_THROW(Fixed64::quantize(1.0, -1.0), g6::util::Error);
}

TEST(FixedVec3, QuantizeAndBack) {
  const Vec3 v{1.5, -2.25, 0.125};
  const FixedVec3 f = FixedVec3::quantize(v, 0x1p-20);
  EXPECT_EQ(f.to_vec3(), v);  // dyadic values are exact
}

TEST(FixedVec3, AccumulateQuantizesEachContribution) {
  FixedVec3 f(1.0);  // coarse grid: lsb = 1
  f.accumulate({0.4, 0.6, 1.5});
  EXPECT_EQ(f.to_vec3(), Vec3(0.0, 1.0, 2.0));
}

TEST(FixedVec3, FromRawRoundTrip) {
  const FixedVec3 f = FixedVec3::quantize({1.0, 2.0, 3.0}, 0x1p-16);
  const FixedVec3 g = FixedVec3::from_raw(f.x().raw(), f.y().raw(), f.z().raw(),
                                          f.lsb());
  EXPECT_EQ(f, g);
}

// The property the hardware reduction tree relies on: summation order does
// not change the result, bit for bit.
class FixedOrderIndependence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedOrderIndependence, AnyOrderSameBits) {
  g6::util::Rng rng(GetParam());
  const double lsb = 0x1p-40;
  std::vector<Vec3> contributions(200);
  for (auto& c : contributions)
    c = {rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3)};

  FixedVec3 forward(lsb);
  for (const auto& c : contributions) forward.accumulate(c);

  // Shuffle and re-sum several times.
  std::vector<std::size_t> idx(contributions.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = idx.size(); i > 1; --i)
      std::swap(idx[i - 1], idx[rng.below(i)]);
    FixedVec3 shuffled(lsb);
    for (std::size_t i : idx) shuffled.accumulate(contributions[i]);
    EXPECT_EQ(forward, shuffled);
  }

  // Tree-shaped partial merging also matches.
  FixedVec3 left(lsb), right(lsb);
  for (std::size_t i = 0; i < contributions.size() / 2; ++i)
    left.accumulate(contributions[i]);
  for (std::size_t i = contributions.size() / 2; i < contributions.size(); ++i)
    right.accumulate(contributions[i]);
  left += right;
  EXPECT_EQ(forward, left);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedOrderIndependence,
                         ::testing::Values(2u, 71u, 4242u));

TEST(RoundToMantissa, IdentityForFullWidth) {
  EXPECT_EQ(round_to_mantissa(0.1, 52), 0.1);
  EXPECT_EQ(round_to_mantissa(0.1, 60), 0.1);
}

TEST(RoundToMantissa, ZeroAndNonFinite) {
  EXPECT_EQ(round_to_mantissa(0.0, 24), 0.0);
  EXPECT_TRUE(std::isinf(round_to_mantissa(INFINITY, 24)));
  EXPECT_TRUE(std::isnan(round_to_mantissa(NAN, 24)));
}

TEST(RoundToMantissa, RelativeErrorBounded) {
  g6::util::Rng rng(77);
  for (int mb : {10, 16, 24, 32}) {
    const double tol = std::ldexp(1.0, -mb);  // half-ulp would be 2^-(mb+1)
    for (int i = 0; i < 1000; ++i) {
      const double v = rng.uniform(-1e10, 1e10);
      const double r = round_to_mantissa(v, mb);
      if (v != 0.0) {
        EXPECT_LE(std::abs(r - v) / std::abs(v), tol);
      }
    }
  }
}

TEST(RoundToMantissa, ExactlyRepresentableUnchanged) {
  // 1.5 has a 1-bit mantissa fraction; survives any width >= 1.
  EXPECT_EQ(round_to_mantissa(1.5, 8), 1.5);
  EXPECT_EQ(round_to_mantissa(-3.0, 4), -3.0);
  EXPECT_EQ(round_to_mantissa(0.375, 8), 0.375);
}

TEST(RoundToMantissa, CoarseRoundingQuantizes) {
  // With 2 mantissa bits, 1.3 rounds to a multiple of 0.125 near 1.3...
  const double r = round_to_mantissa(1.3, 2);
  EXPECT_NE(r, 1.3);
  EXPECT_NEAR(r, 1.3, 0.13);
}

}  // namespace
