// Tests for the GRAPE fixed-point formats: quantisation, exactness of
// accumulation, order independence, saturation and mantissa rounding.
#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace {

using g6::util::Fixed64;
using g6::util::FixedVec3;
using g6::util::round_to_mantissa;
using g6::util::Vec3;

TEST(Fixed64, QuantizeRoundTrip) {
  const double lsb = 0x1p-30;
  for (double v : {0.0, 1.0, -1.0, 0.3333333, -2.718281828, 123456.789}) {
    const Fixed64 f = Fixed64::quantize(v, lsb);
    EXPECT_NEAR(f.to_double(), v, lsb / 2.0 + 1e-18);
  }
}

TEST(Fixed64, QuantizeRoundsToNearest) {
  const double lsb = 1.0;
  EXPECT_EQ(Fixed64::quantize(0.4, lsb).raw(), 0);
  EXPECT_EQ(Fixed64::quantize(0.6, lsb).raw(), 1);
  EXPECT_EQ(Fixed64::quantize(-0.6, lsb).raw(), -1);
}

TEST(Fixed64, AdditionIsExact) {
  const double lsb = 0x1p-20;
  Fixed64 a = Fixed64::quantize(1.25, lsb);
  const Fixed64 b = Fixed64::quantize(2.5, lsb);
  a += b;
  EXPECT_DOUBLE_EQ(a.to_double(), 3.75);
}

TEST(Fixed64, SubtractionIsExact) {
  const double lsb = 0x1p-20;
  Fixed64 a = Fixed64::quantize(1.0, lsb);
  a -= Fixed64::quantize(0.25, lsb);
  EXPECT_DOUBLE_EQ(a.to_double(), 0.75);
}

TEST(Fixed64, MixedScalesRejected) {
  Fixed64 a = Fixed64::quantize(1.0, 0x1p-10);
  const Fixed64 b = Fixed64::quantize(1.0, 0x1p-20);
  EXPECT_THROW(a += b, g6::util::Error);
}

TEST(Fixed64, SaturatesAtRangeEnds) {
  const double lsb = 1.0;
  EXPECT_EQ(Fixed64::quantize(1e30, lsb).raw(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Fixed64::quantize(-1e30, lsb).raw(), std::numeric_limits<std::int64_t>::min());
}

TEST(Fixed64, NonPositiveLsbRejected) {
  EXPECT_THROW(Fixed64::quantize(1.0, 0.0), g6::util::Error);
  EXPECT_THROW(Fixed64::quantize(1.0, -1.0), g6::util::Error);
}

TEST(FixedVec3, QuantizeAndBack) {
  const Vec3 v{1.5, -2.25, 0.125};
  const FixedVec3 f = FixedVec3::quantize(v, 0x1p-20);
  EXPECT_EQ(f.to_vec3(), v);  // dyadic values are exact
}

TEST(FixedVec3, AccumulateQuantizesEachContribution) {
  FixedVec3 f(1.0);  // coarse grid: lsb = 1
  f.accumulate({0.4, 0.6, 1.5});
  EXPECT_EQ(f.to_vec3(), Vec3(0.0, 1.0, 2.0));
}

TEST(FixedVec3, FromRawRoundTrip) {
  const FixedVec3 f = FixedVec3::quantize({1.0, 2.0, 3.0}, 0x1p-16);
  const FixedVec3 g = FixedVec3::from_raw(f.x().raw(), f.y().raw(), f.z().raw(),
                                          f.lsb());
  EXPECT_EQ(f, g);
}

// The property the hardware reduction tree relies on: summation order does
// not change the result, bit for bit.
class FixedOrderIndependence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedOrderIndependence, AnyOrderSameBits) {
  g6::util::Rng rng(GetParam());
  const double lsb = 0x1p-40;
  std::vector<Vec3> contributions(200);
  for (auto& c : contributions)
    c = {rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3)};

  FixedVec3 forward(lsb);
  for (const auto& c : contributions) forward.accumulate(c);

  // Shuffle and re-sum several times.
  std::vector<std::size_t> idx(contributions.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = idx.size(); i > 1; --i)
      std::swap(idx[i - 1], idx[rng.below(i)]);
    FixedVec3 shuffled(lsb);
    for (std::size_t i : idx) shuffled.accumulate(contributions[i]);
    EXPECT_EQ(forward, shuffled);
  }

  // Tree-shaped partial merging also matches.
  FixedVec3 left(lsb), right(lsb);
  for (std::size_t i = 0; i < contributions.size() / 2; ++i)
    left.accumulate(contributions[i]);
  for (std::size_t i = contributions.size() / 2; i < contributions.size(); ++i)
    right.accumulate(contributions[i]);
  left += right;
  EXPECT_EQ(forward, left);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedOrderIndependence,
                         ::testing::Values(2u, 71u, 4242u));

TEST(RoundToMantissa, IdentityForFullWidth) {
  EXPECT_EQ(round_to_mantissa(0.1, 52), 0.1);
  EXPECT_EQ(round_to_mantissa(0.1, 60), 0.1);
}

TEST(RoundToMantissa, ZeroAndNonFinite) {
  EXPECT_EQ(round_to_mantissa(0.0, 24), 0.0);
  EXPECT_TRUE(std::isinf(round_to_mantissa(INFINITY, 24)));
  EXPECT_TRUE(std::isnan(round_to_mantissa(NAN, 24)));
}

TEST(RoundToMantissa, RelativeErrorBounded) {
  g6::util::Rng rng(77);
  for (int mb : {10, 16, 24, 32}) {
    const double tol = std::ldexp(1.0, -mb);  // half-ulp would be 2^-(mb+1)
    for (int i = 0; i < 1000; ++i) {
      const double v = rng.uniform(-1e10, 1e10);
      const double r = round_to_mantissa(v, mb);
      if (v != 0.0) {
        EXPECT_LE(std::abs(r - v) / std::abs(v), tol);
      }
    }
  }
}

TEST(RoundToMantissa, ExactlyRepresentableUnchanged) {
  // 1.5 has a 1-bit mantissa fraction; survives any width >= 1.
  EXPECT_EQ(round_to_mantissa(1.5, 8), 1.5);
  EXPECT_EQ(round_to_mantissa(-3.0, 4), -3.0);
  EXPECT_EQ(round_to_mantissa(0.375, 8), 0.375);
}

TEST(RoundToMantissa, CoarseRoundingQuantizes) {
  // With 2 mantissa bits, 1.3 rounds to a multiple of 0.125 near 1.3...
  const double r = round_to_mantissa(1.3, 2);
  EXPECT_NE(r, 1.3);
  EXPECT_NEAR(r, 1.3, 0.13);
}

// --- bit-identity of the bit-manipulation fast path vs the frexp/ldexp
// --- reference (round_to_mantissa_reference). NaN compares by payload bits.

using g6::util::round_to_mantissa_reference;

void expect_same_bits(double v, int mb) {
  const auto fast = std::bit_cast<std::uint64_t>(round_to_mantissa(v, mb));
  const auto ref = std::bit_cast<std::uint64_t>(round_to_mantissa_reference(v, mb));
  EXPECT_EQ(fast, ref) << "value=" << std::hexfloat << v << " mantissa_bits=" << mb;
}

TEST(RoundToMantissaBitIdentity, RandomBitPatterns) {
  // Raw 64-bit patterns: uniform over signs, exponents (including subnormal
  // and non-finite encodings) and mantissas.
  g6::util::Rng rng(20260805);
  for (int trial = 0; trial < 20000; ++trial) {
    const double v = std::bit_cast<double>(rng());
    for (int mb : {1, 2, 11, 24, 25, 51, 52}) expect_same_bits(v, mb);
  }
}

TEST(RoundToMantissaBitIdentity, RandomUniformValues) {
  g6::util::Rng rng(4242);
  for (int trial = 0; trial < 20000; ++trial) {
    const double v = rng.uniform(-1e3, 1e3);
    for (int mb = 1; mb <= 52; ++mb) expect_same_bits(v, mb);
  }
}

TEST(RoundToMantissaBitIdentity, SubnormalsAndNearSubnormals) {
  g6::util::Rng rng(99);
  for (int trial = 0; trial < 5000; ++trial) {
    // Exponent field 0 (subnormal) or 1 (smallest normal binade).
    const std::uint64_t sign = rng() & (std::uint64_t{1} << 63);
    const std::uint64_t exp = (rng() & 1u) << 52;
    const std::uint64_t mant = rng() & ((std::uint64_t{1} << 52) - 1);
    const double v = std::bit_cast<double>(sign | exp | mant);
    for (int mb : {1, 8, 24, 51}) expect_same_bits(v, mb);
  }
}

TEST(RoundToMantissaBitIdentity, ExactTiesBothParities) {
  // Construct values whose dropped bits are exactly half an output ULP, with
  // the kept LSB both even and odd — the round-to-nearest-even tiebreak.
  for (int mb : {1, 2, 8, 24, 51}) {
    const int drop = 52 - mb;
    for (std::uint64_t kept : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
                               (std::uint64_t{1} << mb) - 1}) {
      if (kept >> mb) continue;  // does not fit in the kept field
      const std::uint64_t mant = (kept << drop) | (std::uint64_t{1} << (drop - 1));
      for (std::uint64_t sign : {std::uint64_t{0}, std::uint64_t{1} << 63}) {
        const double v = std::bit_cast<double>(sign | (std::uint64_t{1023} << 52) | mant);
        expect_same_bits(v, mb);
      }
    }
  }
}

TEST(RoundToMantissaBitIdentity, CarryPropagationAndOverflow) {
  // All-ones mantissas round up across the binade; in the top binade the
  // carry must overflow to infinity exactly like the reference.
  for (int mb : {1, 8, 24, 51}) {
    const std::uint64_t mant = (std::uint64_t{1} << 52) - 1;  // 1.111...1
    for (std::uint64_t exp : {std::uint64_t{1}, std::uint64_t{1023},
                              std::uint64_t{2046}}) {
      for (std::uint64_t sign : {std::uint64_t{0}, std::uint64_t{1} << 63}) {
        const double v = std::bit_cast<double>(sign | (exp << 52) | mant);
        expect_same_bits(v, mb);
      }
    }
  }
  EXPECT_TRUE(std::isinf(round_to_mantissa(std::bit_cast<double>(
      (std::uint64_t{2046} << 52) | ((std::uint64_t{1} << 52) - 1)), 8)));
}

TEST(RoundToMantissaBitIdentity, SpecialValues) {
  for (int mb : {1, 24, 51, 52, 60}) {
    for (double v : {0.0, -0.0, std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::denorm_min(),
                     -std::numeric_limits<double>::denorm_min(),
                     std::numeric_limits<double>::min(),
                     std::numeric_limits<double>::max(), 1.0, -1.0}) {
      expect_same_bits(v, mb);
    }
  }
}

}  // namespace
