// Tests for the CRC-32 used by transport framing, j-memory scrubbing and
// binary snapshot trailers.
#include "util/crc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace {

using g6::util::crc32;
using g6::util::crc32_final;
using g6::util::crc32_init;
using g6::util::crc32_of;
using g6::util::crc32_update;

TEST(Crc32, StandardCheckValue) {
  // The IEEE 802.3 reflected CRC-32 of "123456789" is the published check
  // value every implementation must reproduce.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyBuffer) {
  EXPECT_EQ(crc32("", 0), 0u);
  EXPECT_EQ(crc32_final(crc32_init()), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  g6::util::Rng rng(5);
  std::vector<unsigned char> buf(997);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));

  const std::uint32_t oneshot = crc32(buf.data(), buf.size());
  // Feed the same bytes in irregular chunks.
  std::uint32_t state = crc32_init();
  std::size_t pos = 0;
  while (pos < buf.size()) {
    const std::size_t chunk = std::min<std::size_t>(1 + rng.below(64),
                                                    buf.size() - pos);
    state = crc32_update(state, buf.data() + pos, chunk);
    pos += chunk;
  }
  EXPECT_EQ(crc32_final(state), oneshot);
}

TEST(Crc32, SingleBitFlipAlwaysDetected) {
  // CRC-32 detects every single-bit error by construction; check a randomized
  // sample of positions across a payload-sized buffer.
  g6::util::Rng rng(7);
  std::vector<unsigned char> buf(2048);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));
  const std::uint32_t clean = crc32(buf.data(), buf.size());

  for (int trial = 0; trial < 256; ++trial) {
    const std::size_t byte = rng.below(buf.size());
    const unsigned bit = static_cast<unsigned>(rng.below(8));
    buf[byte] ^= static_cast<unsigned char>(1u << bit);
    EXPECT_NE(crc32(buf.data(), buf.size()), clean)
        << "flip of bit " << bit << " in byte " << byte << " not detected";
    buf[byte] ^= static_cast<unsigned char>(1u << bit);  // restore
  }
  EXPECT_EQ(crc32(buf.data(), buf.size()), clean);
}

TEST(Crc32, CrcOfValueMatchesBufferCrc) {
  const std::uint64_t v = 0x0123456789ABCDEFull;
  EXPECT_EQ(crc32_of(v), crc32(&v, sizeof v));
}

TEST(Crc32, DistinguishesPermutedData) {
  const char a[] = "abcd";
  const char b[] = "abdc";
  EXPECT_NE(crc32(a, 4), crc32(b, 4));
}

}  // namespace
