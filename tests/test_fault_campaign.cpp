// Tests for seeded fault campaigns: recovery bit-identity across all three
// cluster modes, thread-count invariance, and error propagation out of
// thread-pool regions when boards fault concurrently.
#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "cluster/parallel_sim.hpp"
#include "grape6/machine.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace hw = g6::hw;
using g6::cluster::HostMode;
using g6::fault::CampaignConfig;
using g6::fault::CampaignResult;
using g6::fault::FaultStatsSnapshot;

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.steps = 4;
  cfg.boards = 3;
  cfg.chips_per_board = 3;
  cfg.hosts = 4;
  return cfg;
}

void expect_recovered(const CampaignResult& r) {
  EXPECT_TRUE(r.bit_identical) << r.summary;
  EXPECT_GT(r.faults_scheduled, 0);
  EXPECT_GT(r.stats.injected_total, 0u) << r.summary;
}

TEST(FaultCampaign, MachineCampaignRecoversBitIdentically) {
  const CampaignResult r = g6::fault::run_machine_campaign(small_config());
  expect_recovered(r);
  // A permanent chip kill and a board failure are in the default mix, so the
  // machine must end degraded with the recovery cost accounted.
  EXPECT_LT(r.degraded_capacity_fraction, 1.0);
  EXPECT_GT(r.recovery_modeled_seconds, 0.0);
  EXPECT_GT(r.stats.remapped_particles, 0u);
}

TEST(FaultCampaign, ClusterCampaignNaive) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kNaive;
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignHardwareNet) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kHardwareNet;
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignMatrix2D) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kMatrix2D;  // hosts=4 -> 2x2 grid
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignMatrix3x3) {
  // A 3x3 grid (vs the 2x2 above) exercises multi-hop column routing, and
  // host drops can hit row-0 hosts, promoting deeper hosts to column root —
  // paths a 2x2 grid never takes.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CampaignConfig cfg = small_config();
    cfg.mode = HostMode::kMatrix2D;
    cfg.hosts = 9;
    cfg.fault_seed = seed;
    const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
    expect_recovered(r);
    EXPECT_EQ(r.stats.dead_hosts, 1u) << "seed " << seed;
  }
}

TEST(FaultCampaign, SeedsAreReproducible) {
  CampaignConfig cfg = small_config();
  cfg.fault_seed = 3;
  const CampaignResult a = g6::fault::run_machine_campaign(cfg);
  const CampaignResult b = g6::fault::run_machine_campaign(cfg);
  EXPECT_EQ(a.summary, b.summary);
}

void expect_same_stats(const FaultStatsSnapshot& a, const FaultStatsSnapshot& b) {
  EXPECT_EQ(a.injected_total, b.injected_total);
  EXPECT_EQ(a.crc_payload_mismatches, b.crc_payload_mismatches);
  EXPECT_EQ(a.crc_jmem_mismatches, b.crc_jmem_mismatches);
  EXPECT_EQ(a.selftest_failures, b.selftest_failures);
  EXPECT_EQ(a.link_retries, b.link_retries);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_EQ(a.recomputed_chip_blocks, b.recomputed_chip_blocks);
  EXPECT_EQ(a.jmem_rewrites, b.jmem_rewrites);
  EXPECT_EQ(a.excluded_chips, b.excluded_chips);
  EXPECT_EQ(a.excluded_boards, b.excluded_boards);
  EXPECT_EQ(a.dead_hosts, b.dead_hosts);
  EXPECT_EQ(a.remapped_particles, b.remapped_particles);
  EXPECT_DOUBLE_EQ(a.recovery_modeled_seconds, b.recovery_modeled_seconds);
}

TEST(FaultCampaign, MachineRecoveryIsThreadCountInvariant) {
  CampaignConfig cfg = small_config();
  cfg.threads = 1;
  const CampaignResult serial = g6::fault::run_machine_campaign(cfg);
  cfg.threads = 4;
  const CampaignResult parallel = g6::fault::run_machine_campaign(cfg);
  EXPECT_TRUE(serial.bit_identical);
  EXPECT_TRUE(parallel.bit_identical);
  expect_same_stats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.summary, parallel.summary);
}

TEST(FaultCampaign, ClusterRecoveryIsThreadCountInvariant) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kNaive;
  cfg.threads = 1;
  const CampaignResult serial = g6::fault::run_cluster_campaign(cfg);
  cfg.threads = 4;
  const CampaignResult parallel = g6::fault::run_cluster_campaign(cfg);
  EXPECT_TRUE(serial.bit_identical);
  EXPECT_TRUE(parallel.bit_identical);
  expect_same_stats(serial.stats, parallel.stats);
}

// --- Aggregated-frame faults -----------------------------------------------
//
// The aggregation layer changes what rides the wire (bulk frames instead of
// per-record messages), so the fault campaign must hold on frames too: a
// link-down window stalling a flush, a corrupted record inside a frame
// (CRC -> whole-frame resend), and a host dying while the overlap pipeline
// has collective legs in flight — all recovered bit-identically at any
// thread count.

struct ClusterRunResult {
  std::uint32_t digest = 0;
  std::uint64_t messages = 0;
  FaultStatsSnapshot stats;
};

struct ClusterRunOptions {
  HostMode mode = HostMode::kNaive;
  int hosts = 4;
  bool aggregated = true;
  bool deferred = false;
  bool overlap = false;
  int threads = 1;
};

ClusterRunResult run_cluster_workload(const ClusterRunOptions& opt,
                                      const g6::fault::FaultPlan* plan) {
  const hw::FormatSpec fmt{};
  constexpr int kN = 96;
  constexpr int kSteps = 4;
  g6::util::Rng rng(11);
  auto vec = [&](double scale) {
    return g6::util::Vec3{scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0)};
  };
  std::vector<hw::JParticle> js;
  for (int i = 0; i < kN; ++i)
    js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), 1.0 / kN,
                                     0.0, vec(1.0), vec(0.1), vec(0.01),
                                     vec(0.001), fmt));
  std::vector<std::vector<hw::IParticle>> batches(kSteps);
  for (int s = 0; s < kSteps; ++s)
    for (int i = 0; i < kN; ++i)
      batches[static_cast<std::size_t>(s)].push_back(hw::make_i_particle(
          static_cast<std::uint32_t>(i), vec(1.0), vec(0.1), fmt));

  g6::util::ThreadPool pool(static_cast<std::size_t>(opt.threads));
  g6::cluster::ParallelHostSystem sys(opt.hosts, opt.mode, fmt, 0.01,
                                      g6::cluster::LinkSpec{}, &pool);
  sys.set_aggregation(opt.aggregated);
  sys.set_deferred_updates(opt.deferred);
  sys.set_overlap(opt.overlap);
  g6::fault::FaultInjector injector;
  if (plan != nullptr) {
    injector.arm(*plan);
    sys.set_fault_injector(&injector);
  }
  sys.load(js);

  ClusterRunResult out;
  std::uint32_t digest = g6::util::crc32_init();
  std::vector<hw::ForceAccumulator> accum;
  std::vector<hw::JParticle> corrected;
  for (int s = 0; s < kSteps; ++s) {
    sys.compute(0.01 * (s + 1), batches[static_cast<std::size_t>(s)], accum);
    for (const hw::ForceAccumulator& a : accum) {
      const std::int64_t raws[7] = {a.acc.x().raw(),  a.acc.y().raw(),
                                    a.acc.z().raw(),  a.jerk.x().raw(),
                                    a.jerk.y().raw(), a.jerk.z().raw(),
                                    a.pot.raw()};
      digest = g6::util::crc32_update(digest, raws, sizeof(raws));
    }
    corrected.clear();
    for (int i = s % 4; i < kN; i += 4)
      corrected.push_back(js[static_cast<std::size_t>(i)]);
    sys.update(corrected);
  }
  out.digest = g6::util::crc32_final(digest);
  for (int r = 0; r < sys.hosts(); ++r)
    out.messages += sys.transport().stats(r).messages_sent;
  out.stats = injector.snapshot();
  return out;
}

// Aggregation (and deferred flushing, and the overlap pipeline) may change
// only the wire layout, never the physics: same digest as per-record sends
// in every host organisation, with strictly fewer Ethernet messages.
TEST(AggregatedFaults, AggregationModesAreBitIdenticalToPerRecord) {
  for (const auto& [mode, hosts] :
       {std::pair{HostMode::kNaive, 4}, {HostMode::kHardwareNet, 4},
        {HostMode::kMatrix2D, 9}}) {
    ClusterRunOptions opt;
    opt.mode = mode;
    opt.hosts = hosts;
    opt.aggregated = false;
    const ClusterRunResult plain = run_cluster_workload(opt, nullptr);
    opt.aggregated = true;
    const ClusterRunResult agg = run_cluster_workload(opt, nullptr);
    EXPECT_EQ(plain.digest, agg.digest) << "mode " << static_cast<int>(mode);
    if (mode != HostMode::kHardwareNet) {
      EXPECT_LT(agg.messages, plain.messages) << "mode " << static_cast<int>(mode);
    }

    opt.deferred = true;
    EXPECT_EQ(run_cluster_workload(opt, nullptr).digest, plain.digest);
    if (mode == HostMode::kMatrix2D) {
      opt.overlap = true;
      EXPECT_EQ(run_cluster_workload(opt, nullptr).digest, plain.digest);
    }
  }
}

// A link-down window opening mid-flush: in naive aggregated mode every
// Transport send IS an update-flush frame, so a window at any op stalls the
// flush; retry-with-backoff must deliver the same frames in the same order.
TEST(AggregatedFaults, LinkDownWindowMidFlushRecovers) {
  ClusterRunOptions opt;
  const ClusterRunResult clean = run_cluster_workload(opt, nullptr);
  ASSERT_GT(clean.messages, 8u);

  // a/b = -1: the window opens on whatever link the at-th send (a flush
  // frame) is using, so that very frame hits the down link and must back off.
  g6::fault::FaultPlan plan;
  plan.add({g6::fault::FaultKind::kLinkFail, clean.messages / 3, -1, -1, 0, 2});
  plan.add({g6::fault::FaultKind::kLinkFail, clean.messages - 1, -1, -1, 0, 2});
  for (int threads : {1, 2, 8}) {
    opt.threads = threads;
    const ClusterRunResult faulted = run_cluster_workload(opt, &plan);
    EXPECT_EQ(faulted.digest, clean.digest) << threads << " threads";
    EXPECT_GT(faulted.stats.link_retries, 0u) << threads << " threads";
  }
}

// A flipped bit inside one record of a coalesced frame: the frame-level CRC
// detects it, and exactly the failed frame is resent (not one resend per
// coalesced record).
TEST(AggregatedFaults, CorruptRecordInFrameResendsOnlyThatFrame) {
  ClusterRunOptions opt;
  const ClusterRunResult clean = run_cluster_workload(opt, nullptr);

  g6::fault::FaultPlan plan;
  plan.add({g6::fault::FaultKind::kLinkCorrupt, clean.messages / 4, -1, -1, 501, 0});
  plan.add({g6::fault::FaultKind::kLinkCorrupt, clean.messages / 2, -1, -1, 77, 0});
  for (int threads : {1, 2, 8}) {
    opt.threads = threads;
    const ClusterRunResult faulted = run_cluster_workload(opt, &plan);
    EXPECT_EQ(faulted.digest, clean.digest) << threads << " threads";
    EXPECT_EQ(faulted.stats.crc_payload_mismatches, 2u) << threads << " threads";
    EXPECT_EQ(faulted.stats.resends, 2u) << threads << " threads";
  }
}

// A host dies while the overlap pipeline is double-buffering collective
// legs. The drop fires at the serial compute entry (after the deferred
// flush), so recovery — re-replication plus rerouted columns — must leave
// the digest bit-identical at any thread count.
TEST(AggregatedFaults, HostDropoutDuringOverlapRecovers) {
  ClusterRunOptions opt;
  opt.mode = HostMode::kMatrix2D;
  opt.hosts = 9;
  opt.overlap = true;
  opt.deferred = true;
  const ClusterRunResult clean = run_cluster_workload(opt, nullptr);

  g6::fault::FaultPlan plan;
  plan.add({g6::fault::FaultKind::kHostDrop, 2, 4, -1, 0, 0});
  for (int threads : {1, 2, 8}) {
    opt.threads = threads;
    const ClusterRunResult faulted = run_cluster_workload(opt, &plan);
    EXPECT_EQ(faulted.digest, clean.digest) << threads << " threads";
    EXPECT_EQ(faulted.stats.dead_hosts, 1u) << threads << " threads";
    EXPECT_GT(faulted.stats.remapped_particles, 0u) << threads << " threads";
  }
}

// The full randomized campaign, with the new transport shapes switched on.
TEST(AggregatedFaults, RandomizedCampaignsHoldUnderAggregationShapes) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kMatrix2D;
  cfg.hosts = 9;
  cfg.overlap = true;
  cfg.deferred = true;
  expect_recovered(g6::fault::run_cluster_campaign(cfg));

  cfg = small_config();
  cfg.mode = HostMode::kNaive;
  cfg.aggregated = false;  // the per-record path stays campaign-covered too
  expect_recovered(g6::fault::run_cluster_campaign(cfg));
}

// An error raised inside the board fan-out (every chip of every board faults
// at once — here a violated predict/compute precondition) must propagate out
// of the ThreadPool region as a g6::util::Error, and the pool must remain
// usable for the recovery that follows.
TEST(FaultCampaign, ThreadPoolRethrowsUnderConcurrentBoardFaults) {
  g6::util::ThreadPool pool(4);
  hw::MachineConfig mc = hw::MachineConfig::mini(4, 2, 64);
  hw::Grape6Machine machine(mc, &pool);

  g6::util::Rng rng(19);
  auto vec = [&](double scale) {
    return g6::util::Vec3{scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0)};
  };
  const hw::FormatSpec fmt{};
  std::vector<hw::JParticle> js;
  std::vector<hw::IParticle> batch;
  for (int i = 0; i < 32; ++i) {
    js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), 1.0 / 32,
                                     0.0, vec(1.0), vec(0.1), vec(0.01),
                                     vec(0.001), fmt));
    batch.push_back(hw::make_i_particle(static_cast<std::uint32_t>(i),
                                        vec(1.0), vec(0.1), fmt));
  }
  machine.load(js);

  std::vector<hw::ForceAccumulator> accum;
  // No predict_all: every board's chips trip the precondition concurrently.
  EXPECT_THROW(machine.compute(batch, 1e-4, accum), g6::util::Error);

  // The pool survives the rethrow; a well-formed step still works.
  machine.predict_all(0.01);
  machine.compute(batch, 1e-4, accum);
  EXPECT_EQ(accum.size(), batch.size());
}

// The process-level campaign on the stateful P3T hybrid backend: seeded
// kill/resume cycles with varying thread counts must reproduce the
// uninterrupted run bit-for-bit — the epoch snapshot in the checkpoint is
// what makes this hold.
TEST(FaultCampaign, HybridKillResumeBitIdentical) {
  g6::fault::CampaignConfig cfg;
  cfg.n = 96;
  cfg.steps = 8;
  cfg.ic_seed = 4242;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    cfg.fault_seed = seed;
    const auto r = g6::fault::run_hybrid_campaign(cfg);
    EXPECT_TRUE(r.bit_identical) << r.summary;
    EXPECT_GT(r.faults_scheduled, 0) << r.summary;
    EXPECT_NE(r.summary.find("BIT-IDENTICAL"), std::string::npos);
  }
}

}  // namespace
