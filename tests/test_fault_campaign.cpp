// Tests for seeded fault campaigns: recovery bit-identity across all three
// cluster modes, thread-count invariance, and error propagation out of
// thread-pool regions when boards fault concurrently.
#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include "grape6/machine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace hw = g6::hw;
using g6::cluster::HostMode;
using g6::fault::CampaignConfig;
using g6::fault::CampaignResult;
using g6::fault::FaultStatsSnapshot;

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.n = 96;
  cfg.steps = 4;
  cfg.boards = 3;
  cfg.chips_per_board = 3;
  cfg.hosts = 4;
  return cfg;
}

void expect_recovered(const CampaignResult& r) {
  EXPECT_TRUE(r.bit_identical) << r.summary;
  EXPECT_GT(r.faults_scheduled, 0);
  EXPECT_GT(r.stats.injected_total, 0u) << r.summary;
}

TEST(FaultCampaign, MachineCampaignRecoversBitIdentically) {
  const CampaignResult r = g6::fault::run_machine_campaign(small_config());
  expect_recovered(r);
  // A permanent chip kill and a board failure are in the default mix, so the
  // machine must end degraded with the recovery cost accounted.
  EXPECT_LT(r.degraded_capacity_fraction, 1.0);
  EXPECT_GT(r.recovery_modeled_seconds, 0.0);
  EXPECT_GT(r.stats.remapped_particles, 0u);
}

TEST(FaultCampaign, ClusterCampaignNaive) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kNaive;
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignHardwareNet) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kHardwareNet;
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignMatrix2D) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kMatrix2D;  // hosts=4 -> 2x2 grid
  const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
  expect_recovered(r);
  EXPECT_EQ(r.stats.dead_hosts, 1u);
}

TEST(FaultCampaign, ClusterCampaignMatrix3x3) {
  // A 3x3 grid (vs the 2x2 above) exercises multi-hop column routing, and
  // host drops can hit row-0 hosts, promoting deeper hosts to column root —
  // paths a 2x2 grid never takes.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CampaignConfig cfg = small_config();
    cfg.mode = HostMode::kMatrix2D;
    cfg.hosts = 9;
    cfg.fault_seed = seed;
    const CampaignResult r = g6::fault::run_cluster_campaign(cfg);
    expect_recovered(r);
    EXPECT_EQ(r.stats.dead_hosts, 1u) << "seed " << seed;
  }
}

TEST(FaultCampaign, SeedsAreReproducible) {
  CampaignConfig cfg = small_config();
  cfg.fault_seed = 3;
  const CampaignResult a = g6::fault::run_machine_campaign(cfg);
  const CampaignResult b = g6::fault::run_machine_campaign(cfg);
  EXPECT_EQ(a.summary, b.summary);
}

void expect_same_stats(const FaultStatsSnapshot& a, const FaultStatsSnapshot& b) {
  EXPECT_EQ(a.injected_total, b.injected_total);
  EXPECT_EQ(a.crc_payload_mismatches, b.crc_payload_mismatches);
  EXPECT_EQ(a.crc_jmem_mismatches, b.crc_jmem_mismatches);
  EXPECT_EQ(a.selftest_failures, b.selftest_failures);
  EXPECT_EQ(a.link_retries, b.link_retries);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_EQ(a.recomputed_chip_blocks, b.recomputed_chip_blocks);
  EXPECT_EQ(a.jmem_rewrites, b.jmem_rewrites);
  EXPECT_EQ(a.excluded_chips, b.excluded_chips);
  EXPECT_EQ(a.excluded_boards, b.excluded_boards);
  EXPECT_EQ(a.dead_hosts, b.dead_hosts);
  EXPECT_EQ(a.remapped_particles, b.remapped_particles);
  EXPECT_DOUBLE_EQ(a.recovery_modeled_seconds, b.recovery_modeled_seconds);
}

TEST(FaultCampaign, MachineRecoveryIsThreadCountInvariant) {
  CampaignConfig cfg = small_config();
  cfg.threads = 1;
  const CampaignResult serial = g6::fault::run_machine_campaign(cfg);
  cfg.threads = 4;
  const CampaignResult parallel = g6::fault::run_machine_campaign(cfg);
  EXPECT_TRUE(serial.bit_identical);
  EXPECT_TRUE(parallel.bit_identical);
  expect_same_stats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.summary, parallel.summary);
}

TEST(FaultCampaign, ClusterRecoveryIsThreadCountInvariant) {
  CampaignConfig cfg = small_config();
  cfg.mode = HostMode::kNaive;
  cfg.threads = 1;
  const CampaignResult serial = g6::fault::run_cluster_campaign(cfg);
  cfg.threads = 4;
  const CampaignResult parallel = g6::fault::run_cluster_campaign(cfg);
  EXPECT_TRUE(serial.bit_identical);
  EXPECT_TRUE(parallel.bit_identical);
  expect_same_stats(serial.stats, parallel.stats);
}

// An error raised inside the board fan-out (every chip of every board faults
// at once — here a violated predict/compute precondition) must propagate out
// of the ThreadPool region as a g6::util::Error, and the pool must remain
// usable for the recovery that follows.
TEST(FaultCampaign, ThreadPoolRethrowsUnderConcurrentBoardFaults) {
  g6::util::ThreadPool pool(4);
  hw::MachineConfig mc = hw::MachineConfig::mini(4, 2, 64);
  hw::Grape6Machine machine(mc, &pool);

  g6::util::Rng rng(19);
  auto vec = [&](double scale) {
    return g6::util::Vec3{scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0),
                          scale * rng.uniform(-1.0, 1.0)};
  };
  const hw::FormatSpec fmt{};
  std::vector<hw::JParticle> js;
  std::vector<hw::IParticle> batch;
  for (int i = 0; i < 32; ++i) {
    js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), 1.0 / 32,
                                     0.0, vec(1.0), vec(0.1), vec(0.01),
                                     vec(0.001), fmt));
    batch.push_back(hw::make_i_particle(static_cast<std::uint32_t>(i),
                                        vec(1.0), vec(0.1), fmt));
  }
  machine.load(js);

  std::vector<hw::ForceAccumulator> accum;
  // No predict_all: every board's chips trip the precondition concurrently.
  EXPECT_THROW(machine.compute(batch, 1e-4, accum), g6::util::Error);

  // The pool survives the rethrow; a well-formed step still works.
  machine.predict_all(0.01);
  machine.compute(batch, 1e-4, accum);
  EXPECT_EQ(accum.size(), batch.size());
}

}  // namespace
