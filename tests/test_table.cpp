// Tests for the table renderer and formatting helpers.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace {

using g6::util::Table;

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "12345"});
  const std::string out = t.render();
  // Header, separator, two rows.
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), g6::util::Error);
}

TEST(Table, EmptyHeaderThrows) { EXPECT_THROW(Table({}), g6::util::Error); }

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableFmt, Double) {
  EXPECT_EQ(g6::util::fmt(3.14159, 3), "3.14");
  EXPECT_EQ(g6::util::fmt(1000000.0, 4), "1e+06");
}

TEST(TableFmt, Int) { EXPECT_EQ(g6::util::fmt_int(1234567), "1234567"); }

TEST(TableFmt, Pct) {
  EXPECT_EQ(g6::util::fmt_pct(0.465, 1), "46.5%");
  EXPECT_EQ(g6::util::fmt_pct(1.0, 0), "100%");
}

TEST(TableFmt, Sci) { EXPECT_EQ(g6::util::fmt_sci(29.5e12, 2), "2.95e+13"); }

}  // namespace
