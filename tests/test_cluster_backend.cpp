// Tests for the multi-host ForceBackend: trajectory equality across host
// organisations and agreement with the single-machine GRAPE backend.
#include "cluster/cluster_backend.hpp"

#include <gtest/gtest.h>

#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"

namespace {

using g6::cluster::ClusterBackend;
using g6::cluster::HostMode;
using g6::nbody::Force;
using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;
using g6::nbody::ParticleSystem;

constexpr double kEps = 0.008;

ParticleSystem small_disk(std::size_t n, std::uint64_t seed = 404) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  cfg.seed = seed;
  return g6::disk::make_disk(cfg).system;
}

g6::hw::FormatSpec disk_fmt() {
  return g6::hw::FormatSpec::for_scales(64.0, 1e-4);
}

IntegratorConfig icfg() {
  IntegratorConfig c;
  c.solar_gm = 1.0;
  c.eta = 0.02;
  c.dt_max = 4.0;
  return c;
}

TEST(ClusterBackend, ForcesMatchCpuToFormatPrecision) {
  ParticleSystem ps = small_disk(120);
  ClusterBackend cb(4, HostMode::kHardwareNet, disk_fmt(), kEps);
  g6::nbody::CpuDirectBackend cpu(kEps);
  cb.load(ps);
  cpu.load(ps);
  std::vector<std::uint32_t> ilist{0, 17, 60, 119};
  std::vector<Force> a(4), b(4);
  cb.compute(0.0, ilist, a);
  cpu.compute(0.0, ilist, b);
  for (int k = 0; k < 4; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    EXPECT_NEAR(norm(a[ku].acc - b[ku].acc), 0.0, 3e-6 * norm(b[ku].acc)) << k;
  }
}

TEST(ClusterBackend, TrajectoriesIdenticalAcrossModes) {
  // The paper's point: the host organisation changes the communication
  // pattern only. With fixed-point force accumulation the integrated
  // trajectories are bit-identical across all three modes.
  auto run = [&](HostMode mode, int hosts) {
    ParticleSystem ps = small_disk(80);
    ClusterBackend cb(hosts, mode, disk_fmt(), kEps);
    HermiteIntegrator integ(ps, cb, icfg());
    integ.initialize();
    integ.evolve(32.0);
    return ps;
  };
  const ParticleSystem naive = run(HostMode::kNaive, 4);
  const ParticleSystem hwnet = run(HostMode::kHardwareNet, 4);
  const ParticleSystem matrix = run(HostMode::kMatrix2D, 4);
  const ParticleSystem hwnet8 = run(HostMode::kHardwareNet, 8);
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive.pos(i), hwnet.pos(i)) << i;
    EXPECT_EQ(naive.pos(i), matrix.pos(i)) << i;
    EXPECT_EQ(naive.vel(i), hwnet8.vel(i)) << i;
  }
}

TEST(ClusterBackend, MatchesGrape6BackendBitwise) {
  // Same formats, same arithmetic, different organisations: the cluster of
  // software GRAPEs and the monolithic machine agree bit for bit.
  ParticleSystem ps = small_disk(100);

  ClusterBackend cb(4, HostMode::kHardwareNet, disk_fmt(), kEps);
  g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 64);
  mc.fmt = disk_fmt();
  g6::hw::Grape6Backend gb(mc, kEps);

  cb.load(ps);
  gb.load(ps);
  std::vector<std::uint32_t> ilist;
  for (std::uint32_t i = 0; i < ps.size(); i += 11) ilist.push_back(i);
  std::vector<Force> a(ilist.size()), b(ilist.size());
  cb.compute(0.0, ilist, a);
  gb.compute(0.0, ilist, b);
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    EXPECT_EQ(a[k].acc, b[k].acc) << k;
    EXPECT_EQ(a[k].jerk, b[k].jerk) << k;
    EXPECT_EQ(a[k].pot, b[k].pot) << k;
  }
}

TEST(ClusterBackend, EnergyConservedThroughFullIntegration) {
  ParticleSystem ps = small_disk(100);
  ClusterBackend cb(4, HostMode::kHardwareNet, disk_fmt(), kEps);
  HermiteIntegrator integ(ps, cb, icfg());
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, kEps, 1.0).total();
  integ.evolve(64.0);
  const double e1 = g6::nbody::compute_energy(ps, kEps, 1.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-6);
}

TEST(ClusterBackend, TrafficAccumulatesOverARun) {
  ParticleSystem ps = small_disk(60);
  ClusterBackend naive(4, HostMode::kNaive, disk_fmt(), kEps);
  ClusterBackend hwnet(4, HostMode::kHardwareNet, disk_fmt(), kEps);
  {
    HermiteIntegrator integ(ps, naive, icfg());
    integ.initialize();
    integ.evolve(16.0);
  }
  {
    ParticleSystem ps2 = small_disk(60);
    HermiteIntegrator integ(ps2, hwnet, icfg());
    integ.initialize();
    integ.evolve(16.0);
  }
  EXPECT_GT(naive.system().ethernet_bytes(), 0u);
  EXPECT_EQ(hwnet.system().ethernet_bytes(), 0u);
  EXPECT_GT(hwnet.system().hardware_bytes().lvds, 0u);
  EXPECT_GT(naive.interaction_count(), 0u);
}

TEST(ClusterBackend, NameIncludesMode) {
  ClusterBackend cb(4, HostMode::kNaive, disk_fmt(), kEps);
  EXPECT_NE(cb.name().find("naive"), std::string::npos);
}

TEST(ClusterBackend, ReloadResetsState) {
  ParticleSystem ps = small_disk(40);
  ClusterBackend cb(4, HostMode::kHardwareNet, disk_fmt(), kEps);
  cb.load(ps);
  cb.load(ps);  // reload must not duplicate particles
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  cb.compute(0.0, ilist, f);

  g6::nbody::CpuDirectBackend cpu(kEps);
  cpu.load(ps);
  std::vector<Force> ref(1);
  cpu.compute(0.0, ilist, ref);
  EXPECT_NEAR(norm(f[0].acc - ref[0].acc), 0.0, 3e-6 * norm(ref[0].acc));
}

}  // namespace
