// Tests for the classic g6_ host-library facade.
#include "grape6/g6_api.hpp"

#include <gtest/gtest.h>

#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

namespace {

namespace api = g6::hw::api;
using g6::util::Vec3;

class G6Api : public ::testing::Test {
 protected:
  void TearDown() override { api::g6_reset_all(); }
};

TEST_F(G6Api, OpenCloseLifecycle) {
  EXPECT_EQ(api::g6_open(0), 0);
  EXPECT_EQ(api::g6_open(0), -1);  // double open
  EXPECT_EQ(api::g6_close(0), 0);
  EXPECT_EQ(api::g6_close(0), -1);  // double close
  EXPECT_EQ(api::g6_open(-1), -1);
  EXPECT_EQ(api::g6_open(99), -1);
}

TEST_F(G6Api, NpipesMatchesChipPassWidth) {
  EXPECT_EQ(api::g6_npipes(), g6::hw::kIPerChipPass);
}

TEST_F(G6Api, CallsOnClosedClusterThrow) {
  EXPECT_THROW(api::g6_set_ti(0, 0.0), g6::util::Error);
  EXPECT_THROW(api::g6_machine(0), g6::util::Error);
}

TEST_F(G6Api, ForceMatchesCpuReference) {
  ASSERT_EQ(api::g6_open(0), 0);
  g6::util::Rng rng(5);

  const int n = 64;
  std::vector<Vec3> xs(n), vs(n);
  std::vector<double> ms(n);
  for (int j = 0; j < n; ++j) {
    xs[j] = {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-1, 1)};
    vs[j] = {rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), 0};
    ms[j] = rng.uniform(1e-9, 1e-8);
    // The hardware form passes acc/2 and jerk/6; zero here.
    api::g6_set_j_particle(0, j, j, 0.0, 0.0, ms[j], {}, {}, {}, vs[j], xs[j]);
  }
  api::g6_set_ti(0, 0.0);

  const int ni = 8;
  std::vector<int> idx(ni);
  std::vector<Vec3> xi(ni), vi(ni), acc(ni), jerk(ni);
  std::vector<double> pot(ni);
  for (int k = 0; k < ni; ++k) {
    idx[k] = k * 5;
    xi[k] = xs[static_cast<std::size_t>(k * 5)];
    vi[k] = vs[static_cast<std::size_t>(k * 5)];
  }
  const double eps2 = 1e-4;
  api::g6_calc_firsthalf(0, ni, idx.data(), xi.data(), vi.data(), eps2);
  ASSERT_EQ(api::g6_calc_lasthalf(0, ni, acc.data(), jerk.data(), pot.data()), 0);

  for (int k = 0; k < ni; ++k) {
    g6::nbody::Force ref{};
    for (int j = 0; j < n; ++j) {
      if (j == idx[k]) continue;
      g6::nbody::pairwise_force(xi[static_cast<std::size_t>(k)],
                                vi[static_cast<std::size_t>(k)],
                                xs[static_cast<std::size_t>(j)],
                                vs[static_cast<std::size_t>(j)],
                                ms[static_cast<std::size_t>(j)], eps2, ref);
    }
    EXPECT_NEAR(norm(acc[static_cast<std::size_t>(k)] - ref.acc), 0.0,
                2e-6 * norm(ref.acc))
        << k;
    EXPECT_NEAR(pot[static_cast<std::size_t>(k)], ref.pot,
                2e-6 * std::abs(ref.pot));
  }
}

TEST_F(G6Api, PredictionUsesHardwareCoefficients) {
  ASSERT_EQ(api::g6_open(0), 0);
  // j-particle with velocity and acceleration; i-particle probing the force
  // after prediction to t = 2: x_j(2) = 1 + 0.5*2 + 0.5*a*4.
  const Vec3 v{0.5, 0, 0};
  const Vec3 a{0.25, 0, 0};  // passes acc/2 = 0.125
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 1.0, {}, {}, 0.5 * a, v, {1, 0, 0});
  api::g6_set_ti(0, 2.0);

  const int idx = 1000;
  const Vec3 xi{0, 0, 0}, vi{};
  api::g6_calc_firsthalf(0, 1, &idx, &xi, &vi, 0.0);
  Vec3 acc, jerk;
  double pot;
  api::g6_calc_lasthalf(0, 1, &acc, &jerk, &pot);
  const double xj = 1.0 + 0.5 * 2.0 + 0.5 * 0.25 * 4.0;  // 2.5
  EXPECT_NEAR(acc.x, 1.0 / (xj * xj), 1e-5);
}

TEST_F(G6Api, JParticleOverwriteByAddress) {
  ASSERT_EQ(api::g6_open(0), 0);
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 1.0, {}, {}, {}, {}, {2, 0, 0});
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 4.0, {}, {}, {}, {}, {2, 0, 0});
  EXPECT_EQ(api::g6_machine(0).j_count(), 1u);
  EXPECT_NEAR(api::g6_machine(0).read_j(0).mass, 4.0, 1e-6);
  // Sparse addresses rejected.
  EXPECT_THROW(
      api::g6_set_j_particle(0, 7, 7, 0.0, 0.0, 1.0, {}, {}, {}, {}, {}),
      g6::util::Error);
}

TEST_F(G6Api, ProtocolErrors) {
  ASSERT_EQ(api::g6_open(0), 0);
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 1.0, {}, {}, {}, {}, {1, 0, 0});
  const int idx = 5;
  const Vec3 x{}, v{};
  // firsthalf before set_ti.
  EXPECT_THROW(api::g6_calc_firsthalf(0, 1, &idx, &x, &v, 0.0), g6::util::Error);
  api::g6_set_ti(0, 0.0);
  api::g6_calc_firsthalf(0, 1, &idx, &x, &v, 0.0);
  // Double firsthalf.
  EXPECT_THROW(api::g6_calc_firsthalf(0, 1, &idx, &x, &v, 0.0), g6::util::Error);
  Vec3 acc, jerk;
  double pot;
  // Mismatched ni.
  EXPECT_THROW(api::g6_calc_lasthalf(0, 2, &acc, &jerk, &pot), g6::util::Error);
  EXPECT_EQ(api::g6_calc_lasthalf(0, 1, &acc, &jerk, &pot), 0);
}

TEST_F(G6Api, XunitControlsPositionGrid) {
  ASSERT_EQ(api::g6_open(0), 0);
  api::g6_set_xunit(0, 10);  // LSB = 2^-10
  EXPECT_EQ(api::g6_machine(0).config().fmt.pos_lsb, 0x1p-10);
  // Once particles are loaded the unit is frozen.
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 1.0, {}, {}, {}, {}, {1, 0, 0});
  EXPECT_THROW(api::g6_set_xunit(0, 20), g6::util::Error);
}

TEST_F(G6Api, TwoIndependentClusters) {
  ASSERT_EQ(api::g6_open(0), 0);
  ASSERT_EQ(api::g6_open(1), 0);
  api::g6_set_j_particle(0, 0, 0, 0.0, 0.0, 1.0, {}, {}, {}, {}, {1, 0, 0});
  EXPECT_EQ(api::g6_machine(0).j_count(), 1u);
  EXPECT_EQ(api::g6_machine(1).j_count(), 0u);
}

}  // namespace
