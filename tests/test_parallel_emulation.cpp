// Bit-identity of the thread-parallel emulation paths. Fixed-point
// accumulation is exactly associative, so the parallel board fan-out, the
// pairwise reduction tree and the concurrent simulated hosts must all
// reproduce the serial schedule bit for bit — at every thread count. These
// tests pin that property (and the counter aggregation) against explicit
// 1-, 2- and 8-lane pools, regardless of what the machine running the tests
// actually has.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/parallel_sim.hpp"
#include "grape6/machine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using g6::cluster::HostMode;
using g6::cluster::ParallelHostSystem;
using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;
using g6::hw::Grape6Machine;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::MachineConfig;
using g6::util::FixedVec3;
using g6::util::ThreadPool;

std::vector<JParticle> cloud(int n, const FormatSpec& fmt, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  std::vector<JParticle> js(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& p = js[static_cast<std::size_t>(j)];
    p.id = static_cast<std::uint32_t>(j);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = FixedVec3::quantize(
        {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-0.5, 0.5)},
        fmt.pos_lsb);
    p.v0 = {rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), 0.0};
  }
  return js;
}

std::vector<IParticle> batch_from(const std::vector<JParticle>& js,
                                  const FormatSpec& fmt, int stride) {
  std::vector<IParticle> batch;
  for (std::size_t j = 0; j < js.size(); j += static_cast<std::size_t>(stride))
    batch.push_back(
        g6::hw::make_i_particle(js[j].id, js[j].x0.to_vec3(), js[j].v0, fmt));
  return batch;
}

class ThreadCounts : public ::testing::TestWithParam<std::size_t> {};

// Machine-level: parallel boards + tree reduction vs the 1-lane schedule,
// including predictor state (predict_all at a non-trivial time) and the
// aggregated hardware counters. Two batches of different sizes exercise the
// grow/shrink reuse of the per-board scratch partials.
TEST_P(ThreadCounts, MachineComputeAndCountersBitIdentical) {
  const MachineConfig cfg = MachineConfig::mini(8, 2, 32);
  const FormatSpec fmt = cfg.fmt;
  const auto js = cloud(160, fmt, 31);
  const auto big = batch_from(js, fmt, 3);
  const auto small = batch_from(js, fmt, 40);
  const double eps2 = 1e-4;

  ThreadPool serial(1);
  ThreadPool pool(GetParam());
  Grape6Machine ref(cfg, &serial);
  Grape6Machine machine(cfg, &pool);
  ref.load(js);
  machine.load(js);

  for (double t : {0.0, 0.375}) {
    ref.predict_all(t);
    machine.predict_all(t);
    for (const auto& batch : {big, small}) {
      std::vector<ForceAccumulator> expect, out;
      ref.compute(batch, eps2, expect);
      machine.compute(batch, eps2, out);
      ASSERT_EQ(out.size(), batch.size());
      for (std::size_t k = 0; k < batch.size(); ++k)
        EXPECT_EQ(out[k], expect[k]) << "t=" << t << " k=" << k;
    }
  }
  EXPECT_EQ(machine.counters(), ref.counters());
}

// set_pool swaps schedules on a live machine without changing results.
TEST_P(ThreadCounts, MachineSetPoolKeepsResults) {
  const MachineConfig cfg = MachineConfig::mini(4, 2, 32);
  const auto js = cloud(96, cfg.fmt, 32);
  const auto batch = batch_from(js, cfg.fmt, 5);

  ThreadPool serial(1);
  Grape6Machine machine(cfg, &serial);
  machine.load(js);
  machine.predict_all(0.0);
  std::vector<ForceAccumulator> expect, out;
  machine.compute(batch, 1e-4, expect);

  ThreadPool pool(GetParam());
  machine.set_pool(&pool);
  machine.compute(batch, 1e-4, out);
  for (std::size_t k = 0; k < batch.size(); ++k) EXPECT_EQ(out[k], expect[k]) << k;

  machine.set_pool(nullptr);  // falls back to the process-wide shared pool
  machine.compute(batch, 1e-4, out);
  for (std::size_t k = 0; k < batch.size(); ++k) EXPECT_EQ(out[k], expect[k]) << k;
}

// Cluster-level: every host organisation, stepped by 1 lane vs N lanes, must
// agree on the accumulators AND on the byte accounting (the modeled wire
// traffic is part of the observable result). kMatrix2D runs the 16-host
// 4 x 4 grid, the shape the paper's figure 6 describes.
TEST_P(ThreadCounts, ClusterModesBitIdenticalAcrossThreadCounts) {
  const FormatSpec fmt;
  const auto js = cloud(96, fmt, 33);
  const auto batch = batch_from(js, fmt, 5);
  const double eps = 0.008;

  const std::pair<HostMode, int> modes[] = {{HostMode::kNaive, 6},
                                            {HostMode::kHardwareNet, 6},
                                            {HostMode::kMatrix2D, 16}};
  for (const auto& [mode, n_hosts] : modes) {
    ThreadPool serial(1);
    ThreadPool pool(GetParam());
    ParallelHostSystem a(n_hosts, mode, fmt, eps, {}, &serial);
    ParallelHostSystem b(n_hosts, mode, fmt, eps, {}, &pool);
    a.load(js);
    b.load(js);

    std::vector<ForceAccumulator> fa, fb;
    a.compute(0.0, batch, fa);
    b.compute(0.0, batch, fb);
    ASSERT_EQ(fa.size(), batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k)
      EXPECT_EQ(fa[k], fb[k]) << g6::cluster::host_mode_name(mode) << " k=" << k;

    // A correction round-trip, then a second compute at a later time, keeps
    // the two systems in lockstep (exercises update propagation + buffer
    // reuse under the parallel schedule).
    std::vector<JParticle> corrected(js.begin(), js.begin() + 8);
    a.update(corrected);
    b.update(corrected);
    a.compute(0.25, batch, fa);
    b.compute(0.25, batch, fb);
    for (std::size_t k = 0; k < batch.size(); ++k)
      EXPECT_EQ(fa[k], fb[k]) << g6::cluster::host_mode_name(mode) << " k=" << k;

    EXPECT_EQ(a.ethernet_bytes(), b.ethernet_bytes())
        << g6::cluster::host_mode_name(mode);
    EXPECT_EQ(a.hardware_bytes().pci, b.hardware_bytes().pci);
    EXPECT_EQ(a.hardware_bytes().lvds, b.hardware_bytes().lvds);
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ThreadCounts, ::testing::Values(1u, 2u, 8u));

}  // namespace
