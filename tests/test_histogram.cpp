// Tests for the histogram utility.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace {

using g6::util::BinScale;
using g6::util::Histogram;

TEST(Histogram, LinearBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(5), 1.0);
  EXPECT_EQ(h.count(9), 1.0);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, Weights) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.75, 0.5);
  EXPECT_EQ(h.count(0), 2.5);
  EXPECT_EQ(h.count(1), 0.5);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1.0);
  EXPECT_EQ(h.overflow(), 2.0);
  EXPECT_EQ(h.total(), 0.0);
}

TEST(Histogram, EdgesLinear) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.edge_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.edge_hi(3), 4.0);
  EXPECT_DOUBLE_EQ(h.center(1), 2.75);
}

TEST(Histogram, LogBinning) {
  Histogram h(1.0, 1000.0, 3, BinScale::kLog);
  h.add(2.0);    // [1, 10)
  h.add(50.0);   // [10, 100)
  h.add(500.0);  // [100, 1000)
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(1), 1.0);
  EXPECT_EQ(h.count(2), 1.0);
  EXPECT_NEAR(h.edge_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.center(1), std::sqrt(10.0 * 100.0), 1e-9);
}

TEST(Histogram, LogRejectsNonPositiveSamplesQuietly) {
  Histogram h(1.0, 100.0, 2, BinScale::kLog);
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.underflow(), 2.0);
  EXPECT_EQ(h.total(), 0.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), g6::util::Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), g6::util::Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 4, BinScale::kLog), g6::util::Error);
}

TEST(Histogram, AsciiRenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string art = h.to_ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  // Two lines, the first much longer in #'s.
  const auto first_line = art.substr(0, art.find('\n'));
  EXPECT_NE(first_line.find("####"), std::string::npos);
}

TEST(Histogram, BoundaryGoesToCorrectBin) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.0);
  EXPECT_EQ(h.count(0), 1.0);
  h.add(0.1);  // exactly an edge -> bin 1
  EXPECT_EQ(h.count(1), 1.0);
}

}  // namespace
