// Tests for the CampaignRunner: concurrent parameter-sweep jobs with
// per-job checkpoint directories, a resumable campaign manifest, and
// preemption/rerun driving every job to a state bit-identical to a
// single-shot run.
#include "run/campaign_runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "disk/disk_model.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "obs/metrics.hpp"
#include "run/checkpoint.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;

using g6::run::CampaignReport;
using g6::run::CampaignRunner;
using g6::run::CampaignSpec;
using g6::run::JobSpec;
using g6::run::JobStatus;

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("g6_campaign_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

JobSpec small_job(const std::string& name, std::uint64_t seed,
                  double eta = 0.05) {
  JobSpec job;
  job.name = name;
  job.backend = "cpu";
  job.n = 16;
  job.seed = seed;
  job.eta = eta;
  job.t_end = 0.5;
  job.checkpoint_every = 0.25;
  return job;
}

TEST(CampaignRunner, SweepCompletesAndRerunSkips) {
  CampaignSpec spec;
  spec.dir = test_dir("sweep");
  spec.jobs = {small_job("eta_lo", 1, 0.05), small_job("eta_hi", 2, 0.1),
               small_job("seed_c", 3, 0.05)};

  g6::util::ThreadPool pool(2);
  CampaignRunner runner(spec, &pool);
  const CampaignReport report = runner.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.all_done());
  for (const auto& res : report.jobs) {
    EXPECT_EQ(res.status, JobStatus::kCompleted) << res.name;
    EXPECT_EQ(res.final_time, 0.5) << res.name;
    EXPECT_GT(res.segments_written, 0u) << res.name;
    EXPECT_TRUE(g6::run::manifest_exists((fs::path(spec.dir) / res.name).string()));
  }
  EXPECT_TRUE(fs::exists(g6::run::campaign_manifest_path(spec.dir)));

  // A second invocation of the same campaign has nothing left to do.
  CampaignRunner again(spec, &pool);
  const CampaignReport rerun = again.run();
  EXPECT_EQ(rerun.skipped, 3u);
  EXPECT_EQ(rerun.completed, 0u);
  EXPECT_TRUE(rerun.all_done());
}

TEST(CampaignRunner, PreemptedCampaignDrivesToSingleShotState) {
  // Single-shot reference for the same job parameters, via a plain
  // RunManager in its own directory.
  JobSpec job = small_job("job", 9);
  job.dt_max = 0x1p-5;  // dozens of block steps, so the budget actually bites
  const std::string ref_dir = test_dir("preempt_ref");
  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(job.n);
  dcfg.seed = job.seed;
  for (auto& pp : dcfg.protoplanets) pp.mass = job.mpp;
  auto disk = g6::disk::make_disk(dcfg);
  g6::nbody::ParticleSystem ref_ps = std::move(disk.system);
  g6::nbody::CpuDirectBackend ref_backend(job.eps);
  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = job.eta;
  icfg.eta_init = job.eta / 2.0;
  icfg.dt_max = job.dt_max;
  g6::nbody::HermiteIntegrator ref_integ(ref_ps, ref_backend, icfg);
  g6::run::RunConfig rcfg;
  rcfg.checkpoint_dir = ref_dir;
  rcfg.t_end = job.t_end;
  rcfg.checkpoint_every = job.checkpoint_every;
  rcfg.ic_seed = job.seed;
  g6::run::RunManager ref_mgr(ref_integ, rcfg);
  ASSERT_EQ(ref_mgr.run().outcome, g6::run::RunOutcome::kCompleted);

  // The campaign version of the same job, preempted every few block steps.
  CampaignSpec spec;
  spec.dir = test_dir("preempt");
  spec.jobs = {job};
  spec.step_budget = 3;
  g6::util::ThreadPool pool(2);
  bool all_done = false;
  bool ever_preempted = false;
  for (int invocation = 0; invocation < 300 && !all_done; ++invocation) {
    CampaignRunner runner(spec, &pool);
    const CampaignReport report = runner.run();
    EXPECT_EQ(report.failed, 0u);
    ever_preempted = ever_preempted || report.preempted > 0;
    all_done = report.all_done();
  }
  ASSERT_TRUE(all_done) << "campaign never finished under preemption";
  EXPECT_TRUE(ever_preempted);

  // Both directories' final checkpoints must hold identical particle state.
  const auto last_ckpt = [](const std::string& dir) {
    const auto man = g6::run::read_manifest(dir);
    return g6::run::read_checkpoint_file(
        (fs::path(dir) / man.segments.back().file).string());
  };
  const auto ref = last_ckpt(ref_dir);
  const auto got = last_ckpt((fs::path(spec.dir) / job.name).string());
  EXPECT_EQ(got.t_sys, ref.t_sys);
  EXPECT_EQ(got.stats.blocks, ref.stats.blocks);
  EXPECT_EQ(got.stats.steps, ref.stats.steps);
  ASSERT_EQ(got.system.size(), ref.system.size());
  for (std::size_t i = 0; i < ref.system.size(); ++i) {
    EXPECT_EQ(got.system.pos(i), ref.system.pos(i)) << i;
    EXPECT_EQ(got.system.vel(i), ref.system.vel(i)) << i;
    EXPECT_EQ(got.system.acc(i), ref.system.acc(i)) << i;
    EXPECT_EQ(got.system.jerk(i), ref.system.jerk(i)) << i;
    EXPECT_EQ(got.system.time(i), ref.system.time(i)) << i;
    EXPECT_EQ(got.system.dt(i), ref.system.dt(i)) << i;
  }
}

TEST(CampaignRunner, MixedBackendSweepCompletes) {
  CampaignSpec spec;
  spec.dir = test_dir("mixed");
  JobSpec cpu = small_job("cpu_job", 4);
  JobSpec grape = small_job("grape_job", 4);
  grape.backend = "grape";
  JobSpec cluster = small_job("cluster_job", 4);
  cluster.backend = "cluster";
  cluster.hosts = 2;
  spec.jobs = {cpu, grape, cluster};
  g6::util::ThreadPool pool(3);
  const CampaignReport report = CampaignRunner(spec, &pool).run();
  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(report.completed, 3u);
}

TEST(CampaignRunner, FailedJobIsRecordedAndOthersContinue) {
  CampaignSpec spec;
  spec.dir = test_dir("failed");
  JobSpec bad = small_job("bad", 5);
  bad.backend = "tpu";  // not a thing
  spec.jobs = {small_job("good", 5), bad};
  g6::util::ThreadPool pool(2);
  const CampaignReport report = CampaignRunner(spec, &pool).run();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.all_done());
  EXPECT_EQ(report.jobs[1].status, JobStatus::kFailed);
  EXPECT_NE(report.jobs[1].error.find("unknown backend"), std::string::npos)
      << report.jobs[1].error;
}

TEST(CampaignRunner, DuplicateJobNamesRejected) {
  CampaignSpec spec;
  spec.dir = test_dir("dupe");
  spec.jobs = {small_job("same", 1), small_job("same", 2)};
  EXPECT_THROW(CampaignRunner runner(spec), g6::util::Error);
}

TEST(CampaignRunner, PublishesRunMetrics) {
  auto& reg = g6::obs::MetricsRegistry::global();
  const auto completed_before = reg.counter("g6.run.jobs_completed").value();
  const auto segments_before = reg.counter("g6.run.segments_written").value();

  CampaignSpec spec;
  spec.dir = test_dir("metrics");
  spec.jobs = {small_job("a", 6), small_job("b", 7)};
  g6::util::ThreadPool pool(2);
  ASSERT_TRUE(CampaignRunner(spec, &pool).run().all_done());

  EXPECT_EQ(reg.counter("g6.run.jobs_completed").value(), completed_before + 2);
  EXPECT_GT(reg.counter("g6.run.segments_written").value(), segments_before);
}

}  // namespace
