// Tests for the serving layer's ResultCache — LRU order, byte budget,
// eviction accounting, disk spill/warm restart, corrupt-spill recovery —
// plus the end-to-end acceptance property: a duplicate submission is served
// from the cache bit-identically with zero integrator steps
// (docs/SERVING.md).
#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"

namespace {

namespace fs = std::filesystem;

using g6::serve::JobRequest;
using g6::serve::ResultCache;
using g6::serve::ResultCacheConfig;
using g6::serve::Scheduler;
using g6::serve::SchedulerConfig;
using g6::serve::ServeJobState;
using g6::serve::SubmitOutcome;

std::string scratch_dir(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("g6_serve_cache_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string payload(char fill, std::size_t size) {
  return std::string(size, fill);
}

std::uint64_t counter_value(const char* name) {
  return g6::obs::MetricsRegistry::global().counter(name).value();
}

}  // namespace

TEST(ResultCache, HitMissAndAccounting) {
  ResultCache cache;
  const std::uint64_t hits0 = cache.hits(), misses0 = cache.misses();

  std::string out;
  EXPECT_FALSE(cache.lookup(1, &out));
  EXPECT_EQ(cache.misses() - misses0, 1u);

  cache.insert(1, payload('a', 100));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
  ASSERT_TRUE(cache.lookup(1, &out));
  EXPECT_EQ(out, payload('a', 100));
  EXPECT_EQ(cache.hits() - hits0, 1u);

  // contains() is a pure peek: no hit/miss movement.
  const std::uint64_t hits1 = cache.hits(), misses1 = cache.misses();
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.hits(), hits1);
  EXPECT_EQ(cache.misses(), misses1);
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtByteBudget) {
  ResultCacheConfig cfg;
  cfg.max_bytes = 1000;
  ResultCache cache(cfg);
  const std::uint64_t evict0 = cache.evictions();

  cache.insert(1, payload('a', 400));
  cache.insert(2, payload('b', 400));
  cache.insert(3, payload('c', 400));  // budget forces key 1 out

  std::string out;
  EXPECT_FALSE(cache.lookup(1, &out));
  EXPECT_TRUE(cache.lookup(2, &out));
  EXPECT_TRUE(cache.lookup(3, &out));
  EXPECT_EQ(cache.evictions() - evict0, 1u);
  EXPECT_LE(cache.bytes(), cfg.max_bytes);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ResultCache, LookupPromotesAgainstEviction) {
  ResultCacheConfig cfg;
  cfg.max_bytes = 1000;
  ResultCache cache(cfg);

  cache.insert(1, payload('a', 400));
  cache.insert(2, payload('b', 400));
  std::string out;
  ASSERT_TRUE(cache.lookup(1, &out));   // 1 becomes most recent
  cache.insert(3, payload('c', 400));   // so 2 is the eviction victim

  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(ResultCache, OversizedPayloadNeverAdmittedToMemory) {
  ResultCacheConfig cfg;
  cfg.max_bytes = 100;
  ResultCache cache(cfg);
  cache.insert(1, payload('x', 500));  // larger than the whole budget
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCache, DiskSpillSurvivesRestart) {
  const std::string dir = scratch_dir("spill");
  const std::uint64_t disk0 = counter_value("g6.serve.cache.disk_hits");

  ResultCacheConfig cfg;
  cfg.persist_dir = dir;
  {
    ResultCache first(cfg);
    first.insert(0xabcdef, payload('s', 256));
  }
  // A fresh cache on the same directory starts cold in memory but warm on
  // disk: the lookup is a hit AND a disk_hit, then re-admitted to memory.
  ResultCache second(cfg);
  EXPECT_EQ(second.entries(), 0u);
  std::string out;
  ASSERT_TRUE(second.lookup(0xabcdef, &out));
  EXPECT_EQ(out, payload('s', 256));
  EXPECT_EQ(counter_value("g6.serve.cache.disk_hits") - disk0, 1u);
  EXPECT_EQ(second.entries(), 1u);

  // Second lookup is served from memory: no further disk hit.
  ASSERT_TRUE(second.lookup(0xabcdef, &out));
  EXPECT_EQ(counter_value("g6.serve.cache.disk_hits") - disk0, 1u);
}

TEST(ResultCache, CorruptSpillDeletedAndTreatedAsMiss) {
  const std::string dir = scratch_dir("corrupt");
  ResultCacheConfig cfg;
  cfg.persist_dir = dir;
  {
    ResultCache writer(cfg);
    writer.insert(7, payload('k', 64));
  }
  // Find the spill file and truncate it mid-payload.
  fs::path spill;
  for (const auto& e : fs::directory_iterator(dir)) spill = e.path();
  ASSERT_FALSE(spill.empty());
  {
    std::ofstream f(spill, std::ios::binary | std::ios::trunc);
    f << "G6RCACH1 but then garbage";
  }
  ResultCache reader(cfg);
  std::string out;
  EXPECT_FALSE(reader.lookup(7, &out));
  EXPECT_FALSE(fs::exists(spill)) << "corrupt spill file must be deleted";
}

// The acceptance property of the serving tentpole: an identical second
// submission is answered from the cache with BIT-IDENTICAL result bytes,
// ZERO additional integrator steps, and exactly one g6.serve.cache.hits
// increment — recompute-free by construction, not by luck.
TEST(ResultCache, DuplicateJobServedBitIdenticallyWithZeroSteps) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;
  Scheduler sched(cfg, cache);
  sched.start();

  JobRequest req;
  req.n = 64;
  req.seed = 424242;
  req.t_end = 0.125;

  const SubmitOutcome cold = sched.submit(req);
  ASSERT_TRUE(cold.accepted);
  EXPECT_FALSE(cold.cached);
  const auto cold_rec = sched.wait(cold.id, 120.0);
  ASSERT_TRUE(cold_rec.has_value());
  ASSERT_EQ(cold_rec->state, ServeJobState::kDone);
  std::string cold_bytes;
  ASSERT_TRUE(sched.result(cold.id, &cold_bytes));
  ASSERT_FALSE(cold_bytes.empty());

  const std::uint64_t hits_before = cache.hits();
  const std::uint64_t steps_before = counter_value("g6.serve.steps_executed");

  const SubmitOutcome dup = sched.submit(req);
  ASSERT_TRUE(dup.accepted);
  EXPECT_TRUE(dup.cached);
  EXPECT_EQ(dup.key, cold.key);
  const auto dup_rec = sched.wait(dup.id, 10.0);
  ASSERT_TRUE(dup_rec.has_value());
  EXPECT_EQ(dup_rec->state, ServeJobState::kDone);
  EXPECT_TRUE(dup_rec->cache_hit);

  std::string dup_bytes;
  ASSERT_TRUE(sched.result(dup.id, &dup_bytes));
  EXPECT_EQ(dup_bytes, cold_bytes) << "cache must serve bit-identical bytes";
  EXPECT_EQ(cache.hits() - hits_before, 1u);
  EXPECT_EQ(counter_value("g6.serve.steps_executed") - steps_before, 0u)
      << "cache hit must not run the integrator";
  EXPECT_EQ(dup_rec->result_crc32, cold_rec->result_crc32);
  sched.stop();
}

// no_cache opts a request out of both cache read and write.
TEST(ResultCache, NoCacheRequestsAlwaysCompute) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;
  Scheduler sched(cfg, cache);
  sched.start();

  JobRequest req;
  req.n = 48;
  req.seed = 515151;
  req.t_end = 0.0625;
  req.no_cache = true;

  const SubmitOutcome a = sched.submit(req);
  ASSERT_TRUE(a.accepted);
  EXPECT_FALSE(a.cached);
  ASSERT_TRUE(sched.wait(a.id, 120.0).has_value());
  EXPECT_FALSE(cache.contains(a.key));

  const SubmitOutcome b = sched.submit(req);
  ASSERT_TRUE(b.accepted);
  EXPECT_FALSE(b.cached) << "no_cache submissions must not read the cache";
  ASSERT_TRUE(sched.wait(b.id, 120.0).has_value());
  sched.stop();
}

#ifdef G6_OBS_DISABLED

// Stripped-observability build: the cache (metrics are always compiled) and
// the whole submit -> compute -> duplicate-hit loop must work unchanged.
TEST(ServeCacheDisabled, DuplicateStillServedFromCache) {
  ResultCache cache;
  SchedulerConfig cfg;
  cfg.workers = 1;
  Scheduler sched(cfg, cache);
  sched.start();
  JobRequest req;
  req.n = 32;
  req.seed = 9;
  req.t_end = 0.0625;
  const SubmitOutcome cold = sched.submit(req);
  ASSERT_TRUE(cold.accepted);
  ASSERT_TRUE(sched.wait(cold.id, 120.0).has_value());
  const SubmitOutcome dup = sched.submit(req);
  ASSERT_TRUE(dup.accepted);
  EXPECT_TRUE(dup.cached);
  sched.stop();
}

#endif  // G6_OBS_DISABLED
