// Tests for the Kepler solver and element/state conversions.
#include "disk/kepler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using g6::disk::elements_to_state;
using g6::disk::OrbitalElements;
using g6::disk::orbital_period;
using g6::disk::solve_kepler;
using g6::disk::state_to_elements;
using g6::disk::StateVector;
using g6::util::Vec3;

constexpr double kPi = std::numbers::pi;

// --- Kepler equation --------------------------------------------------------

class KeplerGrid : public ::testing::TestWithParam<double> {};  // param = e

TEST_P(KeplerGrid, ResidualTiny) {
  const double e = GetParam();
  for (int k = 0; k <= 40; ++k) {
    const double m = 2.0 * kPi * k / 40.0;
    const double E = solve_kepler(m, e);
    const double resid = E - e * std::sin(E) - std::fmod(m, 2.0 * kPi);
    EXPECT_NEAR(std::remainder(resid, 2.0 * kPi), 0.0, 1e-12)
        << "e=" << e << " M=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Eccentricities, KeplerGrid,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.6, 0.9, 0.99,
                                           0.999));

TEST(Kepler, CircularIdentity) {
  EXPECT_DOUBLE_EQ(solve_kepler(1.234, 0.0), 1.234);
}

TEST(Kepler, NegativeMeanAnomalyWraps) {
  const double E = solve_kepler(-0.5, 0.3);
  const double resid = E - 0.3 * std::sin(E) - (2.0 * kPi - 0.5);
  EXPECT_NEAR(std::remainder(resid, 2.0 * kPi), 0.0, 1e-12);
}

TEST(Kepler, RejectsUnboundEccentricity) {
  EXPECT_THROW(solve_kepler(1.0, 1.0), g6::util::Error);
  EXPECT_THROW(solve_kepler(1.0, -0.1), g6::util::Error);
}

// --- elements -> state -------------------------------------------------------

TEST(Elements, CircularOrbitSpeed) {
  OrbitalElements el;
  el.a = 20.0;
  const StateVector sv = elements_to_state(el, 1.0);
  EXPECT_NEAR(norm(sv.pos), 20.0, 1e-12);
  EXPECT_NEAR(norm(sv.vel), std::sqrt(1.0 / 20.0), 1e-12);
  EXPECT_NEAR(dot(sv.pos, sv.vel), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(sv.pos.z, 0.0);
}

TEST(Elements, PericentreApocentreDistances) {
  OrbitalElements el;
  el.a = 10.0;
  el.e = 0.5;
  el.M = 0.0;  // at pericentre
  StateVector sv = elements_to_state(el, 1.0);
  EXPECT_NEAR(norm(sv.pos), 10.0 * (1.0 - 0.5), 1e-12);
  el.M = kPi;  // apocentre
  sv = elements_to_state(el, 1.0);
  EXPECT_NEAR(norm(sv.pos), 10.0 * (1.0 + 0.5), 1e-12);
}

TEST(Elements, VisVivaHolds) {
  OrbitalElements el;
  el.a = 5.0;
  el.e = 0.3;
  el.inc = 0.4;
  el.Omega = 1.0;
  el.omega = 2.0;
  el.M = 2.5;
  const double gm = 1.0;
  const StateVector sv = elements_to_state(el, gm);
  const double r = norm(sv.pos);
  const double v2 = norm2(sv.vel);
  EXPECT_NEAR(v2, gm * (2.0 / r - 1.0 / el.a), 1e-12);
}

TEST(Elements, AngularMomentumMagnitude) {
  OrbitalElements el;
  el.a = 3.0;
  el.e = 0.25;
  el.inc = 0.7;
  const StateVector sv = elements_to_state(el, 1.0);
  const double h = norm(cross(sv.pos, sv.vel));
  EXPECT_NEAR(h, std::sqrt(3.0 * (1.0 - 0.25 * 0.25)), 1e-12);
}

TEST(Elements, InclinationTiltsPlane) {
  OrbitalElements el;
  el.a = 1.0;
  el.inc = 0.3;
  el.M = kPi / 2.0;
  const StateVector sv = elements_to_state(el, 1.0);
  const Vec3 h = cross(sv.pos, sv.vel);
  EXPECT_NEAR(std::acos(h.z / norm(h)), 0.3, 1e-12);
}

TEST(Elements, InvalidInputsThrow) {
  OrbitalElements el;
  el.a = -1.0;
  EXPECT_THROW(elements_to_state(el, 1.0), g6::util::Error);
  el.a = 1.0;
  el.e = 1.5;
  EXPECT_THROW(elements_to_state(el, 1.0), g6::util::Error);
  el.e = 0.0;
  EXPECT_THROW(elements_to_state(el, 0.0), g6::util::Error);
}

// --- round trip --------------------------------------------------------------

struct RoundTripCase {
  double a, e, inc, Omega, omega, M;
};

class ElementsRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ElementsRoundTrip, StateToElementsInvertsElementsToState) {
  const auto& c = GetParam();
  OrbitalElements el;
  el.a = c.a;
  el.e = c.e;
  el.inc = c.inc;
  el.Omega = c.Omega;
  el.omega = c.omega;
  el.M = c.M;
  const StateVector sv = elements_to_state(el, 1.0);
  const OrbitalElements back = state_to_elements(sv, 1.0);
  EXPECT_NEAR(back.a, el.a, 1e-9 * el.a);
  EXPECT_NEAR(back.e, el.e, 1e-9);
  EXPECT_NEAR(back.inc, el.inc, 1e-9);
  if (el.e > 1e-6 && el.inc > 1e-6) {
    EXPECT_NEAR(std::remainder(back.Omega - el.Omega, 2.0 * kPi), 0.0, 1e-8);
    EXPECT_NEAR(std::remainder(back.omega - el.omega, 2.0 * kPi), 0.0, 1e-7);
    EXPECT_NEAR(std::remainder(back.M - el.M, 2.0 * kPi), 0.0, 1e-7);
  }
  // The reconstructed state must match regardless of angle degeneracies.
  const StateVector sv2 = elements_to_state(back, 1.0);
  EXPECT_NEAR(norm(sv2.pos - sv.pos), 0.0, 1e-8 * el.a);
  EXPECT_NEAR(norm(sv2.vel - sv.vel), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ElementsRoundTrip,
    ::testing::Values(RoundTripCase{1.0, 0.1, 0.2, 0.3, 0.4, 0.5},
                      RoundTripCase{20.0, 0.002, 0.001, 1.0, 2.0, 3.0},
                      RoundTripCase{35.0, 0.5, 1.2, 4.0, 5.0, 6.0},
                      RoundTripCase{15.0, 0.9, 0.05, 0.0, 0.0, 1.0},
                      RoundTripCase{5.0, 0.0, 0.0, 0.0, 0.0, 2.0},     // circular planar
                      RoundTripCase{5.0, 0.3, 0.0, 0.0, 1.0, 2.0},     // planar
                      RoundTripCase{5.0, 0.0, 0.5, 1.0, 0.0, 2.0}));   // circular tilted

TEST(StateToElements, RejectsUnbound) {
  StateVector sv;
  sv.pos = {1.0, 0.0, 0.0};
  sv.vel = {0.0, 2.0, 0.0};  // v > v_escape
  EXPECT_THROW(state_to_elements(sv, 1.0), g6::util::Error);
}

TEST(StateToElements, RadialInfallHasZeroAngularMomentum) {
  StateVector sv;
  sv.pos = {1.0, 0.0, 0.0};
  sv.vel = {-0.1, 0.0, 0.0};
  const OrbitalElements el = state_to_elements(sv, 1.0);
  EXPECT_NEAR(el.e, 1.0, 1e-9);
}

// --- period ------------------------------------------------------------------

TEST(Period, KeplerThirdLaw) {
  EXPECT_NEAR(orbital_period(1.0, 1.0), 2.0 * kPi, 1e-12);
  EXPECT_NEAR(orbital_period(4.0, 1.0), 2.0 * kPi * 8.0, 1e-12);
  // Paper scale: ~100-year orbits in the Uranus-Neptune region.
  const double years_at_20au = orbital_period(20.0, 1.0) / (2.0 * kPi);
  EXPECT_NEAR(years_at_20au, std::sqrt(20.0 * 20.0 * 20.0), 1e-9);  // 89.4 yr
}

TEST(Period, InvalidThrow) {
  EXPECT_THROW(orbital_period(-1.0, 1.0), g6::util::Error);
  EXPECT_THROW(orbital_period(1.0, 0.0), g6::util::Error);
}

// Mean-anomaly propagation consistency: advancing M by n*dt equals the
// two-body orbit integrated around the Sun.
TEST(Elements, MeanMotionAdvancesPhase) {
  OrbitalElements el;
  el.a = 2.0;
  el.e = 0.2;
  el.M = 0.3;
  const double gm = 1.0;
  const double n = std::sqrt(gm / (el.a * el.a * el.a));
  const double dt = 0.7;
  OrbitalElements later = el;
  later.M = el.M + n * dt;
  const StateVector s0 = elements_to_state(el, gm);
  const StateVector s1 = elements_to_state(later, gm);
  // Energy and |h| conserved along the orbit.
  EXPECT_NEAR(0.5 * norm2(s0.vel) - gm / norm(s0.pos),
              0.5 * norm2(s1.vel) - gm / norm(s1.pos), 1e-12);
  EXPECT_NEAR(norm(cross(s0.pos, s0.vel)), norm(cross(s1.pos, s1.vel)), 1e-12);
}

}  // namespace
