// Tests for the SoA particle container and the unit-system constants.
#include "nbody/particle.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "util/units.hpp"

namespace {

using g6::nbody::ParticleSystem;
using g6::util::Vec3;

TEST(ParticleSystem, StartsEmpty) {
  ParticleSystem ps;
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.total_mass(), 0.0);
}

TEST(ParticleSystem, SizedConstructionZeroInitialises) {
  ParticleSystem ps(5);
  EXPECT_EQ(ps.size(), 5u);
  EXPECT_EQ(ps.mass(3), 0.0);
  EXPECT_EQ(ps.pos(3), Vec3(0, 0, 0));
  EXPECT_EQ(ps.time(3), 0.0);
  EXPECT_EQ(ps.id(3), 3u);
}

TEST(ParticleSystem, AddAssignsSequentialIds) {
  ParticleSystem ps;
  EXPECT_EQ(ps.add(1.0, {1, 0, 0}, {0, 1, 0}), 0u);
  EXPECT_EQ(ps.add(2.0, {2, 0, 0}, {0, 2, 0}), 1u);
  EXPECT_EQ(ps.id(0), 0u);
  EXPECT_EQ(ps.id(1), 1u);
  EXPECT_EQ(ps.mass(1), 2.0);
  EXPECT_EQ(ps.vel(1), Vec3(0, 2, 0));
}

TEST(ParticleSystem, FieldMutation) {
  ParticleSystem ps;
  ps.add(1.0, {}, {});
  ps.pos(0) = {1, 2, 3};
  ps.acc(0) = {4, 5, 6};
  ps.jerk(0) = {7, 8, 9};
  ps.time(0) = 2.5;
  ps.dt(0) = 0.25;
  ps.pot(0) = -1.5;
  EXPECT_EQ(ps.pos(0), Vec3(1, 2, 3));
  EXPECT_EQ(ps.acc(0), Vec3(4, 5, 6));
  EXPECT_EQ(ps.jerk(0), Vec3(7, 8, 9));
  EXPECT_EQ(ps.time(0), 2.5);
  EXPECT_EQ(ps.dt(0), 0.25);
  EXPECT_EQ(ps.pot(0), -1.5);
}

TEST(ParticleSystem, SpansViewLiveData) {
  ParticleSystem ps;
  ps.add(1.0, {1, 0, 0}, {});
  ps.add(2.0, {2, 0, 0}, {});
  const auto masses = ps.masses();
  ASSERT_EQ(masses.size(), 2u);
  EXPECT_EQ(masses[1], 2.0);
  ps.mass(1) = 5.0;
  EXPECT_EQ(masses[1], 5.0);  // span aliases storage
  EXPECT_EQ(ps.positions()[0], Vec3(1, 0, 0));
  EXPECT_EQ(ps.times().size(), 2u);
  EXPECT_EQ(ps.dts().size(), 2u);
}

TEST(ParticleSystem, TotalMass) {
  ParticleSystem ps;
  ps.add(1.5, {}, {});
  ps.add(2.5, {}, {});
  EXPECT_DOUBLE_EQ(ps.total_mass(), 4.0);
}

TEST(Units, PaperConventions) {
  EXPECT_EQ(g6::units::G, 1.0);
  EXPECT_EQ(g6::units::Msun, 1.0);
  EXPECT_EQ(g6::units::AU, 1.0);
  // "1 year is 2 pi time units" (paper §2).
  EXPECT_DOUBLE_EQ(g6::units::year, 2.0 * std::numbers::pi);
  EXPECT_DOUBLE_EQ(g6::units::to_years(2.0 * std::numbers::pi), 1.0);
  EXPECT_DOUBLE_EQ(g6::units::from_years(10.0), 20.0 * std::numbers::pi);
}

TEST(Units, EarthMassScale) {
  EXPECT_NEAR(g6::units::Mearth, 3.0e-6, 1e-7);
  // The paper's protoplanets (1e-5 M_sun) are ~3.3 Earth masses.
  EXPECT_NEAR(1.0e-5 / g6::units::Mearth, 3.33, 0.05);
}

}  // namespace
