// Tests for the classic IC generators (Plummer sphere, cold sphere).
#include "nbody/models.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"

namespace {

using g6::nbody::cold_uniform_sphere;
using g6::nbody::ParticleSystem;
using g6::nbody::plummer_sphere;
using g6::nbody::virial_ratio;
using g6::util::Rng;

TEST(Plummer, BasicProperties) {
  Rng rng(42);
  const ParticleSystem ps = plummer_sphere(2000, 1.0, 1.0, rng);
  EXPECT_EQ(ps.size(), 2000u);
  EXPECT_NEAR(ps.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(norm(g6::nbody::center_of_mass(ps)), 0.0, 1e-12);
  EXPECT_NEAR(norm(g6::nbody::center_of_mass_velocity(ps)), 0.0, 1e-12);
}

TEST(Plummer, HalfMassRadius) {
  // The Plummer half-mass radius is ~1.3048 scale radii.
  Rng rng(1);
  const ParticleSystem ps = plummer_sphere(20000, 1.0, 1.0, rng);
  std::vector<double> r(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) r[i] = norm(ps.pos(i));
  std::nth_element(r.begin(), r.begin() + r.size() / 2, r.end());
  EXPECT_NEAR(r[r.size() / 2], 1.3048, 0.06);
}

TEST(Plummer, VirialEquilibrium) {
  Rng rng(2);
  const ParticleSystem ps = plummer_sphere(20000, 1.0, 1.0, rng);
  EXPECT_NEAR(virial_ratio(ps), 0.5, 0.02);
}

TEST(Plummer, ValidatesParameters) {
  Rng rng(3);
  EXPECT_THROW(plummer_sphere(0, 1.0, 1.0, rng), g6::util::Error);
  EXPECT_THROW(plummer_sphere(10, -1.0, 1.0, rng), g6::util::Error);
  EXPECT_THROW(plummer_sphere(10, 1.0, 0.0, rng), g6::util::Error);
}

TEST(Plummer, StaysNearEquilibriumWhenIntegrated) {
  // A (softened) Plummer model integrated for a fraction of a crossing time
  // stays near virial equilibrium — the classic GRAPE smoke test.
  Rng rng(4);
  ParticleSystem ps = plummer_sphere(300, 1.0, 1.0, rng);
  g6::nbody::CpuDirectBackend backend(0.02);
  g6::nbody::IntegratorConfig cfg;
  cfg.eta = 0.02;
  cfg.dt_max = 0x1p-4;
  g6::nbody::HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, 0.02, 0.0).total();
  integ.evolve(1.0);
  const double e1 = g6::nbody::compute_energy(ps, 0.02, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-5);
  EXPECT_NEAR(virial_ratio(ps, 0.02), 0.5, 0.15);
}

TEST(ColdSphere, UniformDensityProfile) {
  Rng rng(5);
  const ParticleSystem ps = cold_uniform_sphere(20000, 1.0, 2.0, rng);
  // Mass within r scales as r^3: half the mass inside 2^(1/3)... check the
  // radius enclosing half the mass ~ 2 * 0.5^(1/3) = 1.5874.
  std::vector<double> r(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) r[i] = norm(ps.pos(i));
  std::nth_element(r.begin(), r.begin() + r.size() / 2, r.end());
  EXPECT_NEAR(r[r.size() / 2], 2.0 * std::cbrt(0.5), 0.03);
  // The COM shift can push points marginally past the nominal radius.
  for (double ri : r) EXPECT_LE(ri, 2.05);
}

TEST(ColdSphere, ZeroVelocities) {
  Rng rng(6);
  const ParticleSystem ps = cold_uniform_sphere(100, 1.0, 1.0, rng);
  // COM correction is the only velocity contribution: essentially zero.
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_NEAR(norm(ps.vel(i)), 0.0, 1e-12);
}

TEST(ColdSphere, CollapsesWhenIntegrated) {
  // Violent relaxation: the cold sphere contracts; kinetic energy appears.
  Rng rng(7);
  ParticleSystem ps = cold_uniform_sphere(200, 1.0, 1.0, rng);
  g6::nbody::CpuDirectBackend backend(0.05);
  g6::nbody::IntegratorConfig cfg;
  cfg.eta = 0.02;
  cfg.dt_max = 0x1p-5;
  g6::nbody::HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  integ.evolve(1.0);  // free-fall time is ~ pi/2 * sqrt(R^3/(2GM)) ~ 1.11
  const auto rep = g6::nbody::compute_energy(ps, 0.05, 0.0);
  EXPECT_GT(rep.kinetic, 0.05);  // falling fast by t = 1
}

}  // namespace
