// Tests for power-of-two timestep quantisation and the block scheduler.
#include "nbody/blockstep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using g6::nbody::BlockScheduler;
using g6::nbody::is_commensurate;
using g6::nbody::is_power_of_two_step;
using g6::nbody::next_block_dt;
using g6::nbody::quantize_dt;

TEST(PowerOfTwo, Recognition) {
  EXPECT_TRUE(is_power_of_two_step(1.0));
  EXPECT_TRUE(is_power_of_two_step(0.5));
  EXPECT_TRUE(is_power_of_two_step(0x1p-30));
  EXPECT_TRUE(is_power_of_two_step(4.0));
  EXPECT_FALSE(is_power_of_two_step(0.3));
  EXPECT_FALSE(is_power_of_two_step(0.75));
  EXPECT_FALSE(is_power_of_two_step(0.0));
  EXPECT_FALSE(is_power_of_two_step(-0.5));
}

TEST(QuantizeDt, LargestPowerOfTwoBelow) {
  EXPECT_DOUBLE_EQ(quantize_dt(0.3, 1.0, 0x1p-30), 0.25);
  EXPECT_DOUBLE_EQ(quantize_dt(0.25, 1.0, 0x1p-30), 0.25);
  EXPECT_DOUBLE_EQ(quantize_dt(0.9, 1.0, 0x1p-30), 0.5);
  EXPECT_DOUBLE_EQ(quantize_dt(1.7, 1.0, 0x1p-30), 1.0);  // clamp to dt_max
}

TEST(QuantizeDt, ClampsToMin) {
  EXPECT_DOUBLE_EQ(quantize_dt(1e-30, 1.0, 0x1p-20), 0x1p-20);
  EXPECT_DOUBLE_EQ(quantize_dt(0.0, 1.0, 0x1p-20), 0x1p-20);
  EXPECT_DOUBLE_EQ(quantize_dt(-1.0, 1.0, 0x1p-20), 0x1p-20);
}

TEST(QuantizeDt, ValidatesBounds) {
  EXPECT_THROW(quantize_dt(0.1, 0.3, 0x1p-10), g6::util::Error);   // dt_max not 2^k
  EXPECT_THROW(quantize_dt(0.1, 0.5, 0.3), g6::util::Error);       // dt_min not 2^k
  EXPECT_THROW(quantize_dt(0.1, 0x1p-10, 1.0), g6::util::Error);   // min > max
}

TEST(Commensurate, ExactChecks) {
  EXPECT_TRUE(is_commensurate(0.0, 0.25));
  EXPECT_TRUE(is_commensurate(1.75, 0.25));
  EXPECT_FALSE(is_commensurate(1.8, 0.25));
  EXPECT_TRUE(is_commensurate(800.0, 32.0));  // 800 = 25 * 32
  EXPECT_FALSE(is_commensurate(800.0, 64.0));
}

TEST(NextBlockDt, ShrinksFreely) {
  // From 0.25 down to 0.03125 in one call (three halvings).
  EXPECT_DOUBLE_EQ(next_block_dt(0.25, 0.25, 0.04, 1.0, 0x1p-30), 0x1p-5);
}

TEST(NextBlockDt, GrowsOnlyOnEvenBoundary) {
  // t = 0.5 is commensurate with 0.5 (= 2 * 0.25): may double.
  EXPECT_DOUBLE_EQ(next_block_dt(0.5, 0.25, 10.0, 1.0, 0x1p-30), 0.5);
  // t = 0.75 is NOT commensurate with 0.5: must hold.
  EXPECT_DOUBLE_EQ(next_block_dt(0.75, 0.25, 10.0, 1.0, 0x1p-30), 0.25);
}

TEST(NextBlockDt, AtMostOneDoubling) {
  EXPECT_DOUBLE_EQ(next_block_dt(1.0, 0.25, 100.0, 4.0, 0x1p-30), 0.5);
}

TEST(NextBlockDt, HoldsWhenRequestInBand) {
  // dt_req in [dt, 2dt) keeps the current step.
  EXPECT_DOUBLE_EQ(next_block_dt(0.5, 0.25, 0.3, 1.0, 0x1p-30), 0.25);
}

TEST(NextBlockDt, RespectsBounds) {
  EXPECT_DOUBLE_EQ(next_block_dt(1.0, 1.0, 100.0, 1.0, 0x1p-30), 1.0);
  EXPECT_DOUBLE_EQ(next_block_dt(0.5, 0x1p-20, 0.0, 1.0, 0x1p-20), 0x1p-20);
}

// Property: repeated application of the update rule keeps dt a power of two
// and keeps every event time commensurate with the current dt.
TEST(NextBlockDt, InvariantUnderRandomWalk) {
  g6::util::Rng rng(123);
  double t = 0.0, dt = 0.25;
  const double dt_max = 1.0, dt_min = 0x1p-24;
  for (int step = 0; step < 5000; ++step) {
    t += dt;
    const double dt_req = dt * std::exp(rng.uniform(-1.5, 1.5));
    dt = next_block_dt(t, dt, dt_req, dt_max, dt_min);
    ASSERT_TRUE(is_power_of_two_step(dt));
    ASSERT_TRUE(is_commensurate(t, dt)) << "t=" << t << " dt=" << dt;
  }
}

// --- scheduler ---------------------------------------------------------------

TEST(Scheduler, PopsEarliestBlock) {
  BlockScheduler s;
  const std::vector<double> times{0.0, 0.0, 0.0};
  const std::vector<double> dts{0.5, 0.25, 0.25};
  s.reset(times, dts);
  std::vector<std::uint32_t> block;
  EXPECT_DOUBLE_EQ(s.pop_block(block), 0.25);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0] + block[1], 3u);  // particles 1 and 2
}

TEST(Scheduler, PushReschedules) {
  BlockScheduler s;
  s.reset(std::vector<double>{0.0, 0.0}, std::vector<double>{0.25, 0.5});
  std::vector<std::uint32_t> block;
  EXPECT_DOUBLE_EQ(s.pop_block(block), 0.25);
  EXPECT_EQ(block, (std::vector<std::uint32_t>{0}));
  s.push(0, 0.5);
  EXPECT_DOUBLE_EQ(s.pop_block(block), 0.5);
  EXPECT_EQ(block.size(), 2u);  // both due at 0.5 now
}

TEST(Scheduler, LazyInvalidation) {
  BlockScheduler s;
  s.reset(std::vector<double>{0.0, 0.0}, std::vector<double>{0.25, 1.0});
  std::vector<std::uint32_t> block;
  s.pop_block(block);  // particle 0 at 0.25
  // Re-push particle 0 far in the future twice; only the last push counts.
  s.push(0, 2.0);
  s.push(0, 4.0);
  EXPECT_DOUBLE_EQ(s.next_time(), 1.0);
  s.pop_block(block);
  EXPECT_EQ(block, (std::vector<std::uint32_t>{1}));
  EXPECT_DOUBLE_EQ(s.next_time(), 4.0);  // the stale 2.0 entry is skipped
}

TEST(Scheduler, EmptyAndErrors) {
  BlockScheduler s;
  s.reset(std::vector<double>{0.0}, std::vector<double>{0.5});
  std::vector<std::uint32_t> block;
  s.pop_block(block);
  EXPECT_THROW(s.next_time(), g6::util::Error);  // nothing scheduled
  EXPECT_THROW(s.push(5, 1.0), g6::util::Error); // out of range
}

TEST(Scheduler, RejectsNonPositiveDt) {
  BlockScheduler s;
  EXPECT_THROW(
      s.reset(std::vector<double>{0.0}, std::vector<double>{0.0}),
      g6::util::Error);
}

// Property: driving the scheduler like the integrator does produces evolving
// block times that never decrease, and every particle is visited.
TEST(Scheduler, MonotoneBlockTimes) {
  g6::util::Rng rng(7);
  const std::size_t n = 64;
  std::vector<double> times(n, 0.0), dts(n);
  for (auto& d : dts) d = std::ldexp(1.0, -static_cast<int>(rng.below(5)));
  BlockScheduler s;
  s.reset(times, dts);
  std::vector<std::uint32_t> block;
  std::vector<int> visits(n, 0);
  double last_t = 0.0;
  for (int step = 0; step < 500; ++step) {
    const double t = s.pop_block(block);
    ASSERT_GE(t, last_t);
    last_t = t;
    for (std::uint32_t i : block) {
      ++visits[i];
      const double dt = std::ldexp(1.0, -static_cast<int>(rng.below(5)));
      const double nd = g6::nbody::next_block_dt(t, dts[i], dt, 1.0, 0x1p-10);
      dts[i] = nd;
      s.push(i, t + nd);
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_GT(visits[i], 0) << i;
}

}  // namespace
