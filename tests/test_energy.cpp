// Tests for the conserved-quantity diagnostics.
#include "nbody/energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using g6::nbody::compute_energy;
using g6::nbody::ParticleSystem;
using g6::util::Vec3;

TEST(Energy, KineticOnly) {
  ParticleSystem ps;
  ps.add(2.0, {0, 0, 0}, {3, 0, 0});  // KE = 0.5*2*9 = 9
  ps.add(1.0, {10, 0, 0}, {0, 4, 0}); // KE = 8
  const auto rep = compute_energy(ps, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(rep.kinetic, 17.0);
  EXPECT_NEAR(rep.potential_mutual, -2.0 / 10.0, 1e-15);
  EXPECT_DOUBLE_EQ(rep.potential_solar, 0.0);
}

TEST(Energy, PairPotentialWithSoftening) {
  ParticleSystem ps;
  ps.add(3.0, {0, 0, 0}, {});
  ps.add(4.0, {0, 3, 4}, {});  // r = 5
  const double eps = 12.0;     // sqrt(25 + 144) = 13
  const auto rep = compute_energy(ps, eps, 0.0);
  EXPECT_DOUBLE_EQ(rep.potential_mutual, -12.0 / 13.0);
}

TEST(Energy, SolarTerm) {
  ParticleSystem ps;
  ps.add(2.0, {0, 3, 4}, {});  // r = 5
  const auto rep = compute_energy(ps, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(rep.potential_solar, -2.0 / 5.0);
  EXPECT_DOUBLE_EQ(rep.total(), -0.4);
}

TEST(Energy, ParallelMatchesSerial) {
  g6::util::Rng rng(5);
  ParticleSystem ps;
  for (int i = 0; i < 200; ++i)
    ps.add(rng.uniform(0.1, 1.0),
           {rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)},
           {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});
  g6::util::ThreadPool pool(4);
  const auto serial = compute_energy(ps, 0.01, 1.0);
  const auto parallel = compute_energy(ps, 0.01, 1.0, &pool);
  EXPECT_NEAR(parallel.potential_mutual, serial.potential_mutual,
              1e-12 * std::abs(serial.potential_mutual));
  EXPECT_DOUBLE_EQ(parallel.kinetic, serial.kinetic);
}

TEST(AngularMomentum, CircularOrbitAboutOrigin) {
  ParticleSystem ps;
  ps.add(2.0, {3, 0, 0}, {0, 1, 0});
  const Vec3 l = g6::nbody::total_angular_momentum(ps);
  EXPECT_EQ(l, Vec3(0, 0, 6));
}

TEST(CenterOfMass, WeightedMean) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {1, 0, 0});
  ps.add(3.0, {4, 0, 0}, {-1, 0, 0});
  EXPECT_EQ(g6::nbody::center_of_mass(ps), Vec3(3, 0, 0));
  EXPECT_EQ(g6::nbody::center_of_mass_velocity(ps), Vec3(-0.5, 0, 0));
}

TEST(CenterOfMass, EmptySystemIsZero) {
  ParticleSystem ps;
  EXPECT_EQ(g6::nbody::center_of_mass(ps), Vec3(0, 0, 0));
}

}  // namespace
