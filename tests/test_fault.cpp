// Tests for the fault-injection subsystem: plan generation, injector domain
// routing, chip self-test semantics, and machine-level recovery bit-identity.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grape6/chip.hpp"
#include "grape6/machine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace hw = g6::hw;
using g6::fault::CampaignShape;
using g6::fault::FaultEvent;
using g6::fault::FaultInjector;
using g6::fault::FaultKind;
using g6::fault::FaultPlan;
using g6::util::Vec3;

bool same_event(const FaultEvent& x, const FaultEvent& y) {
  return x.kind == y.kind && x.at == y.at && x.a == y.a && x.b == y.b &&
         x.bit == y.bit && x.param == y.param;
}

CampaignShape full_shape() {
  CampaignShape s;
  s.machine_steps = 8;
  s.cluster_steps = 4;
  s.link_ops = 200;
  s.boards = 4;
  s.chips_per_board = 4;
  s.jmem_slots = 16;
  s.hosts = 4;
  s.n_link_drops = 2;
  s.n_link_corrupts = 2;
  s.n_link_delays = 1;
  s.n_link_fails = 1;
  s.n_chip_flips = 2;
  s.n_chip_kills = 2;
  s.n_jmem_corruptions = 2;
  s.n_board_fails = 2;
  s.n_host_drops = 2;
  return s;
}

TEST(FaultPlan, RandomIsDeterministic) {
  const CampaignShape shape = full_shape();
  const FaultPlan a = FaultPlan::random(9, shape);
  const FaultPlan b = FaultPlan::random(9, shape);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i)
    EXPECT_TRUE(same_event(a.events()[i], b.events()[i])) << "event " << i;

  const FaultPlan c = FaultPlan::random(10, shape);
  ASSERT_EQ(c.events().size(), a.events().size());
  bool any_different = false;
  for (std::size_t i = 0; i < a.events().size(); ++i)
    any_different = any_different || !same_event(a.events()[i], c.events()[i]);
  EXPECT_TRUE(any_different) << "different seeds produced the same plan";
}

TEST(FaultPlan, RandomRespectsSurvivabilityConstraints) {
  const CampaignShape shape = full_shape();
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, shape);
    std::vector<int> killed_chips, failed_boards, dropped_hosts;
    for (const FaultEvent& e : plan.events()) {
      switch (e.kind) {
        case FaultKind::kChipBitFlip:
          ASSERT_GE(e.a, 0);
          ASSERT_LT(e.a, shape.boards);
          ASSERT_GE(e.b, 0);
          ASSERT_LT(e.b, shape.chips_per_board);
          if (e.param != 0) killed_chips.push_back(e.b);
          break;
        case FaultKind::kBoardFail:
          failed_boards.push_back(e.a);
          break;
        case FaultKind::kHostDrop:
          EXPECT_GT(e.a, 0) << "host 0 must never be dropped (seed " << seed << ")";
          EXPECT_LT(e.a, shape.hosts);
          dropped_hosts.push_back(e.a);
          break;
        default:
          break;
      }
    }
    // Distinct victims, never exhausting a board, the machine or the cluster.
    auto all_distinct = [](std::vector<int> v) {
      std::sort(v.begin(), v.end());
      return std::adjacent_find(v.begin(), v.end()) == v.end();
    };
    EXPECT_TRUE(all_distinct(killed_chips)) << "seed " << seed;
    EXPECT_TRUE(all_distinct(failed_boards)) << "seed " << seed;
    EXPECT_TRUE(all_distinct(dropped_hosts)) << "seed " << seed;
    EXPECT_LT(static_cast<int>(killed_chips.size()), shape.chips_per_board);
    EXPECT_LT(static_cast<int>(failed_boards.size()), shape.boards);
    EXPECT_LT(static_cast<int>(dropped_hosts.size()), shape.hosts);
  }
}

TEST(FaultPlan, RejectsExhaustiveKills) {
  CampaignShape shape = full_shape();
  shape.n_chip_kills = shape.chips_per_board;  // would kill every chip
  EXPECT_THROW(FaultPlan::random(1, shape), g6::util::Error);
}

TEST(FaultInjector, RoutesEventsToTheirDomains) {
  FaultPlan plan;
  plan.add({FaultKind::kChipBitFlip, /*at=*/1, 0, 0, 3, 0});
  plan.add({FaultKind::kHostDrop, /*at=*/0, 1, -1, 0, 0});
  plan.add({FaultKind::kLinkDrop, /*at=*/2, -1, -1, 0, 0});

  FaultInjector inj;
  inj.arm(plan);
  EXPECT_TRUE(inj.armed());

  // Machine domain: nothing at step 0, the flip at step 1, nothing after.
  EXPECT_TRUE(inj.machine_step().empty());
  auto fired = inj.machine_step();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kChipBitFlip);
  EXPECT_TRUE(inj.machine_step().empty());
  EXPECT_EQ(inj.machine_steps_seen(), 3u);

  // Cluster domain fires immediately at step 0.
  fired = inj.cluster_step();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kHostDrop);
  EXPECT_EQ(fired[0].a, 1);

  // Link domain: the drop waits for the third send op.
  EXPECT_TRUE(inj.link_op().empty());
  EXPECT_TRUE(inj.link_op().empty());
  fired = inj.link_op();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kLinkDrop);

  // Disarmed hooks are inert and stop advancing counters.
  inj.disarm();
  EXPECT_TRUE(inj.machine_step().empty());
  EXPECT_EQ(inj.machine_steps_seen(), 3u);
}

TEST(FaultInjector, CoalescesEventsAtTheSameStep) {
  FaultPlan plan;
  plan.add({FaultKind::kChipBitFlip, 0, 0, 0, 1, 0});
  plan.add({FaultKind::kJMemCorrupt, 0, 0, 1, 2, 0});
  plan.add({FaultKind::kBoardFail, 1, 1, -1, 0, 0});
  FaultInjector inj;
  inj.arm(plan);
  EXPECT_EQ(inj.machine_step().size(), 2u);
  EXPECT_EQ(inj.machine_step().size(), 1u);
}

TEST(FaultInjector, ArmResetsStats) {
  FaultInjector inj;
  inj.stats().resends.fetch_add(7);
  inj.arm(FaultPlan{});
  EXPECT_EQ(inj.snapshot().resends, 0u);
  EXPECT_EQ(inj.snapshot().injected_total, 0u);
}

TEST(FaultUtil, FlipBitFlipsAndRestores) {
  unsigned char buf[4] = {0, 0, 0, 0};
  g6::fault::flip_bit(buf, sizeof buf, 11);
  EXPECT_EQ(buf[1], 1u << 3);
  // Bit index reduces modulo the buffer width.
  g6::fault::flip_bit(buf, sizeof buf, 11 + 32);
  EXPECT_EQ(buf[1], 0u);
}

TEST(FaultUtil, RetryBackoffGrowsExponentially) {
  const g6::fault::RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 100e-6);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 400e-6);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 1600e-6);
}

TEST(FaultUtil, SummarizeMentionsTheCounters) {
  g6::fault::FaultStatsSnapshot snap;
  snap.injected_total = 3;
  snap.resends = 2;
  const std::string s = g6::fault::summarize(snap);
  EXPECT_NE(s.find("injected=3"), std::string::npos);
  EXPECT_NE(s.find("resends=2"), std::string::npos);
}

// --- chip self-test semantics ------------------------------------------------

TEST(ChipSelfTest, DetectsGlitchedAndDeadChips) {
  hw::Chip chip{hw::FormatSpec{}};
  EXPECT_TRUE(chip.self_test());

  chip.arm_glitch(5, /*permanent=*/false);
  EXPECT_FALSE(chip.self_test());
  chip.clear_glitch();
  EXPECT_TRUE(chip.self_test());

  chip.set_dead();
  EXPECT_FALSE(chip.self_test());
}

// --- machine-level recovery bit-identity ------------------------------------

struct MachineWorkload {
  std::vector<hw::JParticle> js;
  std::vector<std::vector<hw::IParticle>> batches;
};

MachineWorkload machine_workload(int n, int steps, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  auto vec = [&](double scale) {
    return Vec3{scale * rng.uniform(-1.0, 1.0), scale * rng.uniform(-1.0, 1.0),
                scale * rng.uniform(-1.0, 1.0)};
  };
  const hw::FormatSpec fmt{};
  MachineWorkload w;
  for (int i = 0; i < n; ++i)
    w.js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), 1.0 / n,
                                       0.0, vec(1.0), vec(0.1), vec(0.01),
                                       vec(0.001), fmt));
  w.batches.resize(static_cast<std::size_t>(steps));
  for (auto& batch : w.batches)
    for (int i = 0; i < n; ++i)
      batch.push_back(hw::make_i_particle(static_cast<std::uint32_t>(i),
                                          vec(1.0), vec(0.1), fmt));
  return w;
}

std::vector<std::int64_t> run_machine(const MachineWorkload& w,
                                      FaultInjector* injector) {
  hw::MachineConfig mc = hw::MachineConfig::mini(2, 2, w.js.size());
  hw::Grape6Machine machine(mc, nullptr);
  if (injector != nullptr) machine.set_fault_injector(injector);
  machine.load(w.js);

  std::vector<std::int64_t> raws;
  std::vector<hw::ForceAccumulator> accum;
  for (std::size_t s = 0; s < w.batches.size(); ++s) {
    machine.predict_all(0.01 * static_cast<double>(s + 1));
    machine.compute(w.batches[s], 1e-4, accum);
    for (const hw::ForceAccumulator& a : accum) {
      raws.push_back(a.acc.x().raw());
      raws.push_back(a.acc.y().raw());
      raws.push_back(a.acc.z().raw());
      raws.push_back(a.jerk.x().raw());
      raws.push_back(a.jerk.y().raw());
      raws.push_back(a.jerk.z().raw());
      raws.push_back(a.pot.raw());
    }
  }
  return raws;
}

TEST(MachineRecovery, ScriptedFaultsRecoverBitIdentically) {
  const MachineWorkload w = machine_workload(48, 3, 11);
  const std::vector<std::int64_t> clean = run_machine(w, nullptr);

  FaultPlan plan;
  // Step 0: SSRAM corruption on board 1 chip 0 — caught by the CRC scrub.
  plan.add({FaultKind::kJMemCorrupt, 0, 1, 0, 5, /*slot=*/3});
  // Step 1: transient accumulator flip — caught by the self-test, recomputed.
  plan.add({FaultKind::kChipBitFlip, 1, 0, 1, 7, /*transient=*/0});
  // Step 2: board 1 dies — its j-particles remap onto board 0.
  plan.add({FaultKind::kBoardFail, 2, 1, -1, 0, 0});

  FaultInjector injector;
  injector.arm(plan);
  const std::vector<std::int64_t> faulted = run_machine(w, &injector);

  EXPECT_EQ(clean, faulted) << "recovered run is not bit-identical";
  const auto snap = injector.snapshot();
  EXPECT_EQ(snap.injected_total, 3u);
  EXPECT_EQ(snap.crc_jmem_mismatches, 1u);
  EXPECT_GE(snap.selftest_failures, 1u);
  EXPECT_GE(snap.recomputed_chip_blocks, 1u);
  EXPECT_EQ(snap.excluded_boards, 1u);
  EXPECT_GT(snap.remapped_particles, 0u);
  EXPECT_GT(snap.recovery_modeled_seconds, 0.0);
}

TEST(MachineRecovery, PermanentChipKillExcludesAndRecovers) {
  const MachineWorkload w = machine_workload(32, 2, 13);
  const std::vector<std::int64_t> clean = run_machine(w, nullptr);

  FaultPlan plan;
  plan.add({FaultKind::kChipBitFlip, 0, 0, 0, 9, /*permanent=*/1});
  FaultInjector injector;
  injector.arm(plan);
  const std::vector<std::int64_t> faulted = run_machine(w, &injector);

  EXPECT_EQ(clean, faulted);
  const auto snap = injector.snapshot();
  EXPECT_EQ(snap.excluded_chips, 1u);
  EXPECT_GT(snap.remapped_particles, 0u);
}

TEST(MachineRecovery, BoardDeadFromChipKillsCountsCapacityOnce) {
  const MachineWorkload w = machine_workload(32, 3, 15);
  const std::vector<std::int64_t> clean = run_machine(w, nullptr);

  FaultPlan plan;
  // Kill both chips of board 1, one per step: the second kill empties the
  // board, which is then excluded as a whole.
  plan.add({FaultKind::kChipBitFlip, 0, 1, 0, 9, /*permanent=*/1});
  plan.add({FaultKind::kChipBitFlip, 1, 1, 1, 9, /*permanent=*/1});
  FaultInjector injector;
  injector.arm(plan);
  const std::vector<std::int64_t> faulted = run_machine(w, &injector);

  EXPECT_EQ(clean, faulted);
  const auto snap = injector.snapshot();
  EXPECT_EQ(snap.excluded_boards, 1u);
  // The board exclusion supersedes the per-chip ones: the dead capacity is
  // excluded_boards * chips_per_board + excluded_chips, with no chip counted
  // both ways.
  EXPECT_EQ(snap.excluded_chips, 0u);
}

TEST(MachineRecovery, UnarmedInjectorIsInert) {
  const MachineWorkload w = machine_workload(24, 2, 17);
  const std::vector<std::int64_t> clean = run_machine(w, nullptr);
  FaultInjector injector;  // attached but never armed
  const std::vector<std::int64_t> attached = run_machine(w, &injector);
  EXPECT_EQ(clean, attached);
  EXPECT_EQ(injector.snapshot().injected_total, 0u);
}

}  // namespace
