// Tests for the grayscale raster / PGM writer.
#include "util/image.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace {

using g6::util::GrayImage;

TEST(GrayImage, DepositAndRead) {
  GrayImage img(4, 3);
  img.deposit(1, 2, 2.5);
  img.deposit(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(img.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(img.at(0, 0), 0.0);
}

TEST(GrayImage, BoundsChecked) {
  GrayImage img(2, 2);
  EXPECT_THROW(img.deposit(2, 0), g6::util::Error);
  EXPECT_THROW(img.at(0, 5), g6::util::Error);
  EXPECT_THROW(GrayImage(0, 4), g6::util::Error);
}

TEST(GrayImage, SplatMapsDataSpace) {
  GrayImage img(10, 10);
  img.splat(0.0, 0.0, -1.0, 1.0, -1.0, 1.0);  // centre
  EXPECT_GT(img.at(5, 4) + img.at(5, 5) + img.at(4, 4) + img.at(4, 5), 0.0);
  img.splat(5.0, 0.0, -1.0, 1.0, -1.0, 1.0);  // out of range: dropped
}

TEST(GrayImage, SplatYAxisPointsUp) {
  GrayImage img(3, 3);
  img.splat(0.0, 0.9, -1.0, 1.0, -1.0, 1.0);  // high y -> top row (raster y=0)
  double top = 0.0;
  for (std::size_t x = 0; x < 3; ++x) top += img.at(x, 0);
  EXPECT_GT(top, 0.0);
}

TEST(GrayImage, PgmHeaderAndSize) {
  GrayImage img(6, 2);
  img.deposit(0, 0, 5.0);
  std::ostringstream os;
  img.write_pgm(os, /*invert=*/false);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("P5\n6 2\n255\n", 0), 0u);
  // Header + 12 pixel bytes.
  EXPECT_EQ(s.size(), std::string("P5\n6 2\n255\n").size() + 12);
}

TEST(GrayImage, InvertFlipsPolarity) {
  GrayImage img(1, 1);
  img.deposit(0, 0, 10.0);
  std::ostringstream normal, inverted;
  img.write_pgm(normal, false);
  img.write_pgm(inverted, true);
  const auto pn = static_cast<unsigned char>(normal.str().back());
  const auto pi = static_cast<unsigned char>(inverted.str().back());
  EXPECT_EQ(pn, 255u);  // the peak pixel is white...
  EXPECT_EQ(pi, 0u);    // ...or black when inverted (print style)
}

TEST(GrayImage, EmptyImageWritesBackground) {
  GrayImage img(2, 2);
  std::ostringstream os;
  img.write_pgm(os, true);
  for (std::size_t k = os.str().size() - 4; k < os.str().size(); ++k)
    EXPECT_EQ(static_cast<unsigned char>(os.str()[k]), 255u);  // white page
}

}  // namespace
