// Conformance suite: every ForceBackend implementation must satisfy the same
// contract (load/update/compute protocol, self-exclusion, prediction,
// physical correctness, usability for integration). Parameterized over all
// engines so a new backend inherits the whole suite.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"

namespace {

using g6::nbody::Force;
using g6::nbody::ForceBackend;
using g6::nbody::ParticleSystem;
using g6::util::Vec3;

enum class Kind { kCpu, kGrape, kClusterNaive, kClusterHwNet, kClusterMatrix };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCpu: return "cpu";
    case Kind::kGrape: return "grape";
    case Kind::kClusterNaive: return "cluster_naive";
    case Kind::kClusterHwNet: return "cluster_hwnet";
    case Kind::kClusterMatrix: return "cluster_matrix";
  }
  return "?";
}

std::unique_ptr<ForceBackend> make_backend(Kind kind, double eps) {
  const g6::hw::FormatSpec fmt = g6::hw::FormatSpec::for_scales(64.0, 1.0);
  switch (kind) {
    case Kind::kCpu:
      return std::make_unique<g6::nbody::CpuDirectBackend>(eps);
    case Kind::kGrape: {
      g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 256);
      mc.fmt = fmt;
      return std::make_unique<g6::hw::Grape6Backend>(mc, eps);
    }
    case Kind::kClusterNaive:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kNaive, fmt, eps);
    case Kind::kClusterHwNet:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kHardwareNet, fmt, eps);
    case Kind::kClusterMatrix:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kMatrix2D, fmt, eps);
  }
  return nullptr;
}

// Relative force tolerance: exact for CPU, format-limited otherwise.
double tol_for(Kind kind) { return kind == Kind::kCpu ? 1e-14 : 3e-6; }

class BackendConformance : public ::testing::TestWithParam<Kind> {};

TEST_P(BackendConformance, TwoParticleForceIsAnalytic) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(2.0, {0, 0, 0}, {0, 0, 0});
  ps.add(3.0, {4, 0, 0}, {0, 0, 0});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0, 1};
  std::vector<Force> f(2);
  backend->compute(0.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 3.0 / 16.0, tol_for(GetParam()) * (3.0 / 16.0));
  EXPECT_NEAR(f[1].acc.x, -2.0 / 16.0, tol_for(GetParam()) * (2.0 / 16.0));
  EXPECT_NEAR(f[0].pot, -3.0 / 4.0, tol_for(GetParam()));
  EXPECT_NEAR(f[1].pot, -2.0 / 4.0, tol_for(GetParam()));
}

TEST_P(BackendConformance, SelfInteractionExcluded) {
  auto backend = make_backend(GetParam(), 0.1);
  ParticleSystem ps;
  ps.add(1.0, {1, 2, 3}, {0.1, 0, 0});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(0.0, ilist, f);
  EXPECT_EQ(f[0].acc, Vec3(0, 0, 0));
}

TEST_P(BackendConformance, JPredictionAdvancesSources) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {0, 0, 0});
  ps.add(1.0, {1, 0, 0}, {1, 0, 0});  // drifts to x = 3 by t = 2
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(2.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 1.0 / 9.0, 1e-5 / 9.0);
}

TEST_P(BackendConformance, UpdateTakesEffect) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {});
  ps.add(1.0, {2, 0, 0}, {});
  backend->load(ps);
  ps.mass(1) = 4.0;
  const std::vector<std::uint32_t> upd{1};
  backend->update(upd, ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(0.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 1.0, 1e-5);
}

TEST_P(BackendConformance, ComputeStatesUsesProvidedState) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {});
  ps.add(1.0, {2, 0, 0}, {});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Vec3> pos{{1, 0, 0}}, vel{{0, 0, 0}};  // not the stored state
  std::vector<Force> f(1);
  backend->compute_states(0.0, ilist, pos, vel, f);
  EXPECT_NEAR(f[0].acc.x, 1.0, 1e-5);  // distance 1, not 2
}

TEST_P(BackendConformance, InteractionCounterMonotone) {
  auto backend = make_backend(GetParam(), 0.01);
  ParticleSystem ps;
  for (int i = 0; i < 8; ++i) ps.add(1.0, {double(i), 0, 0}, {});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0, 3};
  std::vector<Force> f(2);
  const auto c0 = backend->interaction_count();
  backend->compute(0.0, ilist, f);
  const auto c1 = backend->interaction_count();
  EXPECT_GT(c1, c0);
  backend->compute(0.0, ilist, f);
  EXPECT_GT(backend->interaction_count(), c1);
}

TEST_P(BackendConformance, SofteningAccessor) {
  auto backend = make_backend(GetParam(), 0.025);
  EXPECT_EQ(backend->softening(), 0.025);
}

TEST_P(BackendConformance, BinaryOrbitEnergyBounded) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  g6::nbody::IntegratorConfig cfg;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-5;
  g6::nbody::HermiteIntegrator integ(ps, *backend, cfg);
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  integ.evolve(2.0 * std::numbers::pi);
  const double e1 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-5);
}

TEST_P(BackendConformance, DiskBlockIntegrationRuns) {
  auto d = g6::disk::make_disk(g6::disk::uranus_neptune_config(60));
  auto backend = make_backend(GetParam(), 0.008);
  g6::nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.dt_max = 4.0;
  g6::nbody::HermiteIntegrator integ(d.system, *backend, cfg);
  integ.initialize();
  integ.evolve(32.0);
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d.system.pos(i).x)) << i;
    EXPECT_DOUBLE_EQ(d.system.time(i), 32.0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values(Kind::kCpu, Kind::kGrape,
                                           Kind::kClusterNaive,
                                           Kind::kClusterHwNet,
                                           Kind::kClusterMatrix),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return kind_name(info.param);
                         });

}  // namespace
