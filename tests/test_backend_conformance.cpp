// Conformance suite: every ForceBackend implementation must satisfy the same
// contract (load/update/compute protocol, self-exclusion, prediction,
// physical correctness, usability for integration). Parameterized over all
// engines so a new backend inherits the whole suite.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>

#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "grape6/chip.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::Force;
using g6::nbody::ForceBackend;
using g6::nbody::ParticleSystem;
using g6::util::Vec3;

enum class Kind { kCpu, kGrape, kClusterNaive, kClusterHwNet, kClusterMatrix };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCpu: return "cpu";
    case Kind::kGrape: return "grape";
    case Kind::kClusterNaive: return "cluster_naive";
    case Kind::kClusterHwNet: return "cluster_hwnet";
    case Kind::kClusterMatrix: return "cluster_matrix";
  }
  return "?";
}

std::unique_ptr<ForceBackend> make_backend(Kind kind, double eps) {
  const g6::hw::FormatSpec fmt = g6::hw::FormatSpec::for_scales(64.0, 1.0);
  switch (kind) {
    case Kind::kCpu:
      return std::make_unique<g6::nbody::CpuDirectBackend>(eps);
    case Kind::kGrape: {
      g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 256);
      mc.fmt = fmt;
      return std::make_unique<g6::hw::Grape6Backend>(mc, eps);
    }
    case Kind::kClusterNaive:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kNaive, fmt, eps);
    case Kind::kClusterHwNet:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kHardwareNet, fmt, eps);
    case Kind::kClusterMatrix:
      return std::make_unique<g6::cluster::ClusterBackend>(
          4, g6::cluster::HostMode::kMatrix2D, fmt, eps);
  }
  return nullptr;
}

// Relative force tolerance: exact for CPU, format-limited otherwise.
double tol_for(Kind kind) { return kind == Kind::kCpu ? 1e-14 : 3e-6; }

class BackendConformance : public ::testing::TestWithParam<Kind> {};

TEST_P(BackendConformance, TwoParticleForceIsAnalytic) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(2.0, {0, 0, 0}, {0, 0, 0});
  ps.add(3.0, {4, 0, 0}, {0, 0, 0});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0, 1};
  std::vector<Force> f(2);
  backend->compute(0.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 3.0 / 16.0, tol_for(GetParam()) * (3.0 / 16.0));
  EXPECT_NEAR(f[1].acc.x, -2.0 / 16.0, tol_for(GetParam()) * (2.0 / 16.0));
  EXPECT_NEAR(f[0].pot, -3.0 / 4.0, tol_for(GetParam()));
  EXPECT_NEAR(f[1].pot, -2.0 / 4.0, tol_for(GetParam()));
}

TEST_P(BackendConformance, SelfInteractionExcluded) {
  auto backend = make_backend(GetParam(), 0.1);
  ParticleSystem ps;
  ps.add(1.0, {1, 2, 3}, {0.1, 0, 0});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(0.0, ilist, f);
  EXPECT_EQ(f[0].acc, Vec3(0, 0, 0));
}

TEST_P(BackendConformance, JPredictionAdvancesSources) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {0, 0, 0});
  ps.add(1.0, {1, 0, 0}, {1, 0, 0});  // drifts to x = 3 by t = 2
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(2.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 1.0 / 9.0, 1e-5 / 9.0);
}

TEST_P(BackendConformance, UpdateTakesEffect) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {});
  ps.add(1.0, {2, 0, 0}, {});
  backend->load(ps);
  ps.mass(1) = 4.0;
  const std::vector<std::uint32_t> upd{1};
  backend->update(upd, ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> f(1);
  backend->compute(0.0, ilist, f);
  EXPECT_NEAR(f[0].acc.x, 1.0, 1e-5);
}

TEST_P(BackendConformance, ComputeStatesUsesProvidedState) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(1e-12, {0, 0, 0}, {});
  ps.add(1.0, {2, 0, 0}, {});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Vec3> pos{{1, 0, 0}}, vel{{0, 0, 0}};  // not the stored state
  std::vector<Force> f(1);
  backend->compute_states(0.0, ilist, pos, vel, f);
  EXPECT_NEAR(f[0].acc.x, 1.0, 1e-5);  // distance 1, not 2
}

TEST_P(BackendConformance, InteractionCounterMonotone) {
  auto backend = make_backend(GetParam(), 0.01);
  ParticleSystem ps;
  for (int i = 0; i < 8; ++i) ps.add(1.0, {double(i), 0, 0}, {});
  backend->load(ps);
  std::vector<std::uint32_t> ilist{0, 3};
  std::vector<Force> f(2);
  const auto c0 = backend->interaction_count();
  backend->compute(0.0, ilist, f);
  const auto c1 = backend->interaction_count();
  EXPECT_GT(c1, c0);
  backend->compute(0.0, ilist, f);
  EXPECT_GT(backend->interaction_count(), c1);
}

TEST_P(BackendConformance, SofteningAccessor) {
  auto backend = make_backend(GetParam(), 0.025);
  EXPECT_EQ(backend->softening(), 0.025);
}

TEST_P(BackendConformance, BinaryOrbitEnergyBounded) {
  auto backend = make_backend(GetParam(), 0.0);
  ParticleSystem ps;
  ps.add(0.5, {0.5, 0, 0}, {0, 0.5, 0});
  ps.add(0.5, {-0.5, 0, 0}, {0, -0.5, 0});
  g6::nbody::IntegratorConfig cfg;
  cfg.eta = 0.01;
  cfg.dt_max = 0x1p-5;
  g6::nbody::HermiteIntegrator integ(ps, *backend, cfg);
  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  integ.evolve(2.0 * std::numbers::pi);
  const double e1 = g6::nbody::compute_energy(ps, 0.0, 0.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-5);
}

TEST_P(BackendConformance, DiskBlockIntegrationRuns) {
  auto d = g6::disk::make_disk(g6::disk::uranus_neptune_config(60));
  auto backend = make_backend(GetParam(), 0.008);
  g6::nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.dt_max = 4.0;
  g6::nbody::HermiteIntegrator integ(d.system, *backend, cfg);
  integ.initialize();
  integ.evolve(32.0);
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d.system.pos(i).x)) << i;
    EXPECT_DOUBLE_EQ(d.system.time(i), 32.0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values(Kind::kCpu, Kind::kGrape,
                                           Kind::kClusterNaive,
                                           Kind::kClusterHwNet,
                                           Kind::kClusterMatrix),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return kind_name(info.param);
                         });

// --- golden bit-identity of the SoA/SIMD CPU kernels vs the scalar seed ----

/// Fixed-seed random system: reproducible golden input for the kernel
/// bit-identity tests (masses, positions and velocities span several orders
/// of magnitude like the planetesimal disk).
ParticleSystem golden_system(std::size_t n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  ParticleSystem ps;
  for (std::size_t i = 0; i < n; ++i) {
    ps.add(rng.uniform(1e-12, 1e-9),
           {rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0), rng.uniform(-1.0, 1.0)},
           {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), rng.uniform(-0.03, 0.03)});
  }
  return ps;
}

std::vector<Force> cpu_forces(g6::nbody::CpuKernel kernel, const ParticleSystem& ps,
                              double t) {
  g6::nbody::CpuDirectBackend backend(0.008);
  backend.set_kernel(kernel);
  backend.load(ps);
  std::vector<std::uint32_t> ilist(ps.size());
  std::iota(ilist.begin(), ilist.end(), 0u);
  std::vector<Force> f(ps.size());
  backend.compute(t, ilist, f);
  return f;
}

void expect_forces_bitwise_equal(const std::vector<Force>& a, const std::vector<Force>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i].acc.x), bits(b[i].acc.x)) << "acc.x i=" << i;
    EXPECT_EQ(bits(a[i].acc.y), bits(b[i].acc.y)) << "acc.y i=" << i;
    EXPECT_EQ(bits(a[i].acc.z), bits(b[i].acc.z)) << "acc.z i=" << i;
    EXPECT_EQ(bits(a[i].jerk.x), bits(b[i].jerk.x)) << "jerk.x i=" << i;
    EXPECT_EQ(bits(a[i].jerk.y), bits(b[i].jerk.y)) << "jerk.y i=" << i;
    EXPECT_EQ(bits(a[i].jerk.z), bits(b[i].jerk.z)) << "jerk.z i=" << i;
    EXPECT_EQ(bits(a[i].pot), bits(b[i].pot)) << "pot i=" << i;
  }
}

class CpuKernelBitIdentity : public ::testing::TestWithParam<g6::nbody::CpuKernel> {};

TEST_P(CpuKernelBitIdentity, MatchesScalarReferenceBitwise) {
  // 193 particles: not a multiple of the tile size or any vector width, so
  // both the blocked main loops and the scalar tails are exercised. t = 0.5
  // makes the prediction path part of the pipeline under test.
  const ParticleSystem ps = golden_system(193, 0x9e3779b97f4a7c15ULL);
  const auto ref = cpu_forces(g6::nbody::CpuKernel::kReference, ps, 0.5);
  const auto got = cpu_forces(GetParam(), ps, 0.5);
  expect_forces_bitwise_equal(ref, got);
}

INSTANTIATE_TEST_SUITE_P(ExactKernels, CpuKernelBitIdentity,
                         ::testing::Values(g6::nbody::CpuKernel::kTiled,
                                           g6::nbody::CpuKernel::kSimd),
                         [](const ::testing::TestParamInfo<g6::nbody::CpuKernel>& info) {
                           return g6::nbody::cpu_kernel_name(info.param);
                         });

TEST(CpuKernelFast, MatchesReferenceToRsqrtTolerance) {
  const ParticleSystem ps = golden_system(193, 0x9e3779b97f4a7c15ULL);
  const auto ref = cpu_forces(g6::nbody::CpuKernel::kReference, ps, 0.5);
  const auto got = cpu_forces(g6::nbody::CpuKernel::kFast, ps, 0.5);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double scale = std::sqrt(norm2(ref[i].acc)) + 1e-300;
    EXPECT_NEAR(got[i].acc.x, ref[i].acc.x, 1e-10 * scale) << i;
    EXPECT_NEAR(got[i].acc.y, ref[i].acc.y, 1e-10 * scale) << i;
    EXPECT_NEAR(got[i].acc.z, ref[i].acc.z, 1e-10 * scale) << i;
    EXPECT_NEAR(got[i].pot, ref[i].pot, 1e-10 * std::abs(ref[i].pot)) << i;
  }
}

// --- GRAPE batched pipeline: identical accumulator registers ---------------

TEST(GrapeBatchedIdentity, BatchedAndUnbatchedProduceIdenticalRegisters) {
  const g6::hw::FormatSpec fmt = g6::hw::FormatSpec::for_scales(64.0, 1.0);
  g6::hw::Chip batched(fmt), unbatched(fmt);
  batched.set_batched(true);
  unbatched.set_batched(false);

  g6::util::Rng rng(1234);
  const std::size_t nj = 100;
  for (std::size_t j = 0; j < nj; ++j) {
    const auto jp = g6::hw::make_j_particle(
        static_cast<std::uint32_t>(j), rng.uniform(1e-9, 1e-7), 0.0,
        {rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0), rng.uniform(-0.5, 0.5)},
        {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), rng.uniform(-0.02, 0.02)},
        {rng.uniform(-1e-4, 1e-4), rng.uniform(-1e-4, 1e-4), rng.uniform(-1e-5, 1e-5)},
        {rng.uniform(-1e-6, 1e-6), rng.uniform(-1e-6, 1e-6), rng.uniform(-1e-7, 1e-7)},
        fmt);
    batched.store_j(jp);
    unbatched.store_j(jp);
  }
  batched.predict_all(0.25);
  unbatched.predict_all(0.25);

  // 100 i-particles forces three passes of 48/48/4; the first nj share ids
  // with resident j-particles, exercising the self-interaction cut in every
  // pass position.
  std::vector<g6::hw::IParticle> is;
  for (std::size_t i = 0; i < nj; ++i) {
    is.push_back(g6::hw::make_i_particle(
        static_cast<std::uint32_t>(i),
        {rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0), rng.uniform(-0.5, 0.5)},
        {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), rng.uniform(-0.02, 0.02)},
        fmt));
  }
  std::vector<g6::hw::ForceAccumulator> fa(is.size(), g6::hw::ForceAccumulator(fmt));
  std::vector<g6::hw::ForceAccumulator> fb = fa;
  batched.compute(is, 1e-4, fa);
  unbatched.compute(is, 1e-4, fb);
  for (std::size_t i = 0; i < is.size(); ++i) {
    EXPECT_EQ(fa[i].acc, fb[i].acc) << i;
    EXPECT_EQ(fa[i].jerk, fb[i].jerk) << i;
    EXPECT_EQ(fa[i].pot, fb[i].pot) << i;
  }
}

}  // namespace
