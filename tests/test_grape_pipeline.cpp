// Tests for the GRAPE-6 pipeline functional model: reduced-precision force
// evaluation and the on-chip predictor.
#include "grape6/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/force_direct.hpp"
#include "nbody/hermite.hpp"
#include "util/rng.hpp"

namespace {

using g6::hw::FormatSpec;
using g6::hw::ForceAccumulator;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::JPredicted;
using g6::hw::make_i_particle;
using g6::hw::pipeline_interact;
using g6::hw::predict_j;
using g6::util::FixedVec3;
using g6::util::Vec3;

JParticle make_j(std::uint32_t id, double m, const Vec3& x, const Vec3& v,
                 const FormatSpec& fmt) {
  JParticle p;
  p.id = id;
  p.mass = m;
  p.t0 = 0.0;
  p.x0 = FixedVec3::quantize(x, fmt.pos_lsb);
  p.v0 = v;
  return p;
}

TEST(Pipeline, MatchesDoubleReferenceToFormatPrecision) {
  const FormatSpec fmt;
  g6::util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 xi{rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(-1, 1)};
    const Vec3 xj{rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(-1, 1)};
    const Vec3 vi{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), 0.0};
    const Vec3 vj{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), 0.0};
    const double m = rng.uniform(1e-11, 1e-9);
    const double eps2 = 0.008 * 0.008;

    const IParticle ip = make_i_particle(0, xi, vi, fmt);
    JParticle jp = make_j(1, m, xj, vj, fmt);
    const JPredicted jpred = predict_j(jp, 0.0, fmt);
    ForceAccumulator acc(fmt);
    pipeline_interact(ip, jpred, eps2, fmt, acc);

    g6::nbody::Force ref{};
    g6::nbody::pairwise_force(xi, vi, xj, vj, m, eps2, ref);

    const double scale = norm(ref.acc);
    EXPECT_NEAR(norm(acc.acc.to_vec3() - ref.acc), 0.0, 1e-6 * scale + 1e-18)
        << "trial " << trial;
    EXPECT_NEAR(acc.pot.to_double(), ref.pot, 1e-6 * std::abs(ref.pot) + 1e-15);
  }
}

TEST(Pipeline, SelfInteractionSuppressed) {
  const FormatSpec fmt;
  const IParticle ip = make_i_particle(7, {1, 2, 3}, {0, 0, 0}, fmt);
  JParticle jp = make_j(7, 1.0, {1, 2, 3}, {0, 0, 0}, fmt);
  const JPredicted jpred = predict_j(jp, 0.0, fmt);
  ForceAccumulator acc(fmt);
  pipeline_interact(ip, jpred, 0.01, fmt, acc);
  EXPECT_EQ(acc.acc.to_vec3(), Vec3(0, 0, 0));
  EXPECT_EQ(acc.pot.to_double(), 0.0);
}

TEST(Pipeline, CoincidentDistinctParticlesUseSoftening) {
  const FormatSpec fmt;
  const IParticle ip = make_i_particle(0, {1, 2, 3}, {0, 0, 0}, fmt);
  JParticle jp = make_j(1, 1.0, {1, 2, 3}, {0, 0, 0}, fmt);
  const JPredicted jpred = predict_j(jp, 0.0, fmt);
  ForceAccumulator acc(fmt);
  pipeline_interact(ip, jpred, 0.01, fmt, acc);
  EXPECT_EQ(acc.acc.to_vec3(), Vec3(0, 0, 0));      // dx = 0 -> no force
  EXPECT_NEAR(acc.pot.to_double(), -1.0 / 0.1, 1e-6);  // but potential -m/eps
}

TEST(Predictor, MatchesHermitePredictToFormatPrecision) {
  FormatSpec fmt;
  g6::util::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    JParticle jp;
    jp.id = 0;
    jp.mass = 1e-10;
    jp.t0 = rng.uniform(0.0, 1.0);
    const Vec3 x{rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(-1, 1)};
    const Vec3 v{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), 0.01};
    const Vec3 a{rng.uniform(-1e-2, 1e-2), rng.uniform(-1e-2, 1e-2), 0.0};
    const Vec3 j{rng.uniform(-1e-3, 1e-3), rng.uniform(-1e-3, 1e-3), 0.0};
    jp.x0 = FixedVec3::quantize(x, fmt.pos_lsb);
    jp.v0 = v;
    jp.a0 = a;
    jp.j0 = j;

    const double t = jp.t0 + rng.uniform(0.0, 0.125);
    const JPredicted pred = predict_j(jp, t, fmt);
    const auto ref = g6::nbody::hermite_predict(x, v, a, j, t - jp.t0);
    EXPECT_NEAR(norm(pred.x.to_vec3() - ref.pos), 0.0, 1e-6 * norm(ref.pos) + 1e-9);
    EXPECT_NEAR(norm(pred.v - ref.vel), 0.0, 1e-6 * norm(ref.vel) + 1e-12);
  }
}

TEST(Predictor, ZeroDtReturnsStoredState) {
  const FormatSpec fmt;
  // Dyadic velocities survive the short-float rounding exactly.
  JParticle jp = make_j(0, 1.0, {10, -5, 2}, {0.125, 0.25, 0.5}, fmt);
  const JPredicted pred = predict_j(jp, 0.0, fmt);
  EXPECT_EQ(pred.x.to_vec3(), jp.x0.to_vec3());
  EXPECT_EQ(pred.v, jp.v0);
}

TEST(FormatSpec, ForScalesGivesSaneGrids) {
  const FormatSpec fmt = FormatSpec::for_scales(35.0, 1e-5);
  EXPECT_GT(fmt.pos_lsb, 0.0);
  EXPECT_LT(fmt.pos_lsb, 1e-9);          // far finer than the softening
  EXPECT_LT(fmt.acc_lsb, 1e-5 * 1e-9);   // resolves tiny contributions
  EXPECT_THROW(FormatSpec::for_scales(0.0, 1.0), g6::util::Error);
}

TEST(MakeIParticle, QuantisesToGrid) {
  const FormatSpec fmt;
  const IParticle p = make_i_particle(3, {1.0 / 3.0, 0, 0}, {1.0 / 7.0, 0, 0}, fmt);
  EXPECT_EQ(p.id, 3u);
  // Position snapped to the fixed-point grid.
  const double q = p.x.to_vec3().x / fmt.pos_lsb;
  EXPECT_EQ(q, std::floor(q + 0.5));
  // Velocity carries at most 24 mantissa bits.
  EXPECT_EQ(p.v.x, g6::util::round_to_mantissa(1.0 / 7.0, fmt.mantissa_bits));
}

}  // namespace
