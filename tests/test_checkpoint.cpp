// Tests for the G6CKPT1 checkpoint format, the sidecar manifest and the
// CheckpointStore rotation/fallback logic (docs/CHECKPOINTING.md).
#include "run/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

using g6::nbody::CpuDirectBackend;
using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;
using g6::nbody::ParticleSystem;
using g6::run::capture;
using g6::run::CheckpointData;
using g6::run::CheckpointStore;
using g6::run::config_hash;
using g6::run::Manifest;
using g6::run::read_checkpoint;
using g6::run::read_checkpoint_file;
using g6::run::read_manifest;
using g6::run::SegmentInfo;
using g6::run::segment_filename;
using g6::run::write_checkpoint;
using g6::run::write_checkpoint_file;
using g6::run::write_manifest;

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("g6_ckpt_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

// A checkpoint with every section populated: a few evolved ring particles
// (non-trivial acc/jerk/time/dt), one RNG stream and accretion counters.
CheckpointData sample_data(std::uint64_t hash) {
  g6::util::Rng rng(42);
  ParticleSystem ps;
  for (int i = 0; i < 12; ++i) {
    const double phi = rng.uniform(0.0, 6.28);
    ps.add(rng.uniform(1e-10, 1e-9),
           {std::cos(phi), std::sin(phi), rng.uniform(-0.01, 0.01)},
           {-std::sin(phi), std::cos(phi), 0.0});
  }
  CpuDirectBackend backend(0.01);
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.05;
  cfg.dt_max = 0.25;
  HermiteIntegrator integ(ps, backend, cfg);
  integ.initialize();
  integ.evolve(0.5);

  CheckpointData d = capture(integ, hash);
  rng.normal();  // leave a cached spare deviate in the stream state
  d.rng_streams.push_back(rng.save());
  d.has_accretion = true;
  d.accretion_mergers = 3;
  d.accretion_time = 0.5;
  return d;
}

void expect_identical(const CheckpointData& a, const CheckpointData& b) {
  EXPECT_EQ(a.config_hash, b.config_hash);
  EXPECT_EQ(a.t_sys, b.t_sys);
  EXPECT_EQ(a.stats.blocks, b.stats.blocks);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.dt_shrinks, b.stats.dt_shrinks);
  EXPECT_EQ(a.stats.dt_grows, b.stats.dt_grows);
  EXPECT_EQ(a.stats.block_sizes, b.stats.block_sizes);
  ASSERT_EQ(a.system.size(), b.system.size());
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.id(i), b.system.id(i)) << i;
    EXPECT_EQ(a.system.mass(i), b.system.mass(i)) << i;
    EXPECT_EQ(a.system.pos(i), b.system.pos(i)) << i;
    EXPECT_EQ(a.system.vel(i), b.system.vel(i)) << i;
    EXPECT_EQ(a.system.acc(i), b.system.acc(i)) << i;
    EXPECT_EQ(a.system.jerk(i), b.system.jerk(i)) << i;
    EXPECT_EQ(a.system.pot(i), b.system.pot(i)) << i;
    EXPECT_EQ(a.system.time(i), b.system.time(i)) << i;
    EXPECT_EQ(a.system.dt(i), b.system.dt(i)) << i;
  }
  ASSERT_EQ(a.rng_streams.size(), b.rng_streams.size());
  for (std::size_t k = 0; k < a.rng_streams.size(); ++k) {
    for (int w = 0; w < 4; ++w)
      EXPECT_EQ(a.rng_streams[k].s[w], b.rng_streams[k].s[w]);
    EXPECT_EQ(a.rng_streams[k].spare, b.rng_streams[k].spare);
    EXPECT_EQ(a.rng_streams[k].have_spare, b.rng_streams[k].have_spare);
  }
  EXPECT_EQ(a.has_accretion, b.has_accretion);
  EXPECT_EQ(a.accretion_mergers, b.accretion_mergers);
  EXPECT_EQ(a.accretion_time, b.accretion_time);
}

TEST(Checkpoint, StreamRoundTripExact) {
  const CheckpointData d = sample_data(0xfeedULL);
  std::stringstream ss;
  write_checkpoint(ss, d);
  const CheckpointData back = read_checkpoint(ss);
  expect_identical(d, back);
}

TEST(Checkpoint, FileWriteIsAtomic) {
  const std::string dir = test_dir("atomic");
  const std::string path = dir + "/state.g6ckpt";
  const CheckpointData d = sample_data(1);
  write_checkpoint_file(path, d);
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp file must be renamed away";
  expect_identical(d, read_checkpoint_file(path));
}

TEST(Checkpoint, TruncatedFileRaises) {
  const std::string dir = test_dir("trunc");
  const std::string path = dir + "/state.g6ckpt";
  write_checkpoint_file(path, sample_data(1));
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW(read_checkpoint_file(path), g6::util::Error);
}

TEST(Checkpoint, BitFlipFailsCrc) {
  const std::string dir = test_dir("bitflip");
  const std::string path = dir + "/state.g6ckpt";
  write_checkpoint_file(path, sample_data(1));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  EXPECT_THROW(read_checkpoint_file(path), g6::util::Error);
}

TEST(Checkpoint, BadMagicRaises) {
  std::stringstream ss;
  ss << "NOTACKPT and then some bytes that are long enough to read";
  EXPECT_THROW(read_checkpoint(ss), g6::util::Error);
}

TEST(Checkpoint, ConfigHashSeparatesRuns) {
  IntegratorConfig cfg;
  cfg.eta = 0.02;
  const std::uint64_t base = config_hash(cfg, "cpu-direct", 0.008, 100, 7);
  EXPECT_EQ(base, config_hash(cfg, "cpu-direct", 0.008, 100, 7));

  IntegratorConfig other = cfg;
  other.eta = 0.04;
  EXPECT_NE(base, config_hash(other, "cpu-direct", 0.008, 100, 7));
  EXPECT_NE(base, config_hash(cfg, "grape6", 0.008, 100, 7));
  EXPECT_NE(base, config_hash(cfg, "cpu-direct", 0.016, 100, 7));
  EXPECT_NE(base, config_hash(cfg, "cpu-direct", 0.008, 101, 7));
  EXPECT_NE(base, config_hash(cfg, "cpu-direct", 0.008, 100, 8));
}

// The exact hash value is pinned: checkpoint manifests on disk and the job
// server's result cache (src/serve) both key on config_hash, so any change
// to the recipe — field order, precision, a new field — silently orphans
// every stored artifact. If this test fails you changed the recipe: bump it
// deliberately and document the break, never let it drift.
TEST(Checkpoint, ConfigHashGoldenValuePinned) {
  IntegratorConfig cfg;  // default-constructed on purpose: defaults are
                         // part of the contract this test pins
  cfg.eta = 0.02;
  EXPECT_EQ(config_hash(cfg, "cpu-direct", 0.008, 100, 7),
            0x80b4984d437a8ec5ULL);
}

TEST(Checkpoint, ManifestRoundTrip) {
  const std::string dir = test_dir("manifest");
  Manifest man;
  man.config_hash = 0xdeadbeefcafef00dULL;
  man.max_t = 12.5;
  man.segments.push_back({3, 4.0, 1000, segment_filename(3)});
  man.segments.push_back({4, 8.0, 1002, segment_filename(4)});
  write_manifest(dir, man);

  const Manifest back = read_manifest(dir);
  EXPECT_EQ(back.config_hash, man.config_hash);
  EXPECT_EQ(back.max_t, man.max_t);
  ASSERT_EQ(back.segments.size(), 2u);
  EXPECT_EQ(back.segments[0].segment, 3u);
  EXPECT_EQ(back.segments[0].t_sys, 4.0);
  EXPECT_EQ(back.segments[0].bytes, 1000u);
  EXPECT_EQ(back.segments[0].file, segment_filename(3));
  EXPECT_EQ(back.segments[1].segment, 4u);
}

TEST(Checkpoint, ManifestParseErrorMentionsLine) {
  const std::string dir = test_dir("manifest_bad");
  {
    std::ofstream os(g6::run::manifest_path(dir));
    os << "g6ckpt-manifest 1\nconfig abc\nsegment not-a-number\n";
  }
  try {
    read_manifest(dir);
    FAIL() << "expected g6::util::Error";
  } catch (const g6::util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos)
        << err.what();
  }
}

TEST(Checkpoint, ManifestRejectsNonMonotonicSegments) {
  const std::string dir = test_dir("manifest_order");
  {
    std::ofstream os(g6::run::manifest_path(dir));
    os << "g6ckpt-manifest 1\nconfig 1\nmax_t 0\n"
       << "segment 2 1.0 10 a\nsegment 1 2.0 10 b\n";
  }
  EXPECT_THROW(read_manifest(dir), g6::util::Error);
}

TEST(CheckpointStore, RetentionKeepsNewestSegments) {
  const std::string dir = test_dir("retention");
  CheckpointStore store(dir, 99, /*keep_segments=*/3);
  EXPECT_FALSE(store.open_existing());
  for (int k = 0; k < 5; ++k) {
    CheckpointData d = sample_data(99);
    d.t_sys = k;
    EXPECT_GT(store.append(d), 0u);
  }
  ASSERT_EQ(store.manifest().segments.size(), 3u);
  EXPECT_EQ(store.manifest().segments.front().segment, 2u);
  EXPECT_EQ(store.manifest().segments.back().segment, 4u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / segment_filename(0)));
  EXPECT_FALSE(fs::exists(fs::path(dir) / segment_filename(1)));
  EXPECT_TRUE(fs::exists(fs::path(dir) / segment_filename(2)));
  EXPECT_EQ(store.manifest().max_t, 4.0);
}

TEST(CheckpointStore, LoadLatestFallsBackPastCorruptSegment) {
  const std::string dir = test_dir("fallback");
  CheckpointStore store(dir, 7, 3);
  CheckpointData d0 = sample_data(7);
  CheckpointData d1 = sample_data(7);
  d1.t_sys = d0.t_sys + 1.0;
  store.append(d0);
  store.append(d1);

  // Corrupt the newest segment on disk; resume must fall back to segment 0.
  const fs::path latest = fs::path(dir) / segment_filename(1);
  fs::resize_file(latest, fs::file_size(latest) - 6);

  CheckpointStore resume(dir, 7, 3);
  ASSERT_TRUE(resume.open_existing());
  auto restored = resume.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->segment, 0u);
  EXPECT_EQ(restored->crc_fallbacks, 1u);
  EXPECT_EQ(restored->wasted_recompute, 1.0);
  expect_identical(restored->data, d0);
  // The corrupt segment is dropped so numbering continues from the restored
  // point: the next append must reuse segment number 1.
  EXPECT_FALSE(fs::exists(latest));
  resume.append(d0);
  EXPECT_EQ(resume.manifest().segments.back().segment, 1u);
}

TEST(CheckpointStore, AllSegmentsCorruptRaises) {
  const std::string dir = test_dir("all_corrupt");
  CheckpointStore store(dir, 7, 3);
  store.append(sample_data(7));
  store.append(sample_data(7));
  for (const auto& seg : store.manifest().segments)
    fs::resize_file(fs::path(dir) / seg.file, 16);

  CheckpointStore resume(dir, 7, 3);
  ASSERT_TRUE(resume.open_existing());
  EXPECT_THROW(resume.load_latest(), g6::util::Error);
}

TEST(CheckpointStore, EmptyDirectoryIsAFreshStart) {
  const std::string dir = test_dir("fresh");
  CheckpointStore store(dir, 7, 3);
  EXPECT_FALSE(store.open_existing());
  EXPECT_FALSE(store.load_latest().has_value());
}

TEST(CheckpointStore, ConfigHashMismatchRefusesResume) {
  const std::string dir = test_dir("hash_mismatch");
  {
    CheckpointStore store(dir, 7, 3);
    store.append(sample_data(7));
  }
  CheckpointStore other(dir, 8, 3);
  try {
    other.open_existing();
    FAIL() << "expected g6::util::Error";
  } catch (const g6::util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("refusing to resume"),
              std::string::npos)
        << err.what();
  }
}

TEST(Checkpoint, RngStreamContinuesAcrossSaveRestore) {
  g6::util::Rng a(123);
  for (int i = 0; i < 7; ++i) a.normal();  // odd count: spare is cached
  const g6::util::RngState st = a.save();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(a.normal());

  g6::util::Rng b(999);  // different seed: restore must fully overwrite
  b.restore(st);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.normal(), expected[i]) << i;
}

TEST(Checkpoint, RngRestoreRejectsZeroState) {
  g6::util::Rng r(1);
  EXPECT_THROW(r.restore(g6::util::RngState{}), g6::util::Error);
}

}  // namespace
