// Tests for the assembled machine model: topology, capacity, distribution
// invariance and the timing helpers.
#include "grape6/machine.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;
using g6::hw::Grape6Machine;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::MachineConfig;
using g6::util::FixedVec3;
using g6::util::Vec3;

std::vector<JParticle> cloud(int n, const FormatSpec& fmt, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  std::vector<JParticle> js(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& p = js[static_cast<std::size_t>(j)];
    p.id = static_cast<std::uint32_t>(j);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = FixedVec3::quantize(
        {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-0.5, 0.5)},
        fmt.pos_lsb);
  }
  return js;
}

TEST(MachineConfig, PaperTopology) {
  const MachineConfig cfg = MachineConfig::full_system();
  EXPECT_EQ(cfg.total_nodes(), 16);
  EXPECT_EQ(cfg.total_boards(), 64);
  EXPECT_EQ(cfg.total_chips(), 2048);
  EXPECT_EQ(cfg.total_pipelines(), 2048 * 6);
  // Paper: "theoretical peak performance is 63.4 Tflops" (57 ops, 90 MHz).
  EXPECT_NEAR(cfg.peak_flops() / 1e12, 63.0, 0.5);
  // Paper: per chip "the peak speed of a chip is 30.7 Gflops".
  EXPECT_NEAR(g6::hw::kChipPeakFlops / 1e9, 30.8, 0.1);
}

TEST(MachineConfig, CapacityCoversPaperN) {
  const MachineConfig cfg = MachineConfig::full_system();
  Grape6Machine machine(cfg);
  EXPECT_GE(machine.capacity(), 1800000u);
}

TEST(Machine, LoadDistributesRoundRobin) {
  MachineConfig cfg = MachineConfig::mini(4, 2, 16);
  Grape6Machine machine(cfg);
  const FormatSpec fmt = cfg.fmt;
  const auto js = cloud(10, fmt, 2);
  machine.load(js);
  EXPECT_EQ(machine.j_count(), 10u);
  // Boards 0,1 get 3 each; 2,3 get 2 each.
  EXPECT_EQ(machine.board(0).j_count(), 3u);
  EXPECT_EQ(machine.board(1).j_count(), 3u);
  EXPECT_EQ(machine.board(2).j_count(), 2u);
  EXPECT_EQ(machine.board(3).j_count(), 2u);
}

TEST(Machine, CapacityEnforced) {
  MachineConfig cfg = MachineConfig::mini(1, 1, 4);
  Grape6Machine machine(cfg);
  const auto js = cloud(5, cfg.fmt, 3);
  EXPECT_THROW(machine.load(js), g6::util::Error);
}

TEST(Machine, WriteAndReadBack) {
  MachineConfig cfg = MachineConfig::mini(2, 2, 16);
  Grape6Machine machine(cfg);
  auto js = cloud(6, cfg.fmt, 4);
  machine.load(js);
  js[3].mass = 42.0;
  machine.write_j(3, js[3]);
  EXPECT_EQ(machine.read_j(3).mass, 42.0);
  EXPECT_THROW(machine.read_j(99), g6::util::Error);
}

// Machine-level distribution invariance: any topology gives bit-identical
// totals (board partials merge exactly).
class MachineTopology : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MachineTopology, ForceIndependentOfTopology) {
  const auto [boards, chips] = GetParam();
  const FormatSpec fmt;
  const auto js = cloud(96, fmt, 7);
  std::vector<IParticle> batch;
  for (int k = 0; k < 4; ++k)
    batch.push_back(g6::hw::make_i_particle(500 + static_cast<std::uint32_t>(k),
                                            {1.0 * k, -0.5 * k, 0.0}, {}, fmt));

  MachineConfig ref_cfg = MachineConfig::mini(1, 1, 256);
  Grape6Machine ref(ref_cfg);
  ref.load(js);
  ref.predict_all(0.0);
  std::vector<ForceAccumulator> expect;
  ref.compute(batch, 1e-4, expect);

  MachineConfig cfg = MachineConfig::mini(boards, chips, 64);
  Grape6Machine machine(cfg);
  machine.load(js);
  machine.predict_all(0.0);
  std::vector<ForceAccumulator> out;
  machine.compute(batch, 1e-4, out);

  for (std::size_t k = 0; k < batch.size(); ++k)
    EXPECT_EQ(out[k], expect[k]) << "boards=" << boards << " chips=" << chips;
}

INSTANTIATE_TEST_SUITE_P(Topologies, MachineTopology,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{3, 5}, std::pair{8, 2}));

TEST(Machine, TimingHelpersPositiveAndMonotone) {
  MachineConfig cfg = MachineConfig::mini(2, 4, 256);
  Grape6Machine machine(cfg);
  machine.load(cloud(100, cfg.fmt, 8));
  const double t1 = machine.pipeline_seconds(10);
  const double t2 = machine.pipeline_seconds(100);
  EXPECT_GT(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_GT(machine.predict_seconds(), 0.0);
}

TEST(Machine, ClearEmptiesJMemory) {
  MachineConfig cfg = MachineConfig::mini(2, 2, 16);
  Grape6Machine machine(cfg);
  machine.load(cloud(8, cfg.fmt, 9));
  machine.clear();
  EXPECT_EQ(machine.j_count(), 0u);
  EXPECT_EQ(machine.board(0).j_count(), 0u);
}

TEST(Machine, CountersAggregate) {
  MachineConfig cfg = MachineConfig::mini(2, 2, 64);
  Grape6Machine machine(cfg);
  machine.load(cloud(20, cfg.fmt, 10));
  machine.predict_all(0.0);
  std::vector<IParticle> batch{
      g6::hw::make_i_particle(900, {0, 0, 0}, {}, cfg.fmt)};
  std::vector<ForceAccumulator> out;
  machine.compute(batch, 0.0, out);
  EXPECT_EQ(machine.counters().interactions, 20u);  // all j's, across boards
}

}  // namespace
