// Tests for the blockstep recorder and the measured-vs-model report: unit
// checks on the join arithmetic, plus an end-to-end N=256 run through the
// GRAPE machine model joined against the analytic PerfModel of the same
// machine — every term ratio must come out finite and positive.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>

#include "cluster/perf_model.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/integrator.hpp"
#include "obs/blockstep_record.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

using g6::obs::BlockstepRecorder;
using g6::obs::JsonValue;
using g6::obs::kPhaseCount;
using g6::obs::Phase;
using g6::obs::StepRecord;

TEST(ObsBlockstepRecorder, RecordsAndOutside) {
  BlockstepRecorder rec;
  rec.add(Phase::kPipeline, 0.5);  // before any step -> outside()
  EXPECT_DOUBLE_EQ(rec.outside()[Phase::kPipeline], 0.5);

  rec.begin_step();
  EXPECT_TRUE(rec.step_open());
  rec.add(Phase::kPredict, 1.0);
  rec.add(Phase::kPredict, 0.5);
  rec.add(Phase::kHost, 2.0);
  rec.annotate(4.0, 17);
  rec.end_step();
  EXPECT_FALSE(rec.step_open());

  ASSERT_EQ(rec.records().size(), 1u);
  const StepRecord& r = rec.records()[0];
  EXPECT_DOUBLE_EQ(r.t, 4.0);
  EXPECT_EQ(r.n_act, 17u);
  EXPECT_DOUBLE_EQ(r[Phase::kPredict], 1.5);
  EXPECT_DOUBLE_EQ(r[Phase::kHost], 2.0);
  EXPECT_DOUBLE_EQ(r.total(), 3.5);

  rec.clear();
  EXPECT_TRUE(rec.records().empty());
  EXPECT_DOUBLE_EQ(rec.outside().total(), 0.0);
}

TEST(ObsBlockstepRecorder, SumAndJson) {
  BlockstepRecorder rec;
  for (int i = 0; i < 3; ++i) {
    rec.begin_step();
    rec.add(Phase::kPipeline, 1.0);
    rec.annotate(static_cast<double>(i), 10);
    rec.end_step();
  }
  const StepRecord s = rec.sum();
  EXPECT_EQ(s.n_act, 30u);
  EXPECT_DOUBLE_EQ(s[Phase::kPipeline], 3.0);

  const JsonValue doc = JsonValue::parse(rec.to_json());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at(1).find("t")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at(1).find("n_act")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(doc.at(1).find("pipeline")->as_number(), 1.0);
}

TEST(ObsReport, JoinArithmetic) {
  BlockstepRecorder rec;
  rec.begin_step();
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    rec.add(static_cast<Phase>(p), 2.0);
  rec.annotate(0.0, 100);
  rec.end_step();

  const auto model = [](std::size_t n_act) {
    std::array<double, kPhaseCount> out{};
    out.fill(static_cast<double>(n_act) * 0.01);  // 1.0 for n_act=100
    return out;
  };
  const auto cmp =
      g6::obs::compare_to_model(rec.records(), 1000, model, 57.0);
  EXPECT_EQ(cmp.steps, 1u);
  EXPECT_DOUBLE_EQ(cmp.operations, 57.0 * 1000.0 * 100.0);
  EXPECT_DOUBLE_EQ(cmp.measured_seconds, 14.0);
  EXPECT_DOUBLE_EQ(cmp.modeled_seconds, 7.0);
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    EXPECT_DOUBLE_EQ(cmp.ratio(static_cast<Phase>(p)), 2.0);
  EXPECT_DOUBLE_EQ(cmp.measured_flops, cmp.operations / 14.0);
  EXPECT_DOUBLE_EQ(cmp.modeled_flops, cmp.operations / 7.0);
}

TEST(ObsReport, ZeroTermsConvention) {
  BlockstepRecorder rec;
  rec.begin_step();
  rec.annotate(0.0, 10);
  rec.end_step();
  // Model returns all-zero terms: 0/0 ratios report 1.0 (agreement).
  const auto zero = [](std::size_t) {
    return std::array<double, kPhaseCount>{};
  };
  const auto cmp = g6::obs::compare_to_model(rec.records(), 100, zero);
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    EXPECT_DOUBLE_EQ(cmp.ratio(static_cast<Phase>(p)), 1.0);
}

// End-to-end: integrate a tiny disk on the functional GRAPE machine model
// with the recorder attached, then join the measured records against the
// analytic model of the same machine. This is the §4 consistency check.
TEST(ObsReport, MeasuredVsModelEndToEnd) {
  g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(4, 8, 4096);
  mc.fmt = g6::hw::FormatSpec::for_scales(64.0, 1e-4);

  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(254);
  dcfg.seed = 1234;
  auto disk = g6::disk::make_disk(dcfg);

  g6::hw::Grape6Backend backend(mc, 0.008);
  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = 0.02;
  icfg.eta_init = 0.01;
  icfg.dt_max = 4.0;
  icfg.dt_min = 0x1p-30;
  g6::nbody::HermiteIntegrator integ(disk.system, backend, icfg);

  BlockstepRecorder rec;
  integ.set_step_recorder(&rec);
  integ.initialize();
  integ.evolve(4.0);

  const std::size_t n_total = disk.system.size();
  ASSERT_EQ(rec.records().size(), integ.stats().blocks);
  ASSERT_GT(rec.records().size(), 0u);

  g6::cluster::PerfParams pp;
  pp.machine = mc;
  const g6::cluster::PerfModel model(pp);
  const auto cmp = g6::obs::compare_to_model(
      rec.records(), n_total, [&](std::size_t n_act) {
        return g6::cluster::to_phase_array(model.blockstep(
            n_total, n_act, g6::cluster::HostMode::kHardwareNet));
      });

  EXPECT_EQ(cmp.steps, rec.records().size());
  EXPECT_GT(cmp.operations, 0.0);
  // Every term: measured > 0, modeled > 0, ratio finite and positive.
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    EXPECT_GT(cmp.measured_of(phase), 0.0)
        << "measured " << g6::obs::phase_name(phase);
    EXPECT_GT(cmp.modeled_of(phase), 0.0)
        << "modeled " << g6::obs::phase_name(phase);
    const double ratio = cmp.ratio(phase);
    EXPECT_TRUE(std::isfinite(ratio) && ratio > 0.0)
        << g6::obs::phase_name(phase) << " ratio " << ratio;
  }
  EXPECT_TRUE(std::isfinite(cmp.measured_flops) && cmp.measured_flops > 0.0);
  EXPECT_TRUE(std::isfinite(cmp.modeled_flops) && cmp.modeled_flops > 0.0);

  // The rendered report and the JSON form are well-formed.
  const std::string table = g6::obs::render_comparison(cmp);
  EXPECT_NE(table.find("pipeline"), std::string::npos);
  const JsonValue doc = JsonValue::parse(g6::obs::comparison_to_json(cmp));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("steps")->as_number(),
                   static_cast<double>(cmp.steps));
}
