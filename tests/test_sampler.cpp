// Tests for the TimeSeriesSampler: frame contents (values, deltas, rates,
// histogram percentiles), ring bounding, JSONL and binary exports, the
// on_frame hook, and the snapshot-while-writing coherence torture test that
// guards MetricsRegistry::snapshot()'s registry-wide serialization.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

using g6::obs::JsonValue;
using g6::obs::MetricKind;
using g6::obs::MetricsRegistry;
using g6::obs::SamplerConfig;
using g6::obs::SeriesFrame;
using g6::obs::SeriesSample;
using g6::obs::TimeSeriesSampler;

#ifndef G6_OBS_DISABLED

namespace {

/// Find the sample for a named metric inside one frame (nullptr if absent).
const SeriesSample* find_sample(const TimeSeriesSampler& sampler,
                                const SeriesFrame& frame,
                                const std::string& name) {
  const std::vector<std::string> names = sampler.names();
  for (const SeriesSample& s : frame.samples)
    if (s.name_id < names.size() && names[s.name_id] == name) return &s;
  return nullptr;
}

}  // namespace

TEST(Sampler, FirstFrameHasZeroDeltaAndRate) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.ticks");
  c.add(7);
  TimeSeriesSampler sampler(reg);
  sampler.sample_now();
  const auto frames = sampler.frames();
  ASSERT_EQ(frames.size(), 1u);
  const SeriesSample* s = find_sample(sampler, frames[0], "g6.test.ticks");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(s->value, 7.0);
  EXPECT_DOUBLE_EQ(s->delta, 0.0);  // no previous frame to diff against
  EXPECT_DOUBLE_EQ(s->rate, 0.0);
}

TEST(Sampler, DeltaAndRateAgainstPreviousFrame) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.work");
  TimeSeriesSampler sampler(reg);
  c.add(10);
  sampler.sample_now();
  c.add(25);
  sampler.sample_now();
  const auto frames = sampler.frames();
  ASSERT_EQ(frames.size(), 2u);
  const SeriesSample* s = find_sample(sampler, frames[1], "g6.test.work");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 35.0);
  EXPECT_DOUBLE_EQ(s->delta, 25.0);
  ASSERT_GT(frames[1].dt, 0.0);
  EXPECT_DOUBLE_EQ(s->rate, s->delta / frames[1].dt);
  EXPECT_EQ(frames[1].seq, 1u);
}

TEST(Sampler, HistogramCarriesPercentiles) {
  MetricsRegistry reg;
  auto h = reg.histogram("g6.test.lat");
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  TimeSeriesSampler sampler(reg);
  sampler.sample_now();
  const auto frames = sampler.frames();
  const SeriesSample* s = find_sample(sampler, frames[0], "g6.test.lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_DOUBLE_EQ(s->value, 1000.0);  // histogram value = sample count
  EXPECT_GT(s->p50, 0.0);
  EXPECT_LE(s->p50, s->p90);
  EXPECT_LE(s->p90, s->p99);
}

TEST(Sampler, RingDropsOldestFrames) {
  MetricsRegistry reg;
  auto g = reg.gauge("g6.test.level");
  TimeSeriesSampler sampler(reg);
  SamplerConfig cfg;
  cfg.interval_seconds = 3600.0;  // background thread never fires in-test
  cfg.max_frames = 4;
  sampler.start(cfg);
  for (int i = 0; i < 10; ++i) {
    g.set(static_cast<double>(i));
    sampler.sample_now();
  }
  sampler.stop();
  EXPECT_EQ(sampler.frames_taken(), 10u);
  const auto frames = sampler.frames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames.front().seq, 6u);  // oldest surviving frame
  EXPECT_EQ(frames.back().seq, 9u);
}

TEST(Sampler, BackgroundThreadTakesFrames) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.bg");
  TimeSeriesSampler sampler(reg);
  SamplerConfig cfg;
  cfg.interval_seconds = 0.01;
  sampler.start(cfg);
  EXPECT_TRUE(sampler.running());
  c.add(1);
  // Wait (bounded) until the thread has sampled at least twice.
  for (int spin = 0; spin < 500 && sampler.frames_taken() < 2; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.frames_taken(), 2u);
}

TEST(Sampler, OnFrameHookSeesEveryFrame) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.hook");
  TimeSeriesSampler sampler(reg);
  std::vector<std::uint64_t> seen;
  sampler.on_frame = [&](const SeriesFrame& f) { seen.push_back(f.seq); };
  c.add(1);
  sampler.sample_now();
  sampler.sample_now();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], 1u);
}

TEST(Sampler, FrameJsonParses) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.json");
  auto h = reg.histogram("g6.test.jhist");
  c.add(3);
  h.add(1.0);
  TimeSeriesSampler sampler(reg);
  sampler.sample_now();
  const JsonValue doc = JsonValue::parse(sampler.frames()[0].to_json());
  ASSERT_NE(doc.find("m"), nullptr);
  EXPECT_EQ(doc.find("m")->size(), 2u);
  EXPECT_DOUBLE_EQ(doc.find("seq")->as_number(), 0.0);
}

TEST(Sampler, WriteJsonlRoundTrips) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.file");
  TimeSeriesSampler sampler(reg);
  for (int i = 0; i < 3; ++i) {
    c.add(2);
    sampler.sample_now();
  }
  const std::string path = testing::TempDir() + "g6_series_test.jsonl";
  ASSERT_TRUE(sampler.write_jsonl(path));

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = JsonValue::parse(line);
  EXPECT_EQ(header.find("series")->as_string(), "g6");
  ASSERT_NE(header.find("names"), nullptr);
  EXPECT_EQ(header.find("names")->at(0).as_string(), "g6.test.file");
  int frames = 0;
  while (std::getline(in, line)) {
    const JsonValue frame = JsonValue::parse(line);
    EXPECT_NE(frame.find("m"), nullptr);
    ++frames;
  }
  EXPECT_EQ(frames, 3);
  std::remove(path.c_str());
}

TEST(Sampler, WriteBinaryHasMagicAndCounts) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.bin");
  TimeSeriesSampler sampler(reg);
  c.add(1);
  sampler.sample_now();
  sampler.sample_now();
  const std::string path = testing::TempDir() + "g6_series_test.bin";
  ASSERT_TRUE(sampler.write_binary(path));

  std::ifstream in(path, std::ios::binary);
  char magic[9] = {};
  in.read(magic, 9);
  EXPECT_EQ(std::string(magic, 9), "G6SERIES1");
  std::uint32_t n_names = 0;
  in.read(reinterpret_cast<char*>(&n_names), sizeof n_names);
  EXPECT_EQ(n_names, 1u);
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof len);
  std::string name(len, '\0');
  in.read(name.data(), len);
  EXPECT_EQ(name, "g6.test.bin");
  std::uint32_t n_frames = 0;
  in.read(reinterpret_cast<char*>(&n_frames), sizeof n_frames);
  EXPECT_EQ(n_frames, 2u);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

// Satellite (b): the snapshot-while-writing coherence guarantee. A provider
// publishes the SAME source value into two metrics; concurrent snapshots
// must never observe the pair out of sync, even with writer threads hot on
// other metrics. Before snapshot() was serialized registry-wide, two
// overlapping snapshots could interleave one provider's publishes.
TEST(Sampler, SnapshotCoherenceUnderConcurrentWriters) {
  MetricsRegistry reg;
  std::atomic<std::uint64_t> source{0};
  reg.add_provider([&source](MetricsRegistry& r) {
    const std::uint64_t v = source.load(std::memory_order_relaxed);
    r.counter("g6.test.pair_a").set(v);
    r.counter("g6.test.pair_b").set(v);
  });

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      auto noise = reg.counter("g6.test.noise" + std::to_string(w));
      auto hist = reg.histogram("g6.test.noise_hist");
      while (!stop.load(std::memory_order_relaxed)) {
        source.fetch_add(1, std::memory_order_relaxed);
        noise.add(1);
        hist.add(1.0);
      }
    });
  }

  TimeSeriesSampler sampler(reg);
  int checked = 0;
  for (int i = 0; i < 200; ++i) {
    sampler.sample_now();
    const auto frames = sampler.frames();
    const SeriesFrame& f = frames.back();
    const SeriesSample* a = find_sample(sampler, f, "g6.test.pair_a");
    const SeriesSample* b = find_sample(sampler, f, "g6.test.pair_b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Both written from one source load under the snapshot lock: must match.
    ASSERT_DOUBLE_EQ(a->value, b->value) << "incoherent snapshot at " << i;
    ++checked;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(checked, 200);
}

#else  // G6_OBS_DISABLED

TEST(SamplerDisabled, EverythingIsNoop) {
  MetricsRegistry reg;
  TimeSeriesSampler sampler(reg);
  sampler.start({});
  EXPECT_FALSE(sampler.running());
  sampler.sample_now();
  EXPECT_TRUE(sampler.frames().empty());
  EXPECT_EQ(sampler.frames_taken(), 0u);
  EXPECT_EQ(sampler.to_json(), "{}");
  EXPECT_FALSE(sampler.write_jsonl("/tmp/never_written.jsonl"));
  sampler.stop();
}

#endif  // G6_OBS_DISABLED
