// P3T hybrid backend tests (docs/P3T.md): changeover math, force accuracy
// against direct summation, the energy-conservation gate at overlapping N,
// neighbor-list symmetry/determinism, close-encounter group bookkeeping,
// thread-count bit-identity, and checkpoint kill-and-resume bit-identity
// through a RunManager — plus the grow-only/parallel-build contracts of the
// refactored BarnesHutTree.
#include "p3t/p3t_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <vector>

#include "disk/disk_model.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "p3t/changeover.hpp"
#include "run/run_manager.hpp"
#include "tree/bh_tree.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;

using g6::nbody::Force;
using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;
using g6::nbody::ParticleSystem;
using g6::p3t::Changeover;
using g6::p3t::P3TConfig;
using g6::p3t::P3THybridBackend;
using g6::util::Vec3;

constexpr double kEps = 0.008;
constexpr std::uint64_t kSeed = 20020101;

ParticleSystem make_test_disk(std::size_t n) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  cfg.seed = kSeed;
  return std::move(g6::disk::make_disk(cfg).system);
}

IntegratorConfig disk_icfg() {
  IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = 0.02;
  icfg.eta_init = 0.01;
  icfg.dt_max = 0.125;
  return icfg;
}

std::vector<std::uint32_t> all_indices(std::size_t n) {
  std::vector<std::uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
  return idx;
}

// ---------------------------------------------------------------- changeover

TEST(Changeover, BoundaryValuesAndMonotonicity) {
  const Changeover ch{1.0, 3.0};
  EXPECT_EQ(ch.K(0.0), 1.0);
  EXPECT_EQ(ch.K(1.0), 1.0);
  EXPECT_EQ(ch.K(3.0), 0.0);
  EXPECT_EQ(ch.K(10.0), 0.0);
  EXPECT_EQ(ch.dKdr(0.5), 0.0);
  EXPECT_EQ(ch.dKdr(5.0), 0.0);
  double prev = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double r = 1.0 + 2.0 * k / 100.0;
    const double v = ch.K(r);
    EXPECT_LE(v, prev) << r;
    prev = v;
  }
  EXPECT_NEAR(ch.K(2.0), 0.5, 1e-12);  // midpoint of the quintic smoothstep
}

TEST(Changeover, DerivativeMatchesFiniteDifference) {
  const Changeover ch{0.03, 0.24};
  const double h = 1e-7;
  for (double r : {0.05, 0.1, 0.15, 0.2, 0.23}) {
    const double fd = (ch.K(r + h) - ch.K(r - h)) / (2.0 * h);
    EXPECT_NEAR(ch.dKdr(r), fd, 1e-5 * std::max(1.0, std::abs(fd))) << r;
  }
  // C1 at both ends: derivative tends to zero.
  EXPECT_NEAR(ch.dKdr(0.030001), 0.0, 1e-4);
  EXPECT_NEAR(ch.dKdr(0.239999), 0.0, 1e-4);
}

// ------------------------------------------------------------ force accuracy

// At the synchronised start, the hybrid force must agree with direct
// summation: neighbor pairs are exact (partition of unity, fresh = epoch at
// t=0), so the only error is the tree multipole on the far field.
TEST(P3TForce, MatchesDirectAtT0) {
  const std::size_t n = 1000;
  ParticleSystem ps = make_test_disk(n);
  const auto idx = all_indices(ps.size());

  g6::nbody::CpuDirectBackend direct(kEps);
  direct.load(ps);
  std::vector<Force> fd(ps.size());
  direct.compute(0.0, idx, fd);

  P3THybridBackend p3t(P3TConfig{.gm_central = 1.0}, kEps);
  p3t.load(ps);
  std::vector<Force> fh(ps.size());
  p3t.compute(0.0, idx, fh);

  double max_rel = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double na = norm(fd[i].acc);
    ASSERT_GT(na, 0.0);
    const double rel = norm(fh[i].acc - fd[i].acc) / na;
    max_rel = std::max(max_rel, rel);
    sum_sq += rel * rel;
  }
  const double rms_rel = std::sqrt(sum_sq / static_cast<double>(ps.size()));
  // theta = 0.4 with quadrupole moments; bounds documented in docs/P3T.md.
  // The max is dominated by particles whose mutual force nearly cancels —
  // the RMS is the meaningful accuracy figure for the disk.
  EXPECT_LT(max_rel, 2e-2);
  EXPECT_LT(rms_rel, 2e-3);
}

TEST(P3TForce, SmallThetaApproachesDirect) {
  const std::size_t n = 500;
  ParticleSystem ps = make_test_disk(n);
  const auto idx = all_indices(ps.size());

  g6::nbody::CpuDirectBackend direct(kEps);
  direct.load(ps);
  std::vector<Force> fd(ps.size());
  direct.compute(0.0, idx, fd);

  P3TConfig cfg;
  cfg.gm_central = 1.0;
  cfg.theta = 0.05;
  P3THybridBackend p3t(cfg, kEps);
  p3t.load(ps);
  std::vector<Force> fh(ps.size());
  p3t.compute(0.0, idx, fh);

  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double na = norm(fd[i].acc);
    EXPECT_LT(norm(fh[i].acc - fd[i].acc) / na, 2e-5) << i;
  }
}

// ------------------------------------------------------- neighbor lists

TEST(P3TNeighbors, SymmetricDeterministicAndCoverChangeoverShell) {
  const std::size_t n = 800;
  ParticleSystem ps = make_test_disk(n);
  P3THybridBackend p3t(P3TConfig{.gm_central = 1.0}, kEps);
  p3t.load(ps);
  p3t.ensure_epoch(0.0);
  ASSERT_TRUE(p3t.epoch_valid());
  ASSERT_GT(p3t.r_out(), p3t.r_in());
  ASSERT_GT(p3t.r_in(), 0.0);

  // Symmetry: j in N(i) <=> i in N(j).
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (const std::uint32_t j : p3t.neighbors(i)) {
      ASSERT_NE(j, i);
      const auto back = p3t.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(),
                          static_cast<std::uint32_t>(i)),
                back.end())
          << i << " " << j;
      ++pairs;
    }
  }
  // The disk is dense enough that some neighbor pairs must exist.
  EXPECT_GT(pairs, 0u);

  // Coverage: every pair within r_out is on someone's list (brute force).
  const double r_out = p3t.r_out();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = i + 1; j < ps.size(); ++j) {
      const double d2 = norm2(ps.pos(j) - ps.pos(i));
      if (d2 >= r_out * r_out) continue;
      const auto nb = p3t.neighbors(i);
      EXPECT_NE(std::find(nb.begin(), nb.end(), static_cast<std::uint32_t>(j)),
                nb.end())
          << i << " " << j;
    }
  }

  // Determinism: rebuilding from the same state reproduces the lists.
  std::vector<std::uint32_t> before(p3t.neighbors(0).begin(),
                                    p3t.neighbors(0).end());
  P3THybridBackend again(P3TConfig{.gm_central = 1.0}, kEps);
  again.load(ps);
  again.ensure_epoch(0.0);
  std::vector<std::uint32_t> after(again.neighbors(0).begin(),
                                   again.neighbors(0).end());
  EXPECT_EQ(before, after);
}

TEST(P3TNeighbors, InnerPairsAreInsideRin) {
  const std::size_t n = 600;
  ParticleSystem ps = make_test_disk(n);
  P3THybridBackend p3t(P3TConfig{.gm_central = 1.0}, kEps);
  p3t.load(ps);
  p3t.ensure_epoch(0.0);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto nb = p3t.neighbors(i);
    const std::size_t inner = p3t.inner_neighbor_count(i);
    for (std::size_t q = 0; q < inner; ++q) {
      const double d = norm(ps.pos(nb[q]) - ps.pos(i));
      EXPECT_LE(d, p3t.r_in()) << i;
    }
  }
}

// --------------------------------------------------------------- groups

TEST(P3TGroups, ClosePairIsGrouped) {
  // Two heavy particles well inside their mutual Hill radius, plus a distant
  // third body: the pair must form one group, the third stays alone.
  ParticleSystem ps;
  ps.add(1e-5, {20.0, 0.0, 0.0}, {0.0, 0.223, 0.0});
  ps.add(1e-5, {20.0 + 1e-4, 0.0, 0.0}, {0.0, 0.223, 0.0});
  ps.add(1e-5, {-25.0, 0.0, 0.0}, {0.0, -0.2, 0.0});
  P3THybridBackend p3t(P3TConfig{.gm_central = 1.0}, kEps);
  p3t.load(ps);
  p3t.ensure_epoch(0.0);
  EXPECT_EQ(p3t.group_count(), 1u);
  EXPECT_EQ(p3t.grouped_particles(), 2u);
  EXPECT_EQ(p3t.group_of(0), p3t.group_of(1));
  EXPECT_NE(p3t.group_of(0), p3t.group_of(2));
  // Group members must be mutual neighbors on the fully-direct (K = 1) path:
  // the group radius is capped at r_in.
  const auto nb = p3t.neighbors(0);
  EXPECT_NE(std::find(nb.begin(), nb.end(), 1u), nb.end());
}

// ------------------------------------------------------------- energy gate

// The documented acceptance gate (docs/P3T.md): relative energy drift of a
// hybrid disk run stays within 2e-6 over t = 4 at the default theta = 0.4.
// Direct summation on the same system drifts ~1e-9; the hybrid budget is
// dominated by the tree's multipole truncation plus epoch staleness.
void run_energy_gate(std::size_t n, double t_end, double bound) {
  ParticleSystem ps = make_test_disk(n);
  P3THybridBackend backend(P3TConfig{.gm_central = 1.0}, kEps);
  HermiteIntegrator integ(ps, backend, disk_icfg());
  integ.initialize();
  const double e0 =
      g6::nbody::compute_energy(ps, kEps, 1.0, &g6::util::shared_pool())
          .total();
  integ.evolve(t_end);
  const double e1 =
      g6::nbody::compute_energy(ps, kEps, 1.0, &g6::util::shared_pool())
          .total();
  EXPECT_LT(std::abs((e1 - e0) / e0), bound) << "n=" << n;
}

TEST(P3TEnergy, GateN1k) { run_energy_gate(1000, 4.0, 2e-6); }

TEST(P3TEnergy, GateN4k) { run_energy_gate(4000, 2.0, 2e-6); }

TEST(P3TEnergy, GateN16k) { run_energy_gate(16384, 1.0, 2e-6); }

// ------------------------------------------------------ thread bit-identity

TEST(P3TDeterminism, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 400;
  const double t_end = 1.0;
  std::vector<ParticleSystem> finals;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    g6::util::ThreadPool pool(threads);
    ParticleSystem ps = make_test_disk(n);
    P3THybridBackend backend(P3TConfig{.gm_central = 1.0}, kEps, &pool);
    HermiteIntegrator integ(ps, backend, disk_icfg(), &pool);
    integ.initialize();
    integ.evolve(t_end);
    finals.push_back(ps);
  }
  for (std::size_t v = 1; v < finals.size(); ++v) {
    ASSERT_EQ(finals[0].size(), finals[v].size());
    for (std::size_t i = 0; i < finals[0].size(); ++i) {
      EXPECT_EQ(finals[0].pos(i), finals[v].pos(i)) << i;
      EXPECT_EQ(finals[0].vel(i), finals[v].vel(i)) << i;
      EXPECT_EQ(finals[0].acc(i), finals[v].acc(i)) << i;
      EXPECT_EQ(finals[0].jerk(i), finals[v].jerk(i)) << i;
    }
  }
}

// ------------------------------------------------- checkpoint kill-and-resume

std::string test_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("g6_p3t_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

// One fresh "process image" (test_run_manager idiom): new ICs, pool, backend
// and integrator, exactly what a restarted process has.
struct Image {
  explicit Image(std::size_t threads, std::size_t n = 96) : pool(threads) {
    ps = make_test_disk(n);
    backend = std::make_unique<P3THybridBackend>(P3TConfig{.gm_central = 1.0},
                                                 kEps, &pool);
    IntegratorConfig icfg = disk_icfg();
    icfg.dt_max = 0x1p-5;  // many preemption points before t_end
    integ = std::make_unique<HermiteIntegrator>(ps, *backend, icfg, &pool);
  }
  g6::util::ThreadPool pool;
  ParticleSystem ps;
  std::unique_ptr<P3THybridBackend> backend;
  std::unique_ptr<HermiteIntegrator> integ;
};

TEST(P3TCheckpoint, KillAndResumeBitIdenticalAcrossThreadCounts) {
  const double t_end = 0.5;
  g6::run::RunConfig rcfg;
  rcfg.t_end = t_end;
  rcfg.checkpoint_every = 0.05;
  rcfg.ic_seed = kSeed;

  // Reference: uninterrupted run, 2 threads.
  Image ref(2);
  rcfg.checkpoint_dir = test_dir("ref");
  g6::run::RunManager ref_mgr(*ref.integ, rcfg);
  const auto ref_rep = ref_mgr.run();
  ASSERT_EQ(ref_rep.outcome, g6::run::RunOutcome::kCompleted);

  // Faulted: kill after a step budget, resume in a fresh image with a
  // different thread count each leg.
  rcfg.checkpoint_dir = test_dir("faulted");
  rcfg.resume = true;
  const std::size_t legs_threads[] = {1, 8, 3, 2, 1, 4};
  std::size_t leg = 0;
  for (;; ++leg) {
    ASSERT_LT(leg, 64u) << "run did not converge";
    Image img(legs_threads[leg % 6]);
    g6::run::RunConfig legcfg = rcfg;
    legcfg.step_budget = 3;  // preempt mid-epoch
    g6::run::RunManager mgr(*img.integ, legcfg);
    const auto rep = mgr.run();
    if (rep.outcome == g6::run::RunOutcome::kCompleted) {
      ASSERT_GE(leg, 2u);  // the budget must actually have preempted us
      ASSERT_EQ(ref.ps.size(), img.ps.size());
      for (std::size_t i = 0; i < ref.ps.size(); ++i) {
        EXPECT_EQ(ref.ps.pos(i), img.ps.pos(i)) << i;
        EXPECT_EQ(ref.ps.vel(i), img.ps.vel(i)) << i;
        EXPECT_EQ(ref.ps.acc(i), img.ps.acc(i)) << i;
        EXPECT_EQ(ref.ps.jerk(i), img.ps.jerk(i)) << i;
        EXPECT_EQ(ref.ps.time(i), img.ps.time(i)) << i;
        EXPECT_EQ(ref.ps.dt(i), img.ps.dt(i)) << i;
      }
      break;
    }
  }
  fs::remove_all(fs::path(rcfg.checkpoint_dir));
}

TEST(P3TCheckpoint, BlobRoundTripsThroughSaveLoad) {
  ParticleSystem ps = make_test_disk(64);
  P3THybridBackend a(P3TConfig{.gm_central = 1.0}, kEps);
  a.load(ps);
  a.ensure_epoch(0.0);
  const auto blob = a.save_checkpoint_state();
  ASSERT_FALSE(blob.empty());

  P3THybridBackend b(P3TConfig{.gm_central = 1.0}, kEps);
  b.load(ps);
  b.load_checkpoint_state(blob);
  ASSERT_TRUE(b.epoch_valid());
  EXPECT_EQ(a.r_in(), b.r_in());
  EXPECT_EQ(a.r_out(), b.r_out());
  EXPECT_EQ(a.epoch_time(), b.epoch_time());
  EXPECT_EQ(a.next_rebuild_time(), b.next_rebuild_time());

  // Forces computed against the restored epoch are bit-identical.
  const auto idx = all_indices(ps.size());
  std::vector<Force> fa(ps.size()), fb(ps.size());
  a.compute(0.0, idx, fa);
  b.compute(0.0, idx, fb);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(fa[i].acc, fb[i].acc) << i;
    EXPECT_EQ(fa[i].jerk, fb[i].jerk) << i;
    EXPECT_EQ(fa[i].pot, fb[i].pot) << i;
  }

  // A backend that never built an epoch saves an empty blob, and loading an
  // empty blob is a no-op.
  P3THybridBackend c(P3TConfig{.gm_central = 1.0}, kEps);
  c.load(ps);
  EXPECT_TRUE(c.save_checkpoint_state().empty());
  c.load_checkpoint_state({});
  EXPECT_FALSE(c.epoch_valid());
}

// ----------------------------------------------------- tree rebuild reuse

TEST(TreeReuse, RebuildAllocatesNothingAtSteadyState) {
  const std::size_t n = 2000;
  ParticleSystem ps = make_test_disk(n);
  std::vector<Vec3> pos(ps.positions().begin(), ps.positions().end());
  std::vector<Vec3> vel(ps.velocities().begin(), ps.velocities().end());
  std::vector<double> mass(ps.masses().begin(), ps.masses().end());

  g6::tree::BarnesHutTree tree;
  tree.build(pos, vel, mass);
  const auto* nodes_data = tree.nodes().data();
  const auto* order_data = tree.order().data();
  const std::size_t node_count = tree.node_count();

  // Jiggle positions slightly (structure-preserving) and rebuild: the same
  // storage must be reused — no reallocation of the node pool or order array.
  for (auto& x : pos) x.x += 1e-9;
  for (int rep = 0; rep < 3; ++rep) {
    tree.build(pos, vel, mass);
    EXPECT_EQ(tree.nodes().data(), nodes_data);
    EXPECT_EQ(tree.order().data(), order_data);
    EXPECT_EQ(tree.node_count(), node_count);
  }
}

TEST(TreeParallelBuild, BitIdenticalToSerial) {
  const std::size_t n = g6::tree::BarnesHutTree::kParallelBuildMin + 1234;
  ParticleSystem ps = make_test_disk(n);
  std::vector<Vec3> pos(ps.positions().begin(), ps.positions().end());
  std::vector<Vec3> vel(ps.velocities().begin(), ps.velocities().end());
  std::vector<double> mass(ps.masses().begin(), ps.masses().end());

  g6::tree::TreeConfig tcfg;
  tcfg.quadrupole = true;
  g6::tree::BarnesHutTree serial(tcfg), parallel(tcfg);
  serial.build(pos, vel, mass, nullptr);
  g6::util::ThreadPool pool(8);
  parallel.build(pos, vel, mass, &pool);

  ASSERT_EQ(serial.node_count(), parallel.node_count());
  ASSERT_EQ(serial.order().size(), parallel.order().size());
  for (std::size_t k = 0; k < serial.order().size(); ++k)
    ASSERT_EQ(serial.order()[k], parallel.order()[k]) << k;
  for (std::size_t k = 0; k < serial.node_count(); ++k) {
    const auto& a = serial.node(k);
    const auto& b = parallel.node(k);
    ASSERT_EQ(a.center, b.center) << k;
    ASSERT_EQ(a.half, b.half) << k;
    ASSERT_EQ(a.mass, b.mass) << k;
    ASSERT_EQ(a.com, b.com) << k;
    ASSERT_EQ(a.vcom, b.vcom) << k;
    for (int c = 0; c < 6; ++c) ASSERT_EQ(a.quad[c], b.quad[c]) << k;
    for (int c = 0; c < 8; ++c) ASSERT_EQ(a.child[c], b.child[c]) << k;
    ASSERT_EQ(a.first, b.first) << k;
    ASSERT_EQ(a.count, b.count) << k;
    ASSERT_EQ(a.leaf, b.leaf) << k;
  }
}

TEST(TreeVelocities, NodeVcomIsMassWeightedMean) {
  ParticleSystem ps = make_test_disk(300);
  g6::tree::BarnesHutTree tree;
  tree.build(ps.positions(), ps.velocities(), ps.masses());
  ASSERT_TRUE(tree.has_velocities());
  Vec3 vsum{};
  double msum = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    vsum += ps.mass(i) * ps.vel(i);
    msum += ps.mass(i);
  }
  const Vec3 expect = vsum / msum;
  EXPECT_NEAR(tree.root().vcom.x, expect.x, 1e-12);
  EXPECT_NEAR(tree.root().vcom.y, expect.y, 1e-12);
  EXPECT_NEAR(tree.root().vcom.z, expect.z, 1e-12);
}

}  // namespace
