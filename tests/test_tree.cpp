// Tests for the Barnes-Hut octree baseline.
#include "tree/bh_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "disk/disk_model.hpp"
#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::Force;
using g6::nbody::ParticleSystem;
using g6::tree::BarnesHutTree;
using g6::tree::TreeConfig;
using g6::util::Vec3;

ParticleSystem random_cloud(int n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  ParticleSystem ps;
  for (int i = 0; i < n; ++i)
    ps.add(rng.uniform(0.5, 1.5),
           {rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)},
           {});
  return ps;
}

Force direct_force_on(const ParticleSystem& ps, std::size_t i, double eps2) {
  Force f{};
  for (std::size_t j = 0; j < ps.size(); ++j) {
    if (j == i) continue;
    g6::nbody::pairwise_force(ps.pos(i), {}, ps.pos(j), {}, ps.mass(j), eps2, f);
  }
  return f;
}

TEST(Tree, SingleParticleZeroForce) {
  ParticleSystem ps;
  ps.add(1.0, {1, 2, 3}, {});
  BarnesHutTree tree;
  tree.build(ps.positions(), ps.masses());
  const Force f = tree.force_on(0, 0.0);
  EXPECT_EQ(f.acc, Vec3(0, 0, 0));
}

TEST(Tree, TwoParticlesExact) {
  ParticleSystem ps;
  ps.add(2.0, {0, 0, 0}, {});
  ps.add(3.0, {4, 0, 0}, {});
  BarnesHutTree tree;
  tree.build(ps.positions(), ps.masses());
  const Force f = tree.force_on(0, 0.0);
  EXPECT_NEAR(f.acc.x, 3.0 / 16.0, 1e-14);
  EXPECT_NEAR(f.pot, -3.0 / 4.0, 1e-14);
}

TEST(Tree, RootCoversAllMass) {
  ParticleSystem ps = random_cloud(100, 3);
  BarnesHutTree tree;
  tree.build(ps.positions(), ps.masses());
  EXPECT_NEAR(tree.root().mass, ps.total_mass(), 1e-10);
  EXPECT_EQ(tree.root().count, 100u);
  EXPECT_GT(tree.node_count(), 1u);
}

class TreeTheta : public ::testing::TestWithParam<double> {};

TEST_P(TreeTheta, ForceErrorBoundedAndShrinksWithTheta) {
  const double theta = GetParam();
  ParticleSystem ps = random_cloud(500, 11);
  TreeConfig cfg;
  cfg.theta = theta;
  BarnesHutTree tree(cfg);
  tree.build(ps.positions(), ps.masses());

  double worst = 0.0;
  for (std::size_t i = 0; i < ps.size(); i += 13) {
    const Force t = tree.force_on(i, 1e-4);
    const Force d = direct_force_on(ps, i, 1e-4);
    worst = std::max(worst, norm(t.acc - d.acc) / norm(d.acc));
  }
  // Typical BH error budget for monopole-only cells.
  const double bound = theta <= 0.3 ? 0.01 : (theta <= 0.6 ? 0.05 : 0.15);
  EXPECT_LT(worst, bound) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, TreeTheta, ::testing::Values(0.2, 0.5, 0.8));

TEST(Tree, QuadrupoleImprovesAccuracy) {
  ParticleSystem ps = random_cloud(800, 13);
  TreeConfig mono;
  mono.theta = 0.7;
  TreeConfig quad = mono;
  quad.quadrupole = true;

  BarnesHutTree t_mono(mono), t_quad(quad);
  t_mono.build(ps.positions(), ps.masses());
  t_quad.build(ps.positions(), ps.masses());

  double err_mono = 0.0, err_quad = 0.0;
  for (std::size_t i = 0; i < ps.size(); i += 17) {
    const Force d = direct_force_on(ps, i, 1e-4);
    err_mono += norm(t_mono.force_on(i, 1e-4).acc - d.acc) / norm(d.acc);
    err_quad += norm(t_quad.force_on(i, 1e-4).acc - d.acc) / norm(d.acc);
  }
  EXPECT_LT(err_quad, 0.5 * err_mono);
}

TEST(Tree, SmallThetaApproachesDirect) {
  ParticleSystem ps = random_cloud(200, 17);
  TreeConfig cfg;
  cfg.theta = 1e-6;  // opens everything -> exact direct summation
  BarnesHutTree tree(cfg);
  tree.build(ps.positions(), ps.masses());
  for (std::size_t i = 0; i < ps.size(); i += 29) {
    const Force t = tree.force_on(i, 1e-4);
    const Force d = direct_force_on(ps, i, 1e-4);
    EXPECT_NEAR(norm(t.acc - d.acc), 0.0, 1e-12 * norm(d.acc));
  }
}

TEST(Tree, InteractionCountBelowDirectForLargeN) {
  ParticleSystem ps = random_cloud(2000, 19);
  TreeConfig cfg;
  cfg.theta = 0.6;
  BarnesHutTree tree(cfg);
  tree.build(ps.positions(), ps.masses());
  for (std::size_t i = 0; i < ps.size(); ++i) (void)tree.force_on(i, 1e-4);
  EXPECT_LT(tree.interaction_count(),
            static_cast<std::uint64_t>(ps.size()) * (ps.size() - 1) / 2);
}

TEST(Tree, ForceAtArbitraryPoint) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {});
  BarnesHutTree tree;
  tree.build(ps.positions(), ps.masses());
  const Force f = tree.force_at({2, 0, 0}, 0.0);
  EXPECT_NEAR(f.acc.x, -0.25, 1e-14);  // pulled toward the origin
}

TEST(Tree, CoincidentParticlesTerminates) {
  ParticleSystem ps;
  for (int i = 0; i < 20; ++i) ps.add(1.0, {1, 1, 1}, {});
  ps.add(1.0, {2, 2, 2}, {});
  TreeConfig cfg;
  cfg.leaf_capacity = 2;
  BarnesHutTree tree(cfg);
  EXPECT_NO_THROW(tree.build(ps.positions(), ps.masses()));
  const Force f = tree.force_on(20, 1e-2);
  EXPECT_GT(norm(f.acc), 0.0);
}

TEST(Tree, EmptyBuildThrows) {
  BarnesHutTree tree;
  EXPECT_THROW(tree.build({}, {}), g6::util::Error);
  EXPECT_THROW(tree.force_at({0, 0, 0}, 0.0), g6::util::Error);
}

TEST(TreeBackend, ComputeAllMatchesDirectBackend) {
  ParticleSystem ps = random_cloud(300, 23);
  g6::tree::TreeAccelBackend tree_b({.theta = 0.3}, 0.01);
  g6::nbody::DirectAccelBackend direct_b(0.01);
  std::vector<Force> ft(ps.size()), fd(ps.size());
  tree_b.compute_all(ps, ft);
  direct_b.compute_all(ps, fd);
  for (std::size_t i = 0; i < ps.size(); i += 11) {
    EXPECT_NEAR(norm(ft[i].acc - fd[i].acc) / norm(fd[i].acc), 0.0, 0.02) << i;
  }
  EXPECT_GT(tree_b.interaction_count(), 0u);
}

TEST(TreeBackend, WorksOnDiskGeometry) {
  // Flat ring geometry (the paper's workload shape) — far-field cells in the
  // plane must still satisfy the error bound.
  auto disk = g6::disk::make_disk(g6::disk::uranus_neptune_config(1500));
  auto& ps = disk.system;
  TreeConfig cfg;
  cfg.theta = 0.4;
  BarnesHutTree tree(cfg);
  tree.build(ps.positions(), ps.masses());
  double worst = 0.0;
  for (std::size_t i = 0; i < ps.size(); i += 97) {
    const Force t = tree.force_on(i, 0.008 * 0.008);
    const Force d = direct_force_on(ps, i, 0.008 * 0.008);
    if (norm(d.acc) > 0.0) worst = std::max(worst, norm(t.acc - d.acc) / norm(d.acc));
  }
  EXPECT_LT(worst, 0.05);
}

}  // namespace
