// Tests for the runtime multi-ISA dispatch layer (nbody/simd_dispatch.hpp):
// level naming and env resolution (clamping, one-shot warnings), cache-derived
// block geometry, env geometry overrides, the per-level dispatch tables, and
// the core cross-ISA contract — every exact kernel bit-identical to the
// scalar seed loop at EVERY dispatchable level, from one binary, in one
// process. (CI additionally re-runs the whole conformance suite under
// G6_SIMD_LEVEL=scalar/sse2/avx2/... to exercise the env path end to end.)
#include "nbody/simd_dispatch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "nbody/force_direct.hpp"
#include "nbody/force_kernels.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::BlockGeometry;
using g6::nbody::CacheInfo;
using g6::nbody::Force;
using g6::nbody::SimdLevel;
using g6::nbody::SoAPredicted;
using g6::util::Vec3;

// Declared first in the file ON PURPOSE: active_block_geometry() resolves its
// env overrides exactly once per process, so this must run before anything
// else in this binary touches it (directly or via a kernel call).
TEST(ActiveGeometry, EnvOverridesApplyOnFirstResolve) {
  ::setenv("G6_BLOCK_I", "48", 1);
  ::setenv("G6_BLOCK_J", "160", 1);
  const BlockGeometry g = g6::nbody::active_block_geometry();
  EXPECT_EQ(g.i_block, 48u);
  EXPECT_EQ(g.j_block, 160u);
  ::unsetenv("G6_BLOCK_I");
  ::unsetenv("G6_BLOCK_J");
}

TEST(SimdLevelNames, RoundTrip) {
  EXPECT_STREQ(g6::nbody::simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(g6::nbody::simd_level_name(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(g6::nbody::simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(g6::nbody::simd_level_name(SimdLevel::kAvx512), "avx512");
  for (int i = 0; i < g6::nbody::kSimdLevelCount; ++i) {
    const SimdLevel want = static_cast<SimdLevel>(i);
    SimdLevel got = SimdLevel::kAvx512;
    EXPECT_TRUE(g6::nbody::simd_level_from_name(
        g6::nbody::simd_level_name(want), &got));
    EXPECT_EQ(got, want);
  }
  SimdLevel out = SimdLevel::kAvx2;
  EXPECT_FALSE(g6::nbody::simd_level_from_name("avx1024", &out));
  EXPECT_FALSE(g6::nbody::simd_level_from_name(nullptr, &out));
  EXPECT_EQ(out, SimdLevel::kAvx2);  // unrecognised names leave *out untouched
}

TEST(ResolveSimdLevel, UnsetUsesDetected) {
  std::string warning;
  EXPECT_EQ(g6::nbody::resolve_simd_level(nullptr, SimdLevel::kAvx2, &warning),
            SimdLevel::kAvx2);
  EXPECT_TRUE(warning.empty());
}

TEST(ResolveSimdLevel, ValidDowngradeIsSilent) {
  std::string warning;
  EXPECT_EQ(g6::nbody::resolve_simd_level("sse2", SimdLevel::kAvx512, &warning),
            SimdLevel::kSse2);
  EXPECT_TRUE(warning.empty()) << warning;
  EXPECT_EQ(g6::nbody::resolve_simd_level("scalar", SimdLevel::kScalar, &warning),
            SimdLevel::kScalar);
  EXPECT_TRUE(warning.empty()) << warning;
}

TEST(ResolveSimdLevel, RequestAboveDetectedClampsWithWarning) {
  std::string warning;
  EXPECT_EQ(g6::nbody::resolve_simd_level("avx512", SimdLevel::kSse2, &warning),
            SimdLevel::kSse2);
  EXPECT_NE(warning.find("avx512"), std::string::npos) << warning;
  EXPECT_NE(warning.find("sse2"), std::string::npos) << warning;
}

TEST(ResolveSimdLevel, UnknownNameWarnsNamingAcceptedValues) {
  std::string warning;
  EXPECT_EQ(g6::nbody::resolve_simd_level("pentium", SimdLevel::kAvx2, &warning),
            SimdLevel::kAvx2);
  // The warning must teach the accepted spellings, not just complain.
  for (const char* name : {"scalar", "sse2", "avx2", "avx512"})
    EXPECT_NE(warning.find(name), std::string::npos) << warning;
}

TEST(BlockGeometryDerivation, SaneAndCacheMonotone) {
  const BlockGeometry small = g6::nbody::derive_block_geometry({16 * 1024, 256 * 1024});
  const BlockGeometry big = g6::nbody::derive_block_geometry({64 * 1024, 2 * 1024 * 1024});
  for (const BlockGeometry& g : {small, big}) {
    EXPECT_GE(g.i_block, 1u);
    EXPECT_GE(g.j_block, 1u);
    EXPECT_LE(g.j_block * 56, 64 * 1024u);  // j-tile fits easily in any L1d
  }
  EXPECT_LE(small.j_block, big.j_block);
  // Unknown cache sizes (sysconf reporting 0) must fall back, not collapse.
  const BlockGeometry fallback = g6::nbody::derive_block_geometry({0, 0});
  EXPECT_GE(fallback.i_block, 1u);
  EXPECT_GE(fallback.j_block, 1u);
}

TEST(KernelTables, EveryDispatchableLevelIsPopulated) {
  const SimdLevel top = g6::nbody::detect_simd_level();
  for (int li = 0; li <= static_cast<int>(top); ++li) {
    const auto& t = g6::nbody::kernel_table(static_cast<SimdLevel>(li));
    EXPECT_EQ(static_cast<int>(t.level), li);
    EXPECT_STREQ(t.name, g6::nbody::simd_level_name(static_cast<SimdLevel>(li)));
    EXPECT_GE(t.width, 1);
    EXPECT_GE(t.width_f, t.width);  // float/int32 lanes: 2x doubles (1x scalar)
    EXPECT_NE(t.tiled, nullptr);
    EXPECT_NE(t.simd, nullptr);
    EXPECT_NE(t.fast, nullptr);
    EXPECT_NE(t.mixed, nullptr);
    EXPECT_NE(t.blocked, nullptr);
    EXPECT_NE(t.mixed_block, nullptr);
  }
  EXPECT_EQ(g6::nbody::active_kernel_table().level,
            g6::nbody::active_simd_level());
  EXPECT_LE(g6::nbody::active_simd_level(), top);
}

// The tentpole contract: randomized j-stores, every exact kernel, every
// dispatchable ISA level, bit-for-bit equal to the scalar seed loop. Run by
// driving the per-level tables directly (G6_SIMD_LEVEL resolves only once
// per process; CI's dispatch-matrix job covers the env route).
TEST(CrossIsaBitIdentity, ExactKernelsMatchSeedLoopAtEveryLevel) {
  g6::util::Rng seeds(0xd15a);
  const SimdLevel top = g6::nbody::detect_simd_level();
  for (std::size_t n : {1ul, 9ul, 64ul, 65ul, 200ul}) {
    SoAPredicted js;
    js.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      js.x[j] = seeds.uniform(-30.0, 30.0);
      js.y[j] = seeds.uniform(-30.0, 30.0);
      js.z[j] = seeds.uniform(-1.0, 1.0);
      js.vx[j] = seeds.uniform(-0.3, 0.3);
      js.vy[j] = seeds.uniform(-0.3, 0.3);
      js.vz[j] = seeds.uniform(-0.03, 0.03);
      js.m[j] = seeds.uniform(1e-12, 1e-9);
    }
    const std::size_t self = n / 2;
    const Vec3 xi{js.x[self], js.y[self], js.z[self]};
    const Vec3 vi{js.vx[self], js.vy[self], js.vz[self]};
    const double eps2 = 1e-4;
    Force want;
    g6::nbody::reference_force_range(js, 0, n, xi, vi, self, eps2, want);
    auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    for (int li = 0; li <= static_cast<int>(top); ++li) {
      const auto& t = g6::nbody::kernel_table(static_cast<SimdLevel>(li));
      Force tiled, simd, blocked;
      t.tiled(js, xi, vi, self, eps2, tiled);
      t.simd(js, xi, vi, self, eps2, simd);
      const std::uint32_t self32 = static_cast<std::uint32_t>(self);
      t.blocked(js, &xi, &vi, &self32, 1, eps2, BlockGeometry{8, 32}, &blocked);
      for (const auto* got : {&tiled, &simd, &blocked}) {
        EXPECT_EQ(bits(got->acc.x), bits(want.acc.x)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->acc.y), bits(want.acc.y)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->acc.z), bits(want.acc.z)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->jerk.x), bits(want.jerk.x)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->jerk.y), bits(want.jerk.y)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->jerk.z), bits(want.jerk.z)) << t.name << " n=" << n;
        EXPECT_EQ(bits(got->pot), bits(want.pot)) << t.name << " n=" << n;
      }
    }
  }
}

// The approximate kernels honour their documented bounds at every level too
// (kMixed runs everywhere; kFast degrades to the exact kernel below AVX-512,
// where its error is simply zero).
TEST(CrossIsaBitIdentity, ApproxKernelsBoundedAtEveryLevel) {
  const SimdLevel top = g6::nbody::detect_simd_level();
  const std::size_t n = 256;
  g6::util::Rng rng(0xfaded);
  SoAPredicted js;
  js.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    js.x[j] = rng.uniform(-30.0, 30.0);
    js.y[j] = rng.uniform(-30.0, 30.0);
    js.z[j] = rng.uniform(-1.0, 1.0);
    js.vx[j] = rng.uniform(-0.3, 0.3);
    js.vy[j] = rng.uniform(-0.3, 0.3);
    js.vz[j] = rng.uniform(-0.03, 0.03);
    js.m[j] = rng.uniform(1e-12, 1e-9);
  }
  const double eps2 = 0.008 * 0.008;
  for (std::size_t i = 0; i < n; i += 37) {
    const Vec3 xi{js.x[i], js.y[i], js.z[i]};
    const Vec3 vi{js.vx[i], js.vy[i], js.vz[i]};
    Force want;
    g6::nbody::reference_force_range(js, 0, n, xi, vi, i, eps2, want);
    const double scale = std::sqrt(norm2(want.acc)) + 1e-300;
    for (int li = 0; li <= static_cast<int>(top); ++li) {
      const auto& t = g6::nbody::kernel_table(static_cast<SimdLevel>(li));
      Force fast, mixed;
      t.fast(js, xi, vi, i, eps2, fast);
      t.mixed(js, xi, vi, i, eps2, mixed);
      EXPECT_NEAR(fast.acc.x, want.acc.x, g6::nbody::kFastMaxRelErr * scale) << t.name;
      EXPECT_NEAR(fast.acc.y, want.acc.y, g6::nbody::kFastMaxRelErr * scale) << t.name;
      EXPECT_NEAR(fast.acc.z, want.acc.z, g6::nbody::kFastMaxRelErr * scale) << t.name;
      EXPECT_NEAR(mixed.acc.x, want.acc.x, g6::nbody::kMixedMaxRelErr * scale) << t.name;
      EXPECT_NEAR(mixed.acc.y, want.acc.y, g6::nbody::kMixedMaxRelErr * scale) << t.name;
      EXPECT_NEAR(mixed.acc.z, want.acc.z, g6::nbody::kMixedMaxRelErr * scale) << t.name;
    }
  }
}

}  // namespace
