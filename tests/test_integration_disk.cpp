// End-to-end integration tests on the paper's workload (scaled down): the
// full pipeline of disk generation -> block-timestep Hermite integration ->
// analysis, on both the CPU and the GRAPE-6 hardware paths.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/disk_analysis.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "nbody/snapshot.hpp"

namespace {

using g6::nbody::compute_energy;
using g6::nbody::CpuDirectBackend;
using g6::nbody::Force;
using g6::nbody::HermiteIntegrator;
using g6::nbody::IntegratorConfig;

constexpr double kEps = 0.008;  // paper softening [AU]

g6::disk::DiskRealization make_small_disk(std::size_t n, std::uint64_t seed = 99) {
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  cfg.seed = seed;
  return g6::disk::make_disk(cfg);
}

IntegratorConfig disk_integrator_config() {
  IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.eta_init = 0.01;
  cfg.dt_max = 4.0;       // ~ 1/90 of the inner orbital period
  cfg.dt_min = 0x1p-30;
  cfg.record_block_sizes = true;
  return cfg;
}

TEST(DiskIntegration, ShortEvolutionConservesEnergy) {
  auto d = make_small_disk(150);
  auto& ps = d.system;
  CpuDirectBackend backend(kEps);
  HermiteIntegrator integ(ps, backend, disk_integrator_config());
  integ.initialize();

  const double e0 = compute_energy(ps, kEps, 1.0).total();
  integ.evolve(64.0);  // ~10 years
  const double e1 = compute_energy(ps, kEps, 1.0).total();

  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-8);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_TRUE(std::isfinite(ps.pos(i).x)) << i;
    EXPECT_DOUBLE_EQ(ps.time(i), 64.0) << i;
  }
}

TEST(DiskIntegration, AngularMomentumConserved) {
  auto d = make_small_disk(120);
  auto& ps = d.system;
  CpuDirectBackend backend(kEps);
  HermiteIntegrator integ(ps, backend, disk_integrator_config());
  integ.initialize();
  const auto l0 = g6::nbody::total_angular_momentum(ps);
  integ.evolve(64.0);
  const auto l1 = g6::nbody::total_angular_momentum(ps);
  EXPECT_NEAR(norm(l1 - l0) / norm(l0), 0.0, 5e-9);
}

TEST(DiskIntegration, BlockStatisticsLookLikeBlockStepping) {
  auto d = make_small_disk(200);
  auto& ps = d.system;
  CpuDirectBackend backend(kEps);
  HermiteIntegrator integ(ps, backend, disk_integrator_config());
  integ.initialize();
  integ.evolve(64.0);

  const auto& st = integ.stats();
  EXPECT_GT(st.blocks, 10u);
  EXPECT_GT(st.steps, st.blocks);  // real blocks with >1 particle exist
  // Individual timesteps: mean block well below N.
  EXPECT_LT(st.mean_block_size(), static_cast<double>(ps.size()));
  EXPECT_GT(st.mean_block_size(), 1.0);
}

TEST(DiskIntegration, ProtoplanetsStayOnNearCircularOrbits) {
  auto d = make_small_disk(150);
  auto& ps = d.system;
  CpuDirectBackend backend(kEps);
  HermiteIntegrator integ(ps, backend, disk_integrator_config());
  integ.initialize();
  integ.evolve(128.0);

  for (std::size_t idx : d.protoplanet_indices) {
    const g6::disk::StateVector sv{ps.pos(idx), ps.vel(idx)};
    const auto el = g6::disk::state_to_elements(sv, 1.0);
    EXPECT_LT(el.e, 0.02);
    EXPECT_TRUE(std::abs(el.a - 20.0) < 0.5 || std::abs(el.a - 30.0) < 0.5);
  }
}

TEST(DiskIntegration, GrapeBackendTracksCpuBackend) {
  // Same disk, same schedule parameters, two force engines: trajectories
  // diverge only at the hardware-format level over a short run.
  auto d1 = make_small_disk(100, 5);
  auto d2 = make_small_disk(100, 5);

  CpuDirectBackend cpu(kEps);
  g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 64);
  mc.fmt = g6::hw::FormatSpec::for_scales(40.0, 1e-4);
  g6::hw::Grape6Backend grape(mc, kEps);

  HermiteIntegrator i1(d1.system, cpu, disk_integrator_config());
  HermiteIntegrator i2(d2.system, grape, disk_integrator_config());
  i1.initialize();
  i2.initialize();
  i1.evolve(16.0);
  i2.evolve(16.0);

  double worst = 0.0;
  for (std::size_t i = 0; i < d1.system.size(); ++i) {
    worst = std::max(worst, norm(d1.system.pos(i) - d2.system.pos(i)) /
                                norm(d1.system.pos(i)));
  }
  EXPECT_LT(worst, 1e-4);
}

TEST(DiskIntegration, GrapePathConservesEnergy) {
  auto d = make_small_disk(100, 8);
  auto& ps = d.system;
  g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 64);
  mc.fmt = g6::hw::FormatSpec::for_scales(40.0, 1e-4);
  g6::hw::Grape6Backend grape(mc, kEps);
  HermiteIntegrator integ(ps, grape, disk_integrator_config());
  integ.initialize();
  const double e0 = compute_energy(ps, kEps, 1.0).total();
  integ.evolve(64.0);
  const double e1 = compute_energy(ps, kEps, 1.0).total();
  // Reduced-precision forces: energy drift bounded by the format error.
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-6);
}

TEST(DiskIntegration, DispersionsHeatOverTime) {
  // Gravitational stirring by the protoplanets and mutual scattering should
  // not COOL the disk; rms e grows (or at worst stays) over time.
  auto d = make_small_disk(200, 12);
  auto& ps = d.system;
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());
  CpuDirectBackend backend(kEps);
  HermiteIntegrator integ(ps, backend, disk_integrator_config());
  integ.initialize();
  const auto before = g6::analysis::dispersions(ps, 1.0, exclude);
  integ.evolve(256.0);
  const auto after = g6::analysis::dispersions(ps, 1.0, exclude);
  EXPECT_GE(after.rms_e, 0.8 * before.rms_e);
}

}  // namespace

namespace {

// Restart workflow: snapshot mid-run, reload, reinitialise and continue.
// The reloaded run must stay physical (energy conserved from the restart
// point) — the operational property the paper's multi-day runs relied on.
TEST(DiskIntegration, SnapshotRestartContinuesCleanly) {
  auto d = make_small_disk(80, 33);
  CpuDirectBackend b1(kEps);
  HermiteIntegrator i1(d.system, b1, disk_integrator_config());
  i1.initialize();
  i1.evolve(32.0);

  std::stringstream ss;
  g6::nbody::write_snapshot(ss, d.system, 32.0);

  g6::nbody::ParticleSystem restored;
  const double t0 = g6::nbody::read_snapshot(ss, restored);
  ASSERT_EQ(t0, 32.0);
  ASSERT_EQ(restored.size(), d.system.size());

  CpuDirectBackend b2(kEps);
  HermiteIntegrator i2(restored, b2, disk_integrator_config());
  i2.initialize();
  const double e0 = compute_energy(restored, kEps, 1.0).total();
  i2.evolve(64.0);
  const double e1 = compute_energy(restored, kEps, 1.0).total();
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 1e-7);
  EXPECT_DOUBLE_EQ(restored.time(0), 64.0);

  // And the restarted trajectory tracks the uninterrupted one closely over
  // a short continuation (identical states at restart; only acc/jerk and
  // timestep quantisation are rebuilt).
  i1.evolve(64.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < restored.size(); ++i)
    worst = std::max(worst,
                     norm(restored.pos(i) - d.system.pos(i)) / norm(d.system.pos(i)));
  EXPECT_LT(worst, 1e-6);
}

}  // namespace
