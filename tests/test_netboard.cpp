// Tests for the network-board model: routing modes, byte accounting and the
// hardware reduction unit.
#include "grape6/netboard.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;
using g6::hw::LinkModel;
using g6::hw::NetMode;
using g6::hw::NetworkBoard;

TEST(NetworkBoard, BroadcastReachesAllDownlinks) {
  NetworkBoard nb(4);
  nb.set_mode(NetMode::kBroadcast);
  EXPECT_EQ(nb.route(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(NetworkBoard, MulticastSplitsInHalves) {
  NetworkBoard nb(4);
  nb.set_mode(NetMode::kMulticast2);
  EXPECT_EQ(nb.route(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(nb.route(1), (std::vector<int>{2, 3}));
  EXPECT_THROW(nb.route(2), g6::util::Error);
}

TEST(NetworkBoard, PointToPointSingleTarget) {
  NetworkBoard nb(4);
  nb.set_mode(NetMode::kPointToPoint);
  EXPECT_EQ(nb.route(3), (std::vector<int>{3}));
  EXPECT_THROW(nb.route(4), g6::util::Error);
  EXPECT_THROW(nb.route(-1), g6::util::Error);
}

TEST(NetworkBoard, MulticastNeedsEvenDownlinks) {
  NetworkBoard nb(3);
  EXPECT_THROW(nb.set_mode(NetMode::kMulticast2), g6::util::Error);
}

TEST(NetworkBoard, SendDownCountsFanOutBytes) {
  NetworkBoard nb(4);
  nb.set_mode(NetMode::kBroadcast);
  nb.send_down(100);
  EXPECT_EQ(nb.counters().bytes_down, 400u);  // 100 bytes x 4 ports
  nb.set_mode(NetMode::kPointToPoint);
  nb.send_down(100, 2);
  EXPECT_EQ(nb.counters().bytes_down, 500u);
  EXPECT_EQ(nb.counters().messages, 2u);
}

TEST(NetworkBoard, TransferTimeFollowsLinkModel) {
  LinkModel link{90.0e6, 2.0e-6};
  NetworkBoard nb(4, link);
  const double t = nb.send_down(9000);
  EXPECT_NEAR(t, 2.0e-6 + 9000.0 / 90.0e6, 1e-12);
}

TEST(NetworkBoard, ReduceUpMergesExactly) {
  const FormatSpec fmt;
  NetworkBoard nb(4);
  g6::util::Rng rng(3);

  // Four downlinks each deliver a batch of 3 partial accumulators.
  std::vector<std::vector<ForceAccumulator>> partials(
      4, std::vector<ForceAccumulator>(3, ForceAccumulator(fmt)));
  std::vector<ForceAccumulator> expect(3, ForceAccumulator(fmt));
  for (auto& batch : partials) {
    for (std::size_t k = 0; k < 3; ++k) {
      const g6::util::Vec3 contrib{rng.uniform(-1e-6, 1e-6),
                                   rng.uniform(-1e-6, 1e-6),
                                   rng.uniform(-1e-6, 1e-6)};
      batch[k].acc.accumulate(contrib);
      expect[k].acc.accumulate(contrib);
    }
  }

  std::vector<ForceAccumulator> out;
  const double t = nb.reduce_up(partials, out);
  EXPECT_GT(t, 0.0);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(out[k].acc, expect[k].acc);
  EXPECT_EQ(nb.counters().bytes_up, 3u * g6::hw::kResultBytes);
}

TEST(NetworkBoard, ReduceUpValidatesBatches) {
  const FormatSpec fmt;
  NetworkBoard nb(2);
  std::vector<std::vector<ForceAccumulator>> empty;
  std::vector<ForceAccumulator> out;
  EXPECT_THROW(nb.reduce_up(empty, out), g6::util::Error);

  std::vector<std::vector<ForceAccumulator>> ragged{
      std::vector<ForceAccumulator>(2, ForceAccumulator(fmt)),
      std::vector<ForceAccumulator>(3, ForceAccumulator(fmt))};
  EXPECT_THROW(nb.reduce_up(ragged, out), g6::util::Error);

  std::vector<std::vector<ForceAccumulator>> too_many(
      3, std::vector<ForceAccumulator>(1, ForceAccumulator(fmt)));
  EXPECT_THROW(nb.reduce_up(too_many, out), g6::util::Error);
}

TEST(NetworkBoard, CascadeTreeAccumulatesAcrossLevels) {
  // Two leaf NBs reduce their boards; a root NB reduces the two leaves —
  // the tree structure of figure 5/7.
  const FormatSpec fmt;
  NetworkBoard leaf0(2), leaf1(2), root(2);

  auto batch_with = [&](double v) {
    std::vector<ForceAccumulator> b(1, ForceAccumulator(fmt));
    b[0].acc.accumulate({v, 0, 0});
    return b;
  };
  std::vector<std::vector<ForceAccumulator>> l0{batch_with(1e-6), batch_with(2e-6)};
  std::vector<std::vector<ForceAccumulator>> l1{batch_with(3e-6), batch_with(4e-6)};

  std::vector<ForceAccumulator> r0, r1, total;
  leaf0.reduce_up(l0, r0);
  leaf1.reduce_up(l1, r1);
  std::vector<std::vector<ForceAccumulator>> level2{r0, r1};
  root.reduce_up(level2, total);

  ForceAccumulator expect(fmt);
  for (double v : {1e-6, 2e-6, 3e-6, 4e-6}) expect.acc.accumulate({v, 0, 0});
  EXPECT_EQ(total[0].acc, expect.acc);
}

TEST(NetworkBoard, NeedsAtLeastOneDownlink) {
  EXPECT_THROW(NetworkBoard(0), g6::util::Error);
}

}  // namespace
