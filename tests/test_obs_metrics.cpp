// Tests for the metrics registry: typed handles, kind binding, log-scale
// histogram percentiles, providers, and the snapshot JSON round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

using g6::obs::JsonValue;
using g6::obs::LogHistogramState;
using g6::obs::MetricKind;
using g6::obs::MetricsRegistry;

TEST(ObsMetrics, CounterBasics) {
  MetricsRegistry reg;
  auto c = reg.counter("g6.test.count");
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  c.set(42);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetrics, SameNameSharesCell) {
  MetricsRegistry reg;
  auto a = reg.counter("g6.test.shared");
  auto b = reg.counter("g6.test.shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, GaugeSetAdd) {
  MetricsRegistry reg;
  auto g = reg.gauge("g6.test.gauge");
  g.set(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsMetrics, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("g6.test.bound");
  EXPECT_THROW(reg.gauge("g6.test.bound"), g6::util::Error);
  EXPECT_THROW(reg.histogram("g6.test.bound"), g6::util::Error);
}

TEST(ObsMetrics, InvalidHandlesAreInert) {
  g6::obs::Counter c;
  g6::obs::Gauge g;
  g6::obs::LogHistogram h;
  EXPECT_FALSE(c.valid());
  c.add();  // must not crash
  g.set(1.0);
  h.add(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsMetrics, HistogramPercentiles) {
  MetricsRegistry reg;
  auto h = reg.histogram("g6.test.hist");
  // 900 samples at 1.0, 90 at 100.0, 10 at 1e4: known rank structure.
  for (int i = 0; i < 900; ++i) h.add(1.0);
  for (int i = 0; i < 90; ++i) h.add(100.0);
  for (int i = 0; i < 10; ++i) h.add(1e4);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 900.0 + 9000.0 + 1e5, 1e-6);
  // Percentiles resolve to bucket granularity (8 buckets/decade => within a
  // factor of 10^(1/8) ~ 1.33 of the exact value).
  EXPECT_NEAR(std::log10(h.percentile(0.50)), 0.0, 0.15);
  EXPECT_NEAR(std::log10(h.percentile(0.95)), 2.0, 0.15);
  EXPECT_NEAR(std::log10(h.percentile(0.995)), 4.0, 0.15);
}

TEST(ObsMetrics, HistogramUnderOverflow) {
  MetricsRegistry reg;
  auto h = reg.histogram("g6.test.uo");
  h.add(0.0);
  h.add(-3.0);
  h.add(1e-20);
  h.add(1e20);
  h.add(1.0);
  EXPECT_EQ(h.count(), 5u);
  auto snap = reg.snapshot();
  const auto* m = snap.find("g6.test.uo");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->hist.underflow, 3u);
  EXPECT_EQ(m->hist.overflow, 1u);
  ASSERT_EQ(m->hist.buckets.size(), 1u);
  EXPECT_EQ(m->hist.buckets[0].second, 1u);
}

TEST(ObsMetrics, BucketIndexEdges) {
  EXPECT_EQ(LogHistogramState::bucket_index(0.0), -1);
  EXPECT_EQ(LogHistogramState::bucket_index(-1.0), -1);
  EXPECT_EQ(LogHistogramState::bucket_index(1e-13), -1);
  EXPECT_EQ(LogHistogramState::bucket_index(1e13), LogHistogramState::kBuckets);
  const int mid = LogHistogramState::bucket_index(1.0);
  EXPECT_GE(mid, 0);
  EXPECT_LT(mid, LogHistogramState::kBuckets);
  // bucket_lo(i) <= 1.0 < bucket_lo(i+1)
  EXPECT_LE(LogHistogramState::bucket_lo(mid), 1.0 + 1e-12);
  EXPECT_GT(LogHistogramState::bucket_lo(mid + 1), 1.0);
}

TEST(ObsMetrics, ProviderRunsAtSnapshot) {
  MetricsRegistry reg;
  int runs = 0;
  const std::size_t id = reg.add_provider([&runs](MetricsRegistry& r) {
    ++runs;
    r.counter("g6.test.provided").set(static_cast<std::uint64_t>(runs));
  });
  EXPECT_EQ(runs, 0);
  auto snap1 = reg.snapshot();
  EXPECT_EQ(runs, 1);
  ASSERT_NE(snap1.find("g6.test.provided"), nullptr);
  EXPECT_DOUBLE_EQ(snap1.find("g6.test.provided")->value, 1.0);
  reg.remove_provider(id);
  auto snap2 = reg.snapshot();
  EXPECT_EQ(runs, 1);  // removed provider no longer runs
  EXPECT_DOUBLE_EQ(snap2.find("g6.test.provided")->value, 1.0);
}

TEST(ObsMetrics, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("g6.z.last");
  reg.counter("g6.a.first");
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "g6.a.first");
  EXPECT_EQ(snap.metrics[1].name, "g6.z.last");
}

TEST(ObsMetrics, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("g6.test.counter").set(123);
  reg.gauge("g6.test.gauge").set(2.5);
  auto h = reg.histogram("g6.test.hist");
  for (int i = 0; i < 10; ++i) h.add(1.0);

  const auto snap = reg.snapshot();
  const JsonValue doc = JsonValue::parse(snap.to_json());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 3u);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const JsonValue& m = doc.at(i);
    ASSERT_TRUE(m.is_object());
    const std::string& name = m.find("name")->as_string();
    const std::string& kind = m.find("kind")->as_string();
    if (name == "g6.test.counter") {
      saw_counter = true;
      EXPECT_EQ(kind, "counter");
      EXPECT_DOUBLE_EQ(m.find("value")->as_number(), 123.0);
    } else if (name == "g6.test.gauge") {
      saw_gauge = true;
      EXPECT_EQ(kind, "gauge");
      EXPECT_DOUBLE_EQ(m.find("value")->as_number(), 2.5);
    } else if (name == "g6.test.hist") {
      saw_hist = true;
      EXPECT_EQ(kind, "histogram");
      EXPECT_DOUBLE_EQ(m.find("count")->as_number(), 10.0);
      EXPECT_DOUBLE_EQ(m.find("sum")->as_number(), 10.0);
      ASSERT_TRUE(m.find("buckets")->is_array());
      ASSERT_EQ(m.find("buckets")->size(), 1u);
      EXPECT_DOUBLE_EQ(m.find("buckets")->at(0).at(1).as_number(), 10.0);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(ObsMetrics, WriteMetricsJsonWithExtras) {
  MetricsRegistry reg;
  reg.counter("g6.test.c").set(7);
  const std::string path = ::testing::TempDir() + "/g6_metrics_test.json";
  ASSERT_TRUE(g6::obs::write_metrics_json(path, reg.snapshot(),
                                          {{"blocksteps", "[1,2,3]"}}));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  std::remove(path.c_str());

  const JsonValue doc = JsonValue::parse(text);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_TRUE(doc.find("metrics")->is_array());
  ASSERT_NE(doc.find("blocksteps"), nullptr);
  EXPECT_EQ(doc.find("blocksteps")->size(), 3u);
}

TEST(ObsMetrics, ConcurrentCountersAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto c = reg.counter("g6.test.mt");
      auto h = reg.histogram("g6.test.mt_hist");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("g6.test.mt").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("g6.test.mt_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, JsonNumberNonFinite) {
  EXPECT_EQ(g6::obs::json_number(std::nan("")), "null");
  EXPECT_EQ(g6::obs::json_number(INFINITY), "null");
  // Round-trips exactly through the parser.
  const double v = 0.1 + 0.2;
  const JsonValue parsed = JsonValue::parse(g6::obs::json_number(v));
  EXPECT_EQ(parsed.as_number(), v);
}
