// Tests for the invariant-check macro and error type.
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(G6_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingConditionThrowsError) {
  EXPECT_THROW(G6_CHECK(false, "boom"), g6::util::Error);
}

TEST(Check, MessageContainsContext) {
  try {
    G6_CHECK(2 > 3, "two is not greater than three");
    FAIL() << "should have thrown";
  } catch (const g6::util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater than three"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, RaiseAlwaysThrows) {
  EXPECT_THROW(g6::util::raise("direct"), g6::util::Error);
}

TEST(Check, ErrorIsRuntimeError) {
  // Callers may catch std::runtime_error at module boundaries.
  EXPECT_THROW(g6::util::raise("x"), std::runtime_error);
}

}  // namespace
