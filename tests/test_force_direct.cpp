// Tests for the double-precision direct-summation backend.
#include "nbody/force_direct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/hermite.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::CpuDirectBackend;
using g6::nbody::Force;
using g6::nbody::pairwise_force;
using g6::nbody::ParticleSystem;
using g6::util::Vec3;

TEST(PairwiseForce, InverseSquareNoSoftening) {
  Force f{};
  pairwise_force({0, 0, 0}, {0, 0, 0}, {2, 0, 0}, {0, 0, 0}, 3.0, 0.0, f);
  EXPECT_DOUBLE_EQ(f.acc.x, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(f.acc.y, 0.0);
  EXPECT_DOUBLE_EQ(f.pot, -1.5);
}

TEST(PairwiseForce, SofteningWeakensCloseForce) {
  Force hard{}, soft{};
  pairwise_force({0, 0, 0}, {}, {0.01, 0, 0}, {}, 1.0, 0.0, hard);
  pairwise_force({0, 0, 0}, {}, {0.01, 0, 0}, {}, 1.0, 0.008 * 0.008, soft);
  EXPECT_GT(hard.acc.x, soft.acc.x);
  EXPECT_GT(soft.acc.x, 0.0);
}

TEST(PairwiseForce, JerkMatchesNumericalDerivative) {
  // Move j along its velocity; d(acc)/dt should match the analytic jerk.
  const Vec3 xi{0, 0, 0}, vi{0.1, -0.2, 0.05};
  const Vec3 xj{1.0, 0.5, -0.3}, vj{-0.3, 0.4, 0.2};
  const double m = 2.0, eps2 = 0.01;

  Force f0{};
  pairwise_force(xi, vi, xj, vj, m, eps2, f0);

  const double h = 1e-6;
  Force fp{}, fm{};
  pairwise_force(xi + vi * h, vi, xj + vj * h, vj, m, eps2, fp);
  pairwise_force(xi - vi * h, vi, xj - vj * h, vj, m, eps2, fm);
  const Vec3 num_jerk = (fp.acc - fm.acc) / (2.0 * h);
  EXPECT_NEAR(norm(num_jerk - f0.jerk), 0.0, 1e-6 * norm(f0.jerk) + 1e-10);
}

TEST(PairwiseForce, NewtonThirdLaw) {
  const Vec3 xi{0.3, -0.1, 0.7}, vi{0.01, 0.02, -0.01};
  const Vec3 xj{-0.5, 0.2, 0.1}, vj{-0.02, 0.01, 0.03};
  Force fij{}, fji{};
  pairwise_force(xi, vi, xj, vj, 3.0, 0.01, fij);  // force of j (m=3) on i
  pairwise_force(xj, vj, xi, vi, 2.0, 0.01, fji);  // force of i (m=2) on j
  // m_i * a_i = -m_j * a_j
  EXPECT_NEAR(norm(2.0 * fij.acc + 3.0 * fji.acc), 0.0, 1e-15);
}

ParticleSystem three_body() {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {0, 0.1, 0});
  ps.add(2.0, {1, 0, 0}, {0, -0.1, 0});
  ps.add(0.5, {0, 2, 0}, {0.3, 0, 0});
  return ps;
}

TEST(CpuDirectBackend, MatchesManualSum) {
  ParticleSystem ps = three_body();
  CpuDirectBackend backend(0.0);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{0, 1, 2};
  std::vector<Force> out(3);
  backend.compute(0.0, ilist, out);

  for (std::size_t i = 0; i < 3; ++i) {
    Force expect{};
    for (std::size_t j = 0; j < 3; ++j) {
      if (j == i) continue;
      pairwise_force(ps.pos(i), ps.vel(i), ps.pos(j), ps.vel(j), ps.mass(j), 0.0,
                     expect);
    }
    EXPECT_NEAR(norm(out[i].acc - expect.acc), 0.0, 1e-15) << i;
    EXPECT_NEAR(norm(out[i].jerk - expect.jerk), 0.0, 1e-15) << i;
    EXPECT_NEAR(out[i].pot, expect.pot, 1e-15) << i;
  }
}

TEST(CpuDirectBackend, SelfInteractionExcluded) {
  ParticleSystem ps;
  ps.add(1.0, {0, 0, 0}, {0, 0, 0});
  CpuDirectBackend backend(0.1);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> out(1);
  backend.compute(0.0, ilist, out);
  EXPECT_EQ(out[0].acc, Vec3(0, 0, 0));
  EXPECT_EQ(out[0].pot, 0.0);
}

TEST(CpuDirectBackend, PredictsJParticlesToRequestedTime) {
  ParticleSystem ps;
  // j-particle moving with constant velocity; i-particle at rest at origin.
  ps.add(1e-12, {0, 0, 0}, {0, 0, 0});
  ps.add(1.0, {1, 0, 0}, {1, 0, 0});
  CpuDirectBackend backend(0.0);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> out(1);
  backend.compute(1.0, ilist, out);  // j should be at x=2
  EXPECT_NEAR(out[0].acc.x, 1.0 / 4.0, 1e-14);
}

TEST(CpuDirectBackend, UpdateRefreshesJMemory) {
  ParticleSystem ps = three_body();
  CpuDirectBackend backend(0.0);
  backend.load(ps);

  ps.pos(1) = {5, 0, 0};
  const std::vector<std::uint32_t> upd{1};
  backend.update(upd, ps);

  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> out(1);
  backend.compute(0.0, ilist, out);

  Force expect{};
  pairwise_force(ps.pos(0), ps.vel(0), ps.pos(1), ps.vel(1), ps.mass(1), 0.0, expect);
  pairwise_force(ps.pos(0), ps.vel(0), ps.pos(2), ps.vel(2), ps.mass(2), 0.0, expect);
  EXPECT_NEAR(norm(out[0].acc - expect.acc), 0.0, 1e-15);
}

TEST(CpuDirectBackend, InteractionCounter) {
  ParticleSystem ps = three_body();
  CpuDirectBackend backend(0.0);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{0, 2};
  std::vector<Force> out(2);
  backend.compute(0.0, ilist, out);
  EXPECT_EQ(backend.interaction_count(), 2u * 2u);  // 2 i-particles x (3-1) j
}

TEST(CpuDirectBackend, ParallelMatchesSerial) {
  g6::util::Rng rng(31);
  ParticleSystem ps;
  for (int i = 0; i < 100; ++i)
    ps.add(rng.uniform(0.5, 1.5),
           {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
           {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});

  g6::util::ThreadPool pool4(4);
  CpuDirectBackend serial(0.01);
  CpuDirectBackend parallel(0.01, &pool4);
  serial.load(ps);
  parallel.load(ps);

  std::vector<std::uint32_t> ilist(100);
  for (std::uint32_t i = 0; i < 100; ++i) ilist[i] = i;
  std::vector<Force> a(100), b(100);
  serial.compute(0.0, ilist, a);
  parallel.compute(0.0, ilist, b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i].acc, b[i].acc) << i;   // same summation order -> bitwise
    EXPECT_EQ(a[i].jerk, b[i].jerk) << i;
  }
}

TEST(CpuDirectBackend, ErrorsOnMisuse) {
  ParticleSystem ps = three_body();
  CpuDirectBackend backend(0.0);
  std::vector<std::uint32_t> ilist{0};
  std::vector<Force> one(1);
  EXPECT_THROW(backend.compute(0.0, ilist, one), g6::util::Error);  // no load yet
  backend.load(ps);
  std::vector<Force> wrong(2);
  EXPECT_THROW(backend.compute(0.0, ilist, wrong),
               g6::util::Error);  // size mismatch
  EXPECT_THROW(CpuDirectBackend(-1.0), g6::util::Error);  // bad softening
}

}  // namespace

namespace {

// Consistency: the acceleration is (minus) the gradient of the potential.
// Checked by finite differences of the backend potential field.
TEST(CpuDirectBackend, AccelerationIsPotentialGradient) {
  g6::util::Rng rng(71);
  ParticleSystem ps;
  for (int i = 0; i < 20; ++i)
    ps.add(rng.uniform(0.5, 1.5),
           {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}, {});
  // A massless probe whose force we differentiate.
  const std::size_t probe = ps.add(1e-15, {0.1, 0.2, 0.3}, {});

  const double eps = 0.1;
  CpuDirectBackend backend(eps);
  backend.load(ps);
  std::vector<std::uint32_t> ilist{static_cast<std::uint32_t>(probe)};
  std::vector<Force> f(1);

  auto pot_at = [&](const Vec3& x) {
    std::vector<Vec3> pos{x}, vel{{0, 0, 0}};
    std::vector<Force> out(1);
    backend.compute_states(0.0, ilist, pos, vel, out);
    return out[0].pot;
  };

  backend.compute(0.0, ilist, f);
  const double h = 1e-6;
  const Vec3 x0 = ps.pos(probe);
  const Vec3 grad{(pot_at(x0 + Vec3{h, 0, 0}) - pot_at(x0 - Vec3{h, 0, 0})) / (2 * h),
                  (pot_at(x0 + Vec3{0, h, 0}) - pot_at(x0 - Vec3{0, h, 0})) / (2 * h),
                  (pot_at(x0 + Vec3{0, 0, h}) - pot_at(x0 - Vec3{0, 0, h})) / (2 * h)};
  EXPECT_NEAR(norm(f[0].acc + grad), 0.0, 1e-7 * norm(f[0].acc));
}

}  // namespace
