// Kernel-level tests for the SoA force kernels (force_kernels.hpp): every
// exact kernel must reproduce the scalar seed loop (pairwise_force) bit for
// bit across block-boundary sizes, self-exclusion placements and softening
// choices; the opt-in fast kernel must stay within its rsqrt+Newton error
// envelope.
#include "nbody/force_kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "nbody/force_direct.hpp"
#include "nbody/simd_dispatch.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::CpuKernel;
using g6::nbody::Force;
using g6::nbody::SoAPredicted;
using g6::util::Vec3;

SoAPredicted random_store(std::size_t n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  SoAPredicted js;
  js.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    js.x[j] = rng.uniform(-30.0, 30.0);
    js.y[j] = rng.uniform(-30.0, 30.0);
    js.z[j] = rng.uniform(-1.0, 1.0);
    js.vx[j] = rng.uniform(-0.3, 0.3);
    js.vy[j] = rng.uniform(-0.3, 0.3);
    js.vz[j] = rng.uniform(-0.03, 0.03);
    js.m[j] = rng.uniform(1e-12, 1e-9);
  }
  return js;
}

/// The seed's own loop: pairwise_force per j in ascending order, skipping
/// `self`, accumulating into \p f — the oracle all exact kernels are
/// measured against.
void seed_loop_into(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                    std::size_t self, double eps2, Force& f) {
  for (std::size_t j = 0; j < js.size(); ++j) {
    if (j == self) continue;
    g6::nbody::pairwise_force(xi, vi, {js.x[j], js.y[j], js.z[j]},
                              {js.vx[j], js.vy[j], js.vz[j]}, js.m[j], eps2, f);
  }
}

Force seed_loop(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2) {
  Force f;
  seed_loop_into(js, xi, vi, self, eps2, f);
  return f;
}

void expect_force_bits_equal(const Force& a, const Force& b, const char* what) {
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  EXPECT_EQ(bits(a.acc.x), bits(b.acc.x)) << what;
  EXPECT_EQ(bits(a.acc.y), bits(b.acc.y)) << what;
  EXPECT_EQ(bits(a.acc.z), bits(b.acc.z)) << what;
  EXPECT_EQ(bits(a.jerk.x), bits(b.jerk.x)) << what;
  EXPECT_EQ(bits(a.jerk.y), bits(b.jerk.y)) << what;
  EXPECT_EQ(bits(a.jerk.z), bits(b.jerk.z)) << what;
  EXPECT_EQ(bits(a.pot), bits(b.pot)) << what;
}

class ExactKernels : public ::testing::TestWithParam<CpuKernel> {};

// Sizes straddle the tile size (64) and every vector width; self placed at
// the range ends, mid-range and absent.
TEST_P(ExactKernels, BitIdenticalToSeedLoopAcrossSizes) {
  for (std::size_t n : {0ul, 1ul, 2ul, 7ul, 8ul, 9ul, 63ul, 64ul, 65ul, 200ul}) {
    const SoAPredicted js = random_store(n, 0xabcdef12 + n);
    const Vec3 xi{0.5, -0.25, 0.03}, vi{0.01, -0.02, 0.003};
    std::vector<std::size_t> selves{g6::nbody::kNoSelf};
    if (n > 0) {
      selves.push_back(0);
      selves.push_back(n / 2);
      selves.push_back(n - 1);
    }
    for (std::size_t self : selves) {
      for (double eps2 : {0.0, 1e-4}) {
        const Force want = seed_loop(js, xi, vi, self, eps2);
        Force got;
        g6::nbody::force_on_i(GetParam(), js, xi, vi, self, eps2, got);
        expect_force_bits_equal(want, got, g6::nbody::cpu_kernel_name(GetParam()));
      }
    }
  }
}

// Kernels accumulate into a caller-initialised Force (the integrator adds the
// central star term first) — the incoming value must be preserved exactly.
TEST_P(ExactKernels, AccumulatesIntoExistingForce) {
  const SoAPredicted js = random_store(100, 42);
  const Vec3 xi{1.0, 2.0, 0.1}, vi{0.0, 0.1, 0.0};
  Force base;
  base.acc = {1.0, -2.0, 3.0};
  base.jerk = {-0.5, 0.25, -0.125};
  base.pot = -7.0;

  // The kernels add term by term starting from the incoming value, so the
  // oracle must do the same (adding a separately-computed total would round
  // differently).
  Force want = base;
  seed_loop_into(js, xi, vi, g6::nbody::kNoSelf, 1e-6, want);

  Force got = base;
  g6::nbody::force_on_i(GetParam(), js, xi, vi, g6::nbody::kNoSelf, 1e-6, got);
  expect_force_bits_equal(want, got, g6::nbody::cpu_kernel_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(All, ExactKernels,
                         ::testing::Values(CpuKernel::kReference, CpuKernel::kTiled,
                                           CpuKernel::kSimd, CpuKernel::kBlocked),
                         [](const ::testing::TestParamInfo<CpuKernel>& info) {
                           return g6::nbody::cpu_kernel_name(info.param);
                         });

// The blocked kernel's bit-identity must hold at ANY tile geometry, not just
// the cache-derived one: the tiling only reorders which (i, j-block) cell is
// visited when, never the j-order within one i. Degenerate, tiny, huge and
// lopsided tiles all hit different tail/self-tile paths.
TEST(BlockedKernel, BitIdenticalAtAnyGeometry) {
  const std::size_t n = 200;
  const SoAPredicted js = random_store(n, 0xb10c);
  const std::size_t ni = 37;  // odd, not a multiple of anything
  std::vector<Vec3> xs(ni), vs(ni);
  std::vector<std::uint32_t> selves(ni);
  std::vector<Force> want(ni);
  for (std::size_t k = 0; k < ni; ++k) {
    xs[k] = {js.x[k], js.y[k], js.z[k]};
    vs[k] = {js.vx[k], js.vy[k], js.vz[k]};
    selves[k] = k % 5 == 0 ? g6::nbody::kNoSelf32 : static_cast<std::uint32_t>(k);
    const std::size_t self =
        selves[k] == g6::nbody::kNoSelf32 ? g6::nbody::kNoSelf : k;
    want[k] = seed_loop(js, xs[k], vs[k], self, 1e-4);
  }
  const auto& t = g6::nbody::active_kernel_table();
  for (g6::nbody::BlockGeometry geom :
       {g6::nbody::BlockGeometry{1, 1}, {1, 1024}, {1024, 1}, {3, 17},
        {64, 512}, {4096, 4096}}) {
    std::vector<Force> got(ni);
    t.blocked(js, xs.data(), vs.data(), selves.data(), ni, 1e-4, geom,
              got.data());
    for (std::size_t k = 0; k < ni; ++k) expect_force_bits_equal(want[k], got[k], "blocked");
  }
}

TEST(FastKernel, WithinRsqrtNewtonTolerance) {
  for (std::size_t n : {7ul, 64ul, 200ul, 1024ul}) {
    const SoAPredicted js = random_store(n, 0x5eed + n);
    const Vec3 xi{0.5, -0.25, 0.03}, vi{0.01, -0.02, 0.003};
    const Force want = seed_loop(js, xi, vi, g6::nbody::kNoSelf, 1e-6);
    Force got;
    g6::nbody::force_on_i(CpuKernel::kFast, js, xi, vi, g6::nbody::kNoSelf, 1e-6, got);
    const double ascale = std::sqrt(norm2(want.acc)) + 1e-300;
    EXPECT_NEAR(got.acc.x, want.acc.x, 1e-10 * ascale);
    EXPECT_NEAR(got.acc.y, want.acc.y, 1e-10 * ascale);
    EXPECT_NEAR(got.acc.z, want.acc.z, 1e-10 * ascale);
    const double jscale = std::sqrt(norm2(want.jerk)) + 1e-300;
    EXPECT_NEAR(got.jerk.x, want.jerk.x, 1e-10 * jscale);
    EXPECT_NEAR(got.jerk.y, want.jerk.y, 1e-10 * jscale);
    EXPECT_NEAR(got.jerk.z, want.jerk.z, 1e-10 * jscale);
    EXPECT_NEAR(got.pot, want.pot, 1e-10 * std::abs(want.pot));
  }
}

// --- Approximate-kernel error-bound suite ---------------------------------
//
// kFast and kMixed carry documented error contracts (kFastMaxRelErr,
// kMixedMaxRelErr in force_kernels.hpp). Enforce them against the scalar
// seed loop over three system shapes the planetesimal runs actually produce:
// a thin disk (the paper's geometry), a Plummer sphere (close-encounter
// heavy), and a clustered distribution (tight subgroups -> large dynamic
// range between in-cluster and cross-cluster pair distances, the worst case
// for kMixed's shared position grid).

enum class Shape { kDisk, kClustered, kPlummer };

SoAPredicted shaped_store(Shape shape, std::size_t n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  SoAPredicted js;
  js.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    double x = 0, y = 0, z = 0;
    switch (shape) {
      case Shape::kDisk: {
        const double r = 20.0 + 10.0 * rng.uniform(0.0, 1.0);
        const double ph = rng.uniform(0.0, 6.283185307179586);
        x = r * std::cos(ph);
        y = r * std::sin(ph);
        z = rng.uniform(-0.5, 0.5);
        break;
      }
      case Shape::kClustered: {
        // 8 tight clusters spread over a wide box: intra-cluster distances
        // ~1e-3 of the span exercise the grid's relative position error.
        const int c = static_cast<int>(rng.uniform(0.0, 8.0));
        const double cx = ((c & 1) ? 1.0 : -1.0) * 25.0;
        const double cy = ((c & 2) ? 1.0 : -1.0) * 25.0;
        const double cz = ((c & 4) ? 1.0 : -1.0) * 0.5;
        x = cx + rng.uniform(-0.05, 0.05);
        y = cy + rng.uniform(-0.05, 0.05);
        z = cz + rng.uniform(-0.05, 0.05);
        break;
      }
      case Shape::kPlummer: {
        // Standard inversion: r = a / sqrt(u^(-2/3) - 1), isotropic angles.
        const double u = rng.uniform(1e-6, 0.999);
        const double r = 10.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
        const double ct = rng.uniform(-1.0, 1.0);
        const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
        const double ph = rng.uniform(0.0, 6.283185307179586);
        x = r * st * std::cos(ph);
        y = r * st * std::sin(ph);
        z = r * ct;
        break;
      }
    }
    js.x[j] = x;
    js.y[j] = y;
    js.z[j] = z;
    js.vx[j] = rng.uniform(-0.3, 0.3);
    js.vy[j] = rng.uniform(-0.3, 0.3);
    js.vz[j] = rng.uniform(-0.03, 0.03);
    js.m[j] = rng.uniform(1e-12, 1e-9);
  }
  return js;
}

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kDisk: return "disk";
    case Shape::kClustered: return "clustered";
    case Shape::kPlummer: return "plummer";
  }
  return "?";
}

/// Max over the sampled i-particles of |acc_kernel - acc_ref| / |acc_ref| —
/// the same metric bench_headline's sweep reports and check_perf_floor gates.
double max_rel_acc_err(CpuKernel kernel, const SoAPredicted& js, double eps2,
                       std::size_t max_is) {
  const std::size_t n = js.size();
  const std::size_t stride = std::max<std::size_t>(1, n / max_is);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; i += stride) {
    const Vec3 xi{js.x[i], js.y[i], js.z[i]};
    const Vec3 vi{js.vx[i], js.vy[i], js.vz[i]};
    const Force ref = seed_loop(js, xi, vi, i, eps2);
    Force got;
    g6::nbody::force_on_i(kernel, js, xi, vi, i, eps2, got);
    const double scale = std::sqrt(norm2(ref.acc)) + 1e-300;
    worst = std::max(worst, std::abs(got.acc.x - ref.acc.x) / scale);
    worst = std::max(worst, std::abs(got.acc.y - ref.acc.y) / scale);
    worst = std::max(worst, std::abs(got.acc.z - ref.acc.z) / scale);
  }
  return worst;
}

class ApproxKernelBounds
    : public ::testing::TestWithParam<std::tuple<Shape, std::size_t>> {};

TEST_P(ApproxKernelBounds, FastAndMixedWithinDocumentedBounds) {
  const auto [shape, n] = GetParam();
  const SoAPredicted js = shaped_store(shape, n, 0xb0u + n);
  const double eps2 = 0.008 * 0.008;  // the runs' softening scale
  const std::size_t max_is = 128;     // sampled i-particles (full j-sums)
  const double fast_err = max_rel_acc_err(CpuKernel::kFast, js, eps2, max_is);
  const double mixed_err = max_rel_acc_err(CpuKernel::kMixed, js, eps2, max_is);
  EXPECT_LE(fast_err, g6::nbody::kFastMaxRelErr)
      << shape_name(shape) << " n=" << n;
  EXPECT_LE(mixed_err, g6::nbody::kMixedMaxRelErr)
      << shape_name(shape) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ApproxKernelBounds,
    ::testing::Combine(::testing::Values(Shape::kDisk, Shape::kClustered,
                                         Shape::kPlummer),
                       ::testing::Values(64ul, 1024ul, 4096ul)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, std::size_t>>& info) {
      return std::string(shape_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// The paired-row block entry force_on_block routes kMixed through must give
// bit-identical results to the one-row kernel (same chunking, same per-i
// order), including at odd block sizes and with fallback rows mixed in.
TEST(MixedKernel, BlockEntryMatchesPerRow) {
  const std::size_t n = 200;
  const SoAPredicted js = shaped_store(Shape::kDisk, n, 77);
  for (std::size_t ni : {1ul, 2ul, 3ul, 64ul, 65ul}) {
    std::vector<Vec3> xs(ni), vs(ni);
    std::vector<std::uint32_t> selves(ni);
    std::vector<Force> want(ni), got(ni);
    for (std::size_t k = 0; k < ni; ++k) {
      xs[k] = {js.x[k], js.y[k], js.z[k]};
      vs[k] = {js.vx[k], js.vy[k], js.vz[k]};
      selves[k] = static_cast<std::uint32_t>(k);
      g6::nbody::force_on_i(CpuKernel::kMixed, js, xs[k], vs[k], k, 0.008 * 0.008,
                            want[k]);
    }
    g6::nbody::force_on_block(CpuKernel::kMixed, js, xs.data(), vs.data(),
                              selves.data(), ni, 0.008 * 0.008, got.data());
    for (std::size_t k = 0; k < ni; ++k)
      expect_force_bits_equal(want[k], got[k], "mixed block vs per-row");
  }
}

// Unsoftened systems (eps2 = 0) must take the exact fallback: the mixed
// kernel's self-lane trick divides by sqrt(eps2), so the kernel routes those
// calls to the exact SIMD kernel — results must be bit-identical to it.
TEST(MixedKernel, UnsoftenedFallsBackToExact) {
  const SoAPredicted js = random_store(100, 9);
  const Vec3 xi{js.x[3], js.y[3], js.z[3]}, vi{js.vx[3], js.vy[3], js.vz[3]};
  Force want, got;
  g6::nbody::force_on_i(CpuKernel::kSimd, js, xi, vi, 3, 0.0, want);
  g6::nbody::force_on_i(CpuKernel::kMixed, js, xi, vi, 3, 0.0, got);
  expect_force_bits_equal(want, got, "mixed eps2=0 fallback");
}

TEST(KernelSelection, EnvNamesRoundTrip) {
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kReference), "reference");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kTiled), "tiled");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kSimd), "simd");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kBlocked), "blocked");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kFast), "fast");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kMixed), "mixed");

  CpuKernel k = CpuKernel::kReference;
  EXPECT_TRUE(g6::nbody::cpu_kernel_from_name("blocked", &k));
  EXPECT_EQ(k, CpuKernel::kBlocked);
  EXPECT_TRUE(g6::nbody::cpu_kernel_from_name("mixed", &k));
  EXPECT_EQ(k, CpuKernel::kMixed);
  EXPECT_FALSE(g6::nbody::cpu_kernel_from_name("blokced", &k));
  EXPECT_FALSE(g6::nbody::cpu_kernel_from_name(nullptr, &k));
  EXPECT_EQ(k, CpuKernel::kMixed);  // unrecognised names leave *out untouched
}

}  // namespace
