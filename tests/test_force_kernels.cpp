// Kernel-level tests for the SoA force kernels (force_kernels.hpp): every
// exact kernel must reproduce the scalar seed loop (pairwise_force) bit for
// bit across block-boundary sizes, self-exclusion placements and softening
// choices; the opt-in fast kernel must stay within its rsqrt+Newton error
// envelope.
#include "nbody/force_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

namespace {

using g6::nbody::CpuKernel;
using g6::nbody::Force;
using g6::nbody::SoAPredicted;
using g6::util::Vec3;

SoAPredicted random_store(std::size_t n, std::uint64_t seed) {
  g6::util::Rng rng(seed);
  SoAPredicted js;
  js.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    js.x[j] = rng.uniform(-30.0, 30.0);
    js.y[j] = rng.uniform(-30.0, 30.0);
    js.z[j] = rng.uniform(-1.0, 1.0);
    js.vx[j] = rng.uniform(-0.3, 0.3);
    js.vy[j] = rng.uniform(-0.3, 0.3);
    js.vz[j] = rng.uniform(-0.03, 0.03);
    js.m[j] = rng.uniform(1e-12, 1e-9);
  }
  return js;
}

/// The seed's own loop: pairwise_force per j in ascending order, skipping
/// `self`, accumulating into \p f — the oracle all exact kernels are
/// measured against.
void seed_loop_into(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                    std::size_t self, double eps2, Force& f) {
  for (std::size_t j = 0; j < js.size(); ++j) {
    if (j == self) continue;
    g6::nbody::pairwise_force(xi, vi, {js.x[j], js.y[j], js.z[j]},
                              {js.vx[j], js.vy[j], js.vz[j]}, js.m[j], eps2, f);
  }
}

Force seed_loop(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2) {
  Force f;
  seed_loop_into(js, xi, vi, self, eps2, f);
  return f;
}

void expect_force_bits_equal(const Force& a, const Force& b, const char* what) {
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  EXPECT_EQ(bits(a.acc.x), bits(b.acc.x)) << what;
  EXPECT_EQ(bits(a.acc.y), bits(b.acc.y)) << what;
  EXPECT_EQ(bits(a.acc.z), bits(b.acc.z)) << what;
  EXPECT_EQ(bits(a.jerk.x), bits(b.jerk.x)) << what;
  EXPECT_EQ(bits(a.jerk.y), bits(b.jerk.y)) << what;
  EXPECT_EQ(bits(a.jerk.z), bits(b.jerk.z)) << what;
  EXPECT_EQ(bits(a.pot), bits(b.pot)) << what;
}

class ExactKernels : public ::testing::TestWithParam<CpuKernel> {};

// Sizes straddle the tile size (64) and every vector width; self placed at
// the range ends, mid-range and absent.
TEST_P(ExactKernels, BitIdenticalToSeedLoopAcrossSizes) {
  for (std::size_t n : {0ul, 1ul, 2ul, 7ul, 8ul, 9ul, 63ul, 64ul, 65ul, 200ul}) {
    const SoAPredicted js = random_store(n, 0xabcdef12 + n);
    const Vec3 xi{0.5, -0.25, 0.03}, vi{0.01, -0.02, 0.003};
    std::vector<std::size_t> selves{g6::nbody::kNoSelf};
    if (n > 0) {
      selves.push_back(0);
      selves.push_back(n / 2);
      selves.push_back(n - 1);
    }
    for (std::size_t self : selves) {
      for (double eps2 : {0.0, 1e-4}) {
        const Force want = seed_loop(js, xi, vi, self, eps2);
        Force got;
        g6::nbody::force_on_i(GetParam(), js, xi, vi, self, eps2, got);
        expect_force_bits_equal(want, got, g6::nbody::cpu_kernel_name(GetParam()));
      }
    }
  }
}

// Kernels accumulate into a caller-initialised Force (the integrator adds the
// central star term first) — the incoming value must be preserved exactly.
TEST_P(ExactKernels, AccumulatesIntoExistingForce) {
  const SoAPredicted js = random_store(100, 42);
  const Vec3 xi{1.0, 2.0, 0.1}, vi{0.0, 0.1, 0.0};
  Force base;
  base.acc = {1.0, -2.0, 3.0};
  base.jerk = {-0.5, 0.25, -0.125};
  base.pot = -7.0;

  // The kernels add term by term starting from the incoming value, so the
  // oracle must do the same (adding a separately-computed total would round
  // differently).
  Force want = base;
  seed_loop_into(js, xi, vi, g6::nbody::kNoSelf, 1e-6, want);

  Force got = base;
  g6::nbody::force_on_i(GetParam(), js, xi, vi, g6::nbody::kNoSelf, 1e-6, got);
  expect_force_bits_equal(want, got, g6::nbody::cpu_kernel_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(All, ExactKernels,
                         ::testing::Values(CpuKernel::kReference, CpuKernel::kTiled,
                                           CpuKernel::kSimd),
                         [](const ::testing::TestParamInfo<CpuKernel>& info) {
                           return g6::nbody::cpu_kernel_name(info.param);
                         });

TEST(FastKernel, WithinRsqrtNewtonTolerance) {
  for (std::size_t n : {7ul, 64ul, 200ul, 1024ul}) {
    const SoAPredicted js = random_store(n, 0x5eed + n);
    const Vec3 xi{0.5, -0.25, 0.03}, vi{0.01, -0.02, 0.003};
    const Force want = seed_loop(js, xi, vi, g6::nbody::kNoSelf, 1e-6);
    Force got;
    g6::nbody::force_on_i(CpuKernel::kFast, js, xi, vi, g6::nbody::kNoSelf, 1e-6, got);
    const double ascale = std::sqrt(norm2(want.acc)) + 1e-300;
    EXPECT_NEAR(got.acc.x, want.acc.x, 1e-10 * ascale);
    EXPECT_NEAR(got.acc.y, want.acc.y, 1e-10 * ascale);
    EXPECT_NEAR(got.acc.z, want.acc.z, 1e-10 * ascale);
    const double jscale = std::sqrt(norm2(want.jerk)) + 1e-300;
    EXPECT_NEAR(got.jerk.x, want.jerk.x, 1e-10 * jscale);
    EXPECT_NEAR(got.jerk.y, want.jerk.y, 1e-10 * jscale);
    EXPECT_NEAR(got.jerk.z, want.jerk.z, 1e-10 * jscale);
    EXPECT_NEAR(got.pot, want.pot, 1e-10 * std::abs(want.pot));
  }
}

TEST(KernelSelection, EnvNamesRoundTrip) {
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kReference), "reference");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kTiled), "tiled");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kSimd), "simd");
  EXPECT_STREQ(g6::nbody::cpu_kernel_name(CpuKernel::kFast), "fast");
}

}  // namespace
