// Tests for the thread pool's parallel_for.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace {

using g6::util::ThreadPool;

class PoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizes, CoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST_P(PoolSizes, SumReduction) {
  ThreadPool pool(GetParam());
  const std::size_t n = 10000;
  std::vector<long long> partial(pool.size(), 0);
  std::atomic<std::size_t> lane{0};
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    long long s = 0;
    for (std::size_t i = b; i < e; ++i) s += static_cast<long long>(i);
    partial[lane.fetch_add(1)] += s;
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizes, ::testing::Values(1u, 2u, 3u, 8u));

TEST(ThreadPool, SizeReportsLanes) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.size(), 1u);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(16, [&](std::size_t b, std::size_t e) {
      counter.fetch_add(static_cast<int>(e - b));
    });
  }
  EXPECT_EQ(counter.load(), 200 * 16);
}

TEST(ThreadPool, SmallRangeFewerChunksThanLanes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Ranges below the serial grain must not wake the workers: a single chunk,
// executed on the caller's thread. The block-step scheduler issues mostly
// tiny i-lists, where the dispatch overhead would dominate.
TEST(ThreadPool, TinyRangeRunsSeriallyOnCaller) {
  ThreadPool pool(8);
  const auto caller = std::this_thread::get_id();
  for (std::size_t n : {1ul, 2ul, ThreadPool::kSerialGrain - 1}) {
    int chunks = 0;
    std::size_t covered = 0;
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++chunks;  // no race: single-threaded by the assertion above
      EXPECT_EQ(b, 0u);
      covered += e - b;
    });
    EXPECT_EQ(chunks, 1) << "n=" << n;
    EXPECT_EQ(covered, n);
  }
}

TEST(ThreadPool, GrainSizedRangeUsesMultipleChunks) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(ThreadPool::kSerialGrain, [&](std::size_t b, std::size_t e) {
    chunks.fetch_add(1);
    covered.fetch_add(e - b);
  });
  EXPECT_GT(chunks.load(), 1);
  EXPECT_EQ(covered.load(), ThreadPool::kSerialGrain);
}

// n = 4 is far below kSerialGrain, but per-board / per-host tasks are coarse
// enough that even two of them are worth distributing: grain = 1 must
// override the serial cutoff and split the range.
TEST(ThreadPool, GrainOneDistributesCoarseTasks) {
  ThreadPool pool(4);
  std::mutex mu;
  int chunks = 0;
  std::size_t covered = 0;
  pool.parallel_for(
      4,
      [&](std::size_t b, std::size_t e) {
        std::lock_guard lk(mu);
        ++chunks;
        covered += e - b;
      },
      /*grain=*/1);
  EXPECT_GT(chunks, 1);
  EXPECT_EQ(covered, 4u);
}

// A parallel_for issued from inside a parallel region (here: from the chunks
// of an enclosing parallel_for, which run on pool workers and on the caller)
// must not deadlock waiting for workers that are busy running the outer
// loop. It falls back to a serial fn(0, n) on the calling thread, and every
// element is still covered exactly once. The inner range is far above
// kSerialGrain so the serial execution is due to re-entrancy, not size.
TEST(ThreadPool, NestedParallelForSerializesInsteadOfDeadlocking) {
  ThreadPool pool(4);
  constexpr std::size_t outer = 8;
  constexpr std::size_t inner = 4 * ThreadPool::kSerialGrain;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallel_for(
      outer,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const auto tid = std::this_thread::get_id();
          pool.parallel_for(inner, [&](std::size_t ib, std::size_t ie) {
            EXPECT_EQ(std::this_thread::get_id(), tid);  // serial, same thread
            for (std::size_t j = ib; j < ie; ++j) hits[i * inner + j].fetch_add(1);
          });
        }
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
}

// The re-entrancy guard is per-thread, not per-pool: nesting across two
// different pools (e.g. a private bench pool inside the shared pool) must
// serialize too, or the layers would oversubscribe each other.
TEST(ThreadPool, NestedAcrossDistinctPoolsSerializes) {
  ThreadPool outer_pool(4);
  ThreadPool inner_pool(4);
  std::atomic<std::size_t> covered{0};
  outer_pool.parallel_for(
      4,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const auto tid = std::this_thread::get_id();
          inner_pool.parallel_for(2 * ThreadPool::kSerialGrain,
                                  [&](std::size_t ib, std::size_t ie) {
                                    EXPECT_EQ(std::this_thread::get_id(), tid);
                                    covered.fetch_add(ie - ib);
                                  });
        }
      },
      /*grain=*/1);
  EXPECT_EQ(covered.load(), 4 * 2 * ThreadPool::kSerialGrain);
}

// An exception thrown by a chunk (worker or caller lane) is rethrown on the
// calling thread once all chunks finished, and the pool stays usable.
TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("chunk failure");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SharedPoolIsOneProcessWideInstance) {
  EXPECT_EQ(&g6::util::shared_pool(), &g6::util::shared_pool());
  EXPECT_EQ(g6::util::shared_pool().size(), g6::util::concurrency());
  EXPECT_GE(g6::util::concurrency(), 1u);
}

// The static partition is a pure function of (n, size()): repeated calls see
// identical chunk boundaries, which keeps reductions reproducible.
TEST(ThreadPool, PartitionIsDeterministic) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  auto collect = [&] {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      std::lock_guard lk(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto first = collect();
  for (int round = 0; round < 5; ++round) EXPECT_EQ(collect(), first);
}

}  // namespace
