// Tests for the thread pool's parallel_for.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using g6::util::ThreadPool;

class PoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizes, CoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST_P(PoolSizes, SumReduction) {
  ThreadPool pool(GetParam());
  const std::size_t n = 10000;
  std::vector<long long> partial(pool.size(), 0);
  std::atomic<std::size_t> lane{0};
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    long long s = 0;
    for (std::size_t i = b; i < e; ++i) s += static_cast<long long>(i);
    partial[lane.fetch_add(1)] += s;
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizes, ::testing::Values(1u, 2u, 3u, 8u));

TEST(ThreadPool, SizeReportsLanes) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.size(), 1u);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(16, [&](std::size_t b, std::size_t e) {
      counter.fetch_add(static_cast<int>(e - b));
    });
  }
  EXPECT_EQ(counter.load(), 200 * 16);
}

TEST(ThreadPool, SmallRangeFewerChunksThanLanes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
