#!/usr/bin/env python3
"""Validate monitor-endpoint output: Prometheus text exposition grammar
(format 0.0.4, the /metrics endpoint) and JSON well-formedness (the
/metrics.json, /progress, and /series endpoints).

Usage: check_exposition.py [--require=PREFIX ...] TARGET [TARGET...]

Each --require=PREFIX asserts that at least one metric with that name prefix
appears somewhere in the validated targets: a Prometheus sample whose name
starts with the sanitized prefix (dots become underscores, e.g. `g6.net.`
matches `g6_net_frames_sent`), or the raw prefix in a JSON target's text.
CI's monitor-smoke uses this to prove the transport-aggregation counters
(`--require=g6.net.`) are actually exported by a live run.

Each TARGET is a file path or an http:// URL (fetched with stdlib urllib,
so the CI job needs no extra packages). Format is chosen per target:

  *.json paths, and URLs whose path ends in .json, /progress, /series,
  /jobs or /jobs/<id> (but not the binary /jobs/<id>/result)
      -> JSON: must parse, must be an object or array; /jobs documents
         are additionally schema-checked: the summary counters and every
         job record must carry the full field set the job server's
         record_json emits, with the right JSON types (docs/SERVING.md)
  everything else
      -> Prometheus text: every line must be empty, a # HELP / # TYPE
         comment, or a sample `name[{labels}] value [timestamp]`; metric
         names must match [a-zA-Z_:][a-zA-Z0-9_:]*, label values must be
         properly quoted, and values must be floats or NaN/+Inf/-Inf.
         At least one sample and one # TYPE line are required, and every
         sample's base name must have been declared by a # TYPE.

Exit 0 when every target validates; 1 otherwise (one line per problem).
"""

import json
import re
import sys
import urllib.request

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def fetch(target):
    if target.startswith("http://") or target.startswith("https://"):
        with urllib.request.urlopen(target, timeout=10) as r:
            return r.read().decode("utf-8", errors="replace")
    with open(target, encoding="utf-8") as f:
        return f.read()


def is_json_target(target):
    path = target.split("?", 1)[0]
    if path.endswith((".json", "/progress", "/series")):
        return True
    return is_jobs_target(target)


def is_jobs_target(target):
    """/jobs and /jobs/<id> serve JSON; /jobs/<id>/result is raw bytes."""
    path = target.split("?", 1)[0]
    if path.endswith("/result"):
        return False
    return path.endswith("/jobs") or "/jobs/" in path


def valid_value(tok):
    if tok in ("NaN", "+Inf", "-Inf", "Inf"):
        return True
    try:
        float(tok)
        return True
    except ValueError:
        return False


def split_labels(body):
    """Split `a="x",b="y"` on commas outside quotes (values may hold
    escaped quotes)."""
    parts, cur, in_quotes, escaped = [], "", False, False
    for ch in body:
        if escaped:
            cur += ch
            escaped = False
        elif ch == "\\":
            cur += ch
            escaped = True
        elif ch == '"':
            cur += ch
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    if cur:
        parts.append(cur)
    return parts, not in_quotes


def check_sample(line, declared, errors, where):
    # name{labels} value [timestamp]  |  name value [timestamp]
    if "{" in line:
        name, rest = line.split("{", 1)
        if "}" not in rest:
            errors.append(f"{where}: unterminated label set: {line!r}")
            return
        labels, tail = rest.rsplit("}", 1)
        parts, balanced = split_labels(labels)
        if not balanced:
            errors.append(f"{where}: unbalanced quotes in labels: {line!r}")
            return
        for p in parts:
            if "=" not in p:
                errors.append(f"{where}: label without '=': {p!r}")
                continue
            lname, lval = p.split("=", 1)
            if not LABEL_NAME.match(lname):
                errors.append(f"{where}: bad label name {lname!r}")
            if len(lval) < 2 or lval[0] != '"' or lval[-1] != '"':
                errors.append(f"{where}: unquoted label value {lval!r}")
    else:
        fields = line.split(None, 1)
        name, tail = fields[0], (fields[1] if len(fields) > 1 else "")
    if not METRIC_NAME.match(name):
        errors.append(f"{where}: bad metric name {name!r}")
    base = re.sub(r"_(sum|count|bucket)$", "", name)
    if declared and name not in declared and base not in declared:
        errors.append(f"{where}: sample {name!r} has no # TYPE declaration")
    toks = tail.split()
    if not toks or not valid_value(toks[0]):
        errors.append(f"{where}: bad sample value in {line!r}")
    elif len(toks) == 2 and not re.match(r"-?\d+$", toks[1]):
        errors.append(f"{where}: bad timestamp in {line!r}")
    elif len(toks) > 2:
        errors.append(f"{where}: trailing tokens in {line!r}")


def sanitize(name):
    """The same normalization obs/exposition.cpp applies to metric names."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def sample_names(text):
    """Metric names of every sample line in a Prometheus text document."""
    names = set()
    for line in text.split("\n"):
        if line and not line.startswith("#"):
            names.add(line.split("{", 1)[0].split(None, 1)[0])
    return names


def check_prometheus(text, target, errors):
    declared, samples = set(), 0
    for i, line in enumerate(text.split("\n"), 1):
        where = f"{target}:{i}"
        if line == "":
            continue
        if line.startswith("#"):
            toks = line.split(None, 3)
            if len(toks) >= 2 and toks[1] == "TYPE":
                if len(toks) != 4 or toks[3] not in TYPES:
                    errors.append(f"{where}: malformed # TYPE: {line!r}")
                elif not METRIC_NAME.match(toks[2]):
                    errors.append(f"{where}: bad name in # TYPE: {line!r}")
                else:
                    declared.add(toks[2])
            elif len(toks) >= 2 and toks[1] == "HELP":
                if len(toks) < 3 or not METRIC_NAME.match(toks[2]):
                    errors.append(f"{where}: malformed # HELP: {line!r}")
            # other comments are legal and ignored
            continue
        check_sample(line, declared, errors, where)
        samples += 1
    if samples == 0:
        errors.append(f"{target}: no samples")
    if not declared:
        errors.append(f"{target}: no # TYPE declarations")


# Field -> required JSON type(s), mirroring record_json in src/serve/job.cpp.
# bool is checked before int (Python bools are ints); integer-valued fields
# must arrive as JSON integers, not floats — the server emits them with
# std::to_string precisely so schema checks like this one stay strict.
JOB_RECORD_SCHEMA = {
    "id": str, "tenant": str, "state": str, "key": str, "cache_hit": bool,
    "model": str, "backend": str, "n": int, "seed": int, "t_end": (int, float),
    "priority": int, "submit_seconds": (int, float),
    "start_seconds": (int, float), "finish_seconds": (int, float),
    "t_sys": (int, float), "blocks": int, "steps": int, "result_bytes": int,
    "result_crc32": int, "error": str,
}
JOB_STATES = {"queued", "running", "done", "failed"}
JOBS_SUMMARY_FIELDS = ("queued", "running", "submitted", "completed",
                       "failed", "rejected", "cache_hits", "cache_misses")


def check_job_record(rec, where, errors):
    if not isinstance(rec, dict):
        errors.append(f"{where}: job record is {type(rec).__name__}, "
                      "expected object")
        return
    for field, want in JOB_RECORD_SCHEMA.items():
        if field not in rec:
            errors.append(f"{where}: job record missing field {field!r}")
            continue
        val = rec[field]
        if want is int and isinstance(val, bool):
            errors.append(f"{where}: field {field!r} is bool, expected int")
        elif not isinstance(val, want):
            errors.append(f"{where}: field {field!r} is "
                          f"{type(val).__name__}, expected {want}")
    for field in rec:
        if field not in JOB_RECORD_SCHEMA:
            errors.append(f"{where}: unknown job-record field {field!r}")
    state = rec.get("state")
    if isinstance(state, str) and state not in JOB_STATES:
        errors.append(f"{where}: unknown job state {state!r}")
    key = rec.get("key")
    if isinstance(key, str) and not re.match(r"[0-9a-f]{16}$", key):
        errors.append(f"{where}: key {key!r} is not 16 lowercase hex digits")


def check_jobs_document(doc, target, errors):
    if isinstance(doc, dict) and "jobs" in doc:
        # /jobs listing: summary counters plus an array of records.
        for field in JOBS_SUMMARY_FIELDS:
            if not isinstance(doc.get(field), int) or \
                    isinstance(doc.get(field), bool):
                errors.append(f"{target}: summary field {field!r} missing "
                              "or not an integer")
        if not isinstance(doc["jobs"], list):
            errors.append(f"{target}: 'jobs' is not an array")
            return
        for i, rec in enumerate(doc["jobs"]):
            check_job_record(rec, f"{target} jobs[{i}]", errors)
        print(f"  {target}: {len(doc['jobs'])} job records schema-checked")
    else:
        check_job_record(doc, target, errors)


def check_json(text, target, errors):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        errors.append(f"{target}: invalid JSON: {e}")
        return
    if not isinstance(doc, (dict, list)):
        errors.append(f"{target}: top level is {type(doc).__name__}, "
                      "expected object or array")
        return
    if is_jobs_target(target):
        check_jobs_document(doc, target, errors)


def main(argv):
    required = []
    targets = []
    for a in argv[1:]:
        if a.startswith("--require="):
            required.append(a.split("=", 1)[1])
        else:
            targets.append(a)
    if not targets:
        print(__doc__)
        return 2
    errors = []
    seen_prom_names = set()
    seen_json_text = []
    for target in targets:
        try:
            text = fetch(target)
        except Exception as e:  # noqa: BLE001 - report and keep checking
            errors.append(f"{target}: fetch failed: {e}")
            continue
        if is_json_target(target):
            check_json(text, target, errors)
            seen_json_text.append(text)
        else:
            check_prometheus(text, target, errors)
            seen_prom_names |= sample_names(text)
        print(f"checked {target} "
              f"({'json' if is_json_target(target) else 'prometheus'}, "
              f"{len(text)} bytes)")
    for prefix in required:
        want = sanitize(prefix)
        matched = sorted(n for n in seen_prom_names if n.startswith(want))
        if matched:
            print(f"required prefix {prefix!r}: {len(matched)} metrics "
                  f"(e.g. {matched[0]})")
        elif any(prefix in text for text in seen_json_text):
            print(f"required prefix {prefix!r}: found in JSON targets")
        else:
            errors.append(f"no metric with prefix {prefix!r} "
                          f"(sanitized {want!r}) in any target")
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    print("exposition check:", "FAIL" if errors else "PASS")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
