#pragma once
/// \file campaign.hpp
/// \brief Seeded fault campaigns: run a workload twice — fault-free and with
///        an armed FaultPlan — and check that recovery restored bit-identical
///        final registers, with the recovery cost accounted.

#include <cstdint>
#include <string>

#include "cluster/parallel_sim.hpp"
#include "fault/fault.hpp"

namespace g6::fault {

/// What to run and what to break.
struct CampaignConfig {
  int n = 192;                 ///< particles
  std::uint64_t ic_seed = 42;  ///< initial-condition seed
  int steps = 6;               ///< compute calls per run

  // Machine topology under test.
  int boards = 4;
  int chips_per_board = 4;

  // Cluster topology under test (cluster campaigns only).
  g6::cluster::HostMode mode = g6::cluster::HostMode::kNaive;
  int hosts = 4;

  // Fault mix. Used to build a CampaignShape for FaultPlan::random.
  std::uint64_t fault_seed = 1;
  int n_link_drops = 1;
  int n_link_corrupts = 2;
  int n_link_delays = 1;
  int n_link_fails = 1;
  int n_chip_flips = 2;
  int n_chip_kills = 1;
  int n_jmem_corruptions = 1;
  int n_board_fails = 1;
  int n_host_drops = 1;

  int threads = 0;  ///< thread-pool lanes; 0 = shared pool default

  // Transport shape under test (applies to both the reference and the
  // faulted run, so the bit-identity check exercises the same wire format).
  bool aggregated = true;  ///< coalesce j-updates / frame the collective legs
  bool deferred = false;   ///< defer the update flush to the next compute()
  bool overlap = false;    ///< double-buffered matrix compute/comm overlap
};

/// Outcome of one campaign: the reference/faulted comparison plus the
/// recovery accounting pulled from the injector.
struct CampaignResult {
  bool bit_identical = false;       ///< faulted final state == fault-free
  int faults_scheduled = 0;         ///< events in the armed plan
  FaultStatsSnapshot stats;         ///< injections, detections, recoveries
  double recovery_modeled_seconds = 0.0;
  double degraded_capacity_fraction = 1.0;  ///< surviving / initial capacity
  std::string summary;              ///< one-line human-readable outcome
};

/// Run a machine-level campaign: a Grape6Machine workload with chip flips,
/// j-memory corruption and board failures, recovered by recompute/remap.
CampaignResult run_machine_campaign(const CampaignConfig& cfg);

/// Run a cluster-level campaign in cfg.mode: link faults plus host dropout,
/// recovered by retry/resend and j re-replication.
CampaignResult run_cluster_campaign(const CampaignConfig& cfg);

/// Run a process-level campaign on the P3T hybrid tree+direct backend: an
/// uninterrupted reference integration of a planetesimal disk versus the
/// same run repeatedly SIGKILL-simulated (budget preemption) and resumed
/// from checkpoints in fresh "process images" with fault-seed-chosen thread
/// counts and kill points. Bit-identity here proves the stateful backend's
/// epoch snapshot (tree + neighbor lists) survives kill/resume exactly —
/// the fault layer makes no direct-summation assumptions.
CampaignResult run_hybrid_campaign(const CampaignConfig& cfg);

}  // namespace g6::fault
