#include "fault/fault.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDrop: return "link-drop";
    case FaultKind::kLinkCorrupt: return "link-corrupt";
    case FaultKind::kLinkDelay: return "link-delay";
    case FaultKind::kLinkFail: return "link-fail";
    case FaultKind::kChipBitFlip: return "chip-bitflip";
    case FaultKind::kJMemCorrupt: return "jmem-corrupt";
    case FaultKind::kBoardFail: return "board-fail";
    case FaultKind::kHostDrop: return "host-drop";
  }
  return "?";
}

namespace {

/// Which injection domain an event kind belongs to.
enum class DomainKind { kMachine, kCluster, kLink };

DomainKind domain_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDrop:
    case FaultKind::kLinkCorrupt:
    case FaultKind::kLinkDelay:
    case FaultKind::kLinkFail:
      return DomainKind::kLink;
    case FaultKind::kChipBitFlip:
    case FaultKind::kJMemCorrupt:
    case FaultKind::kBoardFail:
      return DomainKind::kMachine;
    case FaultKind::kHostDrop:
      return DomainKind::kCluster;
  }
  return DomainKind::kLink;
}

void reset_stats(FaultStats& stats) {
  for (auto& c : stats.injected) c.store(0, std::memory_order_relaxed);
  stats.crc_payload_mismatches.store(0, std::memory_order_relaxed);
  stats.crc_jmem_mismatches.store(0, std::memory_order_relaxed);
  stats.selftest_failures.store(0, std::memory_order_relaxed);
  stats.range_guard_trips.store(0, std::memory_order_relaxed);
  stats.link_retries.store(0, std::memory_order_relaxed);
  stats.resends.store(0, std::memory_order_relaxed);
  stats.recomputed_chip_blocks.store(0, std::memory_order_relaxed);
  stats.jmem_rewrites.store(0, std::memory_order_relaxed);
  stats.excluded_chips.store(0, std::memory_order_relaxed);
  stats.excluded_boards.store(0, std::memory_order_relaxed);
  stats.dead_hosts.store(0, std::memory_order_relaxed);
  stats.remapped_particles.store(0, std::memory_order_relaxed);
  stats.recovery_modeled_seconds.store(0.0, std::memory_order_relaxed);
}

void sort_by_at(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed, const CampaignShape& shape) {
  g6::util::Rng rng(seed);
  FaultPlan plan;

  auto rand_at = [&](std::uint64_t horizon) {
    return horizon == 0 ? 0 : rng.below(horizon);
  };

  // Link faults fire on uniformly-drawn send ops. kLinkFail windows target a
  // uniformly-drawn directed link; the (a, b) pair only arms the window, the
  // failure then hits whoever sends on that link next.
  const bool links_ok = shape.link_ops > 0 && shape.hosts > 1;
  G6_CHECK(links_ok || (shape.n_link_drops + shape.n_link_corrupts +
                        shape.n_link_delays + shape.n_link_fails) == 0,
           "link faults need link_ops > 0 and hosts > 1");
  for (int k = 0; k < shape.n_link_drops; ++k)
    plan.add({FaultKind::kLinkDrop, rand_at(shape.link_ops), -1, -1,
              static_cast<std::uint32_t>(rng.below(1u << 20)), 0});
  for (int k = 0; k < shape.n_link_corrupts; ++k)
    plan.add({FaultKind::kLinkCorrupt, rand_at(shape.link_ops), -1, -1,
              static_cast<std::uint32_t>(rng.below(1u << 20)), 0});
  for (int k = 0; k < shape.n_link_delays; ++k)
    plan.add({FaultKind::kLinkDelay, rand_at(shape.link_ops), -1, -1, 0,
              /*extra latency [us]=*/100 + rng.below(900)});
  for (int k = 0; k < shape.n_link_fails; ++k) {
    const int src = static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.hosts)));
    int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.hosts - 1)));
    if (dst >= src) ++dst;
    plan.add({FaultKind::kLinkFail, rand_at(shape.link_ops), src, dst, 0,
              /*window (failed attempts)=*/1 + rng.below(3)});
  }

  // Machine faults. Transient flips can repeat on a (board, chip); permanent
  // kills and board failures pick distinct victims and never exhaust a board
  // or the machine.
  const bool machine_ok = shape.machine_steps > 0 && shape.boards > 0 &&
                          shape.chips_per_board > 0;
  G6_CHECK(machine_ok || (shape.n_chip_flips + shape.n_chip_kills +
                          shape.n_jmem_corruptions + shape.n_board_fails) == 0,
           "machine faults need machine_steps/boards/chips_per_board > 0");
  for (int k = 0; k < shape.n_chip_flips; ++k)
    plan.add({FaultKind::kChipBitFlip, rand_at(shape.machine_steps),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.boards))),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.chips_per_board))),
              static_cast<std::uint32_t>(rng.below(64)), /*transient=*/0});
  G6_CHECK(shape.n_chip_kills == 0 || shape.n_chip_kills < shape.chips_per_board,
           "cannot kill every chip of a board");
  {
    std::vector<int> chips;  // distinct chips, all on board 0's sibling pattern
    for (int k = 0; k < shape.n_chip_kills; ++k) {
      int chip;
      do {
        chip = static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.chips_per_board)));
      } while (std::find(chips.begin(), chips.end(), chip) != chips.end());
      chips.push_back(chip);
      plan.add({FaultKind::kChipBitFlip, rand_at(shape.machine_steps),
                static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.boards))),
                chip, static_cast<std::uint32_t>(rng.below(64)), /*permanent=*/1});
    }
  }
  for (int k = 0; k < shape.n_jmem_corruptions; ++k)
    plan.add({FaultKind::kJMemCorrupt, rand_at(shape.machine_steps),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.boards))),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.chips_per_board))),
              static_cast<std::uint32_t>(rng.below(1u << 10)),
              /*slot=*/shape.jmem_slots == 0 ? 0 : rng.below(shape.jmem_slots)});
  G6_CHECK(shape.n_board_fails == 0 || shape.n_board_fails < shape.boards,
           "cannot fail every board");
  {
    std::vector<int> failed;
    for (int k = 0; k < shape.n_board_fails; ++k) {
      int board;
      do {
        board = static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.boards)));
      } while (std::find(failed.begin(), failed.end(), board) != failed.end());
      failed.push_back(board);
      plan.add({FaultKind::kBoardFail, rand_at(shape.machine_steps), board, -1, 0, 0});
    }
  }

  // Host drops: distinct hosts, host 0 survives (it gathers the final
  // reduction in matrix mode), and at least one host stays alive.
  G6_CHECK(shape.n_host_drops == 0 ||
               (shape.hosts > 1 && shape.n_host_drops < shape.hosts),
           "host drops need hosts > n_host_drops");
  {
    std::vector<int> dropped;
    for (int k = 0; k < shape.n_host_drops; ++k) {
      int host;
      do {
        host = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.hosts - 1)));
      } while (std::find(dropped.begin(), dropped.end(), host) != dropped.end());
      dropped.push_back(host);
      plan.add({FaultKind::kHostDrop, rand_at(shape.cluster_steps), host, -1, 0, 0});
    }
  }

  return plan;
}

std::span<const FaultEvent> FaultInjector::Domain::fire(std::uint64_t now) {
  const std::size_t first = next;
  while (next < events.size() && events[next].at <= now) ++next;
  return {events.data() + first, next - first};
}

void FaultInjector::arm(FaultPlan plan) {
  machine_ = {};
  cluster_ = {};
  link_ = {};
  machine_steps_ = cluster_steps_ = link_ops_ = 0;
  for (const FaultEvent& e : plan.events()) {
    switch (domain_of(e.kind)) {
      case DomainKind::kMachine: machine_.events.push_back(e); break;
      case DomainKind::kCluster: cluster_.events.push_back(e); break;
      case DomainKind::kLink: link_.events.push_back(e); break;
    }
  }
  sort_by_at(machine_.events);
  sort_by_at(cluster_.events);
  sort_by_at(link_.events);
  reset_stats(stats_);
  armed_ = true;
}

namespace {

/// Flight-recorder publish point: every fired fault leaves a note in the
/// post-mortem window (no-op while the recorder is disarmed).
void note_fired(const char* domain, std::span<const FaultEvent> fired) {
  auto& flight = g6::obs::FlightRecorder::global();
  if (!flight.enabled()) return;
  for (const FaultEvent& e : fired)
    flight.note("fault", std::string(domain) + " " + fault_kind_name(e.kind) +
                             " at=" + std::to_string(e.at) +
                             " a=" + std::to_string(e.a) +
                             " b=" + std::to_string(e.b));
}

}  // namespace

std::span<const FaultEvent> FaultInjector::machine_step() {
  if (!armed_) return {};
  const auto fired = machine_.fire(machine_steps_++);
  note_fired("machine", fired);
  return fired;
}

std::span<const FaultEvent> FaultInjector::cluster_step() {
  if (!armed_) return {};
  const auto fired = cluster_.fire(cluster_steps_++);
  note_fired("cluster", fired);
  return fired;
}

std::span<const FaultEvent> FaultInjector::link_op() {
  if (!armed_) return {};
  const auto fired = link_.fire(link_ops_++);
  note_fired("link", fired);
  return fired;
}

FaultStatsSnapshot FaultInjector::snapshot() const {
  FaultStatsSnapshot s;
  for (int k = 0; k < kFaultKindCount; ++k)
    s.injected[k] = stats_.injected[k].load(std::memory_order_relaxed);
  s.injected_total = stats_.injected_total();
  s.crc_payload_mismatches = stats_.crc_payload_mismatches.load(std::memory_order_relaxed);
  s.crc_jmem_mismatches = stats_.crc_jmem_mismatches.load(std::memory_order_relaxed);
  s.selftest_failures = stats_.selftest_failures.load(std::memory_order_relaxed);
  s.range_guard_trips = stats_.range_guard_trips.load(std::memory_order_relaxed);
  s.link_retries = stats_.link_retries.load(std::memory_order_relaxed);
  s.resends = stats_.resends.load(std::memory_order_relaxed);
  s.recomputed_chip_blocks = stats_.recomputed_chip_blocks.load(std::memory_order_relaxed);
  s.jmem_rewrites = stats_.jmem_rewrites.load(std::memory_order_relaxed);
  s.excluded_chips = stats_.excluded_chips.load(std::memory_order_relaxed);
  s.excluded_boards = stats_.excluded_boards.load(std::memory_order_relaxed);
  s.dead_hosts = stats_.dead_hosts.load(std::memory_order_relaxed);
  s.remapped_particles = stats_.remapped_particles.load(std::memory_order_relaxed);
  s.recovery_modeled_seconds =
      stats_.recovery_modeled_seconds.load(std::memory_order_relaxed);
  return s;
}

void flip_bit(void* data, std::size_t nbytes, std::uint32_t bit) {
  if (nbytes == 0) return;
  const std::uint32_t b = bit % static_cast<std::uint32_t>(nbytes * 8);
  static_cast<unsigned char*>(data)[b / 8] ^= static_cast<unsigned char>(1u << (b % 8));
}

void publish_metrics(const FaultStats& stats, g6::obs::MetricsRegistry& registry) {
  for (int k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    registry.counter(std::string("g6.fault.injected.") + fault_kind_name(kind))
        .set(stats.injected[k].load(std::memory_order_relaxed));
  }
  auto set = [&](const char* name, std::uint64_t v) {
    registry.counter(std::string("g6.fault.") + name).set(v);
  };
  set("crc_payload_mismatches",
      stats.crc_payload_mismatches.load(std::memory_order_relaxed));
  set("crc_jmem_mismatches", stats.crc_jmem_mismatches.load(std::memory_order_relaxed));
  set("selftest_failures", stats.selftest_failures.load(std::memory_order_relaxed));
  set("range_guard_trips", stats.range_guard_trips.load(std::memory_order_relaxed));
  set("link_retries", stats.link_retries.load(std::memory_order_relaxed));
  set("resends", stats.resends.load(std::memory_order_relaxed));
  set("recomputed_chip_blocks",
      stats.recomputed_chip_blocks.load(std::memory_order_relaxed));
  set("jmem_rewrites", stats.jmem_rewrites.load(std::memory_order_relaxed));
  set("excluded_chips", stats.excluded_chips.load(std::memory_order_relaxed));
  set("excluded_boards", stats.excluded_boards.load(std::memory_order_relaxed));
  set("dead_hosts", stats.dead_hosts.load(std::memory_order_relaxed));
  set("remapped_particles", stats.remapped_particles.load(std::memory_order_relaxed));
  registry.gauge("g6.fault.recovery_modeled_seconds")
      .set(stats.recovery_modeled_seconds.load(std::memory_order_relaxed));
}

std::string summarize(const FaultStatsSnapshot& snap) {
  auto u = [](std::uint64_t v) { return std::to_string(v); };
  return "injected=" + u(snap.injected_total) +
         " crc_hits=" + u(snap.crc_payload_mismatches + snap.crc_jmem_mismatches) +
         " selftest_failures=" + u(snap.selftest_failures) +
         " retries=" + u(snap.link_retries) + " resends=" + u(snap.resends) +
         " recomputed_blocks=" + u(snap.recomputed_chip_blocks) +
         " jmem_rewrites=" + u(snap.jmem_rewrites) +
         " excluded_chips=" + u(snap.excluded_chips) +
         " excluded_boards=" + u(snap.excluded_boards) +
         " dead_hosts=" + u(snap.dead_hosts) +
         " remapped=" + u(snap.remapped_particles) +
         " recovery_s=" + std::to_string(snap.recovery_modeled_seconds);
}

}  // namespace g6::fault
