#include "fault/campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "cluster/parallel_sim.hpp"
#include "grape6/machine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace g6::fault {

namespace hw = g6::hw;
namespace cluster = g6::cluster;
using g6::util::Vec3;

namespace {

/// The deterministic workload both the reference and the faulted run replay:
/// one set of j-particles plus one i-batch per step, all drawn from the
/// campaign's IC seed.
struct Workload {
  std::vector<hw::JParticle> js;
  std::vector<std::vector<hw::IParticle>> batches;  ///< one per step
  std::vector<double> times;
};

constexpr double kEps2 = 1e-4;

Workload make_workload(const CampaignConfig& cfg, const hw::FormatSpec& fmt) {
  G6_CHECK(cfg.n > 0 && cfg.steps > 0, "campaign needs particles and steps");
  g6::util::Rng rng(cfg.ic_seed);
  auto vec = [&](double scale) {
    return Vec3{scale * rng.uniform(-1.0, 1.0), scale * rng.uniform(-1.0, 1.0),
                scale * rng.uniform(-1.0, 1.0)};
  };
  Workload w;
  w.js.reserve(static_cast<std::size_t>(cfg.n));
  const double mass = 1.0 / cfg.n;
  for (int i = 0; i < cfg.n; ++i)
    w.js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), mass, 0.0,
                                       vec(1.0), vec(0.1), vec(0.01),
                                       vec(0.001), fmt));
  w.batches.resize(static_cast<std::size_t>(cfg.steps));
  for (int s = 0; s < cfg.steps; ++s) {
    w.times.push_back(0.01 * (s + 1));
    auto& batch = w.batches[static_cast<std::size_t>(s)];
    batch.reserve(static_cast<std::size_t>(cfg.n));
    for (int i = 0; i < cfg.n; ++i)
      batch.push_back(hw::make_i_particle(static_cast<std::uint32_t>(i),
                                          vec(1.0), vec(0.1), fmt));
  }
  return w;
}

/// Fold one step's force registers into a running CRC — raw fixed-point
/// words, so "bit-identical" means exactly that.
std::uint32_t fold_accums(std::uint32_t state,
                          const std::vector<hw::ForceAccumulator>& accum) {
  for (const hw::ForceAccumulator& a : accum) {
    const std::int64_t raws[7] = {a.acc.x().raw(),  a.acc.y().raw(),
                                  a.acc.z().raw(),  a.jerk.x().raw(),
                                  a.jerk.y().raw(), a.jerk.z().raw(),
                                  a.pot.raw()};
    state = g6::util::crc32_update(state, raws, sizeof(raws));
  }
  return state;
}

struct RunOutcome {
  std::uint32_t digest = 0;
  double capacity_start = 0.0;
  double capacity_end = 0.0;
  std::uint64_t messages = 0;  ///< total transport sends (cluster runs)
};

RunOutcome run_machine_once(const CampaignConfig& cfg, const Workload& w,
                            FaultInjector* injector,
                            g6::util::ThreadPool* pool) {
  // Per-chip SSRAM sized to hold the whole problem: the remap paths need
  // spare capacity on the survivors.
  hw::MachineConfig mc = hw::MachineConfig::mini(
      cfg.boards, cfg.chips_per_board, static_cast<std::size_t>(cfg.n));
  hw::Grape6Machine machine(mc, pool);
  if (injector != nullptr) machine.set_fault_injector(injector);

  RunOutcome out;
  out.capacity_start = static_cast<double>(machine.capacity());
  machine.load(w.js);

  std::uint32_t digest = g6::util::crc32_init();
  std::vector<hw::ForceAccumulator> accum;
  auto& flight = g6::obs::FlightRecorder::global();
  g6::util::Timer step_timer;
  for (int s = 0; s < cfg.steps; ++s) {
    machine.predict_all(w.times[static_cast<std::size_t>(s)]);
    machine.compute(w.batches[static_cast<std::size_t>(s)], kEps2, accum);
    digest = fold_accums(digest, accum);
    flight.record_step(w.times[static_cast<std::size_t>(s)],
                       w.batches[static_cast<std::size_t>(s)].size(),
                       step_timer.lap());
  }
  out.digest = g6::util::crc32_final(digest);
  out.capacity_end = static_cast<double>(machine.capacity());
  return out;
}

RunOutcome run_cluster_once(const CampaignConfig& cfg, const Workload& w,
                            FaultInjector* injector,
                            g6::util::ThreadPool* pool) {
  cluster::ParallelHostSystem sys(cfg.hosts, cfg.mode, hw::FormatSpec{}, 0.01,
                                  cluster::LinkSpec{}, pool);
  sys.set_aggregation(cfg.aggregated);
  sys.set_deferred_updates(cfg.deferred);
  sys.set_overlap(cfg.overlap);
  if (injector != nullptr) sys.set_fault_injector(injector);

  RunOutcome out;
  out.capacity_start = static_cast<double>(sys.hosts());
  sys.load(w.js);

  std::uint32_t digest = g6::util::crc32_init();
  std::vector<hw::ForceAccumulator> accum;
  std::vector<hw::JParticle> corrected;
  auto& flight = g6::obs::FlightRecorder::global();
  g6::util::Timer step_timer;
  for (int s = 0; s < cfg.steps; ++s) {
    sys.compute(w.times[static_cast<std::size_t>(s)],
                w.batches[static_cast<std::size_t>(s)], accum);
    digest = fold_accums(digest, accum);
    flight.record_step(w.times[static_cast<std::size_t>(s)],
                       w.batches[static_cast<std::size_t>(s)].size(),
                       step_timer.lap());
    // A rotating quarter of the particles gets a j-update every step — the
    // corrected-particle traffic the link faults attack.
    corrected.clear();
    for (int i = s % 4; i < cfg.n; i += 4)
      corrected.push_back(w.js[static_cast<std::size_t>(i)]);
    sys.update(corrected);
  }
  out.digest = g6::util::crc32_final(digest);
  out.capacity_end = static_cast<double>(sys.alive_host_count());
  for (int r = 0; r < sys.hosts(); ++r)
    out.messages += sys.transport().stats(r).messages_sent;
  return out;
}

CampaignResult finish(const char* what, const CampaignConfig& cfg,
                      const FaultPlan& plan, const FaultInjector& injector,
                      const RunOutcome& ref, const RunOutcome& faulted) {
  CampaignResult r;
  r.bit_identical = ref.digest == faulted.digest;
  r.faults_scheduled = static_cast<int>(plan.events().size());
  r.stats = injector.snapshot();
  r.recovery_modeled_seconds = r.stats.recovery_modeled_seconds;
  r.degraded_capacity_fraction =
      faulted.capacity_start > 0.0
          ? faulted.capacity_end / faulted.capacity_start
          : 1.0;
  publish_metrics(injector.stats(), g6::obs::MetricsRegistry::global());

  std::ostringstream os;
  os << what << " campaign: n=" << cfg.n << " steps=" << cfg.steps
     << " seed=" << cfg.fault_seed << " scheduled=" << r.faults_scheduled
     << " | " << summarize(r.stats) << " | capacity="
     << r.degraded_capacity_fraction * 100.0 << "% | "
     << (r.bit_identical ? "BIT-IDENTICAL" : "MISMATCH");
  r.summary = os.str();
  return r;
}

std::unique_ptr<g6::util::ThreadPool> make_pool(const CampaignConfig& cfg) {
  if (cfg.threads <= 0) return nullptr;  // shared pool
  return std::make_unique<g6::util::ThreadPool>(
      static_cast<std::size_t>(cfg.threads));
}

}  // namespace

CampaignResult run_machine_campaign(const CampaignConfig& cfg) {
  const auto pool = make_pool(cfg);
  const Workload w = make_workload(cfg, hw::FormatSpec{});
  const RunOutcome ref = run_machine_once(cfg, w, nullptr, pool.get());

  CampaignShape shape;
  shape.machine_steps = static_cast<std::uint64_t>(cfg.steps);
  shape.boards = cfg.boards;
  shape.chips_per_board = cfg.chips_per_board;
  shape.jmem_slots = static_cast<std::size_t>(
      std::max(1, cfg.n / (cfg.boards * cfg.chips_per_board)));
  shape.n_chip_flips = cfg.n_chip_flips;
  shape.n_chip_kills = cfg.n_chip_kills;
  shape.n_jmem_corruptions = cfg.n_jmem_corruptions;
  shape.n_board_fails = cfg.n_board_fails;

  FaultInjector injector;
  FaultPlan plan = FaultPlan::random(cfg.fault_seed, shape);
  injector.arm(plan);
  const RunOutcome faulted = run_machine_once(cfg, w, &injector, pool.get());
  return finish("machine", cfg, plan, injector, ref, faulted);
}

CampaignResult run_cluster_campaign(const CampaignConfig& cfg) {
  const auto pool = make_pool(cfg);
  const Workload w = make_workload(cfg, hw::FormatSpec{});
  const RunOutcome ref = run_cluster_once(cfg, w, nullptr, pool.get());

  CampaignShape shape;
  shape.cluster_steps = static_cast<std::uint64_t>(cfg.steps);
  shape.hosts = cfg.hosts;
  shape.n_host_drops = cfg.n_host_drops;
  // kHardwareNet exchanges nothing host-to-host (the network boards carry
  // everything on LVDS), so there are no Ethernet links to attack there —
  // the link classes apply only when the fault-free run actually sent.
  if (ref.messages > 0) {
    shape.link_ops = ref.messages;  // the fault-free run's send count
    shape.n_link_drops = cfg.n_link_drops;
    shape.n_link_corrupts = cfg.n_link_corrupts;
    shape.n_link_delays = cfg.n_link_delays;
    shape.n_link_fails = cfg.n_link_fails;
  }

  FaultInjector injector;
  FaultPlan plan = FaultPlan::random(cfg.fault_seed, shape);
  injector.arm(plan);
  const RunOutcome faulted = run_cluster_once(cfg, w, &injector, pool.get());
  return finish("cluster", cfg, plan, injector, ref, faulted);
}

}  // namespace g6::fault
