#include "fault/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>

#include "cluster/parallel_sim.hpp"
#include "disk/disk_model.hpp"
#include "grape6/machine.hpp"
#include "nbody/integrator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "p3t/p3t_backend.hpp"
#include "run/run_manager.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace g6::fault {

namespace hw = g6::hw;
namespace cluster = g6::cluster;
using g6::util::Vec3;

namespace {

/// The deterministic workload both the reference and the faulted run replay:
/// one set of j-particles plus one i-batch per step, all drawn from the
/// campaign's IC seed.
struct Workload {
  std::vector<hw::JParticle> js;
  std::vector<std::vector<hw::IParticle>> batches;  ///< one per step
  std::vector<double> times;
};

constexpr double kEps2 = 1e-4;

Workload make_workload(const CampaignConfig& cfg, const hw::FormatSpec& fmt) {
  G6_CHECK(cfg.n > 0 && cfg.steps > 0, "campaign needs particles and steps");
  g6::util::Rng rng(cfg.ic_seed);
  auto vec = [&](double scale) {
    return Vec3{scale * rng.uniform(-1.0, 1.0), scale * rng.uniform(-1.0, 1.0),
                scale * rng.uniform(-1.0, 1.0)};
  };
  Workload w;
  w.js.reserve(static_cast<std::size_t>(cfg.n));
  const double mass = 1.0 / cfg.n;
  for (int i = 0; i < cfg.n; ++i)
    w.js.push_back(hw::make_j_particle(static_cast<std::uint32_t>(i), mass, 0.0,
                                       vec(1.0), vec(0.1), vec(0.01),
                                       vec(0.001), fmt));
  w.batches.resize(static_cast<std::size_t>(cfg.steps));
  for (int s = 0; s < cfg.steps; ++s) {
    w.times.push_back(0.01 * (s + 1));
    auto& batch = w.batches[static_cast<std::size_t>(s)];
    batch.reserve(static_cast<std::size_t>(cfg.n));
    for (int i = 0; i < cfg.n; ++i)
      batch.push_back(hw::make_i_particle(static_cast<std::uint32_t>(i),
                                          vec(1.0), vec(0.1), fmt));
  }
  return w;
}

/// Fold one step's force registers into a running CRC — raw fixed-point
/// words, so "bit-identical" means exactly that.
std::uint32_t fold_accums(std::uint32_t state,
                          const std::vector<hw::ForceAccumulator>& accum) {
  for (const hw::ForceAccumulator& a : accum) {
    const std::int64_t raws[7] = {a.acc.x().raw(),  a.acc.y().raw(),
                                  a.acc.z().raw(),  a.jerk.x().raw(),
                                  a.jerk.y().raw(), a.jerk.z().raw(),
                                  a.pot.raw()};
    state = g6::util::crc32_update(state, raws, sizeof(raws));
  }
  return state;
}

struct RunOutcome {
  std::uint32_t digest = 0;
  double capacity_start = 0.0;
  double capacity_end = 0.0;
  std::uint64_t messages = 0;  ///< total transport sends (cluster runs)
};

RunOutcome run_machine_once(const CampaignConfig& cfg, const Workload& w,
                            FaultInjector* injector,
                            g6::util::ThreadPool* pool) {
  // Per-chip SSRAM sized to hold the whole problem: the remap paths need
  // spare capacity on the survivors.
  hw::MachineConfig mc = hw::MachineConfig::mini(
      cfg.boards, cfg.chips_per_board, static_cast<std::size_t>(cfg.n));
  hw::Grape6Machine machine(mc, pool);
  if (injector != nullptr) machine.set_fault_injector(injector);

  RunOutcome out;
  out.capacity_start = static_cast<double>(machine.capacity());
  machine.load(w.js);

  std::uint32_t digest = g6::util::crc32_init();
  std::vector<hw::ForceAccumulator> accum;
  auto& flight = g6::obs::FlightRecorder::global();
  g6::util::Timer step_timer;
  for (int s = 0; s < cfg.steps; ++s) {
    machine.predict_all(w.times[static_cast<std::size_t>(s)]);
    machine.compute(w.batches[static_cast<std::size_t>(s)], kEps2, accum);
    digest = fold_accums(digest, accum);
    flight.record_step(w.times[static_cast<std::size_t>(s)],
                       w.batches[static_cast<std::size_t>(s)].size(),
                       step_timer.lap());
  }
  out.digest = g6::util::crc32_final(digest);
  out.capacity_end = static_cast<double>(machine.capacity());
  return out;
}

RunOutcome run_cluster_once(const CampaignConfig& cfg, const Workload& w,
                            FaultInjector* injector,
                            g6::util::ThreadPool* pool) {
  cluster::ParallelHostSystem sys(cfg.hosts, cfg.mode, hw::FormatSpec{}, 0.01,
                                  cluster::LinkSpec{}, pool);
  sys.set_aggregation(cfg.aggregated);
  sys.set_deferred_updates(cfg.deferred);
  sys.set_overlap(cfg.overlap);
  if (injector != nullptr) sys.set_fault_injector(injector);

  RunOutcome out;
  out.capacity_start = static_cast<double>(sys.hosts());
  sys.load(w.js);

  std::uint32_t digest = g6::util::crc32_init();
  std::vector<hw::ForceAccumulator> accum;
  std::vector<hw::JParticle> corrected;
  auto& flight = g6::obs::FlightRecorder::global();
  g6::util::Timer step_timer;
  for (int s = 0; s < cfg.steps; ++s) {
    sys.compute(w.times[static_cast<std::size_t>(s)],
                w.batches[static_cast<std::size_t>(s)], accum);
    digest = fold_accums(digest, accum);
    flight.record_step(w.times[static_cast<std::size_t>(s)],
                       w.batches[static_cast<std::size_t>(s)].size(),
                       step_timer.lap());
    // A rotating quarter of the particles gets a j-update every step — the
    // corrected-particle traffic the link faults attack.
    corrected.clear();
    for (int i = s % 4; i < cfg.n; i += 4)
      corrected.push_back(w.js[static_cast<std::size_t>(i)]);
    sys.update(corrected);
  }
  out.digest = g6::util::crc32_final(digest);
  out.capacity_end = static_cast<double>(sys.alive_host_count());
  for (int r = 0; r < sys.hosts(); ++r)
    out.messages += sys.transport().stats(r).messages_sent;
  return out;
}

CampaignResult finish(const char* what, const CampaignConfig& cfg,
                      const FaultPlan& plan, const FaultInjector& injector,
                      const RunOutcome& ref, const RunOutcome& faulted) {
  CampaignResult r;
  r.bit_identical = ref.digest == faulted.digest;
  r.faults_scheduled = static_cast<int>(plan.events().size());
  r.stats = injector.snapshot();
  r.recovery_modeled_seconds = r.stats.recovery_modeled_seconds;
  r.degraded_capacity_fraction =
      faulted.capacity_start > 0.0
          ? faulted.capacity_end / faulted.capacity_start
          : 1.0;
  publish_metrics(injector.stats(), g6::obs::MetricsRegistry::global());

  std::ostringstream os;
  os << what << " campaign: n=" << cfg.n << " steps=" << cfg.steps
     << " seed=" << cfg.fault_seed << " scheduled=" << r.faults_scheduled
     << " | " << summarize(r.stats) << " | capacity="
     << r.degraded_capacity_fraction * 100.0 << "% | "
     << (r.bit_identical ? "BIT-IDENTICAL" : "MISMATCH");
  r.summary = os.str();
  return r;
}

std::unique_ptr<g6::util::ThreadPool> make_pool(const CampaignConfig& cfg) {
  if (cfg.threads <= 0) return nullptr;  // shared pool
  return std::make_unique<g6::util::ThreadPool>(
      static_cast<std::size_t>(cfg.threads));
}

// ----------------------------------------------------------------- hybrid

/// One fresh "process image" for the hybrid campaign: ICs regenerated from
/// the seed, its own pool, backend and integrator — exactly the state a
/// restarted process has before RunManager resumes it.
struct HybridImage {
  HybridImage(const CampaignConfig& cfg, std::size_t threads) : pool(threads) {
    g6::disk::DiskConfig dc =
        g6::disk::uranus_neptune_config(static_cast<std::size_t>(cfg.n));
    dc.seed = cfg.ic_seed;
    ps = std::move(g6::disk::make_disk(dc).system);
    g6::p3t::P3TConfig pc;
    pc.gm_central = 1.0;
    backend = std::make_unique<g6::p3t::P3THybridBackend>(pc, 0.008, &pool);
    g6::nbody::IntegratorConfig icfg;
    icfg.solar_gm = 1.0;
    icfg.eta = 0.02;
    icfg.eta_init = 0.01;
    icfg.dt_max = 0x1p-5;
    integ = std::make_unique<g6::nbody::HermiteIntegrator>(ps, *backend, icfg,
                                                           &pool);
  }
  g6::util::ThreadPool pool;
  g6::nbody::ParticleSystem ps;
  std::unique_ptr<g6::p3t::P3THybridBackend> backend;
  std::unique_ptr<g6::nbody::HermiteIntegrator> integ;
};

/// CRC over the raw bits of the full per-particle Hermite state, so
/// "bit-identical" means exactly that — any last-ulp divergence shows.
std::uint32_t fold_system(const g6::nbody::ParticleSystem& ps) {
  std::uint32_t crc = g6::util::crc32_init();
  const auto fold = [&](const void* p, std::size_t bytes) {
    crc = g6::util::crc32_update(crc, p, bytes);
  };
  fold(ps.positions().data(), ps.size() * sizeof(Vec3));
  fold(ps.velocities().data(), ps.size() * sizeof(Vec3));
  fold(ps.accelerations().data(), ps.size() * sizeof(Vec3));
  fold(ps.jerks().data(), ps.size() * sizeof(Vec3));
  fold(ps.times().data(), ps.size() * sizeof(double));
  fold(ps.dts().data(), ps.size() * sizeof(double));
  return g6::util::crc32_final(crc);
}

}  // namespace

CampaignResult run_hybrid_campaign(const CampaignConfig& cfg) {
  namespace fs = std::filesystem;
  G6_CHECK(cfg.n > 0 && cfg.steps > 0, "campaign needs particles and steps");
  const double t_end = 0x1p-5 * cfg.steps;  // cfg.steps top-level blocks

  g6::run::RunConfig rc;
  rc.t_end = t_end;
  rc.checkpoint_every = 0x1p-4;
  rc.ic_seed = cfg.ic_seed;

  const fs::path base =
      fs::temp_directory_path() /
      ("g6_hybrid_campaign_" + std::to_string(cfg.fault_seed));
  fs::remove_all(base);
  fs::create_directories(base);

  // Reference: one uninterrupted run.
  std::uint32_t ref_digest = 0;
  {
    HybridImage img(cfg, cfg.threads > 0 ? static_cast<std::size_t>(cfg.threads)
                                         : 2);
    g6::run::RunConfig ref_rc = rc;
    ref_rc.checkpoint_dir = (base / "ref").string();
    g6::run::RunManager mgr(*img.integ, ref_rc);
    const auto rep = mgr.run();
    G6_CHECK(rep.outcome == g6::run::RunOutcome::kCompleted,
             "hybrid campaign reference run did not complete");
    ref_digest = fold_system(img.ps);
  }

  // Faulted: seeded kill/resume cycles. The fault seed chooses where each
  // "process" dies (block-step budget) and how many threads its successor
  // runs with — the two dimensions a real preemption varies.
  g6::util::Rng rng(cfg.fault_seed * 0x9e3779b97f4a7c15ull + 1);
  static constexpr std::size_t kThreadChoices[] = {1, 2, 3, 4, 8};
  rc.checkpoint_dir = (base / "faulted").string();
  rc.resume = true;
  int kills = 0;
  std::uint32_t faulted_digest = 0;
  auto& flight = g6::obs::FlightRecorder::global();
  for (;;) {
    const std::size_t threads = kThreadChoices[rng() % 5];
    HybridImage img(cfg, threads);
    g6::run::RunConfig leg = rc;
    leg.step_budget = 2 + rng() % 7;
    g6::run::RunManager mgr(*img.integ, leg);
    const auto rep = mgr.run();
    if (rep.outcome == g6::run::RunOutcome::kCompleted) {
      faulted_digest = fold_system(img.ps);
      break;
    }
    ++kills;
    flight.note("fault", "hybrid campaign kill #" + std::to_string(kills) +
                             " at t=" + std::to_string(rep.final_time) +
                             " threads=" + std::to_string(threads));
    G6_CHECK(kills < 4096, "hybrid campaign does not converge");
  }
  fs::remove_all(base);

  CampaignResult r;
  r.bit_identical = ref_digest == faulted_digest;
  r.faults_scheduled = kills;
  r.stats.injected_total = static_cast<std::uint64_t>(kills);
  r.recovery_modeled_seconds = 0.0;
  r.degraded_capacity_fraction = 1.0;
  auto& reg = g6::obs::MetricsRegistry::global();
  reg.counter("g6.fault.hybrid_kills").add(static_cast<std::uint64_t>(kills));
  std::ostringstream os;
  os << "hybrid campaign: n=" << cfg.n << " steps=" << cfg.steps
     << " seed=" << cfg.fault_seed << " scheduled=" << kills
     << " | kills=" << kills << " resumes=" << kills << " backend=p3t-hybrid"
     << " | capacity=100% | "
     << (r.bit_identical ? "BIT-IDENTICAL" : "MISMATCH");
  r.summary = os.str();
  return r;
}

CampaignResult run_machine_campaign(const CampaignConfig& cfg) {
  const auto pool = make_pool(cfg);
  const Workload w = make_workload(cfg, hw::FormatSpec{});
  const RunOutcome ref = run_machine_once(cfg, w, nullptr, pool.get());

  CampaignShape shape;
  shape.machine_steps = static_cast<std::uint64_t>(cfg.steps);
  shape.boards = cfg.boards;
  shape.chips_per_board = cfg.chips_per_board;
  shape.jmem_slots = static_cast<std::size_t>(
      std::max(1, cfg.n / (cfg.boards * cfg.chips_per_board)));
  shape.n_chip_flips = cfg.n_chip_flips;
  shape.n_chip_kills = cfg.n_chip_kills;
  shape.n_jmem_corruptions = cfg.n_jmem_corruptions;
  shape.n_board_fails = cfg.n_board_fails;

  FaultInjector injector;
  FaultPlan plan = FaultPlan::random(cfg.fault_seed, shape);
  injector.arm(plan);
  const RunOutcome faulted = run_machine_once(cfg, w, &injector, pool.get());
  return finish("machine", cfg, plan, injector, ref, faulted);
}

CampaignResult run_cluster_campaign(const CampaignConfig& cfg) {
  const auto pool = make_pool(cfg);
  const Workload w = make_workload(cfg, hw::FormatSpec{});
  const RunOutcome ref = run_cluster_once(cfg, w, nullptr, pool.get());

  CampaignShape shape;
  shape.cluster_steps = static_cast<std::uint64_t>(cfg.steps);
  shape.hosts = cfg.hosts;
  shape.n_host_drops = cfg.n_host_drops;
  // kHardwareNet exchanges nothing host-to-host (the network boards carry
  // everything on LVDS), so there are no Ethernet links to attack there —
  // the link classes apply only when the fault-free run actually sent.
  if (ref.messages > 0) {
    shape.link_ops = ref.messages;  // the fault-free run's send count
    shape.n_link_drops = cfg.n_link_drops;
    shape.n_link_corrupts = cfg.n_link_corrupts;
    shape.n_link_delays = cfg.n_link_delays;
    shape.n_link_fails = cfg.n_link_fails;
  }

  FaultInjector injector;
  FaultPlan plan = FaultPlan::random(cfg.fault_seed, shape);
  injector.arm(plan);
  const RunOutcome faulted = run_cluster_once(cfg, w, &injector, pool.get());
  return finish("cluster", cfg, plan, injector, ref, faulted);
}

}  // namespace g6::fault
