#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for the GRAPE-6 emulation: the plan
///        (what breaks, and when), the injector (the armed plan plus its
///        position in the run), and the recovery bookkeeping.
///
/// The real machine ran 2048 pipeline chips with no ECC on most datapaths
/// and lived with defective chips, flaky LVDS links and host dropouts by
/// detecting bad hardware from the host software and excluding or retrying
/// it (astro-ph/0310702 §8, astro-ph/0504407). This subsystem reproduces
/// that operational layer inside the emulator:
///
///   - chips:  force-accumulator bit flips (transient or permanent),
///   - boards: j-memory (SSRAM) word corruption, whole-board death,
///   - links:  dropped / corrupted / delayed messages, link-down windows,
///   - hosts:  permanent dropout of a simulated cluster host.
///
/// Determinism contract: every injection decision is taken at a *serial*
/// point of the emulation (the entry of Grape6Machine::compute, the entry of
/// ParallelHostSystem::compute, each Transport::send on the driving thread)
/// and is a pure function of the armed plan and a per-domain operation
/// counter. Thread-pool parallelism fans out only *after* the decisions are
/// fixed, so the same plan produces the same fault sequence, the same
/// recovery actions and bit-identical final registers at any thread count.
/// With no injector attached (or none armed) every hook is a single pointer
/// test: zero overhead, bit-identical to the fault-free build.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace g6::fault {

/// What breaks. Grouped into three injection domains, each driven by its own
/// deterministic operation counter (see FaultInjector).
enum class FaultKind : int {
  // -- link domain: fires on the at-th Transport::send of the run ----------
  kLinkDrop = 0,   ///< message lost in flight (receiver sees nothing)
  kLinkCorrupt,    ///< payload bit flipped in flight (CRC framing catches it)
  kLinkDelay,      ///< delivery charged extra modeled latency
  kLinkFail,       ///< link (a -> b) goes down; param = failed-attempt window
                   ///< (0 = permanent until restore_link)
  // -- machine domain: fires on the at-th Grape6Machine::compute -----------
  kChipBitFlip,    ///< board a, chip b: accumulator register bit flip;
                   ///< param = 0 transient, 1 permanent (chip excluded)
  kJMemCorrupt,    ///< board a, chip b, slot param: j-memory word bit flip
  kBoardFail,      ///< board a dies; its j-particles remap onto survivors
  // -- cluster domain: fires on the at-th ParallelHostSystem::compute ------
  kHostDrop,       ///< simulated host a dies; j-images re-replicated
};

inline constexpr int kFaultKindCount = static_cast<int>(FaultKind::kHostDrop) + 1;

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. `at` counts operations of the kind's domain.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDrop;
  std::uint64_t at = 0;    ///< domain op index at which the event fires
  int a = -1;              ///< link src / board / host
  int b = -1;              ///< link dst / chip
  std::uint32_t bit = 0;   ///< bit index for flips (reduced modulo the target)
  std::uint64_t param = 0; ///< window / slot / permanence flag / delay [us]
};

/// Shape of a randomized campaign: the topology being attacked, the horizon
/// of each injection domain, and how many faults of each class to schedule.
struct CampaignShape {
  std::uint64_t machine_steps = 0;  ///< Grape6Machine::compute calls
  std::uint64_t cluster_steps = 0;  ///< ParallelHostSystem::compute calls
  std::uint64_t link_ops = 0;       ///< Transport::send calls expected

  int boards = 0;
  int chips_per_board = 0;
  std::size_t jmem_slots = 0;  ///< occupied j-slots per chip (corruption range)
  int hosts = 0;

  int n_link_drops = 0;
  int n_link_corrupts = 0;
  int n_link_delays = 0;
  int n_link_fails = 0;       ///< transient link-down windows
  int n_chip_flips = 0;       ///< transient accumulator flips
  int n_chip_kills = 0;       ///< permanent chip exclusions
  int n_jmem_corruptions = 0;
  int n_board_fails = 0;
  int n_host_drops = 0;       ///< hosts > 0 required; host 0 never dropped
};

/// An ordered fault schedule. Build one by hand (scripted tests) or with
/// random() (seeded campaigns); arm it on a FaultInjector.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(const FaultEvent& event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Deterministic randomized campaign: the same (seed, shape) produces the
  /// same plan on every platform (util::Rng is bit-stable). Targets are drawn
  /// uniformly with the survivability constraints the recovery layer needs:
  /// host 0 is never dropped, at most hosts-1 hosts die, dead boards/chips
  /// are distinct, and permanent kills leave at least one chip per board and
  /// one board per machine.
  static FaultPlan random(std::uint64_t seed, const CampaignShape& shape);

 private:
  std::vector<FaultEvent> events_;
};

/// Recovery/detection counters. Atomics because recovery (chip recompute,
/// j-memory rewrite) runs inside thread-pool regions; the *values* are still
/// deterministic — the set of recovery actions is fixed serially.
struct FaultStats {
  std::atomic<std::uint64_t> injected[kFaultKindCount] = {};

  // Detection.
  std::atomic<std::uint64_t> crc_payload_mismatches{0};  ///< transport frames
  std::atomic<std::uint64_t> crc_jmem_mismatches{0};     ///< SSRAM slot scans
  std::atomic<std::uint64_t> selftest_failures{0};       ///< chip test vectors
  std::atomic<std::uint64_t> range_guard_trips{0};       ///< NaN/overflow guards

  // Recovery.
  std::atomic<std::uint64_t> link_retries{0};       ///< re-sends after link-down
  std::atomic<std::uint64_t> resends{0};            ///< re-sends after drop/corrupt
  std::atomic<std::uint64_t> recomputed_chip_blocks{0};
  std::atomic<std::uint64_t> jmem_rewrites{0};
  /// Chips excluded individually and NOT covered by an excluded board: when
  /// a whole board is excluded, its already-dead chips are uncounted here so
  /// dead capacity = excluded_boards * chips_per_board + excluded_chips.
  std::atomic<std::uint64_t> excluded_chips{0};
  std::atomic<std::uint64_t> excluded_boards{0};
  std::atomic<std::uint64_t> dead_hosts{0};
  std::atomic<std::uint64_t> remapped_particles{0};  ///< j-images moved
  std::atomic<double> recovery_modeled_seconds{0.0}; ///< time charged to recovery

  std::uint64_t injected_total() const {
    std::uint64_t n = 0;
    for (const auto& c : injected) n += c.load(std::memory_order_relaxed);
    return n;
  }
  void add_recovery_seconds(double s) {
    recovery_modeled_seconds.fetch_add(s, std::memory_order_relaxed);
  }
};

/// Plain-value copy of FaultStats for reports and JSON exports.
struct FaultStatsSnapshot {
  std::uint64_t injected[kFaultKindCount] = {};
  std::uint64_t injected_total = 0;
  std::uint64_t crc_payload_mismatches = 0;
  std::uint64_t crc_jmem_mismatches = 0;
  std::uint64_t selftest_failures = 0;
  std::uint64_t range_guard_trips = 0;
  std::uint64_t link_retries = 0;
  std::uint64_t resends = 0;
  std::uint64_t recomputed_chip_blocks = 0;
  std::uint64_t jmem_rewrites = 0;
  std::uint64_t excluded_chips = 0;
  std::uint64_t excluded_boards = 0;
  std::uint64_t dead_hosts = 0;
  std::uint64_t remapped_particles = 0;
  double recovery_modeled_seconds = 0.0;
};

/// Bounded retry-with-backoff policy for transient link errors. Attempt k
/// (0-based re-try) is charged backoff_seconds(k) of modeled link time.
struct RetryPolicy {
  int max_attempts = 5;             ///< total send attempts before giving up
  double backoff_base_sec = 100e-6; ///< first re-try wait
  double backoff_mult = 4.0;        ///< exponential growth per re-try

  double backoff_seconds(int retry_index) const {
    double s = backoff_base_sec;
    for (int k = 0; k < retry_index; ++k) s *= backoff_mult;
    return s;
  }
};

/// The armed plan plus the run position: per-domain operation counters and
/// cursors into the per-domain event schedules. Attach one injector to the
/// Transport, the Grape6Machine and/or the ParallelHostSystem under test;
/// each layer polls its own domain from its serial driver point.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm a plan. Resets all counters, cursors and statistics.
  void arm(FaultPlan plan);
  /// Disarm: hooks become no-ops again (stats are retained for inspection).
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  /// Machine domain: call once per Grape6Machine::compute, on the driving
  /// thread, before the board fan-out. Returns the chip/board events firing
  /// at this step and advances the step counter.
  std::span<const FaultEvent> machine_step();

  /// Cluster domain: call once per ParallelHostSystem::compute, on the
  /// driving thread. Returns the host events firing at this step.
  std::span<const FaultEvent> cluster_step();

  /// Link domain: call once per Transport::send (sends are serial by the BSP
  /// construction). Returns the link events firing at this send op.
  std::span<const FaultEvent> link_op();

  std::uint64_t machine_steps_seen() const { return machine_steps_; }
  std::uint64_t cluster_steps_seen() const { return cluster_steps_; }
  std::uint64_t link_ops_seen() const { return link_ops_; }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }
  FaultStatsSnapshot snapshot() const;

 private:
  /// Events of one domain sorted by `at`, plus the cursor of the next
  /// not-yet-fired event.
  struct Domain {
    std::vector<FaultEvent> events;
    std::size_t next = 0;
    std::span<const FaultEvent> fire(std::uint64_t now);
  };

  bool armed_ = false;
  Domain machine_, cluster_, link_;
  std::uint64_t machine_steps_ = 0, cluster_steps_ = 0, link_ops_ = 0;
  FaultStats stats_;
};

/// Flip bit \p bit (reduced modulo the buffer width) in a byte buffer.
void flip_bit(void* data, std::size_t nbytes, std::uint32_t bit);

/// Publish the fault counters into a metrics registry under `g6.fault.*`
/// (docs/OBSERVABILITY.md naming convention).
void publish_metrics(const FaultStats& stats, g6::obs::MetricsRegistry& registry);

/// Human-readable one-line summary ("injected=7 detected=5 retries=3 ...").
std::string summarize(const FaultStatsSnapshot& snap);

}  // namespace g6::fault
