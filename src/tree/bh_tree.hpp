#pragma once
/// \file bh_tree.hpp
/// \brief Barnes–Hut octree gravity — the O(N log N) alternative the paper
///        weighs and rejects for this problem class (§3: "it is very
///        difficult to achieve high efficiency with these algorithms when
///        the timesteps of particles vary widely").
///
/// Built to make that comparison quantitative (bench E4): recursive octree
/// with monopole and optional quadrupole cell moments, opening-angle
/// acceptance criterion, softened forces, and interaction counting.
///
/// Beyond the baseline role, the tree is the far-field engine of the P3T
/// hybrid backend (src/p3t, docs/P3T.md). That hot-loop use adds:
///   - grow-only rebuilds: build() reuses every internal array (node pool,
///     tree order, counting-sort scratch), so steady-state rebuilds allocate
///     nothing — the same idiom as the per-board scratch partials in the
///     GRAPE machine emulation;
///   - per-node velocity moments (mass-weighted mean velocity `vcom`) from
///     the velocity-carrying build() overload, giving the walker a far-field
///     jerk estimate;
///   - a deterministic parallel build: the root's octants are partitioned
///     serially, the eight subtrees are built concurrently over the shared
///     ThreadPool and spliced back in octant order — node numbering, node
///     contents and particle order are bit-identical to the serial build at
///     any thread count;
///   - read access to nodes/order/particle arrays so external walkers
///     (the P3T changeover walk, the neighbor search) can traverse without
///     growing this class;
///   - g6.tree.* metrics (docs/OBSERVABILITY.md).

#include <cstdint>
#include <span>
#include <vector>

#include "nbody/leapfrog.hpp"
#include "nbody/particle.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace g6::tree {

using g6::nbody::Force;
using g6::util::Vec3;

/// Tree accuracy/shape parameters.
struct TreeConfig {
  double theta = 0.5;             ///< opening angle (s/d < theta accepts)
  std::size_t leaf_capacity = 8;  ///< max particles per leaf
  bool quadrupole = false;        ///< include quadrupole cell moments
  int max_depth = 64;             ///< guard against coincident particles
};

/// One octree node (internal or leaf).
struct TreeNode {
  Vec3 center;         ///< geometric centre of the cube
  double half = 0.0;   ///< half edge length
  double mass = 0.0;   ///< total mass
  Vec3 com;            ///< centre of mass
  Vec3 vcom;           ///< mass-weighted mean velocity (velocity builds only)
  double quad[6] = {}; ///< traceless quadrupole: xx, yy, zz, xy, xz, yz
  std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  std::uint32_t first = 0, count = 0;  ///< particle index range (leaves)
  bool leaf = true;
};

/// Barnes–Hut octree over a particle snapshot.
class BarnesHutTree {
 public:
  explicit BarnesHutTree(TreeConfig cfg = {});

  const TreeConfig& config() const { return cfg_; }

  /// Build from positions/masses (copied by index; rebuild after motion).
  void build(std::span<const Vec3> pos, std::span<const double> mass);

  /// Build from positions, velocities and masses. Nodes additionally carry
  /// the mass-weighted mean velocity (`vcom`) for far-field jerk estimates.
  /// With \p pool non-null and enough particles, the eight root subtrees are
  /// built concurrently — bit-identical to the serial build (node numbering
  /// included) at any thread count.
  void build(std::span<const Vec3> pos, std::span<const Vec3> vel,
             std::span<const double> mass, g6::util::ThreadPool* pool = nullptr);

  /// Number of nodes in the current tree.
  std::size_t node_count() const { return nodes_.size(); }

  /// Acceleration + potential at the position of particle \p i (excluded
  /// from its own force). Requires a built tree.
  Force force_on(std::size_t i, double eps2) const;

  /// Acceleration + potential at an arbitrary point (no exclusion).
  Force force_at(const Vec3& x, double eps2) const;

  /// Cell+particle interactions evaluated since construction.
  std::uint64_t interaction_count() const { return interactions_; }

  /// Root node (diagnostics/tests).
  const TreeNode& root() const { return nodes_.front(); }
  const TreeNode& node(std::size_t k) const { return nodes_[k]; }

  // Read access for external walkers (the P3T changeover walk and the
  // neighbor search in src/p3t traverse the node array directly). Nodes are
  // in depth-first preorder: a parent's index is always smaller than its
  // children's, and every node covers a contiguous range of order().
  std::span<const TreeNode> nodes() const { return nodes_; }
  std::span<const std::uint32_t> order() const { return order_; }
  std::span<const Vec3> positions() const { return pos_; }
  std::span<const Vec3> velocities() const { return vel_; }
  std::span<const double> masses() const { return mass_; }
  bool has_velocities() const { return !vel_.empty(); }

  /// Number of particles a parallel-capable build hands to the pool per
  /// subtree task at minimum; below this everything runs serially (tiny
  /// trees are cheaper to build than to fan out).
  static constexpr std::size_t kParallelBuildMin = 8192;

 private:
  std::int32_t build_node(std::vector<TreeNode>& nodes, const Vec3& center,
                          double half, std::uint32_t first, std::uint32_t count,
                          int depth);
  void partition_octants(const Vec3& center, std::uint32_t first,
                         std::uint32_t count,
                         std::uint32_t (&begin)[8], std::uint32_t (&len)[8]);
  void node_moments(TreeNode& node) const;
  void compute_moments(std::vector<TreeNode>& nodes, std::int32_t n) const;
  void accumulate(std::int32_t n, const Vec3& x, double eps2, std::int64_t skip,
                  Force& f) const;

  TreeConfig cfg_;
  std::vector<TreeNode> nodes_;
  std::vector<std::uint32_t> order_;  ///< particle indices, tree-ordered
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;             ///< empty unless built with velocities
  std::vector<double> mass_;
  std::vector<std::uint32_t> scratch_;  ///< counting-sort scratch (grow-only)
  std::vector<TreeNode> sub_nodes_[8];  ///< parallel-build subtree pools
  mutable std::uint64_t interactions_ = 0;

  g6::obs::Counter builds_metric_;          ///< g6.tree.builds
  g6::obs::Counter parallel_builds_metric_; ///< g6.tree.parallel_builds
  g6::obs::Gauge nodes_metric_;             ///< g6.tree.nodes
};

/// AccelBackend adapter: rebuilds the tree and evaluates all forces — the
/// force engine of the tree+leapfrog baseline.
class TreeAccelBackend final : public g6::nbody::AccelBackend {
 public:
  TreeAccelBackend(TreeConfig cfg, double eps) : tree_(cfg), eps_(eps) {}

  std::string name() const override { return "barnes-hut"; }
  void compute_all(const g6::nbody::ParticleSystem& ps,
                   std::span<Force> out) override;
  std::uint64_t interaction_count() const override {
    return tree_.interaction_count();
  }

  const BarnesHutTree& tree() const { return tree_; }

 private:
  BarnesHutTree tree_;
  double eps_;
};

}  // namespace g6::tree
