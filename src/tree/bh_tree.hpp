#pragma once
/// \file bh_tree.hpp
/// \brief Barnes–Hut octree gravity — the O(N log N) alternative the paper
///        weighs and rejects for this problem class (§3: "it is very
///        difficult to achieve high efficiency with these algorithms when
///        the timesteps of particles vary widely").
///
/// Built to make that comparison quantitative (bench E4): recursive octree
/// with monopole and optional quadrupole cell moments, opening-angle
/// acceptance criterion, softened forces, and interaction counting.

#include <cstdint>
#include <span>
#include <vector>

#include "nbody/leapfrog.hpp"
#include "nbody/particle.hpp"
#include "util/vec3.hpp"

namespace g6::tree {

using g6::nbody::Force;
using g6::util::Vec3;

/// Tree accuracy/shape parameters.
struct TreeConfig {
  double theta = 0.5;             ///< opening angle (s/d < theta accepts)
  std::size_t leaf_capacity = 8;  ///< max particles per leaf
  bool quadrupole = false;        ///< include quadrupole cell moments
  int max_depth = 64;             ///< guard against coincident particles
};

/// One octree node (internal or leaf).
struct TreeNode {
  Vec3 center;         ///< geometric centre of the cube
  double half = 0.0;   ///< half edge length
  double mass = 0.0;   ///< total mass
  Vec3 com;            ///< centre of mass
  double quad[6] = {}; ///< traceless quadrupole: xx, yy, zz, xy, xz, yz
  std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  std::uint32_t first = 0, count = 0;  ///< particle index range (leaves)
  bool leaf = true;
};

/// Barnes–Hut octree over a particle snapshot.
class BarnesHutTree {
 public:
  explicit BarnesHutTree(TreeConfig cfg = {}) : cfg_(cfg) {}

  const TreeConfig& config() const { return cfg_; }

  /// Build from positions/masses (copied by index; rebuild after motion).
  void build(std::span<const Vec3> pos, std::span<const double> mass);

  /// Number of nodes in the current tree.
  std::size_t node_count() const { return nodes_.size(); }

  /// Acceleration + potential at the position of particle \p i (excluded
  /// from its own force). Requires a built tree.
  Force force_on(std::size_t i, double eps2) const;

  /// Acceleration + potential at an arbitrary point (no exclusion).
  Force force_at(const Vec3& x, double eps2) const;

  /// Cell+particle interactions evaluated since construction.
  std::uint64_t interaction_count() const { return interactions_; }

  /// Root node (diagnostics/tests).
  const TreeNode& root() const { return nodes_.front(); }
  const TreeNode& node(std::size_t k) const { return nodes_[k]; }

 private:
  std::int32_t build_node(const Vec3& center, double half, std::uint32_t first,
                          std::uint32_t count, int depth);
  void compute_moments(std::int32_t n);
  void accumulate(std::int32_t n, const Vec3& x, double eps2, std::int64_t skip,
                  Force& f) const;

  TreeConfig cfg_;
  std::vector<TreeNode> nodes_;
  std::vector<std::uint32_t> order_;  ///< particle indices, tree-ordered
  std::vector<Vec3> pos_;
  std::vector<double> mass_;
  mutable std::uint64_t interactions_ = 0;
};

/// AccelBackend adapter: rebuilds the tree and evaluates all forces — the
/// force engine of the tree+leapfrog baseline.
class TreeAccelBackend final : public g6::nbody::AccelBackend {
 public:
  TreeAccelBackend(TreeConfig cfg, double eps) : tree_(cfg), eps_(eps) {}

  std::string name() const override { return "barnes-hut"; }
  void compute_all(const g6::nbody::ParticleSystem& ps,
                   std::span<Force> out) override;
  std::uint64_t interaction_count() const override {
    return tree_.interaction_count();
  }

  const BarnesHutTree& tree() const { return tree_; }

 private:
  BarnesHutTree tree_;
  double eps_;
};

}  // namespace g6::tree
