#include "tree/bh_tree.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace g6::tree {

namespace {
/// Octant of \p x relative to \p center (bit 0: x, bit 1: y, bit 2: z).
int octant_of(const Vec3& x, const Vec3& center) {
  return (x.x >= center.x ? 1 : 0) | (x.y >= center.y ? 2 : 0) |
         (x.z >= center.z ? 4 : 0);
}

Vec3 child_center(const Vec3& center, double quarter, int oct) {
  return {center.x + ((oct & 1) != 0 ? quarter : -quarter),
          center.y + ((oct & 2) != 0 ? quarter : -quarter),
          center.z + ((oct & 4) != 0 ? quarter : -quarter)};
}

bool contains(const TreeNode& n, const Vec3& x) {
  return std::abs(x.x - n.center.x) <= n.half &&
         std::abs(x.y - n.center.y) <= n.half &&
         std::abs(x.z - n.center.z) <= n.half;
}
}  // namespace

BarnesHutTree::BarnesHutTree(TreeConfig cfg)
    : cfg_(cfg),
      builds_metric_(
          g6::obs::MetricsRegistry::global().counter("g6.tree.builds")),
      parallel_builds_metric_(g6::obs::MetricsRegistry::global().counter(
          "g6.tree.parallel_builds")),
      nodes_metric_(g6::obs::MetricsRegistry::global().gauge("g6.tree.nodes")) {
}

void BarnesHutTree::build(std::span<const Vec3> pos,
                          std::span<const double> mass) {
  build(pos, {}, mass, nullptr);
}

void BarnesHutTree::build(std::span<const Vec3> pos, std::span<const Vec3> vel,
                          std::span<const double> mass,
                          g6::util::ThreadPool* pool) {
  G6_CHECK(pos.size() == mass.size(), "position/mass size mismatch");
  G6_CHECK(vel.empty() || vel.size() == pos.size(),
           "position/velocity size mismatch");
  G6_CHECK(!pos.empty(), "cannot build a tree over zero particles");

  // All containers are grow-only across rebuilds: assign()/clear()/resize()
  // reuse existing capacity, so steady-state rebuilds allocate nothing.
  pos_.assign(pos.begin(), pos.end());
  if (vel.empty())
    vel_.clear();
  else
    vel_.assign(vel.begin(), vel.end());
  mass_.assign(mass.begin(), mass.end());
  order_.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    order_[i] = static_cast<std::uint32_t>(i);
  scratch_.resize(pos.size());

  Vec3 lo = pos[0], hi = pos[0];
  for (const Vec3& x : pos) {
    lo = g6::util::min(lo, x);
    hi = g6::util::max(hi, x);
  }
  const Vec3 center = 0.5 * (lo + hi);
  double half = 0.0;
  for (int c = 0; c < 3; ++c) half = std::max(half, 0.5 * (hi[c] - lo[c]));
  half = std::max(half, 1e-12) * 1.0000001;  // avoid zero-size root

  nodes_.clear();
  if (nodes_.capacity() < 2 * pos.size()) nodes_.reserve(2 * pos.size());
  const auto n = static_cast<std::uint32_t>(pos.size());

  if (pool != nullptr && pos.size() >= kParallelBuildMin &&
      pos.size() > cfg_.leaf_capacity) {
    // Deterministic parallel build: partition the root octants serially,
    // build the eight subtrees concurrently into per-octant node pools, then
    // splice them back in octant order. The splice reproduces the serial
    // depth-first preorder exactly (a parent always precedes its children and
    // octants appear in ascending order), and every node's moments are
    // computed from its particle range with the same arithmetic as the serial
    // path — so the result is bit-identical at any thread count.
    nodes_.push_back({});
    {
      TreeNode& root = nodes_.back();
      root.center = center;
      root.half = half;
      root.first = 0;
      root.count = n;
      root.leaf = false;
    }
    std::uint32_t begin[8], len[8];
    partition_octants(center, 0, n, begin, len);

    const double quarter = 0.5 * half;
    for (auto& sub : sub_nodes_) sub.clear();
    pool->parallel_for(
        8,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t oct = b; oct < e; ++oct) {
            if (len[oct] == 0) continue;
            build_node(sub_nodes_[oct],
                       child_center(center, quarter, static_cast<int>(oct)),
                       quarter, begin[oct], len[oct], 1);
            compute_moments(sub_nodes_[oct], 0);
          }
        },
        1);

    std::int32_t base = 1;
    for (int oct = 0; oct < 8; ++oct) {
      if (len[oct] == 0) continue;
      nodes_[0].child[oct] = base;
      base += static_cast<std::int32_t>(sub_nodes_[oct].size());
    }
    if (nodes_.capacity() < static_cast<std::size_t>(base))
      nodes_.reserve(static_cast<std::size_t>(base));
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t off = nodes_[0].child[oct];
      for (const TreeNode& sn : sub_nodes_[oct]) {
        nodes_.push_back(sn);
        TreeNode& nn = nodes_.back();
        for (std::int32_t& ch : nn.child)
          if (ch >= 0) ch += off;
      }
    }
    node_moments(nodes_[0]);
    parallel_builds_metric_.add();
  } else {
    build_node(nodes_, center, half, 0, n, 0);
    compute_moments(nodes_, 0);
  }

  builds_metric_.add();
  nodes_metric_.set(static_cast<double>(nodes_.size()));
}

/// Stable counting sort of order_[first, first+count) by octant relative to
/// \p center, via the shared scratch buffer (disjoint subranges, so parallel
/// subtree builds never touch the same scratch elements). Produces exactly
/// the order the old per-call bucket vectors produced, without allocating.
void BarnesHutTree::partition_octants(const Vec3& center, std::uint32_t first,
                                      std::uint32_t count,
                                      std::uint32_t (&begin)[8],
                                      std::uint32_t (&len)[8]) {
  for (int oct = 0; oct < 8; ++oct) len[oct] = 0;
  for (std::uint32_t k = first; k < first + count; ++k)
    ++len[octant_of(pos_[order_[k]], center)];
  std::uint32_t cursor = first;
  std::uint32_t fill[8];
  for (int oct = 0; oct < 8; ++oct) {
    begin[oct] = cursor;
    fill[oct] = cursor;
    cursor += len[oct];
  }
  for (std::uint32_t k = first; k < first + count; ++k) {
    const std::uint32_t p = order_[k];
    scratch_[fill[octant_of(pos_[p], center)]++] = p;
  }
  std::copy(scratch_.begin() + first, scratch_.begin() + first + count,
            order_.begin() + first);
}

std::int32_t BarnesHutTree::build_node(std::vector<TreeNode>& nodes,
                                       const Vec3& center, double half,
                                       std::uint32_t first, std::uint32_t count,
                                       int depth) {
  const auto id = static_cast<std::int32_t>(nodes.size());
  nodes.push_back({});
  {
    TreeNode& n = nodes.back();
    n.center = center;
    n.half = half;
    n.first = first;
    n.count = count;
  }

  if (count <= cfg_.leaf_capacity || depth >= cfg_.max_depth) {
    nodes[static_cast<std::size_t>(id)].leaf = true;
    return id;
  }

  std::uint32_t begin[8], len[8];
  partition_octants(center, first, count, begin, len);

  nodes[static_cast<std::size_t>(id)].leaf = false;
  const double quarter = 0.5 * half;
  for (int oct = 0; oct < 8; ++oct) {
    if (len[oct] == 0) continue;
    const std::int32_t ch =
        build_node(nodes, child_center(center, quarter, oct), quarter,
                   begin[oct], len[oct], depth + 1);
    nodes[static_cast<std::size_t>(id)].child[oct] = ch;
  }
  return id;
}

/// Mass, centre of mass, mean velocity and (optional) quadrupole of one node,
/// straight from its particle range. Every node covers a contiguous order_
/// range, so this applies to leaves and internal nodes alike — and, because
/// the summation order is the tree order, the serial and parallel build paths
/// run the identical arithmetic per node.
void BarnesHutTree::node_moments(TreeNode& node) const {
  double m = 0.0;
  Vec3 com{};
  Vec3 vcom{};
  const bool with_vel = !vel_.empty();
  for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
    const std::uint32_t p = order_[k];
    m += mass_[p];
    com += mass_[p] * pos_[p];
    if (with_vel) vcom += mass_[p] * vel_[p];
  }
  node.mass = m;
  node.com = m > 0.0 ? com / m : node.center;
  node.vcom = (with_vel && m > 0.0) ? vcom / m : Vec3{};

  if (cfg_.quadrupole) {
    double q[6] = {};
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const std::uint32_t p = order_[k];
      const Vec3 d = pos_[p] - node.com;
      const double d2 = norm2(d);
      q[0] += mass_[p] * (3.0 * d.x * d.x - d2);
      q[1] += mass_[p] * (3.0 * d.y * d.y - d2);
      q[2] += mass_[p] * (3.0 * d.z * d.z - d2);
      q[3] += mass_[p] * 3.0 * d.x * d.y;
      q[4] += mass_[p] * 3.0 * d.x * d.z;
      q[5] += mass_[p] * 3.0 * d.y * d.z;
    }
    for (int c = 0; c < 6; ++c) node.quad[c] = q[c];
  }
}

void BarnesHutTree::compute_moments(std::vector<TreeNode>& nodes,
                                    std::int32_t n) const {
  TreeNode& node = nodes[static_cast<std::size_t>(n)];
  node_moments(node);
  if (!node.leaf) {
    for (const std::int32_t ch : node.child)
      if (ch >= 0) compute_moments(nodes, ch);
  }
}

void BarnesHutTree::accumulate(std::int32_t n, const Vec3& x, double eps2,
                               std::int64_t skip, Force& f) const {
  const TreeNode& node = nodes_[static_cast<std::size_t>(n)];
  if (node.count == 0) return;

  const Vec3 d = x - node.com;
  const double r2 = norm2(d) + eps2;

  // Opening criterion (applies to leaves too): open when s/d >= theta, or
  // when the evaluation point lies inside the cell (an interior point can
  // be far from the centre of mass and still must not see a multipole).
  const double s = 2.0 * node.half;
  const bool must_open =
      s * s >= cfg_.theta * cfg_.theta * r2 || contains(node, x);

  if (!node.leaf && must_open) {
    for (const std::int32_t ch : node.child)
      if (ch >= 0) accumulate(ch, x, eps2, skip, f);
    return;
  }

  // A leaf that must open — or any leaf that holds the excluded particle —
  // is summed per particle.
  bool leaf_direct = node.leaf && must_open;
  if (node.leaf && !leaf_direct && skip >= 0) {
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k)
      if (order_[k] == static_cast<std::uint32_t>(skip)) {
        leaf_direct = true;
        break;
      }
  }
  if (leaf_direct) {
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const std::uint32_t p = order_[k];
      if (skip >= 0 && p == static_cast<std::uint32_t>(skip)) continue;
      const Vec3 dp = x - pos_[p];
      const double rp2 = norm2(dp) + eps2;
      const double rinv = 1.0 / std::sqrt(rp2);
      const double mr3 = mass_[p] * rinv * rinv * rinv;
      f.acc -= mr3 * dp;
      f.pot -= mass_[p] * rinv;
      ++interactions_;
    }
    return;
  }

  // Accept the cell: monopole (+ optional quadrupole).
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double mr3 = node.mass * rinv * rinv2;
  f.acc -= mr3 * d;
  f.pot -= node.mass * rinv;
  if (cfg_.quadrupole) {
    const double* q = node.quad;
    const Vec3 qd{q[0] * d.x + q[3] * d.y + q[4] * d.z,
                  q[3] * d.x + q[1] * d.y + q[5] * d.z,
                  q[4] * d.x + q[5] * d.y + q[2] * d.z};
    const double dqd = dot(d, qd);
    const double rinv5 = rinv2 * rinv2 * rinv;
    const double rinv7 = rinv5 * rinv2;
    f.acc += qd * rinv5 - (2.5 * dqd * rinv7) * d;
    f.pot -= 0.5 * dqd * rinv5;
  }
  ++interactions_;
}

Force BarnesHutTree::force_on(std::size_t i, double eps2) const {
  G6_CHECK(!nodes_.empty(), "tree not built");
  G6_CHECK(i < pos_.size(), "particle index out of range");
  Force f{};
  accumulate(0, pos_[i], eps2, static_cast<std::int64_t>(i), f);
  return f;
}

Force BarnesHutTree::force_at(const Vec3& x, double eps2) const {
  G6_CHECK(!nodes_.empty(), "tree not built");
  Force f{};
  accumulate(0, x, eps2, -1, f);
  return f;
}

void TreeAccelBackend::compute_all(const g6::nbody::ParticleSystem& ps,
                                   std::span<Force> out) {
  G6_CHECK(out.size() == ps.size(), "output span size mismatch");
  tree_.build(ps.positions(), ps.masses());
  const double eps2 = eps_ * eps_;
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = tree_.force_on(i, eps2);
}

}  // namespace g6::tree
