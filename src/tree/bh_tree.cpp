#include "tree/bh_tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.hpp"

namespace g6::tree {

namespace {
/// Octant of \p x relative to \p center (bit 0: x, bit 1: y, bit 2: z).
int octant_of(const Vec3& x, const Vec3& center) {
  return (x.x >= center.x ? 1 : 0) | (x.y >= center.y ? 2 : 0) |
         (x.z >= center.z ? 4 : 0);
}

Vec3 child_center(const Vec3& center, double quarter, int oct) {
  return {center.x + ((oct & 1) != 0 ? quarter : -quarter),
          center.y + ((oct & 2) != 0 ? quarter : -quarter),
          center.z + ((oct & 4) != 0 ? quarter : -quarter)};
}

bool contains(const TreeNode& n, const Vec3& x) {
  return std::abs(x.x - n.center.x) <= n.half &&
         std::abs(x.y - n.center.y) <= n.half &&
         std::abs(x.z - n.center.z) <= n.half;
}
}  // namespace

void BarnesHutTree::build(std::span<const Vec3> pos, std::span<const double> mass) {
  G6_CHECK(pos.size() == mass.size(), "position/mass size mismatch");
  G6_CHECK(!pos.empty(), "cannot build a tree over zero particles");

  pos_.assign(pos.begin(), pos.end());
  mass_.assign(mass.begin(), mass.end());
  order_.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    order_[i] = static_cast<std::uint32_t>(i);

  Vec3 lo = pos[0], hi = pos[0];
  for (const Vec3& x : pos) {
    lo = g6::util::min(lo, x);
    hi = g6::util::max(hi, x);
  }
  const Vec3 center = 0.5 * (lo + hi);
  double half = 0.0;
  for (int c = 0; c < 3; ++c) half = std::max(half, 0.5 * (hi[c] - lo[c]));
  half = std::max(half, 1e-12) * 1.0000001;  // avoid zero-size root

  nodes_.clear();
  nodes_.reserve(2 * pos.size());
  build_node(center, half, 0, static_cast<std::uint32_t>(pos.size()), 0);
  compute_moments(0);
}

std::int32_t BarnesHutTree::build_node(const Vec3& center, double half,
                                       std::uint32_t first, std::uint32_t count,
                                       int depth) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});
  {
    TreeNode& n = nodes_.back();
    n.center = center;
    n.half = half;
    n.first = first;
    n.count = count;
  }

  if (count <= cfg_.leaf_capacity || depth >= cfg_.max_depth) {
    nodes_[static_cast<std::size_t>(id)].leaf = true;
    return id;
  }

  // Bucket the subrange by octant (stable; keeps ranges contiguous).
  std::array<std::vector<std::uint32_t>, 8> bucket;
  for (std::uint32_t k = first; k < first + count; ++k) {
    const std::uint32_t p = order_[k];
    bucket[static_cast<std::size_t>(octant_of(pos_[p], center))].push_back(p);
  }
  std::uint32_t cursor = first;
  std::array<std::pair<std::uint32_t, std::uint32_t>, 8> range;
  for (int oct = 0; oct < 8; ++oct) {
    range[static_cast<std::size_t>(oct)] = {
        cursor, static_cast<std::uint32_t>(bucket[static_cast<std::size_t>(oct)].size())};
    for (std::uint32_t p : bucket[static_cast<std::size_t>(oct)]) order_[cursor++] = p;
  }

  nodes_[static_cast<std::size_t>(id)].leaf = false;
  const double quarter = 0.5 * half;
  for (int oct = 0; oct < 8; ++oct) {
    const auto [b, c] = range[static_cast<std::size_t>(oct)];
    if (c == 0) continue;
    const std::int32_t ch =
        build_node(child_center(center, quarter, oct), quarter, b, c, depth + 1);
    nodes_[static_cast<std::size_t>(id)].child[oct] = ch;
  }
  return id;
}

void BarnesHutTree::compute_moments(std::int32_t n) {
  TreeNode& node = nodes_[static_cast<std::size_t>(n)];
  // Every node covers a contiguous order_ range, so moments come straight
  // from the particles (leaves and internal nodes alike).
  double m = 0.0;
  Vec3 com{};
  for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
    const std::uint32_t p = order_[k];
    m += mass_[p];
    com += mass_[p] * pos_[p];
  }
  node.mass = m;
  node.com = m > 0.0 ? com / m : node.center;

  if (cfg_.quadrupole) {
    double q[6] = {};
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const std::uint32_t p = order_[k];
      const Vec3 d = pos_[p] - node.com;
      const double d2 = norm2(d);
      q[0] += mass_[p] * (3.0 * d.x * d.x - d2);
      q[1] += mass_[p] * (3.0 * d.y * d.y - d2);
      q[2] += mass_[p] * (3.0 * d.z * d.z - d2);
      q[3] += mass_[p] * 3.0 * d.x * d.y;
      q[4] += mass_[p] * 3.0 * d.x * d.z;
      q[5] += mass_[p] * 3.0 * d.y * d.z;
    }
    for (int c = 0; c < 6; ++c) node.quad[c] = q[c];
  }

  if (!node.leaf) {
    for (const std::int32_t ch : node.child)
      if (ch >= 0) compute_moments(ch);
  }
}

void BarnesHutTree::accumulate(std::int32_t n, const Vec3& x, double eps2,
                               std::int64_t skip, Force& f) const {
  const TreeNode& node = nodes_[static_cast<std::size_t>(n)];
  if (node.count == 0) return;

  const Vec3 d = x - node.com;
  const double r2 = norm2(d) + eps2;

  // Opening criterion (applies to leaves too): open when s/d >= theta, or
  // when the evaluation point lies inside the cell (an interior point can
  // be far from the centre of mass and still must not see a multipole).
  const double s = 2.0 * node.half;
  const bool must_open =
      s * s >= cfg_.theta * cfg_.theta * r2 || contains(node, x);

  if (!node.leaf && must_open) {
    for (const std::int32_t ch : node.child)
      if (ch >= 0) accumulate(ch, x, eps2, skip, f);
    return;
  }

  // A leaf that must open — or any leaf that holds the excluded particle —
  // is summed per particle.
  bool leaf_direct = node.leaf && must_open;
  if (node.leaf && !leaf_direct && skip >= 0) {
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k)
      if (order_[k] == static_cast<std::uint32_t>(skip)) {
        leaf_direct = true;
        break;
      }
  }
  if (leaf_direct) {
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const std::uint32_t p = order_[k];
      if (skip >= 0 && p == static_cast<std::uint32_t>(skip)) continue;
      const Vec3 dp = x - pos_[p];
      const double rp2 = norm2(dp) + eps2;
      const double rinv = 1.0 / std::sqrt(rp2);
      const double mr3 = mass_[p] * rinv * rinv * rinv;
      f.acc -= mr3 * dp;
      f.pot -= mass_[p] * rinv;
      ++interactions_;
    }
    return;
  }

  // Accept the cell: monopole (+ optional quadrupole).
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double mr3 = node.mass * rinv * rinv2;
  f.acc -= mr3 * d;
  f.pot -= node.mass * rinv;
  if (cfg_.quadrupole) {
    const double* q = node.quad;
    const Vec3 qd{q[0] * d.x + q[3] * d.y + q[4] * d.z,
                  q[3] * d.x + q[1] * d.y + q[5] * d.z,
                  q[4] * d.x + q[5] * d.y + q[2] * d.z};
    const double dqd = dot(d, qd);
    const double rinv5 = rinv2 * rinv2 * rinv;
    const double rinv7 = rinv5 * rinv2;
    f.acc += qd * rinv5 - (2.5 * dqd * rinv7) * d;
    f.pot -= 0.5 * dqd * rinv5;
  }
  ++interactions_;
}

Force BarnesHutTree::force_on(std::size_t i, double eps2) const {
  G6_CHECK(!nodes_.empty(), "tree not built");
  G6_CHECK(i < pos_.size(), "particle index out of range");
  Force f{};
  accumulate(0, pos_[i], eps2, static_cast<std::int64_t>(i), f);
  return f;
}

Force BarnesHutTree::force_at(const Vec3& x, double eps2) const {
  G6_CHECK(!nodes_.empty(), "tree not built");
  Force f{};
  accumulate(0, x, eps2, -1, f);
  return f;
}

void TreeAccelBackend::compute_all(const g6::nbody::ParticleSystem& ps,
                                   std::span<Force> out) {
  G6_CHECK(out.size() == ps.size(), "output span size mismatch");
  tree_.build(ps.positions(), ps.masses());
  const double eps2 = eps_ * eps_;
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = tree_.force_on(i, eps2);
}

}  // namespace g6::tree
