#include "run/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/crc_stream.hpp"

namespace g6::run {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'G', '6', 'C', 'K', 'P', 'T', '1', '\0'};
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestMagic = "g6ckpt-manifest";

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Write \p payload to "<path>.tmp" and rename over \p path: a crash
/// mid-write leaves at worst a stale tmp file, never a torn checkpoint.
template <typename WriteFn>
void atomic_write(const std::string& path, WriteFn&& write_fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    G6_CHECK(os.is_open(), "cannot open file for writing: " + tmp);
    write_fn(os);
    os.flush();
    os.close();
    G6_CHECK(!os.fail(), "write failed: " + tmp);
  }
  G6_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "atomic rename failed: " + tmp + " -> " + path);
}

}  // namespace

std::uint64_t config_hash(const g6::nbody::IntegratorConfig& cfg,
                          const std::string& backend_name, double softening,
                          std::uint64_t n_particles, std::uint64_t extra) {
  // Canonical text form (17 significant digits, exact for doubles) so the
  // hash is independent of struct layout and padding.
  std::ostringstream os;
  os.precision(17);
  os << backend_name << '|' << softening << '|' << cfg.eta << '|' << cfg.eta_init
     << '|' << cfg.dt_max << '|' << cfg.dt_min << '|' << cfg.solar_gm << '|'
     << cfg.corrector_iterations << '|' << cfg.record_block_sizes << '|'
     << n_particles << '|' << extra;
  return fnv1a64(os.str());
}

CheckpointData capture(const g6::nbody::HermiteIntegrator& integ,
                       std::uint64_t config_hash) {
  CheckpointData d;
  d.config_hash = config_hash;
  d.t_sys = integ.current_time();
  d.stats = integ.stats();
  d.system = integ.system();
  return d;
}

void write_checkpoint(std::ostream& os, const CheckpointData& data) {
  os.write(kMagic, sizeof kMagic);
  g6::util::CrcWriter w{os};
  w.put(data.config_hash);
  w.put(data.t_sys);

  w.put(data.stats.blocks);
  w.put(data.stats.steps);
  w.put(data.stats.dt_shrinks);
  w.put(data.stats.dt_grows);
  w.put(static_cast<std::uint64_t>(data.stats.block_sizes.size()));
  for (std::uint32_t b : data.stats.block_sizes) w.put(b);

  const auto& ps = data.system;
  w.put(static_cast<std::uint64_t>(ps.size()));
  for (std::size_t i = 0; i < ps.size(); ++i) {
    w.put(static_cast<std::uint64_t>(ps.id(i)));
    w.put(ps.mass(i));
    w.put(ps.pos(i));
    w.put(ps.vel(i));
    w.put(ps.acc(i));
    w.put(ps.jerk(i));
    w.put(ps.pot(i));
    w.put(ps.time(i));
    w.put(ps.dt(i));
  }

  w.put(static_cast<std::uint64_t>(data.rng_streams.size()));
  for (const auto& st : data.rng_streams) {
    for (std::uint64_t word : st.s) w.put(word);
    w.put(st.spare);
    w.put(static_cast<std::uint8_t>(st.have_spare ? 1 : 0));
  }

  w.put(static_cast<std::uint8_t>(data.has_accretion ? 1 : 0));
  w.put(data.accretion_mergers);
  w.put(data.accretion_time);

  w.put(static_cast<std::uint64_t>(data.backend_state.size()));
  if (!data.backend_state.empty())
    w.put_bytes(data.backend_state.data(), data.backend_state.size());

  w.put_trailer();
  os.flush();
  G6_CHECK(os.good(), "checkpoint write failed");
}

CheckpointData read_checkpoint(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  G6_CHECK(is.good(), "truncated checkpoint header");
  G6_CHECK(std::memcmp(magic, kMagic, sizeof magic) == 0,
           "not a G6CKPT1 checkpoint stream");
  g6::util::CrcReader r{is, g6::util::crc32_init(), "checkpoint"};

  CheckpointData d;
  d.config_hash = r.get<std::uint64_t>();
  d.t_sys = r.get<double>();

  d.stats.blocks = r.get<std::uint64_t>();
  d.stats.steps = r.get<std::uint64_t>();
  d.stats.dt_shrinks = r.get<std::uint64_t>();
  d.stats.dt_grows = r.get<std::uint64_t>();
  const auto n_blocks = r.get<std::uint64_t>();
  d.stats.block_sizes.reserve(n_blocks);
  for (std::uint64_t i = 0; i < n_blocks; ++i)
    d.stats.block_sizes.push_back(r.get<std::uint32_t>());

  const auto n = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = r.get<std::uint64_t>();
    const auto m = r.get<double>();
    const auto pos = r.get<g6::util::Vec3>();
    const auto vel = r.get<g6::util::Vec3>();
    const auto acc = r.get<g6::util::Vec3>();
    const auto jerk = r.get<g6::util::Vec3>();
    const auto pot = r.get<double>();
    const auto time = r.get<double>();
    const auto dt = r.get<double>();
    const std::size_t k = d.system.add(m, pos, vel);
    d.system.set_id(k, static_cast<std::uint32_t>(id));
    d.system.acc(k) = acc;
    d.system.jerk(k) = jerk;
    d.system.pot(k) = pot;
    d.system.time(k) = time;
    d.system.dt(k) = dt;
  }

  const auto n_rng = r.get<std::uint64_t>();
  d.rng_streams.resize(n_rng);
  for (auto& st : d.rng_streams) {
    for (auto& word : st.s) word = r.get<std::uint64_t>();
    st.spare = r.get<double>();
    st.have_spare = r.get<std::uint8_t>() != 0;
  }

  d.has_accretion = r.get<std::uint8_t>() != 0;
  d.accretion_mergers = r.get<std::uint64_t>();
  d.accretion_time = r.get<double>();

  const auto n_backend = r.get<std::uint64_t>();
  d.backend_state.resize(n_backend);
  if (n_backend > 0) r.get_bytes(d.backend_state.data(), n_backend);

  r.check_trailer();
  return d;
}

void write_checkpoint_file(const std::string& path, const CheckpointData& data) {
  atomic_write(path, [&](std::ostream& os) { write_checkpoint(os, data); });
}

CheckpointData read_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  G6_CHECK(is.is_open(), "cannot open checkpoint file for reading: " + path);
  return read_checkpoint(is);
}

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / kManifestName).string();
}

bool manifest_exists(const std::string& dir) {
  return fs::exists(manifest_path(dir));
}

Manifest read_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  std::ifstream is(path);
  G6_CHECK(is.is_open(), "cannot open checkpoint manifest: " + path);
  Manifest man;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    const auto bad = [&](const std::string& what) {
      g6::util::raise("checkpoint manifest " + path + " line " +
                      std::to_string(line_no) + ": " + what);
    };
    if (line_no == 1) {
      int version = 0;
      if (key != kManifestMagic || !(fields >> version) || version != 1)
        bad("bad header (expected '" + std::string(kManifestMagic) + " 1')");
      saw_header = true;
    } else if (key == "config") {
      if (!(fields >> std::hex >> man.config_hash)) bad("malformed config hash");
    } else if (key == "max_t") {
      if (!(fields >> man.max_t)) bad("malformed max_t");
    } else if (key == "segment") {
      SegmentInfo seg;
      if (!(fields >> seg.segment >> seg.t_sys >> seg.bytes >> seg.file))
        bad("malformed segment entry");
      if (!man.segments.empty() && seg.segment <= man.segments.back().segment)
        bad("segment numbers must be strictly increasing");
      man.segments.push_back(std::move(seg));
    } else {
      bad("unknown key '" + key + "'");
    }
  }
  G6_CHECK(saw_header, "checkpoint manifest " + path + " is empty");
  return man;
}

void write_manifest(const std::string& dir, const Manifest& man) {
  atomic_write(manifest_path(dir), [&](std::ostream& os) {
    os.precision(17);
    os << kManifestMagic << " 1\n";
    os << "config " << std::hex << man.config_hash << std::dec << '\n';
    os << "max_t " << man.max_t << '\n';
    for (const auto& seg : man.segments)
      os << "segment " << seg.segment << ' ' << seg.t_sys << ' ' << seg.bytes
         << ' ' << seg.file << '\n';
    G6_CHECK(os.good(), "manifest write failed");
  });
}

std::string segment_filename(std::uint64_t segment) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg_%08llu.g6ckpt",
                static_cast<unsigned long long>(segment));
  return buf;
}

CheckpointStore::CheckpointStore(std::string dir, std::uint64_t config_hash,
                                 int keep_segments)
    : dir_(std::move(dir)), config_hash_(config_hash), keep_(keep_segments) {
  G6_CHECK(!dir_.empty(), "checkpoint directory must not be empty");
  G6_CHECK(keep_ >= 1, "retention must keep at least one segment");
  fs::create_directories(dir_);
  man_.config_hash = config_hash_;
}

bool CheckpointStore::open_existing() {
  if (!manifest_exists(dir_)) return false;
  Manifest man = read_manifest(dir_);
  if (man.config_hash != config_hash_) {
    std::ostringstream os;
    os << "refusing to resume from " << dir_ << ": manifest config hash "
       << std::hex << man.config_hash << " differs from this run's "
       << config_hash_ << std::dec
       << " (integrator parameters, backend, or particle count changed)";
    g6::util::raise(os.str());
  }
  man_ = std::move(man);
  return true;
}

std::optional<CheckpointStore::Restored> CheckpointStore::load_latest() {
  if (man_.segments.empty()) return std::nullopt;
  Restored res;
  for (std::size_t k = man_.segments.size(); k-- > 0;) {
    const SegmentInfo& seg = man_.segments[k];
    CheckpointData data;
    try {
      data = read_checkpoint_file((fs::path(dir_) / seg.file).string());
    } catch (const g6::util::Error&) {
      ++res.crc_fallbacks;
      continue;
    }
    G6_CHECK(data.config_hash == config_hash_,
             "checkpoint segment " + seg.file + " carries a different config hash");
    res.data = std::move(data);
    res.segment = seg.segment;
    res.wasted_recompute = std::max(0.0, man_.max_t - res.data.t_sys);
    // Later (corrupt) segments are dead: drop their files and manifest rows
    // so the next append continues the numbering from the restored point.
    for (std::size_t j = k + 1; j < man_.segments.size(); ++j) {
      std::error_code ec;
      fs::remove(fs::path(dir_) / man_.segments[j].file, ec);
    }
    man_.segments.resize(k + 1);
    write_manifest(dir_, man_);
    return res;
  }
  g6::util::raise("resume failed: all " + std::to_string(man_.segments.size()) +
                  " checkpoint segments in " + dir_ +
                  " are corrupted (CRC mismatch)");
}

std::uint64_t CheckpointStore::append(const CheckpointData& data) {
  SegmentInfo seg;
  seg.segment = man_.segments.empty() ? 0 : man_.segments.back().segment + 1;
  seg.t_sys = data.t_sys;
  seg.file = segment_filename(seg.segment);
  const std::string path = (fs::path(dir_) / seg.file).string();
  write_checkpoint_file(path, data);
  seg.bytes = static_cast<std::uint64_t>(fs::file_size(path));
  man_.segments.push_back(seg);
  man_.max_t = std::max(man_.max_t, seg.t_sys);
  while (man_.segments.size() > static_cast<std::size_t>(keep_)) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / man_.segments.front().file, ec);
    man_.segments.erase(man_.segments.begin());
  }
  write_manifest(dir_, man_);
  return seg.bytes;
}

}  // namespace g6::run
