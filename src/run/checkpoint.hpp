#pragma once
/// \file checkpoint.hpp
/// \brief G6CKPT1 — durable, bit-exact checkpoints of a running integration.
///
/// The paper's production run integrated 1.8M planetesimals for weeks of
/// wall clock ("the whole simulation, including file operations", §6); the
/// group's PC-GRAPE practice depends on runs surviving node loss. Snapshots
/// store only id/mass/pos/vel and force a re-initialisation on reload — a
/// "resumed" run is a different run. A checkpoint instead captures the
/// *complete* integrator state — pos/vel/acc/jerk, per-particle t and dt,
/// t_sys, the IntegratorStats counters, any registered RNG streams, and the
/// accretion-driver counters when present — so HermiteIntegrator::restore()
/// continues bit-identically to a run that never stopped, at any thread
/// count and on any backend (docs/CHECKPOINTING.md).
///
/// On-disk: 8-byte magic "G6CKPT1\0", then a CRC-32-covered payload
/// (config hash, t_sys, stats, particle records, RNG streams, accretion
/// section), then the CRC trailer. Files are written atomically
/// (tmp + rename) and rotated as monotonically numbered segments with a
/// plain-text sidecar manifest (CheckpointStore).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "nbody/integrator.hpp"
#include "nbody/particle.hpp"
#include "util/rng.hpp"

namespace g6::run {

/// Everything a resumed run needs. `system` holds the full Hermite state
/// (pos/vel/acc/jerk/pot and individual t/dt) of every particle.
struct CheckpointData {
  std::uint64_t config_hash = 0;  ///< run identity; resume refuses a mismatch
  double t_sys = 0.0;             ///< integrator system time
  g6::nbody::IntegratorStats stats;
  g6::nbody::ParticleSystem system;
  std::vector<g6::util::RngState> rng_streams;

  // Accretion-driver counters (present only for accretion runs; the system
  // then holds the post-merge compacted particles).
  bool has_accretion = false;
  std::uint64_t accretion_mergers = 0;
  double accretion_time = 0.0;

  // Opaque backend-private state (ForceBackend::save_checkpoint_state()) —
  // e.g. the P3T hybrid's epoch snapshot. Empty for stateless backends.
  // Stored verbatim; resume hands it back through load_checkpoint_state()
  // after the backend has been load()ed with the restored system.
  std::vector<std::uint8_t> backend_state;
};

/// 64-bit FNV-1a hash of the parameters that define a run's identity: the
/// integrator tunables, the backend (name + softening) and the particle
/// count. Stored in every checkpoint and in the manifest; resume with a
/// different hash is refused — a "resumed" run under different parameters
/// would silently be a different run. \p extra folds in caller-specific
/// identity (e.g. an IC seed).
std::uint64_t config_hash(const g6::nbody::IntegratorConfig& cfg,
                          const std::string& backend_name, double softening,
                          std::uint64_t n_particles, std::uint64_t extra = 0);

/// Copy the live integrator state into a CheckpointData (no accretion/RNG
/// sections; callers fill those).
CheckpointData capture(const g6::nbody::HermiteIntegrator& integ,
                       std::uint64_t config_hash);

/// Stream I/O. Readers verify magic and CRC trailer and raise
/// g6::util::Error on truncation or corruption.
void write_checkpoint(std::ostream& os, const CheckpointData& data);
CheckpointData read_checkpoint(std::istream& is);

/// File I/O. Writing is atomic: the payload goes to "<path>.tmp" which is
/// renamed over \p path only after a successful flush — a crash mid-write
/// never clobbers the previous checkpoint.
void write_checkpoint_file(const std::string& path, const CheckpointData& data);
CheckpointData read_checkpoint_file(const std::string& path);

/// One segment recorded in a checkpoint directory's manifest.
struct SegmentInfo {
  std::uint64_t segment = 0;  ///< monotonic segment number
  double t_sys = 0.0;         ///< simulation time the segment captured
  std::uint64_t bytes = 0;
  std::string file;           ///< filename relative to the directory
};

/// Sidecar manifest of a checkpoint directory (plain text, atomically
/// rewritten after every segment).
struct Manifest {
  std::uint64_t config_hash = 0;
  double max_t = 0.0;  ///< furthest t_sys any segment ever recorded
  std::vector<SegmentInfo> segments;  ///< ascending segment number
};

std::string manifest_path(const std::string& dir);
bool manifest_exists(const std::string& dir);
Manifest read_manifest(const std::string& dir);
void write_manifest(const std::string& dir, const Manifest& man);
std::string segment_filename(std::uint64_t segment);

/// Rotation of numbered checkpoint segments in one directory with the
/// sidecar manifest, retention policy and resume-with-fallback. RunManager
/// composes this with a HermiteIntegrator; accretion drivers and tests use
/// it directly.
class CheckpointStore {
 public:
  /// \p keep_segments: how many recent segments survive retention (>= 1;
  /// keeping >1 is what makes CRC fallback possible).
  CheckpointStore(std::string dir, std::uint64_t config_hash,
                  int keep_segments = 3);

  /// Load an existing manifest (resume path). Returns false when the
  /// directory has no manifest (fresh start). Raises g6::util::Error when
  /// the manifest's config hash differs from this run's — resuming under
  /// changed parameters is refused with a clear message.
  bool open_existing();

  /// Result of resume-from-latest-valid.
  struct Restored {
    CheckpointData data;
    std::uint64_t segment = 0;
    std::uint64_t crc_fallbacks = 0;   ///< corrupted segments skipped
    double wasted_recompute = 0.0;     ///< sim time lost to the fallback
  };

  /// Try segments newest to oldest; the first that passes its CRC wins and
  /// every later (corrupt) segment is dropped from the manifest. Returns
  /// nullopt when the manifest records no segments; raises g6::util::Error
  /// when segments exist but every one is corrupt.
  std::optional<Restored> load_latest();

  /// Write the next numbered segment (atomic), update the manifest and
  /// enforce retention. Returns the bytes written.
  std::uint64_t append(const CheckpointData& data);

  const std::string& dir() const { return dir_; }
  const Manifest& manifest() const { return man_; }

 private:
  std::string dir_;
  std::uint64_t config_hash_;
  int keep_;
  Manifest man_;
};

}  // namespace g6::run
