#include "run/run_manager.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace g6::run {

RunManager::RunManager(g6::nbody::HermiteIntegrator& integ, RunConfig cfg)
    : integ_(integ), cfg_(std::move(cfg)) {
  G6_CHECK(!cfg_.checkpoint_dir.empty(), "RunConfig.checkpoint_dir is required");
  G6_CHECK(cfg_.t_end >= 0.0, "t_end must be non-negative");
  chash_ = config_hash(integ_.config(), integ_.backend().name(),
                       integ_.backend().softening(), integ_.system().size(),
                       cfg_.ic_seed);
}

void RunManager::attach_rng(g6::util::Rng* rng) {
  G6_CHECK(rng != nullptr, "attach_rng(nullptr)");
  rngs_.push_back(rng);
}

void RunManager::write_segment(CheckpointStore& store, RunReport& rep) {
  G6_TRACE_SPAN("checkpoint-write");
  CheckpointData data = capture(integ_, chash_);
  data.rng_streams.reserve(rngs_.size());
  for (g6::util::Rng* rng : rngs_) data.rng_streams.push_back(rng->save());
  const std::uint64_t bytes = store.append(data);
  ++rep.segments_written;
  rep.bytes_written += bytes;
  auto& reg = g6::obs::MetricsRegistry::global();
  reg.counter("g6.run.segments_written").add(1);
  reg.counter("g6.run.checkpoint_bytes").add(bytes);
  if (on_segment) on_segment(rep, integ_.current_time());
}

void RunManager::publish(const RunReport& rep) const {
  auto& reg = g6::obs::MetricsRegistry::global();
  if (rep.outcome == RunOutcome::kCompleted)
    reg.counter("g6.run.completions").add(1);
  else
    reg.counter("g6.run.preemptions").add(1);
}

RunReport RunManager::run() {
  G6_TRACE_SPAN("run-manager");
  g6::util::Timer wall;
  RunReport rep;
  CheckpointStore store(cfg_.checkpoint_dir, chash_, cfg_.keep_segments);

  if (cfg_.resume && store.open_existing()) {
    if (auto restored = store.load_latest()) {
      // The saved system replaces the caller's (same object the integrator
      // references); restore() rebuilds j-memory and the scheduler from it.
      integ_.system() = std::move(restored->data.system);
      integ_.restore(restored->data.t_sys, std::move(restored->data.stats));
      const std::size_t n_rng =
          std::min(rngs_.size(), restored->data.rng_streams.size());
      for (std::size_t k = 0; k < n_rng; ++k)
        rngs_[k]->restore(restored->data.rng_streams[k]);
      rep.resumed = true;
      rep.resume_segment = restored->segment;
      rep.crc_fallbacks = restored->crc_fallbacks;
      rep.wasted_recompute = restored->wasted_recompute;
      auto& reg = g6::obs::MetricsRegistry::global();
      reg.counter("g6.run.resumes").add(1);
      reg.counter("g6.run.crc_fallbacks").add(rep.crc_fallbacks);
      reg.gauge("g6.run.wasted_recompute_time").add(rep.wasted_recompute);
    } else {
      // Manifest exists but records no segments yet: fresh start.
      integ_.initialize();
    }
  } else {
    integ_.initialize();
  }

  const double every = cfg_.checkpoint_every;
  double next_ckpt = every > 0.0 ? integ_.current_time() + every
                                 : std::numeric_limits<double>::infinity();
  const auto budget_exhausted = [&] {
    if (cfg_.step_budget != 0 && rep.blocks_run >= cfg_.step_budget) return true;
    if (cfg_.walltime_budget > 0.0 && wall.seconds() >= cfg_.walltime_budget)
      return true;
    return false;
  };

  while (integ_.next_time() <= cfg_.t_end) {
    integ_.step();
    ++rep.blocks_run;
    const bool preempt = budget_exhausted();
    if (integ_.current_time() >= next_ckpt || preempt) {
      write_segment(store, rep);
      while (next_ckpt <= integ_.current_time()) next_ckpt += every;
    }
    if (preempt) {
      rep.outcome = RunOutcome::kPreempted;
      rep.final_time = integ_.current_time();
      publish(rep);
      return rep;
    }
  }

  // All pending block times lie beyond t_end: bring every particle to
  // exactly t_end (same single synchronisation an uninterrupted drive does)
  // and seal the run with a final checkpoint.
  integ_.synchronize(cfg_.t_end);
  write_segment(store, rep);
  rep.outcome = RunOutcome::kCompleted;
  rep.final_time = integ_.current_time();
  publish(rep);
  return rep;
}

}  // namespace g6::run
