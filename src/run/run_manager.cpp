#include "run/run_manager.hpp"

#include <algorithm>
#include <limits>

#include "cluster/perf_model.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace g6::run {

namespace {

/// Progress rows are named after the run directory's final path component —
/// the same name CampaignRunner gives per-job checkpoint directories, so a
/// campaign's `/progress` lists one row per job.
std::string job_name_from_dir(const std::string& dir) {
  std::string d = dir;
  while (!d.empty() && d.back() == '/') d.pop_back();
  const auto slash = d.find_last_of('/');
  const std::string name = slash == std::string::npos ? d : d.substr(slash + 1);
  return name.empty() ? "run" : name;
}

}  // namespace

RunManager::RunManager(g6::nbody::HermiteIntegrator& integ, RunConfig cfg)
    : integ_(integ), cfg_(std::move(cfg)) {
  G6_CHECK(!cfg_.checkpoint_dir.empty(), "RunConfig.checkpoint_dir is required");
  G6_CHECK(cfg_.t_end >= 0.0, "t_end must be non-negative");
  chash_ = config_hash(integ_.config(), integ_.backend().name(),
                       integ_.backend().softening(), integ_.system().size(),
                       cfg_.ic_seed);
}

void RunManager::attach_rng(g6::util::Rng* rng) {
  G6_CHECK(rng != nullptr, "attach_rng(nullptr)");
  rngs_.push_back(rng);
}

void RunManager::write_segment(CheckpointStore& store, RunReport& rep) {
  G6_TRACE_SPAN("checkpoint-write");
  CheckpointData data = capture(integ_, chash_);
  data.rng_streams.reserve(rngs_.size());
  for (g6::util::Rng* rng : rngs_) data.rng_streams.push_back(rng->save());
  data.backend_state = integ_.backend().save_checkpoint_state();
  const std::uint64_t bytes = store.append(data);
  ++rep.segments_written;
  rep.bytes_written += bytes;
  auto& reg = g6::obs::MetricsRegistry::global();
  reg.counter("g6.run.segments_written").add(1);
  reg.counter("g6.run.checkpoint_bytes").add(bytes);
  if (on_segment) on_segment(rep, integ_.current_time());
}

void RunManager::publish(const RunReport& rep) const {
  auto& reg = g6::obs::MetricsRegistry::global();
  if (rep.outcome == RunOutcome::kCompleted)
    reg.counter("g6.run.completions").add(1);
  else
    reg.counter("g6.run.preemptions").add(1);
}

RunReport RunManager::run() {
  G6_TRACE_SPAN("run-manager");
  g6::util::Timer wall;
  RunReport rep;
  CheckpointStore store(cfg_.checkpoint_dir, chash_, cfg_.keep_segments);

  if (cfg_.resume && store.open_existing()) {
    auto restored = decltype(store.load_latest()){};
    try {
      restored = store.load_latest();
    } catch (const std::exception& e) {
      // A resume that cannot even read its checkpoints is post-mortem
      // material: capture the flight window before propagating.
      auto& flight = g6::obs::FlightRecorder::global();
      flight.note("resume", std::string("resume failed: ") + e.what());
      flight.dump("resume-failure");
      throw;
    }
    if (restored) {
      // The saved system replaces the caller's (same object the integrator
      // references); restore() rebuilds j-memory and the scheduler from it.
      integ_.system() = std::move(restored->data.system);
      integ_.restore(restored->data.t_sys, std::move(restored->data.stats));
      // restore() has re-load()ed the backend from the restored system;
      // stateful backends now re-establish their private history (e.g. the
      // P3T epoch snapshot) so forces match the uninterrupted run exactly.
      integ_.backend().load_checkpoint_state(restored->data.backend_state);
      const std::size_t n_rng =
          std::min(rngs_.size(), restored->data.rng_streams.size());
      for (std::size_t k = 0; k < n_rng; ++k)
        rngs_[k]->restore(restored->data.rng_streams[k]);
      rep.resumed = true;
      rep.resume_segment = restored->segment;
      rep.crc_fallbacks = restored->crc_fallbacks;
      rep.wasted_recompute = restored->wasted_recompute;
      auto& reg = g6::obs::MetricsRegistry::global();
      reg.counter("g6.run.resumes").add(1);
      reg.counter("g6.run.crc_fallbacks").add(rep.crc_fallbacks);
      reg.gauge("g6.run.wasted_recompute_time").add(rep.wasted_recompute);
    } else {
      // Manifest exists but records no segments yet: fresh start.
      integ_.initialize();
    }
  } else {
    integ_.initialize();
  }

  const double every = cfg_.checkpoint_every;
  double next_ckpt = every > 0.0 ? integ_.current_time() + every
                                 : std::numeric_limits<double>::infinity();
  const auto budget_exhausted = [&] {
    if (cfg_.step_budget != 0 && rep.blocks_run >= cfg_.step_budget) return true;
    if (cfg_.walltime_budget > 0.0 && wall.seconds() >= cfg_.walltime_budget)
      return true;
    return false;
  };

  // Live-monitoring wiring: a progress row for this run, per-block registry
  // gauges/counters, and flight-recorder step records. All updates happen
  // here on the driver thread at serial points — the monitor threads only
  // read them — so monitoring never perturbs simulation order.
  auto& reg = g6::obs::MetricsRegistry::global();
  auto ticket = g6::obs::ProgressTracker::global().add_job(
      job_name_from_dir(cfg_.checkpoint_dir), integ_.current_time(),
      cfg_.t_end);
  ticket.set_state(g6::obs::JobState::kRunning);
  auto t_sys_gauge = reg.gauge("g6.run.t_sys");
  auto blocks_counter = reg.counter("g6.run.blocks");
  auto drift_gauge = reg.gauge("g6.run.model_drift");
  auto& flight = g6::obs::FlightRecorder::global();
  const std::size_t n_total = integ_.system().size();
  const g6::cluster::PerfModel model{g6::cluster::PerfParams{}};
  const std::uint64_t steps0 = integ_.stats().steps;
  const std::uint64_t blocks0 = integ_.stats().blocks;

  // Measured-vs-model drift: seconds per block this invocation vs the
  // analytic PerfModel at the run's mean block size (paper-scale machine).
  const auto update_drift = [&] {
    const std::uint64_t blocks = integ_.stats().blocks - blocks0;
    const std::uint64_t steps = integ_.stats().steps - steps0;
    if (blocks == 0) return;
    const std::size_t mean_block = static_cast<std::size_t>(std::max<std::uint64_t>(
        1, steps / blocks));
    const double model_spb = model.blockstep_seconds(n_total, mean_block);
    ticket.set_model_seconds_per_block(model_spb);
    const double measured_spb = wall.seconds() / static_cast<double>(blocks);
    if (model_spb > 0.0) drift_gauge.set(measured_spb / model_spb);
  };

  g6::util::Timer block_timer;
  try {
    while (integ_.next_time() <= cfg_.t_end) {
      const std::uint64_t steps_before = integ_.stats().steps;
      block_timer.lap();
      integ_.step();
      ++rep.blocks_run;
      const double t = integ_.current_time();
      t_sys_gauge.set(t);
      blocks_counter.add(1);
      ticket.update(t, rep.blocks_run, wall.seconds());
      flight.record_step(
          t, static_cast<std::size_t>(integ_.stats().steps - steps_before),
          block_timer.lap());
      const bool preempt = budget_exhausted();
      if (integ_.current_time() >= next_ckpt || preempt) {
        write_segment(store, rep);
        update_drift();
        while (next_ckpt <= integ_.current_time()) next_ckpt += every;
      }
      if (preempt) {
        rep.outcome = RunOutcome::kPreempted;
        rep.final_time = integ_.current_time();
        ticket.finish(g6::obs::JobState::kPreempted);
        publish(rep);
        return rep;
      }
    }

    // All pending block times lie beyond t_end: bring every particle to
    // exactly t_end (same single synchronisation an uninterrupted drive does)
    // and seal the run with a final checkpoint.
    integ_.synchronize(cfg_.t_end);
    write_segment(store, rep);
  } catch (const std::exception& e) {
    ticket.finish(g6::obs::JobState::kFailed);
    flight.note("run", std::string("run failed: ") + e.what());
    flight.dump("run-failure");
    throw;
  }
  rep.outcome = RunOutcome::kCompleted;
  rep.final_time = integ_.current_time();
  update_drift();
  ticket.update(rep.final_time, rep.blocks_run, wall.seconds());
  ticket.finish(g6::obs::JobState::kDone);
  publish(rep);
  return rep;
}

}  // namespace g6::run
