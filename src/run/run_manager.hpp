#pragma once
/// \file run_manager.hpp
/// \brief RunManager — drives one integration as checkpointed segments with
///        block-boundary preemption, retention and crash recovery.
///
/// The production pattern (weeks of wall clock on shared hardware): a run is
/// a sequence of *segments*; after each segment a G6CKPT1 checkpoint is
/// rotated into the run directory. Walltime and block-step budgets preempt
/// the run at a block boundary — the process exits cleanly and a later
/// invocation with resume=true continues from the newest valid checkpoint,
/// bit-identically to a run that never stopped. A SIGKILL between segments
/// costs only the work since the last checkpoint; a checkpoint corrupted on
/// disk is detected by its CRC and resume falls back to the previous
/// segment (PR 4's detection philosophy applied to the filesystem).
///
/// Accounting flows through g6.run.* metrics and "checkpoint-write" /
/// "run-segment" trace spans (docs/OBSERVABILITY.md).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nbody/integrator.hpp"
#include "run/checkpoint.hpp"
#include "util/rng.hpp"

namespace g6::run {

/// What to drive and when to stop.
struct RunConfig {
  std::string checkpoint_dir;   ///< required; created if missing
  double t_end = 0.0;           ///< integrate to this simulation time
  double checkpoint_every = 0.0;  ///< sim time between segments (<= 0: only
                                  ///< preemption/final checkpoints)
  double walltime_budget = 0.0;   ///< wall seconds per invocation (<= 0: none)
  std::uint64_t step_budget = 0;  ///< block steps per invocation (0: none)
  int keep_segments = 3;          ///< retention (>= 2 enables CRC fallback)
  bool resume = false;            ///< continue from the newest valid segment
  std::uint64_t ic_seed = 0;      ///< folded into the config hash
};

enum class RunOutcome {
  kCompleted,  ///< reached t_end (final state synchronised + checkpointed)
  kPreempted,  ///< budget exhausted; resume later with resume=true
};

/// What one invocation did.
struct RunReport {
  RunOutcome outcome = RunOutcome::kCompleted;
  double final_time = 0.0;          ///< t_sys when the invocation returned
  std::uint64_t blocks_run = 0;     ///< block steps executed this invocation
  std::uint64_t segments_written = 0;
  std::uint64_t bytes_written = 0;
  bool resumed = false;             ///< state came from a checkpoint
  std::uint64_t resume_segment = 0;
  std::uint64_t crc_fallbacks = 0;  ///< corrupt segments skipped on resume
  double wasted_recompute = 0.0;    ///< sim time re-integrated after fallback
};

/// Segment-driving orchestrator for one HermiteIntegrator.
class RunManager {
 public:
  /// The integrator must be freshly constructed (not initialized): run()
  /// either initializes it (fresh start; all particles at a common time) or
  /// restores it from the newest valid checkpoint (resume).
  RunManager(g6::nbody::HermiteIntegrator& integ, RunConfig cfg);

  /// Register an RNG whose stream is saved in every checkpoint and restored
  /// on resume (order of registration defines the on-disk order).
  void attach_rng(g6::util::Rng* rng);

  /// Progress hook, called after every segment write with the running
  /// report and the segment's simulation time.
  std::function<void(const RunReport&, double)> on_segment;

  /// Drive to completion or preemption. Safe to call once per RunManager.
  RunReport run();

 private:
  void write_segment(CheckpointStore& store, RunReport& rep);
  void publish(const RunReport& rep) const;

  g6::nbody::HermiteIntegrator& integ_;
  RunConfig cfg_;
  std::vector<g6::util::Rng*> rngs_;
  std::uint64_t chash_;
};

}  // namespace g6::run
