#include "run/campaign_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/force_direct.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "p3t/p3t_backend.hpp"
#include "run/checkpoint.hpp"
#include "util/check.hpp"

namespace g6::run {

namespace {

namespace fs = std::filesystem;

constexpr const char* kCampaignMagic = "g6campaign-manifest";

g6::hw::FormatSpec format_for(const g6::nbody::ParticleSystem& ps) {
  double extent = 1.0;
  for (std::size_t i = 0; i < ps.size(); ++i)
    extent = std::max(extent, norm(ps.pos(i)));
  const double acc = std::max(1e-12, ps.total_mass() / (extent * extent));
  return g6::hw::FormatSpec::for_scales(2.0 * extent, acc);
}

std::unique_ptr<g6::nbody::ForceBackend> make_backend(
    const JobSpec& spec, const g6::nbody::ParticleSystem& ps) {
  if (spec.backend == "cpu")
    return std::make_unique<g6::nbody::CpuDirectBackend>(spec.eps);
  if (spec.backend == "grape") {
    g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 1 << 14);
    mc.fmt = format_for(ps);
    return std::make_unique<g6::hw::Grape6Backend>(mc, spec.eps);
  }
  if (spec.backend == "cluster")
    return std::make_unique<g6::cluster::ClusterBackend>(
        spec.hosts, g6::cluster::HostMode::kHardwareNet, format_for(ps), spec.eps);
  if (spec.backend == "p3t") {
    g6::p3t::P3TConfig pc;
    pc.gm_central = 1.0;  // campaign jobs are always the heliocentric disk
    return std::make_unique<g6::p3t::P3THybridBackend>(
        pc, spec.eps, &g6::util::shared_pool());
  }
  g6::util::raise("campaign job '" + spec.name + "': unknown backend '" +
                  spec.backend + "' (want cpu|grape|cluster|p3t)");
}

}  // namespace

std::string campaign_manifest_path(const std::string& dir) {
  return (fs::path(dir) / "campaign.manifest").string();
}

CampaignRunner::CampaignRunner(CampaignSpec spec, g6::util::ThreadPool* pool)
    : spec_(std::move(spec)),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(!spec_.dir.empty(), "CampaignSpec.dir is required");
  G6_CHECK(!spec_.jobs.empty(), "campaign has no jobs");
  std::set<std::string> names;
  for (const JobSpec& job : spec_.jobs) {
    G6_CHECK(!job.name.empty(), "campaign job needs a name");
    G6_CHECK(names.insert(job.name).second,
             "duplicate campaign job name '" + job.name + "'");
  }
}

void CampaignRunner::mark_done(const std::string& name) {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  done_.push_back(name);
  const std::string path = campaign_manifest_path(spec_.dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    G6_CHECK(os.is_open(), "cannot write campaign manifest: " + tmp);
    os.precision(17);
    os << kCampaignMagic << " 1\n";
    for (const std::string& done : done_) os << "done " << done << '\n';
    os.flush();
    G6_CHECK(os.good(), "campaign manifest write failed");
  }
  G6_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "campaign manifest rename failed");
}

JobResult CampaignRunner::run_job(const JobSpec& spec) {
  G6_TRACE_SPAN("campaign-job");
  JobResult res;
  res.name = spec.name;

  // Paper-scenario initial conditions, parameterized by the sweep.
  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(spec.n);
  dcfg.seed = spec.seed;
  for (auto& pp : dcfg.protoplanets) pp.mass = spec.mpp;
  auto disk = g6::disk::make_disk(dcfg);
  g6::nbody::ParticleSystem ps = std::move(disk.system);

  auto backend = make_backend(spec, ps);
  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = spec.eta;
  icfg.eta_init = spec.eta / 2.0;
  icfg.dt_max = spec.dt_max;
  g6::nbody::HermiteIntegrator integ(ps, *backend, icfg);

  RunConfig rcfg;
  rcfg.checkpoint_dir = (fs::path(spec_.dir) / spec.name).string();
  rcfg.t_end = spec.t_end;
  rcfg.checkpoint_every = spec.checkpoint_every;
  rcfg.walltime_budget = spec_.walltime_budget;
  rcfg.step_budget = spec_.step_budget;
  rcfg.keep_segments = spec_.keep_segments;
  rcfg.resume = true;  // continue any earlier invocation's checkpoints
  rcfg.ic_seed = spec.seed;
  RunManager manager(integ, rcfg);
  const RunReport rep = manager.run();

  res.status = rep.outcome == RunOutcome::kCompleted ? JobStatus::kCompleted
                                                     : JobStatus::kPreempted;
  res.final_time = rep.final_time;
  res.resumed = rep.resumed;
  res.segments_written = rep.segments_written;
  res.blocks_run = rep.blocks_run;
  return res;
}

CampaignReport CampaignRunner::run() {
  G6_TRACE_SPAN("campaign");
  fs::create_directories(spec_.dir);

  // Load the campaign manifest: jobs already done are skipped this time.
  done_.clear();
  const std::string path = campaign_manifest_path(spec_.dir);
  if (fs::exists(path)) {
    std::ifstream is(path);
    G6_CHECK(is.is_open(), "cannot read campaign manifest: " + path);
    std::string key, name;
    int version = 0;
    is >> key >> version;
    G6_CHECK(key == kCampaignMagic && version == 1,
             "campaign manifest " + path + " has a bad header");
    while (is >> key >> name) {
      G6_CHECK(key == "done", "campaign manifest " + path +
                                  ": unknown key '" + key + "'");
      done_.push_back(name);
    }
  }
  const std::vector<std::string> already_done = done_;

  CampaignReport report;
  report.jobs.resize(spec_.jobs.size());

  // Register every job with the progress tracker up front so `/progress`
  // lists the whole campaign (pending rows included) from the first poll.
  for (const JobSpec& spec : spec_.jobs)
    g6::obs::ProgressTracker::global().add_job(spec.name, 0.0, spec.t_end);

  // One lane per job; each job's nested parallel_for calls fall back to
  // serial inside the lane, so the pool is never oversubscribed.
  pool_->parallel_for(
      spec_.jobs.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
          const JobSpec& spec = spec_.jobs[k];
          JobResult& res = report.jobs[k];
          if (std::find(already_done.begin(), already_done.end(), spec.name) !=
              already_done.end()) {
            res.name = spec.name;
            res.status = JobStatus::kSkipped;
            res.final_time = spec.t_end;
            auto ticket = g6::obs::ProgressTracker::global().add_job(
                spec.name, 0.0, spec.t_end);
            ticket.update(spec.t_end, 0, 0.0);
            ticket.finish(g6::obs::JobState::kDone);
            continue;
          }
          try {
            res = run_job(spec);
          } catch (const std::exception& err) {
            res.name = spec.name;
            res.status = JobStatus::kFailed;
            res.error = err.what();
            // RunManager marks its own ticket failed when the run loop
            // throws; this also covers failures before the run starts
            // (IC build, backend construction).
            g6::obs::ProgressTracker::global()
                .add_job(spec.name, 0.0, spec.t_end)
                .finish(g6::obs::JobState::kFailed);
            g6::obs::FlightRecorder::global().note(
                "campaign", "job '" + spec.name + "' failed: " + res.error);
          }
          if (res.status == JobStatus::kCompleted) mark_done(spec.name);
        }
      },
      /*grain=*/1);

  auto& reg = g6::obs::MetricsRegistry::global();
  for (const JobResult& res : report.jobs) {
    switch (res.status) {
      case JobStatus::kCompleted:
        ++report.completed;
        reg.counter("g6.run.jobs_completed").add(1);
        break;
      case JobStatus::kPreempted:
        ++report.preempted;
        reg.counter("g6.run.jobs_preempted").add(1);
        break;
      case JobStatus::kFailed:
        ++report.failed;
        reg.counter("g6.run.jobs_failed").add(1);
        break;
      case JobStatus::kSkipped:
        ++report.skipped;
        break;
    }
  }
  return report;
}

}  // namespace g6::run
