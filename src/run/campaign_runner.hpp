#pragma once
/// \file campaign_runner.hpp
/// \brief CampaignRunner — a queue of parameterized runs (N/eta/seed/backend
///        sweeps, as in EXPERIMENTS.md) executed concurrently on the shared
///        ThreadPool, each with its own checkpoint directory, under one
///        resumable campaign manifest.
///
/// The north-star workload is many concurrent long runs on one machine. A
/// campaign is restartable at two levels: jobs already marked done in the
/// campaign manifest are skipped, and interrupted jobs resume from their
/// newest valid checkpoint through RunManager. Per-invocation budgets
/// preempt jobs cleanly, so a campaign can be driven to completion in
/// walltime slices.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "run/run_manager.hpp"
#include "util/thread_pool.hpp"

namespace g6::run {

/// One parameterized run of the paper's disk scenario.
struct JobSpec {
  std::string name;             ///< unique; also the job's checkpoint subdir
  std::string backend = "cpu";  ///< cpu | grape | cluster
  std::size_t n = 256;          ///< planetesimal count
  std::uint64_t seed = 1;       ///< initial-condition seed
  double eta = 0.02;            ///< Aarseth accuracy parameter
  double dt_max = 4.0;          ///< largest block step (power of two)
  double t_end = 1.0;           ///< end time (code units)
  double mpp = 1e-5;            ///< protoplanet mass, M_sun
  double eps = 0.008;           ///< softening length
  double checkpoint_every = 0.0;  ///< segment cadence in sim time
  int hosts = 4;                  ///< simulated hosts (cluster backend)
};

struct CampaignSpec {
  std::string dir;            ///< campaign root; per-job dirs underneath
  std::vector<JobSpec> jobs;  ///< names must be unique
  double walltime_budget = 0.0;   ///< per-job wall budget this invocation
  std::uint64_t step_budget = 0;  ///< per-job block-step budget (testing)
  int keep_segments = 3;
};

enum class JobStatus {
  kCompleted,  ///< reached t_end this invocation
  kPreempted,  ///< budget ran out; rerun the campaign to continue
  kFailed,     ///< raised an error (recorded, campaign continues)
  kSkipped,    ///< campaign manifest already marks it done
};

struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kFailed;
  double final_time = 0.0;
  bool resumed = false;
  std::uint64_t segments_written = 0;
  std::uint64_t blocks_run = 0;
  std::string error;  ///< non-empty for kFailed
};

struct CampaignReport {
  std::vector<JobResult> jobs;  ///< same order as the spec
  std::size_t completed = 0, preempted = 0, failed = 0, skipped = 0;
  /// Every job has reached its end time (this or an earlier invocation).
  bool all_done() const { return completed + skipped == jobs.size(); }
};

/// Executes a CampaignSpec. Jobs run concurrently on \p pool (nullptr = the
/// process-wide shared pool); each job's own integration layers then run
/// serially inside its lane (nested parallel_for falls back), so one
/// campaign saturates the machine without oversubscribing it.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec, g6::util::ThreadPool* pool = nullptr);

  /// Run (or continue) the campaign. Reads the campaign manifest, skips
  /// done jobs, resumes interrupted ones, and rewrites the manifest as jobs
  /// finish. Call again after preemption to drive the campaign further.
  CampaignReport run();

 private:
  JobResult run_job(const JobSpec& spec);
  void mark_done(const std::string& name);

  CampaignSpec spec_;
  g6::util::ThreadPool* pool_;
  std::mutex manifest_mu_;
  std::vector<std::string> done_;  ///< job names marked done in the manifest
};

/// Campaign manifest path (plain text, atomically rewritten).
std::string campaign_manifest_path(const std::string& dir);

}  // namespace g6::run
