/// SSE2 rung of the chip-pass dispatch ladder (baseline x86-64 ISA).
#define G6_CHIP_IMPL_NS chip_kernels_sse2
#include "grape6/chip_kernels_impl.hpp"
