#pragma once
/// \file machine.hpp
/// \brief The assembled GRAPE-6 machine: clusters of nodes, each node one
///        host port, one network board and four processor boards (paper §5,
///        figures 7 and 11). Presents the whole installation as a single
///        force engine ("we can use a 4-host, 16-processor-board system as a
///        single entity").
///
/// j-space is divided across every processor board in the machine;
/// i-particles are broadcast to all boards through the network-board trees;
/// partial forces come back through the hardware reduction units and are
/// merged exactly (fixed point).
///
/// Like the hardware, the emulation runs the boards concurrently: compute()
/// and predict_all() fan the boards out over a ThreadPool and merge the
/// per-board partial forces with a deterministic fixed-point reduction tree,
/// so the result is bit-identical to the serial board loop for any thread
/// count (see docs/PERFORMANCE.md, "Emulation parallelism").

#include <cstdint>
#include <vector>

#include "grape6/board.hpp"
#include "grape6/netboard.hpp"
#include "util/thread_pool.hpp"

namespace g6::hw {

/// Machine topology + formats. Defaults are the paper's full system
/// (4 clusters x 4 hosts x 4 boards x 32 chips = 2048 chips).
struct MachineConfig {
  int clusters = kClusters;
  int hosts_per_cluster = kHostsPerCluster;
  int boards_per_host = kBoardsPerHost;
  int chips_per_board = kChipsPerBoard;
  std::size_t jmem_per_chip = kJMemPerChip;
  FormatSpec fmt{};

  int total_nodes() const { return clusters * hosts_per_cluster; }
  int total_boards() const { return total_nodes() * boards_per_host; }
  long long total_chips() const {
    return static_cast<long long>(total_boards()) * chips_per_board;
  }
  long long total_pipelines() const { return total_chips() * kPipesPerChip; }

  /// Theoretical peak in flops under the 57-op convention.
  double peak_flops() const {
    return static_cast<double>(total_pipelines()) * kClockHz * kOpsPerInteraction;
  }

  /// The paper's full installation.
  static MachineConfig full_system() { return {}; }

  /// A small configuration for functional tests (1 node, few chips).
  static MachineConfig mini(int boards = 2, int chips = 4,
                            std::size_t jmem = 1024) {
    MachineConfig cfg;
    cfg.clusters = 1;
    cfg.hosts_per_cluster = 1;
    cfg.boards_per_host = boards;
    cfg.chips_per_board = chips;
    cfg.jmem_per_chip = jmem;
    return cfg;
  }
};

/// Where a j-particle lives in the machine.
struct GlobalJAddress {
  std::uint32_t board = 0;
  JAddress local;
};

/// Functional + cycle model of the complete GRAPE-6 installation.
class Grape6Machine {
 public:
  /// \p pool runs the boards concurrently; nullptr means the process-wide
  /// g6::util::shared_pool() (G6_NUM_THREADS lanes).
  explicit Grape6Machine(MachineConfig cfg, g6::util::ThreadPool* pool = nullptr);

  /// Swap the worker pool (tests compare thread counts on one machine).
  /// nullptr restores the shared pool.
  void set_pool(g6::util::ThreadPool* pool);

  const MachineConfig& config() const { return cfg_; }
  std::size_t j_count() const { return addr_.size(); }
  std::size_t capacity() const;

  /// Drop all j-particles (keeps the topology).
  void clear();

  /// Load particles; particle k goes to board (k mod boards) so the per-
  /// board j-counts stay balanced (round-robin, like the real library).
  void load(std::span<const JParticle> particles);

  /// Overwrite j-particle \p index (0-based load order).
  void write_j(std::size_t index, const JParticle& p);

  /// Read back the j-memory image of particle \p index.
  const JParticle& read_j(std::size_t index) const;

  /// Run every board's predictor pipelines for block time \p t.
  void predict_all(double t);

  /// Force on each i-particle from every j-particle in the machine.
  /// predict_all(t) must have been called for the block time. The result is
  /// the exact fixed-point sum over all boards (network reduction).
  void compute(const std::vector<IParticle>& i_batch, double eps2,
               std::vector<ForceAccumulator>& out);

  /// Modeled pipeline wall-time (seconds) of one compute() with \p ni
  /// i-particles: boards run concurrently, so the slowest board decides.
  double pipeline_seconds(std::size_t ni) const;

  /// Modeled predictor wall-time for one block step.
  double predict_seconds() const;

  /// Aggregated hardware counters over all boards.
  HwCounters counters() const;

  /// Direct board access (tests, benches).
  ProcessorBoard& board(std::size_t b) { return boards_[b]; }
  const ProcessorBoard& board(std::size_t b) const { return boards_[b]; }
  std::size_t board_count() const { return boards_.size(); }

  // --- reliability hooks ----------------------------------------------------

  /// Attach (or detach with nullptr) a fault injector. While attached the
  /// machine keeps a host-side shadow of every loaded j-image (the "restore
  /// file" of the real operations), scrubs j-memory CRCs against it at each
  /// armed compute, runs the chip self-test/recovery pass, and processes the
  /// machine-domain events of the armed plan. Detached runs take a single
  /// branch per compute — the hot path is unchanged.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() const { return injector_; }

  bool board_alive(std::size_t b) const { return board_alive_[b] != 0; }
  int alive_board_count() const;

  /// Permanently exclude board \p b, remapping its j-particles onto the
  /// surviving boards from the shadow (requires an attached injector).
  void fail_board(std::size_t b);

 private:
  /// Scrub every stored j-image's CRC against the shadow; rewrite and
  /// re-predict on mismatch. Serial, armed runs only.
  void scrub_jmem();
  /// Process the machine-domain fault events due this compute call.
  void process_events();
  /// Move particle \p index onto the least-loaded alive board with capacity.
  void remap_particle(std::size_t index);
  /// Remap everything still addressed to dead chips of board \p b.
  std::size_t remap_dead_chips(std::size_t b);

  MachineConfig cfg_;
  g6::util::ThreadPool* pool_;
  std::vector<ProcessorBoard> boards_;
  std::vector<GlobalJAddress> addr_;  ///< load order -> machine address
  fault::FaultInjector* injector_ = nullptr;
  std::vector<JParticle> shadow_j_;   ///< load order -> pristine image
  std::vector<char> board_alive_;
  double predict_time_ = 0.0;         ///< block time of the last predict_all
  /// Per-board partial accumulators. Sized once per topology (outer) and
  /// once per i-batch shape (inner, grow-only) — compute() resets the values
  /// in place instead of reallocating every call.
  std::vector<std::vector<ForceAccumulator>> scratch_;
};

}  // namespace g6::hw
