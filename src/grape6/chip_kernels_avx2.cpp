/// AVX2+FMA rung of the chip-pass dispatch ladder (-mavx2 -mfma; FMA cannot
/// contract here — the build sets -ffp-contract=off for bit-identity).
#define G6_CHIP_IMPL_NS chip_kernels_avx2
#include "grape6/chip_kernels_impl.hpp"
