/// Scalar rung of the chip-pass dispatch ladder (baseline x86-64 codegen).
#define G6_CHIP_IMPL_NS chip_kernels_scalar
#include "grape6/chip_kernels_impl.hpp"
