#include "grape6/g6_types.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6::hw {

FormatSpec FormatSpec::for_scales(double length_scale, double acc_scale) {
  G6_CHECK(length_scale > 0.0 && acc_scale > 0.0, "scales must be positive");
  FormatSpec fmt;
  // Position grid: 2^13 * length_scale of range, 2^-50 * 2^13 resolution.
  fmt.pos_lsb = std::ldexp(length_scale, -50) * 8192.0;
  // Accumulators: 2^13 * acc_scale of headroom before wraparound.
  fmt.acc_lsb = std::ldexp(acc_scale, -50);
  fmt.jerk_lsb = fmt.acc_lsb;   // jerk ~ acc / dynamical-time; same grid works
  fmt.pot_lsb = std::ldexp(acc_scale * length_scale, -50);
  return fmt;
}

void publish_metrics(const HwCounters& counters, g6::obs::MetricsRegistry& registry) {
  registry.counter("g6.hw.interactions").set(counters.interactions);
  registry.counter("g6.hw.predict_ops").set(counters.predict_ops);
  registry.counter("g6.hw.pipe_cycles").set(counters.pipe_cycles);
  registry.counter("g6.hw.passes").set(counters.passes);
  registry.counter("g6.hw.i_particles_sent").set(counters.i_particles_sent);
  registry.counter("g6.hw.results_returned").set(counters.results_returned);
  registry.counter("g6.hw.j_writes").set(counters.j_writes);
}

}  // namespace g6::hw
