#include "grape6/g6_types.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6::hw {

FormatSpec FormatSpec::for_scales(double length_scale, double acc_scale) {
  G6_CHECK(length_scale > 0.0 && acc_scale > 0.0, "scales must be positive");
  FormatSpec fmt;
  // Position grid: 2^13 * length_scale of range, 2^-50 * 2^13 resolution.
  fmt.pos_lsb = std::ldexp(length_scale, -50) * 8192.0;
  // Accumulators: 2^13 * acc_scale of headroom before wraparound.
  fmt.acc_lsb = std::ldexp(acc_scale, -50);
  fmt.jerk_lsb = fmt.acc_lsb;   // jerk ~ acc / dynamical-time; same grid works
  fmt.pot_lsb = std::ldexp(acc_scale * length_scale, -50);
  return fmt;
}

}  // namespace g6::hw
