#include "grape6/g6_api.hpp"

#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "util/check.hpp"

namespace g6::hw::api {

namespace {

constexpr int kMaxClusters = 8;

/// Per-cluster driver state.
struct ClusterState {
  std::unique_ptr<Grape6Machine> machine;
  double ti = 0.0;              ///< current prediction time
  bool predicted = false;       ///< predict_all(ti) has run
  int pending_ni = 0;           ///< i-count of an in-flight calculation
  double pending_eps2 = 0.0;
  std::vector<IParticle> pending_i;
  std::vector<std::size_t> loaded;  ///< j addresses ever written (capacity map)
};

std::array<std::optional<ClusterState>, kMaxClusters>& table() {
  static std::array<std::optional<ClusterState>, kMaxClusters> t;
  return t;
}

ClusterState& state(int clusterid) {
  G6_CHECK(clusterid >= 0 && clusterid < kMaxClusters, "bad cluster id");
  auto& slot = table()[static_cast<std::size_t>(clusterid)];
  G6_CHECK(slot.has_value(), "cluster not open");
  return *slot;
}

}  // namespace

int g6_open(int clusterid, const MachineConfig& cfg) {
  if (clusterid < 0 || clusterid >= kMaxClusters) return -1;
  auto& slot = table()[static_cast<std::size_t>(clusterid)];
  if (slot.has_value()) return -1;
  slot.emplace();
  slot->machine = std::make_unique<Grape6Machine>(cfg);
  return 0;
}

int g6_close(int clusterid) {
  if (clusterid < 0 || clusterid >= kMaxClusters) return -1;
  auto& slot = table()[static_cast<std::size_t>(clusterid)];
  if (!slot.has_value()) return -1;
  slot.reset();
  return 0;
}

int g6_npipes() { return kIPerChipPass; }

void g6_set_tunit(int, int) {
  // Time is kept in doubles host-side; the call exists for API parity.
}

void g6_set_xunit(int clusterid, int xunit) {
  ClusterState& st = state(clusterid);
  G6_CHECK(st.machine->j_count() == 0, "set the unit before loading particles");
  MachineConfig cfg = st.machine->config();
  cfg.fmt.pos_lsb = std::ldexp(1.0, -xunit);
  st.machine = std::make_unique<Grape6Machine>(cfg);
  st.loaded.clear();
}

void g6_set_j_particle(int clusterid, int address, int index, double tj,
                       double /*dtj*/, double mass, const g6::util::Vec3& /*k18*/,
                       const g6::util::Vec3& j6, const g6::util::Vec3& a2,
                       const g6::util::Vec3& v, const g6::util::Vec3& x) {
  ClusterState& st = state(clusterid);
  const FormatSpec& fmt = st.machine->config().fmt;

  JParticle p;
  p.id = static_cast<std::uint32_t>(index);
  p.t0 = tj;
  p.mass = round_to_mantissa(mass, fmt.mantissa_bits);
  p.x0 = g6::util::FixedVec3::quantize(x, fmt.pos_lsb);
  auto shorten = [&](const g6::util::Vec3& w) {
    return g6::util::Vec3{round_to_mantissa(w.x, fmt.mantissa_bits),
                          round_to_mantissa(w.y, fmt.mantissa_bits),
                          round_to_mantissa(w.z, fmt.mantissa_bits)};
  };
  p.v0 = shorten(v);
  p.a0 = shorten(2.0 * a2);  // the caller passes acc/2, jerk/6 (hardware form)
  p.j0 = shorten(6.0 * j6);

  const auto addr = static_cast<std::size_t>(address);
  G6_CHECK(address >= 0, "negative j address");
  if (addr < st.machine->j_count()) {
    st.machine->write_j(addr, p);
  } else {
    // Addresses must be written densely (the real library maps address ->
    // board/chip/slot the same way).
    G6_CHECK(addr == st.machine->j_count(), "j addresses must be contiguous");
    st.machine->load(std::span<const JParticle>{&p, 1});
  }
  st.predicted = false;
}

void g6_set_ti(int clusterid, double ti) {
  ClusterState& st = state(clusterid);
  st.ti = ti;
  st.machine->predict_all(ti);
  st.predicted = true;
}

void g6_calc_firsthalf(int clusterid, int ni, const int* index,
                       const g6::util::Vec3* x, const g6::util::Vec3* v,
                       double eps2) {
  ClusterState& st = state(clusterid);
  G6_CHECK(ni > 0 && ni <= g6_npipes(), "ni must be in [1, g6_npipes()]");
  G6_CHECK(st.pending_ni == 0, "a calculation is already in flight");
  G6_CHECK(st.predicted, "call g6_set_ti before g6_calc_firsthalf");
  const FormatSpec& fmt = st.machine->config().fmt;
  st.pending_i.clear();
  for (int k = 0; k < ni; ++k) {
    st.pending_i.push_back(make_i_particle(
        static_cast<std::uint32_t>(index[k]), x[k], v[k], fmt));
  }
  st.pending_ni = ni;
  st.pending_eps2 = eps2;
}

int g6_calc_lasthalf(int clusterid, int ni, g6::util::Vec3* acc,
                     g6::util::Vec3* jerk, double* pot) {
  ClusterState& st = state(clusterid);
  G6_CHECK(st.pending_ni == ni, "lasthalf ni does not match firsthalf");
  std::vector<ForceAccumulator> out;
  st.machine->compute(st.pending_i, st.pending_eps2, out);
  for (int k = 0; k < ni; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    acc[k] = out[ku].acc.to_vec3();
    jerk[k] = out[ku].jerk.to_vec3();
    pot[k] = out[ku].pot.to_double();
  }
  st.pending_ni = 0;
  return 0;
}

Grape6Machine& g6_machine(int clusterid) { return *state(clusterid).machine; }

void g6_reset_all() {
  for (auto& slot : table()) slot.reset();
}

}  // namespace g6::hw::api
