#include "grape6/chip.hpp"

#include <algorithm>
#include <cstdlib>

#include "fault/fault.hpp"
#include "grape6/chip_kernels.hpp"
#include "util/check.hpp"

namespace g6::hw {

namespace {

/// The self-test pair: a fixed i-particle and j-particle whose interaction
/// exercises every pipeline unit. The signature is whatever the pipeline
/// produces at construction time — the test detects *change*, not absolute
/// correctness (the conformance suites cover that).
IParticle selftest_i(const FormatSpec& fmt) {
  return make_i_particle(0x7fffffffu, Vec3{0.125, -0.25, 0.5},
                         Vec3{-0.03125, 0.0625, -0.125}, fmt);
}

JPredicted selftest_j(const FormatSpec& fmt) {
  const JParticle j =
      make_j_particle(0x7ffffffeu, 1.0 / 1024.0, 0.0, Vec3{-0.5, 0.25, -0.125},
                      Vec3{0.0625, -0.03125, 0.015625}, Vec3{}, Vec3{}, fmt);
  return predict_j(j, 0.0, fmt);
}

constexpr double kSelftestEps2 = 1.0 / 4096.0;

}  // namespace

Chip::Chip(const FormatSpec& fmt, std::size_t jmem_capacity)
    : fmt_(fmt), capacity_(jmem_capacity) {
  const ForceAccumulator a = selftest_vector();
  sig_[0] = a.acc.x().raw();
  sig_[1] = a.acc.y().raw();
  sig_[2] = a.acc.z().raw();
  sig_[3] = a.jerk.x().raw();
  sig_[4] = a.jerk.y().raw();
  sig_[5] = a.jerk.z().raw();
  sig_[6] = a.pot.raw();
}

ForceAccumulator Chip::selftest_vector() const {
  ForceAccumulator a(fmt_);
  pipeline_interact(selftest_i(fmt_), selftest_j(fmt_), kSelftestEps2, fmt_, a);
  return a;
}

bool Chip::self_test() const {
  if (dead_) return false;
  ForceAccumulator a = selftest_vector();
  if (glitch_armed_) {
    // The glitching datapath corrupts the test vector the same way it
    // corrupts real accumulators.
    std::vector<ForceAccumulator> one{a};
    apply_glitch(one);
    a = one[0];
  }
  return a.acc.x().raw() == sig_[0] && a.acc.y().raw() == sig_[1] &&
         a.acc.z().raw() == sig_[2] && a.jerk.x().raw() == sig_[3] &&
         a.jerk.y().raw() == sig_[4] && a.jerk.z().raw() == sig_[5] &&
         a.pot.raw() == sig_[6];
}

void Chip::corrupt_j(std::size_t slot, std::uint32_t bit) {
  G6_CHECK(slot < jmem_.size(), "corrupt_j slot out of range");
  g6::fault::flip_bit(&jmem_[slot], sizeof(JParticle), bit);
  predictions_valid_ = false;  // the predictor re-reads the corrupted SSRAM
}

void Chip::arm_glitch(std::uint32_t bit, bool permanent) {
  glitch_armed_ = true;
  glitch_permanent_ = permanent;
  glitch_bit_ = bit;
}

void Chip::apply_glitch(std::vector<ForceAccumulator>& accum) const {
  if (!glitch_armed_ || accum.empty()) return;
  ForceAccumulator& a = accum[glitch_bit_ % accum.size()];
  const int bit = static_cast<int>((glitch_bit_ / 7u) % 63u);
  a.acc = g6::util::FixedVec3::from_raw(a.acc.x().raw() ^ (std::int64_t{1} << bit),
                                        a.acc.y().raw(), a.acc.z().raw(),
                                        fmt_.acc_lsb);
}

bool Chip::batched_from_env() {
  static const bool value = [] {
    const char* env = std::getenv("G6_GRAPE_BATCHED");
    return !(env && env[0] == '0' && env[1] == '\0');
  }();
  return value;
}

void Chip::PredictedSoA::resize(std::size_t n) {
  id.resize(n);
  m.resize(n);
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
}

std::size_t Chip::store_j(const JParticle& p) {
  G6_CHECK(jmem_.size() < capacity_, "chip j-memory full");
  jmem_.push_back(p);
  predictions_valid_ = false;
  return jmem_.size() - 1;
}

void Chip::write_j(std::size_t addr, const JParticle& p) {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  jmem_[addr] = p;
  predictions_valid_ = false;
}

const JParticle& Chip::read_j(std::size_t addr) const {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  return jmem_[addr];
}

void Chip::predict_all(double t) {
  if (predictions_valid_ && predicted_time_ == t) return;
  const std::size_t n = jmem_.size();
  predicted_.resize(n);
  soa_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    predicted_[k] = predict_j(jmem_[k], t, fmt_);
    const JPredicted& p = predicted_[k];
    const Vec3 px = p.x.to_vec3();  // fixed -> double once per j per block
    soa_.id[k] = p.id;
    soa_.m[k] = p.mass;
    soa_.x[k] = px.x;
    soa_.y[k] = px.y;
    soa_.z[k] = px.z;
    soa_.vx[k] = p.v.x;
    soa_.vy[k] = p.v.y;
    soa_.vz[k] = p.v.z;
  }
  predicted_time_ = t;
  predictions_valid_ = true;
}

void Chip::compute(const std::vector<IParticle>& i_batch, double eps2,
                   std::vector<ForceAccumulator>& accum) const {
  G6_CHECK(predictions_valid_, "predict_all must run before compute");
  G6_CHECK(accum.size() == i_batch.size(), "accumulator batch size mismatch");
  if (batched_) {
    compute_batched(i_batch, eps2, accum);
    apply_glitch(accum);
    return;
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const IParticle& ip = i_batch[k];
    ForceAccumulator& a = accum[k];
    for (const JPredicted& jp : predicted_) pipeline_interact(ip, jp, eps2, fmt_, a);
  }
  apply_glitch(accum);
}

void Chip::compute_batched(const std::vector<IParticle>& i_batch, double eps2,
                           std::vector<ForceAccumulator>& accum) const {
  const std::size_t ni = i_batch.size();
  constexpr std::size_t kGroup = kIPerChipPass;
  // The j-stream loop itself is runtime-dispatched to the host's ISA level
  // (chip_kernels.hpp): same pass body, compiled per level, bit-identical
  // everywhere by fixed-point construction.
  const ChipPassFn pass = active_chip_pass();
  const ChipJStream js{soa_.id.data(), soa_.m.data(), soa_.x.data(),
                       soa_.y.data(), soa_.z.data(), soa_.vx.data(),
                       soa_.vy.data(), soa_.vz.data(), jmem_.size()};
  for (std::size_t g0 = 0; g0 < ni; g0 += kGroup) {
    const std::size_t gn = std::min(kGroup, ni - g0);
    // Hoist each i-particle's fixed-point -> double conversion out of the
    // j loop: done once per pass, like the hardware latching the broadcast
    // i-state into its virtual-pipeline registers.
    std::uint32_t iid[kGroup];
    Vec3 ix[kGroup], iv[kGroup];
    for (std::size_t k = 0; k < gn; ++k) {
      const IParticle& ip = i_batch[g0 + k];
      iid[k] = ip.id;
      ix[k] = ip.x.to_vec3();
      iv[k] = ip.v;
    }
    // Stream the predicted j-memory once per pass; each j is loaded once and
    // served to the whole i-group.
    pass(js, iid, ix, iv, gn, eps2, fmt_, accum.data() + g0);
  }
}

std::uint64_t Chip::compute_cycles(std::size_t ni) const {
  if (ni == 0 || jmem_.empty()) return 0;
  const std::uint64_t passes = (ni + kIPerChipPass - 1) / kIPerChipPass;
  return passes * (static_cast<std::uint64_t>(kVmp) * jmem_.size() + kPipelineLatency);
}

}  // namespace g6::hw
