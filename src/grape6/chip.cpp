#include "grape6/chip.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace g6::hw {

bool Chip::batched_from_env() {
  static const bool value = [] {
    const char* env = std::getenv("G6_GRAPE_BATCHED");
    return !(env && env[0] == '0' && env[1] == '\0');
  }();
  return value;
}

void Chip::PredictedSoA::resize(std::size_t n) {
  id.resize(n);
  m.resize(n);
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
}

std::size_t Chip::store_j(const JParticle& p) {
  G6_CHECK(jmem_.size() < capacity_, "chip j-memory full");
  jmem_.push_back(p);
  predictions_valid_ = false;
  return jmem_.size() - 1;
}

void Chip::write_j(std::size_t addr, const JParticle& p) {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  jmem_[addr] = p;
  predictions_valid_ = false;
}

const JParticle& Chip::read_j(std::size_t addr) const {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  return jmem_[addr];
}

void Chip::predict_all(double t) {
  if (predictions_valid_ && predicted_time_ == t) return;
  const std::size_t n = jmem_.size();
  predicted_.resize(n);
  soa_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    predicted_[k] = predict_j(jmem_[k], t, fmt_);
    const JPredicted& p = predicted_[k];
    const Vec3 px = p.x.to_vec3();  // fixed -> double once per j per block
    soa_.id[k] = p.id;
    soa_.m[k] = p.mass;
    soa_.x[k] = px.x;
    soa_.y[k] = px.y;
    soa_.z[k] = px.z;
    soa_.vx[k] = p.v.x;
    soa_.vy[k] = p.v.y;
    soa_.vz[k] = p.v.z;
  }
  predicted_time_ = t;
  predictions_valid_ = true;
}

void Chip::compute(const std::vector<IParticle>& i_batch, double eps2,
                   std::vector<ForceAccumulator>& accum) const {
  G6_CHECK(predictions_valid_, "predict_all must run before compute");
  G6_CHECK(accum.size() == i_batch.size(), "accumulator batch size mismatch");
  if (batched_) {
    compute_batched(i_batch, eps2, accum);
    return;
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const IParticle& ip = i_batch[k];
    ForceAccumulator& a = accum[k];
    for (const JPredicted& jp : predicted_) pipeline_interact(ip, jp, eps2, fmt_, a);
  }
}

void Chip::compute_batched(const std::vector<IParticle>& i_batch, double eps2,
                           std::vector<ForceAccumulator>& accum) const {
  const std::size_t ni = i_batch.size();
  const std::size_t nj = jmem_.size();
  constexpr std::size_t kGroup = kIPerChipPass;
  for (std::size_t g0 = 0; g0 < ni; g0 += kGroup) {
    const std::size_t gn = std::min(kGroup, ni - g0);
    // Hoist each i-particle's fixed-point -> double conversion out of the
    // j loop: done once per pass, like the hardware latching the broadcast
    // i-state into its virtual-pipeline registers.
    std::uint32_t iid[kGroup];
    Vec3 ix[kGroup], iv[kGroup];
    for (std::size_t k = 0; k < gn; ++k) {
      const IParticle& ip = i_batch[g0 + k];
      iid[k] = ip.id;
      ix[k] = ip.x.to_vec3();
      iv[k] = ip.v;
    }
    // Stream the predicted j-memory once per pass; each j is loaded once and
    // served to the whole i-group.
    for (std::size_t jj = 0; jj < nj; ++jj) {
      const std::uint32_t jid = soa_.id[jj];
      const double jm = soa_.m[jj];
      const Vec3 jx{soa_.x[jj], soa_.y[jj], soa_.z[jj]};
      const Vec3 jv{soa_.vx[jj], soa_.vy[jj], soa_.vz[jj]};
      for (std::size_t k = 0; k < gn; ++k)
        pipeline_interact_core(iid[k], ix[k], iv[k], jid, jm, jx, jv, eps2, fmt_,
                               accum[g0 + k]);
    }
  }
}

std::uint64_t Chip::compute_cycles(std::size_t ni) const {
  if (ni == 0 || jmem_.empty()) return 0;
  const std::uint64_t passes = (ni + kIPerChipPass - 1) / kIPerChipPass;
  return passes * (static_cast<std::uint64_t>(kVmp) * jmem_.size() + kPipelineLatency);
}

}  // namespace g6::hw
