#include "grape6/chip.hpp"

#include "util/check.hpp"

namespace g6::hw {

std::size_t Chip::store_j(const JParticle& p) {
  G6_CHECK(jmem_.size() < capacity_, "chip j-memory full");
  jmem_.push_back(p);
  predictions_valid_ = false;
  return jmem_.size() - 1;
}

void Chip::write_j(std::size_t addr, const JParticle& p) {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  jmem_[addr] = p;
  predictions_valid_ = false;
}

const JParticle& Chip::read_j(std::size_t addr) const {
  G6_CHECK(addr < jmem_.size(), "j-memory address out of range");
  return jmem_[addr];
}

void Chip::predict_all(double t) {
  if (predictions_valid_ && predicted_time_ == t) return;
  predicted_.resize(jmem_.size());
  for (std::size_t k = 0; k < jmem_.size(); ++k)
    predicted_[k] = predict_j(jmem_[k], t, fmt_);
  predicted_time_ = t;
  predictions_valid_ = true;
}

void Chip::compute(const std::vector<IParticle>& i_batch, double eps2,
                   std::vector<ForceAccumulator>& accum) const {
  G6_CHECK(predictions_valid_, "predict_all must run before compute");
  G6_CHECK(accum.size() == i_batch.size(), "accumulator batch size mismatch");
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const IParticle& ip = i_batch[k];
    ForceAccumulator& a = accum[k];
    for (const JPredicted& jp : predicted_) pipeline_interact(ip, jp, eps2, fmt_, a);
  }
}

std::uint64_t Chip::compute_cycles(std::size_t ni) const {
  if (ni == 0 || jmem_.empty()) return 0;
  const std::uint64_t passes = (ni + kIPerChipPass - 1) / kIPerChipPass;
  return passes * (static_cast<std::uint64_t>(kVmp) * jmem_.size() + kPipelineLatency);
}

}  // namespace g6::hw
