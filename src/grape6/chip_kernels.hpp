#pragma once
/// \file chip_kernels.hpp
/// \brief Runtime-dispatched batched pipeline pass of the GRAPE-6 chip model.
///
/// Chip::compute_batched streams the predicted j-memory through a group of
/// up to kIPerChipPass latched i-particles — the emulator's hottest loop.
/// Like the nbody force kernels, that pass is compiled once per ISA level
/// (chip_kernels_<isa>.cpp, per-file flags in CMakeLists.txt) so the j-loop
/// auto-vectorizes to the full width of whatever host runs the binary, and
/// one pass function is picked at startup via the shared CPUID probe
/// (nbody/simd_dispatch.hpp, overridable with G6_SIMD_LEVEL).
///
/// Every level is bit-identical by construction: the per-pair datapath is
/// scalar IEEE double arithmetic (identical on every rung) and the
/// accumulation is fixed-point integer addition (order-independent), so the
/// dispatch can only change throughput — enforced by the conformance tests
/// run under each G6_SIMD_LEVEL in CI.

#include <cstddef>
#include <cstdint>

#include "grape6/g6_types.hpp"
#include "nbody/simd_dispatch.hpp"

namespace g6::hw {

/// Raw view of Chip's predicted j-memory SoA (one pointer per column).
struct ChipJStream {
  const std::uint32_t* id = nullptr;
  const double* m = nullptr;
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  const double* vx = nullptr;
  const double* vy = nullptr;
  const double* vz = nullptr;
  std::size_t n = 0;
};

/// One batched pass: all j in \p js against the latched i-group
/// (iid/ix/iv, \p ni <= kIPerChipPass), accumulating into accum[0..ni).
using ChipPassFn = void (*)(const ChipJStream& js, const std::uint32_t* iid,
                            const Vec3* ix, const Vec3* iv, std::size_t ni,
                            double eps2, const FormatSpec& fmt,
                            ForceAccumulator* accum);

/// The pass compiled for \p level.
ChipPassFn chip_batched_pass(g6::nbody::SimdLevel level);

/// chip_batched_pass(active_simd_level()) — resolved once on first use.
ChipPassFn active_chip_pass();

}  // namespace g6::hw
