#pragma once
/// \file g6_api.hpp
/// \brief Compatibility facade mimicking the classic GRAPE-6 host library
///        (Makino's `g6_` C API) on top of the machine model.
///
/// Real GRAPE-6 application codes (NBODY4, the planetesimal code of this
/// paper, GORB, ...) drive the hardware through a small C API: open a
/// cluster, set the time unit scaling, write j-particles, set the prediction
/// time, push i-particles, and read back forces. This header provides the
/// same call shapes so such code ports onto the simulator nearly verbatim.
///
/// The subset implemented here covers the calls the paper's algorithm needs:
///
///   g6_open / g6_close            — attach/detach a (simulated) cluster
///   g6_npipes                     — i-particles accepted per call
///   g6_set_tunit / g6_set_xunit   — fixed-point scaling (powers of two)
///   g6_set_j_particle             — write one particle into j-memory
///   g6_set_ti                     — set the prediction time
///   g6_calc_firsthalf             — start a force calculation (i-broadcast)
///   g6_calc_lasthalf              — finish it and fetch acc/jerk/potential
///
/// Unlike the hardware library this one is object-backed: `clusterid` indexes
/// a table of Grape6Machine instances, so tests can open several "clusters".

#include <cstdint>

#include "grape6/machine.hpp"
#include "util/vec3.hpp"

namespace g6::hw::api {

/// Open (simulated) cluster \p clusterid with the given machine topology.
/// Returns 0 on success, -1 if the id is already open or invalid.
int g6_open(int clusterid, const MachineConfig& cfg = MachineConfig::mini(4, 8, 4096));

/// Release the cluster. Returns 0 on success, -1 if it was not open.
int g6_close(int clusterid);

/// Number of i-particles one g6_calc_firsthalf call accepts (the hardware's
/// virtual pipeline count).
int g6_npipes();

/// Set the time / length scaling exponents (the hardware works on
/// power-of-two fixed-point grids; `xunit` picks the position LSB as
/// 2^-xunit length units). Mirrors g6_set_tunit/g6_set_xunit.
void g6_set_tunit(int clusterid, int tunit);
void g6_set_xunit(int clusterid, int xunit);

/// Write particle \p address of the cluster's j-memory. The argument order
/// follows the historical call: the host passes the scaled Taylor
/// coefficients (snap/18, jerk/6, acc/2) along with velocity and position.
/// `k18` (snap term) is accepted for signature compatibility but ignored —
/// this model's predictor is cubic, like the GRAPE-6 hardware predictor.
void g6_set_j_particle(int clusterid, int address, int index, double tj,
                       double dtj, double mass, const g6::util::Vec3& k18,
                       const g6::util::Vec3& j6, const g6::util::Vec3& a2,
                       const g6::util::Vec3& v, const g6::util::Vec3& x);

/// Set the prediction time for the next force calculation.
void g6_set_ti(int clusterid, double ti);

/// Begin a force calculation on up to g6_npipes() i-particles.
void g6_calc_firsthalf(int clusterid, int ni, const int* index,
                       const g6::util::Vec3* x, const g6::util::Vec3* v,
                       double eps2);

/// Finish the calculation started by g6_calc_firsthalf; fills acc, jerk and
/// pot (size ni). Returns 0 on success.
int g6_calc_lasthalf(int clusterid, int ni, g6::util::Vec3* acc,
                     g6::util::Vec3* jerk, double* pot);

/// Direct access to the backing machine (tests/diagnostics; not part of the
/// historical API).
Grape6Machine& g6_machine(int clusterid);

/// Reset the whole API state (closes every cluster). Tests only.
void g6_reset_all();

}  // namespace g6::hw::api
