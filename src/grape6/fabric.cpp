#include "grape6/fabric.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::hw {

ClusterFabric::ClusterFabric(FormatSpec fmt, int hosts, int boards_per_host,
                             int chips_per_board, std::size_t jmem_per_chip)
    : fmt_(fmt), hosts_(hosts), boards_per_host_(boards_per_host) {
  G6_CHECK(hosts > 0 && boards_per_host > 0, "fabric topology must be non-empty");
  boards_.reserve(static_cast<std::size_t>(hosts) * boards_per_host);
  for (int b = 0; b < hosts * boards_per_host; ++b)
    boards_.emplace_back(fmt, chips_per_board, jmem_per_chip);
  nbs_.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) nbs_.emplace_back(boards_per_host, lvds_);
  group_j_count_.assign(1, 0);
}

std::size_t ClusterFabric::capacity() const {
  std::size_t cap = 0;
  for (const auto& b : boards_) cap += b.capacity();
  return cap;
}

void ClusterFabric::set_partition(int group_count) {
  G6_CHECK(group_count > 0 && hosts_ % group_count == 0,
           "group count must divide the host count");
  group_count_ = group_count;
  // Re-partitioning invalidates the j-space layout: start clean.
  const int chips = boards_.empty() ? 0 : boards_[0].chip_count();
  const std::size_t jmem =
      boards_.empty() ? 0 : boards_[0].capacity() / static_cast<std::size_t>(chips);
  for (auto& b : boards_) b = ProcessorBoard(fmt_, chips, jmem);
  addr_.clear();
  group_of_j_.clear();
  owner_host_.clear();
  group_j_count_.assign(static_cast<std::size_t>(group_count), 0);
}

int ClusterFabric::group_of_host(int host) const {
  G6_CHECK(host >= 0 && host < hosts_, "host out of range");
  return host / hosts_per_group();
}

void ClusterFabric::load_group(int group, std::span<const JParticle> particles) {
  G6_CHECK(group >= 0 && group < group_count_, "group out of range");
  const int gb = hosts_per_group() * boards_per_host_;  // boards per group
  const int b0 = first_host(group) * boards_per_host_;
  for (const JParticle& p : particles) {
    const auto slot = group_j_count_[static_cast<std::size_t>(group)]++;
    const auto b = static_cast<std::uint32_t>(
        b0 + static_cast<int>(slot % static_cast<std::size_t>(gb)));
    const JAddress local = boards_[b].store_j(p);
    addr_.push_back({b, local});
    group_of_j_.push_back(group);
    // Owner host: round-robin over the group's hosts by per-group ordinal.
    owner_host_.push_back(first_host(group) +
                          static_cast<int>(slot % static_cast<std::size_t>(
                                               hosts_per_group())));
    write_j(addr_.size() - 1, p);
  }
}

void ClusterFabric::load(std::span<const JParticle> particles) {
  load_group(0, particles);
}

void ClusterFabric::write_j(std::size_t index, const JParticle& p) {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  boards_[a.board].write_j(a.local, p);

  // Route accounting: owner host -> its NB (PCI), possibly one cascade hop,
  // then the board link.
  const auto owner = static_cast<std::size_t>(owner_host_[index]);
  const std::size_t target_host = a.board / static_cast<std::size_t>(boards_per_host_);
  FabricTraffic t;
  t.pci_bytes += kJParticleBytes;
  double path = pci_.time(kJParticleBytes);
  if (owner != target_host) {
    t.cascade_bytes += kJParticleBytes;
    path += lvds_.time(kJParticleBytes);
  }
  t.board_bytes += kJParticleBytes;
  path += lvds_.time(kJParticleBytes);
  t.modeled_seconds = path;
  total_ += t;
}

const JParticle& ClusterFabric::read_j(std::size_t index) const {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  return boards_[a.board].read_j(a.local);
}

void ClusterFabric::predict_all(double t) {
  for (auto& b : boards_) b.predict_all(t);
}

FabricTraffic ClusterFabric::compute(int host, const std::vector<IParticle>& i_batch,
                                     double eps2, std::vector<ForceAccumulator>& out) {
  G6_CHECK(host >= 0 && host < hosts_, "host out of range");
  G6_CHECK(!i_batch.empty(), "empty i-batch");

  // The request is scoped to the host's group: its own boards plus the
  // cascade-reachable boards of the group's other hosts.
  const int group = group_of_host(host);
  const int gh0 = first_host(group);
  const int gh1 = gh0 + hosts_per_group();

  const std::size_t i_bytes = i_batch.size() * kIParticleBytes;
  const std::size_t r_bytes = i_batch.size() * kResultBytes;
  FabricTraffic t;

  // Downward path: host -> its NB (PCI), then in parallel the local board
  // broadcast and the cascade to the group's peer NBs.
  t.pci_bytes += i_bytes;
  double down = pci_.time(i_bytes);
  const double local_bcast = nbs_[static_cast<std::size_t>(host)].send_down(i_bytes);
  double remote_path = 0.0;
  for (int h = gh0; h < gh1; ++h) {
    if (h == host) continue;
    t.cascade_bytes += i_bytes;
    const double hop = lvds_.time(i_bytes);
    const double fwd = nbs_[static_cast<std::size_t>(h)].send_down(i_bytes);
    remote_path = std::max(remote_path, hop + fwd);
  }
  const std::size_t group_boards =
      static_cast<std::size_t>(hosts_per_group()) * boards_per_host_;
  t.board_bytes += i_bytes * group_boards;
  down += std::max(local_bcast, remote_path);

  // Pipelines: every board of the group computes its partial (parallel).
  std::vector<std::vector<ForceAccumulator>> partial(group_boards);
  std::uint64_t worst_cycles = 0;
  for (std::size_t g = 0; g < group_boards; ++g) {
    const std::size_t b = static_cast<std::size_t>(gh0 * boards_per_host_) + g;
    partial[g].assign(i_batch.size(), ForceAccumulator(fmt_));
    boards_[b].compute(i_batch, eps2, partial[g]);
    worst_cycles = std::max(worst_cycles, boards_[b].compute_cycles(i_batch.size()));
  }
  const double pipe = static_cast<double>(worst_cycles) / kClockHz;

  // Upward path: each group NB reduces its boards; partials cascade back to
  // the requesting NB, merge, and go up the PCI link.
  std::vector<std::vector<ForceAccumulator>> per_host(
      static_cast<std::size_t>(hosts_per_group()));
  double reduce_local = 0.0;
  for (int h = gh0; h < gh1; ++h) {
    std::vector<std::vector<ForceAccumulator>> mine;
    for (int b = 0; b < boards_per_host_; ++b)
      mine.push_back(partial[static_cast<std::size_t>((h - gh0) * boards_per_host_ + b)]);
    reduce_local = std::max(
        reduce_local, nbs_[static_cast<std::size_t>(h)].reduce_up(
                          mine, per_host[static_cast<std::size_t>(h - gh0)]));
    t.board_bytes += r_bytes * static_cast<std::size_t>(boards_per_host_);
  }
  double cascade_back = 0.0;
  out = per_host[static_cast<std::size_t>(host - gh0)];
  for (int h = gh0; h < gh1; ++h) {
    if (h == host) continue;
    t.cascade_bytes += r_bytes;
    cascade_back = std::max(cascade_back, lvds_.time(r_bytes));
    for (std::size_t k = 0; k < out.size(); ++k)
      out[k] += per_host[static_cast<std::size_t>(h - gh0)][k];
  }
  t.pci_bytes += r_bytes;
  const double up = reduce_local + cascade_back + pci_.time(r_bytes);

  t.modeled_seconds = down + pipe + up;
  total_ += t;
  return t;
}

}  // namespace g6::hw
