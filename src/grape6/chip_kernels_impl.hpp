/// \file chip_kernels_impl.hpp
/// \brief The batched pipeline pass body, instantiated once per ISA level.
///
/// NOT a normal header: no include guard on purpose. Each per-ISA TU
/// (chip_kernels_<isa>.cpp) defines G6_CHIP_IMPL_NS and includes this file
/// exactly once under that level's compile flags (see CMakeLists.txt). The
/// pass body sits in an anonymous namespace — only the function pointer
/// escapes — so the linker can never swap in a copy compiled for a
/// different ISA. pipeline_interact_core is `static inline` for the same
/// reason (pipeline.hpp).

#include "grape6/chip_kernels.hpp"
#include "grape6/pipeline.hpp"

#if !defined(G6_CHIP_IMPL_NS)
#error "chip_kernels_impl.hpp must be included by a per-ISA chip-kernel TU"
#endif

namespace g6::hw::G6_CHIP_IMPL_NS {
namespace {

/// Stream the predicted j-memory once; each j is loaded once and served to
/// the whole latched i-group — the emulator's image of the hardware's
/// broadcast i-registers and virtual multiple pipelines.
void batched_pass_impl(const ChipJStream& js, const std::uint32_t* iid,
                       const Vec3* ix, const Vec3* iv, std::size_t ni,
                       double eps2, const FormatSpec& fmt,
                       ForceAccumulator* accum) {
  for (std::size_t jj = 0; jj < js.n; ++jj) {
    const std::uint32_t jid = js.id[jj];
    const double jm = js.m[jj];
    const Vec3 jx{js.x[jj], js.y[jj], js.z[jj]};
    const Vec3 jv{js.vx[jj], js.vy[jj], js.vz[jj]};
    for (std::size_t k = 0; k < ni; ++k)
      pipeline_interact_core(iid[k], ix[k], iv[k], jid, jm, jx, jv, eps2, fmt,
                             accum[k]);
  }
}

}  // namespace

ChipPassFn pass() { return &batched_pass_impl; }

}  // namespace g6::hw::G6_CHIP_IMPL_NS
