#include "grape6/chip_kernels.hpp"

namespace g6::hw {

namespace chip_kernels_scalar { ChipPassFn pass(); }
namespace chip_kernels_sse2 { ChipPassFn pass(); }
namespace chip_kernels_avx2 { ChipPassFn pass(); }
namespace chip_kernels_avx512 { ChipPassFn pass(); }

ChipPassFn chip_batched_pass(g6::nbody::SimdLevel level) {
  using g6::nbody::SimdLevel;
  switch (level) {
    case SimdLevel::kAvx512: return chip_kernels_avx512::pass();
    case SimdLevel::kAvx2: return chip_kernels_avx2::pass();
    case SimdLevel::kSse2: return chip_kernels_sse2::pass();
    case SimdLevel::kScalar: return chip_kernels_scalar::pass();
  }
  return chip_kernels_scalar::pass();
}

ChipPassFn active_chip_pass() {
  static const ChipPassFn fn = chip_batched_pass(g6::nbody::active_simd_level());
  return fn;
}

}  // namespace g6::hw
