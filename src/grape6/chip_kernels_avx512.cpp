/// AVX-512 rung of the chip-pass dispatch ladder (-mavx512f/dq/vl -mfma).
#define G6_CHIP_IMPL_NS chip_kernels_avx512
#include "grape6/chip_kernels_impl.hpp"
