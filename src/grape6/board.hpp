#pragma once
/// \file board.hpp
/// \brief A GRAPE-6 processor board: 32 chips sharing a broadcast i-particle
///        bus, with a hardware reduction tree that sums the chips' partial
///        forces (paper §4.2, §5.2, figure 8).
///
/// j-space is divided across the chips of a board; every chip sees the same
/// i-particles. The reduction tree merges partial ForceAccumulators pairwise
/// in fixed point — exactly, so the result is independent of the tree shape
/// and of the distribution of j-particles over chips.

#include <cstdint>
#include <vector>

#include "grape6/chip.hpp"

namespace g6::hw {

/// Address of a j-particle inside a board.
struct JAddress {
  std::uint32_t chip = 0;
  std::uint32_t slot = 0;
};

/// Functional + cycle model of one processor board.
class ProcessorBoard {
 public:
  explicit ProcessorBoard(const FormatSpec& fmt, int n_chips = kChipsPerBoard,
                          std::size_t jmem_per_chip = kJMemPerChip);

  int chip_count() const { return static_cast<int>(chips_.size()); }
  std::size_t j_count() const { return j_total_; }
  std::size_t capacity() const;

  /// Store a j-particle on the least-loaded chip; returns its address.
  JAddress store_j(const JParticle& p);

  /// Overwrite the j-particle at \p addr.
  void write_j(const JAddress& addr, const JParticle& p);
  const JParticle& read_j(const JAddress& addr) const;

  /// Run every chip's predictor for block time \p t.
  void predict_all(double t);

  /// Compute the partial force from this board's j-particles on each
  /// i-particle, returned as exact fixed-point accumulators (the output of
  /// the board's reduction tree).
  void compute(const std::vector<IParticle>& i_batch, double eps2,
               std::vector<ForceAccumulator>& out) const;

  /// Cycle cost of one compute() call with \p ni i-particles: the slowest
  /// chip's pipeline time plus the reduction-tree drain.
  std::uint64_t compute_cycles(std::size_t ni) const;

  /// Cycle cost of one predict_all() call (chips predict in parallel).
  std::uint64_t predict_cycles() const;

  /// Per-call counter bundle for the last compute (interactions, passes).
  HwCounters& counters() { return counters_; }
  const HwCounters& counters() const { return counters_; }

  const FormatSpec& format() const { return fmt_; }

 private:
  FormatSpec fmt_;
  std::vector<Chip> chips_;
  std::size_t j_total_ = 0;
  mutable HwCounters counters_;
};

}  // namespace g6::hw
