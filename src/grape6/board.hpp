#pragma once
/// \file board.hpp
/// \brief A GRAPE-6 processor board: 32 chips sharing a broadcast i-particle
///        bus, with a hardware reduction tree that sums the chips' partial
///        forces (paper §4.2, §5.2, figure 8).
///
/// j-space is divided across the chips of a board; every chip sees the same
/// i-particles. The reduction tree merges partial ForceAccumulators pairwise
/// in fixed point — exactly, so the result is independent of the tree shape
/// and of the distribution of j-particles over chips.

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "grape6/chip.hpp"

namespace g6::hw {

/// Address of a j-particle inside a board.
struct JAddress {
  std::uint32_t chip = 0;
  std::uint32_t slot = 0;
};

/// Functional + cycle model of one processor board.
class ProcessorBoard {
 public:
  explicit ProcessorBoard(const FormatSpec& fmt, int n_chips = kChipsPerBoard,
                          std::size_t jmem_per_chip = kJMemPerChip);

  int chip_count() const { return static_cast<int>(chips_.size()); }
  std::size_t j_count() const { return j_total_; }
  std::size_t capacity() const;

  /// Store a j-particle on the least-loaded chip; returns its address.
  JAddress store_j(const JParticle& p);

  /// Overwrite the j-particle at \p addr.
  void write_j(const JAddress& addr, const JParticle& p);
  const JParticle& read_j(const JAddress& addr) const;

  /// Run every chip's predictor for block time \p t.
  void predict_all(double t);

  /// Compute the partial force from this board's j-particles on each
  /// i-particle, returned as exact fixed-point accumulators (the output of
  /// the board's reduction tree). With fault stats attached (armed runs)
  /// every chip is self-tested afterwards: a transiently glitched chip has
  /// its partial recomputed in place; a permanently glitched chip is
  /// excluded and flagged for the machine to remap (see take_newly_dead).
  void compute(const std::vector<IParticle>& i_batch, double eps2,
               std::vector<ForceAccumulator>& out);

  /// Cycle cost of one compute() call with \p ni i-particles: the slowest
  /// chip's pipeline time plus the reduction-tree drain.
  std::uint64_t compute_cycles(std::size_t ni) const;

  /// Cycle cost of one predict_all() call (chips predict in parallel).
  std::uint64_t predict_cycles() const;

  /// Per-call counter bundle for the last compute (interactions, passes).
  HwCounters& counters() { return counters_; }
  const HwCounters& counters() const { return counters_; }

  const FormatSpec& format() const { return fmt_; }

  // --- reliability hooks ----------------------------------------------------

  /// Attach (or detach with nullptr) the fault counters. Non-null enables
  /// the post-compute self-test/recovery pass.
  void set_fault_stats(fault::FaultStats* stats) { fault_stats_ = stats; }

  /// Arm a pipeline glitch on \p chip for the next compute().
  void arm_step_fault(int chip, std::uint32_t bit, bool permanent);

  /// Flip one bit of the j-particle at (chip, slot) — SSRAM corruption.
  void corrupt_j(int chip, std::size_t slot, std::uint32_t bit);

  bool chip_dead(int chip) const { return chips_[static_cast<std::size_t>(chip)].dead(); }
  std::size_t chip_j_count(int chip) const {
    return chips_[static_cast<std::size_t>(chip)].j_count();
  }
  int alive_chip_count() const;

  /// True once after a compute() excluded a chip; reading clears the flag.
  /// The machine then remaps the lost j-particles and recomputes the block.
  bool take_newly_dead();

  /// Re-run the predictors after a repair; chips with valid caches early-out
  /// and no predict-op counters are charged (the fault layer accounts it).
  void repredict(double t);

 private:
  FormatSpec fmt_;
  std::vector<Chip> chips_;
  std::size_t j_total_ = 0;
  mutable HwCounters counters_;
  fault::FaultStats* fault_stats_ = nullptr;
  bool newly_dead_ = false;
};

}  // namespace g6::hw
