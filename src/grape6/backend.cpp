#include "grape6/backend.hpp"

#include <cmath>

#include "nbody/hermite.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace g6::hw {

using g6::nbody::ParticleSystem;

Grape6Backend::Grape6Backend(MachineConfig cfg, double eps, g6::util::ThreadPool* pool)
    : machine_(cfg, pool), eps_(eps) {
  G6_CHECK(eps >= 0.0, "softening must be non-negative");
}

JParticle Grape6Backend::to_j_particle(std::uint32_t i, const ParticleSystem& ps) const {
  return make_j_particle(i, ps.mass(i), ps.time(i), ps.pos(i), ps.vel(i),
                         ps.acc(i), ps.jerk(i), machine_.config().fmt);
}

void Grape6Backend::load(const ParticleSystem& ps) {
  const std::size_t n = ps.size();
  G6_CHECK(n <= machine_.capacity(),
           "particle count exceeds machine j-memory capacity");
  machine_.clear();
  std::vector<JParticle> jp(n);
  t0_.resize(n);
  x0_.resize(n);
  v0_.resize(n);
  a0_.resize(n);
  j0_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    jp[i] = to_j_particle(static_cast<std::uint32_t>(i), ps);
    t0_[i] = ps.time(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  machine_.load(jp);
}

void Grape6Backend::update(std::span<const std::uint32_t> indices,
                           const ParticleSystem& ps) {
  G6_TRACE_SPAN_CAT("j-update", "hw");
  for (std::uint32_t i : indices) {
    machine_.write_j(i, to_j_particle(i, ps));
    t0_[i] = ps.time(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  if (recorder_ != nullptr) {
    // Corrected particles travel host -> PCI -> LVDS into the j-memory.
    recorder_->add(g6::obs::Phase::kJUpdate,
                   static_cast<double>(indices.size()) * kJParticleBytes *
                       (1.0 / kPciBytesPerSec + 1.0 / kLvdsBytesPerSec));
  }
}

void Grape6Backend::compute(double t, std::span<const std::uint32_t> ilist,
                            std::span<g6::nbody::Force> out) {
  // The host predicts the i-particles (full doubles) and formats them for
  // the broadcast network.
  std::vector<Vec3> pos(ilist.size()), vel(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    const std::uint32_t i = ilist[k];
    G6_CHECK(i < t0_.size(), "i-particle index out of range");
    const auto pred =
        g6::nbody::hermite_predict(x0_[i], v0_[i], a0_[i], j0_[i], t - t0_[i]);
    pos[k] = pred.pos;
    vel[k] = pred.vel;
  }
  compute_states(t, ilist, pos, vel, out);
}

void Grape6Backend::compute_states(double t, std::span<const std::uint32_t> ilist,
                                   std::span<const g6::util::Vec3> pos,
                                   std::span<const g6::util::Vec3> vel,
                                   std::span<g6::nbody::Force> out) {
  G6_CHECK(out.size() == ilist.size() && pos.size() == ilist.size() &&
               vel.size() == ilist.size(),
           "i-state span size mismatch");
  const FormatSpec& fmt = machine_.config().fmt;
  {
    G6_TRACE_SPAN_CAT("predict", "hw");
    machine_.predict_all(t);
  }

  i_batch_.resize(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    G6_CHECK(ilist[k] < t0_.size(), "i-particle index out of range");
    i_batch_[k] = make_i_particle(ilist[k], pos[k], vel[k], fmt);
  }

  {
    G6_TRACE_SPAN_CAT("pipeline", "hw");
    machine_.compute(i_batch_, eps_ * eps_, accum_);
  }
  hw_seconds_ += machine_.predict_seconds() + machine_.pipeline_seconds(ilist.size());
  if (recorder_ != nullptr) {
    // The measured side of the paper's accounting: predictor and pipeline
    // from the machine's cycle counts, link phases from the wire formats
    // over PCI (host side) and LVDS (board broadcast / reduction return).
    const double ni = static_cast<double>(ilist.size());
    recorder_->add(g6::obs::Phase::kPredict, machine_.predict_seconds());
    recorder_->add(g6::obs::Phase::kPipeline,
                   machine_.pipeline_seconds(ilist.size()));
    recorder_->add(g6::obs::Phase::kIComm,
                   ni * kIParticleBytes *
                           (1.0 / kPciBytesPerSec + 1.0 / kLvdsBytesPerSec) +
                       kLvdsLatencySec);
    recorder_->add(g6::obs::Phase::kResultComm,
                   ni * kResultBytes *
                           (1.0 / kLvdsBytesPerSec + 1.0 / kPciBytesPerSec) +
                       kLvdsLatencySec);
  }

  for (std::size_t k = 0; k < ilist.size(); ++k) {
    out[k].acc = accum_[k].acc.to_vec3();
    out[k].jerk = accum_[k].jerk.to_vec3();
    out[k].pot = accum_[k].pot.to_double();
    // Last-line detection: corruption that slipped past CRC/self-test would
    // surface here as a non-finite acceleration.
    if (!std::isfinite(out[k].acc.x) || !std::isfinite(out[k].acc.y) ||
        !std::isfinite(out[k].acc.z) || !std::isfinite(out[k].pot)) {
      if (fault::FaultInjector* inj = machine_.fault_injector())
        inj->stats().range_guard_trips.fetch_add(1, std::memory_order_relaxed);
      g6::util::raise("non-finite acceleration returned for i-particle " +
                      std::to_string(ilist[k]));
    }
  }
}

}  // namespace g6::hw
