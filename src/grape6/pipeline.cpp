#include "grape6/pipeline.hpp"

#include <cmath>

namespace g6::hw {

JPredicted predict_j(const JParticle& j, double t, const FormatSpec& fmt) {
  const double dt = t - j.t0;
  const double dt2 = 0.5 * dt * dt;
  const double dt3 = dt * dt2 * (1.0 / 3.0);

  JPredicted out;
  out.id = j.id;
  out.mass = j.mass;

  // The polynomial increment is computed in the short-float datapath and
  // added to the fixed-point base position.
  const Vec3 dx{round_to_mantissa(j.v0.x * dt + j.a0.x * dt2 + j.j0.x * dt3,
                                  fmt.mantissa_bits),
                round_to_mantissa(j.v0.y * dt + j.a0.y * dt2 + j.j0.y * dt3,
                                  fmt.mantissa_bits),
                round_to_mantissa(j.v0.z * dt + j.a0.z * dt2 + j.j0.z * dt3,
                                  fmt.mantissa_bits)};
  out.x = FixedVec3::quantize(j.x0.to_vec3() + dx, fmt.pos_lsb);

  out.v = {round_to_mantissa(j.v0.x + j.a0.x * dt + j.j0.x * dt2, fmt.mantissa_bits),
           round_to_mantissa(j.v0.y + j.a0.y * dt + j.j0.y * dt2, fmt.mantissa_bits),
           round_to_mantissa(j.v0.z + j.a0.z * dt + j.j0.z * dt2, fmt.mantissa_bits)};
  return out;
}

void pipeline_interact(const IParticle& i, const JPredicted& j, double eps2,
                       const FormatSpec& fmt, ForceAccumulator& accum) {
  pipeline_interact_core(i.id, i.x.to_vec3(), i.v, j.id, j.mass, j.x.to_vec3(), j.v,
                         eps2, fmt, accum);
}

JParticle make_j_particle(std::uint32_t id, double mass, double t0, const Vec3& x,
                          const Vec3& v, const Vec3& a, const Vec3& j,
                          const FormatSpec& fmt) {
  JParticle p;
  p.id = id;
  p.mass = round_to_mantissa(mass, fmt.mantissa_bits);
  p.t0 = t0;
  p.x0 = FixedVec3::quantize(x, fmt.pos_lsb);
  auto shorten = [&](const Vec3& w) {
    return Vec3{round_to_mantissa(w.x, fmt.mantissa_bits),
                round_to_mantissa(w.y, fmt.mantissa_bits),
                round_to_mantissa(w.z, fmt.mantissa_bits)};
  };
  p.v0 = shorten(v);
  p.a0 = shorten(a);
  p.j0 = shorten(j);
  return p;
}

IParticle make_i_particle(std::uint32_t id, const Vec3& x, const Vec3& v,
                          const FormatSpec& fmt) {
  IParticle p;
  p.id = id;
  p.x = FixedVec3::quantize(x, fmt.pos_lsb);
  p.v = {round_to_mantissa(v.x, fmt.mantissa_bits),
         round_to_mantissa(v.y, fmt.mantissa_bits),
         round_to_mantissa(v.z, fmt.mantissa_bits)};
  return p;
}

}  // namespace g6::hw
