#pragma once
/// \file fabric.hpp
/// \brief The wired data path of one GRAPE-6 cluster (paper §5.1, figure 7):
///        four hosts, each with one network board and four processor boards,
///        the network boards cross-connected by cascade links so that any
///        host's i-particles reach all sixteen boards and the partial forces
///        reduce back through hardware.
///
/// Grape6Machine models the *functional* machine (j-distribution, pipelines,
/// exact reduction) with a closed-form cycle model; ClusterFabric models the
/// *routed* machine: every byte of a force request is walked across the PCI
/// link, the local network board, the cascade links and the board links,
/// with per-link byte counters and a store-and-forward time model. The two
/// produce bit-identical forces (same chips, same reduction algebra), which
/// the tests assert — the fabric adds the communication ledger.

#include <cstdint>
#include <vector>

#include "grape6/board.hpp"
#include "grape6/machine.hpp"  // GlobalJAddress
#include "grape6/netboard.hpp"

namespace g6::hw {

/// Per-link byte/time ledger of one fabric operation or lifetime.
struct FabricTraffic {
  std::uint64_t pci_bytes = 0;      ///< host <-> its network board
  std::uint64_t board_bytes = 0;    ///< network board <-> processor boards
  std::uint64_t cascade_bytes = 0;  ///< network board <-> network board
  double modeled_seconds = 0.0;     ///< critical-path link time

  FabricTraffic& operator+=(const FabricTraffic& o) {
    pci_bytes += o.pci_bytes;
    board_bytes += o.board_bytes;
    cascade_bytes += o.cascade_bytes;
    modeled_seconds += o.modeled_seconds;
    return *this;
  }
};

/// One GRAPE-6 cluster with explicit routing.
class ClusterFabric {
 public:
  /// \p hosts hosts, each with \p boards_per_host processor boards of
  /// \p chips_per_board chips. Defaults are the paper's cluster.
  ClusterFabric(FormatSpec fmt, int hosts = kHostsPerCluster,
                int boards_per_host = kBoardsPerHost,
                int chips_per_board = kChipsPerBoard,
                std::size_t jmem_per_chip = kJMemPerChip);

  int hosts() const { return hosts_; }
  int boards_per_host() const { return boards_per_host_; }
  std::size_t board_count() const { return boards_.size(); }
  std::size_t j_count() const { return addr_.size(); }
  std::size_t capacity() const;

  /// Partition the cluster (paper §4.3: "we can use a 4-host,
  /// 16-processor-board system as single entity, as two units, and as four
  /// separate units"). \p group_count must divide hosts(); hosts are split
  /// into contiguous groups, each an independent virtual machine with its
  /// own j-space. Group scoping is what the network-board broadcast /
  /// 2-way-multicast / point-to-point modes select in the real switch:
  /// cascade traffic never crosses a group boundary. Clears all j-memory.
  void set_partition(int group_count);

  int group_count() const { return group_count_; }
  int group_of_host(int host) const;

  /// Load particles into the j-space of \p group (round-robin across that
  /// group's boards). The single-group overload below loads group 0.
  void load_group(int group, std::span<const JParticle> particles);

  /// Load particles round-robin across every board in the cluster. The
  /// write travels host -> NB (-> cascade) -> board and is accounted.
  /// Particle k is owned by host (k mod hosts) — its writes originate there.
  void load(std::span<const JParticle> particles);

  /// Overwrite j-particle \p index (write routed from its owner host).
  void write_j(std::size_t index, const JParticle& p);
  const JParticle& read_j(std::size_t index) const;

  /// Predict every board to block time \p t.
  void predict_all(double t);

  /// Force request issued by \p host for its i-batch: broadcast the batch
  /// through the network boards to all boards of the cluster, compute,
  /// reduce back to the requesting host. Returns the exact fixed-point
  /// totals and accounts every link. predict_all(t) must have run.
  FabricTraffic compute(int host, const std::vector<IParticle>& i_batch,
                        double eps2, std::vector<ForceAccumulator>& out);

  /// Lifetime traffic ledger (sum over all operations).
  const FabricTraffic& traffic() const { return total_; }

  /// The network board of \p host (mode inspection / tests).
  NetworkBoard& netboard(int host) { return nbs_[static_cast<std::size_t>(host)]; }

  ProcessorBoard& board(std::size_t b) { return boards_[b]; }
  const ProcessorBoard& board(std::size_t b) const { return boards_[b]; }

 private:
  int hosts_per_group() const { return hosts_ / group_count_; }
  /// Hosts of \p group are [first_host, first_host + hosts_per_group).
  int first_host(int group) const { return group * hosts_per_group(); }

  FormatSpec fmt_;
  int hosts_;
  int boards_per_host_;
  int group_count_ = 1;
  std::vector<ProcessorBoard> boards_;  ///< host-major: board b belongs to
                                        ///< host b / boards_per_host
  std::vector<NetworkBoard> nbs_;       ///< one per host
  std::vector<GlobalJAddress> addr_;
  std::vector<int> group_of_j_;         ///< j index -> group
  std::vector<int> owner_host_;         ///< j index -> owning host
  std::vector<std::size_t> group_j_count_;
  LinkModel pci_{kPciBytesPerSec, kLvdsLatencySec};
  LinkModel lvds_{};
  FabricTraffic total_;
};

}  // namespace g6::hw
