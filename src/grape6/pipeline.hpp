#pragma once
/// \file pipeline.hpp
/// \brief Functional models of the two pipeline types on a GRAPE-6 chip
///        (paper figure 9): the force pipeline (one particle–particle
///        interaction per cycle) and the predictor pipeline (evaluates the
///        Hermite polynomials of j-particles).

#include <cmath>

#include "grape6/g6_types.hpp"

namespace g6::hw {

/// Predicted j-particle state, as produced by the on-chip predictor.
struct JPredicted {
  std::uint32_t id = 0;
  double mass = 0.0;
  FixedVec3 x;  ///< predicted position on the fixed-point grid
  Vec3 v;       ///< predicted velocity (short float)
};

/// Predictor pipeline: evaluate the position/velocity polynomials
///   x(t) = x0 + v0 dt + a0 dt^2/2 + j0 dt^3/6
///   v(t) = v0 + a0 dt + j0 dt^2/2
/// with the polynomial terms computed in short floats and the result
/// re-quantised to the position grid.
JPredicted predict_j(const JParticle& j, double t, const FormatSpec& fmt);

/// Force pipeline: one softened particle–particle interaction. Both particle
/// positions sit on the fixed-point grid; their difference is exact. The
/// arithmetic datapath works in shortened floats (modelled by rounding the
/// per-interaction contributions to fmt.mantissa_bits), and the results are
/// accumulated exactly in the fixed-point registers of \p accum.
///
/// Interactions with j.id == i.id are suppressed (the hardware's
/// self-interaction cut); they still occupy a pipeline cycle.
void pipeline_interact(const IParticle& i, const JPredicted& j, double eps2,
                       const FormatSpec& fmt, ForceAccumulator& accum);

/// The datapath of pipeline_interact with the fixed-point -> double position
/// conversions already done by the caller. Chip::compute's batched path hoists
/// those conversions out of the pair loop (once per i per pass, once per j per
/// predict); since to_vec3() is a pure function of the register content, the
/// per-interaction arithmetic — and therefore every accumulator register — is
/// bit-identical to the unbatched path (enforced by the conformance tests).
///
/// `static inline`: the per-ISA batched-pass TUs (chip_kernels_<isa>.cpp)
/// each compile this core with their own vector flags, and internal linkage
/// stops the linker from collapsing those copies onto one ISA's code. The
/// double arithmetic itself is IEEE-identical at every level (and the
/// fixed-point accumulation is integer), so results don't depend on which
/// rung runs — only the surrounding loop's vectorization does.
static inline void pipeline_interact_core(std::uint32_t i_id, const Vec3& ix, const Vec3& iv,
                                   std::uint32_t j_id, double j_mass, const Vec3& jx,
                                   const Vec3& jv, double eps2, const FormatSpec& fmt,
                                   ForceAccumulator& accum) {
  if (i_id == j_id) return;  // self-interaction cut (still costs the cycle)

  const Vec3 dr = jx - ix;
  const Vec3 dv = jv - iv;

  const double r2 = norm2(dr) + eps2;
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double mr3inv = j_mass * rinv * rinv2;
  const double rv = dot(dr, dv);

  const int mb = fmt.mantissa_bits;
  const Vec3 da = mr3inv * dr;
  const Vec3 dj = mr3inv * (dv - 3.0 * (rv * rinv2) * dr);

  accum.acc.accumulate({round_to_mantissa(da.x, mb), round_to_mantissa(da.y, mb),
                        round_to_mantissa(da.z, mb)});
  accum.jerk.accumulate({round_to_mantissa(dj.x, mb), round_to_mantissa(dj.y, mb),
                         round_to_mantissa(dj.z, mb)});
  accum.pot += g6::util::Fixed64::quantize(
      round_to_mantissa(-j_mass * rinv, mb), accum.pot.lsb());
}

/// Convert a particle state to the i-particle wire format (quantise the
/// position, shorten the velocity) — the host does this before broadcast.
IParticle make_i_particle(std::uint32_t id, const Vec3& x, const Vec3& v,
                          const FormatSpec& fmt);

/// Format a full Hermite state into the j-particle memory image (quantised
/// position, shortened velocity/acc/jerk/mass) — what every host-side
/// driver does before a j-memory write.
JParticle make_j_particle(std::uint32_t id, double mass, double t0, const Vec3& x,
                          const Vec3& v, const Vec3& a, const Vec3& j,
                          const FormatSpec& fmt);

}  // namespace g6::hw
