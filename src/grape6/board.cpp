#include "grape6/board.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::hw {

ProcessorBoard::ProcessorBoard(const FormatSpec& fmt, int n_chips,
                               std::size_t jmem_per_chip)
    : fmt_(fmt) {
  G6_CHECK(n_chips > 0, "board needs at least one chip");
  chips_.reserve(static_cast<std::size_t>(n_chips));
  for (int c = 0; c < n_chips; ++c) chips_.emplace_back(fmt, jmem_per_chip);
}

std::size_t ProcessorBoard::capacity() const {
  std::size_t cap = 0;
  for (const Chip& c : chips_) cap += c.capacity();
  return cap;
}

JAddress ProcessorBoard::store_j(const JParticle& p) {
  // Least-loaded chip keeps the per-chip j-counts balanced (the critical
  // path is the fullest chip).
  std::size_t best = 0;
  for (std::size_t c = 1; c < chips_.size(); ++c)
    if (chips_[c].j_count() < chips_[best].j_count()) best = c;
  const std::size_t slot = chips_[best].store_j(p);
  ++j_total_;
  return {static_cast<std::uint32_t>(best), static_cast<std::uint32_t>(slot)};
}

void ProcessorBoard::write_j(const JAddress& addr, const JParticle& p) {
  G6_CHECK(addr.chip < chips_.size(), "chip index out of range");
  chips_[addr.chip].write_j(addr.slot, p);
}

const JParticle& ProcessorBoard::read_j(const JAddress& addr) const {
  G6_CHECK(addr.chip < chips_.size(), "chip index out of range");
  return chips_[addr.chip].read_j(addr.slot);
}

void ProcessorBoard::predict_all(double t) {
  for (Chip& c : chips_) c.predict_all(t);
  counters_.predict_ops += j_total_;
}

void ProcessorBoard::compute(const std::vector<IParticle>& i_batch, double eps2,
                             std::vector<ForceAccumulator>& out) const {
  G6_CHECK(out.size() == i_batch.size(), "output batch size mismatch");

  // Each chip produces a partial accumulator per i-particle...
  std::vector<std::vector<ForceAccumulator>> partial(chips_.size());
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    partial[c].assign(i_batch.size(), ForceAccumulator(fmt_));
    chips_[c].compute(i_batch, eps2, partial[c]);
  }

  // ...and the reduction tree merges them pairwise. Fixed-point addition is
  // exact, so this equals any other summation order bit-for-bit.
  std::size_t width = chips_.size();
  while (width > 1) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t c = 0; c + half < width; ++c)
      for (std::size_t k = 0; k < i_batch.size(); ++k)
        partial[c][k] += partial[c + half][k];
    width = half;
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += partial[0][k];

  counters_.interactions +=
      static_cast<std::uint64_t>(i_batch.size()) * j_total_;
  counters_.passes += (i_batch.size() + kIPerChipPass - 1) / kIPerChipPass;
  counters_.pipe_cycles += compute_cycles(i_batch.size());
}

std::uint64_t ProcessorBoard::compute_cycles(std::size_t ni) const {
  std::uint64_t worst = 0;
  for (const Chip& c : chips_) worst = std::max(worst, c.compute_cycles(ni));
  // Reduction tree: log2(chips) stages, a few cycles each, per pass.
  const std::uint64_t passes = (ni + kIPerChipPass - 1) / kIPerChipPass;
  std::uint64_t stages = 0;
  for (std::size_t w = chips_.size(); w > 1; w = (w + 1) / 2) ++stages;
  return worst + passes * stages * 4;
}

std::uint64_t ProcessorBoard::predict_cycles() const {
  std::uint64_t worst = 0;
  for (const Chip& c : chips_) worst = std::max(worst, c.predict_cycles());
  return worst;
}

}  // namespace g6::hw
