#include "grape6/board.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::hw {

ProcessorBoard::ProcessorBoard(const FormatSpec& fmt, int n_chips,
                               std::size_t jmem_per_chip)
    : fmt_(fmt) {
  G6_CHECK(n_chips > 0, "board needs at least one chip");
  chips_.reserve(static_cast<std::size_t>(n_chips));
  for (int c = 0; c < n_chips; ++c) chips_.emplace_back(fmt, jmem_per_chip);
}

std::size_t ProcessorBoard::capacity() const {
  std::size_t cap = 0;
  for (const Chip& c : chips_)
    if (!c.dead()) cap += c.capacity();
  return cap;
}

JAddress ProcessorBoard::store_j(const JParticle& p) {
  // Least-loaded alive chip keeps the per-chip j-counts balanced (the
  // critical path is the fullest chip).
  std::size_t best = chips_.size();
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    if (chips_[c].dead()) continue;
    if (best == chips_.size() || chips_[c].j_count() < chips_[best].j_count())
      best = c;
  }
  G6_CHECK(best < chips_.size(), "no alive chip on board");
  const std::size_t slot = chips_[best].store_j(p);
  ++j_total_;
  return {static_cast<std::uint32_t>(best), static_cast<std::uint32_t>(slot)};
}

void ProcessorBoard::write_j(const JAddress& addr, const JParticle& p) {
  G6_CHECK(addr.chip < chips_.size(), "chip index out of range");
  chips_[addr.chip].write_j(addr.slot, p);
}

const JParticle& ProcessorBoard::read_j(const JAddress& addr) const {
  G6_CHECK(addr.chip < chips_.size(), "chip index out of range");
  return chips_[addr.chip].read_j(addr.slot);
}

void ProcessorBoard::predict_all(double t) {
  for (Chip& c : chips_)
    if (!c.dead()) c.predict_all(t);
  counters_.predict_ops += j_total_;
}

void ProcessorBoard::compute(const std::vector<IParticle>& i_batch, double eps2,
                             std::vector<ForceAccumulator>& out) {
  G6_CHECK(out.size() == i_batch.size(), "output batch size mismatch");

  // Each chip produces a partial accumulator per i-particle (a dead chip
  // contributes zeros — its j-particles were remapped when it was excluded).
  std::vector<std::vector<ForceAccumulator>> partial(chips_.size());
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    partial[c].assign(i_batch.size(), ForceAccumulator(fmt_));
    if (chips_[c].dead()) continue;
    chips_[c].compute(i_batch, eps2, partial[c]);
  }

  // Detection pass (armed runs only): run every chip's sentinel self-test.
  // A transient glitch is repaired by recomputing that chip's partial — the
  // recompute is charged into the recovery time model. A permanent glitch
  // excludes the chip; the machine sees take_newly_dead(), remaps its
  // j-particles and redoes the block, so no force contribution is lost.
  if (fault_stats_ != nullptr) {
    for (std::size_t c = 0; c < chips_.size(); ++c) {
      if (chips_[c].dead() || chips_[c].self_test()) continue;
      fault_stats_->selftest_failures.fetch_add(1, std::memory_order_relaxed);
      if (chips_[c].glitch_permanent()) {
        j_total_ -= chips_[c].j_count();
        chips_[c].set_dead();
        newly_dead_ = true;
        fault_stats_->excluded_chips.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t k = 0; k < i_batch.size(); ++k)
          partial[c][k] = ForceAccumulator(fmt_);
      } else {
        chips_[c].clear_glitch();
        partial[c].assign(i_batch.size(), ForceAccumulator(fmt_));
        chips_[c].compute(i_batch, eps2, partial[c]);
        fault_stats_->recomputed_chip_blocks.fetch_add(1, std::memory_order_relaxed);
        fault_stats_->add_recovery_seconds(
            static_cast<double>(chips_[c].compute_cycles(i_batch.size())) /
            kClockHz);
      }
    }
  }

  // ...and the reduction tree merges them pairwise. Fixed-point addition is
  // exact, so this equals any other summation order bit-for-bit.
  std::size_t width = chips_.size();
  while (width > 1) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t c = 0; c + half < width; ++c)
      for (std::size_t k = 0; k < i_batch.size(); ++k)
        partial[c][k] += partial[c + half][k];
    width = half;
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += partial[0][k];

  counters_.interactions +=
      static_cast<std::uint64_t>(i_batch.size()) * j_total_;
  counters_.passes += (i_batch.size() + kIPerChipPass - 1) / kIPerChipPass;
  counters_.pipe_cycles += compute_cycles(i_batch.size());
}

std::uint64_t ProcessorBoard::compute_cycles(std::size_t ni) const {
  std::uint64_t worst = 0;
  for (const Chip& c : chips_)
    if (!c.dead()) worst = std::max(worst, c.compute_cycles(ni));
  // Reduction tree: log2(chips) stages, a few cycles each, per pass.
  const std::uint64_t passes = (ni + kIPerChipPass - 1) / kIPerChipPass;
  std::uint64_t stages = 0;
  for (std::size_t w = chips_.size(); w > 1; w = (w + 1) / 2) ++stages;
  return worst + passes * stages * 4;
}

std::uint64_t ProcessorBoard::predict_cycles() const {
  std::uint64_t worst = 0;
  for (const Chip& c : chips_)
    if (!c.dead()) worst = std::max(worst, c.predict_cycles());
  return worst;
}

int ProcessorBoard::alive_chip_count() const {
  int n = 0;
  for (const Chip& c : chips_)
    if (!c.dead()) ++n;
  return n;
}

bool ProcessorBoard::take_newly_dead() {
  const bool v = newly_dead_;
  newly_dead_ = false;
  return v;
}

void ProcessorBoard::arm_step_fault(int chip, std::uint32_t bit, bool permanent) {
  G6_CHECK(chip >= 0 && chip < chip_count(), "chip index out of range");
  chips_[static_cast<std::size_t>(chip)].arm_glitch(bit, permanent);
}

void ProcessorBoard::corrupt_j(int chip, std::size_t slot, std::uint32_t bit) {
  G6_CHECK(chip >= 0 && chip < chip_count(), "chip index out of range");
  chips_[static_cast<std::size_t>(chip)].corrupt_j(slot, bit);
}

void ProcessorBoard::repredict(double t) {
  // Post-repair predictor pass. Chips whose caches are still valid early-out
  // inside Chip::predict_all; the cost is charged by the fault layer as
  // recovery time, not into the per-step predict_ops counters.
  for (Chip& c : chips_)
    if (!c.dead()) c.predict_all(t);
}

}  // namespace g6::hw
