#pragma once
/// \file backend.hpp
/// \brief Grape6Backend — plugs the GRAPE-6 machine model into the
///        integrator's ForceBackend interface, playing the role of the real
///        host library: it mirrors particle states for i-particle
///        prediction, formats data into the hardware number formats, and
///        keeps the modeled hardware time.

#include <memory>
#include <vector>

#include "grape6/machine.hpp"
#include "nbody/force.hpp"

namespace g6::hw {

/// ForceBackend implementation on top of Grape6Machine.
class Grape6Backend final : public g6::nbody::ForceBackend {
 public:
  /// \p cfg machine topology/formats, \p eps softening length. \p pool runs
  /// the emulated boards concurrently (nullptr = the process-wide shared
  /// pool) — share it with the integrator so all layers use one set of
  /// worker threads.
  Grape6Backend(MachineConfig cfg, double eps, g6::util::ThreadPool* pool = nullptr);

  std::string name() const override { return "grape6"; }
  void load(const g6::nbody::ParticleSystem& ps) override;
  void update(std::span<const std::uint32_t> indices,
              const g6::nbody::ParticleSystem& ps) override;
  void compute(double t, std::span<const std::uint32_t> ilist,
               std::span<g6::nbody::Force> out) override;
  void compute_states(double t, std::span<const std::uint32_t> ilist,
                      std::span<const g6::util::Vec3> pos,
                      std::span<const g6::util::Vec3> vel,
                      std::span<g6::nbody::Force> out) override;
  std::uint64_t interaction_count() const override {
    return machine_.counters().interactions;
  }
  double softening() const override { return eps_; }

  /// The hardware backend charges its own phases into the step recorder:
  /// predictor and pipeline time from the machine's cycle accounting, link
  /// phases (i-particle, result, j-update) from the wire formats and the
  /// PCI/LVDS bandwidths — the measured side of the §4 accounting.
  bool records_phases() const override { return true; }

  /// Modeled hardware wall time (predictor + pipelines) accumulated over all
  /// compute() calls — what the performance benches combine with the
  /// communication model.
  double modeled_hw_seconds() const { return hw_seconds_; }

  Grape6Machine& machine() { return machine_; }
  const Grape6Machine& machine() const { return machine_; }

  /// Attach (or detach with nullptr) a fault injector — forwarded to the
  /// machine. Also arms the NaN/overflow guard accounting on returned
  /// accelerations.
  void set_fault_injector(fault::FaultInjector* injector) {
    machine_.set_fault_injector(injector);
  }
  fault::FaultInjector* fault_injector() const {
    return machine_.fault_injector();
  }

 private:
  /// Format one host particle into the j-particle wire/memory image.
  JParticle to_j_particle(std::uint32_t i,
                          const g6::nbody::ParticleSystem& ps) const;

  Grape6Machine machine_;
  double eps_;
  double hw_seconds_ = 0.0;

  // Host-side mirror used to predict i-particles (the host keeps full
  // double-precision states; only the wire format is reduced).
  std::vector<double> t0_;
  std::vector<g6::util::Vec3> x0_, v0_, a0_, j0_;

  std::vector<IParticle> i_batch_;
  std::vector<ForceAccumulator> accum_;
};

}  // namespace g6::hw
