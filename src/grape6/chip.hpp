#pragma once
/// \file chip.hpp
/// \brief One GRAPE-6 processor chip: six force pipelines (virtually
///        multiplexed to 48 i-particles per pass), one predictor pipeline,
///        and the attached SSRAM j-particle memory (paper §5.2, figure 9).

#include <cstdint>
#include <vector>

#include "grape6/pipeline.hpp"

namespace g6::hw {

/// Functional + cycle model of one processor chip.
class Chip {
 public:
  explicit Chip(const FormatSpec& fmt, std::size_t jmem_capacity = kJMemPerChip)
      : fmt_(fmt), capacity_(jmem_capacity) {}

  /// Number of j-particles currently resident.
  std::size_t j_count() const { return jmem_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Append a j-particle; returns its local address. Throws when the SSRAM
  /// is full (the host library is responsible for partitioning).
  std::size_t store_j(const JParticle& p);

  /// Overwrite the j-particle at local address \p addr.
  void write_j(std::size_t addr, const JParticle& p);

  /// Read back a j-particle image (diagnostics/tests).
  const JParticle& read_j(std::size_t addr) const;

  /// Run the predictor pipeline over the whole j-memory for block time \p t.
  /// Costs j_count() predictor cycles. Results are cached until the next
  /// predict_all or j write.
  void predict_all(double t);

  /// Compute forces from this chip's j-particles on the given i-particles,
  /// adding into accum[k] for i_batch[k]. predict_all(t) must have run for
  /// the current time. i_batch may be any size; the cycle model charges
  /// ceil(size / 48) passes over the j-memory.
  ///
  /// Two evaluation orders are implemented. The batched path (default, like
  /// the hardware) walks i-particles in passes of kIPerChipPass and streams
  /// the predicted j-memory through each pass, with the fixed-point -> double
  /// position conversions hoisted out of the pair loop. The unbatched
  /// reference path evaluates one i against all j at a time. The fixed-point
  /// accumulators make the two bit-identical (order-independent addition);
  /// the conformance tests enforce it. Select with set_batched() or the
  /// G6_GRAPE_BATCHED environment variable (set to 0 to disable).
  void compute(const std::vector<IParticle>& i_batch, double eps2,
               std::vector<ForceAccumulator>& accum) const;

  /// Override the batched/unbatched selection (tests compare the two paths).
  void set_batched(bool on) { batched_ = on; }
  bool batched() const { return batched_; }

  /// Pipeline cycles this chip needs for \p ni i-particles against its
  /// current j-count: passes * (kVmp * nj + latency).
  std::uint64_t compute_cycles(std::size_t ni) const;

  /// Predictor cycles for one predict_all call.
  std::uint64_t predict_cycles() const { return jmem_.size(); }

  const FormatSpec& format() const { return fmt_; }

 private:
  /// Predicted j-memory in structure-of-arrays layout with the fixed-point
  /// positions already converted to doubles — filled once per predict_all,
  /// read j-outer by the batched compute path.
  struct PredictedSoA {
    std::vector<std::uint32_t> id;
    std::vector<double> m, x, y, z, vx, vy, vz;
    void resize(std::size_t n);
  };

  static bool batched_from_env();
  void compute_batched(const std::vector<IParticle>& i_batch, double eps2,
                       std::vector<ForceAccumulator>& accum) const;

  FormatSpec fmt_;
  std::size_t capacity_;
  std::vector<JParticle> jmem_;
  std::vector<JPredicted> predicted_;
  PredictedSoA soa_;
  double predicted_time_ = 0.0;
  bool predictions_valid_ = false;
  bool batched_ = batched_from_env();
};

}  // namespace g6::hw
