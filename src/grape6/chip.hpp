#pragma once
/// \file chip.hpp
/// \brief One GRAPE-6 processor chip: six force pipelines (virtually
///        multiplexed to 48 i-particles per pass), one predictor pipeline,
///        and the attached SSRAM j-particle memory (paper §5.2, figure 9).

#include <cstdint>
#include <vector>

#include "grape6/pipeline.hpp"

namespace g6::hw {

/// Functional + cycle model of one processor chip.
class Chip {
 public:
  explicit Chip(const FormatSpec& fmt, std::size_t jmem_capacity = kJMemPerChip);

  /// Number of j-particles currently resident.
  std::size_t j_count() const { return jmem_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Append a j-particle; returns its local address. Throws when the SSRAM
  /// is full (the host library is responsible for partitioning).
  std::size_t store_j(const JParticle& p);

  /// Overwrite the j-particle at local address \p addr.
  void write_j(std::size_t addr, const JParticle& p);

  /// Read back a j-particle image (diagnostics/tests).
  const JParticle& read_j(std::size_t addr) const;

  /// Run the predictor pipeline over the whole j-memory for block time \p t.
  /// Costs j_count() predictor cycles. Results are cached until the next
  /// predict_all or j write.
  void predict_all(double t);

  /// Compute forces from this chip's j-particles on the given i-particles,
  /// adding into accum[k] for i_batch[k]. predict_all(t) must have run for
  /// the current time. i_batch may be any size; the cycle model charges
  /// ceil(size / 48) passes over the j-memory.
  ///
  /// Two evaluation orders are implemented. The batched path (default, like
  /// the hardware) walks i-particles in passes of kIPerChipPass and streams
  /// the predicted j-memory through each pass, with the fixed-point -> double
  /// position conversions hoisted out of the pair loop. The unbatched
  /// reference path evaluates one i against all j at a time. The fixed-point
  /// accumulators make the two bit-identical (order-independent addition);
  /// the conformance tests enforce it. Select with set_batched() or the
  /// G6_GRAPE_BATCHED environment variable (set to 0 to disable).
  void compute(const std::vector<IParticle>& i_batch, double eps2,
               std::vector<ForceAccumulator>& accum) const;

  /// Override the batched/unbatched selection (tests compare the two paths).
  void set_batched(bool on) { batched_ = on; }
  bool batched() const { return batched_; }

  // --- reliability hooks (fault injection & detection) ----------------------

  /// Flip one bit of the stored j-particle at \p slot (SSRAM corruption).
  /// Invalidates the prediction cache — the predictor re-reads the SSRAM.
  void corrupt_j(std::size_t slot, std::uint32_t bit);

  /// Arm a pipeline glitch for subsequent compute() calls: one bit of one
  /// output accumulator is flipped, and the self-test vector fails, until
  /// clear_glitch() (transient) or the chip is excluded (permanent).
  void arm_glitch(std::uint32_t bit, bool permanent);
  void clear_glitch() { glitch_armed_ = false; }
  bool glitch_armed() const { return glitch_armed_; }
  bool glitch_permanent() const { return glitch_permanent_; }

  /// Permanently exclude this chip (a defective die, paper §8 operations).
  void set_dead() { dead_ = true; }
  bool dead() const { return dead_; }

  /// GRAPE-style self-test: run the sentinel i/j pair through the force
  /// pipeline and compare the fixed-point registers against the signature
  /// precomputed at construction. A glitched or dead chip fails.
  bool self_test() const;

  /// Pipeline cycles this chip needs for \p ni i-particles against its
  /// current j-count: passes * (kVmp * nj + latency).
  std::uint64_t compute_cycles(std::size_t ni) const;

  /// Predictor cycles for one predict_all call.
  std::uint64_t predict_cycles() const { return jmem_.size(); }

  const FormatSpec& format() const { return fmt_; }

 private:
  /// Predicted j-memory in structure-of-arrays layout with the fixed-point
  /// positions already converted to doubles — filled once per predict_all,
  /// read j-outer by the batched compute path.
  struct PredictedSoA {
    std::vector<std::uint32_t> id;
    std::vector<double> m, x, y, z, vx, vy, vz;
    void resize(std::size_t n);
  };

  static bool batched_from_env();
  void compute_batched(const std::vector<IParticle>& i_batch, double eps2,
                       std::vector<ForceAccumulator>& accum) const;
  /// Run the sentinel pair through the pipeline (the self-test evaluation).
  ForceAccumulator selftest_vector() const;
  /// Corrupt one accumulator of a finished batch — the armed glitch.
  void apply_glitch(std::vector<ForceAccumulator>& accum) const;

  FormatSpec fmt_;
  std::size_t capacity_;
  std::vector<JParticle> jmem_;
  std::vector<JPredicted> predicted_;
  PredictedSoA soa_;
  double predicted_time_ = 0.0;
  bool predictions_valid_ = false;
  bool batched_ = batched_from_env();
  bool glitch_armed_ = false;
  bool glitch_permanent_ = false;
  std::uint32_t glitch_bit_ = 0;
  bool dead_ = false;
  std::int64_t sig_[7] = {};  ///< sentinel signature registers (acc, jerk, pot)
};

}  // namespace g6::hw
