#pragma once
/// \file g6_types.hpp
/// \brief Architectural constants and number formats of the GRAPE-6 model.
///
/// Constants follow the paper (§5): 90 MHz pipeline clock, six force
/// pipelines per chip, 57 floating-point operations charged per interaction
/// (38 force + 19 jerk — the Gordon Bell convention), 32 chips per processor
/// board, 4 boards per host, 4 hosts per cluster, 4 clusters. Theoretical
/// peak of the full machine: 2048 chips * 6 pipes * 90 MHz * 57 ops
/// = 63.0e12 ops/s (the paper quotes 63.4 Tflops with its rounding).
///
/// Number formats: GRAPE-6 keeps particle positions and force accumulators
/// in 64-bit fixed point and runs the pipeline datapaths in shortened
/// floating point. We model this as: positions quantised to a fixed-point
/// grid, per-interaction results rounded to a reduced mantissa, and
/// accumulation performed exactly in 64-bit fixed point (hence bit-identical
/// results under any summation order — the property the hardware reduction
/// trees rely on).

#include <cstdint>

#include "obs/metrics.hpp"
#include "util/fixed_point.hpp"
#include "util/vec3.hpp"

namespace g6::hw {

using g6::util::FixedVec3;
using g6::util::Vec3;

// --- Gordon Bell operation-counting convention (paper §5.2) ---------------
inline constexpr int kOpsPerForce = 38;
inline constexpr int kOpsPerJerk = 19;
inline constexpr int kOpsPerInteraction = kOpsPerForce + kOpsPerJerk;  // 57

// --- Chip micro-architecture (paper §5.2, figure 9) -----------------------
inline constexpr double kClockHz = 90.0e6;   ///< pipeline clock
inline constexpr int kPipesPerChip = 6;      ///< force pipelines per chip
/// Virtual multi-pipeline factor: each physical pipeline time-multiplexes
/// this many i-particles, so a chip serves kPipesPerChip * kVmp i-particles
/// per pass over its j-memory (GRAPE-6 used 8).
inline constexpr int kVmp = 8;
inline constexpr int kIPerChipPass = kPipesPerChip * kVmp;  // 48
/// Pipeline fill/drain latency per pass, in cycles.
inline constexpr int kPipelineLatency = 56;
/// j-particle memory capacity per chip (SSRAM).
inline constexpr std::size_t kJMemPerChip = 16384;

// --- Board / system organisation (paper §5.1–5.3) -------------------------
inline constexpr int kChipsPerBoard = 32;
inline constexpr int kBoardsPerHost = 4;
inline constexpr int kHostsPerCluster = 4;
inline constexpr int kClusters = 4;

/// Peak interaction rate of one chip (interactions per second).
inline constexpr double kChipInteractionsPerSec =
    static_cast<double>(kPipesPerChip) * kClockHz;

/// Peak speed of one chip in flops (30.78e9; paper: "30.7 Gflops").
inline constexpr double kChipPeakFlops =
    kChipInteractionsPerSec * kOpsPerInteraction;

// --- Link speeds (paper §5.2–5.3) ------------------------------------------
inline constexpr double kLvdsBytesPerSec = 90.0e6;   ///< board/NB link, 90 MB/s
inline constexpr double kPciBytesPerSec = 133.0e6;   ///< host PCI bus (32b/33MHz)
inline constexpr double kGbeBytesPerSec = 125.0e6;   ///< Gigabit Ethernet peak
inline constexpr double kGbeLatencySec = 60.0e-6;    ///< per-message GbE latency
inline constexpr double kLvdsLatencySec = 2.0e-6;    ///< per-transfer LVDS latency

// --- Wire formats (bytes per particle on the links) ------------------------
/// i-particle packet: fixed-point position (3*8) + velocity (3*8) + id/eps.
inline constexpr std::size_t kIParticleBytes = 56;
/// force result packet: acc (3*8) + jerk (3*8) + potential (8).
inline constexpr std::size_t kResultBytes = 56;
/// j-particle packet: mass, t0, x (3*8), v (3*8), a (3*8), jerk (3*8) + id.
inline constexpr std::size_t kJParticleBytes = 116;

// --- Number formats ---------------------------------------------------------
/// Scaling configuration of the fixed-point and short-float datapaths.
/// The host library chooses these for a given simulation (as the real
/// library does through its unit-scaling call).
struct FormatSpec {
  double pos_lsb = 0x1p-50;   ///< position grid: ±2^13 length units of range
  double acc_lsb = 0x1p-60;   ///< acceleration accumulator grid (range ±8)
  double jerk_lsb = 0x1p-60;  ///< jerk accumulator grid
  double pot_lsb = 0x1p-56;   ///< potential accumulator grid (range ±128)
  int mantissa_bits = 24;     ///< short-float mantissa width in the pipeline

  /// A format scaled for a heliocentric disk of the given extent and
  /// characteristic acceleration (leaves ~2^13 of headroom above, and
  /// resolution ~2^-47 of the characteristic scale below).
  static FormatSpec for_scales(double length_scale, double acc_scale);
};

/// Exact-width double rounding used by the pipeline model.
using g6::util::round_to_mantissa;

/// The j-particle memory image: everything the predictor pipeline needs.
/// The host writes this after every corrector step of the particle.
struct JParticle {
  std::uint32_t id = 0;   ///< identity, used for self-interaction cut
  double mass = 0.0;
  double t0 = 0.0;        ///< time of validity of the polynomial
  FixedVec3 x0;           ///< position, 64-bit fixed point
  Vec3 v0, a0, j0;        ///< velocity / acceleration / jerk (short floats)
};

/// An i-particle as sent down the broadcast network: already predicted to
/// the block time by the host, position on the fixed-point grid.
struct IParticle {
  std::uint32_t id = 0;
  FixedVec3 x;  ///< predicted position (fixed point)
  Vec3 v;       ///< predicted velocity (short float)
};

/// Per-i-particle force accumulation registers (fixed point — exact and
/// order-independent under merging).
struct ForceAccumulator {
  FixedVec3 acc;
  FixedVec3 jerk;
  g6::util::Fixed64 pot;

  explicit ForceAccumulator(const FormatSpec& fmt = {})
      : acc(fmt.acc_lsb), jerk(fmt.jerk_lsb),
        pot(g6::util::Fixed64::quantize(0.0, fmt.pot_lsb)) {}

  /// Reduction-tree merge: exact fixed-point addition.
  ForceAccumulator& operator+=(const ForceAccumulator& o) {
    acc += o.acc;
    jerk += o.jerk;
    pot += o.pot;
    return *this;
  }

  friend bool operator==(const ForceAccumulator&, const ForceAccumulator&) = default;
};

/// Hardware activity counters (cycles and link bytes) accumulated by the
/// machine model; the performance benches convert these to seconds/Tflops.
struct HwCounters {
  std::uint64_t interactions = 0;      ///< particle-particle interactions
  std::uint64_t predict_ops = 0;       ///< j-particles predicted
  std::uint64_t pipe_cycles = 0;       ///< critical-path pipeline cycles
  std::uint64_t passes = 0;            ///< i-batch passes over j-memory
  std::uint64_t i_particles_sent = 0;  ///< i-particles broadcast
  std::uint64_t results_returned = 0;  ///< force packets returned
  std::uint64_t j_writes = 0;          ///< j-memory updates

  HwCounters& operator+=(const HwCounters& o) {
    interactions += o.interactions;
    predict_ops += o.predict_ops;
    pipe_cycles += o.pipe_cycles;
    passes += o.passes;
    i_particles_sent += o.i_particles_sent;
    results_returned += o.results_returned;
    j_writes += o.j_writes;
    return *this;
  }

  friend bool operator==(const HwCounters&, const HwCounters&) = default;
};

/// Publish the counters into a metrics registry under `g6.hw.*` so one
/// snapshot captures the hardware model alongside the integrator and
/// transport counters (docs/OBSERVABILITY.md).
void publish_metrics(const HwCounters& counters,
                     g6::obs::MetricsRegistry& registry);

}  // namespace g6::hw
