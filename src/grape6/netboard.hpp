#pragma once
/// \file netboard.hpp
/// \brief The GRAPE-6 network board (NB) model (paper §4.3, §5.2, figures
///        5 and 10): a configurable fan-out/fan-in switch between one uplink
///        (host or parent NB) and four downlinks (processor boards or child
///        NBs), with a hardware reduction unit for the upward force path.
///
/// The network can run in three modes — broadcast, 2-way multicast and
/// point-to-point — which is what lets a 4-host / 16-board cluster be used
/// as one entity, as two halves, or as four independent nodes.

#include <cstdint>
#include <span>
#include <vector>

#include "grape6/g6_types.hpp"
#include "util/check.hpp"

namespace g6::hw {

/// Routing mode of a network board (paper §4.3).
enum class NetMode { kBroadcast, kMulticast2, kPointToPoint };

/// A modeled unidirectional link (LVDS semi-serial, 90 MB/s).
struct LinkModel {
  double bytes_per_sec = kLvdsBytesPerSec;
  double latency_sec = kLvdsLatencySec;

  /// Transfer time of a message of \p bytes.
  double time(std::size_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bytes_per_sec;
  }
};

/// Byte/time counters of one network board.
struct NetCounters {
  std::uint64_t bytes_down = 0;  ///< bytes forwarded toward processor boards
  std::uint64_t bytes_up = 0;    ///< bytes returned toward the host
  std::uint64_t messages = 0;
  double busy_seconds = 0.0;     ///< accumulated modeled link time
};

/// Functional + timing model of one network board.
class NetworkBoard {
 public:
  explicit NetworkBoard(int n_downlinks = 4, LinkModel link = {})
      : n_downlinks_(n_downlinks), link_(link) {
    G6_CHECK(n_downlinks > 0, "network board needs at least one downlink");
  }

  int downlinks() const { return n_downlinks_; }
  NetMode mode() const { return mode_; }

  /// Reconfigure the switching network. Multicast needs an even downlink
  /// count (the two halves must be non-empty and disjoint).
  void set_mode(NetMode mode);

  /// Route one downward message of \p bytes to the downlink set implied by
  /// the mode: all of them (broadcast), one half (multicast group 0/1), or a
  /// single port (point-to-point). Returns the modeled wall time of the
  /// transfer (one store-and-forward hop; fan-out is simultaneous).
  /// \p select is the multicast group or the p2p port; ignored for broadcast.
  double send_down(std::size_t bytes, int select = 0);

  /// Downlink ports reached by a send_down with the given \p select under
  /// the current mode (used by tests and by the cluster router).
  std::vector<int> route(int select = 0) const;

  /// The upward path: merge per-downlink partial force batches with the
  /// reduction unit (exact fixed-point adds) into \p out, and account the
  /// link time of one result batch. `partials[d]` is downlink d's batch.
  double reduce_up(std::span<const std::vector<ForceAccumulator>> partials,
                   std::vector<ForceAccumulator>& out);

  const NetCounters& counters() const { return counters_; }

 private:
  int n_downlinks_;
  LinkModel link_;
  NetMode mode_ = NetMode::kBroadcast;
  NetCounters counters_;
};

}  // namespace g6::hw
