#include "grape6/netboard.hpp"

namespace g6::hw {

void NetworkBoard::set_mode(NetMode mode) {
  if (mode == NetMode::kMulticast2) {
    G6_CHECK(n_downlinks_ >= 2 && n_downlinks_ % 2 == 0,
             "2-way multicast needs an even number of downlinks");
  }
  mode_ = mode;
}

std::vector<int> NetworkBoard::route(int select) const {
  std::vector<int> ports;
  switch (mode_) {
    case NetMode::kBroadcast:
      for (int d = 0; d < n_downlinks_; ++d) ports.push_back(d);
      break;
    case NetMode::kMulticast2: {
      G6_CHECK(select == 0 || select == 1, "multicast group must be 0 or 1");
      const int half = n_downlinks_ / 2;
      for (int d = select * half; d < (select + 1) * half; ++d) ports.push_back(d);
      break;
    }
    case NetMode::kPointToPoint:
      G6_CHECK(select >= 0 && select < n_downlinks_, "p2p port out of range");
      ports.push_back(select);
      break;
  }
  return ports;
}

double NetworkBoard::send_down(std::size_t bytes, int select) {
  const std::vector<int> ports = route(select);
  // The switch fans out in hardware: all selected ports stream in parallel,
  // so wall time is a single link transfer regardless of fan-out.
  const double t = link_.time(bytes);
  counters_.bytes_down += bytes * ports.size();
  counters_.messages += 1;
  counters_.busy_seconds += t;
  return t;
}

double NetworkBoard::reduce_up(std::span<const std::vector<ForceAccumulator>> partials,
                               std::vector<ForceAccumulator>& out) {
  G6_CHECK(!partials.empty(), "reduce_up needs at least one partial batch");
  G6_CHECK(partials.size() <= static_cast<std::size_t>(n_downlinks_),
           "more partial batches than downlinks");
  const std::size_t batch = partials[0].size();
  for (const auto& p : partials)
    G6_CHECK(p.size() == batch, "partial batches must have equal size");

  out = partials[0];
  for (std::size_t d = 1; d < partials.size(); ++d)
    for (std::size_t k = 0; k < batch; ++k) out[k] += partials[d][k];

  // The reduction unit consumes the downlink streams in parallel and emits
  // one merged stream on the uplink: one result-batch transfer of wall time.
  const std::size_t bytes = batch * kResultBytes;
  const double t = link_.time(bytes);
  counters_.bytes_up += bytes;
  counters_.messages += 1;
  counters_.busy_seconds += t;
  return t;
}

}  // namespace g6::hw
