#include "grape6/machine.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace g6::hw {

Grape6Machine::Grape6Machine(MachineConfig cfg, g6::util::ThreadPool* pool)
    : cfg_(cfg), pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(cfg.clusters > 0 && cfg.hosts_per_cluster > 0 && cfg.boards_per_host > 0,
           "machine topology must be non-empty");
  const int nb = cfg.total_boards();
  boards_.reserve(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b)
    boards_.emplace_back(cfg.fmt, cfg.chips_per_board, cfg.jmem_per_chip);
  scratch_.resize(boards_.size());
}

void Grape6Machine::set_pool(g6::util::ThreadPool* pool) {
  pool_ = pool != nullptr ? pool : &g6::util::shared_pool();
}

std::size_t Grape6Machine::capacity() const {
  std::size_t cap = 0;
  for (const auto& b : boards_) cap += b.capacity();
  return cap;
}

void Grape6Machine::clear() {
  for (auto& b : boards_) b = ProcessorBoard(cfg_.fmt, cfg_.chips_per_board,
                                             cfg_.jmem_per_chip);
  addr_.clear();
}

void Grape6Machine::load(std::span<const JParticle> particles) {
  G6_CHECK(addr_.size() + particles.size() <= capacity(),
           "machine j-memory capacity exceeded");
  for (const JParticle& p : particles) {
    const auto b = static_cast<std::uint32_t>(addr_.size() % boards_.size());
    const JAddress local = boards_[b].store_j(p);
    addr_.push_back({b, local});
  }
}

void Grape6Machine::write_j(std::size_t index, const JParticle& p) {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  boards_[a.board].write_j(a.local, p);
  // The update travels host -> network board -> processor board.
}

const JParticle& Grape6Machine::read_j(std::size_t index) const {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  return boards_[a.board].read_j(a.local);
}

void Grape6Machine::predict_all(double t) {
  // Every board's predictor pipelines run concurrently, as in hardware.
  // Each board only touches its own chips, so tasks are disjoint.
  pool_->parallel_for(
      boards_.size(),
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          G6_TRACE_SPAN_CAT("board-predict", "hw");
          boards_[b].predict_all(t);
        }
      },
      /*grain=*/1);
}

void Grape6Machine::compute(const std::vector<IParticle>& i_batch, double eps2,
                            std::vector<ForceAccumulator>& out) {
  const std::size_t ni = i_batch.size();
  out.assign(ni, ForceAccumulator(cfg_.fmt));

  // Phase 1 — boards run concurrently, each filling its own scratch_ slice
  // (grown once, then value-reset in place: no per-call reallocation).
  pool_->parallel_for(
      boards_.size(),
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          G6_TRACE_SPAN_CAT("board-compute", "hw");
          auto& part = scratch_[b];
          part.resize(ni, ForceAccumulator(cfg_.fmt));
          for (std::size_t k = 0; k < ni; ++k) part[k] = ForceAccumulator(cfg_.fmt);
          boards_[b].compute(i_batch, eps2, part);
        }
      },
      /*grain=*/1);

  // Phase 2 — network reduction across boards: a pairwise tree over the
  // fixed-point partials, parallel over i-particles. Fixed-point addition is
  // exact and associative, so this is bit-identical to the serial board loop
  // (and to any other merge order) by construction.
  pool_->parallel_for(ni, [&](std::size_t k0, std::size_t k1) {
    for (std::size_t width = boards_.size(); width > 1;) {
      const std::size_t half = (width + 1) / 2;
      for (std::size_t b = 0; b + half < width; ++b)
        for (std::size_t k = k0; k < k1; ++k) scratch_[b][k] += scratch_[b + half][k];
      width = half;
    }
    for (std::size_t k = k0; k < k1; ++k) out[k] += scratch_[0][k];
  });
}

double Grape6Machine::pipeline_seconds(std::size_t ni) const {
  std::uint64_t worst = 0;
  for (const auto& b : boards_) worst = std::max(worst, b.compute_cycles(ni));
  return static_cast<double>(worst) / kClockHz;
}

double Grape6Machine::predict_seconds() const {
  std::uint64_t worst = 0;
  for (const auto& b : boards_) worst = std::max(worst, b.predict_cycles());
  return static_cast<double>(worst) / kClockHz;
}

HwCounters Grape6Machine::counters() const {
  HwCounters total;
  for (const auto& b : boards_) total += b.counters();
  return total;
}

}  // namespace g6::hw
