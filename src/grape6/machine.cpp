#include "grape6/machine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::hw {

Grape6Machine::Grape6Machine(MachineConfig cfg) : cfg_(cfg) {
  G6_CHECK(cfg.clusters > 0 && cfg.hosts_per_cluster > 0 && cfg.boards_per_host > 0,
           "machine topology must be non-empty");
  const int nb = cfg.total_boards();
  boards_.reserve(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b)
    boards_.emplace_back(cfg.fmt, cfg.chips_per_board, cfg.jmem_per_chip);
}

std::size_t Grape6Machine::capacity() const {
  std::size_t cap = 0;
  for (const auto& b : boards_) cap += b.capacity();
  return cap;
}

void Grape6Machine::clear() {
  for (auto& b : boards_) b = ProcessorBoard(cfg_.fmt, cfg_.chips_per_board,
                                             cfg_.jmem_per_chip);
  addr_.clear();
}

void Grape6Machine::load(std::span<const JParticle> particles) {
  G6_CHECK(addr_.size() + particles.size() <= capacity(),
           "machine j-memory capacity exceeded");
  for (const JParticle& p : particles) {
    const auto b = static_cast<std::uint32_t>(addr_.size() % boards_.size());
    const JAddress local = boards_[b].store_j(p);
    addr_.push_back({b, local});
  }
}

void Grape6Machine::write_j(std::size_t index, const JParticle& p) {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  boards_[a.board].write_j(a.local, p);
  // The update travels host -> network board -> processor board.
}

const JParticle& Grape6Machine::read_j(std::size_t index) const {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  return boards_[a.board].read_j(a.local);
}

void Grape6Machine::predict_all(double t) {
  for (auto& b : boards_) b.predict_all(t);
}

void Grape6Machine::compute(const std::vector<IParticle>& i_batch, double eps2,
                            std::vector<ForceAccumulator>& out) {
  out.assign(i_batch.size(), ForceAccumulator(cfg_.fmt));
  scratch_.resize(boards_.size());
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    scratch_[b].assign(i_batch.size(), ForceAccumulator(cfg_.fmt));
    boards_[b].compute(i_batch, eps2, scratch_[b]);
  }
  // Network reduction across boards — exact, order independent.
  for (std::size_t b = 0; b < boards_.size(); ++b)
    for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += scratch_[b][k];
}

double Grape6Machine::pipeline_seconds(std::size_t ni) const {
  std::uint64_t worst = 0;
  for (const auto& b : boards_) worst = std::max(worst, b.compute_cycles(ni));
  return static_cast<double>(worst) / kClockHz;
}

double Grape6Machine::predict_seconds() const {
  std::uint64_t worst = 0;
  for (const auto& b : boards_) worst = std::max(worst, b.predict_cycles());
  return static_cast<double>(worst) / kClockHz;
}

HwCounters Grape6Machine::counters() const {
  HwCounters total;
  for (const auto& b : boards_) total += b.counters();
  return total;
}

}  // namespace g6::hw
