#include "grape6/machine.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"

namespace g6::hw {

namespace {

/// CRC-32 of a j-image's fields, fed one at a time: JParticle has padding
/// after its uint32 id whose bytes are indeterminate, so hashing the raw
/// object representation would flag phantom mismatches.
std::uint32_t crc32_of_j(const JParticle& p) {
  std::uint32_t s = g6::util::crc32_init();
  const auto feed = [&s](const auto& v) {
    s = g6::util::crc32_update(s, &v, sizeof v);
  };
  feed(p.id);
  feed(p.mass);
  feed(p.t0);
  const std::int64_t raw[3] = {p.x0.x().raw(), p.x0.y().raw(), p.x0.z().raw()};
  feed(raw);
  // Each component carries its own stored scale; all three must be covered or
  // a bit flip in an unhashed lsb silently rescales a coordinate.
  const double lsb[3] = {p.x0.x().lsb(), p.x0.y().lsb(), p.x0.z().lsb()};
  feed(lsb);
  feed(p.v0);
  feed(p.a0);
  feed(p.j0);
  return g6::util::crc32_final(s);
}

}  // namespace

Grape6Machine::Grape6Machine(MachineConfig cfg, g6::util::ThreadPool* pool)
    : cfg_(cfg), pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(cfg.clusters > 0 && cfg.hosts_per_cluster > 0 && cfg.boards_per_host > 0,
           "machine topology must be non-empty");
  const int nb = cfg.total_boards();
  boards_.reserve(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b)
    boards_.emplace_back(cfg.fmt, cfg.chips_per_board, cfg.jmem_per_chip);
  scratch_.resize(boards_.size());
  board_alive_.assign(boards_.size(), 1);
}

void Grape6Machine::set_pool(g6::util::ThreadPool* pool) {
  pool_ = pool != nullptr ? pool : &g6::util::shared_pool();
}

std::size_t Grape6Machine::capacity() const {
  std::size_t cap = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b)
    if (board_alive_[b] != 0) cap += boards_[b].capacity();
  return cap;
}

void Grape6Machine::clear() {
  for (auto& b : boards_) b = ProcessorBoard(cfg_.fmt, cfg_.chips_per_board,
                                             cfg_.jmem_per_chip);
  addr_.clear();
  shadow_j_.clear();
  board_alive_.assign(boards_.size(), 1);
  if (injector_ != nullptr)
    for (auto& b : boards_) b.set_fault_stats(&injector_->stats());
}

void Grape6Machine::load(std::span<const JParticle> particles) {
  G6_CHECK(addr_.size() + particles.size() <= capacity(),
           "machine j-memory capacity exceeded");
  for (const JParticle& p : particles) {
    // Round-robin over the alive boards keeps the per-board j-counts
    // balanced (the critical path is the fullest board).
    auto b = static_cast<std::size_t>(addr_.size() % boards_.size());
    while (board_alive_[b] == 0 || boards_[b].j_count() >= boards_[b].capacity())
      b = (b + 1) % boards_.size();
    const JAddress local = boards_[b].store_j(p);
    addr_.push_back({static_cast<std::uint32_t>(b), local});
    if (injector_ != nullptr) shadow_j_.push_back(p);
  }
}

void Grape6Machine::write_j(std::size_t index, const JParticle& p) {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  boards_[a.board].write_j(a.local, p);
  if (index < shadow_j_.size()) shadow_j_[index] = p;
  // The update travels host -> network board -> processor board.
}

const JParticle& Grape6Machine::read_j(std::size_t index) const {
  G6_CHECK(index < addr_.size(), "j index out of range");
  const GlobalJAddress& a = addr_[index];
  return boards_[a.board].read_j(a.local);
}

void Grape6Machine::predict_all(double t) {
  predict_time_ = t;
  // Every board's predictor pipelines run concurrently, as in hardware.
  // Each board only touches its own chips, so tasks are disjoint.
  pool_->parallel_for(
      boards_.size(),
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          if (board_alive_[b] == 0) continue;
          G6_TRACE_SPAN_CAT("board-predict", "hw");
          boards_[b].predict_all(t);
        }
      },
      /*grain=*/1);
}

void Grape6Machine::compute(const std::vector<IParticle>& i_batch, double eps2,
                            std::vector<ForceAccumulator>& out) {
  // All fault decisions happen here, on the serial driving thread, before
  // any worker fans out — a pure function of (plan, call count), so the
  // schedule is identical at every thread count. Unarmed runs pay one branch.
  if (injector_ != nullptr && injector_->armed()) {
    process_events();
    scrub_jmem();
    // A corruption that only flipped padding bytes is invisible to the CRC
    // scrub (which hashes meaningful fields only) yet still invalidated the
    // chip's predictor cache. Repredict to restore the predict-before-compute
    // invariant; chips with valid caches early-out inside Chip::predict_all,
    // so healthy hardware pays nothing and no recovery time is charged (the
    // padding flip never changed a physical quantity).
    for (std::size_t b = 0; b < boards_.size(); ++b)
      if (board_alive_[b] != 0) boards_[b].repredict(predict_time_);
  }

  const std::size_t ni = i_batch.size();
  out.assign(ni, ForceAccumulator(cfg_.fmt));

  // Phase 1 — boards run concurrently, each filling its own scratch_ slice
  // (grown once, then value-reset in place: no per-call reallocation).
  // If the self-test pass inside a board excluded a chip, its j-particles
  // are remapped onto the survivors and the whole block is redone — the
  // final registers must include every j exactly once (that is what makes
  // recovered runs bit-identical to fault-free ones).
  for (bool redo = true; redo;) {
    redo = false;
    pool_->parallel_for(
        boards_.size(),
        [&](std::size_t b0, std::size_t b1) {
          for (std::size_t b = b0; b < b1; ++b) {
            auto& part = scratch_[b];
            part.resize(ni, ForceAccumulator(cfg_.fmt));
            for (std::size_t k = 0; k < ni; ++k) part[k] = ForceAccumulator(cfg_.fmt);
            if (board_alive_[b] == 0) continue;
            G6_TRACE_SPAN_CAT("board-compute", "hw");
            boards_[b].compute(i_batch, eps2, part);
          }
        },
        /*grain=*/1);

    for (std::size_t b = 0; b < boards_.size(); ++b) {
      if (board_alive_[b] == 0 || !boards_[b].take_newly_dead()) continue;
      g6::obs::FlightRecorder::global().note(
          "recovery", "dead chip(s) on board " + std::to_string(b) +
                          ": remapped j-particles, repredicting");
      remap_dead_chips(b);
      if (boards_[b].alive_chip_count() == 0) {
        board_alive_[b] = 0;
        g6::obs::FlightRecorder::global().note(
            "recovery", "board " + std::to_string(b) +
                            " fully dead: excluded from the machine");
        if (injector_ != nullptr) {
          auto& stats = injector_->stats();
          stats.excluded_boards.fetch_add(1, std::memory_order_relaxed);
          // Every chip of this board was already counted individually as it
          // died; the whole-board exclusion supersedes those counts so the
          // degradation model does not subtract the chips twice.
          stats.excluded_chips.fetch_sub(
              static_cast<std::uint64_t>(boards_[b].chip_count()),
              std::memory_order_relaxed);
        }
      }
      redo = true;
    }
    if (redo) {
      for (std::size_t b = 0; b < boards_.size(); ++b)
        if (board_alive_[b] != 0) boards_[b].repredict(predict_time_);
      if (injector_ != nullptr)
        injector_->stats().add_recovery_seconds(predict_seconds() +
                                                pipeline_seconds(ni));
    }
  }

  // Phase 2 — network reduction across boards: a pairwise tree over the
  // fixed-point partials, parallel over i-particles. Fixed-point addition is
  // exact and associative, so this is bit-identical to the serial board loop
  // (and to any other merge order) by construction.
  pool_->parallel_for(ni, [&](std::size_t k0, std::size_t k1) {
    for (std::size_t width = boards_.size(); width > 1;) {
      const std::size_t half = (width + 1) / 2;
      for (std::size_t b = 0; b + half < width; ++b)
        for (std::size_t k = k0; k < k1; ++k) scratch_[b][k] += scratch_[b + half][k];
      width = half;
    }
    for (std::size_t k = k0; k < k1; ++k) out[k] += scratch_[0][k];
  });
}

double Grape6Machine::pipeline_seconds(std::size_t ni) const {
  std::uint64_t worst = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b)
    if (board_alive_[b] != 0)
      worst = std::max(worst, boards_[b].compute_cycles(ni));
  return static_cast<double>(worst) / kClockHz;
}

double Grape6Machine::predict_seconds() const {
  std::uint64_t worst = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b)
    if (board_alive_[b] != 0)
      worst = std::max(worst, boards_[b].predict_cycles());
  return static_cast<double>(worst) / kClockHz;
}

int Grape6Machine::alive_board_count() const {
  int n = 0;
  for (char a : board_alive_)
    if (a != 0) ++n;
  return n;
}

void Grape6Machine::set_fault_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  fault::FaultStats* stats = injector != nullptr ? &injector->stats() : nullptr;
  for (auto& b : boards_) b.set_fault_stats(stats);
  shadow_j_.clear();
  if (injector_ != nullptr) {
    // Build the host-side shadow from whatever is already loaded (the
    // "restore file" the real operators kept for machine restarts).
    shadow_j_.reserve(addr_.size());
    for (std::size_t i = 0; i < addr_.size(); ++i) shadow_j_.push_back(read_j(i));
  }
}

void Grape6Machine::process_events() {
  auto& stats = injector_->stats();
  for (const fault::FaultEvent& e : injector_->machine_step()) {
    switch (e.kind) {
      case fault::FaultKind::kChipBitFlip: {
        const std::size_t b = static_cast<std::size_t>(e.a) % boards_.size();
        if (board_alive_[b] == 0) break;
        const int chip = static_cast<int>(e.b) % boards_[b].chip_count();
        if (boards_[b].chip_dead(chip)) break;
        boards_[b].arm_step_fault(chip, e.bit, e.param > 0.5);
        stats.injected[static_cast<std::size_t>(e.kind)].fetch_add(
            1, std::memory_order_relaxed);
        break;
      }
      case fault::FaultKind::kJMemCorrupt: {
        const std::size_t b = static_cast<std::size_t>(e.a) % boards_.size();
        if (board_alive_[b] == 0) break;
        const int chip = static_cast<int>(e.b) % boards_[b].chip_count();
        if (boards_[b].chip_dead(chip)) break;
        const std::size_t jc = boards_[b].chip_j_count(chip);
        if (jc == 0) break;
        boards_[b].corrupt_j(chip, static_cast<std::size_t>(e.param) % jc, e.bit);
        stats.injected[static_cast<std::size_t>(e.kind)].fetch_add(
            1, std::memory_order_relaxed);
        break;
      }
      case fault::FaultKind::kBoardFail: {
        const std::size_t b = static_cast<std::size_t>(e.a) % boards_.size();
        if (board_alive_[b] == 0 || alive_board_count() < 2) break;
        fail_board(b);
        stats.injected[static_cast<std::size_t>(e.kind)].fetch_add(
            1, std::memory_order_relaxed);
        break;
      }
      default:
        g6::util::raise("unexpected machine-domain fault event");
    }
  }
}

void Grape6Machine::scrub_jmem() {
  // Serial CRC scan of every stored j-image against the host shadow — the
  // detection side of SSRAM corruption. A mismatch is repaired by rewriting
  // the image and re-running the affected board's predictors; both are
  // charged into the recovery time model.
  auto& stats = injector_->stats();
  std::vector<char> dirty(boards_.size(), 0);
  for (std::size_t i = 0; i < addr_.size(); ++i) {
    const GlobalJAddress& a = addr_[i];
    const JParticle& img = boards_[a.board].read_j(a.local);
    if (crc32_of_j(img) == crc32_of_j(shadow_j_[i])) continue;
    stats.crc_jmem_mismatches.fetch_add(1, std::memory_order_relaxed);
    boards_[a.board].write_j(a.local, shadow_j_[i]);
    stats.jmem_rewrites.fetch_add(1, std::memory_order_relaxed);
    dirty[a.board] = 1;
  }
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (dirty[b] == 0) continue;
    boards_[b].repredict(predict_time_);
    stats.add_recovery_seconds(
        static_cast<double>(boards_[b].predict_cycles()) / kClockHz);
  }
}

void Grape6Machine::remap_particle(std::size_t index) {
  G6_CHECK(index < shadow_j_.size(), "no shadow image to remap from");
  std::size_t best = boards_.size();
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (board_alive_[b] == 0 || boards_[b].j_count() >= boards_[b].capacity())
      continue;
    if (best == boards_.size() || boards_[b].j_count() < boards_[best].j_count())
      best = b;
  }
  G6_CHECK(best < boards_.size(), "no surviving j-memory capacity for remap");
  const JAddress local = boards_[best].store_j(shadow_j_[index]);
  addr_[index] = {static_cast<std::uint32_t>(best), local};
}

std::size_t Grape6Machine::remap_dead_chips(std::size_t b) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < addr_.size(); ++i) {
    const GlobalJAddress& a = addr_[i];
    if (a.board == b && boards_[b].chip_dead(static_cast<int>(a.local.chip))) {
      remap_particle(i);
      ++moved;
    }
  }
  if (injector_ != nullptr && moved > 0) {
    auto& stats = injector_->stats();
    stats.remapped_particles.fetch_add(moved, std::memory_order_relaxed);
    stats.jmem_rewrites.fetch_add(moved, std::memory_order_relaxed);
  }
  return moved;
}

void Grape6Machine::fail_board(std::size_t b) {
  G6_CHECK(injector_ != nullptr, "fail_board requires an attached injector");
  G6_CHECK(b < boards_.size() && board_alive_[b] != 0,
           "board index invalid or already excluded");
  g6::obs::FlightRecorder::global().note(
      "recovery", "board " + std::to_string(b) +
                      " failed: excluding and remapping its j-particles");
  board_alive_[b] = 0;
  auto& stats = injector_->stats();
  stats.excluded_boards.fetch_add(1, std::memory_order_relaxed);
  // Chips of this board that were excluded individually before the board
  // died are now covered by the board exclusion — uncount them.
  stats.excluded_chips.fetch_sub(
      static_cast<std::uint64_t>(boards_[b].chip_count() -
                                 boards_[b].alive_chip_count()),
      std::memory_order_relaxed);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < addr_.size(); ++i) {
    if (addr_[i].board == b) {
      remap_particle(i);
      ++moved;
    }
  }
  stats.remapped_particles.fetch_add(moved, std::memory_order_relaxed);
  stats.jmem_rewrites.fetch_add(moved, std::memory_order_relaxed);
  for (std::size_t bb = 0; bb < boards_.size(); ++bb)
    if (board_alive_[bb] != 0) boards_[bb].repredict(predict_time_);
  // Recovery model: the moved images travel back over the host interface
  // (one j-write each) and the surviving predictors re-run.
  stats.add_recovery_seconds(static_cast<double>(moved) * kVmp / kClockHz +
                             predict_seconds());
}

HwCounters Grape6Machine::counters() const {
  HwCounters total;
  for (const auto& b : boards_) total += b.counters();
  return total;
}

}  // namespace g6::hw
