#pragma once
/// \file changeover.hpp
/// \brief P3T changeover function: the C¹-smooth weight that splits every
///        pair force between the direct Hermite path (near field) and the
///        Barnes–Hut tree (far field). See docs/P3T.md.
///
/// K(r) = 1 for r <= r_in, 0 for r >= r_out, and the complementary quintic
/// smoothstep in between:
///
///   x    = (r - r_in) / (r_out - r_in)
///   S(x) = 10 x^3 - 15 x^4 + 6 x^5        (S(0)=0, S(1)=1, S'=S''=0 at ends)
///   K    = 1 - S(x)
///
/// The direct part of a pair force is weighted K, the tree part (1 - K), so
/// the total is continuous (with continuous first and second derivatives)
/// across both boundaries — the property the Hermite corrector needs to keep
/// timestep estimates meaningful through the transition shell.

#include <cmath>

namespace g6::p3t {

/// Changeover weights for a fixed (r_in, r_out) shell.
struct Changeover {
  double r_in = 0.0;
  double r_out = 0.0;

  /// Direct-path weight at separation \p r (unsoftened).
  double K(double r) const {
    if (r <= r_in) return 1.0;
    if (r >= r_out) return 0.0;
    const double x = (r - r_in) / (r_out - r_in);
    const double x2 = x * x;
    return 1.0 - x2 * x * (10.0 + x * (-15.0 + 6.0 * x));
  }

  /// dK/dr at separation \p r; zero outside (r_in, r_out).
  double dKdr(double r) const {
    if (r <= r_in || r >= r_out) return 0.0;
    const double w = r_out - r_in;
    const double x = (r - r_in) / w;
    const double u = x * (1.0 - x);
    return -30.0 * u * u / w;
  }
};

}  // namespace g6::p3t
