#pragma once
/// \file p3t_backend.hpp
/// \brief P3T hybrid tree+direct force backend (docs/P3T.md) — the scheme
///        that opens N ≫ 16k real dynamics, past the paper's direct-summation
///        science ceiling.
///
/// Every pair force is split by the changeover function K(r) (changeover.hpp):
/// the near part (weight K) is evaluated fresh on the direct Hermite kernel
/// path against neighbor-list particles predicted to the current block time;
/// the far part (weight 1−K) comes from a Barnes–Hut walk over a tree frozen
/// at the last rebuild epoch. Neighbor lists carry PeTar-style per-particle
/// search radii sized so that no pair can cross into the changeover shell
/// between rebuilds; pairs already inside the mutual group radius (a few
/// mutual Hill radii, capped at r_in) are bookkept as close-encounter groups
/// and are automatically on the pure direct path (K = 1).
///
/// Determinism contract: per-i evaluation is independent work with
/// fixed-order reductions (the tree walk recurses in octant order, neighbor
/// lists are in tree DFS order, the inner-neighbor sum delegates to the
/// bit-reproducible dispatched kernels), so results are bit-identical at any
/// thread count. The epoch snapshot (tree + lists are functions of it) is
/// serialized through save/load_checkpoint_state() into the G6CKPT1 stream,
/// which makes kill-and-resume bit-identical to the uninterrupted run.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nbody/force.hpp"
#include "nbody/force_kernels.hpp"
#include "obs/metrics.hpp"
#include "p3t/changeover.hpp"
#include "tree/bh_tree.hpp"
#include "util/thread_pool.hpp"

namespace g6::p3t {

using g6::nbody::Force;
using g6::util::Vec3;

/// P3T accuracy/scheduling knobs.
struct P3TConfig {
  double theta = 0.4;        ///< tree opening angle for the far field
  double r_in = 0.0;         ///< changeover inner radius (0 = r_out / 8)
  double r_out = 0.0;        ///< changeover outer radius (0 = auto-derive)
  double gm_central = 0.0;   ///< central-body GM; >0 enables Hill-radius
                             ///< auto-scaling of r_out and group radii
  double rebuild_safety = 0.25;   ///< max drift per epoch, fraction of r_in
  double dt_rebuild_max = 0.25;   ///< hard cap on epoch length (sim time)
  double group_factor = 3.0;      ///< group radius in mutual Hill radii
  std::size_t leaf_capacity = 16; ///< tree leaf size
  bool quadrupole = true;         ///< quadrupole far-field moments
  g6::nbody::CpuKernel kernel = g6::nbody::cpu_kernel_from_env();
};

/// ForceBackend composing BarnesHutTree (far field) with the dispatched
/// direct kernels (near field). See file comment and docs/P3T.md.
class P3THybridBackend final : public g6::nbody::ForceBackend {
 public:
  /// \p eps softening length; \p pool optional thread pool (null means the
  /// process-wide g6::util::shared_pool()).
  explicit P3THybridBackend(P3TConfig cfg, double eps,
                            g6::util::ThreadPool* pool = nullptr);

  std::string name() const override { return "p3t-hybrid"; }
  void load(const g6::nbody::ParticleSystem& ps) override;
  void update(std::span<const std::uint32_t> indices,
              const g6::nbody::ParticleSystem& ps) override;
  void compute(double t, std::span<const std::uint32_t> ilist,
               std::span<Force> out) override;
  void compute_states(double t, std::span<const std::uint32_t> ilist,
                      std::span<const Vec3> pos, std::span<const Vec3> vel,
                      std::span<Force> out) override;
  std::uint64_t interaction_count() const override {
    return interactions_.load(std::memory_order_relaxed);
  }
  double softening() const override { return eps_; }

  std::vector<std::uint8_t> save_checkpoint_state() const override;
  void load_checkpoint_state(std::span<const std::uint8_t> blob) override;

  const P3TConfig& config() const { return cfg_; }

  // --- epoch/neighbor introspection (tests, diagnostics) ------------------

  /// Resolved changeover radii (auto-derived at the first rebuild when the
  /// config left them 0). Valid once an epoch exists.
  double r_in() const { return change_.r_in; }
  double r_out() const { return change_.r_out; }
  bool epoch_valid() const { return tree_valid_; }
  double epoch_time() const { return t_epoch_; }
  double next_rebuild_time() const { return next_rebuild_; }
  std::uint64_t rebuild_count() const { return rebuilds_; }

  /// Force an epoch (tree + neighbor lists) at time \p t if none is valid or
  /// the current one expired. compute() calls this itself; exposed for tests.
  void ensure_epoch(double t);

  /// Neighbor list of particle \p i (tree-DFS-ordered, excludes i). The
  /// first inner_neighbor_count(i) entries are guaranteed-K=1 pairs.
  std::span<const std::uint32_t> neighbors(std::size_t i) const;
  std::size_t inner_neighbor_count(std::size_t i) const {
    return nbr_inner_end_[i] - nbr_start_[i];
  }

  /// Close-encounter group bookkeeping at the current epoch.
  std::size_t group_count() const { return group_count_; }
  std::size_t grouped_particles() const { return grouped_particles_; }
  /// Group representative (union-find root) of particle \p i.
  std::uint32_t group_of(std::size_t i) const;

  const g6::tree::BarnesHutTree& tree() const { return tree_; }

 private:
  void rebuild_epoch(double t);
  /// Derive tree + search radii + neighbor lists + groups from the epoch
  /// arrays (epoch_pos_/vel_/mass_) and [t_epoch_, next_rebuild_]. Shared by
  /// rebuild_epoch() and checkpoint restore — both must produce identical
  /// state for kill-and-resume bit-identity.
  void finalize_epoch();
  void resolve_radii();
  void eval(double t, std::span<const std::uint32_t> ilist,
            std::span<const Vec3> pos, std::span<const Vec3> vel,
            std::span<Force> out);
  /// Far-field changeover walk for one i-particle; returns the number of
  /// (cell + epoch-leaf) interactions.
  std::uint64_t walk_tree(const Vec3& xi, const Vec3& vi, Force& f) const;
  std::uint32_t find_group(std::uint32_t i) const;

  P3TConfig cfg_;
  double eps_;
  g6::util::ThreadPool* pool_;

  // j-particle store (state at each particle's own time), as in
  // CpuDirectBackend: per-pair prediction reads these polynomials directly.
  std::vector<double> t0_, mass_;
  std::vector<Vec3> x0_, v0_, a0_, j0_;

  // Epoch snapshot: everything below is a pure function of these arrays plus
  // [t_epoch_, next_rebuild_] — that is what makes checkpoint restore exact.
  std::vector<Vec3> epoch_pos_, epoch_vel_;
  std::vector<double> epoch_mass_;
  double t_epoch_ = 0.0;
  double next_rebuild_ = 0.0;
  bool tree_valid_ = false;
  Changeover change_{};
  bool radii_set_ = false;

  g6::tree::BarnesHutTree tree_;
  std::vector<double> rs_;       ///< per-particle search radius
  std::vector<double> reach_;    ///< per-particle drift bound over the epoch
  std::vector<double> node_rs_;  ///< per-tree-node max search radius
  // Neighbor lists, CSR over original particle indices. Per i:
  // [nbr_start_[i], nbr_inner_end_[i]) inner (K = 1 all epoch),
  // [nbr_inner_end_[i], nbr_start_[i+1]) transition (changeover-weighted).
  std::vector<std::uint32_t> nbr_;
  std::vector<std::uint32_t> nbr_start_, nbr_inner_end_;
  std::vector<std::vector<std::uint32_t>> nbr_scratch_;  ///< grow-only, per i
  std::vector<std::uint32_t> inner_count_;               ///< per-i inner size

  // Close-encounter groups (union-find over epoch pairs inside the mutual
  // group radius; bookkeeping — members are on the K=1 path by construction).
  mutable std::vector<std::uint32_t> group_parent_;
  std::vector<std::uint32_t> group_size_;
  std::size_t group_count_ = 0;
  std::size_t grouped_particles_ = 0;

  std::uint64_t rebuilds_ = 0;
  std::atomic<std::uint64_t> interactions_{0};

  g6::obs::Counter rebuilds_metric_;       ///< g6.p3t.rebuilds
  g6::obs::Counter tree_inter_metric_;     ///< g6.p3t.tree_interactions
  g6::obs::Counter direct_inter_metric_;   ///< g6.p3t.direct_interactions
  g6::obs::Gauge neighbor_pairs_metric_;   ///< g6.p3t.neighbor_pairs
  g6::obs::Gauge groups_metric_;           ///< g6.p3t.groups
  g6::obs::Gauge grouped_metric_;          ///< g6.p3t.grouped_particles
  g6::obs::Gauge epoch_dt_metric_;         ///< g6.p3t.epoch_dt
  g6::obs::Gauge r_out_metric_;            ///< g6.p3t.r_out
};

}  // namespace g6::p3t
