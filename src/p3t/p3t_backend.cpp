#include "p3t/p3t_backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "disk/hill.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/hermite.hpp"
#include "util/check.hpp"

namespace g6::p3t {

namespace {

using g6::tree::TreeNode;

/// Squared distance from \p x to the surface of node \p n's cube (0 inside).
double box_dist2(const TreeNode& n, const Vec3& x) {
  const double dx = std::max(std::abs(x.x - n.center.x) - n.half, 0.0);
  const double dy = std::max(std::abs(x.y - n.center.y) - n.half, 0.0);
  const double dz = std::max(std::abs(x.z - n.center.z) - n.half, 0.0);
  return dx * dx + dy * dy + dz * dz;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  append_bytes(out, &v, sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t> blob, std::size_t& off) {
  G6_CHECK(off + sizeof(T) <= blob.size(), "p3t checkpoint blob truncated");
  T v;
  std::memcpy(&v, blob.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

constexpr char kBlobMagic[8] = {'G', '6', 'P', '3', 'T', 'C', 'K', '1'};
constexpr std::uint32_t kBlobVersion = 1;

}  // namespace

P3THybridBackend::P3THybridBackend(P3TConfig cfg, double eps,
                                   g6::util::ThreadPool* pool)
    : cfg_(cfg),
      eps_(eps),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()),
      tree_(g6::tree::TreeConfig{cfg.theta, cfg.leaf_capacity, cfg.quadrupole,
                                 64}),
      rebuilds_metric_(
          g6::obs::MetricsRegistry::global().counter("g6.p3t.rebuilds")),
      tree_inter_metric_(g6::obs::MetricsRegistry::global().counter(
          "g6.p3t.tree_interactions")),
      direct_inter_metric_(g6::obs::MetricsRegistry::global().counter(
          "g6.p3t.direct_interactions")),
      neighbor_pairs_metric_(
          g6::obs::MetricsRegistry::global().gauge("g6.p3t.neighbor_pairs")),
      groups_metric_(g6::obs::MetricsRegistry::global().gauge("g6.p3t.groups")),
      grouped_metric_(g6::obs::MetricsRegistry::global().gauge(
          "g6.p3t.grouped_particles")),
      epoch_dt_metric_(
          g6::obs::MetricsRegistry::global().gauge("g6.p3t.epoch_dt")),
      r_out_metric_(g6::obs::MetricsRegistry::global().gauge("g6.p3t.r_out")) {
  G6_CHECK(cfg_.theta > 0.0, "p3t: theta must be positive");
  G6_CHECK(cfg_.rebuild_safety > 0.0, "p3t: rebuild_safety must be positive");
  G6_CHECK(cfg_.dt_rebuild_max > 0.0, "p3t: dt_rebuild_max must be positive");
  if (cfg_.r_out > 0.0 && cfg_.r_in > 0.0)
    G6_CHECK(cfg_.r_in < cfg_.r_out, "p3t: need r_in < r_out");
}

void P3THybridBackend::load(const g6::nbody::ParticleSystem& ps) {
  const std::size_t n = ps.size();
  t0_.resize(n);
  mass_.resize(n);
  x0_.resize(n);
  v0_.resize(n);
  a0_.resize(n);
  j0_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  // The epoch snapshot is a function of load-time state; invalidate so the
  // next force evaluation re-establishes it (or checkpoint restore injects
  // the saved one — see load_checkpoint_state()).
  tree_valid_ = false;
}

void P3THybridBackend::update(std::span<const std::uint32_t> indices,
                              const g6::nbody::ParticleSystem& ps) {
  G6_CHECK(ps.size() == mass_.size(),
           "p3t: update() with a different particle count; use load()");
  for (const std::uint32_t i : indices) {
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  // The tree and the neighbor lists deliberately go stale between rebuilds;
  // the changeover weighting and the search-radius margin absorb the drift.
}

void P3THybridBackend::compute(double t, std::span<const std::uint32_t> ilist,
                               std::span<Force> out) {
  eval(t, ilist, {}, {}, out);
}

void P3THybridBackend::compute_states(double t,
                                      std::span<const std::uint32_t> ilist,
                                      std::span<const Vec3> pos,
                                      std::span<const Vec3> vel,
                                      std::span<Force> out) {
  G6_CHECK(pos.size() == ilist.size() && vel.size() == ilist.size(),
           "p3t: state span size mismatch");
  eval(t, ilist, pos, vel, out);
}

void P3THybridBackend::ensure_epoch(double t) {
  if (!tree_valid_ || t >= next_rebuild_) rebuild_epoch(t);
}

void P3THybridBackend::rebuild_epoch(double t) {
  const std::size_t n = mass_.size();
  G6_CHECK(n > 0, "p3t: no particles loaded");
  epoch_pos_.resize(n);
  epoch_vel_.resize(n);
  epoch_mass_ = mass_;

  pool_->parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      const auto p = g6::nbody::hermite_predict(x0_[j], v0_[j], a0_[j], j0_[j],
                                                t - t0_[j]);
      epoch_pos_[j] = p.pos;
      epoch_vel_[j] = p.vel;
    }
  });

  t_epoch_ = t;
  resolve_radii();

  // Epoch length: the fastest particle may drift at most rebuild_safety*r_in
  // before the tree and the neighbor lists are refreshed.
  double vmax = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    vmax = std::max(vmax, g6::util::norm(epoch_vel_[j]));
  double dt_epoch = cfg_.dt_rebuild_max;
  if (vmax > 0.0)
    dt_epoch = std::min(dt_epoch, cfg_.rebuild_safety * change_.r_in / vmax);
  dt_epoch = std::max(dt_epoch, 0x1p-30);
  next_rebuild_ = t + dt_epoch;

  finalize_epoch();
  ++rebuilds_;
  rebuilds_metric_.add();
}

void P3THybridBackend::resolve_radii() {
  if (radii_set_) return;
  const std::size_t n = epoch_mass_.size();
  double r_out = cfg_.r_out;
  double r_in = cfg_.r_in;
  if (r_out <= 0.0) {
    if (cfg_.gm_central > 0.0) {
      // Disk regime: a few Hill radii of the mean body at the mean orbital
      // distance — the scale below which collisional dynamics must be exact.
      double sum_a = 0.0, sum_m = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sum_a += g6::util::norm(epoch_pos_[j]);
        sum_m += epoch_mass_[j];
      }
      const double a_mean = sum_a / static_cast<double>(n);
      const double m_mean = sum_m / static_cast<double>(n);
      r_out = 10.0 * g6::disk::hill_radius(a_mean, m_mean, cfg_.gm_central);
    } else {
      // No central body: a multiple of the mean interparticle spacing.
      Vec3 lo = epoch_pos_[0], hi = epoch_pos_[0];
      for (std::size_t j = 1; j < n; ++j) {
        lo = g6::util::min(lo, epoch_pos_[j]);
        hi = g6::util::max(hi, epoch_pos_[j]);
      }
      double vol = 1.0;
      for (int c = 0; c < 3; ++c) vol *= std::max(hi[c] - lo[c], 1e-12);
      r_out = 2.0 * std::cbrt(vol / static_cast<double>(n));
    }
  }
  if (r_in <= 0.0) r_in = r_out / 8.0;
  G6_CHECK(r_out > r_in && r_in > 0.0, "p3t: invalid changeover radii");
  change_ = Changeover{r_in, r_out};
  radii_set_ = true;
}

void P3THybridBackend::finalize_epoch() {
  const std::size_t n = epoch_mass_.size();
  const double dt_epoch = next_rebuild_ - t_epoch_;
  const double r_in = change_.r_in;
  const double r_out = change_.r_out;

  tree_.build(epoch_pos_, epoch_vel_, epoch_mass_, pool_);

  // Per-particle drift reach over the epoch (safety factor 2 on top of the
  // current speed: velocities change between rebuilds) and search radii:
  // any pair that can come inside r_out before the next rebuild satisfies
  // |x_i - x_j| < max(rs_i, rs_j) at the epoch.
  double vmax = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    vmax = std::max(vmax, g6::util::norm(epoch_vel_[j]));
  const double reach_max = 2.0 * vmax * dt_epoch;
  reach_.resize(n);
  rs_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    reach_[j] = 2.0 * g6::util::norm(epoch_vel_[j]) * dt_epoch;
    rs_[j] = r_out + reach_[j] + reach_max;
  }

  // Per-node max search radius. Nodes are in depth-first preorder (parent
  // index < child index), so a reverse sweep sees every child before its
  // parent.
  const auto nodes = tree_.nodes();
  const auto order = tree_.order();
  node_rs_.assign(nodes.size(), 0.0);
  for (std::size_t k = nodes.size(); k-- > 0;) {
    const TreeNode& node = nodes[k];
    double m = 0.0;
    if (node.leaf) {
      for (std::uint32_t q = node.first; q < node.first + node.count; ++q)
        m = std::max(m, rs_[order[q]]);
    } else {
      for (const std::int32_t ch : node.child)
        if (ch >= 0) m = std::max(m, node_rs_[static_cast<std::size_t>(ch)]);
    }
    node_rs_[k] = m;
  }

  // Neighbor lists: per-i tree query in DFS order (deterministic), inner
  // pairs (K guaranteed 1 for the whole epoch) ahead of transition pairs.
  nbr_scratch_.resize(n);
  inner_count_.resize(n);
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::vector<std::uint32_t> inner, trans;
    std::vector<std::int32_t> stack;
    for (std::size_t i = b; i < e; ++i) {
      inner.clear();
      trans.clear();
      const Vec3 xi = epoch_pos_[i];
      const double rs_i = rs_[i];
      stack.clear();
      stack.push_back(0);
      while (!stack.empty()) {
        const std::int32_t nk = stack.back();
        stack.pop_back();
        const TreeNode& node = nodes[static_cast<std::size_t>(nk)];
        const double reach =
            std::max(rs_i, node_rs_[static_cast<std::size_t>(nk)]);
        if (box_dist2(node, xi) >= reach * reach) continue;
        if (node.leaf) {
          for (std::uint32_t q = node.first; q < node.first + node.count; ++q) {
            const std::uint32_t p = order[q];
            if (p == i) continue;
            const Vec3 d = epoch_pos_[p] - xi;
            const double d2 = norm2(d);
            const double rij = std::max(rs_i, rs_[p]);
            if (d2 >= rij * rij) continue;
            const double r = std::sqrt(d2);
            if (r + reach_[i] + reach_[p] <= r_in)
              inner.push_back(p);
            else
              trans.push_back(p);
          }
        } else {
          // Push in reverse so children pop in ascending octant order.
          for (int oct = 7; oct >= 0; --oct)
            if (node.child[oct] >= 0) stack.push_back(node.child[oct]);
        }
      }
      auto& dst = nbr_scratch_[i];
      dst.clear();
      dst.insert(dst.end(), inner.begin(), inner.end());
      dst.insert(dst.end(), trans.begin(), trans.end());
      inner_count_[i] = static_cast<std::uint32_t>(inner.size());
    }
  });

  nbr_start_.resize(n + 1);
  nbr_inner_end_.resize(n);
  nbr_start_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nbr_start_[i + 1] =
        nbr_start_[i] + static_cast<std::uint32_t>(nbr_scratch_[i].size());
    nbr_inner_end_[i] = nbr_start_[i] + inner_count_[i];
  }
  nbr_.resize(nbr_start_[n]);
  for (std::size_t i = 0; i < n; ++i)
    std::copy(nbr_scratch_[i].begin(), nbr_scratch_[i].end(),
              nbr_.begin() + nbr_start_[i]);

  // Close-encounter groups: union-find over epoch pairs inside the mutual
  // group radius (a few mutual Hill radii, capped at r_in — so members sit
  // on the pure K = 1 direct path by construction). Serial and in index
  // order: deterministic.
  group_parent_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    group_parent_[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t q = nbr_start_[i]; q < nbr_start_[i + 1]; ++q) {
      const std::uint32_t j = nbr_[q];
      if (j <= i) continue;  // each pair once
      double rg = r_in;
      if (cfg_.gm_central > 0.0) {
        const double a =
            0.5 * (g6::util::norm(epoch_pos_[i]) + g6::util::norm(epoch_pos_[j]));
        const double rh = g6::disk::hill_radius(
            a, epoch_mass_[i] + epoch_mass_[j], cfg_.gm_central);
        rg = std::min(cfg_.group_factor * rh, r_in);
      }
      const Vec3 d = epoch_pos_[j] - epoch_pos_[i];
      if (norm2(d) < rg * rg) {
        const std::uint32_t ri = find_group(static_cast<std::uint32_t>(i));
        const std::uint32_t rj = find_group(j);
        if (ri != rj) group_parent_[std::max(ri, rj)] = std::min(ri, rj);
      }
    }
  }
  group_size_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    ++group_size_[find_group(static_cast<std::uint32_t>(i))];
  group_count_ = 0;
  grouped_particles_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (group_size_[i] >= 2) {
      ++group_count_;
      grouped_particles_ += group_size_[i];
    }
  }

  tree_valid_ = true;

  neighbor_pairs_metric_.set(static_cast<double>(nbr_.size()));
  groups_metric_.set(static_cast<double>(group_count_));
  grouped_metric_.set(static_cast<double>(grouped_particles_));
  epoch_dt_metric_.set(dt_epoch);
  r_out_metric_.set(r_out);
}

std::uint32_t P3THybridBackend::find_group(std::uint32_t i) const {
  std::uint32_t r = i;
  while (group_parent_[r] != r) r = group_parent_[r];
  while (group_parent_[i] != r) {
    const std::uint32_t next = group_parent_[i];
    group_parent_[i] = r;
    i = next;
  }
  return r;
}

std::uint32_t P3THybridBackend::group_of(std::size_t i) const {
  G6_CHECK(tree_valid_ && i < group_parent_.size(), "p3t: no epoch built");
  return find_group(static_cast<std::uint32_t>(i));
}

std::span<const std::uint32_t> P3THybridBackend::neighbors(
    std::size_t i) const {
  G6_CHECK(tree_valid_ && i + 1 < nbr_start_.size(), "p3t: no epoch built");
  return std::span<const std::uint32_t>(nbr_).subspan(
      nbr_start_[i], nbr_start_[i + 1] - nbr_start_[i]);
}

std::uint64_t P3THybridBackend::walk_tree(const Vec3& xi, const Vec3& vi,
                                          Force& f) const {
  const auto nodes = tree_.nodes();
  const auto order = tree_.order();
  const auto tpos = tree_.positions();
  const auto tvel = tree_.velocities();
  const auto tmass = tree_.masses();
  const double eps2 = eps_ * eps_;
  const double theta2 = cfg_.theta * cfg_.theta;
  const double r_out2 = change_.r_out * change_.r_out;
  std::uint64_t ops = 0;

  const auto rec = [&](const auto& self, std::int32_t nk) -> void {
    const TreeNode& node = nodes[static_cast<std::size_t>(nk)];
    if (node.count == 0) return;

    const Vec3 d = xi - node.com;
    const double r2 = norm2(d) + eps2;
    const double s = 2.0 * node.half;
    // Open on the angle criterion, or whenever the cell could hold particles
    // inside r_out: accepted cells are then entirely beyond the changeover
    // shell and carry weight exactly 1 (box_dist2 = 0 covers "xi inside").
    const bool must_open =
        s * s >= theta2 * r2 || box_dist2(node, xi) < r_out2;

    if (must_open && !node.leaf) {
      for (const std::int32_t ch : node.child)
        if (ch >= 0) self(self, ch);
      return;
    }

    if (must_open) {
      // Leaf inside (or straddling) the shell: per-particle epoch forces,
      // weighted (1 - K). The weight vanishes for every K = 1 pair —
      // including the i-particle itself (r ≈ 0) — so no index exclusion is
      // needed, and pairs handled fully by the direct path contribute
      // nothing here.
      for (std::uint32_t q = node.first; q < node.first + node.count; ++q) {
        const std::uint32_t p = order[q];
        const Vec3 dr = tpos[p] - xi;
        const double re2 = norm2(dr);
        const double re = std::sqrt(re2);
        const double w = 1.0 - change_.K(re);
        if (w == 0.0) continue;
        const double rp2 = re2 + eps2;
        const double rinv = 1.0 / std::sqrt(rp2);
        const double rinv2 = rinv * rinv;
        const double mr3 = tmass[p] * rinv * rinv2;
        const Vec3 dv = tvel[p] - vi;
        const Vec3 a_e = mr3 * dr;
        f.acc += w * a_e;
        f.jerk += w * (mr3 * (dv - 3.0 * (dot(dr, dv) * rinv2) * dr));
        const double dK = change_.dKdr(re);
        if (dK != 0.0) f.jerk -= (dK * (dot(dr, dv) / re)) * a_e;
        f.pot -= w * tmass[p] * rinv;
        ++ops;
      }
      return;
    }

    // Accepted cell: monopole (+ optional quadrupole) and the mean-velocity
    // jerk — the cell acts as one pseudo-particle at (com, vcom).
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double mr3 = node.mass * rinv * rinv2;
    const Vec3 dvd = vi - node.vcom;
    f.acc -= mr3 * d;
    f.jerk -= mr3 * (dvd - 3.0 * (dot(d, dvd) * rinv2) * d);
    f.pot -= node.mass * rinv;
    if (cfg_.quadrupole) {
      const double* q = node.quad;
      const Vec3 qd{q[0] * d.x + q[3] * d.y + q[4] * d.z,
                    q[3] * d.x + q[1] * d.y + q[5] * d.z,
                    q[4] * d.x + q[5] * d.y + q[2] * d.z};
      const double dqd = dot(d, qd);
      const double rinv5 = rinv2 * rinv2 * rinv;
      const double rinv7 = rinv5 * rinv2;
      f.acc += qd * rinv5 - (2.5 * dqd * rinv7) * d;
      f.pot -= 0.5 * dqd * rinv5;
    }
    ++ops;
  };
  rec(rec, 0);
  return ops;
}

void P3THybridBackend::eval(double t, std::span<const std::uint32_t> ilist,
                            std::span<const Vec3> pos,
                            std::span<const Vec3> vel, std::span<Force> out) {
  G6_CHECK(out.size() == ilist.size(), "p3t: output span size mismatch");
  ensure_epoch(t);
  const double eps2 = eps_ * eps_;
  std::atomic<std::uint64_t> tree_ops{0}, direct_ops{0};

  const auto chunk = [&](std::size_t cb, std::size_t ce) {
    g6::nbody::SoAPredicted js;  // per-chunk scratch: grow-only within chunk
    std::uint64_t local_tree = 0, local_direct = 0;
    for (std::size_t k = cb; k < ce; ++k) {
      const std::uint32_t i = ilist[k];
      Vec3 xi, vi;
      if (pos.empty()) {
        const auto p = g6::nbody::hermite_predict(x0_[i], v0_[i], a0_[i],
                                                  j0_[i], t - t0_[i]);
        xi = p.pos;
        vi = p.vel;
      } else {
        xi = pos[k];
        vi = vel[k];
      }

      Force f{};
      local_tree += walk_tree(xi, vi, f);

      // Near field. Inner pairs (K = 1 guaranteed): fresh predictions batched
      // through the dispatched direct kernel — the same bit-reproducible
      // SIMD path CpuDirectBackend runs.
      const std::uint32_t nb = nbr_start_[i];
      const std::uint32_t ni = nbr_inner_end_[i];
      const std::uint32_t ne = nbr_start_[i + 1];
      const std::size_t ninner = ni - nb;
      if (ninner > 0) {
        js.resize(ninner);
        for (std::size_t q = 0; q < ninner; ++q) {
          const std::uint32_t j = nbr_[nb + q];
          const auto pj = g6::nbody::hermite_predict(x0_[j], v0_[j], a0_[j],
                                                     j0_[j], t - t0_[j]);
          js.x[q] = pj.pos.x;
          js.y[q] = pj.pos.y;
          js.z[q] = pj.pos.z;
          js.vx[q] = pj.vel.x;
          js.vy[q] = pj.vel.y;
          js.vz[q] = pj.vel.z;
          js.m[q] = mass_[j];
        }
        js.mixed_valid = false;
        g6::nbody::force_on_i(cfg_.kernel, js, xi, vi, g6::nbody::kNoSelf,
                              eps2, f);
        local_direct += ninner;
      }

      // Transition pairs: fresh force at weight K(r_fresh) plus the epoch
      // correction (K(r_epoch) - K(r_fresh)) * f_epoch, which together with
      // the tree-leaf term (1 - K(r_epoch)) * f_epoch makes the pair total
      // exactly K(r_fresh) * f_fresh + (1 - K(r_fresh)) * f_epoch — a true
      // partition of unity with the fresh separation as argument.
      for (std::uint32_t q = ni; q < ne; ++q) {
        const std::uint32_t j = nbr_[q];
        const auto pj = g6::nbody::hermite_predict(x0_[j], v0_[j], a0_[j],
                                                   j0_[j], t - t0_[j]);
        const Vec3 dr_f = pj.pos - xi;
        const Vec3 dv_f = pj.vel - vi;
        const double rf2 = norm2(dr_f);
        const double rf = std::sqrt(rf2);
        const double Kf = change_.K(rf);
        const Vec3 dr_e = epoch_pos_[j] - xi;
        const Vec3 dv_e = epoch_vel_[j] - vi;
        const double re2 = norm2(dr_e);
        const double re = std::sqrt(re2);
        const double Ke = change_.K(re);
        const double wc = Ke - Kf;

        if (Kf != 0.0) {
          const double r2 = rf2 + eps2;
          const double rinv = 1.0 / std::sqrt(r2);
          const double rinv2 = rinv * rinv;
          const double mr3 = mass_[j] * rinv * rinv2;
          const Vec3 a_f = mr3 * dr_f;
          f.acc += Kf * a_f;
          f.jerk +=
              Kf * (mr3 * (dv_f - 3.0 * (dot(dr_f, dv_f) * rinv2) * dr_f));
          f.pot -= Kf * mass_[j] * rinv;
          const double dKf = change_.dKdr(rf);
          if (dKf != 0.0) f.jerk += (dKf * (dot(dr_f, dv_f) / rf)) * a_f;
        }
        if (wc != 0.0) {
          const double r2 = re2 + eps2;
          const double rinv = 1.0 / std::sqrt(r2);
          const double rinv2 = rinv * rinv;
          const double mr3 = epoch_mass_[j] * rinv * rinv2;
          const Vec3 a_e = mr3 * dr_e;
          f.acc += wc * a_e;
          f.jerk +=
              wc * (mr3 * (dv_e - 3.0 * (dot(dr_e, dv_e) * rinv2) * dr_e));
          f.pot -= wc * epoch_mass_[j] * rinv;
        }
        // Weight-rate cross terms on the epoch force: d/dt of the pair's
        // epoch weight, combining this loop's (Ke - Kf) with the tree's
        // (1 - Ke) so the total epoch weight is (1 - K(r_fresh)).
        const double dKe = change_.dKdr(re);
        const double dKf = change_.dKdr(rf);
        if (dKe != 0.0 || dKf != 0.0) {
          const double r2 = re2 + eps2;
          const double rinv = 1.0 / std::sqrt(r2);
          const double mr3 = epoch_mass_[j] * rinv * rinv * rinv;
          const Vec3 a_e = mr3 * dr_e;
          double rate = 0.0;
          if (dKe != 0.0 && re > 0.0) rate += dKe * (dot(dr_e, dv_e) / re);
          if (dKf != 0.0 && rf > 0.0) rate -= dKf * (dot(dr_f, dv_f) / rf);
          f.jerk += rate * a_e;
        }
        ++local_direct;
      }

      out[k] = f;
    }
    tree_ops.fetch_add(local_tree, std::memory_order_relaxed);
    direct_ops.fetch_add(local_direct, std::memory_order_relaxed);
  };

  pool_->parallel_for(ilist.size(), chunk);

  const std::uint64_t to = tree_ops.load(std::memory_order_relaxed);
  const std::uint64_t dp = direct_ops.load(std::memory_order_relaxed);
  interactions_.fetch_add(to + dp, std::memory_order_relaxed);
  tree_inter_metric_.add(to);
  direct_inter_metric_.add(dp);
}

std::vector<std::uint8_t> P3THybridBackend::save_checkpoint_state() const {
  if (!tree_valid_) return {};
  const std::uint64_t n = epoch_mass_.size();
  std::vector<std::uint8_t> blob;
  blob.reserve(sizeof(kBlobMagic) + 2 * sizeof(std::uint32_t) +
               6 * sizeof(double) + sizeof(std::uint64_t) +
               static_cast<std::size_t>(n) * 7 * sizeof(double));
  append_bytes(blob, kBlobMagic, sizeof(kBlobMagic));
  append_pod(blob, kBlobVersion);
  append_pod(blob, std::uint32_t{0});  // reserved
  append_pod(blob, n);
  append_pod(blob, cfg_.theta);
  append_pod(blob, change_.r_in);
  append_pod(blob, change_.r_out);
  append_pod(blob, t_epoch_);
  append_pod(blob, next_rebuild_);
  for (std::uint64_t j = 0; j < n; ++j) {
    append_pod(blob, epoch_pos_[j].x);
    append_pod(blob, epoch_pos_[j].y);
    append_pod(blob, epoch_pos_[j].z);
  }
  for (std::uint64_t j = 0; j < n; ++j) {
    append_pod(blob, epoch_vel_[j].x);
    append_pod(blob, epoch_vel_[j].y);
    append_pod(blob, epoch_vel_[j].z);
  }
  for (std::uint64_t j = 0; j < n; ++j) append_pod(blob, epoch_mass_[j]);
  return blob;
}

void P3THybridBackend::load_checkpoint_state(
    std::span<const std::uint8_t> blob) {
  if (blob.empty()) return;  // checkpoint predates the first epoch
  std::size_t off = 0;
  char magic[8];
  G6_CHECK(blob.size() >= sizeof(magic), "p3t checkpoint blob truncated");
  std::memcpy(magic, blob.data(), sizeof(magic));
  off = sizeof(magic);
  G6_CHECK(std::memcmp(magic, kBlobMagic, sizeof(magic)) == 0,
           "p3t checkpoint blob: bad magic");
  const auto version = read_pod<std::uint32_t>(blob, off);
  G6_CHECK(version == kBlobVersion, "p3t checkpoint blob: unknown version");
  (void)read_pod<std::uint32_t>(blob, off);  // reserved
  const auto n = read_pod<std::uint64_t>(blob, off);
  G6_CHECK(n == mass_.size(),
           "p3t checkpoint blob: particle count mismatch (load() first)");
  const auto theta = read_pod<double>(blob, off);
  G6_CHECK(theta == cfg_.theta,
           "p3t checkpoint blob: theta differs from configured value");
  const auto r_in = read_pod<double>(blob, off);
  const auto r_out = read_pod<double>(blob, off);
  G6_CHECK(r_out > r_in && r_in > 0.0, "p3t checkpoint blob: bad radii");
  const auto t_epoch = read_pod<double>(blob, off);
  const auto next_rebuild = read_pod<double>(blob, off);

  epoch_pos_.resize(n);
  epoch_vel_.resize(n);
  epoch_mass_.resize(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    epoch_pos_[j].x = read_pod<double>(blob, off);
    epoch_pos_[j].y = read_pod<double>(blob, off);
    epoch_pos_[j].z = read_pod<double>(blob, off);
  }
  for (std::uint64_t j = 0; j < n; ++j) {
    epoch_vel_[j].x = read_pod<double>(blob, off);
    epoch_vel_[j].y = read_pod<double>(blob, off);
    epoch_vel_[j].z = read_pod<double>(blob, off);
  }
  for (std::uint64_t j = 0; j < n; ++j)
    epoch_mass_[j] = read_pod<double>(blob, off);
  G6_CHECK(off == blob.size(), "p3t checkpoint blob: trailing bytes");

  // Adopt the saved epoch and rebuild every derived structure from it: the
  // resumed run then evaluates forces against exactly the tree and lists
  // the uninterrupted run was using.
  change_ = Changeover{r_in, r_out};
  radii_set_ = true;
  t_epoch_ = t_epoch;
  next_rebuild_ = next_rebuild;
  finalize_epoch();
}

}  // namespace g6::p3t
