#pragma once
/// \file client.hpp
/// \brief Client — thin blocking client for the g6serve line protocol.
///
/// One TCP connection, one JSON line per request, one per reply
/// (docs/SERVING.md). Shared by the load generator (examples/g6load), the
/// saturation bench (bench/bench_serve.cpp) and the tests so they all speak
/// the wire protocol instead of private server hooks. Transport failures
/// (connect refused, mid-reply EOF, reply deadline) raise g6::util::Error;
/// protocol-level rejections are returned as values.

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "serve/job.hpp"

namespace g6::serve {

/// What a submit op came back with.
struct SubmitReply {
  bool ok = false;        ///< accepted
  bool rejected = false;  ///< admission said no (reason below)
  std::string reason;     ///< reject_reason_name when rejected
  std::string error;      ///< transport-visible error text when !ok
  std::string id;         ///< job id when accepted
  std::string key;        ///< 16-hex-digit cache key when accepted
  bool cached = false;    ///< served from the result cache at admission
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:\p port. Returns false on refusal.
  bool connect(int port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Send one request line, read one reply line, parse it. \p timeout is
  /// the reply deadline in seconds (waits server-side may take a while).
  g6::obs::JsonValue call(const std::string& line, double timeout = 60.0);

  SubmitReply submit(const JobRequest& req);

  /// Block until the job is terminal; returns the reply's "job" object.
  /// Raises on timeout or unknown id.
  g6::obs::JsonValue wait(const std::string& id, double timeout = 60.0);

  g6::obs::JsonValue status(const std::string& id);

  /// Fetch and hex-decode a done job's result (G6SNAPB2 bytes); verifies
  /// the reply's crc32. Raises when the job has no result.
  std::string result_bytes(const std::string& id);

  g6::obs::JsonValue stats();

  /// Ask the server to exit its main loop ({"op":"shutdown"}).
  void shutdown_server();

 private:
  int fd_ = -1;
};

}  // namespace g6::serve
