#pragma once
/// \file scheduler.hpp
/// \brief Scheduler — bounded admission queue, per-tenant quotas and
///        priorities, and dedicated worker lanes running simulations.
///
/// The GRAPE-6 installation was a shared facility: many users' runs queued
/// onto fixed capacity, and the schedulers of the day admitted, prioritised
/// or refused — they did not buffer without bound. This is that discipline
/// in software:
///
///   * admission control — a full queue or an over-quota tenant is refused
///     *now* with a machine-readable reason (RejectReason), instead of
///     queueing work the server cannot promise to run;
///   * per-tenant quotas — max live jobs and max live particles per tenant,
///     plus a base priority; a burst from one tenant cannot starve another
///     (TenantQuota, SchedulerConfig.tenant_quotas);
///   * priority scheduling — queued jobs are ordered by effective priority
///     (tenant base + per-request bump), FIFO within a level;
///   * result caching — a submission whose job_key hits the ResultCache is
///     answered terminal-done at admission with zero integrator steps;
///   * fault isolation — a worker exception (including the deterministic
///     fault_after_blocks injection) fails THAT job and releases its quota;
///     the lane survives and takes the next job.
///
/// Each worker lane runs its job with a private serial ThreadPool(1): the
/// shared pool's parallel_for is not safe for concurrent external callers,
/// so lanes follow CampaignRunner's one-lane-per-job discipline — jobs are
/// concurrent with each other, serial within (docs/SERVING.md).
///
/// Metrics: g6.serve.{jobs_submitted,jobs_completed,jobs_failed,
/// jobs_rejected,rejected.<reason>,steps_executed} counters,
/// g6.serve.{queue_depth,running} gauges, g6.serve.latency_seconds
/// histogram (submit-to-terminal wall seconds).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/job.hpp"
#include "serve/result_cache.hpp"

namespace g6::serve {

/// Per-tenant admission limits. Live = queued + running.
struct TenantQuota {
  int max_concurrent = 4;                  ///< live jobs
  std::uint64_t max_particles = 1 << 20;   ///< sum of live jobs' n
  int priority = 0;                        ///< base priority (higher = sooner)
};

struct SchedulerConfig {
  int workers = 2;  ///< concurrent job lanes (0 = paused: admit, never run)
  std::size_t max_queue = 32;              ///< queued (not yet running) jobs
  std::uint64_t max_job_particles = 1 << 18;  ///< hard per-job n cap
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;  ///< overrides by name
  std::size_t keep_records = 4096;  ///< terminal records retained for /jobs
};

/// What submit() tells the client.
struct SubmitOutcome {
  bool accepted = false;
  RejectReason reason = RejectReason::kBadRequest;  ///< valid when !accepted
  std::string id;       ///< valid when accepted
  std::uint64_t key = 0;
  bool cached = false;  ///< answered from the result cache, already done
};

/// Point-in-time queue/lane occupancy (the protocol's "stats" op).
struct SchedulerStats {
  std::size_t queued = 0, running = 0;
  std::uint64_t submitted = 0, completed = 0, failed = 0, rejected = 0;
};

class Scheduler {
 public:
  /// The cache outlives the scheduler (the job server owns both).
  Scheduler(SchedulerConfig cfg, ResultCache& cache);
  ~Scheduler();  ///< stop()s if running
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();
  /// Stop accepting, fail still-queued jobs with "server shutdown", join
  /// the lanes (running jobs finish first).
  void stop();

  /// Admission: quota/queue checks, cache probe, enqueue. Never blocks on
  /// job execution.
  SubmitOutcome submit(const JobRequest& req);

  /// Copy of one job's record; nullopt for an unknown id.
  std::optional<JobRecord> record(const std::string& id) const;

  /// Copies of every retained record, oldest first.
  std::vector<JobRecord> records() const;

  /// Result bytes of a done job (computed or cache-served). False when the
  /// id is unknown or the job is not kDone.
  bool result(const std::string& id, std::string* bytes) const;

  /// Block until \p id is terminal (kDone/kFailed) or \p timeout_seconds
  /// passes. Returns the record, nullopt on unknown id or timeout.
  std::optional<JobRecord> wait(const std::string& id, double timeout_seconds);

  SchedulerStats stats() const;
  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Job {
    JobRecord record;
    std::string result;  ///< result bytes once kDone
  };

  const TenantQuota& quota_for(const std::string& tenant) const;
  void worker_loop();
  void run_job(Job& job);
  void finish_locked(Job& job, ServeJobState state);
  void prune_locked();
  double now_seconds() const;

  SchedulerConfig cfg_;
  ResultCache& cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< lanes wait here for queued jobs
  std::condition_variable cv_done_;  ///< wait() callers wait here
  bool started_ = false;
  bool shutting_down_ = false;
  std::uint64_t next_seq_ = 0;

  /// Queued job ids ordered by (-effective priority, submit seq).
  std::map<std::pair<int, std::uint64_t>, std::string> queue_;
  std::map<std::string, std::unique_ptr<Job>> jobs_;  ///< by id
  std::deque<std::string> job_order_;                 ///< creation order
  struct TenantLive {
    int jobs = 0;
    std::uint64_t particles = 0;
  };
  std::map<std::string, TenantLive> live_;
  std::size_t running_ = 0;
  std::vector<std::thread> lanes_;
  std::chrono::steady_clock::time_point epoch_;

  g6::obs::Counter submitted_, completed_, failed_, rejected_;
  g6::obs::Counter rejected_by_reason_[6];
  g6::obs::Counter steps_executed_;
  g6::obs::Gauge queue_gauge_, running_gauge_;
  g6::obs::LogHistogram latency_;
};

}  // namespace g6::serve
