#include "serve/job.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "nbody/integrator.hpp"
#include "run/checkpoint.hpp"
#include "util/check.hpp"

namespace g6::serve {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Append-only on purpose: chained std::string operator+ trips a GCC 12
// -Wrestrict false positive at -O3 (PR105329) under -Werror CI builds.
std::string quoted(const std::string& s) {
  std::string out;
  out += '"';
  out += g6::obs::json_escape(s);
  out += '"';
  return out;
}

double number_field(const g6::obs::JsonValue& v, const std::string& name) {
  G6_CHECK(v.is_number(), "job field '" + name + "' must be a number");
  return v.as_number();
}

std::uint64_t uint_field(const g6::obs::JsonValue& v, const std::string& name) {
  const double d = number_field(v, name);
  G6_CHECK(d >= 0.0 && d == std::floor(d),
           "job field '" + name + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::string string_field(const g6::obs::JsonValue& v, const std::string& name) {
  G6_CHECK(v.is_string(), "job field '" + name + "' must be a string");
  return v.as_string();
}

}  // namespace

const char* serve_job_state_name(ServeJobState s) {
  switch (s) {
    case ServeJobState::kQueued: return "queued";
    case ServeJobState::kRunning: return "running";
    case ServeJobState::kDone: return "done";
    case ServeJobState::kFailed: return "failed";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kJobTooLarge: return "job_too_large";
    case RejectReason::kTenantConcurrent: return "tenant_concurrent";
    case RejectReason::kTenantParticles: return "tenant_particles";
    case RejectReason::kBadRequest: return "bad_request";
    case RejectReason::kShuttingDown: return "shutting_down";
  }
  return "?";
}

std::uint64_t job_key(const JobRequest& req) {
  g6::nbody::IntegratorConfig icfg;
  icfg.eta = req.eta;
  icfg.eta_init = req.eta / 2.0;
  icfg.dt_max = req.dt_max;
  icfg.solar_gm = req.model == "disk" ? 1.0 : 0.0;
  // IC identity beyond what config_hash covers, in the same canonical
  // 17-digit text form, folded into the extra word.
  std::ostringstream extra;
  extra.precision(17);
  extra << req.model << '|' << req.seed << '|' << req.t_end << '|' << req.mpp
        << '|' << (req.backend == "cluster" ? req.hosts : 0);
  return g6::run::config_hash(icfg, req.backend, req.eps, req.n,
                              fnv1a64(extra.str()));
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

JobRequest parse_job(const g6::obs::JsonValue& v) {
  G6_CHECK(v.is_object(), "job spec must be a JSON object");
  JobRequest req;
  for (const auto& [name, value] : v.as_object()) {
    if (name == "tenant") {
      req.tenant = string_field(value, name);
    } else if (name == "priority") {
      req.priority = static_cast<int>(number_field(value, name));
    } else if (name == "model") {
      req.model = string_field(value, name);
    } else if (name == "backend") {
      req.backend = string_field(value, name);
    } else if (name == "n") {
      req.n = uint_field(value, name);
    } else if (name == "seed") {
      req.seed = uint_field(value, name);
    } else if (name == "eta") {
      req.eta = number_field(value, name);
    } else if (name == "dt_max") {
      req.dt_max = number_field(value, name);
    } else if (name == "t_end") {
      req.t_end = number_field(value, name);
    } else if (name == "mpp") {
      req.mpp = number_field(value, name);
    } else if (name == "eps") {
      req.eps = number_field(value, name);
    } else if (name == "hosts") {
      req.hosts = static_cast<int>(number_field(value, name));
    } else if (name == "fault_after_blocks") {
      req.fault_after_blocks = uint_field(value, name);
    } else if (name == "no_cache") {
      G6_CHECK(value.is_bool(), "job field 'no_cache' must be a bool");
      req.no_cache = value.as_bool();
    } else {
      g6::util::raise("unknown job field '" + name + "'");
    }
  }
  G6_CHECK(req.n > 0, "job needs n > 0");
  G6_CHECK(req.t_end > 0.0, "job needs t_end > 0");
  G6_CHECK(req.eta > 0.0, "job needs eta > 0");
  G6_CHECK(req.dt_max > 0.0, "job needs dt_max > 0");
  G6_CHECK(req.model == "disk" || req.model == "plummer" ||
               req.model == "coldsphere",
           "unknown model '" + req.model + "' (want disk|plummer|coldsphere)");
  G6_CHECK(req.backend == "cpu" || req.backend == "grape" ||
               req.backend == "cluster" || req.backend == "p3t",
           "unknown backend '" + req.backend +
               "' (want cpu|grape|cluster|p3t)");
  return req;
}

std::string job_json(const JobRequest& req) {
  using g6::obs::json_number;
  using std::to_string;
  std::string out = "{";
  out += "\"tenant\":" + quoted(req.tenant);
  out += ",\"priority\":" + to_string(req.priority);
  out += ",\"model\":" + quoted(req.model);
  out += ",\"backend\":" + quoted(req.backend);
  out += ",\"n\":" + to_string(req.n);
  out += ",\"seed\":" + to_string(req.seed);
  out += ",\"eta\":" + json_number(req.eta);
  out += ",\"dt_max\":" + json_number(req.dt_max);
  out += ",\"t_end\":" + json_number(req.t_end);
  out += ",\"mpp\":" + json_number(req.mpp);
  out += ",\"eps\":" + json_number(req.eps);
  out += ",\"hosts\":" + to_string(req.hosts);
  if (req.fault_after_blocks != 0)
    out += ",\"fault_after_blocks\":" + to_string(req.fault_after_blocks);
  if (req.no_cache) out += ",\"no_cache\":true";
  out += "}";
  return out;
}

std::string record_json(const JobRecord& rec) {
  using g6::obs::json_number;
  using std::to_string;
  std::string out = "{";
  out += "\"id\":" + quoted(rec.id);
  out += ",\"tenant\":" + quoted(rec.request.tenant);
  out += ",\"state\":" + quoted(serve_job_state_name(rec.state));
  out += ",\"key\":" + quoted(key_hex(rec.key));
  out += ",\"cache_hit\":" + std::string(rec.cache_hit ? "true" : "false");
  out += ",\"model\":" + quoted(rec.request.model);
  out += ",\"backend\":" + quoted(rec.request.backend);
  out += ",\"n\":" + to_string(rec.request.n);
  out += ",\"seed\":" + to_string(rec.request.seed);
  out += ",\"t_end\":" + json_number(rec.request.t_end);
  out += ",\"priority\":" + to_string(rec.request.priority);
  out += ",\"submit_seconds\":" + json_number(rec.submit_seconds);
  out += ",\"start_seconds\":" + json_number(rec.start_seconds);
  out += ",\"finish_seconds\":" + json_number(rec.finish_seconds);
  out += ",\"t_sys\":" + json_number(rec.t_sys);
  out += ",\"blocks\":" + to_string(rec.blocks);
  out += ",\"steps\":" + to_string(rec.steps);
  out += ",\"result_bytes\":" + to_string(rec.result_bytes);
  out += ",\"result_crc32\":" + to_string(rec.result_crc32);
  out += ",\"error\":" + quoted(rec.error);
  out += "}";
  return out;
}

}  // namespace g6::serve
