#include "serve/result_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "serve/job.hpp"
#include "util/crc.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;

namespace g6::serve {

namespace {

// Spill-file framing: magic, payload size, payload CRC-32, payload. The
// frame detects truncation/corruption; the payload is the raw result bytes.
constexpr char kSpillMagic[8] = {'G', '6', 'R', 'C', 'A', 'C', 'H', '1'};

}  // namespace

ResultCache::ResultCache(ResultCacheConfig cfg) : cfg_(std::move(cfg)) {
  auto& reg = g6::obs::MetricsRegistry::global();
  hits_ = reg.counter("g6.serve.cache.hits");
  misses_ = reg.counter("g6.serve.cache.misses");
  evictions_ = reg.counter("g6.serve.cache.evictions");
  disk_hits_ = reg.counter("g6.serve.cache.disk_hits");
  bytes_gauge_ = reg.gauge("g6.serve.cache.bytes");
  entries_gauge_ = reg.gauge("g6.serve.cache.entries");
  if (!cfg_.persist_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.persist_dir, ec);
    if (ec)
      G6_LOG_WARN("serve: cannot create cache dir " + cfg_.persist_dir +
                  ": " + ec.message());
  }
}

bool ResultCache::lookup(std::uint64_t key, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.erase(it->second.lru_it);
      lru_.push_front(key);
      it->second.lru_it = lru_.begin();
      if (out != nullptr) *out = it->second.bytes;
      hits_.add();
      return true;
    }
  }
  if (!cfg_.persist_dir.empty()) {
    std::string bytes;
    if (load_spill(key, &bytes)) {
      hits_.add();
      disk_hits_.add();
      // Re-admit to the memory tier (skips spill rewrite: same bytes).
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (map_.find(key) == map_.end() && bytes.size() <= cfg_.max_bytes) {
          evict_to_fit_locked(bytes.size());
          lru_.push_front(key);
          map_[key] = Entry{lru_.begin(), bytes};
          bytes_ += bytes.size();
          publish_locked();
        }
      }
      if (out != nullptr) *out = std::move(bytes);
      return true;
    }
  }
  misses_.add();
  return false;
}

bool ResultCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

void ResultCache::insert(std::uint64_t key, const std::string& bytes) {
  if (!cfg_.persist_dir.empty()) store_spill(key, bytes);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Same key, same deterministic bytes — just promote.
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return;
  }
  if (bytes.size() > cfg_.max_bytes) return;  // would evict everything
  evict_to_fit_locked(bytes.size());
  lru_.push_front(key);
  map_[key] = Entry{lru_.begin(), bytes};
  bytes_ += bytes.size();
  publish_locked();
}

std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void ResultCache::evict_to_fit_locked(std::size_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > cfg_.max_bytes) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = map_.find(victim);
    bytes_ -= it->second.bytes.size();
    map_.erase(it);
    evictions_.add();
  }
  publish_locked();
}

std::string ResultCache::spill_path(std::uint64_t key) const {
  return cfg_.persist_dir + "/" + key_hex(key) + ".bsnap";
}

bool ResultCache::load_spill(std::uint64_t key, std::string* out) const {
  const std::string path = spill_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  in.read(magic, sizeof magic);
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  in.read(reinterpret_cast<char*>(&crc), sizeof crc);
  std::string bytes;
  if (in && std::memcmp(magic, kSpillMagic, sizeof magic) == 0 &&
      size < (1ull << 40)) {
    bytes.resize(size);
    in.read(bytes.data(), static_cast<std::streamsize>(size));
  }
  if (!in || std::memcmp(magic, kSpillMagic, sizeof magic) != 0 ||
      g6::util::crc32(bytes.data(), bytes.size()) != crc) {
    in.close();
    std::error_code ec;
    fs::remove(path, ec);  // corrupt spill: drop it, count a miss
    return false;
  }
  *out = std::move(bytes);
  return true;
}

void ResultCache::store_spill(std::uint64_t key, const std::string& bytes) const {
  const std::string path = spill_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    const std::uint64_t size = bytes.size();
    const std::uint32_t crc = g6::util::crc32(bytes.data(), bytes.size());
    out.write(kSpillMagic, sizeof kSpillMagic);
    out.write(reinterpret_cast<const char*>(&size), sizeof size);
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

void ResultCache::publish_locked() {
  bytes_gauge_.set(static_cast<double>(bytes_));
  entries_gauge_.set(static_cast<double>(map_.size()));
}

}  // namespace g6::serve
