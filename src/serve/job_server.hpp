#pragma once
/// \file job_server.hpp
/// \brief JobServer — the long-lived simulation-as-a-service daemon core:
///        line-delimited JSON protocol on a localhost TCP socket, plus
///        `/jobs` HTTP endpoints on a MonitorServer.
///
/// Wire protocol (docs/SERVING.md has the grammar): one JSON object per
/// line in each direction, UTF-8, '\n'-terminated. Requests carry an "op":
///
///   {"op":"submit","job":{...}}   -> {"ok":true,"id":"j-0","key":"<hex16>",
///                                     "cached":false}
///                                  | {"ok":false,"rejected":true,
///                                     "reason":"queue_full"}
///   {"op":"status","id":"j-0"}    -> {"ok":true,"job":{<record>}}
///   {"op":"wait","id":"j-0","timeout":30}
///                                 -> {"ok":true,"job":{...}} | timeout error
///   {"op":"result","id":"j-0"}    -> {"ok":true,"bytes":N,"crc32":C,
///                                     "data":"<hex>"}  (G6SNAPB2 payload)
///   {"op":"stats"}                -> {"ok":true,...queue/cache counters...}
///   {"op":"ping"}                 -> {"ok":true}
///   {"op":"shutdown"}             -> {"ok":true}  (then wants_shutdown())
///
/// Malformed JSON, unknown ops and invalid job specs answer
/// {"ok":false,"error":"..."} — the connection survives; an unparseable
/// job also counts one g6.serve.rejected.bad_request.
///
/// HTTP (read side, via attach_http): GET /jobs (stats + every retained
/// record), GET /jobs/<id>, GET /jobs/<id>/result (application/octet-stream
/// snapshot bytes), POST /jobs (submit; 200 accepted / 429 rejected with
/// the reason). The daemon wires these onto its Monitor's server so one
/// port serves /metrics, /progress and /jobs alike.
///
/// Fault isolation: a connection handler or job failure never takes down
/// the accept loop; the protocol listener enforces an idle deadline and a
/// connection cap so stalled clients cannot exhaust it.

#include <cstdint>
#include <memory>
#include <string>

#include "obs/monitor_server.hpp"
#include "serve/result_cache.hpp"
#include "serve/scheduler.hpp"

namespace g6::serve {

struct JobServerConfig {
  int port = 0;  ///< protocol listener port (0 = ephemeral; port() tells)
  SchedulerConfig scheduler;
  ResultCacheConfig cache;
  int max_connections = 32;     ///< concurrent protocol connections
  double idle_timeout = 30.0;   ///< seconds a connection may sit idle
  double wait_cap = 600.0;      ///< ceiling on a single wait op's timeout
};

class JobServer {
 public:
  explicit JobServer(JobServerConfig cfg = {});
  ~JobServer();  ///< stops everything
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Start scheduler lanes and the protocol listener. Returns false when
  /// the socket cannot be bound.
  bool start();
  void stop();
  bool running() const;

  /// Protocol port actually bound (resolves port 0); 0 when not started.
  int port() const;

  /// Register the /jobs route family on \p http (call before http.start()).
  void attach_http(g6::obs::MonitorServer& http);

  /// One protocol request -> one response line (no trailing '\n'). Exposed
  /// for tests; the socket handler calls exactly this per line.
  std::string handle_line(const std::string& line);

  /// True once a client issued {"op":"shutdown"} — the daemon's main loop
  /// polls this and exits cleanly.
  bool wants_shutdown() const;

  Scheduler& scheduler();
  ResultCache& cache();
  const JobServerConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace g6::serve
