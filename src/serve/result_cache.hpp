#pragma once
/// \file result_cache.hpp
/// \brief ResultCache — byte-budgeted LRU of finished simulation snapshots,
///        keyed by the job's config_hash identity (job_key).
///
/// The serving layer's central bet: the determinism contract (bit-identical
/// results at any thread count, docs/CHECKPOINTING.md) makes a cached
/// snapshot *exactly* what a recompute would produce, so a repeated request
/// is served with zero integrator steps and zero approximation. Entries are
/// the raw G6SNAPB2 result bytes; the LRU evicts by total byte budget (an
/// entry larger than the whole budget is never admitted).
///
/// Optionally spills to a persist directory: every insert also writes
/// `<key-hex>.bsnap` (atomic tmp+rename, CRC-framed), and a memory miss
/// falls back to disk — a restarted server keeps its cache warm. Corrupt
/// or truncated spill files are deleted and treated as misses.
///
/// Metrics (docs/OBSERVABILITY.md): g6.serve.cache.{hits,misses,evictions,
/// disk_hits} counters and g6.serve.cache.{bytes,entries} gauges. Thread
/// safe; every operation takes one internal mutex.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace g6::serve {

struct ResultCacheConfig {
  std::size_t max_bytes = 64ull << 20;  ///< in-memory LRU byte budget
  std::string persist_dir;              ///< empty: memory-only
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheConfig cfg = {});

  /// Copy the cached bytes for \p key into \p out and promote the entry to
  /// most-recently-used. Counts a hit or a miss; a disk fallback that
  /// succeeds counts both a hit and a disk_hit.
  bool lookup(std::uint64_t key, std::string* out);

  /// Probe without touching LRU order, metrics, or disk (admission peek).
  bool contains(std::uint64_t key) const;

  /// Admit \p bytes under \p key, evicting least-recently-used entries
  /// until the budget holds. Oversized payloads (> max_bytes) skip the
  /// memory tier but still spill to disk when persistence is on.
  void insert(std::uint64_t key, const std::string& bytes);

  std::size_t bytes() const;
  std::size_t entries() const;
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t evictions() const { return evictions_.value(); }
  std::uint64_t disk_hits() const { return disk_hits_.value(); }

 private:
  struct Entry {
    std::list<std::uint64_t>::iterator lru_it;
    std::string bytes;
  };

  void evict_to_fit_locked(std::size_t incoming);
  std::string spill_path(std::uint64_t key) const;
  bool load_spill(std::uint64_t key, std::string* out) const;
  void store_spill(std::uint64_t key, const std::string& bytes) const;
  void publish_locked();

  ResultCacheConfig cfg_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t bytes_ = 0;

  g6::obs::Counter hits_, misses_, evictions_, disk_hits_;
  g6::obs::Gauge bytes_gauge_, entries_gauge_;
};

}  // namespace g6::serve
