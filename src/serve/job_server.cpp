#include "serve/job_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/log.hpp"

namespace g6::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex_encode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::string error_line(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + g6::obs::json_escape(message) + "\"}";
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct JobServer::Impl {
  explicit Impl(JobServerConfig c)
      : cfg(std::move(c)), cache(cfg.cache), sched(cfg.scheduler, cache) {}

  JobServerConfig cfg;
  ResultCache cache;
  Scheduler sched;

  int listen_fd = -1;
  int bound_port = 0;
  std::thread accept_thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};
  std::atomic<bool> shutdown_requested{false};
  std::atomic<int> active_connections{0};
  g6::obs::Counter connections_total, connections_rejected, protocol_errors;

  std::mutex conn_mu;
  std::set<int> conn_fds;  ///< open client fds; stop() shuts them down
  std::map<std::uint64_t, std::thread> handlers;  ///< by handler id
  std::vector<std::uint64_t> finished;  ///< handler ids ready to join
  std::uint64_t next_handler_id = 0;

  void accept_loop(JobServer* server);
  void handle_connection(JobServer* server, int fd, std::uint64_t id);
  void reap_finished_handlers();
};

void JobServer::Impl::reap_finished_handlers() {
  // A finished handler's LAST locked action was pushing its id, so join()
  // here returns promptly; never join under conn_mu (the handler's final
  // bookkeeping needs it).
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (std::uint64_t id : finished) {
      const auto it = handlers.find(id);
      if (it != handlers.end()) {
        done.push_back(std::move(it->second));
        handlers.erase(it);
      }
    }
    finished.clear();
  }
  for (std::thread& t : done) t.join();
}

JobServer::JobServer(JobServerConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg))) {
  auto& reg = g6::obs::MetricsRegistry::global();
  impl_->connections_total = reg.counter("g6.serve.connections");
  impl_->connections_rejected = reg.counter("g6.serve.connections_rejected");
  impl_->protocol_errors = reg.counter("g6.serve.protocol_errors");
}

JobServer::~JobServer() { stop(); }

bool JobServer::start() {
  if (impl_->running.load()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(impl_->cfg.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    impl_->bound_port = ntohs(addr.sin_port);
  impl_->listen_fd = fd;
  impl_->stop.store(false);
  impl_->shutdown_requested.store(false);
  impl_->sched.start();
  impl_->running.store(true);
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(this); });
  G6_LOG_INFO("serve: job protocol on 127.0.0.1:" +
              std::to_string(impl_->bound_port));
  return true;
}

void JobServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stop.store(true);
  {
    // Wake blocked connection reads so their threads exit promptly.
    std::lock_guard<std::mutex> lock(impl_->conn_mu);
    for (int fd : impl_->conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  impl_->accept_thread.join();
  {
    std::map<std::uint64_t, std::thread> rest;
    {
      std::lock_guard<std::mutex> lock(impl_->conn_mu);
      rest.swap(impl_->handlers);
      impl_->finished.clear();
    }
    for (auto& [id, t] : rest) t.join();
  }
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->sched.stop();
  impl_->running.store(false);
}

bool JobServer::running() const { return impl_->running.load(); }

int JobServer::port() const { return impl_->bound_port; }

bool JobServer::wants_shutdown() const {
  return impl_->shutdown_requested.load();
}

Scheduler& JobServer::scheduler() { return impl_->sched; }

ResultCache& JobServer::cache() { return impl_->cache; }

const JobServerConfig& JobServer::config() const { return impl_->cfg; }

void JobServer::Impl::accept_loop(JobServer* server) {
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);  // 100 ms: prompt stop()
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    connections_total.add();
    if (active_connections.load() >= cfg.max_connections) {
      // Admission control applies to connections too: refuse, don't queue.
      connections_rejected.add();
      send_all(client, error_line("too many connections") + "\n");
      ::close(client);
      continue;
    }
    active_connections.fetch_add(1);
    reap_finished_handlers();  // keeps the registry bounded by live conns
    std::lock_guard<std::mutex> lock(conn_mu);
    conn_fds.insert(client);
    const std::uint64_t id = next_handler_id++;
    handlers.emplace(id, std::thread([this, server, client, id] {
                       handle_connection(server, client, id);
                     }));
  }
}

void JobServer::Impl::handle_connection(JobServer* server, int fd,
                                        std::uint64_t id) {
  std::string buf;
  char chunk[4096];
  auto idle_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(cfg.idle_timeout));
  while (!stop.load(std::memory_order_relaxed)) {
    // Serve every complete line already buffered.
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      send_all(fd, server->handle_line(line) + "\n");
      idle_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(cfg.idle_timeout));
    }
    if (buf.size() > g6::obs::MonitorServer::kMaxBodyBytes) {
      protocol_errors.add();
      send_all(fd, error_line("request line too long") + "\n");
      break;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        idle_deadline - Clock::now());
    if (left.count() <= 0) break;  // idle client: free the slot
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(
        &pfd, 1, static_cast<int>(std::min<long long>(left.count(), 500)));
    if (r < 0) break;
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  active_connections.fetch_sub(1);
  std::lock_guard<std::mutex> lock(conn_mu);
  conn_fds.erase(fd);
  finished.push_back(id);
}

std::string JobServer::handle_line(const std::string& line) {
  g6::obs::JsonValue req;
  try {
    req = g6::obs::JsonValue::parse(line);
  } catch (const std::exception& e) {
    impl_->protocol_errors.add();
    return error_line(std::string("bad json: ") + e.what());
  }
  if (!req.is_object()) {
    impl_->protocol_errors.add();
    return error_line("request must be a JSON object");
  }
  const g6::obs::JsonValue* op = req.find("op");
  if (op == nullptr || !op->is_string())
    return error_line("request needs a string \"op\"");

  Scheduler& sched = impl_->sched;
  if (op->as_string() == "submit") {
    const g6::obs::JsonValue* spec = req.find("job");
    if (spec == nullptr) return error_line("submit needs a \"job\" object");
    JobRequest job;
    try {
      job = parse_job(*spec);
    } catch (const std::exception& e) {
      // An unparseable job is an admission rejection, with the bad field
      // named — the tenant can fix and resubmit; nothing was queued.
      g6::obs::MetricsRegistry::global()
          .counter("g6.serve.jobs_rejected")
          .add();
      g6::obs::MetricsRegistry::global()
          .counter("g6.serve.rejected.bad_request")
          .add();
      return "{\"ok\":false,\"rejected\":true,\"reason\":\"bad_request\","
             "\"error\":\"" +
             g6::obs::json_escape(e.what()) + "\"}";
    }
    const SubmitOutcome out = sched.submit(job);
    if (!out.accepted)
      return std::string("{\"ok\":false,\"rejected\":true,\"reason\":\"") +
             reject_reason_name(out.reason) + "\"}";
    return "{\"ok\":true,\"id\":\"" + out.id + "\",\"key\":\"" +
           key_hex(out.key) + "\",\"cached\":" +
           (out.cached ? "true" : "false") + "}";
  }
  if (op->as_string() == "status" || op->as_string() == "wait") {
    const g6::obs::JsonValue* id = req.find("id");
    if (id == nullptr || !id->is_string())
      return error_line("needs a string \"id\"");
    std::optional<JobRecord> rec;
    if (op->as_string() == "wait") {
      double timeout = 30.0;
      if (const g6::obs::JsonValue* t = req.find("timeout");
          t != nullptr && t->is_number())
        timeout = t->as_number();
      timeout = std::min(std::max(timeout, 0.0), impl_->cfg.wait_cap);
      rec = sched.wait(id->as_string(), timeout);
      if (!rec.has_value() && sched.record(id->as_string()).has_value())
        return error_line("timeout");
    } else {
      rec = sched.record(id->as_string());
    }
    if (!rec.has_value()) return error_line("unknown job '" + id->as_string() + "'");
    return "{\"ok\":true,\"job\":" + record_json(*rec) + "}";
  }
  if (op->as_string() == "result") {
    const g6::obs::JsonValue* id = req.find("id");
    if (id == nullptr || !id->is_string())
      return error_line("needs a string \"id\"");
    std::string bytes;
    if (!sched.result(id->as_string(), &bytes))
      return error_line("no result for '" + id->as_string() +
                        "' (unknown, failed, or still running)");
    return "{\"ok\":true,\"bytes\":" + std::to_string(bytes.size()) +
           ",\"crc32\":" +
           std::to_string(g6::util::crc32(bytes.data(), bytes.size())) +
           ",\"data\":\"" + hex_encode(bytes) + "\"}";
  }
  if (op->as_string() == "stats") {
    const SchedulerStats s = sched.stats();
    std::string out = "{\"ok\":true";
    out += ",\"queued\":" + std::to_string(s.queued);
    out += ",\"running\":" + std::to_string(s.running);
    out += ",\"submitted\":" + std::to_string(s.submitted);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"rejected\":" + std::to_string(s.rejected);
    out += ",\"cache\":{\"hits\":" + std::to_string(impl_->cache.hits());
    out += ",\"misses\":" + std::to_string(impl_->cache.misses());
    out += ",\"evictions\":" + std::to_string(impl_->cache.evictions());
    out += ",\"disk_hits\":" + std::to_string(impl_->cache.disk_hits());
    out += ",\"bytes\":" + std::to_string(impl_->cache.bytes());
    out += ",\"entries\":" + std::to_string(impl_->cache.entries());
    out += "}}";
    return out;
  }
  if (op->as_string() == "ping") return "{\"ok\":true}";
  if (op->as_string() == "shutdown") {
    impl_->shutdown_requested.store(true);
    return "{\"ok\":true}";
  }
  impl_->protocol_errors.add();
  return error_line("unknown op '" + op->as_string() + "'");
}

void JobServer::attach_http(g6::obs::MonitorServer& http) {
  Impl* impl = impl_.get();
  http.route("/jobs", [impl]() -> g6::obs::HttpResponse {
    const SchedulerStats s = impl->sched.stats();
    std::string body = "{\"queued\":" + std::to_string(s.queued);
    body += ",\"running\":" + std::to_string(s.running);
    body += ",\"submitted\":" + std::to_string(s.submitted);
    body += ",\"completed\":" + std::to_string(s.completed);
    body += ",\"failed\":" + std::to_string(s.failed);
    body += ",\"rejected\":" + std::to_string(s.rejected);
    body += ",\"cache_hits\":" + std::to_string(impl->cache.hits());
    body += ",\"cache_misses\":" + std::to_string(impl->cache.misses());
    body += ",\"jobs\":[";
    bool first = true;
    for (const JobRecord& rec : impl->sched.records()) {
      if (!first) body += ",";
      first = false;
      body += record_json(rec);
    }
    body += "]}";
    return {200, "application/json", body};
  });
  http.route_prefix("/jobs/", [impl](const std::string& path)
                                  -> g6::obs::HttpResponse {
    std::string rest = path.substr(std::string("/jobs/").size());
    const bool want_result = rest.size() > 7 &&
                             rest.compare(rest.size() - 7, 7, "/result") == 0;
    if (want_result) rest = rest.substr(0, rest.size() - 7);
    if (rest.empty() || rest.find('/') != std::string::npos)
      return {404, "text/plain", "not found\n"};
    if (want_result) {
      std::string bytes;
      if (!impl->sched.result(rest, &bytes))
        return {404, "text/plain", "no result for '" + rest + "'\n"};
      return {200, "application/octet-stream", std::move(bytes)};
    }
    const std::optional<JobRecord> rec = impl->sched.record(rest);
    if (!rec.has_value())
      return {404, "text/plain", "unknown job '" + rest + "'\n"};
    return {200, "application/json", record_json(*rec)};
  });
  http.route_post("/jobs", [this](const std::string& body)
                               -> g6::obs::HttpResponse {
    // POST body is the bare job object; reuse the protocol handler by
    // wrapping it as a submit op so both paths share one code path.
    const std::string reply =
        handle_line("{\"op\":\"submit\",\"job\":" + body + "}");
    g6::obs::JsonValue parsed;
    try {
      parsed = g6::obs::JsonValue::parse(reply);
    } catch (...) {
      return {500, "application/json", reply};
    }
    const g6::obs::JsonValue* ok = parsed.find("ok");
    const bool accepted = ok != nullptr && ok->is_bool() && ok->as_bool();
    const bool rejected = parsed.find("rejected") != nullptr;
    const g6::obs::JsonValue* reason = parsed.find("reason");
    // 429 = admission control said no (back off and retry); 400 = the
    // request itself was malformed (retrying verbatim cannot help).
    const bool malformed = reason != nullptr && reason->is_string() &&
                           reason->as_string() == "bad_request";
    const int status = accepted ? 200 : (rejected && !malformed ? 429 : 400);
    return {status, "application/json", reply};
  });
}

}  // namespace g6::serve
