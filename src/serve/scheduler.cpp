#include "serve/scheduler.hpp"

#include <sstream>

#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "nbody/models.hpp"
#include "nbody/snapshot.hpp"
#include "obs/progress.hpp"
#include "p3t/p3t_backend.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace g6::serve {

namespace {

g6::nbody::ParticleSystem build_ics(const JobRequest& req) {
  if (req.model == "disk") {
    g6::disk::DiskConfig dcfg =
        g6::disk::uranus_neptune_config(static_cast<std::size_t>(req.n));
    dcfg.seed = req.seed;
    for (auto& pp : dcfg.protoplanets) pp.mass = req.mpp;
    return std::move(g6::disk::make_disk(dcfg).system);
  }
  g6::util::Rng rng(req.seed);
  if (req.model == "plummer")
    return g6::nbody::plummer_sphere(static_cast<std::size_t>(req.n), 1.0, 1.0,
                                     rng);
  if (req.model == "coldsphere")
    return g6::nbody::cold_uniform_sphere(static_cast<std::size_t>(req.n), 1.0,
                                          1.0, rng);
  g6::util::raise("unknown model '" + req.model + "'");
}

g6::hw::FormatSpec format_for(const g6::nbody::ParticleSystem& ps) {
  double extent = 1.0;
  for (std::size_t i = 0; i < ps.size(); ++i)
    extent = std::max(extent, norm(ps.pos(i)));
  const double acc = std::max(1e-12, ps.total_mass() / (extent * extent));
  return g6::hw::FormatSpec::for_scales(2.0 * extent, acc);
}

std::unique_ptr<g6::nbody::ForceBackend> make_backend(
    const JobRequest& req, const g6::nbody::ParticleSystem& ps,
    g6::util::ThreadPool* pool) {
  if (req.backend == "cpu")
    return std::make_unique<g6::nbody::CpuDirectBackend>(req.eps, pool);
  if (req.backend == "grape") {
    g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(2, 4, 1 << 14);
    mc.fmt = format_for(ps);
    return std::make_unique<g6::hw::Grape6Backend>(mc, req.eps, pool);
  }
  if (req.backend == "cluster")
    return std::make_unique<g6::cluster::ClusterBackend>(
        req.hosts, g6::cluster::HostMode::kHardwareNet, format_for(ps),
        req.eps, g6::cluster::LinkSpec{}, pool);
  if (req.backend == "p3t") {
    g6::p3t::P3TConfig pc;
    pc.gm_central = req.model == "disk" ? 1.0 : 0.0;
    return std::make_unique<g6::p3t::P3THybridBackend>(pc, req.eps, pool);
  }
  g6::util::raise("unknown backend '" + req.backend + "'");
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig cfg, ResultCache& cache)
    : cfg_(std::move(cfg)), cache_(cache) {
  // workers == 0 is a valid "paused" scheduler: submissions are admitted
  // and queued but never started. Useful for drain scenarios and for
  // exercising admission control deterministically.
  G6_CHECK(cfg_.workers >= 0, "scheduler worker count must be non-negative");
  G6_CHECK(cfg_.max_queue >= 1, "scheduler needs a queue of at least one");
  epoch_ = std::chrono::steady_clock::now();
  auto& reg = g6::obs::MetricsRegistry::global();
  submitted_ = reg.counter("g6.serve.jobs_submitted");
  completed_ = reg.counter("g6.serve.jobs_completed");
  failed_ = reg.counter("g6.serve.jobs_failed");
  rejected_ = reg.counter("g6.serve.jobs_rejected");
  for (int r = 0; r < 6; ++r)
    rejected_by_reason_[r] = reg.counter(
        std::string("g6.serve.rejected.") +
        reject_reason_name(static_cast<RejectReason>(r)));
  steps_executed_ = reg.counter("g6.serve.steps_executed");
  queue_gauge_ = reg.gauge("g6.serve.queue_depth");
  running_gauge_ = reg.gauge("g6.serve.running");
  latency_ = reg.histogram("g6.serve.latency_seconds");
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  shutting_down_ = false;
  for (int i = 0; i < cfg_.workers; ++i)
    lanes_.emplace_back([this] { worker_loop(); });
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    shutting_down_ = true;
    // Jobs that never ran are failed, not silently dropped: their tenants
    // get a terminal answer and their quota is released.
    for (auto& [key, id] : queue_) {
      Job& job = *jobs_.at(id);
      job.record.error = "server shutdown";
      finish_locked(job, ServeJobState::kFailed);
    }
    queue_.clear();
    queue_gauge_.set(0.0);
  }
  cv_work_.notify_all();
  cv_done_.notify_all();
  for (std::thread& t : lanes_) t.join();
  lanes_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

const TenantQuota& Scheduler::quota_for(const std::string& tenant) const {
  const auto it = cfg_.tenant_quotas.find(tenant);
  return it == cfg_.tenant_quotas.end() ? cfg_.default_quota : it->second;
}

double Scheduler::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

SubmitOutcome Scheduler::submit(const JobRequest& req) {
  SubmitOutcome out;
  out.key = job_key(req);

  const auto reject = [&](RejectReason reason) {
    out.accepted = false;
    out.reason = reason;
    rejected_.add();
    rejected_by_reason_[static_cast<int>(reason)].add();
    return out;
  };

  // Cache probe before any quota accounting: a hit consumes no capacity.
  // Fault-injected jobs always run for real — the knob exists to exercise
  // failure isolation, which a cached result would silently skip.
  std::string cached_bytes;
  const bool cacheable = !req.no_cache && req.fault_after_blocks == 0;
  const bool hit = cacheable && cache_.lookup(out.key, &cached_bytes);

  std::unique_lock<std::mutex> lock(mu_);
  if (shutting_down_ || !started_) return reject(RejectReason::kShuttingDown);
  if (!hit) {
    if (req.n > cfg_.max_job_particles) return reject(RejectReason::kJobTooLarge);
    if (queue_.size() >= cfg_.max_queue) return reject(RejectReason::kQueueFull);
    const TenantQuota& quota = quota_for(req.tenant);
    const TenantLive live = live_[req.tenant];
    if (live.jobs >= quota.max_concurrent)
      return reject(RejectReason::kTenantConcurrent);
    if (live.particles + req.n > quota.max_particles)
      return reject(RejectReason::kTenantParticles);
  }

  const std::uint64_t seq = next_seq_++;
  auto job = std::make_unique<Job>();
  job->record.id = "j-" + std::to_string(seq);
  job->record.request = req;
  job->record.key = out.key;
  job->record.submit_seconds = now_seconds();
  out.accepted = true;
  out.id = job->record.id;
  submitted_.add();

  if (hit) {
    // Terminal at admission: the cached snapshot IS the result (determinism
    // contract), so the job never touches queue, quota, or a worker lane.
    job->record.cache_hit = true;
    job->record.start_seconds = job->record.submit_seconds;
    job->record.t_sys = req.t_end;
    job->record.result_bytes = cached_bytes.size();
    job->record.result_crc32 =
        g6::util::crc32(cached_bytes.data(), cached_bytes.size());
    job->result = std::move(cached_bytes);
    out.cached = true;
    Job& ref = *job;
    job_order_.push_back(ref.record.id);
    jobs_[ref.record.id] = std::move(job);
    finish_locked(ref, ServeJobState::kDone);
    prune_locked();
    return out;
  }

  const TenantQuota& quota = quota_for(req.tenant);
  TenantLive& live = live_[req.tenant];
  live.jobs += 1;
  live.particles += req.n;
  const int eff_priority = quota.priority + req.priority;
  queue_[{-eff_priority, seq}] = job->record.id;
  job_order_.push_back(job->record.id);
  jobs_[job->record.id] = std::move(job);
  queue_gauge_.set(static_cast<double>(queue_.size()));
  prune_locked();
  lock.unlock();
  cv_work_.notify_one();
  return out;
}

void Scheduler::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      const auto first = queue_.begin();
      job = jobs_.at(first->second).get();
      queue_.erase(first);
      queue_gauge_.set(static_cast<double>(queue_.size()));
      job->record.state = ServeJobState::kRunning;
      job->record.start_seconds = now_seconds();
      running_ += 1;
      running_gauge_.set(static_cast<double>(running_));
    }
    try {
      run_job(*job);
      std::lock_guard<std::mutex> lock(mu_);
      finish_locked(*job, ServeJobState::kDone);
    } catch (const std::exception& e) {
      // Isolation: the job dies, the lane and the server do not.
      G6_LOG_WARN("serve: job " + job->record.id + " failed: " + e.what());
      std::lock_guard<std::mutex> lock(mu_);
      job->record.error = e.what();
      finish_locked(*job, ServeJobState::kFailed);
    }
    cv_done_.notify_all();
  }
}

void Scheduler::run_job(Job& job) {
  const JobRequest& req = job.record.request;
  g6::nbody::ParticleSystem ps = build_ics(req);

  // One serial lane per job: the shared pool's parallel_for has a single
  // external caller by contract, so every job gets a private ThreadPool(1)
  // and jobs parallelise across lanes instead of within them.
  g6::util::ThreadPool serial(1);
  auto backend = make_backend(req, ps, &serial);

  g6::nbody::IntegratorConfig icfg;
  icfg.eta = req.eta;
  icfg.eta_init = req.eta / 2.0;
  icfg.dt_max = req.dt_max;
  icfg.solar_gm = req.model == "disk" ? 1.0 : 0.0;
  g6::nbody::HermiteIntegrator integ(ps, *backend, icfg, &serial);

  auto ticket =
      g6::obs::ProgressTracker::global().add_job(job.record.id, 0.0, req.t_end);
  ticket.set_state(g6::obs::JobState::kRunning);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t blocks = 0;
  integ.on_block = [&](double t, std::size_t) {
    ++blocks;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ticket.update(t, blocks, wall);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job.record.t_sys = t;
      job.record.blocks = blocks;
    }
    if (req.fault_after_blocks != 0 && blocks >= req.fault_after_blocks)
      g6::util::raise("injected fault after " + std::to_string(blocks) +
                      " blocks");
  };

  try {
    integ.initialize();
    integ.evolve(req.t_end);
    // A short run can finish entirely inside synchronize(), which never
    // invokes on_block — honor the fault knob after the fact so failure
    // isolation is testable at any job size.
    if (req.fault_after_blocks != 0 &&
        integ.stats().blocks >= req.fault_after_blocks)
      g6::util::raise("injected fault after " +
                      std::to_string(integ.stats().blocks) + " blocks");
  } catch (...) {
    ticket.finish(g6::obs::JobState::kFailed);
    throw;
  }

  std::ostringstream os;
  g6::nbody::write_snapshot_binary(os, ps, integ.current_time());
  std::string bytes = os.str();
  if (!req.no_cache && req.fault_after_blocks == 0)
    cache_.insert(job.record.key, bytes);
  steps_executed_.add(integ.stats().steps);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.record.t_sys = integ.current_time();
    job.record.blocks = integ.stats().blocks;
    job.record.steps = integ.stats().steps;
    job.record.result_bytes = bytes.size();
    job.record.result_crc32 = g6::util::crc32(bytes.data(), bytes.size());
    job.result = std::move(bytes);
  }
  ticket.update(integ.current_time(), integ.stats().blocks,
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count());
  ticket.finish(g6::obs::JobState::kDone);
}

void Scheduler::finish_locked(Job& job, ServeJobState state) {
  const bool was_running = job.record.state == ServeJobState::kRunning;
  job.record.state = state;
  job.record.finish_seconds = now_seconds();
  if (was_running) {
    running_ -= 1;
    running_gauge_.set(static_cast<double>(running_));
  }
  if (!job.record.cache_hit) {
    // Release the tenant's quota (cache hits never consumed any).
    const auto it = live_.find(job.record.request.tenant);
    if (it != live_.end()) {
      it->second.jobs -= 1;
      it->second.particles -= job.record.request.n;
      if (it->second.jobs <= 0) live_.erase(it);
    }
  }
  if (state == ServeJobState::kDone) completed_.add();
  else failed_.add();
  latency_.add(
      std::max(1e-9, job.record.finish_seconds - job.record.submit_seconds));
  cv_done_.notify_all();
}

void Scheduler::prune_locked() {
  while (job_order_.size() > cfg_.keep_records) {
    // Only terminal records are evicted; live jobs are never dropped.
    const std::string id = job_order_.front();
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      const ServeJobState s = it->second->record.state;
      if (s != ServeJobState::kDone && s != ServeJobState::kFailed) break;
      jobs_.erase(it);
    }
    job_order_.pop_front();
  }
}

std::optional<JobRecord> Scheduler::record(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->record;
}

std::vector<JobRecord> Scheduler::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(job_order_.size());
  for (const std::string& id : job_order_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) out.push_back(it->second->record);
  }
  return out;
}

bool Scheduler::result(const std::string& id, std::string* bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->record.state != ServeJobState::kDone)
    return false;
  if (bytes != nullptr) *bytes = it->second->result;
  return true;
}

std::optional<JobRecord> Scheduler::wait(const std::string& id,
                                         double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<long long>(timeout_seconds * 1e6));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    const ServeJobState s = it->second->record.state;
    if (s == ServeJobState::kDone || s == ServeJobState::kFailed)
      return it->second->record;
    if (cv_done_.wait_until(lock, deadline) == std::cv_status::timeout)
      return std::nullopt;
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s;
  s.queued = queue_.size();
  s.running = running_;
  s.submitted = submitted_.value();
  s.completed = completed_.value();
  s.failed = failed_.value();
  s.rejected = rejected_.value();
  return s;
}

}  // namespace g6::serve
