#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "util/check.hpp"
#include "util/crc.hpp"

namespace g6::serve {

namespace {

using Clock = std::chrono::steady_clock;

void send_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    G6_CHECK(n > 0, "serve client: send failed");
    off += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd, double timeout) {
  const auto deadline =
      Clock::now() +
      std::chrono::microseconds(static_cast<long long>(timeout * 1e6));
  std::string buf;
  char chunk[4096];
  for (;;) {
    const auto nl = buf.find('\n');
    if (nl != std::string::npos) return buf.substr(0, nl);
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    G6_CHECK(left.count() > 0, "serve client: reply deadline exceeded");
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(
        &pfd, 1, static_cast<int>(std::min<long long>(left.count(), 1000)));
    G6_CHECK(r >= 0, "serve client: poll failed");
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    G6_CHECK(n > 0, "serve client: connection closed mid-reply");
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  g6::util::raise("serve client: bad hex digit in result data");
}

std::string hex_decode(const std::string& hex) {
  G6_CHECK(hex.size() % 2 == 0, "serve client: odd-length hex result");
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<char>((hex_nibble(hex[i]) << 4) |
                                    hex_nibble(hex[i + 1])));
  return out;
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

g6::obs::JsonValue Client::call(const std::string& line, double timeout) {
  G6_CHECK(fd_ >= 0, "serve client: not connected");
  send_line(fd_, line);
  return g6::obs::JsonValue::parse(recv_line(fd_, timeout));
}

SubmitReply Client::submit(const JobRequest& req) {
  const g6::obs::JsonValue reply =
      call("{\"op\":\"submit\",\"job\":" + job_json(req) + "}");
  SubmitReply out;
  if (const auto* ok = reply.find("ok"); ok != nullptr && ok->is_bool())
    out.ok = ok->as_bool();
  if (const auto* rej = reply.find("rejected"); rej != nullptr && rej->is_bool())
    out.rejected = rej->as_bool();
  if (const auto* r = reply.find("reason"); r != nullptr && r->is_string())
    out.reason = r->as_string();
  if (const auto* e = reply.find("error"); e != nullptr && e->is_string())
    out.error = e->as_string();
  if (const auto* id = reply.find("id"); id != nullptr && id->is_string())
    out.id = id->as_string();
  if (const auto* k = reply.find("key"); k != nullptr && k->is_string())
    out.key = k->as_string();
  if (const auto* c = reply.find("cached"); c != nullptr && c->is_bool())
    out.cached = c->as_bool();
  return out;
}

g6::obs::JsonValue Client::wait(const std::string& id, double timeout) {
  const g6::obs::JsonValue reply =
      call("{\"op\":\"wait\",\"id\":\"" + id + "\",\"timeout\":" +
               g6::obs::json_number(timeout) + "}",
           timeout + 10.0);
  const auto* job = reply.find("job");
  if (job == nullptr) {
    const auto* err = reply.find("error");
    g6::util::raise("serve client: wait(" + id + ") failed: " +
                    (err != nullptr && err->is_string() ? err->as_string()
                                                        : "no job in reply"));
  }
  return *job;
}

g6::obs::JsonValue Client::status(const std::string& id) {
  const g6::obs::JsonValue reply =
      call("{\"op\":\"status\",\"id\":\"" + id + "\"}");
  const auto* job = reply.find("job");
  G6_CHECK(job != nullptr, "serve client: status(" + id + ") has no job");
  return *job;
}

std::string Client::result_bytes(const std::string& id) {
  const g6::obs::JsonValue reply =
      call("{\"op\":\"result\",\"id\":\"" + id + "\"}");
  const auto* ok = reply.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    const auto* err = reply.find("error");
    g6::util::raise("serve client: result(" + id + ") failed: " +
                    (err != nullptr && err->is_string() ? err->as_string()
                                                        : "unknown error"));
  }
  const auto* data = reply.find("data");
  G6_CHECK(data != nullptr && data->is_string(),
           "serve client: result reply has no data");
  std::string bytes = hex_decode(data->as_string());
  if (const auto* crc = reply.find("crc32"); crc != nullptr && crc->is_number())
    G6_CHECK(g6::util::crc32(bytes.data(), bytes.size()) ==
                 static_cast<std::uint32_t>(crc->as_number()),
             "serve client: result crc mismatch");
  return bytes;
}

g6::obs::JsonValue Client::stats() { return call("{\"op\":\"stats\"}"); }

void Client::shutdown_server() { call("{\"op\":\"shutdown\"}"); }

}  // namespace g6::serve
