#pragma once
/// \file job.hpp
/// \brief The serving layer's job model: what a tenant submits, what the
///        server records, and the JSON codec both sides of the wire share.
///
/// The GRAPE-6 cluster was a shared facility — many queued runs scheduled
/// onto fixed special-purpose capacity (Makino et al., SC 2002). The
/// software analogue promotes the batch CampaignRunner job into a network
/// request: a JobRequest names a scenario (model, n, seed, integrator
/// tunables, backend), a tenant and a priority; the server answers with a
/// JobRecord that tracks it from admission to completion.
///
/// A job's *identity* is its result-cache key: the same FNV-1a config_hash
/// the checkpoint layer refuses to resume across (src/run/checkpoint.hpp),
/// extended with the IC identity (model, seed, t_end, mpp, hosts). Two
/// requests with equal keys are the same simulation — the determinism
/// contract (bit-identical at any thread count, docs/CHECKPOINTING.md)
/// makes the cached snapshot byte-identical to a recompute, so serving it
/// is not an approximation (docs/SERVING.md states the cache-key contract).

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace g6::serve {

/// One simulation job as submitted over the wire. Field names match the
/// JSON protocol ("op":"submit" requests carry these under "job").
struct JobRequest {
  std::string tenant = "default";
  int priority = 0;             ///< added to the tenant's base priority
  std::string model = "disk";   ///< disk | plummer | coldsphere
  std::string backend = "cpu";  ///< cpu | grape | cluster | p3t
  std::uint64_t n = 256;        ///< particle count
  std::uint64_t seed = 1;       ///< initial-condition seed
  double eta = 0.02;            ///< Aarseth accuracy parameter
  double dt_max = 4.0;          ///< largest block step (power of two)
  double t_end = 1.0;           ///< end time (code units)
  double mpp = 1e-5;            ///< disk protoplanet mass, M_sun
  double eps = 0.008;           ///< softening length
  int hosts = 4;                ///< simulated hosts (cluster backend)
  /// Fault injection for resilience tests: when > 0 the worker raises a
  /// deterministic error after this many block steps — the same isolation
  /// path any worker exception takes (docs/SERVING.md, degraded mode).
  std::uint64_t fault_after_blocks = 0;
  bool no_cache = false;  ///< skip the result cache (bench cold path)
};

enum class ServeJobState { kQueued, kRunning, kDone, kFailed };

const char* serve_job_state_name(ServeJobState s);

/// Why admission refused a submission (the "reason" field of a rejection).
enum class RejectReason {
  kQueueFull,         ///< bounded queue at capacity
  kJobTooLarge,       ///< n exceeds the per-job particle cap
  kTenantConcurrent,  ///< tenant already has max_concurrent live jobs
  kTenantParticles,   ///< tenant's live particles + n exceed the quota
  kBadRequest,        ///< unparseable / invalid job spec
  kShuttingDown,      ///< server is draining
};

const char* reject_reason_name(RejectReason r);

/// What the server tracks per admitted job; `/jobs` serializes these.
struct JobRecord {
  std::string id;       ///< "j-<seq>", unique per server lifetime
  JobRequest request;
  std::uint64_t key = 0;  ///< result-cache key (config_hash + IC identity)
  ServeJobState state = ServeJobState::kQueued;
  bool cache_hit = false;   ///< served from the result cache, zero recompute
  double submit_seconds = 0.0;  ///< wall clock since server start
  double start_seconds = -1.0;  ///< < 0 until the job starts running
  double finish_seconds = -1.0;
  double t_sys = 0.0;           ///< simulation progress
  std::uint64_t blocks = 0, steps = 0;  ///< integrator work (0 on cache hit)
  std::uint64_t result_bytes = 0;
  std::uint32_t result_crc32 = 0;
  std::string error;  ///< non-empty for kFailed
};

/// The cache key: run::config_hash over the integrator/backend/n identity,
/// with the IC identity (model, seed, t_end, mpp, hosts) folded into the
/// `extra` word. Changing ANY field that changes the physics changes the
/// key (tests pin this; tenant/priority/fault knobs are deliberately NOT
/// part of the key — they do not change the result).
std::uint64_t job_key(const JobRequest& req);

/// Format a key the way the protocol does: 16 lower-case hex digits.
std::string key_hex(std::uint64_t key);

/// JSON codec. parse_job reads the members of \p v (an object) into a
/// JobRequest, raising g6::util::Error naming the offending field on a
/// type mismatch or an unknown member — admission rejects, it does not
/// guess. job_json/record_json render protocol/endpoint payloads.
JobRequest parse_job(const g6::obs::JsonValue& v);
std::string job_json(const JobRequest& req);
std::string record_json(const JobRecord& rec);

}  // namespace g6::serve
