#include "disk/disk_model.hpp"

#include <cmath>

#include "disk/kepler.hpp"
#include "util/check.hpp"

namespace g6::disk {

double sample_radius(const DiskConfig& cfg, g6::util::Rng& rng) {
  // Number density per radius: dN/dr ∝ r * Σ(r) ∝ r^(p+1). Inverse-transform
  // on the cumulative ∝ r^(p+2) (p = -1.5 gives the paper's r^0.5 CDF).
  const double q = cfg.surface_density_exponent + 2.0;
  G6_CHECK(q != 0.0, "surface density exponent -2 needs a log sampler");
  const double lo = std::pow(cfg.r_inner, q);
  const double hi = std::pow(cfg.r_outer, q);
  return std::pow(lo + rng.uniform() * (hi - lo), 1.0 / q);
}

DiskRealization make_disk(const DiskConfig& cfg) {
  G6_CHECK(cfg.n_planetesimals > 0, "disk needs at least one planetesimal");
  G6_CHECK(cfg.r_outer > cfg.r_inner && cfg.r_inner > 0.0, "bad ring radii");
  G6_CHECK(cfg.solar_gm > 0.0, "central mass must be positive");

  g6::util::Rng rng(cfg.seed);
  MassFunction mf(cfg.mass_exponent, cfg.m_lower, cfg.m_upper);

  DiskRealization out;
  auto& ps = out.system;

  double ring_mass = 0.0;
  for (std::size_t k = 0; k < cfg.n_planetesimals; ++k) {
    OrbitalElements el;
    el.a = sample_radius(cfg, rng);
    el.e = rng.rayleigh(cfg.e_sigma);
    el.inc = rng.rayleigh(cfg.i_sigma);
    el.Omega = rng.angle();
    el.omega = rng.angle();
    el.M = rng.angle();
    // Reject the (vanishingly rare) e >= 1 tail of the Rayleigh draw.
    while (el.e >= 1.0) el.e = rng.rayleigh(cfg.e_sigma);

    const double m = mf.sample(rng);
    const StateVector sv = elements_to_state(el, cfg.solar_gm);
    ps.add(m, sv.pos, sv.vel);
    ring_mass += m;
  }

  if (cfg.total_ring_mass > 0.0) {
    const double scale = cfg.total_ring_mass / ring_mass;
    for (std::size_t i = 0; i < ps.size(); ++i) ps.mass(i) *= scale;
    ring_mass = cfg.total_ring_mass;
  }
  out.ring_mass = ring_mass;

  for (const Protoplanet& pp : cfg.protoplanets) {
    G6_CHECK(pp.mass > 0.0 && pp.a > 0.0, "bad protoplanet parameters");
    OrbitalElements el;
    el.a = pp.a;
    el.e = 0.0;
    el.inc = 0.0;
    el.M = pp.phase;
    const StateVector sv = elements_to_state(el, cfg.solar_gm);
    out.protoplanet_indices.push_back(ps.add(pp.mass, sv.pos, sv.vel));
  }
  return out;
}

DiskConfig uranus_neptune_config(std::size_t n) {
  DiskConfig cfg;  // defaults are already the paper's ring
  cfg.n_planetesimals = n;
  return cfg;
}

}  // namespace g6::disk
