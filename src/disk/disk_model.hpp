#pragma once
/// \file disk_model.hpp
/// \brief Generator for the paper's initial conditions (§2): a ring of
///        planetesimals between 15 and 35 AU with surface density ∝ r^-1.5,
///        a power-law mass spectrum, and two 1e-5 M☉ protoplanets on circular
///        non-inclined orbits at 20 and 30 AU.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disk/massfunc.hpp"
#include "nbody/particle.hpp"
#include "util/rng.hpp"

namespace g6::disk {

/// One embedded protoplanet.
struct Protoplanet {
  double mass = 1.0e-5;  ///< M☉
  double a = 20.0;       ///< semi-major axis [AU]
  double phase = 0.0;    ///< initial mean anomaly [rad]
};

/// Full configuration of the planetesimal ring.
struct DiskConfig {
  std::size_t n_planetesimals = 4000;

  double r_inner = 15.0;  ///< AU (paper value)
  double r_outer = 35.0;  ///< AU (paper value)

  /// Surface (mass and number) density index: Σ ∝ r^p with p = -1.5.
  double surface_density_exponent = -1.5;

  /// Differential mass-function index (paper: -2.5) and cutoffs. The paper's
  /// cutoff values are chosen so that ~1.8e6 bodies carry the minimum-mass
  /// solar nebula's solid mass in 15–35 AU (~9e-5 M☉, Hayashi 1981).
  double mass_exponent = -2.5;
  double m_lower = 1.0e-11;  ///< M☉
  double m_upper = 1.0e-9;   ///< M☉

  /// When > 0, particle masses are rescaled after sampling so the ring's
  /// total mass equals this value — the paper's "amount of planetesimals is
  /// consistent with the standard Solar nebula model" at any N.
  double total_ring_mass = 8.7e-5;  ///< M☉ (MMSN solids, 15–35 AU)

  /// Rayleigh dispersions of eccentricity and inclination (dynamically cold
  /// start; i dispersion is half the e dispersion, the standard equilibrium
  /// ratio).
  double e_sigma = 0.002;
  double i_sigma = 0.001;

  /// Embedded protoplanets (paper: 1e-5 M☉ at 20 and 30 AU, circular,
  /// non-inclined).
  std::vector<Protoplanet> protoplanets = {{1.0e-5, 20.0, 0.0},
                                           {1.0e-5, 30.0, 3.1}};

  /// Central mass parameter (GM☉ = 1 in code units).
  double solar_gm = 1.0;

  std::uint64_t seed = 20020101;  ///< deterministic IC seed
};

/// Result of disk generation: the particle system plus the indices of the
/// protoplanets inside it (they are ordinary particles dynamically, but the
/// analysis code wants to find them).
struct DiskRealization {
  g6::nbody::ParticleSystem system;
  std::vector<std::size_t> protoplanet_indices;
  double ring_mass = 0.0;  ///< total planetesimal mass actually realised
};

/// Draw a full realisation of the disk. Planetesimals first (indices
/// [0, n)), protoplanets appended after them.
DiskRealization make_disk(const DiskConfig& cfg);

/// The paper's headline configuration: N = 1,799,998 planetesimals + 2
/// protoplanets. \p n rescales the particle number while preserving the ring
/// mass (pass 1799998 for the true run).
DiskConfig uranus_neptune_config(std::size_t n = 1799998);

/// Sample an orbital radius from the surface-density law of \p cfg.
double sample_radius(const DiskConfig& cfg, g6::util::Rng& rng);

}  // namespace g6::disk
