#include "disk/kepler.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace g6::disk {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wrap an angle into [0, 2*pi).
double wrap_angle(double x) {
  x = std::fmod(x, kTwoPi);
  return x < 0.0 ? x + kTwoPi : x;
}
}  // namespace

double solve_kepler(double mean_anomaly, double e) {
  G6_CHECK(e >= 0.0 && e < 1.0, "solve_kepler requires 0 <= e < 1");
  const double m = wrap_angle(mean_anomaly);
  // f(E) = E - e sin E - m is monotonically increasing with a root bracketed
  // by [m - e, m + e]. Newton from Danby's starter, with a bisection
  // safeguard that keeps every iterate inside the bracket — robust for any
  // e < 1 (plain Newton cycles for e ≳ 0.99 near M ~ 2π).
  double lo = m - e, hi = m + e;
  double E = m + 0.85 * e * (std::sin(m) >= 0.0 ? 1.0 : -1.0);
  for (int it = 0; it < 100; ++it) {
    const double s = std::sin(E);
    const double f = E - e * s - m;
    if (std::abs(f) < 1e-14) break;
    if (f > 0.0) {
      hi = E;
    } else {
      lo = E;
    }
    const double fp = 1.0 - e * std::cos(E);
    double next = E - f / fp;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // safeguard
    if (next == E) break;
    E = next;
  }
  return E;
}

StateVector elements_to_state(const OrbitalElements& el, double gm) {
  G6_CHECK(el.a > 0.0, "semi-major axis must be positive");
  G6_CHECK(el.e >= 0.0 && el.e < 1.0, "elements_to_state requires a bound orbit");
  G6_CHECK(gm > 0.0, "central mass parameter must be positive");

  const double E = solve_kepler(el.M, el.e);
  const double cE = std::cos(E);
  const double sE = std::sin(E);
  const double b_over_a = std::sqrt(1.0 - el.e * el.e);

  // Position/velocity in the orbital (perifocal) plane.
  const double xp = el.a * (cE - el.e);
  const double yp = el.a * b_over_a * sE;
  const double n = std::sqrt(gm / (el.a * el.a * el.a));  // mean motion
  const double edot = n / (1.0 - el.e * cE);
  const double vxp = -el.a * sE * edot;
  const double vyp = el.a * b_over_a * cE * edot;

  // Rotate by argument of pericentre, inclination, node.
  const double cO = std::cos(el.Omega), sO = std::sin(el.Omega);
  const double ci = std::cos(el.inc), si = std::sin(el.inc);
  const double cw = std::cos(el.omega), sw = std::sin(el.omega);

  const double r11 = cO * cw - sO * sw * ci;
  const double r12 = -cO * sw - sO * cw * ci;
  const double r21 = sO * cw + cO * sw * ci;
  const double r22 = -sO * sw + cO * cw * ci;
  const double r31 = sw * si;
  const double r32 = cw * si;

  StateVector sv;
  sv.pos = {r11 * xp + r12 * yp, r21 * xp + r22 * yp, r31 * xp + r32 * yp};
  sv.vel = {r11 * vxp + r12 * vyp, r21 * vxp + r22 * vyp, r31 * vxp + r32 * vyp};
  return sv;
}

double specific_energy(const StateVector& sv, double gm) {
  return 0.5 * norm2(sv.vel) - gm / norm(sv.pos);
}

OrbitalElements state_to_elements(const StateVector& sv, double gm) {
  G6_CHECK(gm > 0.0, "central mass parameter must be positive");
  const Vec3& r = sv.pos;
  const Vec3& v = sv.vel;
  const double rn = norm(r);
  G6_CHECK(rn > 0.0, "state at the origin has no elements");

  const double energy = specific_energy(sv, gm);
  G6_CHECK(energy < 0.0, "state_to_elements requires a bound orbit");

  const Vec3 h = cross(r, v);
  const double hn = norm(h);
  const Vec3 evec = cross(v, h) / gm - r / rn;

  OrbitalElements el;
  el.a = -gm / (2.0 * energy);
  el.e = norm(evec);
  el.inc = std::acos(std::clamp(h.z / hn, -1.0, 1.0));

  // Node vector (z-hat cross h).
  const Vec3 nvec{-h.y, h.x, 0.0};
  const double nn = norm(nvec);

  constexpr double kTiny = 1e-12;
  if (nn < kTiny * hn) {
    // Equatorial orbit: node undefined, fold it into omega.
    el.Omega = 0.0;
    if (el.e > kTiny) {
      el.omega = std::atan2(evec.y, evec.x);
      if (h.z < 0.0) el.omega = -el.omega;
    } else {
      el.omega = 0.0;
    }
  } else {
    el.Omega = std::atan2(nvec.y, nvec.x);
    if (el.e > kTiny) {
      el.omega = std::acos(std::clamp(dot(nvec, evec) / (nn * el.e), -1.0, 1.0));
      if (evec.z < 0.0) el.omega = -el.omega;
    } else {
      el.omega = 0.0;
    }
  }

  // True anomaly -> eccentric -> mean.
  double nu;
  if (el.e > kTiny) {
    nu = std::acos(std::clamp(dot(evec, r) / (el.e * rn), -1.0, 1.0));
    if (dot(r, v) < 0.0) nu = -nu;
  } else {
    // Circular: measure from the node (or x-axis when equatorial).
    const Vec3 ref = nn < kTiny * hn ? Vec3{1.0, 0.0, 0.0} : nvec / nn;
    nu = std::acos(std::clamp(dot(ref, r) / rn, -1.0, 1.0));
    const Vec3 c = cross(ref, r);
    if (dot(c, h) < 0.0) nu = -nu;
  }
  const double E = 2.0 * std::atan2(std::sqrt(1.0 - el.e) * std::sin(0.5 * nu),
                                    std::sqrt(1.0 + el.e) * std::cos(0.5 * nu));
  el.M = wrap_angle(E - el.e * std::sin(E));
  el.Omega = wrap_angle(el.Omega);
  el.omega = wrap_angle(el.omega);
  return el;
}

double orbital_period(double a, double gm) {
  G6_CHECK(a > 0.0 && gm > 0.0, "period needs positive a and gm");
  return 2.0 * std::numbers::pi * std::sqrt(a * a * a / gm);
}

}  // namespace g6::disk
