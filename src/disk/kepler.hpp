#pragma once
/// \file kepler.hpp
/// \brief Two-body (Keplerian) orbit machinery: Kepler-equation solver and
///        conversions between orbital elements and Cartesian state vectors.
///
/// Used to generate the planetesimal disk (elements -> state) and to analyse
/// simulation output (state -> elements for a–e scatter plots and gap
/// detection). Heliocentric elements about a central mass GM at the origin.

#include "util/vec3.hpp"

namespace g6::disk {

using g6::util::Vec3;

/// Classical orbital elements of a bound (e < 1) heliocentric orbit.
struct OrbitalElements {
  double a = 1.0;       ///< semi-major axis
  double e = 0.0;       ///< eccentricity
  double inc = 0.0;     ///< inclination [rad]
  double Omega = 0.0;   ///< longitude of ascending node [rad]
  double omega = 0.0;   ///< argument of pericentre [rad]
  double M = 0.0;       ///< mean anomaly [rad]
};

/// Cartesian heliocentric state.
struct StateVector {
  Vec3 pos;
  Vec3 vel;
};

/// Solve Kepler's equation E - e sin(E) = M for the eccentric anomaly E.
/// Newton–Raphson with a cubic starter; converges to ~1e-14 for all e < 1.
double solve_kepler(double mean_anomaly, double e);

/// Convert elements to a Cartesian state for central mass parameter \p gm.
StateVector elements_to_state(const OrbitalElements& el, double gm);

/// Convert a Cartesian state to elements. Requires a bound orbit (the
/// routine checks and throws g6::util::Error for unbound states).
OrbitalElements state_to_elements(const StateVector& sv, double gm);

/// Orbital period of a bound orbit with semi-major axis \p a.
double orbital_period(double a, double gm);

/// Specific orbital energy of a state (negative for bound orbits).
double specific_energy(const StateVector& sv, double gm);

}  // namespace g6::disk
