#pragma once
/// \file massfunc.hpp
/// \brief The planetesimal mass function of the paper (§2): N(m) dm ∝ m^-2.5
///        between a lower and an upper cutoff — "a stationary distribution
///        found by numerical simulations and confirmed by simple analytic
///        argument".

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6::disk {

/// Truncated power-law mass function.
class MassFunction {
 public:
  /// \p exponent is the differential index (paper: -2.5); cutoffs in M_sun.
  MassFunction(double exponent, double m_lo, double m_hi)
      : exponent_(exponent), m_lo_(m_lo), m_hi_(m_hi) {
    G6_CHECK(m_lo > 0.0 && m_hi > m_lo, "mass cutoffs must satisfy 0 < lo < hi");
  }

  double exponent() const { return exponent_; }
  double lower_cutoff() const { return m_lo_; }
  double upper_cutoff() const { return m_hi_; }

  /// Draw one mass.
  double sample(g6::util::Rng& rng) const {
    return rng.power_law(exponent_, m_lo_, m_hi_);
  }

  /// Analytic mean of the distribution.
  double mean() const {
    const double a = exponent_;
    auto moment = [&](double p) {
      // ∫ m^(a+p) dm over [lo, hi]
      const double q = a + p + 1.0;
      if (q == 0.0) return std::log(m_hi_ / m_lo_);
      return (std::pow(m_hi_, q) - std::pow(m_lo_, q)) / q;
    };
    return moment(1.0) / moment(0.0);
  }

 private:
  double exponent_;
  double m_lo_;
  double m_hi_;
};

}  // namespace g6::disk
