#pragma once
/// \file hill.hpp
/// \brief Hill-sphere scales for protoplanet–planetesimal dynamics.
///
/// The paper calibrates its softening against the Hill radius of the
/// protoplanets ("This softening is two orders of magnitude smaller than the
/// Hill radius of the protoplanets").

#include <cmath>

namespace g6::disk {

/// Hill radius of a body of mass \p m orbiting mass \p m_central at
/// semi-major axis \p a: r_H = a (m / 3 M)^{1/3}.
inline double hill_radius(double a, double m, double m_central) {
  return a * std::cbrt(m / (3.0 * m_central));
}

/// Reduced Hill factor h = (m / 3 M)^{1/3} (the eccentricity scale of
/// Hill's approximation).
inline double reduced_hill(double m, double m_central) {
  return std::cbrt(m / (3.0 * m_central));
}

/// Circular Keplerian speed at radius \p r for central parameter \p gm.
inline double keplerian_speed(double r, double gm) { return std::sqrt(gm / r); }

/// Surface escape speed of a body of mass m and radius R (code units).
inline double escape_speed(double m, double radius) {
  return std::sqrt(2.0 * m / radius);
}

}  // namespace g6::disk
