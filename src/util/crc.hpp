#pragma once
/// \file crc.hpp
/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) for payload framing.
///
/// The real GRAPE-6 datapaths mostly ran without ECC; the host library lived
/// with that by checking what it could from software (astro-ph/0310702 §8).
/// The reliability layer frames Transport payloads, j-memory images and
/// binary snapshots with this CRC so single- and multi-bit corruption is
/// *detected* rather than silently folded into the physics.
///
/// Table-driven, one byte per step; the table is built once per process.
/// crc32() of the 9-byte ASCII string "123456789" is 0xCBF43926 (the
/// standard check value), enforced by test_crc.

#include <array>
#include <cstddef>
#include <cstdint>

namespace g6::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[n] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental update: feed \p len bytes into a running CRC state. Start
/// from crc32_init(), finish with crc32_final(). Suitable for streaming
/// writers (binary snapshots) that cannot buffer the whole payload.
inline constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  for (std::size_t i = 0; i < len; ++i)
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

inline constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

/// CRC-32 of a trivially-copyable value's object representation.
template <typename T>
std::uint32_t crc32_of(const T& value) {
  return crc32(&value, sizeof(T));
}

}  // namespace g6::util
