#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace g6::util {

Histogram::Histogram(double lo, double hi, std::size_t nbins, BinScale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(nbins, 0.0) {
  G6_CHECK(nbins > 0, "histogram needs at least one bin");
  G6_CHECK(hi > lo, "histogram range must be non-empty");
  if (scale_ == BinScale::kLog) {
    G6_CHECK(lo > 0.0, "log-scale histogram needs positive bounds");
    log_lo_ = std::log(lo);
    log_hi_ = std::log(hi);
  }
}

void Histogram::add(double x, double weight) {
  double frac;
  if (scale_ == BinScale::kLinear) {
    frac = (x - lo_) / (hi_ - lo_);
  } else {
    if (x <= 0.0) {
      underflow_ += weight;
      return;
    }
    frac = (std::log(x) - log_lo_) / (log_hi_ - log_lo_);
  }
  if (frac < 0.0) {
    underflow_ += weight;
    return;
  }
  if (frac >= 1.0) {
    overflow_ += weight;
    return;
  }
  const auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  counts_[std::min(bin, counts_.size() - 1)] += weight;
  total_ += weight;
}

double Histogram::edge_lo(std::size_t i) const {
  const double f = static_cast<double>(i) / static_cast<double>(counts_.size());
  if (scale_ == BinScale::kLinear) return lo_ + f * (hi_ - lo_);
  return std::exp(log_lo_ + f * (log_hi_ - log_lo_));
}

double Histogram::center(std::size_t i) const {
  if (scale_ == BinScale::kLinear) return 0.5 * (edge_lo(i) + edge_hi(i));
  return std::sqrt(edge_lo(i) * edge_hi(i));
}

std::string Histogram::to_ascii(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = peak > 0.0
        ? static_cast<std::size_t>(std::lround(counts_[i] / peak * static_cast<double>(width)))
        : std::size_t{0};
    std::snprintf(buf, sizeof buf, "%12.4g .. %-12.4g |%-10.4g| ", edge_lo(i), edge_hi(i),
                  counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace g6::util
