#include "util/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace g6::util {

GrayImage::GrayImage(std::size_t width, std::size_t height)
    : width_(width), height_(height), data_(width * height, 0.0) {
  G6_CHECK(width > 0 && height > 0, "image must be non-empty");
}

void GrayImage::deposit(std::size_t x, std::size_t y, double weight) {
  G6_CHECK(x < width_ && y < height_, "pixel out of range");
  data_[y * width_ + x] += weight;
}

double GrayImage::at(std::size_t x, std::size_t y) const {
  G6_CHECK(x < width_ && y < height_, "pixel out of range");
  return data_[y * width_ + x];
}

void GrayImage::splat(double x, double y, double xlo, double xhi, double ylo,
                      double yhi, double weight) {
  G6_CHECK(xhi > xlo && yhi > ylo, "splat range must be non-empty");
  const double fx = (x - xlo) / (xhi - xlo);
  const double fy = (y - ylo) / (yhi - ylo);
  if (fx < 0.0 || fx >= 1.0 || fy < 0.0 || fy >= 1.0) return;
  const auto px = static_cast<std::size_t>(fx * static_cast<double>(width_));
  // Data-space y points up; raster y points down.
  const auto py = height_ - 1 -
                  static_cast<std::size_t>(fy * static_cast<double>(height_));
  deposit(std::min(px, width_ - 1), std::min(py, height_ - 1), weight);
}

void GrayImage::write_pgm(std::ostream& os, bool invert) const {
  double peak = 0.0;
  for (double v : data_) peak = std::max(peak, v);

  os << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  const double denom = peak > 0.0 ? std::log1p(peak) : 1.0;
  for (double v : data_) {
    const double f = v > 0.0 ? std::log1p(v) / denom : 0.0;
    int level = static_cast<int>(std::lround(f * 255.0));
    level = std::clamp(level, 0, 255);
    if (invert) level = 255 - level;
    const char byte = static_cast<char>(level);
    os.write(&byte, 1);
  }
  G6_CHECK(os.good(), "PGM write failed");
}

void GrayImage::write_pgm_file(const std::string& path, bool invert) const {
  std::ofstream os(path, std::ios::binary);
  G6_CHECK(os.is_open(), "cannot open image file for writing: " + path);
  write_pgm(os, invert);
}

}  // namespace g6::util
