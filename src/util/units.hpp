#pragma once
/// \file units.hpp
/// \brief The paper's system of units and physical constants.
///
/// The SC2002 paper (§2) chooses units such that the Astronomical Unit,
/// the Solar mass and the gravitational constant are all unity; one year
/// is then 2*pi time units.

#include <numbers>

namespace g6::units {

/// Gravitational constant (unity by construction).
inline constexpr double G = 1.0;

/// Solar mass in code units.
inline constexpr double Msun = 1.0;

/// Astronomical unit in code units.
inline constexpr double AU = 1.0;

/// One Julian year expressed in code time units (2*pi).
inline constexpr double year = 2.0 * std::numbers::pi;

/// Earth mass in Solar masses (for convenience in examples).
inline constexpr double Mearth = 3.003e-6;

/// Conversion: code time units -> years.
inline constexpr double to_years(double code_time) { return code_time / year; }

/// Conversion: years -> code time units.
inline constexpr double from_years(double years_) { return years_ * year; }

}  // namespace g6::units
