#pragma once
/// \file fixed_point.hpp
/// \brief Fixed-point number formats used by the GRAPE-6 arithmetic model.
///
/// GRAPE-6 stores particle positions and accumulates partial forces in 64-bit
/// fixed-point registers (Makino & Taiji 1998). Two properties of the real
/// hardware matter for the reproduction and are preserved here exactly:
///
///  1. **Order independence.** Fixed-point addition is associative, so the
///     hardware reduction tree that sums partial forces across pipelines,
///     chips and boards produces bit-identical results for any summation
///     order. This is what makes the parallel machine deterministic.
///  2. **Quantisation.** Converting a real-valued position or force into the
///     format rounds to the nearest representable value for a given scale,
///     which bounds the absolute (not relative) error.
///
/// The scale is a runtime parameter (value of one least-significant bit),
/// mirroring the host library's responsibility of choosing the dynamic range
/// for a given simulation.

#include <cstdint>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.hpp"
#include "util/vec3.hpp"

namespace g6::util {

/// A 64-bit fixed-point value with an explicit scale (the real value of one
/// LSB). Addition/subtraction between values of the same scale is exact
/// (modulo two's-complement wraparound, like the hardware).
class Fixed64 {
 public:
  constexpr Fixed64() = default;

  /// Construct from a raw register value and its scale.
  static constexpr Fixed64 from_raw(std::int64_t raw, double lsb) {
    Fixed64 f;
    f.raw_ = raw;
    f.lsb_ = lsb;
    return f;
  }

  /// Quantise a real value: round-to-nearest at the given LSB.
  /// Values outside the representable range saturate (the hardware clamps).
  static Fixed64 quantize(double value, double lsb) {
    G6_CHECK(lsb > 0.0, "fixed-point LSB must be positive");
    const double scaled = value / lsb;
    constexpr double kMax = 9.223372036854775e18;  // ~ 2^63
    Fixed64 f;
    f.lsb_ = lsb;
    if (scaled >= kMax) {
      f.raw_ = std::numeric_limits<std::int64_t>::max();
    } else if (scaled <= -kMax) {
      f.raw_ = std::numeric_limits<std::int64_t>::min();
    } else {
      f.raw_ = static_cast<std::int64_t>(std::llround(scaled));
    }
    return f;
  }

  /// The raw 64-bit register content.
  constexpr std::int64_t raw() const { return raw_; }

  /// Value of one least-significant bit.
  constexpr double lsb() const { return lsb_; }

  /// Convert back to a double.
  constexpr double to_double() const { return static_cast<double>(raw_) * lsb_; }

  /// Exact accumulation. Both operands must share a scale; wraparound on
  /// overflow matches two's-complement hardware adders.
  Fixed64& operator+=(const Fixed64& o) {
    G6_CHECK(lsb_ == o.lsb_, "fixed-point addition requires identical scales");
    raw_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(raw_) +
                                     static_cast<std::uint64_t>(o.raw_));
    return *this;
  }
  Fixed64& operator-=(const Fixed64& o) {
    G6_CHECK(lsb_ == o.lsb_, "fixed-point subtraction requires identical scales");
    raw_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(raw_) -
                                     static_cast<std::uint64_t>(o.raw_));
    return *this;
  }
  friend Fixed64 operator+(Fixed64 a, const Fixed64& b) { return a += b; }
  friend Fixed64 operator-(Fixed64 a, const Fixed64& b) { return a -= b; }

  friend constexpr bool operator==(const Fixed64&, const Fixed64&) = default;

 private:
  std::int64_t raw_ = 0;
  double lsb_ = 1.0;
};

/// A fixed-point 3-vector accumulator with a shared scale — the model of the
/// force accumulation registers and the position words in j-particle memory.
class FixedVec3 {
 public:
  FixedVec3() : FixedVec3(1.0) {}
  explicit FixedVec3(double lsb)
      : x_(Fixed64::quantize(0.0, lsb)),
        y_(Fixed64::quantize(0.0, lsb)),
        z_(Fixed64::quantize(0.0, lsb)) {}

  static FixedVec3 quantize(const Vec3& v, double lsb) {
    FixedVec3 f(lsb);
    f.x_ = Fixed64::quantize(v.x, lsb);
    f.y_ = Fixed64::quantize(v.y, lsb);
    f.z_ = Fixed64::quantize(v.z, lsb);
    return f;
  }

  Vec3 to_vec3() const { return {x_.to_double(), y_.to_double(), z_.to_double()}; }

  /// Accumulate a real-valued contribution: quantise then add exactly —
  /// precisely what the pipeline's accumulator stage does per interaction.
  void accumulate(const Vec3& v) {
    x_ += Fixed64::quantize(v.x, x_.lsb());
    y_ += Fixed64::quantize(v.y, y_.lsb());
    z_ += Fixed64::quantize(v.z, z_.lsb());
  }

  /// Exact merge of two accumulators (the reduction-tree operation).
  FixedVec3& operator+=(const FixedVec3& o) {
    x_ += o.x_;
    y_ += o.y_;
    z_ += o.z_;
    return *this;
  }

  double lsb() const { return x_.lsb(); }

  /// Component access (register-level, for serialisation and tests).
  const Fixed64& x() const { return x_; }
  const Fixed64& y() const { return y_; }
  const Fixed64& z() const { return z_; }

  /// Rebuild from raw register values.
  static FixedVec3 from_raw(std::int64_t rx, std::int64_t ry, std::int64_t rz,
                            double lsb) {
    FixedVec3 f(lsb);
    f.x_ = Fixed64::from_raw(rx, lsb);
    f.y_ = Fixed64::from_raw(ry, lsb);
    f.z_ = Fixed64::from_raw(rz, lsb);
    return f;
  }

  friend bool operator==(const FixedVec3&, const FixedVec3&) = default;

 private:
  Fixed64 x_, y_, z_;
};

/// Reference implementation of the mantissa shortening via frexp/ldexp.
/// Kept as the oracle for the bit-identity tests of the fast path below;
/// not used on the hot paths.
inline double round_to_mantissa_reference(double value, int mantissa_bits) {
  if (mantissa_bits >= 52 || value == 0.0 || !std::isfinite(value)) return value;
  const int drop = 52 - mantissa_bits;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // |frac| in [0.5, 1)
  const double scale = std::ldexp(1.0, 53 - drop);
  const double rounded = std::nearbyint(frac * scale) / scale;
  return std::ldexp(rounded, exp);
}

/// Round a double to a reduced-precision binary float with \p mantissa_bits
/// bits of mantissa (excluding the implicit leading 1). Models GRAPE-6's
/// shortened floating-point datapaths (e.g. velocities and intermediate
/// pipeline values). mantissa_bits >= 52 is the identity.
///
/// Branch-free bit manipulation on the IEEE-754 representation, bit-identical
/// to round_to_mantissa_reference (enforced by tests/test_fixed_point.cpp):
/// the pipeline model calls this once per produced component, so the
/// frexp/ldexp libm round-trips of the reference were a measurable cost.
inline double round_to_mantissa(double value, int mantissa_bits) {
  const int drop = 52 - mantissa_bits;
  if (drop < 1 || drop > 51) return round_to_mantissa_reference(value, mantissa_bits);
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  const std::uint64_t exp_field = (bits >> 52) & 0x7ffu;
  // Zero, subnormals, infinities and NaNs have no normalised mantissa to
  // round; the reference passes them through unchanged.
  if (exp_field - 1 >= 0x7feu) return round_to_mantissa_reference(value, mantissa_bits);
  // Round-to-nearest-even on the top mantissa_bits of the mantissa: add half
  // an output ULP minus one plus the kept LSB (so exact ties round to the
  // even kept mantissa), then clear the dropped bits. A carry out of the
  // mantissa field increments the exponent, which is exactly the
  // re-normalisation step (1.11..1 -> 10.0..0), and overflow of the top
  // binade to infinity matches the reference's ldexp. The sign bit is
  // untouched because the exponent field cannot carry past 0x7ff.
  bits += ((std::uint64_t{1} << (drop - 1)) - 1) + ((bits >> drop) & 1u);
  bits &= ~((std::uint64_t{1} << drop) - 1);
  double out;
  std::memcpy(&out, &bits, sizeof out);
  return out;
}

}  // namespace g6::util
