#pragma once
/// \file simd.hpp
/// \brief Width-agnostic SIMD wrapper for the force kernels (G6_SIMD).
///
/// The hot kernels operate on packs of `kWidth` doubles (and, for the
/// mixed-precision kernel, `kWidthF = 2*kWidth` floats / int32 lanes). The
/// pack types are GCC/Clang vector extensions, so +,-,* compile to single
/// vector instructions and the same kernel source serves AVX-512 (8 double
/// lanes), AVX2 (4), SSE2 (2) and plain scalar (1) — the width is fixed by
/// the ISA flags of the *including translation unit*, not of the build:
/// nbody/kernels_<isa>.cpp and grape6/chip_kernels_<isa>.cpp each include
/// this header under their own per-file `-m` flags (see
/// src/nbody/CMakeLists.txt) and the runtime dispatch table in
/// nbody/simd_dispatch.hpp picks one set at startup.
///
/// Because several TUs of one binary instantiate this header at different
/// widths, everything lives in an inline namespace keyed on the variant
/// (w1/w2/w4/w8): same spelling at every width, distinct symbols per
/// variant. A TU can force the scalar variant on x86 by defining
/// G6_SIMD_FORCE_SCALAR before inclusion (the runtime fallback ladder's
/// lowest rung; the ABI still uses SSE registers, the *kernels* are scalar).
///
/// Three classes of helpers live here:
///
///  * IEEE-exact (double): load/store/broadcast/vsqrt/div. Lane k of the
///    result is bit-identical to the corresponding scalar expression, which
///    is what lets the exact kernels replay the scalar reference kernel at
///    vector width (the build disables FMA contraction, see the top-level
///    CMakeLists).
///  * Approximate (double): rsqrt_approx / fmadd / fnmadd, used only by the
///    opt-in "fast" kernel (docs/PERFORMANCE.md). kHasFastRsqrt tells the
///    kernel whether a hardware double-precision reciprocal-sqrt estimate
///    exists; without it the fast kernel falls back to the exact one.
///  * Reduced precision (float/int32): the "mixed" kernel's software mirror
///    of the GRAPE-6 pipeline — int32 fixed-point position lanes, float
///    pair arithmetic, hardware float rsqrt estimate. Available at every
///    x86 level (rsqrtps is SSE1), so unlike the fast kernel the mixed
///    kernel speeds up SSE2/AVX2 hosts too.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__) || defined(__x86_64__)
// GCC 12's AVX-512 intrinsics initialise their "undefined" source operand with
// a self-assignment (`__m512d __Y = __Y;`), which trips -Wmaybe-uninitialized
// after inlining (GCC PR105593). The warning is attributed to the header
// lines, so an ignored-region around the include silences it without masking
// diagnostics in our own code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

// One macro gates every vector branch: x86 vector hardware available AND the
// TU did not opt into the forced-scalar variant.
#if (defined(__SSE2__) || defined(__x86_64__)) && !defined(G6_SIMD_FORCE_SCALAR)
#define G6_SIMD_X86 1
#endif

// The inline-namespace variant tag. Distinct widths get distinct mangled
// names, so the per-ISA kernel TUs can coexist in one binary.
#if !defined(G6_SIMD_X86)
#define G6_SIMD_VARIANT w1
#elif defined(__AVX512F__)
#define G6_SIMD_VARIANT w8
#elif defined(__AVX__)
#define G6_SIMD_VARIANT w4
#else
#define G6_SIMD_VARIANT w2
#endif

namespace g6::util::simd {
inline namespace G6_SIMD_VARIANT {

#if !defined(G6_SIMD_X86)
inline constexpr int kWidth = 1;
#elif defined(__AVX512F__)
inline constexpr int kWidth = 8;
#elif defined(__AVX__)
inline constexpr int kWidth = 4;
#else
inline constexpr int kWidth = 2;
#endif

/// Float/int32 lanes of the reduced-precision helpers: twice the double
/// width (a full vector register of floats), or one in the scalar variant.
#if defined(G6_SIMD_X86)
inline constexpr int kWidthF = 2 * kWidth;
#else
inline constexpr int kWidthF = 1;
#endif

#if defined(G6_SIMD_X86) && defined(__AVX512F__) && defined(__FMA__)
inline constexpr bool kHasFastRsqrt = true;
#else
inline constexpr bool kHasFastRsqrt = false;
#endif

#if defined(G6_SIMD_X86)
typedef double VecD __attribute__((vector_size(kWidth * sizeof(double))));
typedef float VecF __attribute__((vector_size(kWidthF * sizeof(float))));
typedef std::int32_t VecI __attribute__((vector_size(kWidthF * sizeof(std::int32_t))));
#else
using VecD = double;        // scalar fallback: a "vector" of one lane
using VecF = float;
using VecI = std::int32_t;
#endif

// All helpers are `static`: each TU gets its own copy compiled with its own
// ISA flags, so the linker can never substitute (say) an AVX-512-encoded
// copy into the SSE2 fallback path of the dispatch ladder.

/// Unaligned load of kWidth consecutive doubles.
static inline VecD load(const double* p) {
  VecD v;
  std::memcpy(&v, p, sizeof(VecD));
  return v;
}

/// Unaligned store of kWidth consecutive doubles.
static inline void store(double* p, VecD v) { std::memcpy(p, &v, sizeof(VecD)); }

/// All lanes = s.
static inline VecD broadcast(double s) {
#if defined(G6_SIMD_X86)
  VecD v = {};
  v += s;  // vector + scalar broadcasts
  return v;
#else
  return s;
#endif
}

/// Per-lane IEEE-correctly-rounded sqrt (bit-identical to std::sqrt per lane).
static inline VecD vsqrt(VecD v) {
#if !defined(G6_SIMD_X86)
  return std::sqrt(v);
#elif defined(__AVX512F__)
  return (VecD)_mm512_sqrt_pd((__m512d)v);
#elif defined(__AVX__)
  return (VecD)_mm256_sqrt_pd((__m256d)v);
#else
  return (VecD)_mm_sqrt_pd((__m128d)v);
#endif
}

// --- approximate helpers (fast kernel only) --------------------------------

/// ~14-bit reciprocal square root estimate (AVX-512 only; elsewhere the fast
/// kernel is not selected, see kHasFastRsqrt).
static inline VecD rsqrt_approx(VecD v) {
#if defined(G6_SIMD_X86) && defined(__AVX512F__)
  return (VecD)_mm512_rsqrt14_pd((__m512d)v);
#else
  return vsqrt(v);  // placeholder, never reached when !kHasFastRsqrt
#endif
}

/// a*b + c with a single rounding where FMA hardware exists.
static inline VecD fmadd(VecD a, VecD b, VecD c) {
#if defined(G6_SIMD_X86) && defined(__AVX512F__) && defined(__FMA__)
  return (VecD)_mm512_fmadd_pd((__m512d)a, (__m512d)b, (__m512d)c);
#elif defined(G6_SIMD_X86) && defined(__AVX__) && defined(__FMA__)
  return (VecD)_mm256_fmadd_pd((__m256d)a, (__m256d)b, (__m256d)c);
#else
  return a * b + c;
#endif
}

/// -(a*b) + c with a single rounding where FMA hardware exists.
static inline VecD fnmadd(VecD a, VecD b, VecD c) {
#if defined(G6_SIMD_X86) && defined(__AVX512F__) && defined(__FMA__)
  return (VecD)_mm512_fnmadd_pd((__m512d)a, (__m512d)b, (__m512d)c);
#elif defined(G6_SIMD_X86) && defined(__AVX__) && defined(__FMA__)
  return (VecD)_mm256_fnmadd_pd((__m256d)a, (__m256d)b, (__m256d)c);
#else
  return c - a * b;
#endif
}

/// Horizontal sum, left-to-right over the lanes (deterministic order).
static inline double reduce_add(VecD v) {
#if defined(G6_SIMD_X86)
  alignas(64) double lanes[kWidth];
  store(lanes, v);
  double s = lanes[0];
  for (int k = 1; k < kWidth; ++k) s += lanes[k];
  return s;
#else
  return v;
#endif
}

// --- reduced-precision helpers (mixed kernel only) -------------------------

/// Unaligned load of kWidthF consecutive floats.
static inline VecF loadf(const float* p) {
  VecF v;
  std::memcpy(&v, p, sizeof(VecF));
  return v;
}

/// Unaligned store of kWidthF consecutive floats.
static inline void storef(float* p, VecF v) { std::memcpy(p, &v, sizeof(VecF)); }

/// Unaligned load of kWidthF consecutive int32 lanes.
static inline VecI loadi(const std::int32_t* p) {
  VecI v;
  std::memcpy(&v, p, sizeof(VecI));
  return v;
}

/// All float lanes = s.
static inline VecF broadcastf(float s) {
#if defined(G6_SIMD_X86)
  VecF v = {};
  v += s;
  return v;
#else
  return s;
#endif
}

/// All int32 lanes = s.
static inline VecI broadcasti(std::int32_t s) {
#if defined(G6_SIMD_X86)
  VecI v = {};
  v += s;
  return v;
#else
  return s;
#endif
}

/// Per-lane int32 -> float conversion (cvtdq2ps; exact for |v| < 2^24, and
/// correctly rounded beyond — the fixed-point position differences of the
/// mixed kernel land here).
static inline VecF to_float(VecI v) {
#if defined(G6_SIMD_X86)
  return __builtin_convertvector(v, VecF);
#else
  return static_cast<float>(v);
#endif
}

/// Hardware reciprocal-sqrt estimate on float lanes. Worst-case relative
/// error: 2^-14 on AVX-512 (vrsqrt14ps), 1.5*2^-12 on SSE/AVX (rsqrtps);
/// the scalar fallback computes 1/sqrt exactly. One Newton step after any
/// of these saturates float precision (~2^-22 or better).
static inline VecF rsqrt_approx_f(VecF v) {
#if !defined(G6_SIMD_X86)
  return 1.0f / std::sqrt(v);
#elif defined(__AVX512F__)
  return (VecF)_mm512_rsqrt14_ps((__m512)v);
#elif defined(__AVX__)
  return (VecF)_mm256_rsqrt_ps((__m256)v);
#else
  return (VecF)_mm_rsqrt_ps((__m128)v);
#endif
}

/// a*b + c on float lanes, single rounding where FMA hardware exists.
static inline VecF fmaddf(VecF a, VecF b, VecF c) {
#if defined(G6_SIMD_X86) && defined(__AVX512F__) && defined(__FMA__)
  return (VecF)_mm512_fmadd_ps((__m512)a, (__m512)b, (__m512)c);
#elif defined(G6_SIMD_X86) && defined(__AVX__) && defined(__FMA__)
  return (VecF)_mm256_fmadd_ps((__m256)a, (__m256)b, (__m256)c);
#else
  return a * b + c;
#endif
}

/// -(a*b) + c on float lanes, single rounding where FMA hardware exists.
static inline VecF fnmaddf(VecF a, VecF b, VecF c) {
#if defined(G6_SIMD_X86) && defined(__AVX512F__) && defined(__FMA__)
  return (VecF)_mm512_fnmadd_ps((__m512)a, (__m512)b, (__m512)c);
#elif defined(G6_SIMD_X86) && defined(__AVX__) && defined(__FMA__)
  return (VecF)_mm256_fnmadd_ps((__m256)a, (__m256)b, (__m256)c);
#else
  return c - a * b;
#endif
}

}  // inline namespace G6_SIMD_VARIANT
}  // namespace g6::util::simd
