#pragma once
/// \file simd.hpp
/// \brief Width-agnostic SIMD wrapper for the force kernels (G6_SIMD).
///
/// The hot kernels operate on packs of `kWidth` doubles. The pack type is a
/// GCC/Clang vector extension, so +,-,* compile to single vector instructions
/// and the same kernel source serves AVX-512 (8 lanes), AVX (4), SSE2 (2) and
/// plain scalar (1) builds — the width is fixed at compile time from the
/// target architecture.
///
/// Two classes of helpers live here:
///
///  * IEEE-exact: load/store/broadcast/vsqrt/div. Lane k of the result is
///    bit-identical to the corresponding scalar expression, which is what
///    lets force_kernels.cpp replay the scalar reference kernel at vector
///    width (the build disables FMA contraction, see the top-level
///    CMakeLists).
///  * Approximate: rsqrt_approx / fmadd / fnmadd, used only by the opt-in
///    "fast" kernel (docs/PERFORMANCE.md). kHasFastRsqrt tells the kernel
///    whether a hardware reciprocal-sqrt estimate exists; without it the
///    fast kernel falls back to the exact one.

#include <cmath>
#include <cstddef>
#include <cstring>

#if defined(__SSE2__) || defined(__x86_64__)
// GCC 12's AVX-512 intrinsics initialise their "undefined" source operand with
// a self-assignment (`__m512d __Y = __Y;`), which trips -Wmaybe-uninitialized
// after inlining (GCC PR105593). The warning is attributed to the header
// lines, so an ignored-region around the include silences it without masking
// diagnostics in our own code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

namespace g6::util::simd {

#if defined(__AVX512F__)
inline constexpr int kWidth = 8;
#elif defined(__AVX__)
inline constexpr int kWidth = 4;
#elif defined(__SSE2__) || defined(__x86_64__)
inline constexpr int kWidth = 2;
#else
inline constexpr int kWidth = 1;
#endif

#if defined(__FMA__) && defined(__AVX512F__)
inline constexpr bool kHasFastRsqrt = true;
#else
inline constexpr bool kHasFastRsqrt = false;
#endif

#if defined(__SSE2__) || defined(__x86_64__)
typedef double VecD __attribute__((vector_size(kWidth * sizeof(double))));
#else
using VecD = double;  // scalar fallback: a "vector" of one lane
#endif

/// Unaligned load of kWidth consecutive doubles.
inline VecD load(const double* p) {
  VecD v;
  std::memcpy(&v, p, sizeof(VecD));
  return v;
}

/// Unaligned store of kWidth consecutive doubles.
inline void store(double* p, VecD v) { std::memcpy(p, &v, sizeof(VecD)); }

/// All lanes = s.
inline VecD broadcast(double s) {
#if defined(__SSE2__) || defined(__x86_64__)
  VecD v = {};
  v += s;  // vector + scalar broadcasts
  return v;
#else
  return s;
#endif
}

/// Per-lane IEEE-correctly-rounded sqrt (bit-identical to std::sqrt per lane).
inline VecD vsqrt(VecD v) {
#if defined(__AVX512F__)
  return (VecD)_mm512_sqrt_pd((__m512d)v);
#elif defined(__AVX__)
  return (VecD)_mm256_sqrt_pd((__m256d)v);
#elif defined(__SSE2__) || defined(__x86_64__)
  return (VecD)_mm_sqrt_pd((__m128d)v);
#else
  return std::sqrt(v);
#endif
}

// --- approximate helpers (fast kernel only) --------------------------------

/// ~14-bit reciprocal square root estimate (AVX-512 only; elsewhere the fast
/// kernel is not selected, see kHasFastRsqrt).
inline VecD rsqrt_approx(VecD v) {
#if defined(__AVX512F__)
  return (VecD)_mm512_rsqrt14_pd((__m512d)v);
#else
  return vsqrt(v);  // placeholder, never reached when !kHasFastRsqrt
#endif
}

/// a*b + c with a single rounding where FMA hardware exists.
inline VecD fmadd(VecD a, VecD b, VecD c) {
#if defined(__AVX512F__) && defined(__FMA__)
  return (VecD)_mm512_fmadd_pd((__m512d)a, (__m512d)b, (__m512d)c);
#elif defined(__AVX__) && defined(__FMA__)
  return (VecD)_mm256_fmadd_pd((__m256d)a, (__m256d)b, (__m256d)c);
#else
  return a * b + c;
#endif
}

/// -(a*b) + c with a single rounding where FMA hardware exists.
inline VecD fnmadd(VecD a, VecD b, VecD c) {
#if defined(__AVX512F__) && defined(__FMA__)
  return (VecD)_mm512_fnmadd_pd((__m512d)a, (__m512d)b, (__m512d)c);
#elif defined(__AVX__) && defined(__FMA__)
  return (VecD)_mm256_fnmadd_pd((__m256d)a, (__m256d)b, (__m256d)c);
#else
  return c - a * b;
#endif
}

/// Horizontal sum, left-to-right over the lanes (deterministic order).
inline double reduce_add(VecD v) {
#if defined(__SSE2__) || defined(__x86_64__)
  alignas(64) double lanes[kWidth];
  store(lanes, v);
  double s = lanes[0];
  for (int k = 1; k < kWidth; ++k) s += lanes[k];
  return s;
#else
  return v;
#endif
}

}  // namespace g6::util::simd
