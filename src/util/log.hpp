#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging to stderr. Quiet by default so bench output
///        stays machine-readable; raise the level for debugging runs.
///
/// Emission is thread-safe: each line is formatted in full — with a
/// monotonic timestamp (seconds since process start) and a level tag — and
/// written under a single mutex, so concurrent loggers never interleave
/// mid-line.

#include <cstdio>
#include <sstream>
#include <string>

namespace g6::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (messages below it are dropped). Defaults to kWarn;
/// the G6_LOG environment variable (debug/info/warn/error/off) overrides it
/// at first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirect log output (default stderr; tests point this at a tmpfile).
/// Passing nullptr restores stderr. The caller keeps ownership.
void set_log_stream(std::FILE* stream);

/// Emit one log line (internal; use the G6_LOG_* macros). Format:
///   [g6 +<seconds>s LEVEL] <msg>\n
void log_emit(LogLevel level, const std::string& msg);

}  // namespace g6::util

#define G6_LOG_AT(level, expr)                               \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::g6::util::log_level())) {         \
      std::ostringstream g6_log_oss_;                        \
      g6_log_oss_ << expr;                                   \
      ::g6::util::log_emit(level, g6_log_oss_.str());        \
    }                                                        \
  } while (0)

#define G6_LOG_DEBUG(expr) G6_LOG_AT(::g6::util::LogLevel::kDebug, expr)
#define G6_LOG_INFO(expr) G6_LOG_AT(::g6::util::LogLevel::kInfo, expr)
#define G6_LOG_WARN(expr) G6_LOG_AT(::g6::util::LogLevel::kWarn, expr)
#define G6_LOG_ERROR(expr) G6_LOG_AT(::g6::util::LogLevel::kError, expr)
