#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace g6::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("G6_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level)); }

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[g6 %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace g6::util
