#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace g6::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("G6_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

std::mutex& emit_mutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<std::FILE*>& stream_storage() {
  static std::atomic<std::FILE*> stream{nullptr};  // nullptr = stderr
  return stream;
}

/// Monotonic seconds since the first log call (process-lifetime clock).
double uptime_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level)); }

void set_log_stream(std::FILE* stream) { stream_storage().store(stream); }

void log_emit(LogLevel level, const std::string& msg) {
  // Build the complete line first, then write it in one call under the
  // mutex: concurrent loggers can never interleave mid-line.
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[g6 +%.6fs %s] ", uptime_seconds(),
                level_name(level));
  std::string line;
  line.reserve(std::strlen(prefix) + msg.size() + 1);
  line += prefix;
  line += msg;
  line += '\n';

  std::FILE* out = stream_storage().load();
  if (out == nullptr) out = stderr;
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace g6::util
