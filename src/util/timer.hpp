#pragma once
/// \file timer.hpp
/// \brief Wall-clock stopwatch for host-side timing (the measured component
///        of the performance model; the GRAPE side is cycle-counted).

#include <chrono>

namespace g6::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace g6::util
