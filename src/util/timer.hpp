#pragma once
/// \file timer.hpp
/// \brief Wall-clock stopwatch for host-side timing (the measured component
///        of the performance model; the GRAPE side is cycle-counted).

#include <chrono>

namespace g6::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  /// Restart the stopwatch (also resets the lap mark).
  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since the last lap()/reset()/construction, and start a new lap.
  /// Splits a run into consecutive intervals without touching the total:
  /// seconds() still reports time since reset().
  double lap() {
    const auto now = Clock::now();
    const double dt = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return dt;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

/// RAII accumulator: adds the scope's wall time into a caller-owned sink on
/// destruction. Replaces the manual timer-start/read pairs around timed
/// sections:
///
///   double io_seconds = 0.0;
///   { ScopedTimer st(io_seconds); write_snapshot(...); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_(sink) {}
  ~ScopedTimer() { sink_ += timer_.seconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far in this scope (the sink is only updated at exit).
  double seconds() const { return timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace g6::util
