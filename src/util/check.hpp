#pragma once
/// \file check.hpp
/// \brief Invariant checking used across all modules.
///
/// G6_CHECK is always on (release builds included): the hardware simulator
/// and the scheduler rely on these to reject invalid configurations rather
/// than silently producing wrong physics. Violations throw g6::util::Error
/// so tests can assert on them.

#include <stdexcept>
#include <string>

namespace g6::util {

/// Exception type thrown on invariant violation or invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

}  // namespace g6::util

/// Check a precondition/invariant; throws g6::util::Error with location info.
#define G6_CHECK(cond, msg)                                                      \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::g6::util::raise(std::string(__FILE__) + ":" + std::to_string(__LINE__) + \
                        ": check failed: " #cond " — " + (msg));                 \
    }                                                                            \
  } while (0)
