#include "util/thread_pool.hpp"

#include <algorithm>

namespace g6::util {

ThreadPool::ThreadPool(std::size_t nthreads) {
  std::size_t n = nthreads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // n-1 workers; the calling thread contributes the n-th lane.
  jobs_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = jobs_[worker_index];
    }
    const bool had_work = job.fn != nullptr && job.begin < job.end;
    if (had_work) {
      (*job.fn)(job.begin, job.end);
      {
        std::lock_guard lk(mu_);
        --pending_;
      }
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t lanes = size();
  if (n == 0) return;
  if (lanes == 1 || n < kSerialGrain) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + lanes - 1) / lanes;
  std::size_t own_begin = 0, own_end = std::min(chunk, n);
  {
    std::lock_guard lk(mu_);
    for (std::size_t w = 0; w < jobs_.size(); ++w) {
      const std::size_t b = std::min(n, (w + 1) * chunk);
      const std::size_t e = std::min(n, (w + 2) * chunk);
      jobs_[w] = Job{&fn, b, e};
      if (b < e) ++pending_;
    }
    ++generation_;
  }
  cv_work_.notify_all();
  fn(own_begin, own_end);
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
}

}  // namespace g6::util
