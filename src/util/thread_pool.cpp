#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace g6::util {

namespace {
/// True while the current thread is executing a chunk of some parallel_for
/// (as a pool worker or as the caller's own share). Nested parallel_for
/// calls check this and degrade to serial execution: re-submitting work from
/// inside a region would clobber the pool's job slots and deadlock the
/// outer wait, and even on a second pool it would only oversubscribe cores.
thread_local bool tls_in_parallel_region = false;
}  // namespace

std::size_t concurrency() {
  static const std::size_t n = [] {
    if (const char* env = std::getenv("G6_NUM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }();
  return n;
}

ThreadPool& shared_pool() {
  static ThreadPool pool(concurrency());
  return pool;
}

ThreadPool::ThreadPool(std::size_t nthreads) {
  std::size_t n = nthreads;
  if (n == 0) n = concurrency();
  // n-1 workers; the calling thread contributes the n-th lane.
  jobs_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = jobs_[worker_index];
    }
    const bool had_work = job.fn != nullptr && job.begin < job.end;
    if (had_work) {
      std::exception_ptr err;
      tls_in_parallel_region = true;
      try {
        (*job.fn)(job.begin, job.end);
      } catch (...) {
        err = std::current_exception();
      }
      tls_in_parallel_region = false;
      {
        std::lock_guard lk(mu_);
        if (err && !first_error_) first_error_ = err;
        --pending_;
      }
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  const std::size_t lanes = size();
  if (n == 0) return;
  if (lanes == 1 || n < std::max<std::size_t>(1, grain) || tls_in_parallel_region) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + lanes - 1) / lanes;
  std::size_t own_begin = 0, own_end = std::min(chunk, n);
  {
    std::lock_guard lk(mu_);
    first_error_ = nullptr;
    for (std::size_t w = 0; w < jobs_.size(); ++w) {
      const std::size_t b = std::min(n, (w + 1) * chunk);
      const std::size_t e = std::min(n, (w + 2) * chunk);
      jobs_[w] = Job{&fn, b, e};
      if (b < e) ++pending_;
    }
    ++generation_;
  }
  cv_work_.notify_all();
  std::exception_ptr own_err;
  tls_in_parallel_region = true;
  try {
    fn(own_begin, own_end);
  } catch (...) {
    own_err = std::current_exception();
  }
  tls_in_parallel_region = false;
  std::exception_ptr err;
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    if (own_err && !first_error_) first_error_ = own_err;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace g6::util
