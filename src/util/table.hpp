#pragma once
/// \file table.hpp
/// \brief Aligned text-table printer — every bench binary reports its results
///        through this so the output reads like the paper's tables.

#include <cstddef>
#include <string>
#include <vector>

namespace g6::util {

/// Builds and renders a column-aligned text table.
///
///   Table t({"N", "Tflops", "efficiency"});
///   t.row({fmt(n), fmt(tf), fmt(eff)});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same number of cells as the header.
  void row(std::vector<std::string> cells);

  /// Number of data rows so far.
  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers for table cells.
std::string fmt(double v, int precision = 4);
std::string fmt_int(long long v);
std::string fmt_pct(double fraction, int precision = 1);
std::string fmt_sci(double v, int precision = 3);

}  // namespace g6::util
