#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace g6::util {

namespace {
// Density ramp from sparse to dense.
constexpr char kRamp[] = {'.', ':', '-', '=', '+', '*', '#', '%', '@'};
constexpr int kRampSize = static_cast<int>(sizeof kRamp);
}  // namespace

AsciiPlot::AsciiPlot(double xlo, double xhi, double ylo, double yhi,
                     std::size_t cols, std::size_t rows)
    : xlo_(xlo), xhi_(xhi), ylo_(ylo), yhi_(yhi), cols_(cols), rows_(rows),
      density_(cols * rows, 0), overlay_(cols * rows, '\0') {
  G6_CHECK(xhi > xlo && yhi > ylo, "plot range must be non-empty");
  G6_CHECK(cols > 0 && rows > 0, "plot canvas must be non-empty");
}

bool AsciiPlot::to_cell(double x, double y, std::size_t& c, std::size_t& r) const {
  const double fx = (x - xlo_) / (xhi_ - xlo_);
  const double fy = (y - ylo_) / (yhi_ - ylo_);
  if (fx < 0.0 || fx >= 1.0 || fy < 0.0 || fy >= 1.0) return false;
  c = std::min(static_cast<std::size_t>(fx * static_cast<double>(cols_)), cols_ - 1);
  // Row 0 is the top of the canvas -> largest y.
  r = rows_ - 1 -
      std::min(static_cast<std::size_t>(fy * static_cast<double>(rows_)), rows_ - 1);
  return true;
}

void AsciiPlot::point(double x, double y) {
  std::size_t c, r;
  if (to_cell(x, y, c, r)) ++density_[r * cols_ + c];
}

void AsciiPlot::marker(double x, double y, char glyph) {
  std::size_t c, r;
  if (to_cell(x, y, c, r)) overlay_[r * cols_ + c] = glyph;
}

std::string AsciiPlot::render(const std::string& title) const {
  int peak = 0;
  for (int d : density_) peak = std::max(peak, d);

  std::string out;
  if (!title.empty()) out += title + '\n';
  char buf[96];
  std::snprintf(buf, sizeof buf, "y: [%g, %g]  x: [%g, %g]\n", ylo_, yhi_, xlo_, xhi_);
  out += buf;

  out += '+';
  out.append(cols_, '-');
  out += "+\n";
  for (std::size_t r = 0; r < rows_; ++r) {
    out += '|';
    for (std::size_t c = 0; c < cols_; ++c) {
      const char ov = overlay_[r * cols_ + c];
      if (ov != '\0') {
        out += ov;
        continue;
      }
      const int d = density_[r * cols_ + c];
      if (d == 0 || peak == 0) {
        out += ' ';
      } else if (d == 1) {
        out += kRamp[0];  // lone points always render light
      } else {
        // Log shading: single points stay visible next to dense clumps.
        const double f = std::log(1.0 + d) / std::log(1.0 + peak);
        const int idx =
            std::min(kRampSize - 1, static_cast<int>(f * (kRampSize - 1) + 0.999));
        out += kRamp[idx];
      }
    }
    out += "|\n";
  }
  out += '+';
  out.append(cols_, '-');
  out += "+\n";
  return out;
}

}  // namespace g6::util
