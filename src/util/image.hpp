#pragma once
/// \file image.hpp
/// \brief Minimal grayscale raster + PGM writer, used to render the paper's
///        Figure 13 (particle distribution maps) as real image files with no
///        graphics dependency.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace g6::util {

/// A float-valued grayscale raster with accumulate-then-tone-map semantics.
class GrayImage {
 public:
  GrayImage(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Add \p weight at pixel (x, y); (0,0) is the top-left corner.
  void deposit(std::size_t x, std::size_t y, double weight = 1.0);

  /// Pixel accessor (accumulated weight).
  double at(std::size_t x, std::size_t y) const;

  /// Map a data-space point into the raster covering [xlo,xhi] x [ylo,yhi]
  /// (y up in data space) and deposit there; out-of-range points are dropped.
  void splat(double x, double y, double xlo, double xhi, double ylo, double yhi,
             double weight = 1.0);

  /// Write an 8-bit binary PGM ("P5"). Intensities are tone-mapped with
  /// log(1 + w / peak-scaled) so single particles stay visible; \p invert
  /// renders dense regions dark on white (print style, like the paper).
  void write_pgm(std::ostream& os, bool invert = true) const;
  void write_pgm_file(const std::string& path, bool invert = true) const;

 private:
  std::size_t width_, height_;
  std::vector<double> data_;
};

}  // namespace g6::util
