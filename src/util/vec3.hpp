#pragma once
/// \file vec3.hpp
/// \brief Minimal double-precision 3-vector used throughout the N-body engine.
///
/// Deliberately a plain aggregate: the hot loops (force kernels, predictors)
/// rely on the compiler seeing through every operation, and the GRAPE-6
/// hardware model needs to take the components apart anyway.

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace g6::util {

/// A 3-component Cartesian vector of doubles.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return (*this) *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

/// Dot product.
constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product.
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm.
constexpr double norm2(const Vec3& a) { return dot(a, a); }

/// Euclidean norm.
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

/// Unit vector in the direction of \p a. Undefined for the zero vector.
inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

/// Component-wise minimum / maximum, used for bounding boxes in the tree code.
constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace g6::util
