#pragma once
/// \file ascii_plot.hpp
/// \brief Terminal scatter plots, used to render the reproduction of the
///        paper's Figure 13 (planetesimal distribution snapshots) in bench
///        output without a graphics dependency.

#include <string>
#include <vector>

namespace g6::util {

/// A character-cell scatter plot with density shading.
class AsciiPlot {
 public:
  /// \p cols x \p rows character canvas covering [xlo,xhi] x [ylo,yhi].
  AsciiPlot(double xlo, double xhi, double ylo, double yhi,
            std::size_t cols = 72, std::size_t rows = 24);

  /// Register one point; density per cell selects the glyph.
  void point(double x, double y);

  /// Overlay a labelled marker (e.g. a protoplanet) drawn above the density.
  void marker(double x, double y, char glyph);

  /// Render with a frame and axis annotations.
  std::string render(const std::string& title = {}) const;

 private:
  bool to_cell(double x, double y, std::size_t& c, std::size_t& r) const;

  double xlo_, xhi_, ylo_, yhi_;
  std::size_t cols_, rows_;
  std::vector<int> density_;
  std::vector<char> overlay_;
};

}  // namespace g6::util
