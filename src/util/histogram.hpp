#pragma once
/// \file histogram.hpp
/// \brief 1-D histograms (linear or logarithmic bins) used by the analysis
///        module and by the block-timestep statistics benches.

#include <cstddef>
#include <string>
#include <vector>

namespace g6::util {

/// Binning rule for Histogram.
enum class BinScale { kLinear, kLog };

/// A fixed-range 1-D histogram with weight accumulation.
class Histogram {
 public:
  /// Construct with \p nbins bins covering [lo, hi). For BinScale::kLog the
  /// bounds must be positive.
  Histogram(double lo, double hi, std::size_t nbins, BinScale scale = BinScale::kLinear);

  /// Add a sample with the given weight. Out-of-range samples are counted in
  /// underflow/overflow, not in any bin.
  void add(double x, double weight = 1.0);

  /// Number of bins.
  std::size_t size() const { return counts_.size(); }

  /// Accumulated weight in bin \p i.
  double count(std::size_t i) const { return counts_[i]; }

  /// Lower/upper edge of bin \p i.
  double edge_lo(std::size_t i) const;
  double edge_hi(std::size_t i) const { return edge_lo(i + 1); }

  /// Geometric/arithmetic centre of bin \p i (matching the scale).
  double center(std::size_t i) const;

  /// Total in-range weight.
  double total() const { return total_; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// All bin weights.
  const std::vector<double>& counts() const { return counts_; }

  /// Render as an ASCII bar chart (one line per bin), for bench output.
  std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  BinScale scale_;
  double log_lo_ = 0.0, log_hi_ = 0.0;
  std::vector<double> counts_;
  double total_ = 0.0, underflow_ = 0.0, overflow_ = 0.0;
};

}  // namespace g6::util
