#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace g6::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  G6_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::row(std::vector<std::string> cells) {
  G6_CHECK(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += "  ";
      // Right-align everything; numbers dominate and headers follow suit.
      out.append(width[c] - r[c].size(), ' ');
      out += r[c];
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "  ";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

}  // namespace g6::util
