#pragma once
/// \file crc_stream.hpp
/// \brief CRC-trailed binary stream framing shared by the durable on-disk
///        formats (binary snapshots, G6CKPT1 checkpoints).
///
/// Writers fold every byte after the format magic into a running CRC-32 and
/// append the finalised value as a little trailer; readers recompute it and
/// raise g6::util::Error on any truncation or corruption. Streaming, so a
/// production-sized payload is never buffered.

#include <istream>
#include <ostream>

#include "util/check.hpp"
#include "util/crc.hpp"

namespace g6::util {

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Streaming writer that folds every put() into a CRC, so the trailer covers
/// header and records without buffering the payload.
struct CrcWriter {
  std::ostream& os;
  std::uint32_t crc = crc32_init();

  template <typename T>
  void put(const T& value) {
    write_pod(os, value);
    crc = crc32_update(crc, &value, sizeof(T));
  }

  /// Bulk write (opaque blobs, e.g. backend checkpoint state): one stream
  /// write and one CRC fold instead of a per-byte loop.
  void put_bytes(const void* p, std::size_t n) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    crc = crc32_update(crc, p, n);
  }

  /// Append the finalised CRC (not itself CRC-covered).
  void put_trailer() { write_pod(os, crc32_final(crc)); }
};

/// Streaming reader mirroring CrcWriter; every read is checked so a
/// truncated stream raises instead of returning zero-filled garbage.
struct CrcReader {
  std::istream& is;
  std::uint32_t crc = crc32_init();
  const char* what = "stream";  ///< format name used in error messages

  template <typename T>
  T get() {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    G6_CHECK(is.good(), std::string("truncated ") + what);
    crc = crc32_update(crc, &value, sizeof(T));
    return value;
  }

  /// Bulk read mirroring CrcWriter::put_bytes.
  void get_bytes(void* p, std::size_t n) {
    is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    G6_CHECK(is.good(), std::string("truncated ") + what);
    crc = crc32_update(crc, p, n);
  }

  /// Read the trailer and compare against the accumulated CRC.
  void check_trailer() {
    std::uint32_t trailer = 0;
    is.read(reinterpret_cast<char*>(&trailer), sizeof trailer);
    G6_CHECK(is.good(), std::string("truncated ") + what + " trailer");
    G6_CHECK(crc32_final(crc) == trailer,
             std::string(what) + " CRC mismatch: file is corrupted");
  }
};

}  // namespace g6::util
