#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation and the samplers the
///        planetesimal disk generator needs.
///
/// Everything in the reproduction is seeded: the same seed produces the same
/// initial conditions, the same block schedules and the same benchmark rows on
/// every run. We use xoshiro256** (public-domain algorithm by Blackman &
/// Vigna) rather than std::mt19937 so that the state is 4 words and results
/// are identical across standard libraries.

#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/check.hpp"

namespace g6::util {

/// Serialisable snapshot of an Rng — the four xoshiro256** state words plus
/// the Marsaglia spare slot. Plain data so checkpoints can store it and a
/// resumed run continues the exact deviate sequence (docs/CHECKPOINTING.md).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double spare = 0.0;
  bool have_spare = false;
};

/// splitmix64 — used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9c0ffee123456789ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    G6_CHECK(n > 0, "below(0) is meaningless");
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Rayleigh deviate with scale (mode) sigma — the standard distribution for
  /// planetesimal eccentricities and inclinations.
  double rayleigh(double sigma) {
    double u;
    do { u = uniform(); } while (u == 0.0);
    return sigma * std::sqrt(-2.0 * std::log(u));
  }

  /// Sample from a truncated power-law PDF p(x) ∝ x^alpha on [lo, hi]
  /// (alpha != -1) by inverse-transform sampling. This is the paper's
  /// planetesimal mass function with alpha = -2.5.
  double power_law(double alpha, double lo, double hi) {
    G6_CHECK(lo > 0.0 && hi > lo, "power_law needs 0 < lo < hi");
    const double u = uniform();
    if (alpha == -1.0) return lo * std::pow(hi / lo, u);
    const double ap1 = alpha + 1.0;
    const double l = std::pow(lo, ap1);
    const double h = std::pow(hi, ap1);
    return std::pow(l + u * (h - l), 1.0 / ap1);
  }

  /// Uniform angle in [0, 2*pi).
  double angle() { return uniform(0.0, 2.0 * std::numbers::pi); }

  /// Capture the full generator state (checkpointing).
  RngState save() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.spare = spare_;
    st.have_spare = have_spare_;
    return st;
  }

  /// Restore a state captured with save(); the deviate sequence continues
  /// exactly where the saved generator left off.
  void restore(const RngState& st) {
    G6_CHECK(st.s[0] != 0 || st.s[1] != 0 || st.s[2] != 0 || st.s[3] != 0,
             "all-zero xoshiro256** state is invalid");
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    spare_ = st.spare;
    have_spare_ = st.have_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace g6::util
