#pragma once
/// \file thread_pool.hpp
/// \brief A small work-sharing thread pool with a blocked parallel_for.
///
/// The host side of the reproduction is explicitly parallel (the paper's 16
/// PCs each integrate a slice of the active block). Within one process we use
/// a classic pool + static block decomposition — the same structure an OpenMP
/// `parallel for schedule(static)` would produce, but with no runtime
/// dependency and with deterministic partitioning.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace g6::util {

/// Fixed-size thread pool. Threads are created once and reused; parallel_for
/// blocks the caller until every range chunk has completed.
class ThreadPool {
 public:
  /// \p nthreads 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // workers + caller

  /// Ranges of fewer than this many elements run entirely on the caller's
  /// thread: waking the workers costs two mutex acquisitions plus
  /// condition-variable round-trips (~microseconds), which dwarfs the work of
  /// a tiny i-list in the block-step scheduler, where most blocks contain a
  /// handful of particles.
  static constexpr std::size_t kSerialGrain = 64;

  /// Run fn(begin, end) over [0, n) split into size() contiguous chunks.
  /// The caller's thread executes one chunk itself. Ranges shorter than
  /// kSerialGrain are executed as a single fn(0, n) call on the caller.
  /// The partition depends only on n and size() — deterministic across calls.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0, end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Job> jobs_;        // one slot per worker
  std::size_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace g6::util
