#pragma once
/// \file thread_pool.hpp
/// \brief A small work-sharing thread pool with a blocked parallel_for.
///
/// The host side of the reproduction is explicitly parallel (the paper's 16
/// PCs each integrate a slice of the active block), and so is the hardware:
/// 4 boards per host and 16 hosts all run concurrently. Within one process we
/// use a classic pool + static block decomposition — the same structure an
/// OpenMP `parallel for schedule(static)` would produce, but with no runtime
/// dependency and with deterministic partitioning.
///
/// One process-wide pool is shared by every layer (integrator, CPU force
/// kernels, GRAPE machine emulation, cluster host simulation): see
/// shared_pool() and the G6_NUM_THREADS knob. Nested parallel_for calls from
/// inside a parallel region fall back to serial execution on the calling
/// thread, so composing parallel layers is always safe (no deadlock, no
/// oversubscription).

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace g6::util {

/// Worker-thread count the process should use: the G6_NUM_THREADS
/// environment variable when set to a positive integer, otherwise
/// hardware_concurrency (at least 1). Parsed once on first call.
std::size_t concurrency();

/// Fixed-size thread pool. Threads are created once and reused; parallel_for
/// blocks the caller until every range chunk has completed.
class ThreadPool {
 public:
  /// \p nthreads 0 means concurrency() (G6_NUM_THREADS / hardware).
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // workers + caller

  /// Ranges of fewer than this many elements run entirely on the caller's
  /// thread: waking the workers costs two mutex acquisitions plus
  /// condition-variable round-trips (~microseconds), which dwarfs the work of
  /// a tiny i-list in the block-step scheduler, where most blocks contain a
  /// handful of particles.
  static constexpr std::size_t kSerialGrain = 64;

  /// Run fn(begin, end) over [0, n) split into size() contiguous chunks.
  /// The caller's thread executes one chunk itself. Ranges shorter than
  /// \p grain are executed as a single fn(0, n) call on the caller — pass
  /// grain 1 for coarse tasks (per-board, per-host) where even n = 2 is
  /// worth distributing. The partition depends only on n and size() —
  /// deterministic across calls.
  ///
  /// Re-entrancy: a call made from inside a parallel region (a pool worker,
  /// or the caller's own chunk of an enclosing parallel_for) executes
  /// fn(0, n) serially on the calling thread. An exception thrown by any
  /// chunk is rethrown on the calling thread after all chunks finished
  /// (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = kSerialGrain);

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0, end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Job> jobs_;        // one slot per worker
  std::size_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // first chunk failure of the current call
};

/// The process-wide pool, created on first use with concurrency() lanes.
/// Every component that is handed a null pool uses this one, so the
/// integrator, the CPU kernels, the GRAPE machine and the cluster simulation
/// all share the same worker threads instead of each creating their own.
ThreadPool& shared_pool();

}  // namespace g6::util
