#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.hpp"

namespace g6::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_thread_capacity(std::size_t events) {
  capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_ns() const {
  std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_ns();
  if (epoch == 0) {
    // First caller pins the epoch; ties resolved by CAS so all threads agree.
    std::uint64_t expected = 0;
    const_cast<std::atomic<std::uint64_t>&>(epoch_ns_)
        .compare_exchange_strong(expected, now, std::memory_order_relaxed);
    epoch = epoch_ns_.load(std::memory_order_relaxed);
  }
  return now >= epoch ? now - epoch : 0;
}

TraceRecorder::ThreadBuf* TraceRecorder::thread_buf() {
  struct Tls {
    TraceRecorder* owner = nullptr;
    ThreadBuf* buf = nullptr;
  };
  static thread_local Tls tls;
  if (tls.owner == this && tls.buf != nullptr) return tls.buf;

  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->ring.resize(capacity_.load(std::memory_order_relaxed));
  buf->tid = static_cast<std::uint32_t>(threads_.size());
  threads_.push_back(std::move(buf));
  tls.owner = this;
  tls.buf = threads_.back().get();
  return tls.buf;
}

void TraceRecorder::record(const char* name, const char* cat,
                           std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuf* buf = thread_buf();
  std::lock_guard<std::mutex> lock(buf->mu);  // uncontended except at export
  TraceEvent& slot = buf->ring[buf->head];
  if (buf->count == buf->ring.size())
    dropped_.fetch_add(1, std::memory_order_relaxed);
  else
    ++buf->count;
  slot = TraceEvent{name, cat, start_ns, dur_ns, buf->tid};
  buf->head = (buf->head + 1) % buf->ring.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : threads_) {
    std::lock_guard<std::mutex> blk(buf->mu);
    // Oldest retained event sits at head when the ring has wrapped.
    const std::size_t n = buf->count;
    const std::size_t cap = buf->ring.size();
    const std::size_t first = (buf->head + cap - n) % cap;
    for (std::size_t k = 0; k < n; ++k) out.push_back(buf->ring[(first + k) % cap]);
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : threads_) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->head = 0;
    buf->count = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name ? e.name : "?") + "\"";
    out += ",\"cat\":\"" + json_escape(e.cat ? e.cat : "g6") + "\"";
    out += ",\"ph\":\"X\",\"pid\":1";
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + json_number(static_cast<double>(e.start_ns) / 1e3);
    out += ",\"dur\":" + json_number(static_cast<double>(e.dur_ns) / 1e3);
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace g6::obs
