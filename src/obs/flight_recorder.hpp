#pragma once
/// \file flight_recorder.hpp
/// \brief FlightRecorder — fixed-size in-memory ring of the last K step
///        records, fault/recovery events, and sampler frames, dumped
///        atomically to `flight_<ts>.json` when a run dies.
///
/// Post-mortems of SIGKILLed or faulted campaigns should not depend on
/// stdout scrollback: the recorder keeps a bounded window of recent history
/// in memory and writes it out on
///   * a catchable fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL/
///     SIGTERM — install_crash_handlers(), which re-raises after dumping);
///   * an unrecovered fault or checkpoint-resume failure (explicit dump());
///   * every sampler frame, throttled (autosave) — SIGKILL cannot be
///     caught, so the *autosaved* dump, atomically rewritten in place
///     (tmp + rename), is what survives a kill -9.
///
/// All record_*()/note() calls are mutex-guarded appends to bounded rings —
/// cheap, allocation-light, and safe from any thread. The recorder only
/// observes; it never mutates simulation state (determinism contract).
/// Compiles to no-ops under G6_OBS_DISABLED.
///
/// Dump format (one JSON document):
///   {"reason":..,"wall_seconds":..,"start_ts":..,
///    "steps":[{"t":..,"n_act":..,"seconds":..,"wall":..},...],
///    "events":[{"wall":..,"category":..,"message":..},...],
///    "frames":[<SeriesFrame::to_json() objects>]}

#include <cstdint>
#include <memory>
#include <string>

namespace g6::obs {

struct FlightConfig {
  std::string dir = ".";         ///< where flight_<ts>.json lands
  std::size_t max_steps = 256;   ///< ring capacity: step records
  std::size_t max_events = 256;  ///< ring capacity: fault/recovery notes
  std::size_t max_frames = 32;   ///< ring capacity: sampler frames
  double autosave_min_interval = 2.0;  ///< seconds between autosaves
};

#ifndef G6_OBS_DISABLED

class FlightRecorder {
 public:
  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder. Publish points (fault injector, transports,
  /// RunManager) all talk to this instance; it is inert until enable().
  static FlightRecorder& global();

  /// Arm the recorder. Until this is called every record/note/dump is a
  /// cheap early-out, so library publish points cost one relaxed load in
  /// unmonitored runs.
  void enable(FlightConfig cfg);
  bool enabled() const;

  /// Record one completed blockstep (driver thread, serial point).
  void record_step(double t_sys, std::size_t n_act, double step_seconds);

  /// Record a noteworthy event — fault fired, recovery action, resume
  /// failure. \p category is a short tag ("fault", "recovery", "resume",
  /// "campaign"); \p message is free-form.
  void note(const std::string& category, const std::string& message);

  /// Record a sampler frame (already serialized by SeriesFrame::to_json()).
  /// Also triggers a throttled autosave so a later SIGKILL still leaves a
  /// recent dump on disk.
  void record_frame_json(const std::string& frame_json);

  /// Write `flight_<start_ts>.json` into cfg.dir atomically (tmp + rename);
  /// repeated dumps rewrite the same file. Returns the path, or "" when
  /// disabled / on I/O failure.
  std::string dump(const std::string& reason);

  /// Install handlers for catchable fatal signals that dump() then re-raise
  /// with default disposition. Idempotent; affects the whole process.
  static void install_crash_handlers();

  /// Drop all retained history (tests; between campaign repeats).
  void clear();

  std::size_t steps_recorded() const;
  std::size_t events_recorded() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

class FlightRecorder {
 public:
  static FlightRecorder& global() {
    static FlightRecorder r;
    return r;
  }
  void enable(FlightConfig) {}
  bool enabled() const { return false; }
  void record_step(double, std::size_t, double) {}
  void note(const std::string&, const std::string&) {}
  void record_frame_json(const std::string&) {}
  std::string dump(const std::string&) { return {}; }
  static void install_crash_handlers() {}
  void clear() {}
  std::size_t steps_recorded() const { return 0; }
  std::size_t events_recorded() const { return 0; }
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
