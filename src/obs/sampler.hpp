#pragma once
/// \file sampler.hpp
/// \brief TimeSeriesSampler — periodic snapshots of a MetricsRegistry into a
///        bounded in-memory ring of frames, with per-metric deltas and rates.
///
/// A sampler owns one background thread that calls `registry.snapshot()`
/// every `interval_seconds` and reduces the result to a SeriesFrame: for
/// every metric the current value, the delta since the previous frame, and
/// the rate (delta / elapsed); histograms additionally carry the log-bucket
/// p50/p90/p99. Metric names are interned once into a table so frames store
/// 4-byte ids, keeping a multi-hour ring small (a frame is ~56 bytes per
/// metric). The ring is bounded: the oldest frame is dropped when
/// `max_frames` is reached.
///
/// The sampler only *reads* registry state (snapshot() + relaxed atomic
/// loads), so it never perturbs simulation order — the determinism contract
/// of docs/OBSERVABILITY.md. Snapshots are serialized registry-wide (see
/// MetricsRegistry::snapshot), so a sampler frame is coherent with respect
/// to provider publishes even while writer threads are hot.
///
/// Exports: `to_json()` (the monitor server's `/series` payload),
/// `write_jsonl()` (one header line + one frame per line, the CI artifact
/// format), and `write_binary()` (the compact `G6SERIES1` ring dump).
/// Compiles to no-ops under G6_OBS_DISABLED.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace g6::obs {

struct SamplerConfig {
  double interval_seconds = 1.0;  ///< cadence of the background thread
  std::size_t max_frames = 600;   ///< ring capacity (oldest dropped)
};

/// One metric inside one frame.
struct SeriesSample {
  std::uint32_t name_id = 0;  ///< index into TimeSeriesSampler::names()
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter/gauge value; histogram sample count
  double delta = 0.0;  ///< value - previous frame's value (0 in first frame)
  double rate = 0.0;   ///< delta / dt (0 in first frame)
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< histograms only
};

/// One sampler tick.
struct SeriesFrame {
  std::uint64_t seq = 0;      ///< monotone frame number (never resets)
  double wall_seconds = 0.0;  ///< seconds since the sampler was constructed
  double dt = 0.0;            ///< seconds since the previous frame (0 first)
  std::vector<SeriesSample> samples;

  /// One JSON object (a JSONL line without the trailing newline):
  /// {"seq":..,"wall":..,"dt":..,"m":[[id,kind,value,delta,rate,p50,p90,p99],..]}
  std::string to_json() const;
};

#ifndef G6_OBS_DISABLED

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricsRegistry& registry);
  ~TimeSeriesSampler();  ///< stops the thread if running
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Start the background thread. No-op if already running.
  void start(SamplerConfig cfg);
  /// Stop and join the background thread; retained frames stay readable.
  void stop();
  bool running() const;

  /// Take one frame synchronously on the calling thread (the background
  /// thread uses this too). Safe to call without start() — tests and
  /// drive-by sampling at known-coherent points use it directly.
  void sample_now();

  /// Interned metric-name table; `SeriesSample::name_id` indexes it. Grows
  /// as metrics appear; existing ids are never reassigned.
  std::vector<std::string> names() const;

  /// Copy of the retained ring, oldest first.
  std::vector<SeriesFrame> frames() const;

  /// Total frames taken (including frames already pushed out of the ring).
  std::uint64_t frames_taken() const;

  /// Hook invoked (on the sampling thread) after every frame; the monitor
  /// uses it to feed the flight recorder. Set before start().
  std::function<void(const SeriesFrame&)> on_frame;

  /// {"interval":..,"names":[..],"frames":[..]} — the `/series` payload.
  std::string to_json() const;

  /// JSONL: first line {"series":"g6","interval":..,"names":[..]}, then one
  /// frame object per line. False on I/O failure.
  bool write_jsonl(const std::string& path) const;

  /// Compact binary ring: magic "G6SERIES1", little-endian name table and
  /// fixed-width frame records (see docs/OBSERVABILITY.md for the layout).
  bool write_binary(const std::string& path) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

/// Stripped build: every member is an inline no-op, so monitored call sites
/// compile unchanged and carry zero runtime cost.
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricsRegistry&) {}
  void start(SamplerConfig) {}
  void stop() {}
  bool running() const { return false; }
  void sample_now() {}
  std::vector<std::string> names() const { return {}; }
  std::vector<SeriesFrame> frames() const { return {}; }
  std::uint64_t frames_taken() const { return 0; }
  std::function<void(const SeriesFrame&)> on_frame;
  std::string to_json() const { return "{}"; }
  bool write_jsonl(const std::string&) const { return false; }
  bool write_binary(const std::string&) const { return false; }
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
