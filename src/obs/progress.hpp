#pragma once
/// \file progress.hpp
/// \brief ProgressTracker — live per-job progress, throughput, ETA and
///        measured-vs-model drift for the monitor server's `/progress`.
///
/// A tracker holds one JobTicket per run (RunManager registers one per
/// checkpointed run; CampaignRunner one per job). The *driver thread* of a
/// run updates its ticket at serial points (after each blockstep / segment);
/// every field lives in an atomic cell so the monitor thread can read a
/// consistent-enough view without locks and without perturbing the run —
/// the same only-reads determinism contract as the rest of the obs layer.
///
/// ETA combines two estimators:
///   * measured:  remaining simulation time / recent simulation-time rate
///                (EWMA of d(t_sys)/d(wall), so it adapts to block-size
///                drift over a long run);
///   * model:     remaining blocks x `model_seconds_per_block`, where the
///                caller supplies the analytic PerfModel prediction
///                (obs cannot depend on cluster — RunManager computes it).
///
/// `drift` = measured seconds-per-block / model seconds-per-block; 1.0 means
/// the run tracks the analytic model, >1 it is slower. `capacity_fraction`
/// is the fault subsystem's degraded-capacity figure (1.0 = healthy).
///
/// Compiles to no-ops under G6_OBS_DISABLED.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace g6::obs {

enum class JobState { kPending, kRunning, kDone, kFailed, kPreempted };

const char* job_state_name(JobState s);

/// Plain-value snapshot of one job; what `/progress` serializes.
struct JobProgress {
  std::string name;
  JobState state = JobState::kPending;
  double t_start = 0.0;      ///< simulation time at job start
  double t_sys = 0.0;        ///< current simulation time
  double t_end = 0.0;        ///< target simulation time
  double fraction = 0.0;     ///< (t_sys - t_start) / (t_end - t_start), 0..1
  std::uint64_t blocks = 0;  ///< blocksteps completed
  double wall_seconds = 0.0;          ///< wall time spent in the run loop
  double blocks_per_second = 0.0;     ///< measured blockstep throughput
  double sim_rate = 0.0;              ///< EWMA of d(t_sys)/d(wall)
  double eta_seconds = -1.0;          ///< measured ETA; <0 = unknown
  double model_eta_seconds = -1.0;    ///< PerfModel ETA; <0 = no model
  double model_seconds_per_block = 0.0;  ///< 0 = no model supplied
  double drift = 0.0;                 ///< measured/model sec-per-block; 0 = n/a
  double capacity_fraction = 1.0;     ///< healthy capacity (fault subsystem)
};

#ifndef G6_OBS_DISABLED

class ProgressTracker;

/// Handle owned by a run's driver thread; all updates are relaxed atomic
/// stores, all reads (from the monitor) relaxed loads. Tickets stay valid
/// for the tracker's lifetime (jobs are never removed, only finished).
class JobTicket {
 public:
  struct Slot;  ///< opaque; defined in progress.cpp

  JobTicket() = default;  ///< invalid handle; every call is a no-op

  void update(double t_sys, std::uint64_t blocks, double wall_seconds);
  void set_model_seconds_per_block(double s);
  void set_capacity_fraction(double f);
  void set_state(JobState s);
  void finish(JobState s) { set_state(s); }
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class ProgressTracker;
  explicit JobTicket(Slot* slot) : slot_(slot) {}
  Slot* slot_ = nullptr;
};

class ProgressTracker {
 public:
  ProgressTracker();
  ~ProgressTracker();
  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;

  static ProgressTracker& global();

  /// Register a job. Re-using a name returns a fresh ticket onto the same
  /// slot (a resumed run continues its predecessor's row).
  JobTicket add_job(const std::string& name, double t_start, double t_end);

  std::vector<JobProgress> snapshot() const;

  /// {"jobs":[...],"done":N,"running":N,"failed":N} — `/progress` payload.
  std::string to_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

class JobTicket {
 public:
  JobTicket() = default;
  void update(double, std::uint64_t, double) {}
  void set_model_seconds_per_block(double) {}
  void set_capacity_fraction(double) {}
  void set_state(JobState) {}
  void finish(JobState) {}
  bool valid() const { return false; }
};

class ProgressTracker {
 public:
  static ProgressTracker& global() {
    static ProgressTracker t;
    return t;
  }
  JobTicket add_job(const std::string&, double, double) { return {}; }
  std::vector<JobProgress> snapshot() const { return {}; }
  std::string to_json() const { return "{}"; }
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
