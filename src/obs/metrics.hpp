#pragma once
/// \file metrics.hpp
/// \brief Lock-cheap metrics registry: named counters, gauges and log-scale
///        histograms with typed handles.
///
/// Handle creation (by name) takes the registry mutex once; every subsequent
/// add()/set() through the handle is a relaxed atomic on a stable cell, so
/// hot paths pay one atomic op and no lock. Snapshots pull every registered
/// metric — plus anything published by registered providers — into a plain
/// value struct that renders to JSON or a util::Table.
///
/// Naming convention: `g6.<subsystem>.<name>` (see docs/OBSERVABILITY.md),
/// e.g. `g6.hw.interactions`, `g6.nbody.blocks`, `g6.cluster.bytes_sent`.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g6::obs {

class MetricsRegistry;

/// Monotonic (or externally-accumulated) integer metric.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t v = 1) {
    if (cell_ != nullptr) cell_->fetch_add(v, std::memory_order_relaxed);
  }
  /// Overwrite with an absolute value — for publishing an externally
  /// accumulated count (e.g. a stats struct) into the registry.
  void set(std::uint64_t v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Point-in-time floating-point metric.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(double v) {
    if (cell_ != nullptr) cell_->fetch_add(v, std::memory_order_relaxed);
  }
  double value() const {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-layout log-scale histogram: geometric buckets spanning
/// [1e-12, 1e12) at kBucketsPerDecade resolution, plus under/overflow.
/// add() is lock-free (one relaxed fetch_add on the bucket and two on the
/// aggregates), so it is safe in hot loops and across threads.
struct LogHistogramState {
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecadeLo = -12;  ///< first bucket edge: 1e-12
  static constexpr int kDecadeHi = 12;   ///< last bucket edge: 1e12
  static constexpr int kBuckets = (kDecadeHi - kDecadeLo) * kBucketsPerDecade;

  std::atomic<std::uint64_t> buckets[kBuckets] = {};
  std::atomic<std::uint64_t> underflow{0};  ///< x <= 0 or x < 1e-12
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};

  static int bucket_index(double x);
  /// Geometric centre of bucket \p i.
  static double bucket_center(int i);
  static double bucket_lo(int i);
};

/// Typed handle to a log-scale histogram.
class LogHistogram {
 public:
  LogHistogram() = default;
  void add(double x);
  std::uint64_t count() const {
    return state_ == nullptr ? 0 : state_->count.load(std::memory_order_relaxed);
  }
  double sum() const {
    return state_ == nullptr ? 0.0 : state_->sum.load(std::memory_order_relaxed);
  }
  /// Value below which \p fraction (0..1) of the samples fall, resolved to
  /// bucket granularity (returns the geometric centre of the bucket that
  /// crosses the rank). Returns 0 with no samples.
  double percentile(double fraction) const;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit LogHistogram(LogHistogramState* state) : state_(state) {}
  LogHistogramState* state_ = nullptr;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k);

/// Snapshot of one histogram (non-empty buckets only).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  std::uint64_t underflow = 0, overflow = 0;
  /// (bucket geometric centre, sample count) for every non-empty bucket.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Snapshot of one metric.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter (exact up to 2^53) or gauge value
  HistogramSnapshot hist;
};

/// A full registry snapshot; renders to JSON or an aligned table.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(std::string_view name) const;
  std::string to_json() const;
  std::string to_table() const;
};

/// The registry. Instantiable (tests use private registries); production
/// code shares global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Get-or-create handles. Repeated calls with the same name return handles
  /// onto the same cell. A name is permanently bound to its first kind;
  /// re-requesting it as a different kind throws.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  LogHistogram histogram(std::string_view name);

  /// Register a callback run at the start of every snapshot(); providers
  /// publish externally-owned counters (IntegratorStats, HwCounters,
  /// transport stats, ...) into the registry so one snapshot captures all
  /// subsystems. Returns an id usable with remove_provider.
  std::size_t add_provider(std::function<void(MetricsRegistry&)> fn);
  void remove_provider(std::size_t id);

  /// Read every metric (after running the providers). Snapshots are
  /// serialized registry-wide: `snapshot_mu_` is held from before the
  /// providers run until every node has been read, so two concurrent
  /// snapshots can never interleave one provider's multi-metric publish
  /// (e.g. a stats struct publishing paired counters). Writer threads are
  /// never blocked — handle add()/set() stay lock-free relaxed atomics.
  MetricsSnapshot snapshot();

  /// Number of registered metrics.
  std::size_t size() const;

 private:
  struct Node {
    std::string name;
    MetricKind kind;
    std::atomic<std::uint64_t> counter{0};
    std::atomic<double> gauge{0.0};
    std::unique_ptr<LogHistogramState> hist;
  };

  Node& node(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;           ///< guards nodes_/index_/providers_
  mutable std::mutex snapshot_mu_;  ///< serializes whole snapshot() calls
  std::deque<Node> nodes_;                   ///< deque: stable cell addresses
  std::vector<std::pair<std::size_t, std::function<void(MetricsRegistry&)>>> providers_;
  std::size_t next_provider_id_ = 0;
};

/// Write a snapshot (plus optional extra top-level JSON members, already
/// serialized) to \p path as a JSON document:
///   {"metrics": [...], <extras>}
/// Returns false when the file cannot be written.
bool write_metrics_json(const std::string& path, const MetricsSnapshot& snap,
                        const std::vector<std::pair<std::string, std::string>>&
                            extra_members = {});

}  // namespace g6::obs
