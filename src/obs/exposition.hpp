#pragma once
/// \file exposition.hpp
/// \brief Prometheus text exposition (format 0.0.4) of a MetricsSnapshot.
///
/// The monitor server's `/metrics` endpoint renders the registry through
/// this module so any Prometheus-compatible scraper (or the checked-in
/// `scripts/check_exposition.py` grammar validator) can consume a live run.
/// Mapping:
///
///   Counter       -> `# TYPE <name> counter`  + one sample line
///   Gauge         -> `# TYPE <name> gauge`    + one sample line
///   LogHistogram  -> `# TYPE <name> summary`  + quantile lines (0.5/0.9/0.99)
///                    + `<name>_sum` and `<name>_count`
///
/// Metric names are sanitized to the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): the registry's dots become underscores,
/// anything else illegal becomes `_` too (`g6.run.t_sys` -> `g6_run_t_sys`).

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace g6::obs {

/// Sanitize one registry metric name to the Prometheus name grammar.
std::string prometheus_name(std::string_view name);

/// Format one sample value the way the exposition format expects
/// (`NaN` / `+Inf` / `-Inf` spelled out, shortest round-trippable otherwise).
std::string prometheus_value(double v);

/// Render a whole snapshot in the text exposition format.
std::string to_prometheus(const MetricsSnapshot& snap);

}  // namespace g6::obs
