#include "obs/monitor_server.hpp"

#ifndef G6_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace g6::obs {

struct MonitorServer::Impl {
  std::map<std::string, std::function<HttpResponse()>> routes;
  int listen_fd = -1;
  int bound_port = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};
};

MonitorServer::MonitorServer() : impl_(std::make_unique<Impl>()) {}

MonitorServer::~MonitorServer() { stop(); }

void MonitorServer::route(const std::string& path,
                          std::function<HttpResponse()> fn) {
  impl_->routes[path] = std::move(fn);
}

HttpResponse MonitorServer::handle(const std::string& path) const {
  // Exact match on the path with any query string stripped.
  std::string key = path;
  if (const auto q = key.find('?'); q != std::string::npos) key.resize(q);
  const auto it = impl_->routes.find(key);
  if (it == impl_->routes.end()) return {404, "text/plain", "not found\n"};
  return it->second();
}

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
  }
  return "Error";
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; response is best-effort
    off += static_cast<std::size_t>(n);
  }
}

/// Read until the end of the request headers (or 4 KiB / EOF), return the
/// request line. Connections are short-lived, so a blocking read with a
/// receive timeout is fine.
std::string read_request_line(int fd) {
  std::string buf;
  char chunk[512];
  while (buf.size() < 4096 && buf.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  const auto eol = buf.find("\r\n");
  return eol == std::string::npos ? buf : buf.substr(0, eol);
}

}  // namespace

bool MonitorServer::start(int port) {
  if (impl_->running.load()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    impl_->bound_port = ntohs(addr.sin_port);

  impl_->listen_fd = fd;
  impl_->stop.store(false);
  impl_->running.store(true);
  impl_->thread = std::thread([this] {
    while (!impl_->stop.load(std::memory_order_relaxed)) {
      pollfd pfd{impl_->listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 100);  // 100 ms: prompt stop()
      if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
      const int client = ::accept(impl_->listen_fd, nullptr, nullptr);
      if (client < 0) continue;
      timeval tv{2, 0};
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

      const std::string req = read_request_line(client);
      // "GET /path HTTP/1.x"
      HttpResponse resp;
      if (req.compare(0, 4, "GET ") != 0) {
        resp = {405, "text/plain", "only GET is supported\n"};
      } else {
        const auto sp = req.find(' ', 4);
        const std::string path =
            sp == std::string::npos ? req.substr(4) : req.substr(4, sp - 4);
        resp = handle(path);
      }
      std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                        status_text(resp.status) + "\r\n";
      out += "Content-Type: " + resp.content_type + "\r\n";
      out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
      out += "Connection: close\r\n\r\n";
      out += resp.body;
      write_all(client, out);
      ::close(client);
    }
  });
  G6_LOG_INFO("monitor: listening on 127.0.0.1:" +
              std::to_string(impl_->bound_port));
  return true;
}

void MonitorServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stop.store(true);
  impl_->thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->running.store(false);
}

bool MonitorServer::running() const { return impl_->running.load(); }

int MonitorServer::port() const { return impl_->bound_port; }

}  // namespace g6::obs

#endif  // G6_OBS_DISABLED
