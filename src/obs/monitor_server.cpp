#include "obs/monitor_server.hpp"

#ifndef G6_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace g6::obs {

struct MonitorServer::Impl {
  std::map<std::string, std::function<HttpResponse()>> routes;
  std::map<std::string, std::function<HttpResponse(const std::string&)>> prefix_routes;
  std::map<std::string, std::function<HttpResponse(const std::string&)>> post_routes;
  double request_timeout = 2.0;
  int listen_fd = -1;
  int bound_port = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};
};

MonitorServer::MonitorServer() : impl_(std::make_unique<Impl>()) {}

MonitorServer::~MonitorServer() { stop(); }

void MonitorServer::route(const std::string& path,
                          std::function<HttpResponse()> fn) {
  impl_->routes[path] = std::move(fn);
}

void MonitorServer::route_prefix(
    const std::string& prefix,
    std::function<HttpResponse(const std::string&)> fn) {
  impl_->prefix_routes[prefix] = std::move(fn);
}

void MonitorServer::route_post(
    const std::string& path,
    std::function<HttpResponse(const std::string&)> fn) {
  impl_->post_routes[path] = std::move(fn);
}

void MonitorServer::set_request_timeout(double seconds) {
  if (seconds > 0.0) impl_->request_timeout = seconds;
}

namespace {

std::string strip_query(const std::string& path) {
  const auto q = path.find('?');
  return q == std::string::npos ? path : path.substr(0, q);
}

}  // namespace

HttpResponse MonitorServer::handle(const std::string& path) const {
  const std::string key = strip_query(path);
  const auto it = impl_->routes.find(key);
  if (it != impl_->routes.end()) return it->second();
  // Longest matching prefix wins (map iterates ascending; keep the last hit).
  const std::function<HttpResponse(const std::string&)>* best = nullptr;
  for (const auto& [prefix, fn] : impl_->prefix_routes)
    if (key.compare(0, prefix.size(), prefix) == 0) best = &fn;
  if (best != nullptr) return (*best)(key);
  // A path that only exists as a POST route is a method mismatch (405),
  // not an unknown resource (404) — tells clients the fix is the verb.
  if (impl_->post_routes.count(key) != 0)
    return {405, "text/plain", "use POST for this path\n"};
  return {404, "text/plain", "not found\n"};
}

HttpResponse MonitorServer::handle_post(const std::string& path,
                                        const std::string& body) const {
  const std::string key = strip_query(path);
  const auto it = impl_->post_routes.find(key);
  if (it == impl_->post_routes.end()) {
    if (impl_->routes.count(key) != 0)
      return {405, "text/plain", "use GET for this path\n"};
    return {404, "text/plain", "not found\n"};
  }
  return it->second(body);
}

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
  }
  return "Error";
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; response is best-effort
    off += static_cast<std::size_t>(n);
  }
}

using Clock = std::chrono::steady_clock;

/// Append whatever arrives on \p fd to \p buf until \p done(buf) is
/// satisfied, \p cap is reached, EOF, or the absolute \p deadline passes.
/// Returns false on deadline expiry — the caller answers 408. The deadline
/// is absolute per connection, not per recv: a client dripping one byte at
/// a time makes no progress against it.
template <typename DoneFn>
bool read_until(int fd, std::string& buf, std::size_t cap, Clock::time_point deadline,
                const DoneFn& done) {
  char chunk[1024];
  while (buf.size() < cap && !done(buf)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                                      left.count(), 1000)));
    if (r < 0) break;
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;  // re-check deadline
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF / error: work with what we have
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

/// One parsed request: method, path, body (POST only).
struct Request {
  std::string method, path, body;
  int error = 0;  ///< non-zero: respond with this status instead
};

Request read_request(int fd, double timeout_seconds, std::size_t max_header,
                     std::size_t max_body) {
  const auto deadline =
      Clock::now() + std::chrono::microseconds(
                         static_cast<long long>(timeout_seconds * 1e6));
  Request req;
  std::string buf;
  const auto have_headers = [](const std::string& b) {
    return b.find("\r\n\r\n") != std::string::npos;
  };
  if (!read_until(fd, buf, max_header, deadline, have_headers)) {
    req.error = 408;
    return req;
  }
  const auto head_end = buf.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    req.error = 400;  // EOF or oversized headers without a complete request
    return req;
  }
  // Request line: METHOD SP PATH SP VERSION
  const auto eol = buf.find("\r\n");
  const std::string line = buf.substr(0, eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    req.error = 400;
    return req;
  }
  req.method = line.substr(0, sp1);
  req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method != "POST") return req;

  // POST: honour Content-Length (case-insensitive header match).
  std::size_t content_length = 0;
  bool have_length = false;
  std::size_t pos = eol + 2;
  while (pos < head_end) {
    auto nl = buf.find("\r\n", pos);
    if (nl == std::string::npos || nl > head_end) nl = head_end;
    std::string header = buf.substr(pos, nl - pos);
    pos = nl + 2;
    const auto colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name != "content-length") continue;
    content_length = static_cast<std::size_t>(
        std::strtoull(header.c_str() + colon + 1, nullptr, 10));
    have_length = true;
  }
  if (!have_length) {
    req.error = 400;
    return req;
  }
  if (content_length > max_body) {
    req.error = 413;
    return req;
  }
  const std::size_t body_start = head_end + 4;
  const std::size_t want = body_start + content_length;
  const auto have_body = [want](const std::string& b) { return b.size() >= want; };
  if (!read_until(fd, buf, want, deadline, have_body)) {
    req.error = 408;
    return req;
  }
  if (buf.size() < want) {
    req.error = 400;  // connection closed before the promised body arrived
    return req;
  }
  req.body = buf.substr(body_start, content_length);
  return req;
}

}  // namespace

bool MonitorServer::start(int port) {
  if (impl_->running.load()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    impl_->bound_port = ntohs(addr.sin_port);

  impl_->listen_fd = fd;
  impl_->stop.store(false);
  impl_->running.store(true);
  impl_->thread = std::thread([this] {
    while (!impl_->stop.load(std::memory_order_relaxed)) {
      pollfd pfd{impl_->listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 100);  // 100 ms: prompt stop()
      if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
      const int client = ::accept(impl_->listen_fd, nullptr, nullptr);
      if (client < 0) continue;
      timeval tv{2, 0};
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

      const Request req = read_request(client, impl_->request_timeout,
                                       kMaxHeaderBytes, kMaxBodyBytes);
      HttpResponse resp;
      if (req.error != 0) {
        resp = {req.error, "text/plain",
                std::string(status_text(req.error)) + "\n"};
      } else if (req.method == "GET") {
        resp = handle(req.path);
      } else if (req.method == "POST") {
        resp = handle_post(req.path, req.body);
      } else {
        resp = {405, "text/plain", "only GET and POST are supported\n"};
      }
      std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                        status_text(resp.status) + "\r\n";
      out += "Content-Type: " + resp.content_type + "\r\n";
      out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
      out += "Connection: close\r\n\r\n";
      out += resp.body;
      write_all(client, out);
      ::close(client);
    }
  });
  G6_LOG_INFO("monitor: listening on 127.0.0.1:" +
              std::to_string(impl_->bound_port));
  return true;
}

void MonitorServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stop.store(true);
  impl_->thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->running.store(false);
}

bool MonitorServer::running() const { return impl_->running.load(); }

int MonitorServer::port() const { return impl_->bound_port; }

}  // namespace g6::obs

#endif  // G6_OBS_DISABLED
