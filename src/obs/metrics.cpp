#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace g6::obs {

int LogHistogramState::bucket_index(double x) {
  if (!(x > 0.0)) return -1;  // underflow (also catches NaN)
  const double d = std::log10(x) - kDecadeLo;
  if (d < 0.0) return -1;
  const int i = static_cast<int>(d * kBucketsPerDecade);
  if (i >= kBuckets) return kBuckets;  // overflow
  return i;
}

double LogHistogramState::bucket_lo(int i) {
  return std::pow(10.0, kDecadeLo + static_cast<double>(i) / kBucketsPerDecade);
}

double LogHistogramState::bucket_center(int i) {
  return std::pow(10.0,
                  kDecadeLo + (static_cast<double>(i) + 0.5) / kBucketsPerDecade);
}

void LogHistogram::add(double x) {
  if (state_ == nullptr) return;
  const int i = LogHistogramState::bucket_index(x);
  if (i < 0)
    state_->underflow.fetch_add(1, std::memory_order_relaxed);
  else if (i >= LogHistogramState::kBuckets)
    state_->overflow.fetch_add(1, std::memory_order_relaxed);
  else
    state_->buckets[i].fetch_add(1, std::memory_order_relaxed);
  state_->count.fetch_add(1, std::memory_order_relaxed);
  state_->sum.fetch_add(x, std::memory_order_relaxed);
}

namespace {

double percentile_of(const LogHistogramState& s, double fraction) {
  const std::uint64_t n = s.count.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double rank = fraction * static_cast<double>(n);
  double cum = static_cast<double>(s.underflow.load(std::memory_order_relaxed));
  if (cum >= rank && cum > 0.0) return LogHistogramState::bucket_lo(0);
  for (int i = 0; i < LogHistogramState::kBuckets; ++i) {
    cum += static_cast<double>(s.buckets[i].load(std::memory_order_relaxed));
    if (cum >= rank) return LogHistogramState::bucket_center(i);
  }
  return LogHistogramState::bucket_lo(LogHistogramState::kBuckets);
}

}  // namespace

double LogHistogram::percentile(double fraction) const {
  return state_ == nullptr ? 0.0 : percentile_of(*state_, fraction);
}

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Node& MetricsRegistry::node(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Node& n : nodes_) {
    if (n.name == name) {
      G6_CHECK(n.kind == kind,
               "metric '" + std::string(name) + "' already registered as " +
                   metric_kind_name(n.kind));
      return n;
    }
  }
  Node& n = nodes_.emplace_back();
  n.name = std::string(name);
  n.kind = kind;
  if (kind == MetricKind::kHistogram) n.hist = std::make_unique<LogHistogramState>();
  return n;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(&node(name, MetricKind::kCounter).counter);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(&node(name, MetricKind::kGauge).gauge);
}

LogHistogram MetricsRegistry::histogram(std::string_view name) {
  return LogHistogram(node(name, MetricKind::kHistogram).hist.get());
}

std::size_t MetricsRegistry::add_provider(std::function<void(MetricsRegistry&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t id = next_provider_id_++;
  providers_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_provider(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(providers_, [id](const auto& p) { return p.first == id; });
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() {
  // Serialize whole snapshots: provider publishes and the node read below
  // form one critical section, so a concurrent snapshot cannot observe half
  // of a provider's multi-metric publish. snapshot_mu_ is distinct from mu_
  // because providers call back into counter()/gauge(), which take mu_.
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);

  // Run providers outside mu_: they call back into counter()/gauge().
  std::vector<std::function<void(MetricsRegistry&)>> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    providers.reserve(providers_.size());
    for (const auto& [id, fn] : providers_) providers.push_back(fn);
  }
  for (const auto& fn : providers) fn(*this);

  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    MetricSnapshot m;
    m.name = n.name;
    m.kind = n.kind;
    switch (n.kind) {
      case MetricKind::kCounter:
        m.value = static_cast<double>(n.counter.load(std::memory_order_relaxed));
        break;
      case MetricKind::kGauge:
        m.value = n.gauge.load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        const LogHistogramState& s = *n.hist;
        m.hist.count = s.count.load(std::memory_order_relaxed);
        m.hist.sum = s.sum.load(std::memory_order_relaxed);
        m.hist.underflow = s.underflow.load(std::memory_order_relaxed);
        m.hist.overflow = s.overflow.load(std::memory_order_relaxed);
        m.hist.p50 = percentile_of(s, 0.50);
        m.hist.p90 = percentile_of(s, 0.90);
        m.hist.p99 = percentile_of(s, 0.99);
        for (int i = 0; i < LogHistogramState::kBuckets; ++i) {
          const std::uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
          if (c != 0)
            m.hist.buckets.emplace_back(LogHistogramState::bucket_center(i), c);
        }
        m.value = static_cast<double>(m.hist.count);
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

const MetricSnapshot* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSnapshot& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(m.name) + "\",\"kind\":\"" +
           metric_kind_name(m.kind) + "\"";
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + json_number(static_cast<double>(m.hist.count));
      out += ",\"sum\":" + json_number(m.hist.sum);
      out += ",\"p50\":" + json_number(m.hist.p50);
      out += ",\"p90\":" + json_number(m.hist.p90);
      out += ",\"p99\":" + json_number(m.hist.p99);
      out += ",\"underflow\":" + json_number(static_cast<double>(m.hist.underflow));
      out += ",\"overflow\":" + json_number(static_cast<double>(m.hist.overflow));
      out += ",\"buckets\":[";
      for (std::size_t i = 0; i < m.hist.buckets.size(); ++i) {
        if (i != 0) out += ",";
        out += "[" + json_number(m.hist.buckets[i].first) + "," +
               json_number(static_cast<double>(m.hist.buckets[i].second)) + "]";
      }
      out += "]";
    } else {
      out += ",\"value\":" + json_number(m.value);
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string MetricsSnapshot::to_table() const {
  util::Table t({"metric", "kind", "value", "p50", "p99"});
  for (const MetricSnapshot& m : metrics) {
    if (m.kind == MetricKind::kHistogram) {
      t.row({m.name, metric_kind_name(m.kind),
             util::fmt_int(static_cast<long long>(m.hist.count)),
             util::fmt_sci(m.hist.p50), util::fmt_sci(m.hist.p99)});
    } else {
      t.row({m.name, metric_kind_name(m.kind), util::fmt_sci(m.value), "-", "-"});
    }
  }
  return t.render();
}

bool write_metrics_json(const std::string& path, const MetricsSnapshot& snap,
                        const std::vector<std::pair<std::string, std::string>>&
                            extra_members) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string doc = "{\"metrics\":" + snap.to_json();
  for (const auto& [key, value] : extra_members)
    doc += ",\"" + json_escape(key) + "\":" + value;
  doc += "}\n";
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace g6::obs
