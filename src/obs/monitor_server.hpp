#pragma once
/// \file monitor_server.hpp
/// \brief MonitorServer — minimal blocking HTTP/1.0 server (POSIX sockets,
///        no dependencies) serving registered GET/POST routes.
///
/// One background thread accepts connections (poll() with a 100 ms timeout
/// so stop() is prompt), reads the request — headers plus, for POST, a
/// Content-Length body — dispatches on method and path and writes the
/// response with `Connection: close`. Handlers run on the server thread and
/// must only *read* shared state (registry snapshots, progress tracker
/// atomics) — the determinism contract — except POST handlers, which may
/// hand work to a queue (the job server's admission path).
///
/// Every connection is read under one absolute wall deadline
/// (set_request_timeout, default 2 s): a client that connects and stalls —
/// or drips one byte per second, which a plain per-recv SO_RCVTIMEO never
/// catches — is answered with 408 and closed when the deadline passes, so
/// a single slow client cannot wedge the accept thread.
///
/// Routes are registered before start(); the monitor facade wires
/// `/metrics` (Prometheus text exposition), `/metrics.json`, `/progress`
/// and `/series`; the job server adds `/jobs`, the `/jobs/<id>` prefix
/// family and `POST /jobs`. Pass port 0 to bind an ephemeral port (tests);
/// the bound port is available from port() after start(). `handle(path)` /
/// `handle_post(path, body)` dispatch without a socket — the unit-test
/// hooks.
///
/// Compiles to no-ops under G6_OBS_DISABLED.

#include <functional>
#include <memory>
#include <string>

namespace g6::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
};

#ifndef G6_OBS_DISABLED

class MonitorServer {
 public:
  MonitorServer();
  ~MonitorServer();  ///< stops the thread if running
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a GET route (exact path match, query string ignored).
  /// Must be called before start().
  void route(const std::string& path, std::function<HttpResponse()> fn);

  /// Register a GET route matching every path that starts with \p prefix
  /// (e.g. "/jobs/" serves /jobs/<id> and /jobs/<id>/result). The handler
  /// receives the full request path (query string stripped). Exact routes
  /// win over prefixes; among prefixes the longest match wins.
  void route_prefix(const std::string& prefix,
                    std::function<HttpResponse(const std::string&)> fn);

  /// Register a POST route (exact path match). The handler receives the
  /// request body (up to max_body_bytes; larger requests are answered 400).
  void route_post(const std::string& path,
                  std::function<HttpResponse(const std::string&)> fn);

  /// Absolute per-connection wall deadline for reading one request
  /// (headers + body). Must be set before start(). Seconds; > 0.
  void set_request_timeout(double seconds);

  /// Bind 127.0.0.1:<port> (0 = ephemeral) and start the accept thread.
  /// Returns false when the socket cannot be bound.
  bool start(int port);
  void stop();
  bool running() const;

  /// Port actually bound (resolves port 0); 0 when not started.
  int port() const;

  /// Dispatch a GET for \p path through the route table without any socket
  /// I/O (exact routes, then prefix routes).
  HttpResponse handle(const std::string& path) const;

  /// Dispatch a POST without socket I/O.
  HttpResponse handle_post(const std::string& path, const std::string& body) const;

  /// Requests (request line + headers + body) larger than this are
  /// rejected with 400/413 instead of buffered without bound.
  static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

class MonitorServer {
 public:
  void route(const std::string&, std::function<HttpResponse()>) {}
  void route_prefix(const std::string&,
                    std::function<HttpResponse(const std::string&)>) {}
  void route_post(const std::string&,
                  std::function<HttpResponse(const std::string&)>) {}
  void set_request_timeout(double) {}
  bool start(int) { return false; }
  void stop() {}
  bool running() const { return false; }
  int port() const { return 0; }
  HttpResponse handle(const std::string&) const { return {404, "text/plain", "monitoring disabled\n"}; }
  HttpResponse handle_post(const std::string&, const std::string&) const {
    return {404, "text/plain", "monitoring disabled\n"};
  }
  // Request-size limits stay available: non-HTTP users (the job server's
  // line protocol) share them so both builds enforce the same bounds.
  static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 1024 * 1024;
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
