#pragma once
/// \file monitor_server.hpp
/// \brief MonitorServer — minimal blocking HTTP/1.0 server (POSIX sockets,
///        no dependencies) serving registered GET routes.
///
/// One background thread accepts connections (poll() with a 100 ms timeout
/// so stop() is prompt), reads the request line, dispatches on the path and
/// writes the response with `Connection: close`. Handlers run on the server
/// thread and must only *read* shared state (registry snapshots, progress
/// tracker atomics) — the determinism contract.
///
/// Routes are registered before start(); the monitor facade wires
/// `/metrics` (Prometheus text exposition), `/metrics.json`, `/progress`
/// and `/series`. Pass port 0 to bind an ephemeral port (tests); the bound
/// port is available from port() after start(). `handle(path)` dispatches
/// without a socket — the unit-test hook.
///
/// Compiles to no-ops under G6_OBS_DISABLED.

#include <functional>
#include <memory>
#include <string>

namespace g6::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
};

#ifndef G6_OBS_DISABLED

class MonitorServer {
 public:
  MonitorServer();
  ~MonitorServer();  ///< stops the thread if running
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a GET route (exact path match, query string ignored).
  /// Must be called before start().
  void route(const std::string& path, std::function<HttpResponse()> fn);

  /// Bind 127.0.0.1:<port> (0 = ephemeral) and start the accept thread.
  /// Returns false when the socket cannot be bound.
  bool start(int port);
  void stop();
  bool running() const;

  /// Port actually bound (resolves port 0); 0 when not started.
  int port() const;

  /// Dispatch \p path through the route table without any socket I/O.
  HttpResponse handle(const std::string& path) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

class MonitorServer {
 public:
  void route(const std::string&, std::function<HttpResponse()>) {}
  bool start(int) { return false; }
  void stop() {}
  bool running() const { return false; }
  int port() const { return 0; }
  HttpResponse handle(const std::string&) const { return {404, "text/plain", "monitoring disabled\n"}; }
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
