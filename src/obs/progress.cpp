#include "obs/progress.hpp"

#include "obs/json.hpp"

#ifndef G6_OBS_DISABLED
#include <atomic>
#include <deque>
#include <mutex>
#endif

namespace g6::obs {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kPreempted: return "preempted";
  }
  return "?";
}

#ifndef G6_OBS_DISABLED

/// EWMA weight for the simulation-time rate: ~63% of the estimate comes
/// from the last kRateWindow seconds of wall time.
static constexpr double kRateWindow = 30.0;

struct JobTicket::Slot {
  std::string name;  ///< immutable after construction
  std::atomic<double> t_start{0.0};
  std::atomic<double> t_end{0.0};
  std::atomic<int> state{static_cast<int>(JobState::kPending)};
  std::atomic<double> t_sys{0.0};
  std::atomic<std::uint64_t> blocks{0};
  std::atomic<double> wall{0.0};
  std::atomic<double> sim_rate{0.0};  ///< EWMA of d(t_sys)/d(wall)
  std::atomic<double> model_spb{0.0};
  std::atomic<double> capacity{1.0};
};

void JobTicket::update(double t_sys, std::uint64_t blocks,
                       double wall_seconds) {
  if (slot_ == nullptr) return;
  const double prev_t = slot_->t_sys.load(std::memory_order_relaxed);
  const double prev_wall = slot_->wall.load(std::memory_order_relaxed);
  const double dw = wall_seconds - prev_wall;
  if (dw > 0.0) {
    const double inst = (t_sys - prev_t) / dw;
    const double old = slot_->sim_rate.load(std::memory_order_relaxed);
    // EWMA weighted by elapsed wall time; first observation seeds directly.
    const double a = old == 0.0 ? 1.0 : (dw >= kRateWindow ? 1.0 : dw / kRateWindow);
    slot_->sim_rate.store(old + a * (inst - old), std::memory_order_relaxed);
  }
  slot_->t_sys.store(t_sys, std::memory_order_relaxed);
  slot_->blocks.store(blocks, std::memory_order_relaxed);
  slot_->wall.store(wall_seconds, std::memory_order_relaxed);
  int expected = static_cast<int>(JobState::kPending);
  slot_->state.compare_exchange_strong(expected,
                                       static_cast<int>(JobState::kRunning),
                                       std::memory_order_relaxed);
}

void JobTicket::set_model_seconds_per_block(double s) {
  if (slot_ != nullptr) slot_->model_spb.store(s, std::memory_order_relaxed);
}

void JobTicket::set_capacity_fraction(double f) {
  if (slot_ != nullptr) slot_->capacity.store(f, std::memory_order_relaxed);
}

void JobTicket::set_state(JobState s) {
  if (slot_ != nullptr)
    slot_->state.store(static_cast<int>(s), std::memory_order_relaxed);
}

struct ProgressTracker::Impl {
  mutable std::mutex mu;            ///< guards slots (append + name lookup)
  std::deque<JobTicket::Slot> slots;  ///< deque: stable slot addresses
};

ProgressTracker::ProgressTracker() : impl_(std::make_unique<Impl>()) {}
ProgressTracker::~ProgressTracker() = default;

ProgressTracker& ProgressTracker::global() {
  static ProgressTracker tracker;
  return tracker;
}

JobTicket ProgressTracker::add_job(const std::string& name, double t_start,
                                   double t_end) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (JobTicket::Slot& s : impl_->slots) {
    if (s.name == name) {
      s.t_start.store(t_start, std::memory_order_relaxed);
      s.t_end.store(t_end, std::memory_order_relaxed);
      return JobTicket(&s);
    }
  }
  JobTicket::Slot& s = impl_->slots.emplace_back();
  s.name = name;
  s.t_start.store(t_start, std::memory_order_relaxed);
  s.t_end.store(t_end, std::memory_order_relaxed);
  return JobTicket(&s);
}

namespace {

JobProgress read_slot(const JobTicket::Slot& s) {
  JobProgress p;
  p.name = s.name;
  p.state = static_cast<JobState>(s.state.load(std::memory_order_relaxed));
  p.t_start = s.t_start.load(std::memory_order_relaxed);
  p.t_end = s.t_end.load(std::memory_order_relaxed);
  p.t_sys = s.t_sys.load(std::memory_order_relaxed);
  p.blocks = s.blocks.load(std::memory_order_relaxed);
  p.wall_seconds = s.wall.load(std::memory_order_relaxed);
  p.sim_rate = s.sim_rate.load(std::memory_order_relaxed);
  p.model_seconds_per_block = s.model_spb.load(std::memory_order_relaxed);
  p.capacity_fraction = s.capacity.load(std::memory_order_relaxed);

  const double span = p.t_end - p.t_start;
  if (span > 0.0) {
    p.fraction = (p.t_sys - p.t_start) / span;
    if (p.fraction < 0.0) p.fraction = 0.0;
    if (p.fraction > 1.0) p.fraction = 1.0;
  } else {
    p.fraction = p.state == JobState::kDone ? 1.0 : 0.0;
  }
  if (p.wall_seconds > 0.0 && p.blocks > 0)
    p.blocks_per_second = static_cast<double>(p.blocks) / p.wall_seconds;

  const double remaining = p.t_end - p.t_sys;
  if (p.state == JobState::kDone) {
    p.eta_seconds = 0.0;
  } else if (remaining > 0.0 && p.sim_rate > 0.0) {
    p.eta_seconds = remaining / p.sim_rate;
  }

  const double measured_spb =
      p.blocks > 0 ? p.wall_seconds / static_cast<double>(p.blocks) : 0.0;
  if (p.model_seconds_per_block > 0.0) {
    if (measured_spb > 0.0) p.drift = measured_spb / p.model_seconds_per_block;
    // Remaining blocks estimated from the measured pace (t per block).
    if (remaining > 0.0 && p.blocks > 0 && p.t_sys > p.t_start) {
      const double t_per_block =
          (p.t_sys - p.t_start) / static_cast<double>(p.blocks);
      if (t_per_block > 0.0)
        p.model_eta_seconds =
            remaining / t_per_block * p.model_seconds_per_block;
    } else if (p.state == JobState::kDone) {
      p.model_eta_seconds = 0.0;
    }
  }
  return p;
}

}  // namespace

std::vector<JobProgress> ProgressTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<JobProgress> out;
  out.reserve(impl_->slots.size());
  for (const JobTicket::Slot& s : impl_->slots) out.push_back(read_slot(s));
  return out;
}

std::string ProgressTracker::to_json() const {
  const std::vector<JobProgress> jobs = snapshot();
  std::size_t done = 0, running = 0, failed = 0;
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const JobProgress& p : jobs) {
    if (p.state == JobState::kDone) ++done;
    if (p.state == JobState::kRunning) ++running;
    if (p.state == JobState::kFailed) ++failed;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(p.name) + "\"";
    out += ",\"state\":\"" + std::string(job_state_name(p.state)) + "\"";
    out += ",\"t_start\":" + json_number(p.t_start);
    out += ",\"t_sys\":" + json_number(p.t_sys);
    out += ",\"t_end\":" + json_number(p.t_end);
    out += ",\"fraction\":" + json_number(p.fraction);
    out += ",\"blocks\":" + json_number(static_cast<double>(p.blocks));
    out += ",\"wall_seconds\":" + json_number(p.wall_seconds);
    out += ",\"blocks_per_second\":" + json_number(p.blocks_per_second);
    out += ",\"sim_rate\":" + json_number(p.sim_rate);
    out += ",\"eta_seconds\":" + json_number(p.eta_seconds);
    out += ",\"model_eta_seconds\":" + json_number(p.model_eta_seconds);
    out += ",\"model_seconds_per_block\":" +
           json_number(p.model_seconds_per_block);
    out += ",\"drift\":" + json_number(p.drift);
    out += ",\"capacity_fraction\":" + json_number(p.capacity_fraction);
    out += "}";
  }
  out += "],\"done\":" + json_number(static_cast<double>(done));
  out += ",\"running\":" + json_number(static_cast<double>(running));
  out += ",\"failed\":" + json_number(static_cast<double>(failed));
  out += ",\"total\":" + json_number(static_cast<double>(jobs.size())) + "}";
  return out;
}

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
