#include "obs/flight_recorder.hpp"

#ifndef G6_OBS_DISABLED

#include <atomic>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <deque>
#include <mutex>

#include "obs/json.hpp"
#include "util/timer.hpp"

namespace g6::obs {

namespace {

struct StepEntry {
  double t_sys;
  std::uint32_t n_act;
  double step_seconds;
  double wall;
};

struct EventEntry {
  double wall;
  std::string category;
  std::string message;
};

}  // namespace

struct FlightRecorder::Impl {
  std::atomic<bool> armed{false};  ///< cheap early-out for publish points

  std::mutex mu;  ///< guards everything below
  FlightConfig cfg;
  long long start_ts = 0;  ///< unix time at enable(); names the dump file
  g6::util::Timer epoch;
  std::deque<StepEntry> steps;
  std::deque<EventEntry> events;
  std::deque<std::string> frames;  ///< pre-serialized SeriesFrame JSON
  std::size_t steps_total = 0;
  std::size_t events_total = 0;
  double last_autosave = -1.0;

  /// Serialize the rings. Caller holds mu.
  std::string to_json_locked(const std::string& reason) const {
    std::string out = "{\"reason\":\"" + json_escape(reason) + "\"";
    out += ",\"start_ts\":" + json_number(static_cast<double>(start_ts));
    out += ",\"wall_seconds\":" + json_number(epoch.seconds());
    out +=
        ",\"steps_total\":" + json_number(static_cast<double>(steps_total));
    out +=
        ",\"events_total\":" + json_number(static_cast<double>(events_total));
    out += ",\"steps\":[";
    bool first = true;
    for (const StepEntry& s : steps) {
      if (!first) out += ",";
      first = false;
      out += "{\"t\":" + json_number(s.t_sys) +
             ",\"n_act\":" + json_number(static_cast<double>(s.n_act)) +
             ",\"seconds\":" + json_number(s.step_seconds) +
             ",\"wall\":" + json_number(s.wall) + "}";
    }
    out += "],\"events\":[";
    first = true;
    for (const EventEntry& e : events) {
      if (!first) out += ",";
      first = false;
      out += "{\"wall\":" + json_number(e.wall) + ",\"category\":\"" +
             json_escape(e.category) + "\",\"message\":\"" +
             json_escape(e.message) + "\"}";
    }
    out += "],\"frames\":[";
    first = true;
    for (const std::string& f : frames) {
      if (!first) out += ",";
      first = false;
      out += f;
    }
    out += "]}\n";
    return out;
  }

  /// Atomic rewrite of the stable dump path. Caller holds mu.
  std::string dump_locked(const std::string& reason) {
    const std::string path =
        cfg.dir + "/flight_" + std::to_string(start_ts) + ".json";
    const std::string tmp = path + ".tmp";
    const std::string doc = to_json_locked(reason);
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return {};
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0 || !ok) {
      std::remove(tmp.c_str());
      return {};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return {};
    }
    return path;
  }
};

FlightRecorder::FlightRecorder() : impl_(std::make_unique<Impl>()) {}
FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(FlightConfig cfg) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (cfg.max_steps == 0) cfg.max_steps = 1;
  if (cfg.max_events == 0) cfg.max_events = 1;
  if (cfg.max_frames == 0) cfg.max_frames = 1;
  impl_->cfg = cfg;
  if (impl_->start_ts == 0)
    impl_->start_ts = static_cast<long long>(std::time(nullptr));
  impl_->armed.store(true, std::memory_order_release);
}

bool FlightRecorder::enabled() const {
  return impl_->armed.load(std::memory_order_relaxed);
}

void FlightRecorder::record_step(double t_sys, std::size_t n_act,
                                 double step_seconds) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->steps.push_back({t_sys, static_cast<std::uint32_t>(n_act),
                          step_seconds, impl_->epoch.seconds()});
  ++impl_->steps_total;
  while (impl_->steps.size() > impl_->cfg.max_steps) impl_->steps.pop_front();
}

void FlightRecorder::note(const std::string& category,
                          const std::string& message) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.push_back({impl_->epoch.seconds(), category, message});
  ++impl_->events_total;
  while (impl_->events.size() > impl_->cfg.max_events)
    impl_->events.pop_front();
}

void FlightRecorder::record_frame_json(const std::string& frame_json) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->frames.push_back(frame_json);
  while (impl_->frames.size() > impl_->cfg.max_frames)
    impl_->frames.pop_front();
  const double now = impl_->epoch.seconds();
  if (impl_->last_autosave < 0.0 ||
      now - impl_->last_autosave >= impl_->cfg.autosave_min_interval) {
    impl_->last_autosave = now;
    impl_->dump_locked("autosave");
  }
}

std::string FlightRecorder::dump(const std::string& reason) {
  if (!enabled()) return {};
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dump_locked(reason);
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->steps.clear();
  impl_->events.clear();
  impl_->frames.clear();
  impl_->steps_total = 0;
  impl_->events_total = 0;
}

std::size_t FlightRecorder::steps_recorded() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->steps_total;
}

std::size_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events_total;
}

namespace {

void fatal_signal_handler(int sig) {
  // Not strictly async-signal-safe (allocates, locks) — acceptable for a
  // best-effort post-mortem dump of a process that is dying anyway; the
  // throttled autosave is the guaranteed fallback.
  const char* name = "signal";
  switch (sig) {
    case SIGSEGV: name = "SIGSEGV"; break;
    case SIGABRT: name = "SIGABRT"; break;
    case SIGBUS: name = "SIGBUS"; break;
    case SIGFPE: name = "SIGFPE"; break;
    case SIGILL: name = "SIGILL"; break;
    case SIGTERM: name = "SIGTERM"; break;
  }
  FlightRecorder::global().dump(std::string("fatal:") + name);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM})
    std::signal(sig, fatal_signal_handler);
}

}  // namespace g6::obs

#endif  // G6_OBS_DISABLED
