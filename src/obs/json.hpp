#pragma once
/// \file json.hpp
/// \brief Minimal JSON document model: enough of a writer (escaping, number
///        formatting) for the observability exports and enough of a parser
///        for the tests to load those exports back and assert on them.
///
/// Not a general-purpose JSON library — no streaming, no unicode surrogate
/// handling beyond pass-through — but everything the metrics/trace files use
/// round-trips exactly.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g6::obs {

/// A parsed JSON value (tagged union over the seven JSON shapes).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw g6::util::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Array element access (throws when out of range or not an array).
  const JsonValue& at(std::size_t i) const;
  std::size_t size() const;

  /// Parse a complete JSON document; throws g6::util::Error on malformed
  /// input or trailing garbage.
  static JsonValue parse(std::string_view text);

  // Construction helpers used by the parser.
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape a string for inclusion inside JSON double quotes.
std::string json_escape(std::string_view s);

/// Format a double the way the exports do: shortest round-trippable form,
/// with non-finite values mapped to null (JSON has no NaN/Inf).
std::string json_number(double v);

}  // namespace g6::obs
