#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>

namespace g6::obs {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0))
      out.push_back(c);
    else
      out.push_back('_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.metrics.size() * 96);
  for (const MetricSnapshot& m : snap.metrics) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + prometheus_value(m.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + prometheus_value(m.value) + "\n";
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + name + " summary\n";
        out += name + "{quantile=\"0.5\"} " + prometheus_value(m.hist.p50) + "\n";
        out += name + "{quantile=\"0.9\"} " + prometheus_value(m.hist.p90) + "\n";
        out += name + "{quantile=\"0.99\"} " + prometheus_value(m.hist.p99) + "\n";
        out += name + "_sum " + prometheus_value(m.hist.sum) + "\n";
        out += name + "_count " +
               prometheus_value(static_cast<double>(m.hist.count)) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace g6::obs
